/**
 * @file
 * Tests for the MMA functional engine and the GEMM kernels: numerical
 * correctness against naive references (parameterized over problem
 * sizes) and instruction-stream emission properties.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "isa/op.h"
#include "mma/engine.h"
#include "mma/gemm.h"

using namespace p10ee;
using mma::GemmDims;
using mma::MmaEngine;

namespace {

void
fillRandom(std::vector<double>& v, uint64_t seed)
{
    common::Xoshiro r(seed);
    for (auto& x : v)
        x = r.uniform() * 2.0 - 1.0;
}

void
fillRandom(std::vector<float>& v, uint64_t seed)
{
    common::Xoshiro r(seed);
    for (auto& x : v)
        x = static_cast<float>(r.uniform() * 2.0 - 1.0);
}

void
fillRandom(std::vector<int8_t>& v, uint64_t seed)
{
    common::Xoshiro r(seed);
    for (auto& x : v)
        x = static_cast<int8_t>(r.below(255)) ;
}

} // namespace

TEST(MmaEngine, SetAcczZeroes)
{
    MmaEngine e;
    float x[4] = {1, 2, 3, 4};
    float y[4] = {1, 1, 1, 1};
    e.xvf32gerpp(2, x, y);
    e.xxsetaccz(2);
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            EXPECT_EQ(e.acc(2).f32[i][j], 0.0f);
}

TEST(MmaEngine, Fp32OuterProduct)
{
    MmaEngine e;
    float x[4] = {1, 2, 3, 4};
    float y[4] = {10, 20, 30, 40};
    e.xvf32gerpp(0, x, y);
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            EXPECT_FLOAT_EQ(e.acc(0).f32[i][j], x[i] * y[j]);
}

TEST(MmaEngine, Fp32Accumulates)
{
    MmaEngine e;
    float x[4] = {1, 1, 1, 1};
    float y[4] = {2, 2, 2, 2};
    e.xvf32gerpp(1, x, y);
    e.xvf32gerpp(1, x, y);
    EXPECT_FLOAT_EQ(e.acc(1).f32[3][3], 4.0f);
}

TEST(MmaEngine, Fp32GerOverwrites)
{
    MmaEngine e;
    float x[4] = {1, 1, 1, 1};
    float y[4] = {5, 5, 5, 5};
    e.xvf32gerpp(0, x, y);
    e.xvf32ger(0, x, y); // implicit zero first
    EXPECT_FLOAT_EQ(e.acc(0).f32[0][0], 5.0f);
}

TEST(MmaEngine, Fp64OuterProduct)
{
    MmaEngine e;
    double x[4] = {1.5, -2.0, 0.25, 8.0};
    double y[2] = {3.0, -1.0};
    e.xvf64gerpp(3, x, y);
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 2; ++j)
            EXPECT_DOUBLE_EQ(e.acc(3).f64[i][j], x[i] * y[j]);
}

TEST(MmaEngine, Int8Rank4DotProducts)
{
    MmaEngine e;
    int8_t x[16], y[16];
    for (int i = 0; i < 16; ++i) {
        x[i] = static_cast<int8_t>(i - 8);
        y[i] = static_cast<int8_t>(2 * i - 15);
    }
    e.xvi8ger4pp(0, x, y);
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            int32_t want = 0;
            for (int k = 0; k < 4; ++k)
                want += static_cast<int32_t>(x[4 * i + k]) *
                        static_cast<int32_t>(y[4 * j + k]);
            EXPECT_EQ(e.acc(0).i32[i][j], want);
        }
    }
}

TEST(MmaEngine, Int16Rank2DotProducts)
{
    MmaEngine e;
    int16_t x[8], y[8];
    for (int i = 0; i < 8; ++i) {
        x[i] = static_cast<int16_t>(100 * i - 350);
        y[i] = static_cast<int16_t>(-50 * i + 175);
    }
    e.xvi16ger2pp(5, x, y);
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            int32_t want = 0;
            for (int k = 0; k < 2; ++k)
                want += static_cast<int32_t>(x[2 * i + k]) *
                        static_cast<int32_t>(y[2 * j + k]);
            EXPECT_EQ(e.acc(5).i32[i][j], want);
        }
    }
}

TEST(MmaEngine, MfaccCopiesOut)
{
    MmaEngine e;
    double x[4] = {1, 2, 3, 4};
    double y[2] = {5, 6};
    e.xvf64gerpp(7, x, y);
    double out[4][2];
    e.xxmfacc(7, out);
    EXPECT_DOUBLE_EQ(out[2][1], 18.0);
}

TEST(GemmHelpers, FlopCount)
{
    EXPECT_EQ(mma::gemmFlops({8, 8, 8}), 1024u);
    EXPECT_EQ(mma::gemmFlops({16, 32, 4}), 4096u);
}

// ---- Parameterized kernel-vs-reference sweeps ----

class DgemmSizes : public ::testing::TestWithParam<GemmDims>
{
};

TEST_P(DgemmSizes, MmaMatchesReference)
{
    GemmDims d = GetParam();
    std::vector<double> a(static_cast<size_t>(d.m) * d.k);
    std::vector<double> b(static_cast<size_t>(d.k) * d.n);
    std::vector<double> want(static_cast<size_t>(d.m) * d.n, 0.5);
    fillRandom(a, 100 + d.m);
    fillRandom(b, 200 + d.n);
    std::vector<double> got = want;
    mma::dgemmRef(a.data(), b.data(), want.data(), d);
    mma::dgemmMma(a.data(), b.data(), got.data(), d);
    for (size_t i = 0; i < want.size(); ++i)
        ASSERT_NEAR(got[i], want[i], 1e-9) << "at " << i;
}

TEST_P(DgemmSizes, VsuMatchesReference)
{
    GemmDims d = GetParam();
    if (d.n % 4 != 0)
        GTEST_SKIP();
    std::vector<double> a(static_cast<size_t>(d.m) * d.k);
    std::vector<double> b(static_cast<size_t>(d.k) * d.n);
    std::vector<double> want(static_cast<size_t>(d.m) * d.n, -1.0);
    fillRandom(a, 300 + d.k);
    fillRandom(b, 400 + d.m);
    std::vector<double> got = want;
    mma::dgemmRef(a.data(), b.data(), want.data(), d);
    mma::dgemmVsu(a.data(), b.data(), got.data(), d);
    for (size_t i = 0; i < want.size(); ++i)
        ASSERT_NEAR(got[i], want[i], 1e-9) << "at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, DgemmSizes,
    ::testing::Values(GemmDims{8, 8, 1}, GemmDims{8, 8, 8},
                      GemmDims{16, 8, 4}, GemmDims{8, 16, 32},
                      GemmDims{24, 24, 24}, GemmDims{32, 16, 7},
                      GemmDims{16, 32, 33}, GemmDims{40, 8, 13}));

class SgemmSizes : public ::testing::TestWithParam<GemmDims>
{
};

TEST_P(SgemmSizes, MmaPanelMatchesReference)
{
    GemmDims d = GetParam();
    std::vector<float> a(static_cast<size_t>(d.m) * d.k);
    std::vector<float> b(static_cast<size_t>(d.k) * d.n);
    std::vector<float> want(static_cast<size_t>(d.m) * d.n, 0.25f);
    fillRandom(a, 500 + d.m);
    fillRandom(b, 600 + d.n);
    std::vector<float> got = want;
    mma::sgemmRef(a.data(), b.data(), want.data(), d);
    mma::sgemmMma(a.data(), b.data(), got.data(), d);
    for (size_t i = 0; i < want.size(); ++i)
        ASSERT_NEAR(got[i], want[i], 1e-3f) << "at " << i;
}

TEST_P(SgemmSizes, VsuMatchesReference)
{
    GemmDims d = GetParam();
    if (d.n % 8 != 0)
        GTEST_SKIP();
    std::vector<float> a(static_cast<size_t>(d.m) * d.k);
    std::vector<float> b(static_cast<size_t>(d.k) * d.n);
    std::vector<float> want(static_cast<size_t>(d.m) * d.n, 1.0f);
    fillRandom(a, 700 + d.k);
    fillRandom(b, 800 + d.m);
    std::vector<float> got = want;
    mma::sgemmRef(a.data(), b.data(), want.data(), d);
    mma::sgemmVsu(a.data(), b.data(), got.data(), d);
    for (size_t i = 0; i < want.size(); ++i)
        ASSERT_NEAR(got[i], want[i], 1e-3f) << "at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SgemmSizes,
    ::testing::Values(GemmDims{8, 16, 1}, GemmDims{8, 16, 16},
                      GemmDims{16, 16, 8}, GemmDims{8, 32, 24},
                      GemmDims{24, 48, 17}, GemmDims{32, 16, 64}));

class IgemmSizes : public ::testing::TestWithParam<GemmDims>
{
};

TEST_P(IgemmSizes, Int8MatchesReference)
{
    GemmDims d = GetParam();
    std::vector<int8_t> a(static_cast<size_t>(d.m) * d.k);
    std::vector<int8_t> b(static_cast<size_t>(d.k) * d.n);
    std::vector<int32_t> want(static_cast<size_t>(d.m) * d.n, 7);
    fillRandom(a, 900 + d.m);
    fillRandom(b, 1000 + d.n);
    std::vector<int32_t> got = want;
    mma::igemmRef(a.data(), b.data(), want.data(), d);
    mma::igemmMma(a.data(), b.data(), got.data(), d);
    for (size_t i = 0; i < want.size(); ++i)
        ASSERT_EQ(got[i], want[i]) << "at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, IgemmSizes,
    ::testing::Values(GemmDims{8, 16, 4}, GemmDims{8, 16, 32},
                      GemmDims{16, 32, 8}, GemmDims{24, 16, 64}));

// ---- Emission properties ----

TEST(GemmEmission, MmaStreamComposition)
{
    constexpr int kM = 8, kN = 8, kK = 16;
    std::vector<double> a(kM * kK, 1.0), b(kK * kN, 1.0), c(kM * kN, 0.0);
    mma::VectorSink sink;
    mma::dgemmMma(a.data(), b.data(), c.data(), {kM, kN, kK}, &sink);

    int gers = 0, moves = 0, loads = 0, stores = 0, branches = 0;
    for (const auto& in : sink.instrs()) {
        EXPECT_TRUE(in.gemm);
        switch (in.op) {
          case isa::OpClass::MmaGer: ++gers; break;
          case isa::OpClass::MmaMove: ++moves; break;
          case isa::OpClass::Load32B: ++loads; break;
          case isa::OpClass::Store32B: ++stores; break;
          case isa::OpClass::Branch: ++branches; break;
          default: break;
        }
    }
    EXPECT_EQ(gers, 8 * kK);      // 8 accumulators per k step
    EXPECT_EQ(moves, 16);         // 8 setaccz + 8 mfacc (one tile)
    EXPECT_EQ(loads, 4 * kK);     // 2 A + 2 B 32-byte loads per k
    EXPECT_EQ(stores, 16);        // 8 rows x 2 32-byte stores
    EXPECT_EQ(branches, kK);
}

TEST(GemmEmission, LoopPcsRepeatPerIteration)
{
    constexpr int kM = 8, kN = 8, kK = 4;
    std::vector<double> a(kM * kK, 1.0), b(kK * kN, 1.0), c(kM * kN, 0.0);
    mma::VectorSink sink;
    mma::dgemmMma(a.data(), b.data(), c.data(), {kM, kN, kK}, &sink);

    // Collect PCs of the ger ops; each iteration must reuse the same 8.
    std::set<uint64_t> gerPcs;
    for (const auto& in : sink.instrs())
        if (in.op == isa::OpClass::MmaGer)
            gerPcs.insert(in.pc);
    EXPECT_EQ(gerPcs.size(), 8u);
}

TEST(GemmEmission, BackwardBranchTakenExceptLastIteration)
{
    constexpr int kM = 8, kN = 8, kK = 5;
    std::vector<double> a(kM * kK, 1.0), b(kK * kN, 1.0), c(kM * kN, 0.0);
    mma::VectorSink sink;
    mma::dgemmMma(a.data(), b.data(), c.data(), {kM, kN, kK}, &sink);
    int taken = 0, notTaken = 0;
    for (const auto& in : sink.instrs()) {
        if (isa::isBranch(in.op))
            (in.taken ? taken : notTaken)++;
    }
    EXPECT_EQ(taken, kK - 1);
    EXPECT_EQ(notTaken, 1);
}

TEST(GemmEmission, AccumulateChainsUseAccAsSourceAndDest)
{
    constexpr int kM = 8, kN = 16, kK = 8;
    std::vector<float> a(kM * kK, 1.0f), b(kK * kN, 1.0f),
        c(kM * kN, 0.0f);
    mma::VectorSink sink;
    mma::sgemmMma(a.data(), b.data(), c.data(), {kM, kN, kK}, &sink);
    for (const auto& in : sink.instrs()) {
        if (in.op != isa::OpClass::MmaGer)
            continue;
        ASSERT_GE(in.dest, isa::reg::kAccBase);
        EXPECT_EQ(in.src[0], in.dest); // pp form accumulates
    }
}

TEST(GemmEmission, NoSinkMeansPureNumerics)
{
    constexpr int kM = 8, kN = 8, kK = 8;
    std::vector<double> a(kM * kK), b(kK * kN), want(kM * kN, 0.0);
    fillRandom(a, 1);
    fillRandom(b, 2);
    std::vector<double> got = want;
    mma::dgemmRef(a.data(), b.data(), want.data(), {kM, kN, kK});
    mma::dgemmMma(a.data(), b.data(), got.data(), {kM, kN, kK}, nullptr);
    for (size_t i = 0; i < want.size(); ++i)
        ASSERT_NEAR(got[i], want[i], 1e-9);
}
