/**
 * @file
 * Unit tests for the ISA abstraction: operation classes and the
 * fusion-pair table.
 */

#include <gtest/gtest.h>

#include "isa/fusion.h"
#include "isa/instr.h"
#include "isa/op.h"

using namespace p10ee::isa;
namespace reg = p10ee::isa::reg;

namespace {

TraceInstr
make(OpClass op, uint16_t dest = reg::kNone, uint16_t s0 = reg::kNone,
     uint16_t s1 = reg::kNone)
{
    TraceInstr in;
    in.op = op;
    in.dest = dest;
    in.src[0] = s0;
    in.src[1] = s1;
    return in;
}

TraceInstr
makeStore(uint64_t addr, uint16_t size)
{
    TraceInstr in;
    in.op = OpClass::Store;
    in.src[0] = 5;
    in.src[1] = 1;
    in.addr = addr;
    in.size = size;
    return in;
}

} // namespace

TEST(OpClassify, LoadStoreBranchVsuMma)
{
    EXPECT_TRUE(isLoad(OpClass::Load));
    EXPECT_TRUE(isLoad(OpClass::Load32B));
    EXPECT_FALSE(isLoad(OpClass::Store));
    EXPECT_TRUE(isStore(OpClass::Store32B));
    EXPECT_TRUE(isBranch(OpClass::BranchIndirect));
    EXPECT_FALSE(isBranch(OpClass::IntAlu));
    EXPECT_TRUE(isVsu(OpClass::VsuFp));
    EXPECT_TRUE(isVsu(OpClass::VsuInt));
    EXPECT_TRUE(isMma(OpClass::MmaGer));
    EXPECT_TRUE(isMma(OpClass::MmaMove));
    EXPECT_FALSE(isMma(OpClass::VsuFp));
}

TEST(OpClassify, NamesAreUniqueAndNonEmpty)
{
    std::set<std::string> seen;
    for (int i = 0; i < static_cast<int>(OpClass::NumOpClasses); ++i) {
        auto name = opClassName(static_cast<OpClass>(i));
        EXPECT_FALSE(name.empty());
        EXPECT_TRUE(seen.insert(name).second) << name;
    }
}

TEST(OpClassify, FlopAccounting)
{
    // VSU 128b FMA: 2 lanes x 2 ops; MMA ger: 4x2 FP64 tile x FMA.
    EXPECT_EQ(flopsPerInstr(OpClass::VsuFp), 4);
    EXPECT_EQ(flopsPerInstr(OpClass::MmaGer), 16);
    EXPECT_EQ(flopsPerInstr(OpClass::FpScalar), 2);
    EXPECT_EQ(flopsPerInstr(OpClass::Load), 0);
    EXPECT_EQ(flopsPerInstr(OpClass::IntAlu), 0);
}

TEST(Fusion, DependentAluPairCollapses)
{
    TraceInstr a = make(OpClass::IntAlu, 10, 1, 2);
    TraceInstr b = make(OpClass::IntAlu, 11, 10); // reads a's dest
    EXPECT_EQ(classifyFusion(a, b), FusionKind::AluAlu);
    EXPECT_TRUE(fusesToSingleOp(FusionKind::AluAlu));
}

TEST(Fusion, IndependentAluPairDoesNotFuse)
{
    TraceInstr a = make(OpClass::IntAlu, 10, 1, 2);
    TraceInstr b = make(OpClass::IntAlu, 11, 3, 4);
    EXPECT_EQ(classifyFusion(a, b), FusionKind::None);
}

TEST(Fusion, WideDependentPairSharesIssue)
{
    TraceInstr a = make(OpClass::IntAlu, 10, 1, 2);
    TraceInstr b = make(OpClass::IntAlu, 11, 10, 3);
    b.src[2] = 4; // 2 + 3 - 1 = 4 sources > 3
    EXPECT_EQ(classifyFusion(a, b), FusionKind::SharedIssue);
    EXPECT_FALSE(fusesToSingleOp(FusionKind::SharedIssue));
}

TEST(Fusion, CompareBranchFuses)
{
    TraceInstr cmp = make(OpClass::IntAlu, 20, 1, 2);
    TraceInstr br = make(OpClass::Branch, reg::kNone, 20);
    EXPECT_EQ(classifyFusion(cmp, br), FusionKind::AluBranch);
}

TEST(Fusion, IndependentBranchDoesNotFuse)
{
    TraceInstr alu = make(OpClass::IntAlu, 20, 1, 2);
    TraceInstr br = make(OpClass::Branch, reg::kNone, 21);
    EXPECT_EQ(classifyFusion(alu, br), FusionKind::None);
}

TEST(Fusion, ConsecutiveStoresFuse)
{
    TraceInstr a = makeStore(0x1000, 8);
    TraceInstr b = makeStore(0x1008, 8);
    EXPECT_EQ(classifyFusion(a, b), FusionKind::StoreStore);
}

TEST(Fusion, NonConsecutiveStoresDoNotFuse)
{
    TraceInstr a = makeStore(0x1000, 8);
    TraceInstr b = makeStore(0x1018, 8);
    EXPECT_EQ(classifyFusion(a, b), FusionKind::None);
}

TEST(Fusion, WideStoresDoNotFuse)
{
    // Paper: "two stores up to 16 bytes in length each".
    TraceInstr a = makeStore(0x1000, 32);
    a.op = OpClass::Store; // force the 32-byte size through Store class
    TraceInstr b = makeStore(0x1020, 32);
    EXPECT_EQ(classifyFusion(a, b), FusionKind::None);
}

TEST(Fusion, ConsecutiveLoadsFuse)
{
    TraceInstr a = make(OpClass::Load, 10, 1);
    a.addr = 0x2000;
    a.size = 16;
    TraceInstr b = make(OpClass::Load, 11, 1);
    b.addr = 0x2010;
    b.size = 16;
    EXPECT_EQ(classifyFusion(a, b), FusionKind::LoadLoad);
}

TEST(Fusion, AddressFormingLoadFuses)
{
    TraceInstr addis = make(OpClass::IntAlu, 9, 1, 2);
    TraceInstr ld = make(OpClass::Load, 10, 9);
    ld.addr = 0x3000;
    ld.size = 8;
    EXPECT_EQ(classifyFusion(addis, ld), FusionKind::AluLoadAddr);
}

TEST(Fusion, NoFusionAcrossTakenBranch)
{
    TraceInstr br = make(OpClass::Branch, reg::kNone, 20);
    br.taken = true;
    TraceInstr alu = make(OpClass::IntAlu, 11, 20);
    EXPECT_EQ(classifyFusion(br, alu), FusionKind::None);
}

TEST(Fusion, KindNamesDistinct)
{
    std::set<std::string> names;
    for (int k = 0; k < static_cast<int>(FusionKind::NumFusionKinds); ++k)
        EXPECT_TRUE(
            names.insert(fusionKindName(static_cast<FusionKind>(k)))
                .second);
}

TEST(TraceInstrTest, NumSrcsCountsUsed)
{
    TraceInstr in = make(OpClass::IntAlu, 5, 1, 2);
    EXPECT_EQ(in.numSrcs(), 2);
    in.src[2] = 3;
    EXPECT_EQ(in.numSrcs(), 3);
    TraceInstr empty = make(OpClass::Nop);
    EXPECT_EQ(empty.numSrcs(), 0);
}

TEST(TraceInstrTest, RegisterSpaceLayout)
{
    // The architectural register spaces must not overlap.
    EXPECT_LT(reg::kGprBase + reg::kNumGpr, reg::kVsrBase + reg::kNumVsr);
    EXPECT_LT(reg::kVsrBase + reg::kNumVsr,
              static_cast<int>(reg::kCrBase));
    EXPECT_LT(reg::kCrBase + reg::kNumCr, reg::kAccBase + reg::kNumAcc);
    EXPECT_EQ(reg::kAccBase + reg::kNumAcc, reg::kNumArchRegs);
    EXPECT_GT(reg::kNone, reg::kNumArchRegs);
}
