/**
 * @file
 * Fault-injection engine tests: site population, campaign determinism,
 * outcome classification, structured error paths, and the
 * retry/backoff/skip machinery.
 */

#include <gtest/gtest.h>

#include "core/config.h"
#include "fault/campaign.h"
#include "fault/fault.h"
#include "workloads/spec_profiles.h"

using namespace p10ee;

namespace {

fault::CampaignSpec
smallSpec()
{
    fault::CampaignSpec spec;
    spec.smt = 1;
    spec.seed = 42;
    spec.injections = 60;
    spec.warmupInstrs = 500;
    spec.measureInstrs = 1500;
    return spec;
}

} // namespace

TEST(SiteModel, ClassifiesComponents)
{
    using fault::SiteClass;
    using fault::SiteModel;
    EXPECT_EQ(SiteModel::classify("bp_gshare"),
              SiteClass::BranchPredictor);
    EXPECT_EQ(SiteModel::classify("l1d_array"), SiteClass::CacheArray);
    EXPECT_EQ(SiteModel::classify("derat"), SiteClass::CacheArray);
    EXPECT_EQ(SiteModel::classify("rf_vsr"), SiteClass::RegisterFile);
    EXPECT_EQ(SiteModel::classify("rename_map"),
              SiteClass::RegisterFile);
    EXPECT_EQ(SiteModel::classify("mma_acc"),
              SiteClass::MmaAccumulator);
    EXPECT_EQ(SiteModel::classify(fault::kProxyCounterComponent),
              SiteClass::ProxyCounter);
    EXPECT_EQ(SiteModel::classify("instr_table"), SiteClass::Control);
}

TEST(SiteModel, RejectsEmptySuiteAndBadConfig)
{
    auto cfg = core::power10();
    auto bad = fault::SiteModel::build(cfg, {});
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, common::ErrorCode::InvalidArgument);

    core::CoreConfig broken = cfg;
    broken.fetchWidth = 0;
    core::RunResult dummy;
    dummy.cycles = 100;
    auto bad2 = fault::SiteModel::build(broken, {dummy});
    ASSERT_FALSE(bad2.ok());
    EXPECT_EQ(bad2.error().code, common::ErrorCode::InvalidConfig);
}

TEST(SiteModel, SamplesOnlyKnownComponentsWithinWindow)
{
    auto cfg = core::power10();
    core::RunResult run;
    run.cycles = 1000;
    run.instrs = 1000;
    run.stats["cycles"] = 1000;
    auto sm = fault::SiteModel::build(cfg, {run});
    ASSERT_TRUE(sm.ok());
    const fault::SiteModel& model = sm.value();

    common::Xoshiro rng(7);
    for (int i = 0; i < 200; ++i) {
        auto site = model.sample(rng, 500);
        EXPECT_LT(site.atInstr, 500u);
        bool known = false;
        for (const auto& g : model.groups())
            known |= g.component == site.component;
        EXPECT_TRUE(known) << site.component;
    }
}

TEST(CampaignSpec, ValidateCollectsAllClauses)
{
    fault::CampaignSpec spec;
    spec.smt = 0;
    spec.injections = 0;
    spec.measureInstrs = 0;
    spec.cycleBudgetFactor = 0.5;
    spec.maxRetries = -1;
    spec.infraFailProb = 1.5;
    spec.sdcPowerTolFrac = 0.0;
    auto s = spec.validate();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.error().code, common::ErrorCode::InvalidArgument);
    const std::string msg = s.error().message;
    EXPECT_NE(msg.find("smt"), std::string::npos);
    EXPECT_NE(msg.find("injections"), std::string::npos);
    EXPECT_NE(msg.find("measureInstrs"), std::string::npos);
    EXPECT_NE(msg.find("cycleBudgetFactor"), std::string::npos);
    EXPECT_NE(msg.find("maxRetries"), std::string::npos);
    EXPECT_NE(msg.find("infraFailProb"), std::string::npos);
    EXPECT_NE(msg.find("sdcPowerTolFrac"), std::string::npos);

    EXPECT_TRUE(smallSpec().validate().ok());
}

TEST(Campaign, InvalidSpecYieldsStructuredError)
{
    auto spec = smallSpec();
    spec.smt = 99;
    fault::CampaignRunner runner(
        core::power10(), workloads::profileByName("xz"), spec);
    auto res = runner.run();
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, common::ErrorCode::InvalidArgument);
}

TEST(Campaign, InvalidConfigYieldsStructuredError)
{
    core::CoreConfig cfg = core::power10();
    cfg.l1d.ways = 0;
    fault::CampaignRunner runner(
        cfg, workloads::profileByName("xz"), smallSpec());
    auto res = runner.run();
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, common::ErrorCode::InvalidConfig);
}

TEST(Campaign, RunsAndAccountsEveryInjection)
{
    auto spec = smallSpec();
    fault::CampaignRunner runner(
        core::power10(), workloads::profileByName("xz"), spec);
    auto res = runner.run();
    ASSERT_TRUE(res.ok()) << res.error().str();
    const fault::CampaignReport& rep = res.value();

    EXPECT_GT(rep.goldenCycles, 0u);
    EXPECT_GT(rep.goldenPowerPj, 0.0);
    EXPECT_EQ(static_cast<int>(rep.records.size()), spec.injections);
    EXPECT_EQ(rep.total.injections + rep.skipped, spec.injections);
    EXPECT_EQ(rep.skipped, 0); // no infra failures configured
    EXPECT_EQ(rep.total.masked + rep.total.corrected + rep.total.sdc +
                  rep.total.crash,
              rep.total.injections);

    int perComponent = 0;
    for (const auto& [comp, tally] : rep.perComponent) {
        perComponent += tally.injections;
        // Every injected component carries a SERMiner prediction.
        ASSERT_TRUE(rep.predicted.count(comp)) << comp;
        const auto& p = rep.predicted.at(comp);
        EXPECT_GE(p.vt90, 0.0);
        EXPECT_LE(p.vt10, 1.0);
        // Derating is monotone in VT from above: more VT, fewer derated.
        EXPECT_GE(p.vt10 + 1e-12, p.vt50);
        EXPECT_GE(p.vt50 + 1e-12, p.vt90);
    }
    EXPECT_EQ(perComponent, rep.total.injections);
}

TEST(Campaign, BitForBitReproducible)
{
    auto spec = smallSpec();
    auto runOnce = [&spec]() {
        fault::CampaignRunner runner(
            core::power10(), workloads::profileByName("xz"), spec);
        auto res = runner.run();
        EXPECT_TRUE(res.ok());
        return std::move(res).value();
    };
    const auto a = runOnce();
    const auto b = runOnce();

    EXPECT_EQ(a.goldenCycles, b.goldenCycles);
    EXPECT_EQ(a.goldenPowerPj, b.goldenPowerPj); // exact, not approx
    ASSERT_EQ(a.records.size(), b.records.size());
    for (size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].component, b.records[i].component);
        EXPECT_EQ(a.records[i].atInstr, b.records[i].atInstr);
        EXPECT_EQ(a.records[i].outcome, b.records[i].outcome);
        EXPECT_EQ(a.records[i].retries, b.records[i].retries);
        EXPECT_EQ(a.records[i].skipped, b.records[i].skipped);
    }
}

TEST(Campaign, DifferentSeedsDiffer)
{
    auto spec = smallSpec();
    fault::CampaignRunner a(core::power10(),
                            workloads::profileByName("xz"), spec);
    spec.seed = 43;
    fault::CampaignRunner b(core::power10(),
                            workloads::profileByName("xz"), spec);
    auto ra = a.run();
    auto rb = b.run();
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    bool anyDiff =
        ra.value().goldenCycles != rb.value().goldenCycles;
    const auto& recA = ra.value().records;
    const auto& recB = rb.value().records;
    for (size_t i = 0; i < recA.size() && !anyDiff; ++i)
        anyDiff = recA[i].component != recB[i].component ||
                  recA[i].atInstr != recB[i].atInstr;
    EXPECT_TRUE(anyDiff);
}

TEST(Campaign, TransientFailuresRetryThenSkipWithoutAborting)
{
    auto spec = smallSpec();
    spec.injections = 120;
    spec.infraFailProb = 0.5;
    spec.maxRetries = 1;
    fault::CampaignRunner runner(
        core::power10(), workloads::profileByName("xz"), spec);
    auto res = runner.run();
    ASSERT_TRUE(res.ok()) << res.error().str();
    const auto& rep = res.value();

    // At 50% failure and one retry, both paths must trigger.
    EXPECT_GT(rep.retriesTotal, 0);
    EXPECT_GT(rep.skipped, 0);
    EXPECT_LT(rep.skipped, spec.injections); // most still complete
    EXPECT_EQ(rep.total.injections + rep.skipped, spec.injections);
    for (const auto& rec : rep.records)
        EXPECT_LE(rec.retries, spec.maxRetries);

    // The hostile campaign is as reproducible as a clean one.
    fault::CampaignRunner again(
        core::power10(), workloads::profileByName("xz"), spec);
    auto res2 = again.run();
    ASSERT_TRUE(res2.ok());
    EXPECT_EQ(res2.value().skipped, rep.skipped);
    EXPECT_EQ(res2.value().retriesTotal, rep.retriesTotal);
}

TEST(Campaign, ZeroRetriesSkipsOnFirstTransient)
{
    auto spec = smallSpec();
    spec.injections = 40;
    spec.infraFailProb = 0.9;
    spec.maxRetries = 0;
    fault::CampaignRunner runner(
        core::power10(), workloads::profileByName("xz"), spec);
    auto res = runner.run();
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.value().retriesTotal, 0);
    EXPECT_GT(res.value().skipped, 0);
}

TEST(Campaign, NamesAreStable)
{
    EXPECT_STREQ(fault::outcomeName(fault::Outcome::Masked), "masked");
    EXPECT_STREQ(fault::outcomeName(fault::Outcome::CrashTimeout),
                 "crash-timeout");
    EXPECT_STREQ(fault::siteClassName(fault::SiteClass::ProxyCounter),
                 "proxy-counter");
}
