/**
 * @file
 * Property-based sweeps: reference-oracle equivalence for the cache and
 * throttle-ring models, and monotonicity properties of the core model
 * under configuration sweeps.
 */

#include <gtest/gtest.h>

#include <list>
#include <memory>
#include <tuple>

#include "common/rng.h"
#include "core/cache.h"
#include "core/core.h"
#include "core/rings.h"
#include "mma/gemm.h"
#include "workloads/spec_profiles.h"
#include "workloads/synthetic.h"

using namespace p10ee;

// ---------------- Cache vs a reference LRU oracle ----------------

namespace {

/** Straightforward per-set LRU built on std::list, as the oracle. */
class LruOracle
{
  public:
    LruOracle(uint64_t sizeBytes, uint32_t ways, uint32_t lineSize)
        : ways_(ways), lineSize_(lineSize)
    {
        uint64_t lines = sizeBytes / lineSize;
        uint32_t sets = static_cast<uint32_t>(lines / ways);
        // Round down to a power of two like the model.
        while (sets & (sets - 1))
            sets &= sets - 1;
        sets_.resize(sets);
    }

    bool
    access(uint64_t addr)
    {
        uint64_t line = addr / lineSize_;
        auto& set = sets_[line % sets_.size()];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == line) {
                set.erase(it);
                set.push_front(line);
                return true;
            }
        }
        set.push_front(line);
        if (set.size() > ways_)
            set.pop_back();
        return false;
    }

  private:
    uint32_t ways_;
    uint32_t lineSize_;
    std::vector<std::list<uint64_t>> sets_;
};

} // namespace

class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(CacheGeometry, MatchesLruOracleOnRandomTraffic)
{
    auto [sizeKb, ways, line] = GetParam();
    core::CacheModel model(static_cast<uint64_t>(sizeKb) * 1024,
                           static_cast<uint32_t>(ways),
                           static_cast<uint32_t>(line));
    LruOracle oracle(static_cast<uint64_t>(sizeKb) * 1024,
                     static_cast<uint32_t>(ways),
                     static_cast<uint32_t>(line));
    common::Xoshiro rng(static_cast<uint64_t>(sizeKb * 131 + ways));
    // Mixed locality: a hot region around 2x capacity plus cold tail.
    uint64_t hotSpan = static_cast<uint64_t>(sizeKb) * 2048;
    for (int i = 0; i < 30000; ++i) {
        uint64_t addr = rng.chance(0.8)
            ? rng.below(hotSpan)
            : rng.below(1ull << 30);
        ASSERT_EQ(model.access(addr), oracle.access(addr))
            << "divergence at op " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(4, 2, 64),
                      std::make_tuple(32, 8, 64),
                      std::make_tuple(48, 6, 128),
                      std::make_tuple(256, 4, 64),
                      std::make_tuple(2048, 8, 128)));

// ---------------- ThrottleRing vs a counting oracle ----------------

class RingWidth : public ::testing::TestWithParam<int>
{
};

TEST_P(RingWidth, NeverExceedsWidthAndFindsEarliestSlot)
{
    int width = GetParam();
    core::ThrottleRing ring(width);
    std::map<uint64_t, int> oracle;
    common::Xoshiro rng(static_cast<uint64_t>(width) * 17);
    uint64_t base = 0;
    for (int i = 0; i < 20000; ++i) {
        base += rng.below(3);
        uint64_t earliest = base + rng.below(8);
        uint64_t got = ring.record(earliest);
        // Earliest slot >= earliest with spare capacity per the oracle.
        uint64_t want = earliest;
        while (oracle[want] >= width)
            ++want;
        ASSERT_EQ(got, want) << "op " << i;
        ++oracle[want];
        ASSERT_LE(oracle[want], width);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, RingWidth,
                         ::testing::Values(1, 2, 4, 8));

// ---------------- Core-model monotonicity sweeps ----------------

namespace {

double
ipcWith(const core::CoreConfig& cfg, const char* workload)
{
    const auto& prof = workloads::profileByName(workload);
    workloads::SyntheticWorkload src(prof);
    core::CoreModel m(cfg);
    core::RunOptions o;
    o.warmupInstrs = 20000;
    o.measureInstrs = 30000;
    return m.run({&src}, o).ipc();
}

} // namespace

TEST(Monotonic, L1LatencyHurts)
{
    auto cfg = core::power10();
    double prev = 1e9;
    for (uint32_t lat : {3u, 5u, 8u, 12u}) {
        auto c = cfg;
        c.l1d.latency = lat;
        double ipc = ipcWith(c, "perlbench");
        EXPECT_LE(ipc, prev * 1.02) << lat;
        prev = ipc;
    }
}

TEST(Monotonic, MemLatencyHurtsMemoryBound)
{
    auto cfg = core::power10();
    double prev = 1e9;
    for (uint32_t lat : {150u, 300u, 600u}) {
        auto c = cfg;
        c.memLatency = lat;
        double ipc = ipcWith(c, "mcf");
        EXPECT_LE(ipc, prev * 1.02) << lat;
        prev = ipc;
    }
}

TEST(Monotonic, DecodeWidthHelpsHighIpc)
{
    auto cfg = core::power10();
    double prev = 0.0;
    for (int w : {2, 4, 8}) {
        auto c = cfg;
        c.decodeWidth = w;
        c.fetchWidth = w;
        c.dispatchWidth = w;
        double ipc = ipcWith(c, "exchange2");
        EXPECT_GE(ipc, prev * 0.98) << w;
        prev = ipc;
    }
}

TEST(Monotonic, FusionCoverageHelps)
{
    auto cfg = core::power10();
    double prev = 0.0;
    for (double cov : {0.0, 0.35, 0.8}) {
        auto c = cfg;
        c.fusionCoverage = cov;
        double ipc = ipcWith(c, "exchange2");
        EXPECT_GE(ipc, prev * 0.99) << cov;
        prev = ipc;
    }
}

TEST(Monotonic, MispredictPenaltyHurtsBranchy)
{
    auto cfg = core::power10();
    double prev = 1e9;
    for (int pen : {5, 15, 40}) {
        auto c = cfg;
        c.redirectPenalty = pen;
        double ipc = ipcWith(c, "deepsjeng");
        EXPECT_LE(ipc, prev * 1.02) << pen;
        prev = ipc;
    }
}

// ---------------- GEMM random-size property sweep ----------------

class GemmSeed : public ::testing::TestWithParam<int>
{
};

TEST_P(GemmSeed, RandomSizesAllAgreeWithReference)
{
    common::Xoshiro rng(static_cast<uint64_t>(GetParam()) * 2477 + 3);
    int m = 8 * static_cast<int>(1 + rng.below(5));
    int n = 16 * static_cast<int>(1 + rng.below(3));
    int k = 4 * static_cast<int>(1 + rng.below(16));
    mma::GemmDims dims{m, n, k};

    std::vector<float> a(static_cast<size_t>(m) * k);
    std::vector<float> b(static_cast<size_t>(k) * n);
    for (auto& v : a)
        v = static_cast<float>(rng.uniform() - 0.5);
    for (auto& v : b)
        v = static_cast<float>(rng.uniform() - 0.5);
    std::vector<float> want(static_cast<size_t>(m) * n, 0.0f);
    std::vector<float> got = want;
    mma::sgemmRef(a.data(), b.data(), want.data(), dims);
    mma::sgemmMma(a.data(), b.data(), got.data(), dims);
    for (size_t i = 0; i < want.size(); ++i)
        ASSERT_NEAR(got[i], want[i], 1e-3f)
            << m << "x" << n << "x" << k << " at " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GemmSeed, ::testing::Range(0, 12));

// ---------------- Determinism across construction order ----------------

TEST(Determinism, SuiteOrderDoesNotLeakState)
{
    // Running workload A then B must give B the same result as running
    // B alone (models are per-instance; no global state).
    auto runB = []() {
        return ipcWith(core::power10(), "xz");
    };
    ipcWith(core::power10(), "perlbench");
    double afterA = runB();
    double alone = runB();
    EXPECT_DOUBLE_EQ(afterA, alone);
}
