/**
 * @file
 * Integration-level tests for the core timing model: determinism,
 * accounting invariants, and the qualitative behaviours the paper's
 * design changes rely on.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/core.h"
#include "mma/gemm.h"
#include "workloads/kernels.h"
#include "workloads/spec_profiles.h"
#include "workloads/synthetic.h"

using namespace p10ee;
using core::CoreModel;
using core::RunOptions;

namespace {

core::RunResult
runProfile(const core::CoreConfig& cfg, const std::string& name, int smt,
           uint64_t instrs, bool timings = false)
{
    const auto& prof = workloads::profileByName(name);
    std::vector<std::unique_ptr<workloads::SyntheticWorkload>> srcs;
    std::vector<workloads::InstrSource*> ptrs;
    for (int t = 0; t < smt; ++t) {
        srcs.push_back(
            std::make_unique<workloads::SyntheticWorkload>(prof, t));
        ptrs.push_back(srcs.back().get());
    }
    CoreModel m(cfg);
    RunOptions o;
    o.warmupInstrs = 20000u * static_cast<unsigned>(smt);
    o.measureInstrs = instrs;
    o.collectTimings = timings;
    return m.run(ptrs, o);
}

core::RunResult
runLoop(const core::CoreConfig& cfg,
        const std::vector<isa::TraceInstr>& loop, uint64_t instrs,
        bool timings = false)
{
    workloads::ReplaySource src("loop", loop);
    CoreModel m(cfg);
    RunOptions o;
    o.warmupInstrs = 15000;
    o.measureInstrs = instrs;
    o.collectTimings = timings;
    return m.run({&src}, o);
}

} // namespace

TEST(CoreModel, DeterministicRuns)
{
    auto cfg = core::power10();
    auto a = runProfile(cfg, "perlbench", 2, 40000);
    auto b = runProfile(cfg, "perlbench", 2, 40000);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_EQ(a.stats, b.stats);
}

TEST(CoreModel, InstructionAccounting)
{
    auto cfg = core::power10();
    auto r = runProfile(cfg, "xz", 1, 30000);
    EXPECT_EQ(r.instrs, 30000u);
    EXPECT_EQ(r.stats.at("commit.instr"), 30000u);
    // Fusion absorbs some instructions into fewer internal ops.
    EXPECT_LE(r.stats.at("commit.op"), r.stats.at("commit.instr"));
    EXPECT_EQ(r.stats.at("commit.op"), r.ops);
}

TEST(CoreModel, IpcWithinPhysicalBounds)
{
    for (auto cfg : {core::power9(), core::power10()}) {
        auto r = runProfile(cfg, "exchange2", 1, 40000);
        EXPECT_GT(r.ipc(), 0.1);
        EXPECT_LE(r.ipc(), cfg.fetchWidth);
    }
}

TEST(CoreModel, Power10OutperformsPower9OnSuite)
{
    double sum9 = 0.0, sum10 = 0.0;
    for (const char* name : {"perlbench", "x264", "xz", "deepsjeng"}) {
        sum9 += runProfile(core::power9(), name, 1, 40000).ipc();
        sum10 += runProfile(core::power10(), name, 1, 40000).ipc();
    }
    EXPECT_GT(sum10, sum9 * 1.1);
}

TEST(CoreModel, FusionOnlyOnPower10)
{
    auto r9 = runProfile(core::power9(), "exchange2", 1, 40000);
    auto r10 = runProfile(core::power10(), "exchange2", 1, 40000);
    EXPECT_EQ(r9.stats.count("fusion.pair"), 0u);
    EXPECT_GT(r10.stats.at("fusion.pair"), 500u);
}

TEST(CoreModel, EaTaggingCutsTranslations)
{
    // POWER9 translates on every access; POWER10 only on L1 misses.
    auto r9 = runProfile(core::power9(), "perlbench", 1, 40000);
    auto r10 = runProfile(core::power10(), "perlbench", 1, 40000);
    double perLoad9 = static_cast<double>(r9.stats.at("derat.access")) /
                      static_cast<double>(r9.stats.at("lsu.ld"));
    double perLoad10 = static_cast<double>(r10.stats.at("derat.access")) /
                       static_cast<double>(r10.stats.at("lsu.ld"));
    EXPECT_GT(perLoad9, 0.9);  // nearly every load translates
    EXPECT_LT(perLoad10, 0.3); // only misses translate
}

TEST(CoreModel, StoreMergingOnlyOnPower10)
{
    auto daxpy = workloads::makeDaxpy(32 * 1024);
    CoreModel m9(core::power9()), m10(core::power10());
    RunOptions o;
    o.warmupInstrs = 10000;
    o.measureInstrs = 30000;
    auto r9 = m9.run({daxpy.get()}, o);
    auto daxpy2 = workloads::makeDaxpy(32 * 1024);
    auto r10 = m10.run({daxpy2.get()}, o);
    EXPECT_EQ(r9.stats.count("lsu.st_merge"), 0u);
    EXPECT_GT(r10.stats.at("lsu.st_merge"), 1000u);
}

TEST(CoreModel, InfiniteL2NeverMissesL2)
{
    const auto& prof = workloads::profileByName("mcf");
    workloads::SyntheticWorkload src(prof);
    CoreModel m(core::power10());
    RunOptions o;
    o.warmupInstrs = 20000;
    o.measureInstrs = 30000;
    o.infiniteL2 = true;
    auto r = m.run({&src}, o);
    EXPECT_EQ(r.stats.count("l2.miss"), 0u);
    EXPECT_EQ(r.stats.count("mem.access"), 0u);
}

TEST(CoreModel, InfiniteL2SpeedsUpMemoryBound)
{
    auto chip = runProfile(core::power10(), "mcf", 1, 30000);
    const auto& prof = workloads::profileByName("mcf");
    workloads::SyntheticWorkload src(prof);
    CoreModel m(core::power10());
    RunOptions o;
    o.warmupInstrs = 20000;
    o.measureInstrs = 30000;
    o.infiniteL2 = true;
    auto coreOnly = m.run({&src}, o);
    EXPECT_GT(coreOnly.ipc(), chip.ipc() * 1.3);
}

TEST(CoreModel, PointerChaseSlowerThanStreaming)
{
    auto chase = workloads::makePointerChase(16 * 1024 * 1024);
    auto daxpy = workloads::makeDaxpy(16 * 1024 * 1024);
    CoreModel m1(core::power10()), m2(core::power10());
    RunOptions o;
    o.warmupInstrs = 10000;
    o.measureInstrs = 20000;
    auto rChase = m1.run({chase.get()}, o);
    auto rDaxpy = m2.run({daxpy.get()}, o);
    EXPECT_LT(rChase.ipc() * 3.0, rDaxpy.ipc());
}

TEST(CoreModel, PrefetcherCoversStreams)
{
    auto cfg = core::power10();
    auto weak = cfg;
    weak.prefetchStreams = 1;
    weak.prefetchDepth = 1;
    auto strong = runProfile(cfg, "x264", 1, 40000);
    auto crippled = runProfile(weak, "x264", 1, 40000);
    EXPECT_GT(strong.ipc(), crippled.ipc());
}

TEST(CoreModel, SmtIncreasesThroughput)
{
    auto st = runProfile(core::power10(), "perlbench", 1, 40000);
    auto smt4 = runProfile(core::power10(), "perlbench", 4, 80000);
    EXPECT_GT(smt4.ipc(), st.ipc() * 1.2);
}

TEST(CoreModel, TimingsCoverMeasuredInstructions)
{
    auto r = runProfile(core::power10(), "xz", 1, 25000, true);
    // A handful of measurement-boundary stragglers are excluded.
    EXPECT_GE(r.timings.size(), 23500u); // in-flight window at the boundary
    EXPECT_LE(r.timings.size(), 25000u);
    for (size_t i = 0; i < r.timings.size(); i += 97) {
        ASSERT_LE(r.timings[i].issue, r.timings[i].complete);
        ASSERT_LE(r.timings[i].complete, r.cycles + 2000);
    }
}

TEST(CoreModel, FlopAccountingOnGemm)
{
    constexpr int kD = 16;
    std::vector<double> a(kD * kD, 1.0), b(kD * kD, 1.0), c(kD * kD, 0.0);
    mma::VectorSink sink;
    mma::dgemmMma(a.data(), b.data(), c.data(), {kD, kD, kD}, &sink);
    auto r = runLoop(core::power10(), sink.instrs(), 60000);
    // Every MmaGer contributes 16 flops.
    EXPECT_EQ(r.flops, 16u * r.stats.at("mma.ger"));
    EXPECT_GT(r.flopsPerCycle(), 4.0);
}

TEST(CoreModel, MmaChainsBeatVsuChains)
{
    // The MMA's in-unit accumulators allow back-to-back ger issue; the
    // same GEMM via VSU FMAs stalls on accumulator latency (paper
    // §II-C bullet 3).
    constexpr int kD = 32;
    std::vector<double> a(kD * kD, 1.0), b(kD * kD, 1.0);
    std::vector<double> c1(kD * kD, 0.0), c2(kD * kD, 0.0);
    mma::VectorSink mmaSink, vsuSink;
    mma::dgemmMma(a.data(), b.data(), c1.data(), {kD, kD, kD}, &mmaSink);
    mma::dgemmVsu(a.data(), b.data(), c2.data(), {kD, kD, kD}, &vsuSink);
    auto rm = runLoop(core::power10(), mmaSink.instrs(), 80000);
    auto rv = runLoop(core::power10(), vsuSink.instrs(), 80000);
    EXPECT_GT(rm.flopsPerCycle(), rv.flopsPerCycle() * 2.0);
}

TEST(CoreModel, BiggerWindowHelpsMemoryBound)
{
    auto cfg = core::power10();
    auto small = cfg;
    small.robSize = 128;
    auto big = runProfile(cfg, "mcf", 1, 30000);
    auto narrow = runProfile(small, "mcf", 1, 30000);
    EXPECT_GE(big.ipc(), narrow.ipc());
}

TEST(CoreModel, MispredictsCostCycles)
{
    auto cfg = core::power10();
    auto blind = cfg;
    blind.bp.bimodalBits = 4;
    blind.bp.gshareBits = 4;
    blind.bp.choiceBits = 4;
    blind.bp.secondGshare = false;
    blind.bp.localPattern = false;
    auto good = runProfile(cfg, "deepsjeng", 1, 40000);
    auto bad = runProfile(blind, "deepsjeng", 1, 40000);
    EXPECT_GT(bad.perKilo("bp.mispredict"),
              good.perKilo("bp.mispredict"));
    EXPECT_GT(good.ipc(), bad.ipc());
}

TEST(CoreModel, WastedWorkTracksMispredicts)
{
    auto r = runProfile(core::power10(), "deepsjeng", 1, 40000);
    if (r.stats.at("bp.mispredict") > 0)
        EXPECT_GT(r.stats.at("flush.wasted"), r.stats.at("bp.mispredict"));
}

TEST(CoreModel, RunResultHelpers)
{
    core::RunResult r;
    r.cycles = 200;
    r.instrs = 100;
    r.flops = 400;
    r.stats["x"] = 50;
    EXPECT_DOUBLE_EQ(r.ipc(), 0.5);
    EXPECT_DOUBLE_EQ(r.cpi(), 2.0);
    EXPECT_DOUBLE_EQ(r.flopsPerCycle(), 2.0);
    EXPECT_DOUBLE_EQ(r.perKilo("x"), 500.0);
    EXPECT_DOUBLE_EQ(r.perKilo("missing"), 0.0);
}
