/**
 * @file
 * Tests for the socket roll-up model and the PFLY/CLY yield analysis.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/core.h"
#include "pm/yield.h"
#include "socket/socket.h"
#include "workloads/spec_profiles.h"
#include "workloads/synthetic.h"

using namespace p10ee;

namespace {

struct CoreMeasurement
{
    core::RunResult run;
    power::PowerBreakdown power;
};

CoreMeasurement
measureCore(const core::CoreConfig& cfg, const char* name)
{
    const auto& prof = workloads::profileByName(name);
    std::vector<std::unique_ptr<workloads::SyntheticWorkload>> srcs;
    std::vector<workloads::InstrSource*> ptrs;
    for (int t = 0; t < 8; ++t) {
        srcs.push_back(
            std::make_unique<workloads::SyntheticWorkload>(prof, t));
        ptrs.push_back(srcs.back().get());
    }
    core::CoreModel m(cfg);
    core::RunOptions o;
    o.warmupInstrs = 120000;
    o.measureInstrs = 50000;
    CoreMeasurement out;
    out.run = m.run(ptrs, o);
    power::EnergyModel energy(cfg);
    out.power = energy.evalCounters(out.run);
    return out;
}

} // namespace

TEST(Socket, MoreCoresMoreThroughputUntilPowerBinds)
{
    socket::SocketConfig sc;
    socket::SocketModel sock(sc);
    auto m = measureCore(core::power10(), "perlbench");
    double prev = 0.0;
    for (int n : {1, 4, 8, 15}) {
        auto r = sock.evaluate(m.run, m.power, n);
        EXPECT_GT(r.throughput, prev) << n;
        EXPECT_LE(r.watts, sc.socketTdpWatts * 1.02);
        prev = r.throughput;
    }
}

TEST(Socket, FrequencyDropsAsCoresFill)
{
    socket::SocketConfig sc;
    socket::SocketModel sock(sc);
    auto m = measureCore(core::power10(), "x264");
    auto few = sock.evaluate(m.run, m.power, 2);
    auto many = sock.evaluate(m.run, m.power, 15);
    EXPECT_GE(few.freqGhz, many.freqGhz);
}

TEST(Socket, MemoryBoundWorkloadsContendMore)
{
    socket::SocketConfig sc;
    socket::SocketModel sock(sc);
    auto cpu = measureCore(core::power10(), "exchange2");
    auto mem = measureCore(core::power10(), "mcf");
    auto cpu1 = sock.evaluate(cpu.run, cpu.power, 1);
    auto cpu15 = sock.evaluate(cpu.run, cpu.power, 15);
    auto mem1 = sock.evaluate(mem.run, mem.power, 1);
    auto mem15 = sock.evaluate(mem.run, mem.power, 15);
    // Normalize by the WOF frequency so the comparison isolates the
    // shared-resource contention from power-limited clocking.
    double cpuScale = (cpu15.throughput / cpu15.freqGhz / 15.0) /
                      (cpu1.throughput / cpu1.freqGhz);
    double memScale = (mem15.throughput / mem15.freqGhz / 15.0) /
                      (mem1.throughput / mem1.freqGhz);
    EXPECT_GT(cpuScale, memScale);
}

TEST(Socket, Power10SocketMoreEfficientThanPower9)
{
    socket::SocketConfig sc;
    socket::SocketModel sock(sc);
    auto m9 = measureCore(core::power9(), "perlbench");
    auto m10 = measureCore(core::power10(), "perlbench");
    auto b9 = sock.bestEfficiencyPoint(m9.run, m9.power);
    auto b10 = sock.bestEfficiencyPoint(m10.run, m10.power);
    // The halved core power lets POWER10 fill the socket with more
    // cores at better efficiency (Table I's socket-level claim).
    EXPECT_GT(b10.efficiency(), b9.efficiency() * 1.5);
    EXPECT_GE(b10.activeCores, b9.activeCores);
}

TEST(Yield, DeterministicForSeed)
{
    pm::YieldParams p;
    auto a = pm::analyzeYield(p, 20000, 7);
    auto b = pm::analyzeYield(p, 20000, 7);
    EXPECT_EQ(a.cly, b.cly);
    EXPECT_EQ(a.pfly, b.pfly);
    EXPECT_EQ(a.freqBins, b.freqBins);
}

TEST(Yield, FractionsAreProbabilities)
{
    pm::YieldParams p;
    auto r = pm::analyzeYield(p, 50000, 11);
    EXPECT_GT(r.cly, 0.0);
    EXPECT_LE(r.cly, 1.0);
    EXPECT_GT(r.pfly, 0.0);
    EXPECT_LE(r.pfly, 1.0);
    EXPECT_LE(r.sellable, std::min(r.cly, r.pfly) + 1e-12);
    uint64_t binned = 0;
    for (uint64_t b : r.freqBins)
        binned += b;
    EXPECT_EQ(binned, 50000u);
}

TEST(Yield, SparesImproveCly)
{
    pm::YieldParams strict;
    strict.coresPerChip = 15;
    strict.coresOffered = 15;
    pm::YieldParams spare = strict;
    spare.coresPerChip = 16; // one spare core on the die
    auto a = pm::analyzeYield(strict, 40000, 13);
    auto b = pm::analyzeYield(spare, 40000, 13);
    EXPECT_GT(b.cly, a.cly + 0.1);
}

TEST(Yield, TighterPowerLimitHurtsPfly)
{
    pm::YieldParams loose;
    pm::YieldParams tight = loose;
    tight.socketPowerLimit = loose.powerNomWatts *
        loose.coresOffered + loose.uncoreWatts; // no headroom
    auto a = pm::analyzeYield(loose, 40000, 17);
    auto b = pm::analyzeYield(tight, 40000, 17);
    EXPECT_LE(b.pfly, a.pfly);
}

TEST(Yield, LowerDefectRateHelps)
{
    pm::YieldParams bad;
    bad.coreDefectProb = 0.10;
    pm::YieldParams good = bad;
    good.coreDefectProb = 0.01;
    auto a = pm::analyzeYield(bad, 30000, 19);
    auto b = pm::analyzeYield(good, 30000, 19);
    EXPECT_GT(b.cly, a.cly);
}
