/**
 * @file
 * Tests of the distributed sweep fabric: wire-format round-trips and
 * hostile-input fuzzing for the worker events, the shard-cache byte
 * container as the transfer format, fleet address parsing, and the
 * FleetRunner's robustness ladder — graceful degradation with zero or
 * unreachable workers, garbage-spewing workers, chaos kills and
 * suspensions against real spawned `p10d` children — with the merged
 * report byte-identical to the single-process run throughout.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "api/service.h"
#include "common/hex.h"
#include "fabric/fleet.h"
#include "fabric/spawn.h"
#include "fabric/wire.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/protocol.h"
#include "sweep/cache.h"
#include "sweep/spec.h"

using namespace p10ee;

namespace {

const char* kSpecJson =
    "{\"configs\":[\"power10\"],\"workloads\":[\"perlbench\",\"xz\"],"
    "\"smt\":[1,2],\"seeds\":2,\"instrs\":2000,\"warmup\":500}";

sweep::SweepSpec
testSpec()
{
    auto specOr = sweep::SweepSpec::fromJson(kSpecJson);
    EXPECT_TRUE(specOr.ok());
    return specOr.value();
}

/** The canonical bytes every fleet topology must reproduce. */
std::string
libraryReportBytes()
{
    api::Service service;
    api::SweepOptions opts;
    opts.jobs = 2;
    auto result = service.runSweep(testSpec(), opts);
    EXPECT_TRUE(result.ok());
    return api::Service::mergedReport(testSpec(), result.value())
        .toJson();
}

std::string
fleetReportBytes(const common::Expected<sweep::SweepResult>& resultOr)
{
    EXPECT_TRUE(resultOr.ok())
        << (resultOr.ok() ? "" : resultOr.error().str());
    return api::Service::mergedReport(testSpec(), resultOr.value())
        .toJson();
}

std::string
freshDir(const std::string& stem)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() / stem).string();
    std::filesystem::remove_all(dir);
    return dir;
}

/** A real shard entry (the wire transfer format) for fuzzing. */
std::vector<uint8_t>
realEntry(const sweep::SweepSpec& spec, const sweep::ShardSpec& shard)
{
    api::ShardResult res;
    res.index = shard.index;
    res.key = shard.key();
    res.ok = true;
    res.instrs = 1234;
    res.cycles = 2000;
    return sweep::ShardCache::encodeEntry(spec, shard, res);
}

/**
 * A deliberately misbehaving "worker": accepts connections and answers
 * every request line according to its mode. Runs until stop().
 */
class FakeWorker
{
  public:
    enum class Mode
    {
        Garbage,   ///< non-JSON noise for every request
        SoftError, ///< well-formed error event for every request
        Truncate   ///< half an accepted event, then hang up
    };

    explicit FakeWorker(Mode mode) : mode_(mode)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd_, 0);
        int one = 1;
        ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = 0;
        EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)),
                  0);
        EXPECT_EQ(::listen(fd_, 16), 0);
        socklen_t len = sizeof(addr);
        EXPECT_EQ(::getsockname(
                      fd_, reinterpret_cast<sockaddr*>(&addr), &len),
                  0);
        port_ = ntohs(addr.sin_port);
        thread_ = std::thread([this] { acceptLoop(); });
    }

    ~FakeWorker()
    {
        stop_.store(true);
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        thread_.join();
    }

    uint16_t port() const { return port_; }

  private:
    void
    acceptLoop()
    {
        while (!stop_.load()) {
            const int conn = ::accept(fd_, nullptr, nullptr);
            if (conn < 0)
                break;
            serve(conn);
            ::close(conn);
        }
    }

    void
    serve(int conn)
    {
        std::string buf;
        char chunk[4096];
        while (!stop_.load()) {
            const ssize_t n = ::recv(conn, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return;
            buf.append(chunk, static_cast<size_t>(n));
            size_t nl;
            while ((nl = buf.find('\n')) != std::string::npos) {
                const std::string line = buf.substr(0, nl);
                buf.erase(0, nl + 1);
                std::string id = "?";
                if (auto reqOr = service::Request::parse(line);
                    reqOr.ok())
                    id = reqOr.value().id;
                std::string reply;
                switch (mode_) {
                  case Mode::Garbage:
                    reply = "*** not json at all ***\n";
                    break;
                  case Mode::SoftError:
                    reply = "{\"id\":\"" + id +
                            "\",\"event\":\"error\",\"code\":"
                            "\"internal\",\"message\":\"synthetic "
                            "worker failure\"}\n";
                    break;
                  case Mode::Truncate:
                    reply = "{\"id\":\"" + id +
                            "\",\"event\":\"acc"; // mid-token cut
                    break;
                }
                (void)::send(conn, reply.data(), reply.size(),
                             MSG_NOSIGNAL);
                if (mode_ == Mode::Truncate)
                    return; // hang up mid-stream
            }
        }
    }

    Mode mode_;
    int fd_ = -1;
    uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

} // namespace

// --- Wire format ---

TEST(Wire, ShardRequestRoundTripsThroughProtocolParse)
{
    const sweep::SweepSpec spec = testSpec();
    const std::string line =
        fabric::shardRequestLine("s3a0", spec, 3, 150, true);
    auto reqOr = service::Request::parse(line);
    ASSERT_TRUE(reqOr.ok()) << reqOr.error().str();
    const service::Request& req = reqOr.value();
    EXPECT_EQ(req.type, service::RequestType::Shard);
    EXPECT_EQ(req.id, "s3a0");
    EXPECT_EQ(req.shardIndex, 3u);
    EXPECT_EQ(req.heartbeatMs, 150u);
    EXPECT_TRUE(req.remoteCache);
    // The embedded spec is the canonical rendering: it expands to the
    // same shards as the original.
    EXPECT_EQ(req.spec.toJson(), spec.toJson());
}

TEST(Wire, SweepSpecJsonRoundTripIsExact)
{
    const sweep::SweepSpec spec = testSpec();
    auto again = sweep::SweepSpec::fromJson(spec.toJson());
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value().toJson(), spec.toJson());
}

TEST(Wire, CacheResultRoundTripsThroughProtocolParse)
{
    const std::vector<uint8_t> entry = {0xde, 0xad, 0xbe, 0xef};
    auto hitOr = service::Request::parse(
        fabric::cacheResultLine("c1", true, entry));
    ASSERT_TRUE(hitOr.ok()) << hitOr.error().str();
    EXPECT_EQ(hitOr.value().type, service::RequestType::CacheResult);
    EXPECT_TRUE(hitOr.value().cacheHit);
    EXPECT_EQ(hitOr.value().cacheData, entry);

    auto missOr = service::Request::parse(
        fabric::cacheResultLine("c1", false, {}));
    ASSERT_TRUE(missOr.ok());
    EXPECT_FALSE(missOr.value().cacheHit);
    EXPECT_TRUE(missOr.value().cacheData.empty());
}

TEST(Wire, WorkerEventsRoundTripThroughBuilders)
{
    auto hb = fabric::WorkerEvent::parse(service::heartbeatLine("h1"));
    ASSERT_TRUE(hb.ok());
    EXPECT_EQ(hb.value().kind, fabric::WorkerEvent::Kind::Heartbeat);
    EXPECT_EQ(hb.value().id, "h1");

    const uint64_t key = 0xfedcba9876543210ULL;
    auto get =
        fabric::WorkerEvent::parse(service::cacheGetLine("g1", key));
    ASSERT_TRUE(get.ok());
    EXPECT_EQ(get.value().kind, fabric::WorkerEvent::Kind::CacheGet);
    EXPECT_EQ(get.value().key, key);

    const std::vector<uint8_t> entry = {1, 2, 3, 0xff};
    auto put = fabric::WorkerEvent::parse(
        service::cachePutLine("p1", key, entry));
    ASSERT_TRUE(put.ok());
    EXPECT_EQ(put.value().kind, fabric::WorkerEvent::Kind::CachePut);
    EXPECT_EQ(put.value().key, key);
    EXPECT_EQ(put.value().data, entry);

    auto done = fabric::WorkerEvent::parse(
        service::shardDoneLine("d1", 7, true, entry));
    ASSERT_TRUE(done.ok());
    EXPECT_EQ(done.value().kind, fabric::WorkerEvent::Kind::ShardDone);
    EXPECT_EQ(done.value().index, 7u);
    EXPECT_TRUE(done.value().cached);
    EXPECT_EQ(done.value().data, entry);
}

TEST(Wire, CacheKeyHexIsStrict)
{
    EXPECT_EQ(service::cacheKeyHex(0xfedcba9876543210ULL),
              "fedcba9876543210");
    auto ok = service::parseCacheKeyHex("fedcba9876543210");
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value(), 0xfedcba9876543210ULL);
    // Keys > 2^53 cannot survive a JSON number round-trip, which is
    // why they travel as strings — and only exactly-16-lowercase-hex.
    EXPECT_FALSE(service::parseCacheKeyHex("FEDCBA9876543210").ok());
    EXPECT_FALSE(service::parseCacheKeyHex("fedcba987654321").ok());
    EXPECT_FALSE(service::parseCacheKeyHex("fedcba98765432100").ok());
    EXPECT_FALSE(service::parseCacheKeyHex("0xdcba9876543210").ok());
    EXPECT_FALSE(service::parseCacheKeyHex("").ok());
}

TEST(Wire, HostileEventsAreStructuredErrors)
{
    // The same discipline as the request parser's hostile-input suite:
    // garbage in, structured Error out, never a crash or a throw.
    const char* hostile[] = {
        "",
        "not json",
        "[]",
        "42",
        "{\"event\":\"heartbeat\"}",                      // no id
        "{\"id\":\"x\"}",                                 // no event
        "{\"id\":\"x\",\"event\":\"warp\"}",              // unknown
        "{\"id\":\"x\",\"event\":\"heartbeat\",\"z\":1}", // extra key
        "{\"id\":\"x\",\"event\":\"cache_get\"}",         // no key
        "{\"id\":\"x\",\"event\":\"cache_get\",\"key\":12}",
        "{\"id\":\"x\",\"event\":\"cache_get\",\"key\":\"zz\"}",
        "{\"id\":\"x\",\"event\":\"cache_put\",\"key\":"
        "\"fedcba9876543210\",\"data\":\"abc\"}", // odd-length hex
        "{\"id\":\"x\",\"event\":\"cache_put\",\"key\":"
        "\"fedcba9876543210\",\"data\":\"xy\"}", // non-hex
        "{\"id\":\"x\",\"event\":\"shard_done\",\"cached\":true,"
        "\"data\":\"00\"}", // no index
        "{\"id\":\"x\",\"event\":\"shard_done\",\"index\":1,"
        "\"cached\":1,\"data\":\"00\"}", // cached not bool
        "{\"id\":\"x\",\"event\":\"error\",\"code\":\"internal\"}",
    };
    for (const char* line : hostile) {
        auto ev = fabric::WorkerEvent::parse(line);
        EXPECT_FALSE(ev.ok()) << line;
    }
    // Oversized line: rejected before JSON parsing.
    std::string huge = "{\"id\":\"x\",\"event\":\"heartbeat\",";
    huge.append(service::kMaxRequestBytes + 64, ' ');
    EXPECT_FALSE(fabric::WorkerEvent::parse(huge).ok());
}

TEST(Wire, TruncatedShardDoneNeverParsesAtAnyPrefix)
{
    auto shardsOr = testSpec().expand();
    ASSERT_TRUE(shardsOr.ok());
    const std::string line = service::shardDoneLine(
        "t1", 0, false, realEntry(testSpec(), shardsOr.value()[0]));
    // A truncated NDJSON line must fail to parse at every cut point —
    // the coordinator treats any prefix as a protocol violation.
    for (size_t cut = 0; cut < line.size(); ++cut) {
        auto ev = fabric::WorkerEvent::parse(line.substr(0, cut));
        EXPECT_FALSE(ev.ok()) << "prefix length " << cut;
    }
    EXPECT_TRUE(fabric::WorkerEvent::parse(line).ok());
}

TEST(Wire, TraceKeyRoundTripsWhenPresentAndDefaultsOff)
{
    const sweep::SweepSpec spec = testSpec();
    const std::string good = obs::TraceContext::derive(7).str();

    // Coordinator -> worker: the shard request carries the wire string
    // verbatim; absent means tracing is off for this shard.
    auto traced = service::Request::parse(
        fabric::shardRequestLine("s1a0", spec, 1, 50, true, good));
    ASSERT_TRUE(traced.ok()) << traced.error().str();
    EXPECT_EQ(traced.value().trace, good);
    auto untraced = service::Request::parse(
        fabric::shardRequestLine("s1a0", spec, 1, 50, true));
    ASSERT_TRUE(untraced.ok());
    EXPECT_TRUE(untraced.value().trace.empty());

    // Worker -> coordinator: heartbeat echoes the trace; shard_done
    // echoes it together with the worker-side durations.
    auto hb = fabric::WorkerEvent::parse(
        service::heartbeatLine("s1a0", good));
    ASSERT_TRUE(hb.ok());
    EXPECT_EQ(hb.value().trace, good);
    EXPECT_TRUE(fabric::WorkerEvent::parse(service::heartbeatLine("h1"))
                    .value()
                    .trace.empty());

    auto done = fabric::WorkerEvent::parse(
        service::shardDoneLine("s1a0", 3, false, {0xab}, good, 10, 20));
    ASSERT_TRUE(done.ok()) << done.error().str();
    EXPECT_EQ(done.value().trace, good);
    EXPECT_EQ(done.value().queueUs, 10u);
    EXPECT_EQ(done.value().execUs, 20u);
}

TEST(Wire, TraceKeyFuzzRejectsEveryMalformedShape)
{
    const sweep::SweepSpec spec = testSpec();
    const std::string good = obs::TraceContext::derive(7).str();
    ASSERT_EQ(good.size(), 49u);

    std::vector<std::string> bad;
    bad.push_back(good.substr(0, 48)); // truncated
    bad.push_back(good + "0");         // overlong
    bad.push_back("");                 // present but empty
    {
        std::string s = good; // separator overwritten
        s[32] = '0';
        bad.push_back(s);
    }
    {
        std::string s = good; // separator in the wrong column
        std::swap(s[31], s[32]);
        bad.push_back(s);
    }
    {
        std::string s = good; // non-hex digit
        s[0] = 'g';
        bad.push_back(s);
    }
    {
        std::string s = good; // uppercase hex is not canonical
        for (char& c : s)
            c = static_cast<char>(std::toupper(c));
        bad.push_back(s);
    }
    // The all-zero context is the "tracing off" sentinel — it must
    // never be accepted off the wire as a real trace.
    bad.push_back(std::string(32, '0') + "-" + std::string(16, '0'));

    const std::string requestLine =
        fabric::shardRequestLine("s1a0", spec, 1, 50, true, good);
    for (const std::string& b : bad) {
        // Request side (coordinator -> worker).
        std::string req = requestLine;
        req.replace(req.find(good), good.size(), b);
        EXPECT_FALSE(service::Request::parse(req).ok()) << b;
        // Event side (worker -> coordinator), heartbeat and shard_done.
        EXPECT_FALSE(fabric::WorkerEvent::parse(
                         "{\"id\":\"x\",\"event\":\"heartbeat\","
                         "\"trace\":\"" +
                         b + "\"}")
                         .ok())
            << b;
        std::string doneLn = service::shardDoneLine("s1a0", 3, false,
                                                    {0xab}, good, 1, 2);
        doneLn.replace(doneLn.find(good), good.size(), b);
        EXPECT_FALSE(fabric::WorkerEvent::parse(doneLn).ok()) << b;
    }

    // Wrong JSON type: a numeric trace is a protocol violation too.
    EXPECT_FALSE(fabric::WorkerEvent::parse(
                     "{\"id\":\"x\",\"event\":\"heartbeat\","
                     "\"trace\":7}")
                     .ok());
}

TEST(Wire, ShardDoneTraceAndTimingsAreAllOrNothing)
{
    const std::string good = obs::TraceContext::derive(7).str();
    const std::string traced =
        service::shardDoneLine("d1", 3, false, {0xab}, good, 10, 20);
    ASSERT_TRUE(fabric::WorkerEvent::parse(traced).ok());

    // A traced shard_done missing either duration is rejected.
    auto without = [&](const std::string& key) {
        std::string line = traced;
        const size_t at = line.find(",\"" + key + "\"");
        EXPECT_NE(at, std::string::npos);
        const size_t end = line.find_first_of(",}", at + 1 + key.size() + 3);
        line.erase(at, end - at);
        return line;
    };
    auto noQueue = fabric::WorkerEvent::parse(without("queue_us"));
    ASSERT_FALSE(noQueue.ok());
    EXPECT_NE(noQueue.error().message.find(
                  "must carry queue_us and exec_us"),
              std::string::npos);
    EXPECT_FALSE(fabric::WorkerEvent::parse(without("exec_us")).ok());

    // And an untraced shard_done must not smuggle durations in.
    std::string untraced =
        service::shardDoneLine("d1", 3, false, {0xab});
    untraced.insert(untraced.size() - 1, ",\"queue_us\":10");
    auto smuggled = fabric::WorkerEvent::parse(untraced);
    ASSERT_FALSE(smuggled.ok());
    EXPECT_NE(smuggled.error().message.find("require 'trace'"),
              std::string::npos);
}

// --- Entry container as transfer format ---

TEST(EntryContainer, DecodeValidatesIdentityAndIntegrity)
{
    const sweep::SweepSpec spec = testSpec();
    auto shardsOr = spec.expand();
    ASSERT_TRUE(shardsOr.ok());
    const auto& shards = shardsOr.value();
    const std::vector<uint8_t> entry = realEntry(spec, shards[0]);

    auto decoded = sweep::ShardCache::decodeEntry(entry, spec, shards[0]);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->index, shards[0].index);
    EXPECT_EQ(decoded->key, shards[0].key());
    EXPECT_EQ(decoded->instrs, 1234u);

    // Wrong shard: the payload is internally valid but names another
    // shard — identity check refuses it.
    EXPECT_FALSE(
        sweep::ShardCache::decodeEntry(entry, spec, shards[1])
            .has_value());

    // Every single-byte corruption is caught (checksum, magic,
    // version, or body deserialization).
    for (size_t i = 0; i < entry.size(); ++i) {
        std::vector<uint8_t> bad = entry;
        bad[i] ^= 0x01;
        EXPECT_FALSE(
            sweep::ShardCache::decodeEntry(bad, spec, shards[0])
                .has_value())
            << "byte " << i;
    }

    // Truncations are rejected too.
    for (size_t len = 0; len < entry.size(); ++len) {
        std::vector<uint8_t> cut(entry.begin(),
                                 entry.begin() +
                                     static_cast<std::ptrdiff_t>(len));
        EXPECT_FALSE(
            sweep::ShardCache::decodeEntry(cut, spec, shards[0])
                .has_value())
            << "length " << len;
    }
}

TEST(EntryContainer, StaleVersionIsRejectedEvenWithFixedChecksum)
{
    // A structurally perfect entry from a hypothetical older format
    // version (checksum recomputed, so only the version differs) must
    // still be refused — stale cache data never crosses the fabric.
    const sweep::SweepSpec spec = testSpec();
    auto shardsOr = spec.expand();
    ASSERT_TRUE(shardsOr.ok());
    const auto& shard = shardsOr.value()[0];
    std::vector<uint8_t> entry = realEntry(spec, shard);
    entry[8] ^= 0xff; // format-version word, after "P10SHRD\0"
    // Recompute the trailing whole-file FNV-1a checksum.
    uint64_t h = 1469598103934665603ULL;
    for (size_t i = 0; i + 8 < entry.size(); ++i) {
        h ^= entry[i];
        h *= 1099511628211ULL;
    }
    for (int i = 0; i < 8; ++i)
        entry[entry.size() - 8 + static_cast<size_t>(i)] =
            static_cast<uint8_t>(h >> (8 * i));
    EXPECT_FALSE(sweep::ShardCache::decodeEntry(entry, spec, shard)
                     .has_value());
}

TEST(EntryContainer, ReadWriteBytesValidateTheContainer)
{
    const std::string dir = freshDir("p10ee_fabric_cache_bytes");
    sweep::ShardCache cache(dir);
    ASSERT_TRUE(cache.prepare().ok());

    const sweep::SweepSpec spec = testSpec();
    auto shardsOr = spec.expand();
    ASSERT_TRUE(shardsOr.ok());
    const auto& shard = shardsOr.value()[0];
    const uint64_t key = sweep::ShardCache::shardKey(spec, shard);
    const std::vector<uint8_t> entry = realEntry(spec, shard);

    EXPECT_TRUE(cache.writeBytes(key, entry).ok());
    auto back = cache.readBytes(key);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, entry);

    // The persisted entry round-trips through the normal lookup path.
    auto hit = cache.lookup(spec, shard);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->instrs, 1234u);

    // A corrupt blob is refused at write time — the remote tier never
    // installs garbage a worker published.
    std::vector<uint8_t> bad = entry;
    bad[4] ^= 0x40;
    EXPECT_FALSE(cache.writeBytes(key, bad).ok());
    // Bytes keyed under a different slot than they claim: refused.
    EXPECT_FALSE(cache.writeBytes(key ^ 1, entry).ok());
    // Oversized garbage: refused, not written.
    EXPECT_FALSE(cache.writeBytes(key, std::vector<uint8_t>(64, 7))
                     .ok());

    std::filesystem::remove_all(dir);
}

// --- Fleet address parsing ---

TEST(FleetConfig, ParsesWorkerListsStrictly)
{
    auto ok = fabric::parseWorkerList(
        "127.0.0.1:7410,localhost:7411,10.0.0.2:65535");
    ASSERT_TRUE(ok.ok());
    ASSERT_EQ(ok.value().size(), 3u);
    EXPECT_EQ(ok.value()[0].host, "127.0.0.1");
    EXPECT_EQ(ok.value()[0].port, 7410);
    EXPECT_EQ(ok.value()[1].host, "localhost");
    EXPECT_EQ(ok.value()[2].port, 65535);

    EXPECT_TRUE(fabric::parseWorkerList("").ok());
    EXPECT_TRUE(fabric::parseWorkerList("").value().empty());
    EXPECT_FALSE(fabric::parseWorkerList("noport").ok());
    EXPECT_FALSE(fabric::parseWorkerList("host:").ok());
    EXPECT_FALSE(fabric::parseWorkerList(":123").ok());
    EXPECT_FALSE(fabric::parseWorkerList("host:0").ok());
    EXPECT_FALSE(fabric::parseWorkerList("host:65536").ok());
    EXPECT_FALSE(fabric::parseWorkerList("host:12x4").ok());
}

TEST(FleetConfig, FleetFileIsStrictJson)
{
    const std::string dir = freshDir("p10ee_fleet_file_test");
    std::filesystem::create_directories(dir);
    auto write = [&](const std::string& name,
                     const std::string& body) {
        std::ofstream out(dir + "/" + name);
        out << body;
        return dir + "/" + name;
    };

    auto ok = fabric::parseFleetFile(write(
        "good.json",
        "{\"workers\":[\"127.0.0.1:7410\",\"127.0.0.1:7411\"]}"));
    ASSERT_TRUE(ok.ok()) << ok.error().str();
    ASSERT_EQ(ok.value().size(), 2u);
    EXPECT_EQ(ok.value()[1].port, 7411);

    EXPECT_FALSE(fabric::parseFleetFile(dir + "/absent.json").ok());
    EXPECT_FALSE(
        fabric::parseFleetFile(write("notobj.json", "[1,2]")).ok());
    EXPECT_FALSE(fabric::parseFleetFile(
                     write("badkey.json",
                           "{\"workers\":[],\"extra\":true}"))
                     .ok());
    EXPECT_FALSE(fabric::parseFleetFile(
                     write("badentry.json", "{\"workers\":[42]}"))
                     .ok());
    EXPECT_FALSE(fabric::parseFleetFile(
                     write("badaddr.json",
                           "{\"workers\":[\"nocolon\"]}"))
                     .ok());

    std::filesystem::remove_all(dir);
}

// --- FleetRunner robustness ladder ---

TEST(Fleet, ZeroWorkersDegradesToLocalByteIdenticalRun)
{
    fabric::FleetOptions opts;
    opts.localJobs = 2;
    std::vector<std::string> warnings;
    opts.onWarning = [&warnings](const std::string& w) {
        warnings.push_back(w);
    };
    fabric::FleetRunner runner(testSpec(), std::move(opts));
    auto resultOr = runner.run();
    EXPECT_EQ(fleetReportBytes(resultOr), libraryReportBytes());
    EXPECT_EQ(runner.stats().localShards, 8u);
    ASSERT_EQ(warnings.size(), 1u);
    EXPECT_NE(warnings[0].find("no workers configured"),
              std::string::npos);
}

TEST(Fleet, UnreachableWorkersDegradeToLocalByteIdenticalRun)
{
    // Nothing listens on these ports (bind-then-close guarantees the
    // OS considers them closed right now).
    fabric::FleetOptions opts;
    int probe = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    const uint16_t deadPort = ntohs(addr.sin_port);
    ::close(probe);

    opts.workers = {{"127.0.0.1", deadPort}};
    opts.localJobs = 2;
    opts.backoffBaseMs = 1; // keep the retry ladder fast in tests
    bool degraded = false;
    opts.onWarning = [&degraded](const std::string& w) {
        if (w.find("unfinished") != std::string::npos)
            degraded = true;
    };
    fabric::FleetRunner runner(testSpec(), std::move(opts));
    auto resultOr = runner.run();
    EXPECT_EQ(fleetReportBytes(resultOr), libraryReportBytes());
    EXPECT_TRUE(degraded);
    EXPECT_EQ(runner.stats().workersDead, 1u);
    EXPECT_EQ(runner.stats().localShards, 8u);
    EXPECT_GT(runner.stats().connectFailures, 0u);
}

TEST(Fleet, GarbageWorkerAloneStillCompletesByteIdentical)
{
    // A worker that answers every request with non-JSON noise: every
    // attempt is a protocol violation, the worker is retired, and the
    // degraded local path finishes the sweep — same bytes, exit OK.
    FakeWorker garbage(FakeWorker::Mode::Garbage);
    fabric::FleetOptions opts;
    opts.workers = {{"127.0.0.1", garbage.port()}};
    opts.localJobs = 2;
    fabric::FleetRunner runner(testSpec(), std::move(opts));
    auto resultOr = runner.run();
    EXPECT_EQ(fleetReportBytes(resultOr), libraryReportBytes());
    EXPECT_EQ(runner.stats().workersDead, 1u);
    EXPECT_GT(runner.stats().protocolErrors, 0u);
    EXPECT_GT(runner.stats().localShards, 0u);
}

TEST(Fleet, TruncatingWorkerIsRetiredWithoutHanging)
{
    FakeWorker cutter(FakeWorker::Mode::Truncate);
    fabric::FleetOptions opts;
    opts.workers = {{"127.0.0.1", cutter.port()}};
    opts.localJobs = 2;
    fabric::FleetRunner runner(testSpec(), std::move(opts));
    auto resultOr = runner.run();
    EXPECT_EQ(fleetReportBytes(resultOr), libraryReportBytes());
    EXPECT_EQ(runner.stats().workersDead, 1u);
}

TEST(Fleet, RepeatedSoftFailuresSkipDeterministically)
{
    // A healthy-but-useless worker (structured error for every shard)
    // must not hang the sweep and must not retire either — the shard
    // burns its distinct-worker budget and is recorded as skipped with
    // a result that is a function of shard identity only.
    FakeWorker lemon(FakeWorker::Mode::SoftError);
    fabric::FleetOptions opts;
    opts.workers = {{"127.0.0.1", lemon.port()}};
    opts.maxShardWorkers = 1; // one strike and the shard is out
    fabric::FleetRunner runner(testSpec(), std::move(opts));
    auto resultOr = runner.run();
    ASSERT_TRUE(resultOr.ok());
    const sweep::SweepResult& result = resultOr.value();
    EXPECT_EQ(runner.stats().skipped, result.shards.size());
    EXPECT_EQ(result.failed, result.shards.size());
    auto shardsOr = testSpec().expand();
    ASSERT_TRUE(shardsOr.ok());
    for (size_t i = 0; i < result.shards.size(); ++i) {
        const api::ShardResult& s = result.shards[i];
        EXPECT_FALSE(s.ok);
        EXPECT_EQ(s.index, i);
        EXPECT_EQ(s.key, shardsOr.value()[i].key());
        EXPECT_EQ(s.error.code, common::ErrorCode::Transient);
        // Scheduling-independent message: shard identity only.
        EXPECT_EQ(s.error.message,
                  "shard " + s.key +
                      ": abandoned by the fleet after repeated "
                      "worker failures");
    }
}

TEST(Fleet, TracedZeroWorkerRunIsByteIdenticalWithMergedTrace)
{
    // Tracing must be a pure observer: the degraded local path with
    // the flight recorder on produces the same merged bytes as the
    // library, and still yields one coherent Perfetto timeline.
    fabric::FleetOptions opts;
    opts.localJobs = 2;
    opts.trace = true;
    opts.onWarning = [](const std::string&) {};
    fabric::FleetRunner runner(testSpec(), std::move(opts));
    auto resultOr = runner.run();
    EXPECT_EQ(fleetReportBytes(resultOr), libraryReportBytes());

    const std::string& trace = runner.traceJson();
    ASSERT_FALSE(trace.empty());
    // The synthetic root lane names the trace id, the coordinator lane
    // carries the expand/local/merge phases, and the inflight counter
    // track is always present.
    EXPECT_NE(trace.find("trace:" + runner.traceRoot().str()),
              std::string::npos);
    EXPECT_NE(trace.find("\"coordinator\""), std::string::npos);
    EXPECT_NE(trace.find("expand 8 shards"), std::string::npos);
    EXPECT_NE(trace.find("local 8 shards"), std::string::npos);
    EXPECT_NE(trace.find("merge 8 shards"), std::string::npos);
    EXPECT_NE(trace.find("fleet.inflight"), std::string::npos);
}

TEST(Fleet, ShardReportsDirIsRejectedUpFront)
{
    sweep::SweepSpec spec = testSpec();
    spec.shardReportsDir = "/tmp/somewhere";
    fabric::FleetRunner runner(spec, fabric::FleetOptions{});
    auto resultOr = runner.run();
    ASSERT_FALSE(resultOr.ok());
    EXPECT_EQ(resultOr.error().code,
              common::ErrorCode::InvalidArgument);
}

// --- Spawned p10d fleets (the real thing) ---

#ifdef P10EE_P10D_BIN
namespace {

std::vector<fabric::SpawnedWorker>
spawnFleet(size_t n)
{
    std::vector<fabric::SpawnedWorker> fleet;
    for (size_t i = 0; i < n; ++i) {
        auto workerOr = fabric::spawnWorker(P10EE_P10D_BIN);
        EXPECT_TRUE(workerOr.ok())
            << (workerOr.ok() ? "" : workerOr.error().str());
        if (workerOr.ok())
            fleet.push_back(workerOr.value());
    }
    return fleet;
}

fabric::FleetOptions
fleetOptions(const std::vector<fabric::SpawnedWorker>& fleet)
{
    fabric::FleetOptions opts;
    for (const fabric::SpawnedWorker& w : fleet)
        opts.workers.push_back({"127.0.0.1", w.port});
    opts.localJobs = 2;
    return opts;
}

void
reapFleet(std::vector<fabric::SpawnedWorker>& fleet)
{
    for (fabric::SpawnedWorker& w : fleet) {
        fabric::signalWorker(w, SIGTERM);
        fabric::reapWorker(w);
    }
}

/** Current value of one name in the process-global metrics registry
    (0 when the name has never been registered). */
double
metricValue(const std::string& name)
{
    for (const auto& [key, value] : obs::metrics().snapshot())
        if (key == name)
            return value;
    return 0.0;
}

} // namespace

TEST(FleetLive, TwoWorkersColdAndWarmAreByteIdentical)
{
    const std::string dir = freshDir("p10ee_fleet_live_cache");
    auto fleet = spawnFleet(2);
    ASSERT_EQ(fleet.size(), 2u);
    const std::string expected = libraryReportBytes();

    {
        fabric::FleetOptions opts = fleetOptions(fleet);
        opts.cacheDir = dir;
        fabric::FleetRunner cold(testSpec(), std::move(opts));
        auto coldOr = cold.run();
        EXPECT_EQ(fleetReportBytes(coldOr), expected);
        EXPECT_EQ(coldOr.value().simulatedShards, 8u);
        EXPECT_GT(cold.stats().remoteCachePuts, 0u);
    }
    {
        fabric::FleetOptions opts = fleetOptions(fleet);
        opts.cacheDir = dir;
        fabric::FleetRunner warm(testSpec(), std::move(opts));
        auto warmOr = warm.run();
        EXPECT_EQ(fleetReportBytes(warmOr), expected);
        // Every shard came from the coordinator's cache over the wire.
        EXPECT_EQ(warmOr.value().cachedShards, 8u);
        EXPECT_EQ(warm.stats().remoteCacheHits, 8u);
    }

    reapFleet(fleet);
    std::filesystem::remove_all(dir);
}

TEST(FleetLive, ChaosKillsAndDelaysStayByteIdentical)
{
    // Four workers; the first finished shard triggers a SIGKILL on
    // worker 0 and a 1.5s SIGSTOP on worker 1 — in-flight shards must
    // redistribute and the merge must not move by a byte.
    auto fleet = spawnFleet(4);
    ASSERT_EQ(fleet.size(), 4u);
    fabric::FleetOptions opts = fleetOptions(fleet);
    opts.heartbeatMs = 50;
    opts.heartbeatMisses = 2; // 1s silence window (floored)
    std::atomic<bool> fired{false};
    std::thread resumer;
    opts.onProgress = [&](const api::ProgressEvent&) {
        if (fired.exchange(true))
            return;
        fabric::signalWorker(fleet[0], SIGKILL);
        fabric::signalWorker(fleet[1], SIGSTOP);
        resumer = std::thread([&fleet] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1500));
            fabric::signalWorker(fleet[1], SIGCONT);
        });
    };
    fabric::FleetRunner runner(testSpec(), std::move(opts));
    auto resultOr = runner.run();
    if (resumer.joinable())
        resumer.join();
    EXPECT_EQ(fleetReportBytes(resultOr), libraryReportBytes());
    EXPECT_EQ(runner.stats().skipped, 0u);
    reapFleet(fleet);
}

TEST(FleetLive, TracedChaosFleetKeepsBytesAndTelemetryConsistent)
{
    // The acceptance scenario: a 4-worker fleet under chaos (SIGKILL
    // one worker, SIGSTOP another) with the flight recorder on. The
    // merged report must still be byte-identical to the untraced
    // single-process run, the merged timeline must show the retried
    // shard's lifecycle, and the fleet.* counters must agree exactly
    // with the runner's own stats for the same run.
    auto fleet = spawnFleet(4);
    ASSERT_EQ(fleet.size(), 4u);
    fabric::FleetOptions opts = fleetOptions(fleet);
    opts.heartbeatMs = 50;
    opts.heartbeatMisses = 2;
    opts.trace = true;
    std::atomic<bool> fired{false};
    std::thread resumer;
    opts.onProgress = [&](const api::ProgressEvent&) {
        if (fired.exchange(true))
            return;
        fabric::signalWorker(fleet[0], SIGKILL);
        fabric::signalWorker(fleet[1], SIGSTOP);
        resumer = std::thread([&fleet] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1500));
            fabric::signalWorker(fleet[1], SIGCONT);
        });
    };

    // The registry is process-global, so earlier tests may have moved
    // the fleet counters already — assert on this run's deltas.
    const double requeues0 = metricValue("fleet.requeues");
    const double retirements0 = metricValue("fleet.retirements");
    const double skips0 = metricValue("fleet.skips");
    const double faults0 = metricValue("fleet.lease_expiries") +
                           metricValue("fleet.heartbeat_silences");

    fabric::FleetRunner runner(testSpec(), std::move(opts));
    auto resultOr = runner.run();
    if (resumer.joinable())
        resumer.join();
    EXPECT_EQ(fleetReportBytes(resultOr), libraryReportBytes());
    EXPECT_EQ(runner.stats().skipped, 0u);

    const double requeues = metricValue("fleet.requeues") - requeues0;
    const double faults = metricValue("fleet.lease_expiries") +
                          metricValue("fleet.heartbeat_silences") -
                          faults0;
    EXPECT_EQ(requeues, static_cast<double>(runner.stats().reassigned));
    EXPECT_EQ(metricValue("fleet.retirements") - retirements0,
              static_cast<double>(runner.stats().workersDead));
    EXPECT_EQ(metricValue("fleet.skips") - skips0, 0.0);
    // With nothing skipped, every lease fault ended in a requeue (hard
    // failures requeue too, so requeues can exceed the fault count).
    EXPECT_GE(requeues, faults);

    const std::string& trace = runner.traceJson();
    ASSERT_FALSE(trace.empty());
    EXPECT_NE(trace.find("trace:" + runner.traceRoot().str()),
              std::string::npos);
    EXPECT_NE(trace.find("\"coordinator\""), std::string::npos);
    EXPECT_NE(trace.find("fleet.inflight"), std::string::npos);
    // Four workers dialed: each contributes its own named lanes.
    for (const char* lane : {"w0 ", "w1 ", "w2 ", "w3 "})
        EXPECT_NE(trace.find(lane), std::string::npos) << lane;
    if (runner.stats().reassigned > 0) {
        // A requeued shard ran a second attempt ("s<idx>a1 ...") on a
        // different worker's lease lane — the cross-worker lifecycle
        // the flight recorder exists to show.
        EXPECT_NE(trace.find("a1 "), std::string::npos);
    }
    reapFleet(fleet);
}

TEST(FleetLive, GarbageWorkerBesideRealWorkerIsRouted)
{
    // One real worker, one garbage-spewer: everything lands on the
    // real worker (or the local tail) and the bytes still match.
    FakeWorker garbage(FakeWorker::Mode::Garbage);
    auto fleet = spawnFleet(1);
    ASSERT_EQ(fleet.size(), 1u);
    fabric::FleetOptions opts = fleetOptions(fleet);
    opts.workers.push_back({"127.0.0.1", garbage.port()});
    fabric::FleetRunner runner(testSpec(), std::move(opts));
    auto resultOr = runner.run();
    EXPECT_EQ(fleetReportBytes(resultOr), libraryReportBytes());
    EXPECT_EQ(runner.stats().skipped, 0u);
    EXPECT_EQ(runner.stats().workersDead, 1u);
    reapFleet(fleet);
}
#endif // P10EE_P10D_BIN
