/**
 * @file
 * Tests for the core model's building blocks: caches, translation,
 * throttle rings, bandwidth servers, prefetcher, branch predictors.
 */

#include <gtest/gtest.h>

#include "core/branch.h"
#include "core/cache.h"
#include "core/config.h"
#include "core/prefetch.h"
#include "common/rng.h"
#include "core/rings.h"

using namespace p10ee::core;

TEST(Cache, ColdMissThenHit)
{
    CacheModel c(1024, 2, 64);
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1030)); // same line
    EXPECT_FALSE(c.access(0x1040)); // next line
}

TEST(Cache, LruEvictsOldest)
{
    // 2 ways, 64B lines, 2 sets (256B total).
    CacheModel c(256, 2, 64);
    // Three distinct lines mapping to set 0 (stride = 128).
    EXPECT_FALSE(c.access(0x0000));
    EXPECT_FALSE(c.access(0x0080));
    EXPECT_TRUE(c.access(0x0000));  // refresh line 0
    EXPECT_FALSE(c.access(0x0100)); // evicts line 0x80 (LRU)
    EXPECT_TRUE(c.access(0x0000));
    EXPECT_FALSE(c.access(0x0080)); // was evicted
}

TEST(Cache, ProbeDoesNotDisturbLru)
{
    CacheModel c(256, 2, 64);
    c.install(0x0000);
    c.install(0x0080);
    // Probing 0x0000 must not make it most-recent.
    EXPECT_TRUE(c.probe(0x0000));
    c.install(0x0100); // evicts 0x0000 (still LRU)
    EXPECT_FALSE(c.probe(0x0000));
    EXPECT_TRUE(c.probe(0x0080));
}

TEST(Cache, MissWithoutInstallLeavesStateAlone)
{
    CacheModel c(1024, 2, 64);
    EXPECT_FALSE(c.access(0x2000, /*install=*/false));
    EXPECT_FALSE(c.probe(0x2000));
}

TEST(Cache, ResetDropsEverything)
{
    CacheModel c(1024, 2, 64);
    c.install(0x1000);
    c.reset();
    EXPECT_FALSE(c.probe(0x1000));
}

TEST(Cache, CapacityHoldsWorkingSet)
{
    CacheModel c(64 * 1024, 8, 64);
    for (uint64_t a = 0; a < 60 * 1024; a += 64)
        c.access(a);
    int hits = 0;
    for (uint64_t a = 0; a < 60 * 1024; a += 64)
        hits += c.access(a);
    EXPECT_GT(hits, 900); // ~all resident on the second pass
}

TEST(Translation, PageGranularity)
{
    TranslationCache t(16, 64 * 1024);
    EXPECT_FALSE(t.access(0x10000));
    EXPECT_TRUE(t.access(0x1ffff)); // same 64K page
    EXPECT_FALSE(t.access(0x20000));
}

TEST(Rings, WidthEnforced)
{
    ThrottleRing r(2);
    EXPECT_EQ(r.record(100), 100u);
    EXPECT_EQ(r.record(100), 100u);
    EXPECT_EQ(r.record(100), 101u); // third claim spills to next cycle
}

TEST(Rings, FindFreeSkipsFullCycles)
{
    ThrottleRing r(1);
    r.record(50);
    r.record(50); // lands at 51
    EXPECT_EQ(r.findFree(50), 52u);
}

TEST(Rings, IndependentCyclesDoNotInterfere)
{
    ThrottleRing r(1);
    for (uint64_t c = 0; c < 100; ++c)
        EXPECT_EQ(r.record(c * 3), c * 3);
}

TEST(Rings, SparseFarApartCyclesReuseSlots)
{
    // Cycles 2^16 apart share a ring slot; stamping must keep them
    // independent.
    ThrottleRing r(1);
    EXPECT_EQ(r.record(10), 10u);
    EXPECT_EQ(r.record(10 + (1u << 16)), 10u + (1u << 16));
}

TEST(Bandwidth, SerializesOverlappingRequests)
{
    BandwidthServer s(4);
    EXPECT_EQ(s.serve(100), 100u);
    EXPECT_EQ(s.serve(100), 104u);
    EXPECT_EQ(s.serve(100), 108u);
    EXPECT_EQ(s.serve(200), 200u); // idle gap resets queueing
}

TEST(Prefetcher, TrainsOnSequentialMisses)
{
    StreamPrefetcher p(4, 4);
    std::vector<uint64_t> out;
    p.onMiss(100, out);
    EXPECT_TRUE(out.empty()); // training
    p.onMiss(101, out);
    EXPECT_TRUE(out.empty()); // confidence building
    p.onMiss(102, out);
    ASSERT_FALSE(out.empty()); // confirmed: runs ahead
    EXPECT_EQ(out.front(), 103u);
}

TEST(Prefetcher, RunsAheadWithoutDemandMisses)
{
    StreamPrefetcher p(4, 4);
    std::vector<uint64_t> out;
    p.onMiss(10, out);
    p.onMiss(11, out);
    p.onMiss(12, out); // prefetches 13..16, head at 17
    // The next demand miss lands at the head (13..16 were covered).
    p.onMiss(17, out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out.front(), 18u);
}

TEST(Prefetcher, RandomMissesDoNotTriggerPrefetch)
{
    StreamPrefetcher p(4, 4);
    std::vector<uint64_t> out;
    p10ee::common::Xoshiro r(3);
    int prefetches = 0;
    for (int i = 0; i < 200; ++i) {
        p.onMiss(r.below(1u << 30), out);
        prefetches += !out.empty();
    }
    EXPECT_LT(prefetches, 5);
}

TEST(Prefetcher, TracksMultipleStreams)
{
    StreamPrefetcher p(4, 2);
    std::vector<uint64_t> out;
    // Interleave two streams; both must confirm.
    for (int i = 0; i < 4; ++i) {
        p.onMiss(1000 + static_cast<uint64_t>(i), out);
        p.onMiss(5000 + static_cast<uint64_t>(i), out);
    }
    p.onMiss(1000 + 4 + 2, out); // continue stream 1 at its head
    EXPECT_FALSE(out.empty());
}

TEST(Branch, LearnsBiasedBranch)
{
    BranchParams params;
    BranchPredictor bp(params);
    uint64_t pc = 0x4000;
    int wrong = 0;
    for (int i = 0; i < 500; ++i) {
        bool taken = true;
        wrong += bp.predictDirection(pc) != taken;
        bp.updateDirection(pc, taken);
    }
    EXPECT_LT(wrong, 5);
}

TEST(Branch, GshareLearnsAlternation)
{
    BranchParams params;
    BranchPredictor bp(params);
    uint64_t pc = 0x4100;
    int wrongLate = 0;
    for (int i = 0; i < 600; ++i) {
        bool taken = (i % 2) == 0;
        bool pred = bp.predictDirection(pc);
        if (i > 200)
            wrongLate += pred != taken;
        bp.updateDirection(pc, taken);
    }
    EXPECT_LT(wrongLate, 40);
}

TEST(Branch, LocalPatternCatchesLongPeriods)
{
    BranchParams p9;
    BranchParams p10 = p9;
    p10.localPattern = true;
    p10.localBits = 14;
    p10.secondGshare = true;
    BranchPredictor base(p9), better(p10);

    // Period-7 loop branch embedded in noisy global history: 16 other
    // random branches interleave between visits.
    p10ee::common::Xoshiro r(41);
    int wrongBase = 0, wrongBetter = 0;
    uint64_t loopPc = 0x5000;
    int count = 0;
    for (int i = 0; i < 6000; ++i) {
        uint64_t noisePc = 0x6000 + r.below(16) * 4;
        bool noiseTaken = r.chance(0.5);
        base.predictDirection(noisePc);
        base.updateDirection(noisePc, noiseTaken);
        better.predictDirection(noisePc);
        better.updateDirection(noisePc, noiseTaken);

        bool taken = (count++ % 7) != 6;
        if (i > 2000) {
            wrongBase += base.predictDirection(loopPc) != taken;
            wrongBetter += better.predictDirection(loopPc) != taken;
        }
        base.updateDirection(loopPc, taken);
        better.updateDirection(loopPc, taken);
    }
    EXPECT_LT(wrongBetter, wrongBase);
}

TEST(Branch, PathHistoryIndirectBeatsLastTarget)
{
    BranchParams lastTarget;
    BranchParams pathHist = lastTarget;
    pathHist.indirectPathHist = true;
    pathHist.indirectWays = 2;
    BranchPredictor simple(lastTarget), smart(pathHist);

    // A dispatch branch cycling through 4 targets.
    uint64_t pc = 0x7000;
    uint64_t targets[4] = {0x8000, 0x9000, 0xa000, 0xb000};
    int wrongSimple = 0, wrongSmart = 0;
    for (int i = 0; i < 4000; ++i) {
        uint64_t t = targets[i % 4];
        if (i > 1000) {
            wrongSimple += simple.predictIndirect(pc) != t;
            wrongSmart += smart.predictIndirect(pc) != t;
        }
        simple.updateIndirect(pc, t);
        smart.updateIndirect(pc, t);
    }
    EXPECT_LT(wrongSmart, wrongSimple / 2);
}

TEST(Branch, PerThreadHistoriesAreIsolated)
{
    BranchParams params;
    BranchPredictor bp(params);
    // Thread 0 runs an alternating branch; thread 1 a biased one at the
    // same PC. Isolation means both still learn.
    uint64_t pc = 0xc000;
    int wrong1 = 0;
    for (int i = 0; i < 2000; ++i) {
        bool t0 = (i % 2) == 0;
        bp.predictDirection(pc, 0);
        bp.updateDirection(pc, t0, 0);
        bool pred = bp.predictDirection(pc, 1);
        if (i > 1000)
            wrong1 += pred != true;
        bp.updateDirection(pc, true, 1);
    }
    EXPECT_LT(wrong1, 300);
}

TEST(Config, AblationGroupsAllNamed)
{
    for (int g = 0; g < static_cast<int>(AblationGroup::NumGroups); ++g) {
        auto cfg =
            power10Without(static_cast<AblationGroup>(g));
        EXPECT_NE(cfg.name.find("POWER10-no-"), std::string::npos);
        EXPECT_NE(ablationGroupName(static_cast<AblationGroup>(g)),
                  "invalid");
    }
}

TEST(Config, Power10StructurallyBigger)
{
    auto p9 = power9();
    auto p10 = power10();
    EXPECT_GT(p10.l2.sizeBytes, p9.l2.sizeBytes);
    EXPECT_EQ(p10.l2.sizeBytes, 4u * p9.l2.sizeBytes); // 4x private L2
    EXPECT_EQ(p10.tlbEntries, 4 * p9.tlbEntries);      // 4x MMU
    EXPECT_EQ(p10.robSize, 2 * p9.robSize);            // 2x window
    EXPECT_EQ(p10.fpPorts, 2 * p9.fpPorts);            // 2x SIMD
    EXPECT_EQ(p10.ldPorts, 2 * p9.ldPorts);            // 2x load
    EXPECT_GT(p10.decodeWidth, p9.decodeWidth);        // +33% decode
    EXPECT_TRUE(p10.fusion);
    EXPECT_TRUE(p10.eaTaggedL1);
    EXPECT_FALSE(p9.eaTaggedL1);
    EXPECT_EQ(p10.mmaUnits, 2);
    EXPECT_EQ(p9.mmaUnits, 0);
}

TEST(Config, QueuePartitioning)
{
    auto p10 = power10();
    EXPECT_EQ(p10.ldqPerThread(1), p10.ldqSize);
    EXPECT_EQ(p10.ldqPerThread(8), p10.ldqSizeSmt / 8);
    EXPECT_EQ(p10.stqPerThread(2), p10.stqSizeSmt / 2);
}
