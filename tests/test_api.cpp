/**
 * @file
 * Tests of the `p10ee::api` layer: the shared ArgParser flag table and
 * the Service facade's contracts — structured validation, entry-path
 * determinism (merged reports byte-identical at any --jobs and across
 * cache warmth), and cache reuse through the facade.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "api/args.h"
#include "api/service.h"
#include "common/error.h"
#include "sweep/spec.h"

using namespace p10ee;

namespace {

/** argv builder: keeps the strings alive for the parse call. */
struct Argv
{
    explicit Argv(std::vector<std::string> args)
        : strings(std::move(args))
    {
        ptrs.push_back(const_cast<char*>("tool"));
        for (auto& s : strings)
            ptrs.push_back(s.data());
    }
    int argc() const { return static_cast<int>(ptrs.size()); }
    char** argv() { return ptrs.data(); }

    std::vector<std::string> strings;
    std::vector<char*> ptrs;
};

sweep::SweepSpec
smallSpec()
{
    sweep::SweepSpec spec;
    spec.configs = {"power10"};
    spec.workloads = {"perlbench", "xz"};
    spec.smt = {1, 2};
    spec.seeds = 1;
    spec.instrs = 2000;
    spec.warmup = 500;
    return spec;
}

std::string
freshDir(const std::string& stem)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() / stem).string();
    std::filesystem::remove_all(dir);
    return dir;
}

// --- ArgParser ---

TEST(ArgParser, ParsesEveryKindAndAlias)
{
    std::string out;
    uint64_t seed = 0;
    int jobs = 1;
    bool csv = false;
    api::ArgParser p("t", "test tool");
    api::stdflags::out(p, &out);
    api::stdflags::seed(p, &seed);
    api::stdflags::jobs(p, &jobs);
    p.boolean("--csv", &csv, "csv output");

    Argv a({"--json", "r.json", "--seed", "7", "--jobs", "3", "--csv"});
    auto st = p.parse(a.argc(), a.argv());
    ASSERT_TRUE(st.ok()) << st.error().str();
    EXPECT_EQ(out, "r.json"); // --json is an alias of --out
    EXPECT_EQ(seed, 7u);
    EXPECT_EQ(jobs, 3);
    EXPECT_TRUE(csv);
    EXPECT_FALSE(p.helpRequested());
}

TEST(ArgParser, StructuredErrorsNeverExit)
{
    int jobs = 1;
    api::ArgParser p("t", "");
    api::stdflags::jobs(p, &jobs);

    {
        Argv a({"--bogus"});
        auto st = p.parse(a.argc(), a.argv());
        ASSERT_FALSE(st.ok());
        EXPECT_EQ(st.error().code, common::ErrorCode::InvalidArgument);
    }
    {
        Argv a({"--jobs"});
        auto st = p.parse(a.argc(), a.argv());
        ASSERT_FALSE(st.ok());
        EXPECT_NE(st.error().message.find("needs a value"),
                  std::string::npos);
    }
    {
        Argv a({"--jobs", "0"});
        EXPECT_FALSE(p.parse(a.argc(), a.argv()).ok());
    }
    {
        Argv a({"--jobs", "257"});
        EXPECT_FALSE(p.parse(a.argc(), a.argv()).ok());
    }
    {
        Argv a({"--jobs", "two"});
        EXPECT_FALSE(p.parse(a.argc(), a.argv()).ok());
    }
    {
        Argv a({"positional"});
        EXPECT_FALSE(p.parse(a.argc(), a.argv()).ok());
    }
}

TEST(ArgParser, HelpIsGeneratedFromTheFlagTable)
{
    std::string out;
    uint64_t instrs = 0;
    api::ArgParser p("mytool", "does things");
    api::stdflags::out(p, &out);
    api::stdflags::instrs(p, &instrs);

    Argv a({"--help"});
    auto st = p.parse(a.argc(), a.argv());
    ASSERT_TRUE(st.ok());
    EXPECT_TRUE(p.helpRequested());

    const std::string help = p.help();
    EXPECT_NE(help.find("mytool"), std::string::npos);
    EXPECT_NE(help.find("--out"), std::string::npos);
    EXPECT_NE(help.find("--instrs"), std::string::npos);
    // Aliases are documented on the canonical flag's line.
    EXPECT_NE(help.find("--json"), std::string::npos);
    EXPECT_NE(help.find("--stats-json"), std::string::npos);
}

TEST(ArgParser, WasSetDistinguishesDefaultFromExplicit)
{
    uint64_t warmup = 999;
    bool wasSet = false;
    api::ArgParser p("t", "");
    api::stdflags::warmup(p, &warmup, &wasSet);
    {
        Argv a({});
        ASSERT_TRUE(p.parse(a.argc(), a.argv()).ok());
        EXPECT_FALSE(wasSet);
        EXPECT_EQ(warmup, 999u);
    }
    {
        Argv a({"--warmup", "0"});
        ASSERT_TRUE(p.parse(a.argc(), a.argv()).ok());
        EXPECT_TRUE(wasSet);
        EXPECT_EQ(warmup, 0u);
    }
}

// --- RunRequest validation / runOne ---

TEST(RunRequest, ValidateRejectsBadFields)
{
    api::RunRequest req;
    req.smt = 3;
    EXPECT_FALSE(req.validate().ok());

    req = api::RunRequest{};
    req.instrs = 0;
    EXPECT_FALSE(req.validate().ok());

    req = api::RunRequest{};
    req.ckptSave = "a";
    req.ckptLoad = "b";
    auto st = req.validate();
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.error().message.find("mutually exclusive"),
              std::string::npos);
}

TEST(Service, RunOneResolvesNamesAndRuns)
{
    api::Service service;
    api::RunRequest req;
    req.workload = "xz";
    req.smt = 2;
    req.instrs = 2000;
    req.warmup = 500;
    auto outcome = service.runOne(req);
    ASSERT_TRUE(outcome.ok()) << outcome.error().str();
    EXPECT_GT(outcome.value().ipc(), 0.0);
    EXPECT_GT(outcome.value().powerW(), 0.0);
    EXPECT_EQ(outcome.value().warmupSimulated, 500u * 2u);
}

TEST(Service, RunOneStructuredErrors)
{
    api::Service service;
    api::RunRequest req;
    req.instrs = 1000;
    req.warmup = 100;

    req.workload = "no-such-workload";
    auto r1 = service.runOne(req);
    ASSERT_FALSE(r1.ok());
    EXPECT_EQ(r1.error().code, common::ErrorCode::NotFound);

    req.workload = "xz";
    req.config = "power11";
    auto r2 = service.runOne(req);
    ASSERT_FALSE(r2.ok());
    EXPECT_EQ(r2.error().code, common::ErrorCode::NotFound);

    req.config = "ablate:no_such_group";
    auto r3 = service.runOne(req);
    ASSERT_FALSE(r3.ok());
    EXPECT_EQ(r3.error().code, common::ErrorCode::NotFound);
}

TEST(Service, RunOneAblateSpellingMatchesSweepLayer)
{
    api::Service service;
    api::RunRequest req;
    req.config = "ablate:l2_cache";
    req.workload = "perlbench";
    req.instrs = 1500;
    req.warmup = 300;
    auto outcome = service.runOne(req);
    ASSERT_TRUE(outcome.ok()) << outcome.error().str();
    EXPECT_NE(outcome.value().config.name, "power10");
}

TEST(Service, RunOneTimeoutIsStructured)
{
    api::Service service;
    api::RunRequest req;
    req.workload = "perlbench";
    req.instrs = 100000;
    req.warmup = 0;
    req.maxCycles = 50; // far too tight
    auto outcome = service.runOne(req);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, common::ErrorCode::Timeout);
}

TEST(Service, RunReportIsDeterministic)
{
    api::Service service;
    api::RunRequest req;
    req.workload = "xz";
    req.instrs = 2000;
    req.warmup = 400;
    auto a = service.runOne(req);
    auto b = service.runOne(req);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(api::Service::runReport(req, a.value()).toJson(),
              api::Service::runReport(req, b.value()).toJson());
}

// --- Sweeps through the facade ---

TEST(Service, MergedReportByteIdenticalAcrossJobs)
{
    api::Service service;
    const sweep::SweepSpec spec = smallSpec();

    api::SweepOptions serial;
    serial.jobs = 1;
    auto r1 = service.runSweep(spec, serial);
    ASSERT_TRUE(r1.ok()) << r1.error().str();

    api::SweepOptions parallel;
    parallel.jobs = 4;
    auto r4 = service.runSweep(spec, parallel);
    ASSERT_TRUE(r4.ok()) << r4.error().str();

    EXPECT_EQ(
        api::Service::mergedReport(spec, r1.value()).toJson(),
        api::Service::mergedReport(spec, r4.value()).toJson());
}

TEST(Service, SharedCacheMakesWarmRequestsSimulateNothing)
{
    const std::string dir = freshDir("p10ee_api_cache_test");
    api::Service service(api::Service::Options{dir});
    const sweep::SweepSpec spec = smallSpec();

    api::SweepOptions opts;
    opts.jobs = 2;
    auto cold = service.runSweep(spec, opts);
    ASSERT_TRUE(cold.ok()) << cold.error().str();
    EXPECT_EQ(cold.value().cachedShards, 0u);
    EXPECT_EQ(cold.value().simulatedShards, spec.shardCount());

    auto warm = service.runSweep(spec, opts);
    ASSERT_TRUE(warm.ok()) << warm.error().str();
    EXPECT_EQ(warm.value().simulatedShards, 0u);
    EXPECT_EQ(warm.value().cachedShards, spec.shardCount());

    // Warmth must not leak into the canonical artifact.
    EXPECT_EQ(
        api::Service::mergedReport(spec, cold.value()).toJson(),
        api::Service::mergedReport(spec, warm.value()).toJson());

    std::filesystem::remove_all(dir);
}

TEST(Service, ProgressEventsCoverEveryShard)
{
    api::Service service;
    const sweep::SweepSpec spec = smallSpec();
    std::vector<uint64_t> indices;
    api::SweepOptions opts;
    opts.jobs = 2;
    opts.onProgress = [&indices](const api::ProgressEvent& ev) {
        indices.push_back(ev.index);
        EXPECT_EQ(ev.total, 4u);
        EXPECT_FALSE(ev.key.empty());
        EXPECT_EQ(ev.status, "ok");
    };
    auto r = service.runSweep(spec, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(indices.size(), spec.shardCount());
}

TEST(Service, CancelRecordsRemainingShardsAsCancelled)
{
    api::Service service;
    sweep::SweepSpec spec = smallSpec();
    std::atomic<bool> cancel{true}; // pre-cancelled: nothing simulates
    api::SweepOptions opts;
    opts.jobs = 1;
    opts.cancel = &cancel;
    auto r = service.runSweep(spec, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().cancelledShards, spec.shardCount());
    EXPECT_EQ(r.value().okCount, 0u);
    for (const auto& s : r.value().shards)
        EXPECT_EQ(s.error.code, common::ErrorCode::Cancelled);
}

TEST(Service, MaxCyclesOverrideOnlyTightens)
{
    api::Service service;
    sweep::SweepSpec spec = smallSpec();
    spec.workloads = {"perlbench"};
    spec.smt = {1};

    api::SweepOptions opts;
    opts.jobs = 1;
    opts.maxCyclesOverride = 10; // impossible budget
    auto r = service.runSweep(spec, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().okCount, 0u);
    for (const auto& s : r.value().shards)
        EXPECT_EQ(s.error.code, common::ErrorCode::Timeout);
}

} // namespace
