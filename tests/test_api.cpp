/**
 * @file
 * Tests of the `p10ee::api` layer: the shared ArgParser flag table and
 * the Service facade's contracts — structured validation, entry-path
 * determinism (merged reports byte-identical at any --jobs and across
 * cache warmth), and cache reuse through the facade.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/args.h"
#include "api/service.h"
#include "common/error.h"
#include "common/stats.h"
#include "sweep/spec.h"

using namespace p10ee;

namespace {

/** argv builder: keeps the strings alive for the parse call. */
struct Argv
{
    explicit Argv(std::vector<std::string> args)
        : strings(std::move(args))
    {
        ptrs.push_back(const_cast<char*>("tool"));
        for (auto& s : strings)
            ptrs.push_back(s.data());
    }
    int argc() const { return static_cast<int>(ptrs.size()); }
    char** argv() { return ptrs.data(); }

    std::vector<std::string> strings;
    std::vector<char*> ptrs;
};

sweep::SweepSpec
smallSpec()
{
    sweep::SweepSpec spec;
    spec.configs = {"power10"};
    spec.workloads = {"perlbench", "xz"};
    spec.smt = {1, 2};
    spec.seeds = 1;
    spec.instrs = 2000;
    spec.warmup = 500;
    return spec;
}

std::string
freshDir(const std::string& stem)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() / stem).string();
    std::filesystem::remove_all(dir);
    return dir;
}

// --- ArgParser ---

TEST(ArgParser, ParsesEveryKindAndAlias)
{
    std::string out;
    uint64_t seed = 0;
    int jobs = 1;
    bool csv = false;
    api::ArgParser p("t", "test tool");
    api::stdflags::out(p, &out);
    api::stdflags::seed(p, &seed);
    api::stdflags::jobs(p, &jobs);
    p.boolean("--csv", &csv, "csv output");

    Argv a({"--stats-json", "r.json", "--seed", "7", "--jobs", "3",
            "--csv"});
    auto st = p.parse(a.argc(), a.argv());
    ASSERT_TRUE(st.ok()) << st.error().str();
    // --stats-json is a deprecated alias of --out: parses identically
    // (the deprecation warning goes to stderr, not into the result).
    EXPECT_EQ(out, "r.json");
    EXPECT_EQ(seed, 7u);
    EXPECT_EQ(jobs, 3);
    EXPECT_TRUE(csv);
    EXPECT_FALSE(p.helpRequested());
}

TEST(ArgParser, RetiredJsonSpellingIsGone)
{
    // The third spelling of the report-output flag was retired: one
    // canonical name (--out), one deprecation-warned stepping stone
    // (--stats-json), nothing else.
    std::string out;
    api::ArgParser p("t", "");
    api::stdflags::out(p, &out);
    Argv a({"--json", "r.json"});
    auto st = p.parse(a.argc(), a.argv());
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.error().code, common::ErrorCode::InvalidArgument);
    EXPECT_NE(st.error().message.find("--json"), std::string::npos);
}

TEST(ArgParser, ModeFlagParsesAndConverts)
{
    std::string mode;
    api::ArgParser p("t", "");
    api::stdflags::mode(p, &mode);
    Argv a({"--mode", "fast_m1"});
    ASSERT_TRUE(p.parse(a.argc(), a.argv()).ok());
    auto m = api::parseSimMode(mode);
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m.value(), api::SimMode::FastM1);

    // Hostile values convert to a structured error naming the field.
    auto bad = api::parseSimMode("turbo");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, common::ErrorCode::InvalidArgument);
    EXPECT_EQ(bad.error().field, "mode");
    EXPECT_NE(bad.error().str().find("(field: mode)"),
              std::string::npos);
}

TEST(ArgParser, StructuredErrorsNeverExit)
{
    int jobs = 1;
    api::ArgParser p("t", "");
    api::stdflags::jobs(p, &jobs);

    {
        Argv a({"--bogus"});
        auto st = p.parse(a.argc(), a.argv());
        ASSERT_FALSE(st.ok());
        EXPECT_EQ(st.error().code, common::ErrorCode::InvalidArgument);
    }
    {
        Argv a({"--jobs"});
        auto st = p.parse(a.argc(), a.argv());
        ASSERT_FALSE(st.ok());
        EXPECT_NE(st.error().message.find("needs a value"),
                  std::string::npos);
    }
    {
        Argv a({"--jobs", "0"});
        EXPECT_FALSE(p.parse(a.argc(), a.argv()).ok());
    }
    {
        Argv a({"--jobs", "257"});
        EXPECT_FALSE(p.parse(a.argc(), a.argv()).ok());
    }
    {
        Argv a({"--jobs", "two"});
        EXPECT_FALSE(p.parse(a.argc(), a.argv()).ok());
    }
    {
        Argv a({"positional"});
        EXPECT_FALSE(p.parse(a.argc(), a.argv()).ok());
    }
}

TEST(ArgParser, HelpIsGeneratedFromTheFlagTable)
{
    std::string out;
    uint64_t instrs = 0;
    api::ArgParser p("mytool", "does things");
    api::stdflags::out(p, &out);
    api::stdflags::instrs(p, &instrs);

    Argv a({"--help"});
    auto st = p.parse(a.argc(), a.argv());
    ASSERT_TRUE(st.ok());
    EXPECT_TRUE(p.helpRequested());

    const std::string help = p.help();
    EXPECT_NE(help.find("mytool"), std::string::npos);
    EXPECT_NE(help.find("--out"), std::string::npos);
    EXPECT_NE(help.find("--instrs"), std::string::npos);
    // Deprecated aliases are documented on the canonical flag's line,
    // uniformly marked so every front end prints the same status.
    EXPECT_NE(help.find("(deprecated: --stats-json)"),
              std::string::npos);
    EXPECT_EQ(help.find("--json "), std::string::npos);
}

TEST(ArgParser, WasSetDistinguishesDefaultFromExplicit)
{
    uint64_t warmup = 999;
    bool wasSet = false;
    api::ArgParser p("t", "");
    api::stdflags::warmup(p, &warmup, &wasSet);
    {
        Argv a({});
        ASSERT_TRUE(p.parse(a.argc(), a.argv()).ok());
        EXPECT_FALSE(wasSet);
        EXPECT_EQ(warmup, 999u);
    }
    {
        Argv a({"--warmup", "0"});
        ASSERT_TRUE(p.parse(a.argc(), a.argv()).ok());
        EXPECT_TRUE(wasSet);
        EXPECT_EQ(warmup, 0u);
    }
}

// --- RunRequest validation / runOne ---

TEST(RunRequest, ValidateRejectsBadFields)
{
    api::RunRequest req;
    req.smt = 3;
    EXPECT_FALSE(req.validate().ok());

    req = api::RunRequest{};
    req.instrs = 0;
    EXPECT_FALSE(req.validate().ok());

    req = api::RunRequest{};
    req.ckptSave = "a";
    req.ckptLoad = "b";
    auto st = req.validate();
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.error().message.find("mutually exclusive"),
              std::string::npos);
}

TEST(Service, RunOneResolvesNamesAndRuns)
{
    api::Service service;
    api::RunRequest req;
    req.workload = "xz";
    req.smt = 2;
    req.instrs = 2000;
    req.warmup = 500;
    auto outcome = service.runOne(req);
    ASSERT_TRUE(outcome.ok()) << outcome.error().str();
    EXPECT_GT(outcome.value().ipc(), 0.0);
    EXPECT_GT(outcome.value().powerW(), 0.0);
    EXPECT_EQ(outcome.value().warmupSimulated, 500u * 2u);
}

TEST(Service, RunOneStructuredErrors)
{
    api::Service service;
    api::RunRequest req;
    req.instrs = 1000;
    req.warmup = 100;

    req.workload = "no-such-workload";
    auto r1 = service.runOne(req);
    ASSERT_FALSE(r1.ok());
    EXPECT_EQ(r1.error().code, common::ErrorCode::NotFound);

    req.workload = "xz";
    req.config = "power11";
    auto r2 = service.runOne(req);
    ASSERT_FALSE(r2.ok());
    EXPECT_EQ(r2.error().code, common::ErrorCode::NotFound);

    req.config = "ablate:no_such_group";
    auto r3 = service.runOne(req);
    ASSERT_FALSE(r3.ok());
    EXPECT_EQ(r3.error().code, common::ErrorCode::NotFound);
}

TEST(Service, RunOneAblateSpellingMatchesSweepLayer)
{
    api::Service service;
    api::RunRequest req;
    req.config = "ablate:l2_cache";
    req.workload = "perlbench";
    req.instrs = 1500;
    req.warmup = 300;
    auto outcome = service.runOne(req);
    ASSERT_TRUE(outcome.ok()) << outcome.error().str();
    EXPECT_NE(outcome.value().config.name, "power10");
}

TEST(Service, RunOneTimeoutIsStructured)
{
    api::Service service;
    api::RunRequest req;
    req.workload = "perlbench";
    req.instrs = 100000;
    req.warmup = 0;
    req.maxCycles = 50; // far too tight
    auto outcome = service.runOne(req);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, common::ErrorCode::Timeout);
}

TEST(Service, RunReportIsDeterministic)
{
    api::Service service;
    api::RunRequest req;
    req.workload = "xz";
    req.instrs = 2000;
    req.warmup = 400;
    auto a = service.runOne(req);
    auto b = service.runOne(req);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(api::Service::runReport(req, a.value()).toJson(),
              api::Service::runReport(req, b.value()).toJson());
}

// --- Sweeps through the facade ---

TEST(Service, MergedReportByteIdenticalAcrossJobs)
{
    api::Service service;
    const sweep::SweepSpec spec = smallSpec();

    api::SweepOptions serial;
    serial.jobs = 1;
    auto r1 = service.runSweep(spec, serial);
    ASSERT_TRUE(r1.ok()) << r1.error().str();

    api::SweepOptions parallel;
    parallel.jobs = 4;
    auto r4 = service.runSweep(spec, parallel);
    ASSERT_TRUE(r4.ok()) << r4.error().str();

    EXPECT_EQ(
        api::Service::mergedReport(spec, r1.value()).toJson(),
        api::Service::mergedReport(spec, r4.value()).toJson());
}

TEST(Service, SharedCacheMakesWarmRequestsSimulateNothing)
{
    const std::string dir = freshDir("p10ee_api_cache_test");
    api::Service service(api::Service::Options{dir});
    const sweep::SweepSpec spec = smallSpec();

    api::SweepOptions opts;
    opts.jobs = 2;
    auto cold = service.runSweep(spec, opts);
    ASSERT_TRUE(cold.ok()) << cold.error().str();
    EXPECT_EQ(cold.value().cachedShards, 0u);
    EXPECT_EQ(cold.value().simulatedShards, spec.shardCount());

    auto warm = service.runSweep(spec, opts);
    ASSERT_TRUE(warm.ok()) << warm.error().str();
    EXPECT_EQ(warm.value().simulatedShards, 0u);
    EXPECT_EQ(warm.value().cachedShards, spec.shardCount());

    // Warmth must not leak into the canonical artifact.
    EXPECT_EQ(
        api::Service::mergedReport(spec, cold.value()).toJson(),
        api::Service::mergedReport(spec, warm.value()).toJson());

    std::filesystem::remove_all(dir);
}

TEST(Service, ProgressEventsCoverEveryShard)
{
    api::Service service;
    const sweep::SweepSpec spec = smallSpec();
    std::vector<uint64_t> indices;
    api::SweepOptions opts;
    opts.jobs = 2;
    opts.onProgress = [&indices](const api::ProgressEvent& ev) {
        indices.push_back(ev.index);
        EXPECT_EQ(ev.total, 4u);
        EXPECT_FALSE(ev.key.empty());
        EXPECT_EQ(ev.status, "ok");
    };
    auto r = service.runSweep(spec, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(indices.size(), spec.shardCount());
}

TEST(Service, CancelRecordsRemainingShardsAsCancelled)
{
    api::Service service;
    sweep::SweepSpec spec = smallSpec();
    std::atomic<bool> cancel{true}; // pre-cancelled: nothing simulates
    api::SweepOptions opts;
    opts.jobs = 1;
    opts.cancel = &cancel;
    auto r = service.runSweep(spec, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().cancelledShards, spec.shardCount());
    EXPECT_EQ(r.value().okCount, 0u);
    for (const auto& s : r.value().shards)
        EXPECT_EQ(s.error.code, common::ErrorCode::Cancelled);
}

TEST(Service, MaxCyclesOverrideOnlyTightens)
{
    api::Service service;
    sweep::SweepSpec spec = smallSpec();
    spec.workloads = {"perlbench"};
    spec.smt = {1};

    api::SweepOptions opts;
    opts.jobs = 1;
    opts.maxCyclesOverride = 10; // impossible budget
    auto r = service.runSweep(spec, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().okCount, 0u);
    for (const auto& s : r.value().shards)
        EXPECT_EQ(s.error.code, common::ErrorCode::Timeout);
}

// --- SimMode: field-named validation, the FastM1 differential, and
// --- cross-mode checkpoint interchange ---

/** The architectural view of a full-mode counter snapshot: everything
    minus the sw.* switching-activity family FastM1 skips. */
common::StatSnapshot
archStats(const common::StatSnapshot& stats)
{
    common::StatSnapshot arch;
    for (const auto& [name, value] : stats)
        if (name.rfind("sw.", 0) != 0)
            arch[name] = value;
    return arch;
}

TEST(RunRequest, ValidationErrorsNameTheFirstBadField)
{
    auto fieldOf = [](const api::RunRequest& req) {
        auto st = req.validate();
        EXPECT_FALSE(st.ok());
        return st.ok() ? std::string() : st.error().field;
    };
    api::RunRequest req;
    req.smt = 3;
    EXPECT_EQ(fieldOf(req), "smt");

    req = api::RunRequest{};
    req.instrs = 0;
    EXPECT_EQ(fieldOf(req), "instrs");

    req = api::RunRequest{};
    req.mode = api::SimMode::FastM1;
    req.cores = 2;
    EXPECT_EQ(fieldOf(req), "mode");

    req = api::RunRequest{};
    req.mode = api::SimMode::FastM1;
    req.sampleInterval = 128;
    EXPECT_EQ(fieldOf(req), "mode");

    // The field rides on the rendered message verbatim — the daemon's
    // NDJSON error line and both CLIs' exit-2 text print this string.
    req = api::RunRequest{};
    req.smt = 5;
    auto st = req.validate();
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.error().str().find("(field: smt)"),
              std::string::npos);
}

TEST(Service, FastM1ArchIdenticalToFullEverywhere)
{
    // The differential pin of the fast path: across machines, SMT
    // levels, synthetic and recorded-trace workloads, FastM1 must
    // produce byte-identical architectural results to Full — same
    // cycles/instrs/ops/flops and every non-sw.* counter — while its
    // power-proxy counters are absent (not zeroed) and no power can
    // be evaluated.
    api::Service service;
    const std::string traceWl = std::string("trace:") +
                                P10EE_GOLDEN_DIR +
                                "/trace_isa30.p10trace";
    for (const char* config : {"power9", "power10"}) {
        for (const std::string& workload :
             {std::string("perlbench"), std::string("xz"), traceWl}) {
            for (int smt : {1, 2}) {
                api::RunRequest req;
                req.config = config;
                req.workload = workload;
                req.smt = smt;
                req.instrs = 2000;
                req.warmup = 400;
                auto full = service.runOne(req);
                ASSERT_TRUE(full.ok()) << full.error().str();
                req.mode = api::SimMode::FastM1;
                auto fast = service.runOne(req);
                ASSERT_TRUE(fast.ok()) << fast.error().str();

                const std::string tag = std::string(config) + "/" +
                                        workload + "/smt" +
                                        std::to_string(smt);
                EXPECT_EQ(fast.value().run.cycles,
                          full.value().run.cycles)
                    << tag;
                EXPECT_EQ(fast.value().run.instrs,
                          full.value().run.instrs)
                    << tag;
                EXPECT_EQ(fast.value().run.ops, full.value().run.ops)
                    << tag;
                EXPECT_EQ(fast.value().run.flops,
                          full.value().run.flops)
                    << tag;
                EXPECT_EQ(fast.value().run.stats,
                          archStats(full.value().run.stats))
                    << tag;
                EXPECT_GT(full.value().powerW(), 0.0) << tag;
                EXPECT_EQ(fast.value().powerW(), 0.0) << tag;
                for (const auto& [name, value] :
                     fast.value().run.stats)
                    EXPECT_NE(name.rfind("sw.", 0), 0u) << name;
                // The fast report carries no power scalars (absent,
                // not zeroed) and states its fidelity; full-mode
                // reports keep their exact historical bytes.
                const std::string fastJson =
                    api::Service::runReport(req, fast.value())
                        .toJson();
                EXPECT_EQ(fastJson.find("power_w"), std::string::npos)
                    << tag;
                EXPECT_NE(fastJson.find("fast_m1"), std::string::npos)
                    << tag;
            }
        }
    }
}

TEST(Service, CheckpointsInterchangeAcrossModes)
{
    // Warmup checkpoints are mode-independent (sw.* counters are
    // excluded from the saved state in both modes): a snapshot taken
    // by a Full run restores into a FastM1 run and vice versa with
    // byte-identical architectural results — never silent divergence.
    api::Service service;
    const std::string fullCkpt = freshDir("p10ee_api_ckpt_full.bin");
    const std::string fastCkpt = freshDir("p10ee_api_ckpt_fast.bin");

    api::RunRequest base;
    base.workload = "xz";
    base.smt = 2;
    base.instrs = 2000;
    base.warmup = 500;

    api::RunRequest save = base;
    save.ckptSave = fullCkpt;
    auto fullCold = service.runOne(save);
    ASSERT_TRUE(fullCold.ok()) << fullCold.error().str();

    save.mode = api::SimMode::FastM1;
    save.ckptSave = fastCkpt;
    auto fastCold = service.runOne(save);
    ASSERT_TRUE(fastCold.ok()) << fastCold.error().str();

    // The two snapshot files are the same bytes: mode is not part of
    // checkpoint identity.
    {
        std::ifstream a(fullCkpt, std::ios::binary);
        std::ifstream b(fastCkpt, std::ios::binary);
        ASSERT_TRUE(a.good());
        ASSERT_TRUE(b.good());
        const std::string bytesA(
            (std::istreambuf_iterator<char>(a)),
            std::istreambuf_iterator<char>());
        const std::string bytesB(
            (std::istreambuf_iterator<char>(b)),
            std::istreambuf_iterator<char>());
        EXPECT_FALSE(bytesA.empty());
        EXPECT_EQ(bytesA, bytesB);
    }

    // Full checkpoint -> FastM1 run (and the reverse): architectural
    // results identical to the cold runs of the target mode.
    api::RunRequest load = base;
    load.ckptLoad = fullCkpt;
    load.mode = api::SimMode::FastM1;
    auto fastWarm = service.runOne(load);
    ASSERT_TRUE(fastWarm.ok()) << fastWarm.error().str();
    EXPECT_EQ(fastWarm.value().warmupSimulated, 0u);
    EXPECT_EQ(fastWarm.value().run.cycles, fastCold.value().run.cycles);
    EXPECT_EQ(fastWarm.value().run.instrs, fastCold.value().run.instrs);
    EXPECT_EQ(fastWarm.value().run.stats, fastCold.value().run.stats);
    EXPECT_EQ(fastWarm.value().powerW(), 0.0);

    load = base;
    load.ckptLoad = fastCkpt;
    auto fullWarm = service.runOne(load);
    ASSERT_TRUE(fullWarm.ok()) << fullWarm.error().str();
    EXPECT_EQ(fullWarm.value().run.cycles, fullCold.value().run.cycles);
    EXPECT_EQ(fullWarm.value().run.instrs, fullCold.value().run.instrs);
    EXPECT_EQ(fullWarm.value().run.stats, fullCold.value().run.stats);
    // A Full run restored from a FastM1 snapshot evaluates power
    // normally — identical to power from a Full-saved snapshot.
    EXPECT_EQ(fullWarm.value().powerW(), fullCold.value().powerW());
    EXPECT_GT(fullWarm.value().powerW(), 0.0);

    std::filesystem::remove(fullCkpt);
    std::filesystem::remove(fastCkpt);
}

TEST(Service, MixedModeSweepIsDeterministicAndArchConsistent)
{
    // One sweep over both fidelity modes: merged reports byte-identical
    // across job counts and cache warmth, and within a run each grid
    // point's FastM1 shard matches its Full twin architecturally while
    // carrying no power.
    sweep::SweepSpec spec = smallSpec();
    spec.configs = {"power9", "power10"};
    spec.modes = {api::SimMode::Full, api::SimMode::FastM1};

    const std::string dir = freshDir("p10ee_api_mode_sweep_cache");
    api::Service service(api::Service::Options{dir});

    api::SweepOptions serial;
    serial.jobs = 1;
    auto cold = service.runSweep(spec, serial);
    ASSERT_TRUE(cold.ok()) << cold.error().str();
    EXPECT_EQ(cold.value().okCount, spec.shardCount());

    api::SweepOptions parallel;
    parallel.jobs = 4;
    auto warm = service.runSweep(spec, parallel);
    ASSERT_TRUE(warm.ok()) << warm.error().str();
    EXPECT_EQ(warm.value().simulatedShards, 0u);
    EXPECT_EQ(
        api::Service::mergedReport(spec, cold.value()).toJson(),
        api::Service::mergedReport(spec, warm.value()).toJson());

    // Modes expand innermost above seeds: with seeds == 1 each Full
    // shard is immediately followed by its FastM1 twin.
    const auto& shards = cold.value().shards;
    ASSERT_EQ(shards.size() % 2, 0u);
    for (size_t i = 0; i < shards.size(); i += 2) {
        const auto& full = shards[i];
        const auto& fast = shards[i + 1];
        ASSERT_EQ(full.mode, api::SimMode::Full) << full.key;
        ASSERT_EQ(fast.mode, api::SimMode::FastM1) << fast.key;
        EXPECT_EQ(fast.key, full.key + "/fast_m1");
        EXPECT_EQ(fast.cycles, full.cycles) << full.key;
        EXPECT_EQ(fast.instrs, full.instrs) << full.key;
        EXPECT_EQ(fast.ipc, full.ipc) << full.key;
        EXPECT_GT(full.powerW, 0.0) << full.key;
        EXPECT_EQ(fast.powerW, 0.0) << fast.key;
        EXPECT_EQ(fast.ipcPerW, 0.0) << fast.key;
    }

    std::filesystem::remove_all(dir);
}

} // namespace
