/**
 * @file
 * Tests for the extension features: BF16 MMA ops, prefixed (8-byte)
 * instructions, and the SERMiner protection-policy costing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "core/core.h"
#include "mma/engine.h"
#include "mma/gemm.h"
#include "ras/serminer.h"
#include "workloads/spec_profiles.h"
#include "workloads/synthetic.h"

using namespace p10ee;

// ---------------- BF16 ----------------

TEST(Bf16, RoundTripExactForRepresentable)
{
    for (float v : {0.0f, 1.0f, -2.5f, 0.15625f, 65536.0f}) {
        EXPECT_EQ(mma::fromBf16(mma::toBf16(v)), v);
    }
}

TEST(Bf16, RoundingIsNearest)
{
    // 1.0 + 2^-9 is not representable in bf16 (7 fraction bits); it
    // must round to 1.0, while 1.0 + 2^-7 survives.
    EXPECT_EQ(mma::fromBf16(mma::toBf16(1.0f + 0.001953125f)), 1.0f);
    EXPECT_EQ(mma::fromBf16(mma::toBf16(1.0f + 0.0078125f)),
              1.0078125f);
}

TEST(Bf16, GerMatchesFloatOuterProduct)
{
    mma::MmaEngine e;
    uint16_t x[8], y[8];
    float xf[8], yf[8];
    common::Xoshiro r(5);
    for (int i = 0; i < 8; ++i) {
        xf[i] = static_cast<float>(r.uniform() - 0.5);
        yf[i] = static_cast<float>(r.uniform() - 0.5);
        x[i] = mma::toBf16(xf[i]);
        y[i] = mma::toBf16(yf[i]);
    }
    e.xvbf16ger2pp(0, x, y);
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            float want = mma::fromBf16(x[2 * i]) *
                             mma::fromBf16(y[2 * j]) +
                         mma::fromBf16(x[2 * i + 1]) *
                             mma::fromBf16(y[2 * j + 1]);
            EXPECT_FLOAT_EQ(e.acc(0).f32[i][j], want);
        }
    }
}

TEST(Bf16, GemmTracksFp32WithinPrecision)
{
    constexpr int kM = 16, kN = 32, kK = 24;
    mma::GemmDims dims{kM, kN, kK};
    std::vector<float> af(kM * kK), bf(kK * kN);
    std::vector<uint16_t> a(kM * kK), b(kK * kN);
    common::Xoshiro r(9);
    for (size_t i = 0; i < af.size(); ++i) {
        af[i] = static_cast<float>(r.uniform() - 0.5);
        a[i] = mma::toBf16(af[i]);
        af[i] = mma::fromBf16(a[i]); // quantized reference inputs
    }
    for (size_t i = 0; i < bf.size(); ++i) {
        bf[i] = static_cast<float>(r.uniform() - 0.5);
        b[i] = mma::toBf16(bf[i]);
        bf[i] = mma::fromBf16(b[i]);
    }
    std::vector<float> want(kM * kN, 0.0f), got(kM * kN, 0.0f);
    mma::sgemmRef(af.data(), bf.data(), want.data(), dims);
    mma::bgemmMma(a.data(), b.data(), got.data(), dims);
    for (size_t i = 0; i < want.size(); ++i)
        ASSERT_NEAR(got[i], want[i], 1e-4f) << i;
}

TEST(Bf16, EmitsMmaStream)
{
    constexpr int kM = 8, kN = 16, kK = 8;
    std::vector<uint16_t> a(kM * kK, mma::toBf16(1.0f));
    std::vector<uint16_t> b(kK * kN, mma::toBf16(1.0f));
    std::vector<float> c(kM * kN, 0.0f);
    mma::VectorSink sink;
    mma::bgemmMma(a.data(), b.data(), c.data(), {kM, kN, kK}, &sink);
    int gers = 0;
    for (const auto& in : sink.instrs())
        gers += in.op == isa::OpClass::MmaGer;
    EXPECT_EQ(gers, 8 * kK / 2); // rank-2: 8 accumulators per 2 k-steps
    EXPECT_FLOAT_EQ(c[0], static_cast<float>(kK));
}

// ---------------- Prefixed instructions ----------------

namespace {

workloads::WorkloadProfile
prefixedProfile()
{
    workloads::WorkloadProfile p =
        workloads::profileByName("exchange2");
    p.name = "prefixed_exchange2";
    p.prefixedFrac = 0.30;
    return p;
}

core::RunResult
runProfile(const core::CoreConfig& cfg,
           const workloads::WorkloadProfile& prof, uint64_t instrs)
{
    workloads::SyntheticWorkload src(prof);
    core::CoreModel m(cfg);
    core::RunOptions o;
    o.warmupInstrs = 20000;
    o.measureInstrs = instrs;
    return m.run({&src}, o);
}

} // namespace

TEST(Prefix, GeneratorEmitsEightBytePcs)
{
    workloads::SyntheticWorkload src(prefixedProfile());
    int prefixed = 0;
    uint64_t prevPc = 0;
    bool prevPrefixed = false;
    bool sawEightByteStep = false;
    for (int i = 0; i < 20000; ++i) {
        auto in = src.next();
        prefixed += in.prefixed;
        if (prevPrefixed && in.pc == prevPc + 8)
            sawEightByteStep = true;
        prevPc = in.pc;
        prevPrefixed = in.prefixed;
    }
    EXPECT_GT(prefixed, 3000);
    EXPECT_TRUE(sawEightByteStep);
}

TEST(Prefix, Power10FusesPower9Cracks)
{
    auto prof = prefixedProfile();
    auto r9 = runProfile(core::power9(), prof, 30000);
    auto r10 = runProfile(core::power10(), prof, 30000);
    EXPECT_GT(r9.stats.at("decode.cracked"), 1000u);
    EXPECT_EQ(r9.stats.count("decode.prefix_fused"), 0u);
    EXPECT_GT(r10.stats.at("decode.prefix_fused"), 1000u);
    EXPECT_EQ(r10.stats.count("decode.cracked"), 0u);
}

TEST(Prefix, CrackingCostsDecodeBandwidth)
{
    // On a decode-bound workload, prefixed instructions hurt the
    // cracking machine more than the fusing one.
    auto plain = workloads::profileByName("exchange2");
    auto pre = prefixedProfile();
    auto cfg9 = core::power9();
    double slowdown9 = runProfile(cfg9, plain, 30000).ipc() /
                       runProfile(cfg9, pre, 30000).ipc();
    auto cfg10 = core::power10();
    double slowdown10 = runProfile(cfg10, plain, 30000).ipc() /
                        runProfile(cfg10, pre, 30000).ipc();
    EXPECT_GT(slowdown9, slowdown10 * 0.99);
}

// ---------------- SERMiner protection policy ----------------

namespace {

std::vector<ras::LatchGroup>
analyzeSpec(const core::CoreConfig& cfg)
{
    const auto& prof = workloads::profileByName("perlbench");
    workloads::SyntheticWorkload src(prof);
    core::CoreModel m(cfg);
    core::RunOptions o;
    o.warmupInstrs = 20000;
    o.measureInstrs = 30000;
    std::vector<core::RunResult> suite;
    suite.push_back(m.run({&src}, o));
    return ras::SerMiner(cfg).analyze(suite);
}

} // namespace

TEST(Protection, HigherVtProtectsMoreAtMoreCost)
{
    auto groups = analyzeSpec(core::power10());
    auto loose = ras::SerMiner::protectionCost(groups, 0.1);
    auto strict = ras::SerMiner::protectionCost(groups, 0.9);
    EXPECT_GT(strict.protectedFrac, loose.protectedFrac);
    EXPECT_GT(strict.powerOverheadFrac, loose.powerOverheadFrac);
    EXPECT_LT(strict.residualRisk, loose.residualRisk);
}

TEST(Protection, Power10CheaperAtIsoResilience)
{
    // The Fig. 14 conclusion: POWER10 attains the same residual risk
    // with a lower protection power overhead.
    auto g9 = analyzeSpec(core::power9());
    auto g10 = analyzeSpec(core::power10());
    auto r9 = ras::SerMiner::protectionCost(g9, 0.5);
    // Find the POWER10 VT that reaches at most POWER9's residual risk.
    for (double vt = 0.05; vt <= 1.0; vt += 0.05) {
        auto r10 = ras::SerMiner::protectionCost(g10, vt);
        if (r10.residualRisk <= r9.residualRisk) {
            EXPECT_LT(r10.powerOverheadFrac,
                      r9.powerOverheadFrac * 1.3);
            return;
        }
    }
    FAIL() << "POWER10 never reached POWER9's residual risk";
}

TEST(Protection, RankingIdentifiesHotComponents)
{
    auto groups = analyzeSpec(core::power10());
    auto ranked = ras::SerMiner::rankComponents(groups);
    ASSERT_GE(ranked.size(), 10u);
    // Descending risk order.
    for (size_t i = 1; i < ranked.size(); ++i)
        EXPECT_LE(ranked[i].second, ranked[i - 1].second);
    // An idle unit cannot outrank the busiest ones.
    EXPECT_NE(ranked.front().first, "crypto_dfu");
}
