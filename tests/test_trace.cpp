/**
 * @file
 * Trace ingestion frontend tests: container round-trips, hostile-input
 * fuzzing (run under ASan/UBSan in CI), checkpointable replay,
 * registry resolution, cache-key stability, snippet re-extraction, and
 * the committed golden trace corpus.
 *
 * Regenerate the golden corpus with:
 *   P10EE_REGEN_GOLDEN=1 ./test_trace --gtest_filter='*Golden*'
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.h"
#include "core/core.h"
#include "sweep/cache.h"
#include "sweep/spec.h"
#include "trace/container.h"
#include "trace/extract.h"
#include "trace/replay.h"
#include "workloads/registry.h"
#include "workloads/spec_profiles.h"
#include "workloads/synthetic.h"

using namespace p10ee;

namespace {

/** Deterministic varied instruction stream exercising every encoder
    path: memory ops, branches, prefixed/MMA records, toggles. */
std::vector<isa::TraceInstr>
variedStream(size_t n, uint64_t seedMix = 0)
{
    std::vector<isa::TraceInstr> out;
    out.reserve(n);
    uint64_t pc = 0x10000000 + seedMix * 64;
    for (size_t i = 0; i < n; ++i) {
        isa::TraceInstr in;
        switch ((i + seedMix) % 7) {
        case 0:
            in.op = isa::OpClass::IntAlu;
            in.src[0] = 3;
            in.src[1] = 4;
            in.dest = 5;
            break;
        case 1:
            in.op = isa::OpClass::Load;
            in.src[0] = 1;
            in.dest = 2;
            in.addr = 0x2000000 + i * 8;
            in.size = 8;
            in.memTier = static_cast<uint8_t>(i % 4);
            break;
        case 2:
            in.op = isa::OpClass::Store;
            in.src[0] = 6;
            in.src[1] = 7;
            in.addr = 0x3000000 + i * 16;
            in.size = 16;
            break;
        case 3:
            in.op = isa::OpClass::Branch;
            in.taken = i % 2 == 0;
            in.target = in.taken ? pc - 32 : 0;
            break;
        case 4:
            in.op = isa::OpClass::VsuFp;
            in.src[0] = 40;
            in.src[1] = 41;
            in.src[2] = 42;
            in.dest = 43;
            in.toggle = 0.5f;
            break;
        case 5:
            in.op = isa::OpClass::MmaGer;
            in.src[0] = 50;
            in.src[1] = 51;
            in.dest = isa::reg::kAccBase;
            in.gemm = true;
            in.prefixed = true;
            break;
        default:
            in.op = isa::OpClass::Nop;
            break;
        }
        in.pc = pc;
        pc += in.prefixed ? 8 : 4;
        out.push_back(in);
    }
    return out;
}

trace::TraceMeta
meta(const std::string& name)
{
    trace::TraceMeta m;
    m.name = name;
    m.dialect = "power-isa-3.1";
    m.source = "test";
    return m;
}

trace::TraceData
build(const std::vector<isa::TraceInstr>& stream, uint8_t encoding,
      uint32_t chunkCapacity, const std::string& name = "t")
{
    trace::TraceWriter w(meta(name), encoding, chunkCapacity);
    for (const isa::TraceInstr& in : stream)
        w.add(in);
    return w.finish();
}

bool
sameInstr(const isa::TraceInstr& a, const isa::TraceInstr& b)
{
    common::BinWriter wa;
    common::BinWriter wb;
    trace::writeCanonicalInstr(wa, a);
    trace::writeCanonicalInstr(wb, b);
    return wa.bytes() == wb.bytes();
}

std::string
tmpPath(const std::string& stem)
{
    return (std::filesystem::temp_directory_path() / stem).string();
}

} // namespace

// ---- Container round-trips ----

TEST(TraceContainer, RawRoundTripsBitExact)
{
    const auto stream = variedStream(300);
    trace::TraceData t = build(stream, trace::kEncodingRaw, 64);
    const auto bytes = t.toBytes();
    auto back = trace::TraceData::fromBytes(bytes);
    ASSERT_TRUE(back.ok()) << back.error().message;
    EXPECT_EQ(back.value().instrCount(), stream.size());
    EXPECT_EQ(back.value().contentHash(), t.contentHash());
    EXPECT_EQ(back.value().meta().name, "t");
    EXPECT_EQ(back.value().meta().dialect, "power-isa-3.1");
    EXPECT_TRUE(back.value().verifyContent().ok());
    auto decoded = back.value().decodeAll();
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value().size(), stream.size());
    for (size_t i = 0; i < stream.size(); ++i)
        EXPECT_TRUE(sameInstr(decoded.value()[i], stream[i])) << i;
}

TEST(TraceContainer, DeltaRoundTripsBitExact)
{
    const auto stream = variedStream(300);
    trace::TraceData t = build(stream, trace::kEncodingDelta, 64);
    EXPECT_EQ(t.chunkCount(), (300 + 63) / 64);
    const auto bytes = t.toBytes();
    auto back = trace::TraceData::fromBytes(bytes);
    ASSERT_TRUE(back.ok()) << back.error().message;
    EXPECT_TRUE(back.value().verifyContent().ok());
    auto decoded = back.value().decodeAll();
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value().size(), stream.size());
    for (size_t i = 0; i < stream.size(); ++i)
        EXPECT_TRUE(sameInstr(decoded.value()[i], stream[i])) << i;
}

TEST(TraceContainer, ContentHashIsEncodingIndependent)
{
    const auto stream = variedStream(200);
    trace::TraceData raw = build(stream, trace::kEncodingRaw, 32);
    trace::TraceData delta = build(stream, trace::kEncodingDelta, 50);
    EXPECT_EQ(raw.contentHash(), delta.contentHash());
    // ... while the encodings themselves genuinely differ (delta is
    // the compact one).
    EXPECT_NE(raw.toBytes(), delta.toBytes());
    EXPECT_LT(delta.payloadBytes(), raw.payloadBytes());
}

TEST(TraceContainer, WriterIsDeterministic)
{
    const auto stream = variedStream(150);
    EXPECT_EQ(build(stream, trace::kEncodingDelta, 40).toBytes(),
              build(stream, trace::kEncodingDelta, 40).toBytes());
}

TEST(TraceContainer, SaveLoadRoundTrips)
{
    const auto stream = variedStream(64);
    trace::TraceData t = build(stream, trace::kEncodingDelta, 16);
    const std::string path = tmpPath("p10ee_trace_roundtrip.p10trace");
    ASSERT_TRUE(t.save(path).ok());
    auto back = trace::TraceData::load(path);
    ASSERT_TRUE(back.ok()) << back.error().message;
    EXPECT_EQ(back.value().toBytes(), t.toBytes());
    std::filesystem::remove(path);
}

TEST(TraceContainer, MetaValidationRejectsHostileNames)
{
    trace::TraceMeta m = meta("ok");
    EXPECT_TRUE(trace::validateMeta(m).ok());
    m.name = "";
    EXPECT_FALSE(trace::validateMeta(m).ok());
    m.name = "has/slash";
    EXPECT_FALSE(trace::validateMeta(m).ok());
    m.name = "ctrl\x01char";
    EXPECT_FALSE(trace::validateMeta(m).ok());
    m.name = std::string(201, 'a');
    EXPECT_FALSE(trace::validateMeta(m).ok());
    m = meta("ok");
    m.source = std::string(5000, 's');
    EXPECT_FALSE(trace::validateMeta(m).ok());
    m = meta("ok");
    m.dialect = "bad\x7f";
    EXPECT_FALSE(trace::validateMeta(m).ok());
}

// ---- Hostile input (the fuzz suite; CI runs this under ASan/UBSan) ----

TEST(TraceHostile, TruncationAtEveryPrefixRejected)
{
    // Small trace with several chunks so every chunk boundary is one
    // of the swept prefixes.
    trace::TraceData t = build(variedStream(40), trace::kEncodingDelta,
                               8);
    const auto bytes = t.toBytes();
    for (size_t n = 0; n < bytes.size(); ++n) {
        auto r = trace::TraceData::fromBytes(bytes.data(), n);
        EXPECT_FALSE(r.ok()) << "prefix length " << n;
        if (!r.ok()) {
            EXPECT_EQ(r.error().code,
                      common::ErrorCode::InvalidArgument);
        }
    }
}

TEST(TraceHostile, EveryByteFlipRejected)
{
    trace::TraceData t = build(variedStream(20), trace::kEncodingDelta,
                               8);
    auto bytes = t.toBytes();
    for (size_t i = 0; i < bytes.size(); ++i) {
        bytes[i] ^= 0xff;
        auto r = trace::TraceData::fromBytes(bytes);
        EXPECT_FALSE(r.ok()) << "flipped byte " << i;
        bytes[i] ^= 0xff;
    }
}

TEST(TraceHostile, GarbageMagicRejected)
{
    std::vector<uint8_t> junk(64, 0x5a);
    auto r = trace::TraceData::fromBytes(junk);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("magic"), std::string::npos);
}

TEST(TraceHostile, StaleFormatVersionRejected)
{
    trace::TraceData t = build(variedStream(10), trace::kEncodingRaw,
                               8);
    auto bytes = t.toBytes();
    bytes[8] = 99; // the u32 format version follows the 8-byte magic
    auto r = trace::TraceData::fromBytes(bytes);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("format version"),
              std::string::npos);
}

namespace {

/** Re-seal hostile bytes with a valid trailing checksum, so the tests
    reach the post-checksum validation layers. */
std::vector<uint8_t>
resealed(std::vector<uint8_t> bytes)
{
    bytes.resize(bytes.size() - 8);
    common::Fnv1a h;
    h.bytes(bytes.data(), bytes.size());
    common::BinWriter tail;
    tail.u64(h.digest());
    bytes.insert(bytes.end(), tail.bytes().begin(), tail.bytes().end());
    return bytes;
}

/** Byte offset of the chunk-count u32 in a serialized trace. */
size_t
chunkCountOffset(const trace::TraceData& t)
{
    // magic + fmt + 3 length-prefixed strings + instrCount +
    // contentHash + encoding.
    return 8 + 4 + (4 + t.meta().name.size()) +
           (4 + t.meta().dialect.size()) +
           (4 + t.meta().source.size()) + 8 + 8 + 1;
}

} // namespace

TEST(TraceHostile, OversizeChunkCountWithValidChecksumRejected)
{
    trace::TraceData t = build(variedStream(10), trace::kEncodingRaw,
                               8, "h");
    auto bytes = t.toBytes();
    const size_t at = chunkCountOffset(t);
    bytes[at] = 0xff;
    bytes[at + 1] = 0xff;
    bytes[at + 2] = 0xff;
    bytes[at + 3] = 0xff;
    auto r = trace::TraceData::fromBytes(resealed(bytes));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("chunk count"), std::string::npos);
}

TEST(TraceHostile, OutOfRangeOpClassWithValidChecksumRejected)
{
    // A fabricated file carries a self-consistent checksum; the decode
    // layer must still range-check every field before it reaches the
    // core model. Raw encoding: record k's op byte sits at k * 43.
    const auto stream = variedStream(12);
    trace::TraceData t = build(stream, trace::kEncodingRaw, 64, "h");
    auto bytes = t.toBytes();
    const size_t payloadAt = chunkCountOffset(t) + 4 + 4 + 8;
    bytes[payloadAt + 5 * 43] = 200; // record 5's op class
    auto envOk = trace::TraceData::fromBytes(resealed(bytes));
    ASSERT_TRUE(envOk.ok()); // envelope is consistent...
    auto decoded = envOk.value().decodeAll();
    ASSERT_FALSE(decoded.ok()); // ...the payload is not
    EXPECT_NE(decoded.error().message.find("out-of-range"),
              std::string::npos);
    EXPECT_FALSE(envOk.value().verifyContent().ok());
}

TEST(TraceHostile, MutatedPayloadFailsContentVerification)
{
    // Flip a data byte and reseal: the envelope stays valid and the
    // record may still decode, but the content hash must catch it.
    const auto stream = variedStream(12);
    trace::TraceData t = build(stream, trace::kEncodingRaw, 64, "h");
    auto bytes = t.toBytes();
    const size_t payloadAt = chunkCountOffset(t) + 4 + 4 + 8;
    bytes[payloadAt + 2 * 43 + 1] ^= 0x01; // record 2's first src reg
    auto envOk = trace::TraceData::fromBytes(resealed(bytes));
    ASSERT_TRUE(envOk.ok());
    auto st = envOk.value().verifyContent();
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.error().message.find("content hash"),
              std::string::npos);
}

TEST(TraceHostile, RandomGarbageFuzzNeverCrashes)
{
    std::mt19937_64 rng(0xfeedface);
    for (int iter = 0; iter < 200; ++iter) {
        std::vector<uint8_t> junk(rng() % 400);
        for (uint8_t& b : junk)
            b = static_cast<uint8_t>(rng());
        // Half the iterations keep a plausible prelude so the fuzz
        // reaches past the magic/version gates.
        if (iter % 2 == 0 && junk.size() >= 12) {
            const char m[8] = {'P', '1', '0', 'T', 'R', 'A', 'C', 'E'};
            for (int i = 0; i < 8; ++i)
                junk[static_cast<size_t>(i)] =
                    static_cast<uint8_t>(m[i]);
            junk[8] = 1;
            junk[9] = junk[10] = junk[11] = 0;
        }
        auto r = trace::TraceData::fromBytes(junk);
        // Structured rejection (a random 8-byte checksum collision is
        // out of the question at these sizes).
        EXPECT_FALSE(r.ok());
    }
}

TEST(TraceHostile, MutationFuzzOnValidFileNeverCrashes)
{
    trace::TraceData t = build(variedStream(30), trace::kEncodingDelta,
                               8);
    const auto pristine = t.toBytes();
    std::mt19937_64 rng(0xdecafbad);
    for (int iter = 0; iter < 200; ++iter) {
        auto bytes = pristine;
        // 1-3 random byte mutations, sometimes resealed so the deeper
        // layers (chunk table, varint decoding, semantic ranges) get
        // exercised instead of the checksum front door.
        const int edits = 1 + static_cast<int>(rng() % 3);
        for (int e = 0; e < edits; ++e)
            bytes[rng() % (bytes.size() - 8)] ^=
                static_cast<uint8_t>(1u << (rng() % 8));
        if (iter % 2 == 0)
            bytes = resealed(bytes);
        auto r = trace::TraceData::fromBytes(bytes);
        if (r.ok()) {
            // A resealed mutation can yield a consistent envelope;
            // decode + content verification must still be safe and
            // must catch any payload change.
            auto st = r.value().verifyContent();
            (void)st;
        }
    }
}

// ---- Replay ----

TEST(TraceReplay, WrapsAroundLikeReplaySource)
{
    const auto stream = variedStream(50);
    auto data = std::make_shared<const trace::TraceData>(
        build(stream, trace::kEncodingDelta, 16));
    ASSERT_TRUE(data->verifyContent().ok());
    trace::TraceReplaySource src(data);
    EXPECT_EQ(src.name(), "trace:t");
    for (size_t i = 0; i < stream.size() * 2 + 25; ++i) {
        const isa::TraceInstr in = src.next();
        EXPECT_TRUE(sameInstr(in, stream[i % stream.size()])) << i;
    }
}

TEST(TraceReplay, CursorStateRoundTripsAcrossChunks)
{
    const auto stream = variedStream(90);
    auto data = std::make_shared<const trace::TraceData>(
        build(stream, trace::kEncodingDelta, 16));
    ASSERT_TRUE(data->verifyContent().ok());

    trace::TraceReplaySource a(data);
    for (int i = 0; i < 37; ++i)
        a.next();
    common::BinWriter w;
    a.saveState(w);

    trace::TraceReplaySource b(data);
    common::BinReader r(w.bytes());
    ASSERT_TRUE(b.loadState(r).ok());
    EXPECT_EQ(b.cursor(), a.cursor());
    for (int i = 0; i < 200; ++i) {
        const isa::TraceInstr fromA = a.next();
        const isa::TraceInstr fromB = b.next();
        EXPECT_TRUE(sameInstr(fromA, fromB)) << i;
    }
}

TEST(TraceReplay, LoadStateOverDifferentTraceRejected)
{
    auto dataA = std::make_shared<const trace::TraceData>(
        build(variedStream(30), trace::kEncodingDelta, 8, "a"));
    auto dataB = std::make_shared<const trace::TraceData>(
        build(variedStream(30, 1), trace::kEncodingDelta, 8, "b"));
    trace::TraceReplaySource a(dataA);
    a.next();
    common::BinWriter w;
    a.saveState(w);
    trace::TraceReplaySource b(dataB);
    common::BinReader r(w.bytes());
    auto st = b.loadState(r);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.error().message.find("different trace"),
              std::string::npos);
}

TEST(TraceReplay, CheckpointRestoreMidTraceBitIdentical)
{
    // The acceptance bar: save mid-trace, restore into a fresh model,
    // and the measured window is bit-identical to the uninterrupted
    // run — through the real ckpt::Checkpoint container.
    const auto stream = variedStream(400);
    auto data = std::make_shared<const trace::TraceData>(
        build(stream, trace::kEncodingDelta, 64));
    ASSERT_TRUE(data->verifyContent().ok());

    auto fingerprint = [&](bool viaCheckpoint) {
        core::CoreModel model(core::power10());
        trace::TraceReplaySource src(data);
        std::vector<workloads::InstrSource*> threads{&src};
        std::vector<workloads::CheckpointableSource*> walkers{&src};
        model.beginRun(threads);
        model.advance(2000);
        if (viaCheckpoint) {
            ckpt::CheckpointMeta m;
            m.configName = "power10";
            m.workload = "trace:t";
            auto ck = ckpt::Checkpoint::capture(model, walkers, m);
            const auto bytes = ck.toBytes();
            auto back = ckpt::Checkpoint::fromBytes(bytes);
            EXPECT_TRUE(back.ok());
            core::CoreModel fresh(core::power10());
            trace::TraceReplaySource src2(data);
            std::vector<workloads::InstrSource*> threads2{&src2};
            std::vector<workloads::CheckpointableSource*> walkers2{
                &src2};
            fresh.beginRun(threads2);
            EXPECT_TRUE(back.value().restore(fresh, walkers2).ok());
            core::RunOptions opts;
            opts.measureInstrs = 3000;
            const auto run = fresh.measure(opts);
            return std::to_string(run.cycles) + "/" +
                   std::to_string(run.instrs) + "/" +
                   std::to_string(src2.cursor());
        }
        core::RunOptions opts;
        opts.measureInstrs = 3000;
        const auto run = model.measure(opts);
        return std::to_string(run.cycles) + "/" +
               std::to_string(run.instrs) + "/" +
               std::to_string(src.cursor());
    };
    EXPECT_EQ(fingerprint(false), fingerprint(true));
}

// ---- Registry resolution ----

TEST(TraceRegistry, PlainNamesStillResolve)
{
    auto p = workloads::resolveWorkload("xz");
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p.value().name, "xz");
    EXPECT_TRUE(p.value().frontend.empty());
    auto src = workloads::makeSource(p.value(), 0);
    ASSERT_TRUE(src.ok());
    EXPECT_NE(dynamic_cast<workloads::SyntheticWorkload*>(
                  src.value().get()),
              nullptr);
}

TEST(TraceRegistry, UnknownNamesAndSchemesAreNotFound)
{
    trace::registerTraceFrontend();
    auto a = workloads::resolveWorkload("no_such_profile");
    ASSERT_FALSE(a.ok());
    EXPECT_EQ(a.error().code, common::ErrorCode::NotFound);
    auto b = workloads::resolveWorkload("bogus:whatever");
    ASSERT_FALSE(b.ok());
    EXPECT_EQ(b.error().code, common::ErrorCode::NotFound);
    EXPECT_NE(b.error().message.find("scheme"), std::string::npos);
    auto c = workloads::resolveWorkload("trace:");
    ASSERT_FALSE(c.ok());
    EXPECT_EQ(c.error().code, common::ErrorCode::InvalidArgument);
}

TEST(TraceRegistry, TraceSchemeResolvesAndReplays)
{
    trace::registerTraceFrontend();
    EXPECT_TRUE(workloads::hasFrontend("trace"));
    const std::string path = tmpPath("p10ee_trace_registry.p10trace");
    trace::TraceData t =
        build(variedStream(80), trace::kEncodingDelta, 32, "reg");
    ASSERT_TRUE(t.save(path).ok());

    auto p = workloads::resolveWorkload("trace:" + path);
    ASSERT_TRUE(p.ok()) << p.error().message;
    EXPECT_EQ(p.value().name, "trace:reg");
    EXPECT_EQ(p.value().frontend, "trace");
    EXPECT_EQ(p.value().sourcePath, path);
    EXPECT_EQ(p.value().contentHash, t.contentHash());

    auto src = workloads::makeSource(p.value(), 0);
    ASSERT_TRUE(src.ok()) << src.error().message;
    EXPECT_EQ(src.value()->name(), "trace:reg");
    std::filesystem::remove(path);
}

TEST(TraceRegistry, FileSwappedAfterResolutionRejected)
{
    trace::registerTraceFrontend();
    const std::string path = tmpPath("p10ee_trace_swap.p10trace");
    trace::TraceData t =
        build(variedStream(40), trace::kEncodingDelta, 16, "orig");
    ASSERT_TRUE(t.save(path).ok());
    auto p = workloads::resolveWorkload("trace:" + path);
    ASSERT_TRUE(p.ok());

    trace::TraceData other =
        build(variedStream(40, 3), trace::kEncodingDelta, 16, "orig");
    ASSERT_TRUE(other.save(path).ok());
    auto src = workloads::makeSource(p.value(), 0);
    ASSERT_FALSE(src.ok());
    EXPECT_EQ(src.error().code, common::ErrorCode::InvalidConfig);
    EXPECT_NE(src.error().message.find("changed"), std::string::npos);
    std::filesystem::remove(path);
}

TEST(TraceRegistry, MissingFileIsStructuredError)
{
    trace::registerTraceFrontend();
    auto p = workloads::resolveWorkload(
        "trace:/nonexistent/definitely_missing.p10trace");
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.error().code, common::ErrorCode::NotFound);
}

// ---- Cache-key stability ----

TEST(TraceCacheKeys, MetadataChangesKeepKeysStable)
{
    // Same instruction content, re-described metadata (dialect,
    // source): the profile hash and the shard cache key must not move.
    const auto stream = variedStream(60);
    trace::TraceWriter wa(meta("stable"), trace::kEncodingDelta, 16);
    trace::TraceMeta mb = meta("stable");
    mb.dialect = "power-isa-3.0";
    mb.source = "entirely different provenance";
    trace::TraceWriter wb(std::move(mb), trace::kEncodingRaw, 64);
    for (const isa::TraceInstr& in : stream) {
        wa.add(in);
        wb.add(in);
    }
    const std::string pa = tmpPath("p10ee_trace_key_a.p10trace");
    const std::string pb = tmpPath("p10ee_trace_key_b.p10trace");
    ASSERT_TRUE(wa.finish().save(pa).ok());
    ASSERT_TRUE(wb.finish().save(pb).ok());

    trace::registerTraceFrontend();
    auto profA = workloads::resolveWorkload("trace:" + pa);
    auto profB = workloads::resolveWorkload("trace:" + pb);
    ASSERT_TRUE(profA.ok());
    ASSERT_TRUE(profB.ok());
    EXPECT_EQ(workloads::profileHash(profA.value()),
              workloads::profileHash(profB.value()));

    sweep::SweepSpec spec;
    spec.configs = {"power10"};
    spec.smt = {1};
    spec.instrs = 1000;
    sweep::ShardSpec sa;
    sa.configName = "power10";
    sa.config = core::power10();
    sa.profile = profA.value();
    sweep::ShardSpec sb = sa;
    sb.profile = profB.value();
    spec.workloads = {"trace:" + pa};
    EXPECT_EQ(sweep::ShardCache::shardKey(spec, sa),
              sweep::ShardCache::shardKey(spec, sb));
    std::filesystem::remove(pa);
    std::filesystem::remove(pb);
}

TEST(TraceCacheKeys, OneMutatedInstructionChangesKeys)
{
    auto stream = variedStream(60);
    trace::TraceData a =
        build(stream, trace::kEncodingDelta, 16, "mut");
    stream[30].toggle = 0.75f; // one field of one instruction
    trace::TraceData b =
        build(stream, trace::kEncodingDelta, 16, "mut");
    EXPECT_NE(a.contentHash(), b.contentHash());

    workloads::WorkloadProfile pa;
    pa.name = "trace:mut";
    pa.frontend = "trace";
    pa.contentHash = a.contentHash();
    workloads::WorkloadProfile pb = pa;
    pb.contentHash = b.contentHash();
    EXPECT_NE(workloads::profileHash(pa), workloads::profileHash(pb));

    sweep::SweepSpec spec;
    spec.configs = {"power10"};
    spec.workloads = {"trace:mut"};
    spec.smt = {1};
    spec.instrs = 1000;
    sweep::ShardSpec sa;
    sa.configName = "power10";
    sa.config = core::power10();
    sa.profile = pa;
    sweep::ShardSpec sb = sa;
    sb.profile = pb;
    EXPECT_NE(sweep::ShardCache::shardKey(spec, sa),
              sweep::ShardCache::shardKey(spec, sb));
}

TEST(TraceCacheKeys, SyntheticProfileHashIgnoresFrontendFields)
{
    // Compatibility pin: pre-existing synthetic cache keys must not
    // move just because WorkloadProfile grew frontend-binding fields.
    const workloads::WorkloadProfile* p = workloads::findProfile("xz");
    ASSERT_NE(p, nullptr);
    workloads::WorkloadProfile modified = *p;
    modified.sourcePath = "/anything";
    modified.contentHash = 12345; // dead fields while frontend == ""
    EXPECT_EQ(workloads::profileHash(*p),
              workloads::profileHash(modified));
}

// ---- Snippet re-extraction ----

namespace {

/** A stream dominated by one 8-instruction loop at 0x1000, with a
    short prologue ahead of it. */
std::vector<isa::TraceInstr>
loopStream(int iterations, uint64_t loopBase = 0x1000)
{
    std::vector<isa::TraceInstr> out;
    for (int i = 0; i < 5; ++i) {
        isa::TraceInstr in;
        in.op = isa::OpClass::IntAlu;
        in.pc = 0x100 + static_cast<uint64_t>(i) * 4;
        out.push_back(in);
    }
    for (int it = 0; it < iterations; ++it) {
        for (int i = 0; i < 8; ++i) {
            isa::TraceInstr in;
            in.pc = loopBase + static_cast<uint64_t>(i) * 4;
            if (i == 7) {
                in.op = isa::OpClass::Branch;
                in.taken = true;
                in.target = loopBase;
            } else if (i == 3) {
                in.op = isa::OpClass::Load;
                in.src[0] = 1;
                in.dest = 2;
                in.addr = 0x9000 + static_cast<uint64_t>(it) * 8;
                in.size = 8;
            } else {
                in.op = isa::OpClass::IntAlu;
                in.src[0] = 3;
                in.dest = 4;
            }
            out.push_back(in);
        }
    }
    return out;
}

} // namespace

TEST(TraceExtract, FindsTheDominantLoopWithCoverage)
{
    trace::TraceData t =
        build(loopStream(100), trace::kEncodingDelta, 64, "loopy");
    auto r = trace::extractProxies(t, trace::ExtractOptions{});
    ASSERT_TRUE(r.ok()) << r.error().message;
    ASSERT_EQ(r.value().proxies.size(), 1u);
    const workloads::SnippetProxy& proxy = r.value().proxies[0];
    EXPECT_EQ(proxy.name, "loopy#pc1000");
    EXPECT_EQ(proxy.loop.size(), 8u);
    EXPECT_GT(r.value().coverage, 0.9);
    EXPECT_LE(r.value().coverage, 1.0);
    // The snippet closes on itself: tail is a taken branch to the head.
    EXPECT_TRUE(proxy.loop.back().taken);
    EXPECT_EQ(proxy.loop.back().target, proxy.loop.front().pc);
}

TEST(TraceExtract, SnippetRoundTripsAsItsOwnTrace)
{
    trace::TraceData t =
        build(loopStream(50), trace::kEncodingDelta, 64, "loopy");
    auto r = trace::extractProxies(t, trace::ExtractOptions{});
    ASSERT_TRUE(r.ok());
    ASSERT_FALSE(r.value().proxies.empty());
    trace::TraceData snip =
        trace::proxyToTrace(r.value().proxies[0], t.meta());
    EXPECT_EQ(snip.meta().name, "loopy#pc1000");
    EXPECT_EQ(snip.meta().source, "extract:loopy");
    EXPECT_TRUE(snip.verifyContent().ok());
    auto bytes = snip.toBytes();
    auto back = trace::TraceData::fromBytes(bytes);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value().instrCount(), 8u);
}

TEST(TraceExtract, L1SpanFilterRejectsGiantLoops)
{
    // Same shape but the "loop" spans 1MB of code — fails the
    // L1-contained bar, so nothing is extracted.
    std::vector<isa::TraceInstr> stream;
    for (int it = 0; it < 30; ++it) {
        for (int i = 0; i < 4; ++i) {
            isa::TraceInstr in;
            in.pc = 0x1000 + static_cast<uint64_t>(i) * (1u << 18);
            if (i == 3) {
                in.op = isa::OpClass::Branch;
                in.taken = true;
                in.target = 0x1000;
            } else {
                in.op = isa::OpClass::IntAlu;
            }
            stream.push_back(in);
        }
    }
    trace::TraceData t =
        build(stream, trace::kEncodingDelta, 64, "giant");
    auto r = trace::extractProxies(t, trace::ExtractOptions{});
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().proxies.empty());
    EXPECT_EQ(r.value().coverage, 0.0);
}

TEST(TraceExtract, CapturedSyntheticWorkloadExtractsSomething)
{
    // End-to-end: record a real synthetic workload, then mine it. The
    // CFG walkers loop over their static code, so extraction must find
    // at least one L1-contained loop with non-trivial coverage.
    const workloads::WorkloadProfile* p = workloads::findProfile("xz");
    ASSERT_NE(p, nullptr);
    workloads::SyntheticWorkload src(*p);
    trace::TraceData t =
        trace::recordTrace(src, 20000, meta("xz-rec"));
    auto r = trace::extractProxies(t, trace::ExtractOptions{});
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.value().proxies.empty());
    EXPECT_GT(r.value().coverage, 0.1);
}

// ---- Recording ----

TEST(TraceRecord, CaptureTeeMatchesTheInnerStream)
{
    const workloads::WorkloadProfile* p =
        workloads::findProfile("perlbench");
    ASSERT_NE(p, nullptr);
    workloads::SyntheticWorkload a(*p);
    workloads::SyntheticWorkload b(*p);
    trace::TraceWriter w(meta("tee"));
    trace::TraceCapture tee(a, w);
    for (int i = 0; i < 500; ++i) {
        const isa::TraceInstr viaTee = tee.next();
        const isa::TraceInstr direct = b.next();
        ASSERT_TRUE(sameInstr(viaTee, direct)) << i;
    }
    trace::TraceData t = w.finish();
    EXPECT_EQ(t.instrCount(), 500u);
    // Replay equals a third walker of the same profile.
    ASSERT_TRUE(t.verifyContent().ok());
    auto data = std::make_shared<const trace::TraceData>(std::move(t));
    trace::TraceReplaySource replay(data);
    workloads::SyntheticWorkload c(*p);
    for (int i = 0; i < 500; ++i)
        ASSERT_TRUE(sameInstr(replay.next(), c.next())) << i;
}

TEST(TraceRecord, DialectAutoDetection)
{
    // Pure scalar stream -> 3.0; MMA/prefixed content -> 3.1.
    std::vector<isa::TraceInstr> scalar(20);
    for (size_t i = 0; i < scalar.size(); ++i)
        scalar[i].pc = 0x100 + i * 4;
    workloads::ReplaySource s30("s30", scalar);
    trace::TraceMeta m;
    m.name = "d30";
    trace::TraceData t30 = trace::recordTrace(s30, 20, m);
    EXPECT_EQ(t30.meta().dialect, "power-isa-3.0");

    auto withMma = scalar;
    withMma[5].op = isa::OpClass::MmaGer;
    workloads::ReplaySource s31("s31", withMma);
    m.name = "d31";
    trace::TraceData t31 = trace::recordTrace(s31, 20, m);
    EXPECT_EQ(t31.meta().dialect, "power-isa-3.1");
}

// ---- Golden corpus ----
//
// Committed trace containers, one per ISA dialect, with their expected
// content hashes. Any change to the canonical record layout, the delta
// codec, or the FNV discipline that is not accompanied by a deliberate
// format bump + corpus regeneration fails here.
// Regenerate with: P10EE_REGEN_GOLDEN=1 ./test_trace
//     --gtest_filter='*Golden*'

namespace {

struct GoldenTrace
{
    const char* stem;
    uint64_t seedMix; ///< variedStream parameter
    size_t instrs;
    const char* dialect;
};

constexpr GoldenTrace kGoldenTraces[] = {
    {"trace_isa30", 1, 96, "power-isa-3.0"},
    {"trace_isa31", 0, 96, "power-isa-3.1"},
};

std::vector<isa::TraceInstr>
goldenStream(const GoldenTrace& g)
{
    auto stream = variedStream(g.instrs, g.seedMix);
    if (std::string(g.dialect) == "power-isa-3.0")
        for (isa::TraceInstr& in : stream)
            if (in.prefixed || isa::isMma(in.op)) {
                in = isa::TraceInstr{};
                in.op = isa::OpClass::FpScalar;
                in.src[0] = 32;
                in.dest = 33;
            }
    return stream;
}

} // namespace

TEST(TraceGolden, CorpusLoadsVerifiesAndMatchesItsHash)
{
    const bool regen = std::getenv("P10EE_REGEN_GOLDEN") != nullptr;
    for (const GoldenTrace& g : kGoldenTraces) {
        const std::string path =
            std::string(P10EE_GOLDEN_DIR) + "/" + g.stem + ".p10trace";
        const std::string hashPath =
            std::string(P10EE_GOLDEN_DIR) + "/" + g.stem + ".hash.txt";
        trace::TraceMeta m;
        m.name = g.stem;
        m.dialect = g.dialect;
        m.source = "golden corpus (tests/test_trace.cpp)";
        trace::TraceWriter w(m, trace::kEncodingDelta, 32);
        for (const isa::TraceInstr& in : goldenStream(g))
            w.add(in);
        trace::TraceData fresh = w.finish();
        if (regen) {
            ASSERT_TRUE(fresh.save(path).ok());
            std::ofstream hf(hashPath, std::ios::trunc);
            char hex[17];
            std::snprintf(hex, sizeof(hex), "%016llx",
                          static_cast<unsigned long long>(
                              fresh.contentHash()));
            hf << hex << "\n";
            continue;
        }
        auto loaded = trace::TraceData::load(path);
        ASSERT_TRUE(loaded.ok()) << loaded.error().message;
        EXPECT_TRUE(loaded.value().verifyContent().ok()) << g.stem;
        EXPECT_EQ(loaded.value().meta().dialect, g.dialect);
        // The committed file must be byte-identical to what today's
        // writer produces — serialization drift fails loudly.
        EXPECT_EQ(loaded.value().toBytes(), fresh.toBytes()) << g.stem;
        std::ifstream hf(hashPath);
        ASSERT_TRUE(hf.good()) << hashPath;
        std::string hex;
        hf >> hex;
        char expect[17];
        std::snprintf(expect, sizeof(expect), "%016llx",
                      static_cast<unsigned long long>(
                          loaded.value().contentHash()));
        EXPECT_EQ(hex, expect) << g.stem;
    }
}

TEST(TraceGolden, CorpusCheckpointRestoreBitIdentity)
{
    if (std::getenv("P10EE_REGEN_GOLDEN") != nullptr)
        GTEST_SKIP() << "regenerating corpus";
    // Replay cursor save/restore over the committed containers stays
    // bit-identical: the stream after restore matches the stream of an
    // uninterrupted source at the same offset.
    for (const GoldenTrace& g : kGoldenTraces) {
        const std::string path =
            std::string(P10EE_GOLDEN_DIR) + "/" + g.stem + ".p10trace";
        auto loaded = trace::TraceData::load(path);
        ASSERT_TRUE(loaded.ok());
        auto data = std::make_shared<const trace::TraceData>(
            std::move(loaded.value()));
        ASSERT_TRUE(data->verifyContent().ok());
        trace::TraceReplaySource uninterrupted(data);
        trace::TraceReplaySource first(data);
        for (int i = 0; i < 41; ++i) {
            uninterrupted.next();
            first.next();
        }
        common::BinWriter w;
        first.saveState(w);
        trace::TraceReplaySource resumed(data);
        common::BinReader r(w.bytes());
        ASSERT_TRUE(resumed.loadState(r).ok());
        for (int i = 0; i < 150; ++i)
            ASSERT_TRUE(
                sameInstr(uninterrupted.next(), resumed.next()))
                << g.stem << " instr " << i;
    }
}
