/**
 * @file
 * Sweep-engine tests: the work-stealing pool's execution and error
 * contracts, RNG stream derivation, JSON spec parsing, grid expansion
 * order, the byte-determinism of merged reports across thread counts,
 * timeout/retry/skip recording, output-collision detection, and the
 * parallel fault campaign's jobs-independence.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "fault/campaign.h"
#include "obs/json.h"
#include "sweep/pool.h"
#include "sweep/runner.h"
#include "sweep/spec.h"

using namespace p10ee;

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask)
{
    sweep::ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    sweep::ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(64);
    pool.parallelFor(64, [&hits](uint64_t i) {
        hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, NestedSubmitsFromTasksComplete)
{
    sweep::ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&pool, &count] {
            // Tasks submitted from a worker land on its own deque and
            // may be stolen by idle workers; all must still run.
            for (int j = 0; j < 4; ++j)
                pool.submit([&count] { count.fetch_add(1); });
            count.fetch_add(1);
        });
    pool.wait();
    EXPECT_EQ(count.load(), 8 * 5);
}

TEST(ThreadPool, WaitRethrowsFirstTaskException)
{
    sweep::ThreadPool pool(2);
    std::atomic<int> survivors{0};
    pool.submit([] { throw std::runtime_error("task died"); });
    for (int i = 0; i < 10; ++i)
        pool.submit([&survivors] { survivors.fetch_add(1); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error never takes the pool down: later tasks still ran and
    // the pool is reusable after the rethrow.
    EXPECT_EQ(survivors.load(), 10);
    pool.submit([&survivors] { survivors.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(survivors.load(), 11);
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> count{0};
    {
        sweep::ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { count.fetch_add(1); });
        // No wait(): destruction itself must drain.
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne)
{
    sweep::ThreadPool pool(0);
    EXPECT_EQ(pool.threads(), 1);
    std::atomic<int> count{0};
    pool.parallelFor(5, [&count](uint64_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 5);
}

// ---------------------------------------------------------------------
// RNG stream derivation
// ---------------------------------------------------------------------

TEST(SplitSeed, NeighbouringStreamsAreDecorrelated)
{
    // Consecutive stream ids (the shard-index pattern) must land on
    // seeds that differ in roughly half their bits.
    for (uint64_t master : {1ull, 42ull, 0xdeadbeefull}) {
        for (uint64_t i = 0; i < 16; ++i) {
            const uint64_t a = common::splitSeed(master, i);
            const uint64_t b = common::splitSeed(master, i + 1);
            const int bits = __builtin_popcountll(a ^ b);
            EXPECT_GT(bits, 12) << "master " << master << " id " << i;
            EXPECT_LT(bits, 52) << "master " << master << " id " << i;
        }
    }
}

TEST(SplitSeed, IsAPureFunction)
{
    EXPECT_EQ(common::splitSeed(7, 3), common::splitSeed(7, 3));
    EXPECT_NE(common::splitSeed(7, 3), common::splitSeed(7, 4));
    EXPECT_NE(common::splitSeed(7, 3), common::splitSeed(8, 3));
}

TEST(Xoshiro, SplitDerivesFromConstructionSeedNotState)
{
    common::Xoshiro a(99);
    common::Xoshiro b(99);
    for (int i = 0; i < 37; ++i)
        a.next(); // advancing the parent must not move its splits
    common::Xoshiro sa = a.split(5);
    common::Xoshiro sb = b.split(5);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(sa.next(), sb.next());
}

// ---------------------------------------------------------------------
// JSON parser + output-collision helper
// ---------------------------------------------------------------------

TEST(ParseJson, ParsesTypicalSpecDocument)
{
    auto doc = obs::parseJson(
        "{\"a\": [1, 2.5, -3], \"b\": \"x\\ny\", \"c\": true, "
        "\"d\": null, \"e\": {\"k\": 7}}");
    ASSERT_TRUE(doc.ok());
    const obs::JsonValue& v = doc.value();
    ASSERT_TRUE(v.isObject());
    ASSERT_NE(v.find("a"), nullptr);
    EXPECT_EQ(v.find("a")->array.size(), 3u);
    EXPECT_DOUBLE_EQ(v.find("a")->array[1].number, 2.5);
    EXPECT_EQ(v.find("b")->string, "x\ny");
    EXPECT_TRUE(v.find("c")->boolean);
    EXPECT_TRUE(v.find("d")->isNull());
    EXPECT_DOUBLE_EQ(v.find("e")->find("k")->number, 7.0);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ParseJson, ReportsPositionOnMalformedInput)
{
    auto doc = obs::parseJson("{\n  \"a\": 1,\n  \"b\" 2\n}");
    ASSERT_FALSE(doc.ok());
    EXPECT_EQ(doc.error().code, common::ErrorCode::InvalidArgument);
    // 1-based line:column of the offending token.
    EXPECT_NE(doc.error().message.find("3:"), std::string::npos)
        << doc.error().message;
}

TEST(ParseJson, RejectsDuplicateKeysAndTrailingGarbage)
{
    EXPECT_FALSE(obs::parseJson("{\"a\": 1, \"a\": 2}").ok());
    EXPECT_FALSE(obs::parseJson("{} extra").ok());
    EXPECT_FALSE(obs::parseJson("").ok());
}

TEST(ParseJson, AsU64RejectsNegativeAndFractional)
{
    auto doc = obs::parseJson("{\"n\": -1, \"f\": 1.5, \"k\": 12}");
    ASSERT_TRUE(doc.ok());
    EXPECT_FALSE(doc.value().find("n")->asU64("n").ok());
    EXPECT_FALSE(doc.value().find("f")->asU64("f").ok());
    auto k = doc.value().find("k")->asU64("k");
    ASSERT_TRUE(k.ok());
    EXPECT_EQ(k.value(), 12u);
}

TEST(DistinctOutputPaths, FlagsCollisionsIgnoresEmpties)
{
    EXPECT_TRUE(obs::distinctOutputPaths({}).ok());
    EXPECT_TRUE(obs::distinctOutputPaths({"a.json", "b.json"}).ok());
    EXPECT_TRUE(obs::distinctOutputPaths({"", "", "a.json"}).ok());
    auto st = obs::distinctOutputPaths({"a.json", "b.json", "a.json"});
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.error().code, common::ErrorCode::InvalidArgument);
    EXPECT_NE(st.error().message.find("a.json"), std::string::npos);
}

// ---------------------------------------------------------------------
// SweepSpec
// ---------------------------------------------------------------------

namespace {

sweep::SweepSpec
smallSpec()
{
    sweep::SweepSpec spec;
    spec.configs = {"power9", "power10"};
    spec.workloads = {"perlbench", "mcf"};
    spec.smt = {1, 2};
    spec.seeds = 2;
    spec.instrs = 2000;
    spec.warmup = 400;
    spec.seed = 11;
    return spec;
}

} // namespace

TEST(SweepSpec, ParsesFullDocumentAndRejectsUnknownKeys)
{
    auto spec = sweep::SweepSpec::fromJson(
        "{\"configs\": [\"power10\", \"ablate:queues\"],"
        "\"workloads\": [\"xz\"], \"smt\": [1, 8], \"seeds\": 3,"
        "\"instrs\": 5000, \"warmup\": 1000, \"max_cycles\": 100000,"
        "\"max_retries\": 1, \"infra_fail_prob\": 0.5, \"seed\": 9,"
        "\"sample_interval\": 256, \"shard_reports_dir\": \"shards\"}");
    ASSERT_TRUE(spec.ok()) << spec.error().str();
    EXPECT_EQ(spec.value().configs.size(), 2u);
    EXPECT_EQ(spec.value().shardCount(), 2u * 1 * 2 * 3);
    EXPECT_EQ(spec.value().maxCycles, 100000u);
    EXPECT_EQ(spec.value().sampleInterval, 256u);

    // A typo must not silently shrink a sweep.
    auto typo = sweep::SweepSpec::fromJson(
        "{\"configs\": [\"power10\"], \"workloads\": [\"xz\"],"
        "\"seedz\": 3}");
    ASSERT_FALSE(typo.ok());
    EXPECT_NE(typo.error().message.find("seedz"), std::string::npos);
}

TEST(SweepSpec, ValidateCollectsAllProblems)
{
    sweep::SweepSpec spec;
    spec.smt = {3};
    spec.seeds = 0;
    spec.instrs = 0;
    spec.infraFailProb = 1.5;
    auto st = spec.validate();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.error().code, common::ErrorCode::InvalidConfig);
    for (const char* frag : {"configs", "workloads", "smt", "seeds",
                             "instrs", "infra_fail_prob"})
        EXPECT_NE(st.error().message.find(frag), std::string::npos)
            << frag;
}

TEST(SweepSpec, ExpandRejectsUnknownNames)
{
    auto spec = smallSpec();
    spec.configs = {"power11"};
    auto bad = spec.expand();
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, common::ErrorCode::NotFound);

    spec = smallSpec();
    spec.workloads = {"fortnite"};
    bad = spec.expand();
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, common::ErrorCode::NotFound);

    spec = smallSpec();
    spec.configs = {"ablate:nonesuch"};
    bad = spec.expand();
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.error().message.find("nonesuch"), std::string::npos);
}

TEST(SweepSpec, ExpansionOrderIsNestedLoopsConfigsOutermost)
{
    auto spec = smallSpec();
    auto shards = spec.expand();
    ASSERT_TRUE(shards.ok());
    ASSERT_EQ(shards.value().size(), spec.shardCount());
    EXPECT_EQ(shards.value()[0].key(), "power9/perlbench/smt1/seed0");
    EXPECT_EQ(shards.value()[1].key(), "power9/perlbench/smt1/seed1");
    EXPECT_EQ(shards.value()[2].key(), "power9/perlbench/smt2/seed0");
    EXPECT_EQ(shards.value()[4].key(), "power9/mcf/smt1/seed0");
    EXPECT_EQ(shards.value()[8].key(), "power10/perlbench/smt1/seed0");
    for (size_t i = 0; i < shards.value().size(); ++i)
        EXPECT_EQ(shards.value()[i].index, i);

    // Replica 0 runs the profile's own seed; replica 1 a split stream.
    EXPECT_NE(shards.value()[0].profile.seed,
              shards.value()[1].profile.seed);
    EXPECT_EQ(shards.value()[1].profile.seed,
              common::splitSeed(shards.value()[0].profile.seed, 1));
}

TEST(SweepSpec, ModeAxisParsesExpandsAndSuffixesKeys)
{
    auto spec = sweep::SweepSpec::fromJson(
        "{\"configs\": [\"power10\"], \"workloads\": [\"mcf\"],"
        "\"smt\": [1], \"mode\": [\"full\", \"fast_m1\"],"
        "\"instrs\": 2000, \"warmup\": 400, \"seed\": 3}");
    ASSERT_TRUE(spec.ok()) << spec.error().str();
    ASSERT_EQ(spec.value().modes.size(), 2u);
    EXPECT_EQ(spec.value().shardCount(), 2u);

    auto shards = spec.value().expand();
    ASSERT_TRUE(shards.ok()) << shards.error().str();
    // Full-mode keys keep the exact historical spelling; FastM1 keys
    // append the mode so mixed sweeps stay self-describing.
    EXPECT_EQ(shards.value()[0].key(), "power10/mcf/smt1/seed0");
    EXPECT_EQ(shards.value()[1].key(),
              "power10/mcf/smt1/seed0/fast_m1");
    EXPECT_EQ(shards.value()[0].mode, api::SimMode::Full);
    EXPECT_EQ(shards.value()[1].mode, api::SimMode::FastM1);

    // Round trip: the mode axis survives canonical JSON.
    auto back = sweep::SweepSpec::fromJson(spec.value().toJson());
    ASSERT_TRUE(back.ok()) << back.error().str();
    EXPECT_EQ(back.value().toJson(), spec.value().toJson());
}

TEST(SweepSpec, HostileModeValuesRejectedAtTheSpecBoundary)
{
    // Unknown mode spellings must die in parsing with the offending
    // field named — a typo must never silently run the wrong fidelity.
    auto bad = sweep::SweepSpec::fromJson(
        "{\"configs\": [\"power10\"], \"workloads\": [\"mcf\"],"
        "\"mode\": [\"warp9\"]}");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().field, "mode");
    EXPECT_NE(bad.error().str().find("warp9"), std::string::npos);

    // Wrong JSON type for the axis.
    EXPECT_FALSE(sweep::SweepSpec::fromJson(
                     "{\"configs\": [\"power10\"],"
                     "\"workloads\": [\"mcf\"], \"mode\": \"full\"}")
                     .ok());

    // FastM1 is a single-core mode: a spec crossing it with a
    // multi-core axis entry fails validation.
    sweep::SweepSpec spec = smallSpec();
    spec.modes = {api::SimMode::FastM1};
    spec.cores = {1, 2};
    auto st = spec.validate();
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.error().message.find("mode"), std::string::npos);

    // ... and telemetry sampling is exactly what the mode skips.
    spec = smallSpec();
    spec.modes = {api::SimMode::FastM1};
    spec.sampleInterval = 256;
    EXPECT_FALSE(spec.validate().ok());
}

// ---------------------------------------------------------------------
// SweepRunner: determinism, timeout, retry/skip
// ---------------------------------------------------------------------

TEST(SweepRunner, MergedReportIsByteIdenticalAcrossJobCounts)
{
    const auto spec = smallSpec();
    std::vector<std::string> jsons;
    for (int jobs : {1, 4, 8}) {
        sweep::SweepRunner runner(spec);
        auto result = runner.run(jobs);
        ASSERT_TRUE(result.ok()) << result.error().str();
        EXPECT_EQ(result.value().okCount, spec.shardCount());
        jsons.push_back(
            sweep::SweepRunner::merge(spec, result.value(),
                                      "test_sweep")
                .toJson());
    }
    // The whole document, byte for byte — the determinism contract.
    EXPECT_EQ(jsons[0], jsons[1]);
    EXPECT_EQ(jsons[0], jsons[2]);
}

TEST(SweepRunner, TelemetrySeriesStayDeterministicAcrossJobs)
{
    auto spec = smallSpec();
    spec.configs = {"power10"};
    spec.smt = {1};
    spec.sampleInterval = 256;
    sweep::SweepRunner a(spec);
    sweep::SweepRunner b(spec);
    auto ra = a.run(1);
    auto rb = b.run(4);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    ASSERT_FALSE(ra.value().shards[0].ipcX.empty());
    EXPECT_EQ(
        sweep::SweepRunner::merge(spec, ra.value(), "t").toJson(),
        sweep::SweepRunner::merge(spec, rb.value(), "t").toJson());
}

TEST(SweepRunner, CycleBudgetOverrunIsRecordedAsTimeout)
{
    auto spec = smallSpec();
    spec.configs = {"power10"};
    spec.workloads = {"mcf"};
    spec.smt = {1};
    spec.seeds = 1;
    spec.maxCycles = 50; // absurdly tight: every shard must trip it
    sweep::SweepRunner runner(spec);
    auto result = runner.run(2);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.value().shards.size(), 1u);
    const auto& shard = result.value().shards[0];
    EXPECT_FALSE(shard.ok);
    EXPECT_EQ(shard.error.code, common::ErrorCode::Timeout);
    EXPECT_EQ(shard.retries, 0) << "timeouts must not be retried";
    EXPECT_EQ(result.value().failed, 1u);
}

TEST(SweepRunner, TransientFailuresRetryThenSkipDeterministically)
{
    auto spec = smallSpec();
    spec.infraFailProb = 0.6;
    spec.maxRetries = 2;
    sweep::SweepRunner a(spec);
    sweep::SweepRunner b(spec);
    auto ra = a.run(1);
    auto rb = b.run(8);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    // At p=0.6 over 16 shards some retries and some exhausted budgets
    // are statistically certain; the exact pattern is seeded.
    EXPECT_GT(ra.value().retriesTotal, 0u);
    EXPECT_GT(ra.value().failed, 0u);
    EXPECT_LT(ra.value().failed, spec.shardCount());
    for (const auto& s : ra.value().shards) {
        if (!s.ok) {
            EXPECT_EQ(s.error.code, common::ErrorCode::Transient);
        }
    }
    // Identical failure/retry pattern regardless of thread count.
    EXPECT_EQ(
        sweep::SweepRunner::merge(spec, ra.value(), "t").toJson(),
        sweep::SweepRunner::merge(spec, rb.value(), "t").toJson());
}

TEST(SweepRunner, ProgressCallbackSeesEveryShardExactlyOnce)
{
    const auto spec = smallSpec();
    sweep::SweepRunner runner(spec);
    std::set<uint64_t> seen;
    runner.onProgress = [&seen](const api::ProgressEvent& ev) {
        // Serialized by the runner's mutex: plain set insert is safe.
        EXPECT_TRUE(seen.insert(ev.index).second);
    };
    auto result = runner.run(4);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(seen.size(), spec.shardCount());
}

// ---------------------------------------------------------------------
// Parallel fault campaign
// ---------------------------------------------------------------------

TEST(CampaignJobs, ReportIsIdenticalAcrossJobCounts)
{
    fault::CampaignSpec spec;
    spec.smt = 1;
    spec.seed = 42;
    spec.injections = 40;
    spec.warmupInstrs = 500;
    spec.measureInstrs = 1500;

    auto cfg = core::power10();
    const auto& profile = workloads::profileByName("mcf");

    fault::CampaignRunner serial(cfg, profile, spec);
    auto a = serial.run();
    ASSERT_TRUE(a.ok()) << a.error().str();

    spec.jobs = 3;
    fault::CampaignRunner parallel(cfg, profile, spec);
    auto b = parallel.run();
    ASSERT_TRUE(b.ok()) << b.error().str();

    ASSERT_EQ(a.value().records.size(), b.value().records.size());
    for (size_t i = 0; i < a.value().records.size(); ++i) {
        const auto& ra = a.value().records[i];
        const auto& rb = b.value().records[i];
        EXPECT_EQ(ra.id, rb.id);
        EXPECT_EQ(ra.component, rb.component);
        EXPECT_EQ(ra.outcome, rb.outcome);
        EXPECT_EQ(ra.retries, rb.retries);
        EXPECT_EQ(ra.skipped, rb.skipped);
    }
    EXPECT_EQ(a.value().total.masked, b.value().total.masked);
    EXPECT_EQ(a.value().total.sdc, b.value().total.sdc);
    EXPECT_EQ(a.value().total.crash, b.value().total.crash);
    EXPECT_EQ(a.value().retriesTotal, b.value().retriesTotal);
    EXPECT_EQ(a.value().skipped, b.value().skipped);
}

TEST(CampaignJobs, ValidateRejectsOutOfRangeJobs)
{
    fault::CampaignSpec spec;
    spec.jobs = 0;
    EXPECT_FALSE(spec.validate().ok());
    spec.jobs = 257;
    EXPECT_FALSE(spec.validate().ok());
    spec.jobs = 8;
    EXPECT_TRUE(spec.validate().ok());
}
