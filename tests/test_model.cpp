/**
 * @file
 * Tests for the counter-based power-model training: datasets, greedy
 * selection, constraints, bottom-up composition, and the Power Proxy.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/core.h"
#include "model/bottomup.h"
#include "model/dataset.h"
#include "model/proxy.h"
#include "model/regress.h"
#include "workloads/spec_profiles.h"
#include "workloads/synthetic.h"

using namespace p10ee;

namespace {

/** Shared fixture state: a small corpus of runs (built once). */
class ModelCorpus : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        cfg_ = new core::CoreConfig(core::power10());
        energy_ = new power::EnergyModel(*cfg_);
        runs_ = new std::vector<core::RunResult>();
        for (const char* name :
             {"perlbench", "x264", "mcf", "exchange2", "xz", "leela",
              "deepsjeng", "gcc"}) {
            for (int smt : {1, 2}) {
                const auto& prof = workloads::profileByName(name);
                std::vector<std::unique_ptr<workloads::SyntheticWorkload>>
                    srcs;
                std::vector<workloads::InstrSource*> ptrs;
                for (int t = 0; t < smt; ++t) {
                    srcs.push_back(
                        std::make_unique<workloads::SyntheticWorkload>(
                            prof, t));
                    ptrs.push_back(srcs.back().get());
                }
                core::CoreModel m(*cfg_);
                core::RunOptions o;
                o.warmupInstrs = 20000u * static_cast<unsigned>(smt);
                o.measureInstrs = 30000;
                o.collectTimings = smt == 1;
                runs_->push_back(m.run(ptrs, o));
            }
        }
        ds_ = new model::Dataset(
            model::buildAggregateDataset(*runs_, *energy_));
    }

    static void
    TearDownTestSuite()
    {
        delete ds_;
        delete runs_;
        delete energy_;
        delete cfg_;
    }

    static core::CoreConfig* cfg_;
    static power::EnergyModel* energy_;
    static std::vector<core::RunResult>* runs_;
    static model::Dataset* ds_;
};

core::CoreConfig* ModelCorpus::cfg_ = nullptr;
power::EnergyModel* ModelCorpus::energy_ = nullptr;
std::vector<core::RunResult>* ModelCorpus::runs_ = nullptr;
model::Dataset* ModelCorpus::ds_ = nullptr;

} // namespace

TEST_F(ModelCorpus, DatasetShape)
{
    EXPECT_EQ(ds_->samples.size(), 16u);
    EXPECT_GT(ds_->featureNames.size(), 30u);
    for (const auto& s : ds_->samples) {
        EXPECT_EQ(s.features.size(), ds_->featureNames.size());
        EXPECT_GT(s.target, 0.0); // active power positive
    }
}

TEST_F(ModelCorpus, FeatureIndexLookup)
{
    int idx = ds_->featureIndex("issue.alu");
    ASSERT_GE(idx, 0);
    EXPECT_EQ(ds_->featureNames[static_cast<size_t>(idx)], "issue.alu");
    EXPECT_EQ(ds_->featureIndex("no.such.counter"), -1);
}

TEST_F(ModelCorpus, ErrorDecreasesWithInputs)
{
    model::ModelOptions o1, o4, o12;
    o1.maxInputs = 1;
    o4.maxInputs = 4;
    o12.maxInputs = 12;
    double e1 = model::meanAbsErrorFrac(model::trainModel(*ds_, o1), *ds_);
    double e4 = model::meanAbsErrorFrac(model::trainModel(*ds_, o4), *ds_);
    double e12 =
        model::meanAbsErrorFrac(model::trainModel(*ds_, o12), *ds_);
    EXPECT_GE(e1, e4 - 1e-9);
    EXPECT_GE(e4, e12 - 1e-9);
    EXPECT_LT(e12, 0.10);
}

TEST_F(ModelCorpus, NonNegativeConstraintHolds)
{
    model::ModelOptions o;
    o.maxInputs = 10;
    o.nonNegative = true;
    auto m = model::trainModel(*ds_, o);
    for (double w : m.weights())
        EXPECT_GE(w, 0.0);
}

TEST_F(ModelCorpus, SelectionIsDeterministic)
{
    model::ModelOptions o;
    o.maxInputs = 6;
    auto a = model::trainModel(*ds_, o);
    auto b = model::trainModel(*ds_, o);
    EXPECT_EQ(a.inputs(), b.inputs());
    EXPECT_EQ(a.weights(), b.weights());
}

TEST_F(ModelCorpus, NoDuplicateInputsSelected)
{
    model::ModelOptions o;
    o.maxInputs = 12;
    auto m = model::trainModel(*ds_, o);
    std::set<int> unique(m.inputs().begin(), m.inputs().end());
    EXPECT_EQ(unique.size(), m.inputs().size());
}

TEST_F(ModelCorpus, QuantizationRoundsWeights)
{
    model::ModelOptions o;
    o.maxInputs = 6;
    auto m = model::trainModel(*ds_, o);
    m.quantize(0.5);
    for (double w : m.weights())
        EXPECT_NEAR(w, std::round(w / 0.5) * 0.5, 1e-12);
}

TEST_F(ModelCorpus, BottomUpComposition)
{
    // Core-scope datasets for the 39-component decomposition.
    power::EnergyModel coreEnergy(*cfg_, /*includeChip=*/false);
    auto comps = model::buildComponentDatasets(*runs_, coreEnergy);
    EXPECT_EQ(comps.size(), 39u);
    auto bu = model::BottomUpModel::train(comps, 2);
    EXPECT_EQ(bu.models().size(), 39u);
    EXPECT_LE(bu.distinctInputs(), 78);
    EXPECT_GT(bu.distinctInputs(), 3);

    auto coreDs = model::buildAggregateDataset(*runs_, coreEnergy);
    model::ModelOptions o;
    o.maxInputs = 20;
    auto td = model::trainModel(coreDs, o);
    double diff = model::bottomUpVsTopDown(bu, td, coreDs,
                                           coreEnergy.staticPj());
    EXPECT_LT(diff, 0.10); // the two approaches agree within 10%
}

TEST_F(ModelCorpus, ProxyDesignAccuracies)
{
    auto design = model::designProxy(*ds_, 16, energy_->staticPj());
    EXPECT_EQ(design.model.inputs().size(), 16u);
    EXPECT_LT(design.activeErrorFrac, 0.15);
    // Including static contributors shrinks the relative error (the
    // paper's 9.8% -> <5% step).
    EXPECT_LT(design.totalErrorFrac, design.activeErrorFrac);
}

TEST_F(ModelCorpus, WindowDatasetGranularity)
{
    auto coarse = model::buildWindowDataset(*runs_, *energy_, 4096);
    auto fine = model::buildWindowDataset(*runs_, *energy_, 512);
    EXPECT_GT(fine.samples.size(), coarse.samples.size());
    for (const auto& s : fine.samples)
        ASSERT_EQ(s.features.size(), fine.featureNames.size());
}

TEST_F(ModelCorpus, FinerGranularityHarderToPredict)
{
    auto train = model::buildWindowDataset(*runs_, *energy_, 1024);
    auto design = model::designProxy(train, 16, energy_->staticPj());
    auto coarse = model::buildWindowDataset(*runs_, *energy_, 2048);
    auto fine = model::buildWindowDataset(*runs_, *energy_, 16);
    double errCoarse = model::totalPowerError(design.model, coarse,
                                              energy_->staticPj());
    double errFine = model::totalPowerError(design.model, fine,
                                            energy_->staticPj());
    EXPECT_GT(errFine, errCoarse);
}

TEST(ModelUnit, PredictIsLinear)
{
    // A hand-built model: 2*f0 + intercept 1 (via a tiny dataset).
    model::Dataset ds;
    ds.featureNames = {"a", "b"};
    for (int i = 0; i < 20; ++i) {
        model::Sample s;
        s.features = {static_cast<double>(i), 1.0};
        s.target = 2.0 * i + 1.0;
        ds.samples.push_back(s);
    }
    model::ModelOptions o;
    o.maxInputs = 2;
    o.nonNegative = false;
    auto m = model::trainModel(ds, o);
    EXPECT_NEAR(m.predict({10.0, 1.0}), 21.0, 1e-6);
    EXPECT_NEAR(model::meanAbsErrorFrac(m, ds), 0.0, 1e-6);
}
