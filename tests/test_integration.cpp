/**
 * @file
 * End-to-end integration tests: the headline paper claims must hold as
 * inequalities/bands when the whole stack runs together.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/core.h"
#include "mma/gemm.h"
#include "power/energy.h"
#include "workloads/chopstix.h"
#include "workloads/spec_profiles.h"
#include "workloads/synthetic.h"

using namespace p10ee;

namespace {

struct Outcome
{
    double ipc;
    double powerPj;
};

Outcome
measure(const core::CoreConfig& cfg, const std::string& name, int smt)
{
    const auto& prof = workloads::profileByName(name);
    std::vector<std::unique_ptr<workloads::SyntheticWorkload>> srcs;
    std::vector<workloads::InstrSource*> ptrs;
    for (int t = 0; t < smt; ++t) {
        srcs.push_back(
            std::make_unique<workloads::SyntheticWorkload>(prof, t));
        ptrs.push_back(srcs.back().get());
    }
    core::CoreModel m(cfg);
    core::RunOptions o;
    o.warmupInstrs = 25000u * static_cast<unsigned>(smt);
    o.measureInstrs = 60000;
    auto run = m.run(ptrs, o);
    power::EnergyModel energy(cfg);
    return {run.ipc(), energy.evalCounters(run).totalPj};
}

} // namespace

TEST(Headline, CorePerfPerWattBand)
{
    // Table I: 2.6x perf/W at the core level. Allow a generous band —
    // the claim under test is "more than 2x, less than 3.5x".
    double lg = 0.0;
    int n = 0;
    for (const char* name :
         {"perlbench", "gcc", "x264", "deepsjeng", "xz", "leela"}) {
        auto p9 = measure(core::power9(), name, 8);
        auto p10 = measure(core::power10(), name, 8);
        lg += std::log((p10.ipc / p10.powerPj) / (p9.ipc / p9.powerPj));
        ++n;
    }
    double ratio = std::exp(lg / n);
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 3.5);
}

TEST(Headline, Power10UsesLessPowerAtMoreThroughput)
{
    for (const char* name : {"perlbench", "xz"}) {
        auto p9 = measure(core::power9(), name, 8);
        auto p10 = measure(core::power10(), name, 8);
        EXPECT_GT(p10.ipc, p9.ipc) << name;
        EXPECT_LT(p10.powerPj, p9.powerPj) << name;
    }
}

TEST(Headline, Fig5RatiosInBand)
{
    constexpr int kD = 64;
    std::vector<double> a(kD * kD, 1.0), b(kD * kD, 1.0);
    std::vector<double> c1(kD * kD, 0.0), c2(kD * kD, 0.0);
    mma::VectorSink vsu, mmaSink;
    mma::dgemmVsu(a.data(), b.data(), c1.data(), {kD, kD, kD}, &vsu);
    mma::dgemmMma(a.data(), b.data(), c2.data(), {kD, kD, kD}, &mmaSink);

    auto runKernel = [](const core::CoreConfig& cfg,
                        const std::vector<isa::TraceInstr>& loop) {
        workloads::ReplaySource src("k", loop);
        core::CoreModel m(cfg);
        core::RunOptions o;
        o.warmupInstrs = 15000;
        o.measureInstrs = 80000;
        return m.run({&src}, o);
    };
    auto r9 = runKernel(core::power9(), vsu.instrs());
    auto r10v = runKernel(core::power10(), vsu.instrs());
    auto r10m = runKernel(core::power10(), mmaSink.instrs());

    double vsuGain = r10v.flopsPerCycle() / r9.flopsPerCycle();
    double mmaGain = r10m.flopsPerCycle() / r9.flopsPerCycle();
    EXPECT_GT(vsuGain, 1.5); // paper: 1.95x
    EXPECT_LT(vsuGain, 2.4);
    EXPECT_GT(mmaGain, 4.3); // paper: 5.47x
    EXPECT_LT(mmaGain, 6.8);

    power::EnergyModel e9(core::power9()), e10(core::power10());
    double pv = e10.evalCounters(r10v).totalPj /
                e9.evalCounters(r9).totalPj;
    double pm = e10.evalCounters(r10m).totalPj /
                e9.evalCounters(r9).totalPj;
    // Both POWER10 variants reduce core power despite more throughput.
    EXPECT_LT(pv, 1.0);
    EXPECT_LT(pm, 1.0);
    // The MMA version does more work and burns more than the VSU one.
    EXPECT_GT(pm, pv);
}

TEST(Headline, FlushedWorkReduced)
{
    auto run = [](const core::CoreConfig& cfg) {
        const auto& prof = workloads::profileByName("deepsjeng");
        std::vector<std::unique_ptr<workloads::SyntheticWorkload>> srcs;
        std::vector<workloads::InstrSource*> ptrs;
        for (int t = 0; t < 8; ++t) {
            srcs.push_back(
                std::make_unique<workloads::SyntheticWorkload>(prof, t));
            ptrs.push_back(srcs.back().get());
        }
        core::CoreModel m(cfg);
        core::RunOptions o;
        o.warmupInstrs = 160000;
        o.measureInstrs = 60000;
        return m.run(ptrs, o);
    };
    auto r9 = run(core::power9());
    auto r10 = run(core::power10());
    EXPECT_LT(r10.perKilo("flush.wasted"), r9.perKilo("flush.wasted"));
}

TEST(Headline, ChopstixProxiesRunOnTheCore)
{
    // The methodology loop: extract proxies, replay them on the model,
    // and confirm they are L1-contained (tiny instruction footprints).
    auto extraction =
        workloads::extractProxies(workloads::profileByName("xz"),
                                  120000, 5);
    ASSERT_FALSE(extraction.proxies.empty());
    auto src = workloads::makeProxySource(extraction.proxies.front());
    core::CoreModel m(core::power10());
    core::RunOptions o;
    o.warmupInstrs = 10000;
    o.measureInstrs = 20000;
    auto r = m.run({src.get()}, o);
    EXPECT_GT(r.ipc(), 0.3);
    EXPECT_LT(r.perKilo("l1i.miss"), 1.0); // L1-contained code
}

TEST(Headline, AblationGroupsAllContribute)
{
    // Full POWER10 must beat every remove-one configuration on a
    // SPECint-wide geomean at SMT8 (each group pays for itself).
    auto geo = [](const core::CoreConfig& cfg) {
        double lg = 0.0;
        int n = 0;
        for (const char* name : {"perlbench", "x264", "xz", "mcf"}) {
            lg += std::log(measure(cfg, name, 8).ipc);
            ++n;
        }
        return std::exp(lg / n);
    };
    double full = geo(core::power10());
    for (int g = 0; g < static_cast<int>(core::AblationGroup::NumGroups);
         ++g) {
        double without = geo(core::power10Without(
            static_cast<core::AblationGroup>(g)));
        EXPECT_GT(full, without * 0.93)
            << core::ablationGroupName(
                   static_cast<core::AblationGroup>(g));
    }
}
