/**
 * @file
 * Unit tests for the common substrate: RNG, stats, histograms, matrix
 * algebra, table formatting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

using namespace p10ee::common;

TEST(Xoshiro, DeterministicForSeed)
{
    Xoshiro a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiverge)
{
    Xoshiro a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Xoshiro, UniformInUnitInterval)
{
    Xoshiro r(7);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Xoshiro, BelowRespectsBound)
{
    Xoshiro r(11);
    for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(r.below(bound), bound);
    }
}

TEST(Xoshiro, ChanceExtremes)
{
    Xoshiro r(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Xoshiro, ChanceMatchesProbability)
{
    Xoshiro r(5);
    int hits = 0;
    for (int i = 0; i < 50000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(Xoshiro, GaussMoments)
{
    Xoshiro r(9);
    RunningStat s;
    for (int i = 0; i < 50000; ++i)
        s.record(r.gauss());
    EXPECT_NEAR(s.mean(), 0.0, 0.03);
    EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(Xoshiro, ZipfWithinRangeAndSkewed)
{
    Xoshiro r(13);
    uint64_t low = 0;
    for (int i = 0; i < 20000; ++i) {
        uint64_t v = r.zipf(1000);
        ASSERT_LT(v, 1000u);
        low += v < 100;
    }
    // A Zipf-like draw concentrates mass near the origin.
    EXPECT_GT(low, 10000u);
}

TEST(StatRegistry, AddAndGet)
{
    StatRegistry s;
    EXPECT_EQ(s.get("x"), 0u);
    s.add("x");
    s.add("x", 4);
    EXPECT_EQ(s.get("x"), 5u);
}

TEST(StatRegistry, DeltaSubtracts)
{
    StatRegistry s;
    s.add("a", 10);
    auto before = s.snapshot();
    s.add("a", 5);
    s.add("b", 3);
    auto d = StatRegistry::delta(before, s.snapshot());
    EXPECT_EQ(d.at("a"), 5u);
    EXPECT_EQ(d.at("b"), 3u);
}

TEST(StatRegistry, ClearKeepsNames)
{
    StatRegistry s;
    s.add("a", 2);
    s.clear();
    EXPECT_EQ(s.get("a"), 0u);
    EXPECT_EQ(s.names().size(), 1u);
}

TEST(StatRegistry, NamesSorted)
{
    StatRegistry s;
    s.add("zeta");
    s.add("alpha");
    auto names = s.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "zeta");
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.record(0.5);
    h.record(9.5);
    h.record(-5.0); // clamps to bin 0
    h.record(50.0); // clamps to last bin
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(9), 2u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, PercentileMedian)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.record(i + 0.5);
    EXPECT_NEAR(h.percentile(0.5).value(), 50.0, 1.5);
    EXPECT_NEAR(h.percentile(0.9).value(), 90.0, 1.5);
}

TEST(Histogram, PercentileOfEmptyIsRecoverableError)
{
    Histogram h(0.0, 100.0, 10);
    auto p = h.percentile(0.5);
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.error().code, ErrorCode::InvalidArgument);
    // A report generator can fall back instead of crashing.
    EXPECT_DOUBLE_EQ(p.valueOr(0.0), 0.0);
}

TEST(StatRegistry, InternedIdPathAgreesWithStringPath)
{
    StatRegistry s;
    StatId fast = s.id("issue.alu");
    for (int i = 0; i < 100; ++i)
        s.add(fast);
    s.add("issue.alu", 5);
    EXPECT_EQ(s.get(fast), 105u);
    EXPECT_EQ(s.get("issue.alu"), 105u);
    EXPECT_EQ(s.snapshot().at("issue.alu"), 105u);
    // Re-interning yields the same handle.
    EXPECT_EQ(s.id("issue.alu").v, fast.v);
}

TEST(StatRegistry, InternedIdSurvivesClear)
{
    StatRegistry s;
    StatId sid = s.id("x");
    s.add(sid, 7);
    s.clear();
    EXPECT_EQ(s.get(sid), 0u);
    s.add(sid, 3);
    EXPECT_EQ(s.get("x"), 3u);
}

TEST(Histogram, BinCenter)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
    EXPECT_DOUBLE_EQ(h.binCenter(9), 9.5);
}

TEST(RunningStat, Moments)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.record(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Matrix, TransposeTimes)
{
    Matrix x(3, 2);
    // x = [[1,2],[3,4],[5,6]]
    x.at(0, 0) = 1; x.at(0, 1) = 2;
    x.at(1, 0) = 3; x.at(1, 1) = 4;
    x.at(2, 0) = 5; x.at(2, 1) = 6;
    Matrix xtx = x.transposeTimes(x);
    EXPECT_DOUBLE_EQ(xtx.at(0, 0), 35.0);
    EXPECT_DOUBLE_EQ(xtx.at(0, 1), 44.0);
    EXPECT_DOUBLE_EQ(xtx.at(1, 0), 44.0);
    EXPECT_DOUBLE_EQ(xtx.at(1, 1), 56.0);
}

TEST(Matrix, TimesVec)
{
    Matrix x(2, 3);
    x.at(0, 0) = 1; x.at(0, 1) = 2; x.at(0, 2) = 3;
    x.at(1, 0) = 4; x.at(1, 1) = 5; x.at(1, 2) = 6;
    auto y = x.timesVec({1.0, 1.0, 1.0});
    EXPECT_DOUBLE_EQ(y[0], 6.0);
    EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Matrix, SolveSpdIdentity)
{
    Matrix a(3, 3);
    for (int i = 0; i < 3; ++i)
        a.at(i, i) = 1.0;
    auto x = solveSpd(a, {1.0, 2.0, 3.0});
    EXPECT_NEAR(x[0], 1.0, 1e-6);
    EXPECT_NEAR(x[1], 2.0, 1e-6);
    EXPECT_NEAR(x[2], 3.0, 1e-6);
}

TEST(Matrix, LeastSquaresRecoversCoefficients)
{
    // y = 3*x0 - 2*x1 + noiseless data.
    Matrix x(50, 2);
    std::vector<double> y(50);
    Xoshiro r(17);
    for (int i = 0; i < 50; ++i) {
        x.at(i, 0) = r.uniform();
        x.at(i, 1) = r.uniform();
        y[i] = 3.0 * x.at(i, 0) - 2.0 * x.at(i, 1);
    }
    auto w = leastSquares(x, y);
    EXPECT_NEAR(w[0], 3.0, 1e-3);
    EXPECT_NEAR(w[1], -2.0, 1e-3);
}

TEST(Matrix, NnlsWeightsNonNegative)
{
    // The true model has a negative coefficient; NNLS must clamp it.
    Matrix x(40, 2);
    std::vector<double> y(40);
    Xoshiro r(19);
    for (int i = 0; i < 40; ++i) {
        x.at(i, 0) = r.uniform();
        x.at(i, 1) = r.uniform();
        y[i] = 2.0 * x.at(i, 0) - 1.0 * x.at(i, 1);
    }
    auto w = nonNegativeLeastSquares(x, y);
    for (double v : w)
        EXPECT_GE(v, 0.0);
    EXPECT_NEAR(w[1], 0.0, 1e-9);
}

TEST(Matrix, NnlsRecoversPositiveModel)
{
    Matrix x(60, 3);
    std::vector<double> y(60);
    Xoshiro r(23);
    for (int i = 0; i < 60; ++i) {
        for (int j = 0; j < 3; ++j)
            x.at(i, static_cast<size_t>(j)) = r.uniform();
        y[i] = 1.0 * x.at(i, 0) + 0.5 * x.at(i, 1) + 2.0 * x.at(i, 2);
    }
    auto w = nonNegativeLeastSquares(x, y, 500);
    EXPECT_NEAR(w[0], 1.0, 0.02);
    EXPECT_NEAR(w[1], 0.5, 0.02);
    EXPECT_NEAR(w[2], 2.0, 0.02);
}

TEST(TableFormat, Helpers)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmtX(2.6), "2.60x");
    EXPECT_EQ(fmtPct(0.322), "32.2%");
}
