/**
 * @file
 * Tests for the workload substrate: synthetic generators, kernels,
 * Microprobe, AI models, Chopstix extraction and Tracepoints.
 */

#include <gtest/gtest.h>

#include <map>

#include "isa/op.h"
#include "workloads/ai_trace.h"
#include "workloads/chopstix.h"
#include "workloads/kernels.h"
#include "workloads/microprobe.h"
#include "workloads/spec_profiles.h"
#include "workloads/synthetic.h"
#include "workloads/tracepoints.h"

using namespace p10ee;
using namespace p10ee::workloads;

TEST(Synthetic, DeterministicStream)
{
    const auto& prof = profileByName("gcc");
    SyntheticWorkload a(prof), b(prof);
    for (int i = 0; i < 5000; ++i) {
        auto x = a.next();
        auto y = b.next();
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(static_cast<int>(x.op), static_cast<int>(y.op));
        ASSERT_EQ(x.addr, y.addr);
        ASSERT_EQ(x.taken, y.taken);
    }
}

TEST(Synthetic, ThreadsShareCodeButNotData)
{
    const auto& prof = profileByName("xz");
    SyntheticWorkload t0(prof, 0), t1(prof, 1);
    uint64_t pc0 = 0, pc1 = 0;
    uint64_t addr0 = 0, addr1 = 0;
    for (int i = 0; i < 2000; ++i) {
        auto a = t0.next();
        auto b = t1.next();
        pc0 = std::max(pc0, a.pc);
        pc1 = std::max(pc1, b.pc);
        if (isa::isLoad(a.op))
            addr0 = std::max(addr0, a.addr);
        if (isa::isLoad(b.op))
            addr1 = std::max(addr1, b.addr);
    }
    // Same text segment range; disjoint (shifted) data ranges.
    EXPECT_LT(pc0, 0x10000000ull);
    EXPECT_LT(pc1, 0x10000000ull);
    EXPECT_LT(addr0, 0x50000000ull);
    EXPECT_GT(addr1, 0x40000000ull);
}

class ProfileMix : public ::testing::TestWithParam<const char*>
{
};

TEST_P(ProfileMix, DynamicMixTracksProfile)
{
    const auto& prof = profileByName(GetParam());
    SyntheticWorkload w(prof);
    constexpr int kN = 60000;
    std::map<isa::OpClass, int> counts;
    for (int i = 0; i < kN; ++i)
        ++counts[w.next().op];

    double loads = (counts[isa::OpClass::Load] +
                    counts[isa::OpClass::Load32B]) /
                   static_cast<double>(kN);
    double stores = counts[isa::OpClass::Store] /
                    static_cast<double>(kN);
    double branches = (counts[isa::OpClass::Branch] +
                       counts[isa::OpClass::BranchIndirect]) /
                      static_cast<double>(kN);
    EXPECT_NEAR(loads, prof.loadFrac, 0.09) << prof.name;
    EXPECT_NEAR(stores, prof.storeFrac, 0.06) << prof.name;
    EXPECT_NEAR(branches, prof.branchFrac, 0.09) << prof.name;
}

TEST_P(ProfileMix, AddressesStayInTierRanges)
{
    const auto& prof = profileByName(GetParam());
    SyntheticWorkload w(prof);
    RegionSizes regions;
    for (int i = 0; i < 20000; ++i) {
        auto in = w.next();
        if (!isa::isLoad(in.op) && !isa::isStore(in.op))
            continue;
        ASSERT_NE(in.memTier, 0xff);
        uint64_t off = in.addr - 0x10000000ull;
        switch (in.memTier) {
          case 0: ASSERT_LT(off, regions.hot); break;
          case 1:
            ASSERT_GE(off, 0x200000u);
            ASSERT_LT(off, 0x200000u + regions.warm);
            break;
          case 2:
            ASSERT_GE(off, 0x2000000u);
            ASSERT_LT(off, 0x2000000u + regions.cold);
            break;
          default:
            ASSERT_GE(off, 0x8000000u);
            ASSERT_LT(off, 0x8000000u + regions.huge);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Suite, ProfileMix,
                         ::testing::Values("perlbench", "gcc", "mcf",
                                           "omnetpp", "xalancbmk", "x264",
                                           "deepsjeng", "leela",
                                           "exchange2", "xz",
                                           "python_interp",
                                           "ml_analytics"));

TEST(SpecProfiles, TenBenchmarks)
{
    EXPECT_EQ(specint2017().size(), 10u);
    EXPECT_EQ(extraGroups().size(), 3u);
}

TEST(SpecProfiles, LookupByName)
{
    EXPECT_EQ(profileByName("mcf").name, "mcf");
    EXPECT_EQ(profileByName("commercial").name, "commercial");
}

TEST(ReplaySourceTest, LoopsForever)
{
    std::vector<isa::TraceInstr> loop(3);
    loop[0].pc = 0x100;
    loop[1].pc = 0x104;
    loop[2].pc = 0x108;
    ReplaySource src("t", loop);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(src.next().pc, 0x100u + 4u * (i % 3));
}

TEST(Kernels, DaxpyStreamsThroughFootprint)
{
    auto k = makeDaxpy(64 * 1024);
    uint64_t lastX = 0;
    bool sawWrap = false;
    for (int i = 0; i < 50000; ++i) {
        auto in = k->next();
        if (isa::isLoad(in.op) && in.addr >= 0x4000000 &&
            in.addr < 0x5000000) {
            if (in.addr < lastX)
                sawWrap = true;
            lastX = in.addr;
        }
    }
    EXPECT_TRUE(sawWrap); // cursor wraps at the footprint
}

TEST(Kernels, PointerChaseIsSerial)
{
    auto k = makePointerChase();
    auto first = k->next();
    ASSERT_TRUE(isa::isLoad(first.op));
    // The load consumes its own previous result.
    EXPECT_EQ(first.src[0], first.dest);
}

TEST(Kernels, DdLoopDependencyStructure)
{
    auto dd0 = makeDdLoop(0, false);
    auto dd1 = makeDdLoop(1, false);
    // DD0: a single serial chain register; DD1: two alternating chains.
    std::set<uint16_t> dests0, dests1;
    for (int i = 0; i < 40; ++i) {
        auto a = dd0->next();
        auto b = dd1->next();
        if (a.op == isa::OpClass::IntAlu && a.dest >= 8)
            dests0.insert(a.dest);
        if (b.op == isa::OpClass::IntAlu && b.dest >= 8)
            dests1.insert(b.dest);
    }
    EXPECT_LT(dests0.size(), dests1.size());
}

TEST(Kernels, DdLoopToggleAxis)
{
    auto zero = makeDdLoop(0, false);
    auto random = makeDdLoop(0, true);
    EXPECT_LT(zero->next().toggle, 0.1f);
    EXPECT_GT(random->next().toggle, 0.4f);
}

TEST(Microprobe, SuiteCoversTheGrid)
{
    auto suite = fig13Suite();
    EXPECT_EQ(suite.size(), 15u); // 3 SMT x (4 DD cases + 1 SPEC)
    int spec = 0;
    for (const auto& tc : suite)
        spec += tc.specSuite;
    EXPECT_EQ(spec, 3);
}

TEST(Microprobe, CaseSourcesMatchNames)
{
    auto suite = fig13Suite();
    for (const auto& tc : suite) {
        auto src = makeCaseSource(tc, 0);
        ASSERT_NE(src, nullptr);
        if (!tc.specSuite)
            EXPECT_NE(src->name().find("dd"), std::string::npos);
    }
}

TEST(AiModels, ResNetFlopsInRange)
{
    auto m = resnet50(1);
    double gflops = static_cast<double>(totalGemmFlops(m)) / 1e9;
    // ResNet-50 inference is ~4 GFLOPs/image (2*MACs); the im2col GEMM
    // inventory overcounts somewhat (shortcut projections and patch
    // duplication), so accept the 3-9 GFLOP band.
    EXPECT_GT(gflops, 3.0);
    EXPECT_LT(gflops, 9.0);
}

TEST(AiModels, ResNetScalesWithBatch)
{
    EXPECT_EQ(totalGemmFlops(resnet50(100)),
              100u * totalGemmFlops(resnet50(1)));
}

TEST(AiModels, BertLargeFlopsInRange)
{
    auto m = bertLarge(1, 384);
    double gflops = static_cast<double>(totalGemmFlops(m)) / 1e9;
    // BERT-Large at seq 384 is ~200-260 GFLOPs per sequence.
    EXPECT_GT(gflops, 150.0);
    EXPECT_LT(gflops, 320.0);
}

TEST(AiModels, BertHasLargerNonGemmDataShare)
{
    // The paper attributes BERT's lower no-MMA speedup to data loading;
    // its preprocessing profile must be more memory-weighted than
    // ResNet's.
    auto r = resnet50();
    auto b = bertLarge();
    double rMem = r.nonGemmProfile.wCold + r.nonGemmProfile.wHuge;
    double bMem = b.nonGemmProfile.wCold + b.nonGemmProfile.wHuge;
    EXPECT_GT(bMem, rMem);
}

TEST(Chopstix, CoverageAndWeights)
{
    auto result = extractProxies(profileByName("xz"), 200000, 10);
    EXPECT_GT(result.coverage, 0.2);
    EXPECT_LE(result.coverage, 1.0);
    ASSERT_FALSE(result.proxies.empty());
    // Ranked by weight, descending.
    for (size_t i = 1; i < result.proxies.size(); ++i)
        EXPECT_LE(result.proxies[i].weight,
                  result.proxies[i - 1].weight);
}

TEST(Chopstix, ConcentratedBenchmarksCoverMore)
{
    // xz concentrates execution (paper: 99% coverage) while gcc spreads
    // it over many functions (41%).
    auto xz = extractProxies(profileByName("xz"), 150000, 10);
    auto gcc = extractProxies(profileByName("gcc"), 150000, 10);
    EXPECT_GT(xz.coverage, gcc.coverage);
}

TEST(Chopstix, ProxiesAreEndlessLoops)
{
    auto result = extractProxies(profileByName("leela"), 100000, 3);
    for (const auto& proxy : result.proxies) {
        ASSERT_FALSE(proxy.loop.empty());
        const auto& tail = proxy.loop.back();
        EXPECT_TRUE(isa::isBranch(tail.op));
        EXPECT_TRUE(tail.taken);
        EXPECT_EQ(tail.target, proxy.loop.front().pc);
        auto src = makeProxySource(proxy);
        // Replays deterministically across the loop boundary.
        for (size_t i = 0; i < proxy.loop.size() * 2; ++i)
            ASSERT_EQ(src->next().pc,
                      proxy.loop[i % proxy.loop.size()].pc);
    }
}

namespace {

std::vector<Epoch>
syntheticEpochs()
{
    // Three phases with distinct CPI and BBVs; phase weights 50/30/20.
    std::vector<Epoch> epochs;
    common::Xoshiro r(31);
    for (int i = 0; i < 100; ++i) {
        Epoch e;
        int phase = i < 50 ? 0 : i < 80 ? 1 : 2;
        double base[] = {0.8, 2.0, 4.5};
        e.cpi = base[phase] + r.uniform() * 0.1;
        e.metrics = {base[phase] * 2.0, 10.0 - base[phase]};
        e.bbv = {phase == 0 ? 1.0 : 0.0, phase == 1 ? 1.0 : 0.0,
                 phase == 2 ? 1.0 : 0.0};
        epochs.push_back(e);
    }
    return epochs;
}

} // namespace

TEST(Tracepoints, WeightsSumToOne)
{
    auto epochs = syntheticEpochs();
    auto sel = tracepointsSelect(epochs, 10, 2);
    double sum = 0.0;
    for (double w : sel.weights)
        sum += w;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Tracepoints, SelectionMatchesAggregateCpi)
{
    auto epochs = syntheticEpochs();
    auto sel = tracepointsSelect(epochs, 10, 2);
    EXPECT_NEAR(selectionCpi(epochs, sel), aggregateCpi(epochs), 0.1);
}

TEST(Tracepoints, MatchesAuxMetricsToo)
{
    auto epochs = syntheticEpochs();
    auto sel = tracepointsSelect(epochs, 10, 2);
    for (size_t m = 0; m < 2; ++m)
        EXPECT_NEAR(selectionMetric(epochs, sel, m),
                    aggregateMetric(epochs, m), 0.3);
}

TEST(Simpoint, ClusterWeightsSumToOne)
{
    auto epochs = syntheticEpochs();
    auto sel = simpointSelect(epochs, 3);
    double sum = 0.0;
    for (double w : sel.weights)
        sum += w;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_LE(sel.epochs.size(), 3u);
}

TEST(Simpoint, RecoversPhaseStructure)
{
    auto epochs = syntheticEpochs();
    auto sel = simpointSelect(epochs, 3);
    EXPECT_NEAR(selectionCpi(epochs, sel), aggregateCpi(epochs), 0.2);
}

TEST(Tracepoints, BeatsSimpointWhenBbvsAreMisleading)
{
    // Same basic blocks, different CPI per phase (the paper's argument:
    // BBVs miss architectural behaviour like cache misses).
    std::vector<Epoch> epochs;
    common::Xoshiro r(37);
    for (int i = 0; i < 90; ++i) {
        Epoch e;
        int phase = (i / 30) % 3;
        double base[] = {0.7, 2.4, 5.2};
        e.cpi = base[phase] + r.uniform() * 0.05;
        e.metrics = {e.cpi};
        e.bbv = {1.0, 0.5, 0.25}; // identical BBV everywhere
        epochs.push_back(e);
    }
    auto tp = tracepointsSelect(epochs, 12, 1);
    auto sp = simpointSelect(epochs, 3);
    double agg = aggregateCpi(epochs);
    double tpErr = std::abs(selectionCpi(epochs, tp) - agg);
    double spErr = std::abs(selectionCpi(epochs, sp) - agg);
    EXPECT_LT(tpErr, spErr + 1e-9);
}
