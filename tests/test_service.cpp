/**
 * @file
 * Tests of the p10d service layer: wire-protocol parsing (hostile
 * input included), the bounded priority JobQueue, the live daemon over
 * real loopback sockets, and the three-way equivalence contract — the
 * same sweep spec produces byte-identical merged reports via a library
 * call, the offline `p10sweep_cli` binary, and a live `p10d` socket
 * round-trip, cold or warm cache, at any jobs count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "api/service.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "service/daemon.h"
#include "service/protocol.h"
#include "service/queue.h"
#include "sweep/spec.h"

using namespace p10ee;

namespace {

const char* kSpecJson =
    "{\"configs\":[\"power10\"],\"workloads\":[\"perlbench\",\"xz\"],"
    "\"smt\":[1,2],\"seeds\":1,\"instrs\":2000,\"warmup\":500}";

sweep::SweepSpec
testSpec()
{
    auto specOr = sweep::SweepSpec::fromJson(kSpecJson);
    EXPECT_TRUE(specOr.ok());
    return specOr.value();
}

/** The canonical bytes the daemon must reproduce for kSpecJson. */
std::string
libraryReportBytes(const std::string& cacheDir = "")
{
    api::Service service(api::Service::Options{cacheDir});
    api::SweepOptions opts;
    opts.jobs = 2;
    auto result = service.runSweep(testSpec(), opts);
    EXPECT_TRUE(result.ok());
    return api::Service::mergedReport(testSpec(), result.value())
        .toJson();
}

std::string
freshDir(const std::string& stem)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() / stem).string();
    std::filesystem::remove_all(dir);
    return dir;
}

/** Minimal NDJSON client over a blocking loopback socket. */
class Client
{
  public:
    explicit Client(uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd_, 0);
        // A bound read timeout turns a hung daemon into a test
        // failure instead of a CI timeout (generous for sanitizers).
        timeval tv{120, 0};
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)),
                  0);
    }
    ~Client()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    void
    sendLine(const std::string& line)
    {
        std::string framed = line;
        framed += '\n';
        size_t off = 0;
        while (off < framed.size()) {
            ssize_t n = ::send(fd_, framed.data() + off,
                               framed.size() - off, MSG_NOSIGNAL);
            ASSERT_GT(n, 0);
            off += static_cast<size_t>(n);
        }
    }

    /** Write @p raw without the NDJSON terminator (half-request). */
    void
    sendRaw(const std::string& raw)
    {
        size_t off = 0;
        while (off < raw.size()) {
            ssize_t n = ::send(fd_, raw.data() + off, raw.size() - off,
                               MSG_NOSIGNAL);
            ASSERT_GT(n, 0);
            off += static_cast<size_t>(n);
        }
    }

    /** Half-close: signal EOF to the daemon, keep reading replies. */
    void shutdownWrite() { ::shutdown(fd_, SHUT_WR); }

    /** Next response line ("" on EOF/timeout). */
    std::string
    readLine()
    {
        for (;;) {
            size_t nl = buf_.find('\n');
            if (nl != std::string::npos) {
                std::string line = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return line;
            }
            char chunk[65536];
            ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return "";
            buf_.append(chunk, static_cast<size_t>(n));
        }
    }

    /** Skip progress lines until the final event for @p id. */
    std::string
    readFinal(const std::string& id)
    {
        for (;;) {
            std::string line = readLine();
            if (line.empty())
                return "";
            auto doc = obs::parseJson(line);
            if (!doc.ok() || !doc.value().isObject())
                return line;
            const obs::JsonValue* ev = doc.value().find("event");
            const obs::JsonValue* rid = doc.value().find("id");
            if (ev == nullptr || rid == nullptr ||
                rid->string != id)
                continue;
            if (ev->string == "done" || ev->string == "error")
                return line;
        }
    }

  private:
    int fd_ = -1;
    std::string buf_;
};

std::string
field(const std::string& line, const std::string& key)
{
    auto doc = obs::parseJson(line);
    EXPECT_TRUE(doc.ok()) << line;
    const obs::JsonValue* v = doc.value().find(key);
    if (v == nullptr)
        return "";
    if (v->isString())
        return v->string;
    if (v->isNumber())
        return obs::JsonWriter::number(v->number);
    return "";
}

service::Request
mustParse(const std::string& line)
{
    auto reqOr = service::Request::parse(line);
    EXPECT_TRUE(reqOr.ok()) << (reqOr.ok() ? "" : reqOr.error().str());
    return reqOr.ok() ? reqOr.value() : service::Request{};
}

// --- Protocol ---

TEST(Protocol, ParsesEveryRequestType)
{
    auto sweepReq = mustParse(
        std::string("{\"type\":\"sweep\",\"id\":\"s1\",\"priority\":5,"
                    "\"timeout_cycles\":100,\"spec\":") +
        kSpecJson + "}");
    EXPECT_EQ(sweepReq.type, service::RequestType::Sweep);
    EXPECT_EQ(sweepReq.id, "s1");
    EXPECT_EQ(sweepReq.priority, 5);
    EXPECT_EQ(sweepReq.timeoutCycles, 100u);
    EXPECT_EQ(sweepReq.spec.shardCount(), 4u);

    auto runReq = mustParse(
        "{\"type\":\"run\",\"id\":\"r1\",\"config\":\"power9\","
        "\"workload\":\"xz\",\"smt\":2,\"instrs\":1000,\"warmup\":100,"
        "\"seed\":3}");
    EXPECT_EQ(runReq.type, service::RequestType::Run);
    EXPECT_EQ(runReq.run.config, "power9");
    EXPECT_EQ(runReq.run.smt, 2);
    EXPECT_EQ(runReq.run.seed, 3u);

    EXPECT_EQ(mustParse("{\"type\":\"stats\"}").type,
              service::RequestType::Stats);
    EXPECT_EQ(mustParse("{\"type\":\"cancel\",\"id\":\"c\","
                        "\"target\":\"s1\"}")
                  .target,
              "s1");
    EXPECT_EQ(mustParse("{\"type\":\"shutdown\"}").type,
              service::RequestType::Shutdown);
}

TEST(Protocol, RejectsHostileInput)
{
    // Spec-body problems surface as InvalidConfig (SweepSpec's own
    // validation); everything else is InvalidArgument. Both map to a
    // client-fault error event, never a crash.
    auto reject = [](const std::string& line) {
        auto r = service::Request::parse(line);
        ASSERT_FALSE(r.ok()) << line;
        EXPECT_TRUE(r.error().code == common::ErrorCode::InvalidArgument ||
                    r.error().code == common::ErrorCode::InvalidConfig)
            << line << " -> " << r.error().str();
    };
    reject("{nope");                       // malformed
    reject("[1,2,3]");                     // not an object
    reject("{\"type\":\"frobnicate\"}");   // unknown type
    reject("{\"type\":\"sweep\"}");        // missing id
    reject("{\"type\":\"sweep\",\"id\":\"\",\"spec\":{}}"); // empty id
    reject("{\"type\":\"sweep\",\"id\":\"x\"}");    // missing spec
    reject("{\"type\":\"sweep\",\"id\":\"x\",\"spec\":"
           "{\"configz\":[\"power10\"]}}"); // typo'd spec key
    reject(std::string("{\"type\":\"sweep\",\"id\":\"x\",\"spec\":") +
           kSpecJson + ",\"bogus\":1}"); // unknown envelope key
    reject("{\"type\":\"run\",\"id\":\"x\",\"smt\":\"four\"}");
    reject("{\"type\":\"run\",\"id\":\"x\",\"frequency\":9}");
    reject("{\"type\":\"run\",\"id\":\"x\",\"smt\":3}"); // validate()
    reject("{\"type\":\"cancel\",\"id\":\"x\"}");        // no target
    reject("{\"type\":\"sweep\",\"id\":\"x\",\"priority\":101,"
           "\"spec\":{}}");
    reject("{\"type\":\"sweep\",\"id\":\"x\",\"priority\":1.5,"
           "\"spec\":{}}");
    reject("{\"type\":\"run\",\"id\":\"t\""); // truncated
    // Oversized before any parsing work.
    std::string huge = "{\"type\":\"stats\",\"id\":\"";
    huge += std::string(service::kMaxRequestBytes, 'a');
    huge += "\"}";
    reject(huge);
}

TEST(Protocol, ModeCrossesTheWireStrictly)
{
    // The mode key is optional (absent = full, the historical wire
    // shape) and strictly validated: only the canonical names pass.
    auto fast = mustParse(
        "{\"type\":\"run\",\"id\":\"r1\",\"config\":\"power10\","
        "\"workload\":\"xz\",\"instrs\":1000,\"warmup\":100,"
        "\"mode\":\"fast_m1\"}");
    EXPECT_EQ(fast.run.mode, api::SimMode::FastM1);

    auto full = mustParse(
        "{\"type\":\"run\",\"id\":\"r2\",\"config\":\"power10\","
        "\"workload\":\"xz\",\"instrs\":1000,\"mode\":\"full\"}");
    EXPECT_EQ(full.run.mode, api::SimMode::Full);

    auto absent = mustParse(
        "{\"type\":\"run\",\"id\":\"r3\",\"config\":\"power10\","
        "\"workload\":\"xz\",\"instrs\":1000}");
    EXPECT_EQ(absent.run.mode, api::SimMode::Full);

    // Hostile values are rejected with the offending field named, at
    // the wire layer — never silently defaulted.
    for (const char* bad :
         {"\"turbo\"", "\"FULL\"", "\"fast-m1\"", "5", "null"}) {
        auto r = service::Request::parse(
            std::string("{\"type\":\"run\",\"id\":\"x\","
                        "\"config\":\"power10\",\"workload\":\"xz\","
                        "\"instrs\":1000,\"mode\":") +
            bad + "}");
        ASSERT_FALSE(r.ok()) << bad;
        EXPECT_EQ(r.error().field, "mode") << bad;
    }

    // A sweep spec with a hostile mode axis dies the same way.
    auto sweepBad = service::Request::parse(
        "{\"type\":\"sweep\",\"id\":\"s\",\"spec\":{"
        "\"configs\":[\"power10\"],\"workloads\":[\"xz\"],"
        "\"mode\":[\"warp9\"]}}");
    ASSERT_FALSE(sweepBad.ok());
    EXPECT_EQ(sweepBad.error().field, "mode");
}

TEST(Protocol, ErrorLineCarriesTheFieldKey)
{
    // Structured validation errors surface their field name verbatim
    // on the NDJSON error line, so a client can point at the exact
    // offending request key.
    common::Error withField{common::ErrorCode::InvalidArgument,
                            "run request: smt must be 1, 2, 4 or 8",
                            "smt"};
    const std::string line = service::errorLine("r1", withField);
    EXPECT_NE(line.find("\"field\":\"smt\""), std::string::npos)
        << line;

    // Errors not tied to one field keep the historical line shape: no
    // field key at all rather than an empty one.
    common::Error without = common::Error::timeout("too slow");
    const std::string bare = service::errorLine("r2", without);
    EXPECT_EQ(bare.find("\"field\""), std::string::npos) << bare;
}

TEST(Protocol, DoneLineEmbedsReportVerbatim)
{
    const std::string report =
        "{\"schema\":\"p10ee-report/1\",\"nested\":{\"x\":[1,2]}}";
    const std::string line = service::doneLine("req-1", 3, 5, report);
    EXPECT_EQ(line.find("\"report\":") + 9 + report.size() + 1,
              line.size());
    auto extracted = service::extractReport(line);
    ASSERT_TRUE(extracted.ok());
    EXPECT_EQ(extracted.value(), report);

    EXPECT_FALSE(
        service::extractReport(service::acceptedLine("x", 0)).ok());
}

// --- JobQueue ---

service::Job
makeJob(const std::string& id, int priority)
{
    service::Job job;
    job.req.type = service::RequestType::Sweep;
    job.req.id = id;
    job.req.priority = priority;
    job.cancel = std::make_shared<std::atomic<bool>>(false);
    job.send = [](const std::string&) {};
    return job;
}

TEST(JobQueue, PriorityDescendingFifoWithin)
{
    service::JobQueue q(8);
    ASSERT_TRUE(q.push(makeJob("low", -1)).ok());
    ASSERT_TRUE(q.push(makeJob("hi-a", 10)).ok());
    ASSERT_TRUE(q.push(makeJob("mid", 0)).ok());
    ASSERT_TRUE(q.push(makeJob("hi-b", 10)).ok());

    service::Job job;
    std::vector<std::string> order;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(q.pop(&job));
        order.push_back(job.req.id);
    }
    EXPECT_EQ(order,
              (std::vector<std::string>{"hi-a", "hi-b", "mid", "low"}));
}

TEST(JobQueue, OverloadIsStructuredBackpressure)
{
    service::JobQueue q(2);
    ASSERT_TRUE(q.push(makeJob("a", 0)).ok());
    ASSERT_TRUE(q.push(makeJob("b", 0)).ok());
    auto st = q.push(makeJob("c", 0));
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.error().code, common::ErrorCode::Overloaded);
    EXPECT_EQ(q.depth(), 2u);
}

TEST(JobQueue, OverloadMessageCarriesDepthAndRetryHint)
{
    // The overload error is a client-facing retry contract: it must
    // name the queue pressure (depth of capacity) and carry a
    // retry-after hint clients like p10_client.py key their backoff
    // off, for the full and the draining flavours alike.
    service::JobQueue full(2);
    ASSERT_TRUE(full.push(makeJob("a", 0)).ok());
    ASSERT_TRUE(full.push(makeJob("b", 0)).ok());
    auto fullSt = full.push(makeJob("c", 0));
    ASSERT_FALSE(fullSt.ok());
    EXPECT_NE(fullSt.error().message.find("2 of 2"),
              std::string::npos)
        << fullSt.error().message;
    EXPECT_NE(fullSt.error().message.find("retry after"),
              std::string::npos)
        << fullSt.error().message;

    service::JobQueue draining(4);
    ASSERT_TRUE(draining.push(makeJob("a", 0)).ok());
    draining.drain();
    auto drainSt = draining.push(makeJob("b", 0));
    ASSERT_FALSE(drainSt.ok());
    EXPECT_NE(drainSt.error().message.find("1 of 4"),
              std::string::npos)
        << drainSt.error().message;
    EXPECT_NE(drainSt.error().message.find("submit elsewhere"),
              std::string::npos)
        << drainSt.error().message;
}

TEST(JobQueue, RemoveWithdrawsQueuedJob)
{
    service::JobQueue q(4);
    ASSERT_TRUE(q.push(makeJob("a", 0)).ok());
    ASSERT_TRUE(q.push(makeJob("b", 0)).ok());
    auto removed = q.remove("a");
    ASSERT_TRUE(removed.has_value());
    EXPECT_EQ(removed->req.id, "a");
    EXPECT_FALSE(q.remove("nope").has_value());
    EXPECT_EQ(q.depth(), 1u);
}

TEST(JobQueue, DrainServesBacklogThenStops)
{
    service::JobQueue q(4);
    ASSERT_TRUE(q.push(makeJob("a", 0)).ok());
    ASSERT_TRUE(q.push(makeJob("b", 0)).ok());
    q.drain();
    auto st = q.push(makeJob("c", 0));
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.error().code, common::ErrorCode::Overloaded);

    service::Job job;
    EXPECT_TRUE(q.pop(&job));
    EXPECT_TRUE(q.pop(&job));
    EXPECT_FALSE(q.pop(&job)); // drained and empty: executors exit
}

// --- Daemon over live sockets ---

std::string
sweepRequest(const std::string& id)
{
    return std::string("{\"type\":\"sweep\",\"id\":\"") + id +
           "\",\"spec\":" + kSpecJson + "}";
}

TEST(Daemon, SweepOverSocketMatchesLibraryBytes)
{
    service::DaemonOptions opts;
    opts.jobsPerRequest = 2;
    service::Daemon daemon(opts);
    ASSERT_TRUE(daemon.start().ok());

    Client client(daemon.port());
    client.sendLine(sweepRequest("s1"));
    std::string line = client.readLine();
    EXPECT_EQ(field(line, "event"), "accepted");

    uint64_t progress = 0;
    std::string done;
    for (;;) {
        line = client.readLine();
        ASSERT_FALSE(line.empty());
        const std::string ev = field(line, "event");
        if (ev == "progress") {
            ++progress;
            continue;
        }
        ASSERT_EQ(ev, "done") << line;
        done = line;
        break;
    }
    EXPECT_EQ(progress, 4u);
    auto report = service::extractReport(done);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report.value(), libraryReportBytes());

    daemon.waitUntilStopped();
}

TEST(Daemon, ServesEightConcurrentRequests)
{
    service::DaemonOptions opts;
    opts.executors = 8;
    opts.queueCapacity = 16;
    service::Daemon daemon(opts);
    ASSERT_TRUE(daemon.start().ok());

    const std::string expected = libraryReportBytes();
    std::vector<std::string> reports(8);
    std::vector<std::thread> clients;
    for (int i = 0; i < 8; ++i) {
        clients.emplace_back([&, i] {
            Client client(daemon.port());
            const std::string id = "c" + std::to_string(i);
            client.sendLine(sweepRequest(id));
            const std::string done = client.readFinal(id);
            auto report = service::extractReport(done);
            if (report.ok())
                reports[static_cast<size_t>(i)] = report.value();
        });
    }
    for (auto& t : clients)
        t.join();
    for (const std::string& r : reports)
        EXPECT_EQ(r, expected);

    daemon.waitUntilStopped();
}

TEST(Daemon, WarmCacheRepeatSimulatesZeroShards)
{
    const std::string dir = freshDir("p10ee_daemon_cache_test");
    service::DaemonOptions opts;
    opts.cacheDir = dir;
    opts.jobsPerRequest = 2;
    service::Daemon daemon(opts);
    ASSERT_TRUE(daemon.start().ok());

    Client client(daemon.port());
    client.sendLine(sweepRequest("cold"));
    std::string cold = client.readFinal("cold");
    EXPECT_EQ(field(cold, "event"), "done");
    EXPECT_EQ(field(cold, "cached_shards"), "0");
    EXPECT_EQ(field(cold, "simulated_shards"), "4");

    client.sendLine(sweepRequest("warm"));
    std::string warm = client.readFinal("warm");
    EXPECT_EQ(field(warm, "event"), "done");
    EXPECT_EQ(field(warm, "cached_shards"), "4");
    EXPECT_EQ(field(warm, "simulated_shards"), "0");

    auto coldReport = service::extractReport(cold);
    auto warmReport = service::extractReport(warm);
    ASSERT_TRUE(coldReport.ok());
    ASSERT_TRUE(warmReport.ok());
    EXPECT_EQ(coldReport.value(), warmReport.value());

    daemon.waitUntilStopped();
    std::filesystem::remove_all(dir);
}

TEST(Daemon, RunRequestMatchesLibraryRunReport)
{
    service::Daemon daemon(service::DaemonOptions{});
    ASSERT_TRUE(daemon.start().ok());

    Client client(daemon.port());
    client.sendLine(
        "{\"type\":\"run\",\"id\":\"r1\",\"config\":\"power10\","
        "\"workload\":\"xz\",\"smt\":2,\"instrs\":2000,"
        "\"warmup\":500}");
    const std::string done = client.readFinal("r1");
    ASSERT_EQ(field(done, "event"), "done") << done;
    auto report = service::extractReport(done);
    ASSERT_TRUE(report.ok());

    api::RunRequest req;
    req.config = "power10";
    req.workload = "xz";
    req.smt = 2;
    req.instrs = 2000;
    req.warmup = 500;
    api::Service service;
    auto outcome = service.runOne(req);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(report.value(),
              api::Service::runReport(req, outcome.value()).toJson());

    daemon.waitUntilStopped();
}

TEST(Daemon, HostileInputGetsErrorEventsNotACrash)
{
    service::Daemon daemon(service::DaemonOptions{});
    ASSERT_TRUE(daemon.start().ok());

    Client client(daemon.port());
    client.sendLine("this is not json");
    std::string line = client.readLine();
    EXPECT_EQ(field(line, "event"), "error");
    EXPECT_EQ(field(line, "code"), "invalid_argument");

    client.sendLine("{\"type\":\"sweep\",\"id\":\"bad\",\"spec\":"
                    "{\"configs\":[\"warp-core\"]}}");
    line = client.readLine();
    EXPECT_EQ(field(line, "event"), "error");

    // Unknown cancel target: structured not_found.
    client.sendLine(
        "{\"type\":\"cancel\",\"id\":\"c\",\"target\":\"ghost\"}");
    line = client.readLine();
    EXPECT_EQ(field(line, "event"), "error");
    EXPECT_EQ(field(line, "code"), "not_found");

    // The daemon is still fully alive afterwards.
    client.sendLine("{\"type\":\"stats\"}");
    line = client.readLine();
    EXPECT_EQ(field(line, "event"), "stats");

    daemon.waitUntilStopped();
}

TEST(Daemon, OversizedLineIsRejectedAndConnectionDropped)
{
    service::Daemon daemon(service::DaemonOptions{});
    ASSERT_TRUE(daemon.start().ok());

    {
        Client client(daemon.port());
        std::string huge(service::kMaxRequestBytes + 512, 'x');
        client.sendLine(huge);
        std::string line = client.readLine();
        EXPECT_EQ(field(line, "event"), "error");
        EXPECT_EQ(client.readLine(), ""); // daemon hung up
    }
    // A fresh connection still works.
    Client again(daemon.port());
    again.sendLine("{\"type\":\"stats\"}");
    EXPECT_EQ(field(again.readLine(), "event"), "stats");

    daemon.waitUntilStopped();
}

TEST(Daemon, HalfClosedRequestIsRejectedNotExecuted)
{
    // A peer that dies (or gives up) mid-line leaves a syntactically
    // complete JSON object in the buffer with no NDJSON terminator.
    // That fragment is a malformed request by definition — executing
    // it would run work the client never finished submitting.
    service::Daemon daemon(service::DaemonOptions{});
    ASSERT_TRUE(daemon.start().ok());

    {
        Client client(daemon.port());
        client.sendRaw(sweepRequest("half"));
        client.shutdownWrite();
        std::string line = client.readLine();
        EXPECT_EQ(field(line, "event"), "error");
        EXPECT_EQ(field(line, "code"), "invalid_argument");
        EXPECT_NE(field(line, "message").find("mid-request"),
                  std::string::npos)
            << line;
        EXPECT_EQ(client.readLine(), ""); // no accepted/done follows
    }

    // Pin the "not executed" half: the fragment was counted rejected,
    // and nothing ran or is queued behind our back.
    Client probe(daemon.port());
    probe.sendLine("{\"type\":\"stats\"}");
    const std::string stats = probe.readLine();
    EXPECT_EQ(field(stats, "event"), "stats");
    EXPECT_EQ(field(stats, "rejected"), "1");
    EXPECT_EQ(field(stats, "completed"), "0");
    EXPECT_EQ(field(stats, "active_requests"), "0");
    EXPECT_EQ(field(stats, "queue_depth"), "0");

    daemon.waitUntilStopped();
}

TEST(Daemon, CancelQueuedRequestNeverRuns)
{
    service::DaemonOptions opts;
    opts.executors = 1; // "big" occupies the only executor
    service::Daemon daemon(opts);
    ASSERT_TRUE(daemon.start().ok());

    Client client(daemon.port());
    client.sendLine(
        std::string("{\"type\":\"sweep\",\"id\":\"big\",\"spec\":"
                    "{\"configs\":[\"power10\"],\"workloads\":"
                    "[\"perlbench\"],\"smt\":[1],\"seeds\":4,"
                    "\"instrs\":30000,\"warmup\":2000}}"));
    EXPECT_EQ(field(client.readLine(), "event"), "accepted");
    client.sendLine(sweepRequest("victim"));
    EXPECT_EQ(field(client.readLine(), "event"), "accepted");
    client.sendLine(
        "{\"type\":\"cancel\",\"id\":\"c\",\"target\":\"victim\"}");

    // The victim must terminate with a cancelled error (either
    // withdrawn from the queue or cooperatively stopped mid-run if
    // scheduling raced), and the big request must still finish.
    const std::string victimEnd = client.readFinal("victim");
    EXPECT_EQ(field(victimEnd, "event"), "error");
    EXPECT_EQ(field(victimEnd, "code"), "cancelled");
    const std::string bigEnd = client.readFinal("big");
    EXPECT_EQ(field(bigEnd, "event"), "done");

    daemon.waitUntilStopped();
}

TEST(Daemon, ShutdownRequestDrainsInFlightWork)
{
    service::Daemon daemon(service::DaemonOptions{});
    ASSERT_TRUE(daemon.start().ok());

    Client client(daemon.port());
    client.sendLine(sweepRequest("inflight"));
    EXPECT_EQ(field(client.readLine(), "event"), "accepted");
    client.sendLine("{\"type\":\"shutdown\"}");

    // Graceful drain: the accepted request still completes fully.
    const std::string done = client.readFinal("inflight");
    EXPECT_EQ(field(done, "event"), "done");
    auto report = service::extractReport(done);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report.value(), libraryReportBytes());

    EXPECT_TRUE(daemon.draining());
    daemon.waitUntilStopped(); // must terminate, not hang
}

TEST(Daemon, StatsReportLiveMetrics)
{
    service::Daemon daemon(service::DaemonOptions{});
    ASSERT_TRUE(daemon.start().ok());

    Client client(daemon.port());
    client.sendLine(sweepRequest("s1"));
    EXPECT_EQ(field(client.readFinal("s1"), "event"), "done");

    client.sendLine("{\"type\":\"stats\",\"id\":\"st\"}");
    const std::string stats = client.readLine();
    EXPECT_EQ(field(stats, "event"), "stats");
    EXPECT_EQ(field(stats, "id"), "st");
    EXPECT_EQ(field(stats, "completed"), "1");
    EXPECT_EQ(field(stats, "simulated_shards"), "4");
    EXPECT_EQ(field(stats, "cached_shards"), "0");
    EXPECT_EQ(field(stats, "queue_depth"), "0");
    // Extended stats stay backward compatible: new keys only.
    EXPECT_EQ(field(stats, "connections"), "1");

    daemon.waitUntilStopped();
}

// --- The metrics introspection surface ---

TEST(Protocol, MetricsRequestAndTraceKey)
{
    EXPECT_EQ(mustParse("{\"type\":\"metrics\",\"id\":\"m\"}").type,
              service::RequestType::Metrics);

    // A validated trace context rides run/sweep/shard requests.
    const std::string trace = obs::TraceContext::derive(11).str();
    auto sweepReq = mustParse(
        std::string("{\"type\":\"sweep\",\"id\":\"s\",\"trace\":\"") +
        trace + "\",\"spec\":" + kSpecJson + "}");
    EXPECT_EQ(sweepReq.trace, trace);
    auto runReq = mustParse(
        "{\"type\":\"run\",\"id\":\"r\",\"workload\":\"xz\","
        "\"instrs\":1000,\"trace\":\"" + trace + "\"}");
    EXPECT_EQ(runReq.trace, trace);
    // Absent trace = tracing off, not an error.
    EXPECT_TRUE(mustParse("{\"type\":\"stats\"}").trace.empty());

    auto reject = [](const std::string& line) {
        auto r = service::Request::parse(line);
        ASSERT_FALSE(r.ok()) << line;
        EXPECT_EQ(r.error().code, common::ErrorCode::InvalidArgument)
            << line;
    };
    // Only traceable types accept the key.
    reject("{\"type\":\"stats\",\"id\":\"x\",\"trace\":\"" + trace +
           "\"}");
    reject("{\"type\":\"metrics\",\"id\":\"x\",\"trace\":\"" + trace +
           "\"}");
    reject("{\"type\":\"cancel\",\"id\":\"x\",\"target\":\"y\","
           "\"trace\":\"" + trace + "\"}");
    // Malformed ids are protocol violations, not silent no-trace.
    reject("{\"type\":\"run\",\"id\":\"x\",\"workload\":\"xz\","
           "\"instrs\":1000,\"trace\":\"nope\"}");
    reject("{\"type\":\"run\",\"id\":\"x\",\"workload\":\"xz\","
           "\"instrs\":1000,\"trace\":7}");
}

TEST(Daemon, MetricsRequestAnswersInline)
{
    service::Daemon daemon(service::DaemonOptions{});
    ASSERT_TRUE(daemon.start().ok());

    Client client(daemon.port());
    client.sendLine(sweepRequest("m1"));
    EXPECT_EQ(field(client.readFinal("m1"), "event"), "done");

    client.sendLine("{\"type\":\"metrics\",\"id\":\"mx\"}");
    const std::string reply = client.readLine();
    EXPECT_EQ(field(reply, "event"), "metrics");
    EXPECT_EQ(field(reply, "id"), "mx");
    auto doc = obs::parseJson(reply);
    ASSERT_TRUE(doc.ok()) << reply;
    const obs::JsonValue* metrics = doc.value().find("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_TRUE(metrics->isObject());
    // The queue instrumentation observed the sweep passing through.
    const obs::JsonValue* waits =
        metrics->find("service.queue.wait_us.count");
    ASSERT_NE(waits, nullptr);
    EXPECT_GE(waits->number, 1.0);
    const obs::JsonValue* conns = metrics->find("service.connections");
    ASSERT_NE(conns, nullptr);
    EXPECT_GE(conns->number, 1.0);
    // Deterministic dump ordering: asking twice yields sorted keys
    // both times and a second reply parses identically in shape.
    client.sendLine("{\"type\":\"metrics\",\"id\":\"my\"}");
    EXPECT_EQ(field(client.readLine(), "event"), "metrics");

    daemon.waitUntilStopped();
}

// --- Three-way equivalence: library vs CLI binary vs daemon ---

#ifdef P10EE_SWEEP_CLI_BIN
TEST(Equivalence, LibraryCliAndDaemonProduceIdenticalBytes)
{
    const std::string dir = freshDir("p10ee_equiv_test");
    std::filesystem::create_directories(dir);
    const std::string specPath = dir + "/spec.json";
    const std::string outPath = dir + "/cli_report.json";
    const std::string cachePath = dir + "/cache";
    {
        std::ofstream spec(specPath);
        spec << kSpecJson;
    }

    // 1. Offline CLI, jobs 1, cold cache.
    const std::string cmd = std::string(P10EE_SWEEP_CLI_BIN) +
                            " --spec " + specPath + " --out " +
                            outPath + " --jobs 1 --cache-dir " +
                            cachePath + " >/dev/null 2>&1";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;
    std::ifstream in(outPath, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream cliBytes;
    cliBytes << in.rdbuf();

    // 2. Library call, jobs 2, warm cache (CLI populated it): the
    //    cross-process cache must replay without changing the bytes.
    api::Service service(api::Service::Options{cachePath});
    api::SweepOptions opts;
    opts.jobs = 2;
    auto warm = service.runSweep(testSpec(), opts);
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(warm.value().simulatedShards, 0u)
        << "CLI-written cache entries must replay in-process";
    const std::string libBytes =
        api::Service::mergedReport(testSpec(), warm.value()).toJson();

    // 3. Live daemon, jobs 4, same shared cache.
    service::DaemonOptions dopts;
    dopts.cacheDir = cachePath;
    dopts.jobsPerRequest = 4;
    service::Daemon daemon(dopts);
    ASSERT_TRUE(daemon.start().ok());
    Client client(daemon.port());
    client.sendLine(sweepRequest("eq"));
    const std::string done = client.readFinal("eq");
    ASSERT_EQ(field(done, "event"), "done") << done;
    EXPECT_EQ(field(done, "simulated_shards"), "0");
    auto daemonBytes = service::extractReport(done);
    ASSERT_TRUE(daemonBytes.ok());
    daemon.waitUntilStopped();

    EXPECT_EQ(cliBytes.str(), libBytes);
    EXPECT_EQ(daemonBytes.value(), libBytes);

    std::filesystem::remove_all(dir);
}
#endif

} // namespace
