/**
 * @file
 * Observability-layer tests: the TimeSeriesRecorder contract, golden
 * files for the Perfetto/CSV/JSON emitters, the determinism regression
 * (two identically-seeded runs must serialize byte-identically), the
 * pm publishing paths, the recoverable write-error path, the fault
 * campaign's progress hook and structured report — plus the flight
 * recorder (TraceContext / SpanRecorder / mergeFleetTrace golden), the
 * metrics registry, and the structured event-log line format.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/core.h"
#include "fault/campaign.h"
#include "fault/report.h"
#include "obs/eventlog.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/perfetto.h"
#include "obs/report.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "pm/throttle.h"
#include "workloads/spec_profiles.h"
#include "workloads/synthetic.h"

using namespace p10ee;

// ---------------------------------------------------------------------
// TimeSeriesRecorder contract
// ---------------------------------------------------------------------

TEST(Recorder, CounterRegistrationIsIdempotent)
{
    obs::TimeSeriesRecorder rec(64);
    auto a = rec.counter("ipc", "instr/cyc");
    auto b = rec.counter("ipc", "other-unit-ignored");
    EXPECT_TRUE(a.valid());
    EXPECT_EQ(a.v, b.v);
    ASSERT_EQ(rec.counters().size(), 1u);
    EXPECT_EQ(rec.counters()[0].unit, "instr/cyc");
}

TEST(Recorder, DefaultTrackIdIsInvalid)
{
    obs::TrackId id;
    EXPECT_FALSE(id.valid());
}

TEST(Recorder, SamplesAccumulatePerTrack)
{
    obs::TimeSeriesRecorder rec(16);
    auto a = rec.counter("a");
    auto b = rec.counter("b");
    rec.sample(a, 16, 1.0);
    rec.sample(a, 32, 2.0);
    rec.sample(b, 16, -1.0);
    EXPECT_EQ(rec.sampleCount(), 3u);
    ASSERT_EQ(rec.counters()[0].cycle.size(), 2u);
    EXPECT_EQ(rec.counters()[0].cycle[1], 32u);
    EXPECT_DOUBLE_EQ(rec.counters()[0].value[1], 2.0);
    ASSERT_EQ(rec.counters()[1].value.size(), 1u);
}

TEST(Recorder, SlicesNeverNestAndCloseAtEnd)
{
    obs::TimeSeriesRecorder rec(16);
    auto t = rec.slices("episodes");
    rec.beginSlice(t, "first", 10);
    // A second begin closes the first at its own begin cycle.
    rec.beginSlice(t, "second", 20);
    rec.endSlice(t, 30);
    rec.beginSlice(t, "dangling", 40);
    rec.closeOpenSlices(50);

    ASSERT_EQ(rec.sliceTracks().size(), 1u);
    const auto& st = rec.sliceTracks()[0];
    ASSERT_EQ(st.slices.size(), 3u);
    EXPECT_EQ(st.slices[0].label, "first");
    EXPECT_EQ(st.slices[0].end, 20u);
    EXPECT_EQ(st.slices[1].label, "second");
    EXPECT_EQ(st.slices[1].end, 30u);
    EXPECT_EQ(st.slices[2].label, "dangling");
    EXPECT_EQ(st.slices[2].end, 50u);
    EXPECT_FALSE(st.open);
}

TEST(Recorder, EndSliceWithoutOpenIsNoOp)
{
    obs::TimeSeriesRecorder rec;
    auto t = rec.slices("episodes");
    rec.endSlice(t, 5);
    EXPECT_TRUE(rec.sliceTracks()[0].slices.empty());
}

TEST(RecorderDeathTest, SecondThreadPublishingPanics)
{
    // The single-owner-per-shard contract: a recorder belongs to the
    // thread that first mutated it, and a publish from any other
    // thread is a programming error the assert must catch before
    // track data interleaves. threadsafe style re-executes the death
    // statement in a fresh child, which is required when the
    // statement spawns threads.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    obs::TimeSeriesRecorder rec;
    auto track = rec.counter("core.ipc");
    rec.sample(track, 0, 1.0); // binds this thread as the owner
    EXPECT_DEATH(
        {
            std::thread other(
                [&rec, track] { rec.sample(track, 64, 2.0); });
            other.join();
        },
        "single-owner");
}

// ---------------------------------------------------------------------
// Golden files: the emitters' exact byte-level output
// ---------------------------------------------------------------------

namespace {

/** A tiny fixed recorder the golden tests share. */
obs::TimeSeriesRecorder
goldenRecorder()
{
    obs::TimeSeriesRecorder rec(4);
    auto ipc = rec.counter("ipc");
    auto pw = rec.counter("power", "pJ");
    rec.sample(ipc, 0, 1.5);
    rec.sample(ipc, 4, 2.0);
    rec.sample(pw, 4, 12.25);
    auto ep = rec.slices("ep");
    rec.beginSlice(ep, "droop", 2);
    rec.endSlice(ep, 6);
    return rec;
}

} // namespace

TEST(PerfettoGolden, ExactTraceBytes)
{
    // ghz=4.0: ts[us] = cycle/4000.
    const std::string expected =
        "{\"displayTimeUnit\":\"ns\",\"traceEvents\":["
        "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"process_name\","
        "\"args\":{\"name\":\"p10sim\"}},"
        "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"ep\"}},"
        "{\"ph\":\"C\",\"pid\":1,\"tid\":1,\"name\":\"ipc\",\"ts\":0,"
        "\"args\":{\"value\":1.5}},"
        "{\"ph\":\"C\",\"pid\":1,\"tid\":1,\"name\":\"ipc\","
        "\"ts\":0.001,\"args\":{\"value\":2}},"
        "{\"ph\":\"C\",\"pid\":1,\"tid\":1,\"name\":\"power\","
        "\"ts\":0.001,\"args\":{\"pJ\":12.25}},"
        "{\"ph\":\"X\",\"pid\":1,\"tid\":2,\"name\":\"droop\","
        "\"ts\":0.0005,\"dur\":0.001}"
        "]}";
    EXPECT_EQ(obs::toPerfettoJson(goldenRecorder(), 4.0), expected);
}

TEST(PerfettoGolden, ZeroDurationSliceGetsOneCycleWidth)
{
    obs::TimeSeriesRecorder rec;
    auto t = rec.slices("ep");
    rec.beginSlice(t, "blip", 8);
    rec.endSlice(t, 8);
    const std::string json = obs::toPerfettoJson(rec, 4.0);
    // 1 cycle at 4 GHz = 0.00025 us.
    EXPECT_NE(json.find("\"dur\":0.00025"), std::string::npos);
}

TEST(CsvGolden, ExactCsvBytes)
{
    const std::string expected = "cycle,ipc,power\n"
                                 "0,1.5,\n"
                                 "4,2,12.25\n";
    EXPECT_EQ(obs::toCsv(goldenRecorder()), expected);
}

TEST(ReportGolden, ExactJsonBytes)
{
    obs::JsonReport r;
    r.meta().tool = "t";
    r.meta().seed = 7;
    r.meta().git = "abc123";
    r.meta().wallSeconds = 0.5;
    r.meta().simInstrs = 1000;
    r.meta().hostMips = 0.002;
    r.addScalar("b", 2.0);
    r.addScalar("a", 1.5); // scalars serialize sorted by name
    common::Table t("T");
    t.header({"k", "v"});
    t.row({"x", "1"});
    r.addTable(t);
    r.addSeries("s", "u", {0.0, 1.0}, {2.0, 3.0});

    const std::string expected =
        "{\"schema\":\"p10ee-report/1\","
        "\"meta\":{\"tool\":\"t\",\"config\":\"\",\"workload\":\"\","
        "\"seed\":7,\"git\":\"abc123\",\"wall_s\":0.5,"
        "\"sim_instrs\":1000,\"host_mips\":0.002},"
        "\"scalars\":{\"a\":1.5,\"b\":2},"
        "\"tables\":[{\"title\":\"T\",\"columns\":[\"k\",\"v\"],"
        "\"rows\":[[\"x\",\"1\"]]}],"
        "\"series\":[{\"name\":\"s\",\"unit\":\"u\",\"x\":[0,1],"
        "\"y\":[2,3]}]}";
    EXPECT_EQ(r.toJson(), expected);
}

TEST(JsonWriterEdgeCases, EscapingAndNonFinite)
{
    EXPECT_EQ(obs::JsonWriter::escape("a\"b\\c\n\t"),
              "a\\\"b\\\\c\\n\\t");
    EXPECT_EQ(obs::JsonWriter::number(0.0 / 0.0), "null");
    EXPECT_EQ(obs::JsonWriter::number(1.0 / 0.0), "null");
    EXPECT_EQ(obs::JsonWriter::number(0.1), "0.1");
}

// ---------------------------------------------------------------------
// Determinism regression: identically-seeded runs -> identical bytes
// ---------------------------------------------------------------------

namespace {

struct SerializedRun
{
    std::string trace;
    std::string report;
};

SerializedRun
telemetryRun()
{
    const auto cfg = core::power10();
    const auto& prof = workloads::profileByName("perlbench");
    workloads::SyntheticWorkload src(prof);
    core::CoreModel m(cfg);
    obs::TimeSeriesRecorder rec(256);
    core::RunOptions o;
    o.warmupInstrs = 4000;
    o.measureInstrs = 20000;
    o.recorder = &rec;
    auto run = m.run({&src}, o);

    obs::JsonReport rep;
    rep.meta().tool = "determinism-test";
    rep.addScalar("ipc", run.ipc());
    rep.addTimeSeries(rec);
    return {obs::toPerfettoJson(rec, 4.0), rep.toJson()};
}

} // namespace

TEST(Determinism, TwoSeededRunsSerializeByteIdentically)
{
    auto a = telemetryRun();
    auto b = telemetryRun();
    EXPECT_FALSE(a.trace.empty());
    EXPECT_GT(a.report.size(), 100u);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.report, b.report);
}

TEST(Determinism, CoreRunPublishesExpectedTracks)
{
    const auto cfg = core::power10();
    const auto& prof = workloads::profileByName("perlbench");
    workloads::SyntheticWorkload src(prof);
    core::CoreModel m(cfg);
    obs::TimeSeriesRecorder rec(256);
    core::RunOptions o;
    o.warmupInstrs = 2000;
    o.measureInstrs = 20000;
    o.recorder = &rec;
    m.run({&src}, o);

    std::vector<std::string> names;
    for (const auto& t : rec.counters())
        names.push_back(t.name);
    for (const char* want :
         {"core.ipc", "core.occ.rob", "core.occ.ldq", "core.occ.stq",
          "core.occ.ibuf"}) {
        bool found = false;
        for (const auto& n : names)
            found = found || n == want;
        EXPECT_TRUE(found) << "missing counter track " << want;
    }
    EXPECT_GT(rec.sampleCount(), 0u);
}

// ---------------------------------------------------------------------
// pm publishing paths
// ---------------------------------------------------------------------

TEST(PmTelemetry, ThrottleLoopPublishesLevelsAndEpisodes)
{
    // Alternate under/over budget so the limiter engages and releases.
    std::vector<float> power;
    for (int i = 0; i < 40; ++i)
        power.push_back(i % 10 < 5 ? 1.0f : 4.0f);
    pm::ThrottleParams tp;
    tp.budgetPj = 2.0;
    tp.intervalCycles = 64;
    obs::TimeSeriesRecorder rec(64);
    auto tr = pm::runThrottleLoop(power, tp, &rec);
    ASSERT_EQ(tr.level.size(), power.size());

    const obs::TimeSeriesRecorder::CounterTrack* level = nullptr;
    for (const auto& t : rec.counters())
        if (t.name == "pm.throttle.level")
            level = &t;
    ASSERT_NE(level, nullptr);
    EXPECT_EQ(level->cycle.size(), power.size());
    // Cycle stamps advance by the control interval.
    EXPECT_EQ(level->cycle[1] - level->cycle[0],
              static_cast<uint64_t>(tp.intervalCycles));

    const obs::TimeSeriesRecorder::SliceTrack* ep = nullptr;
    for (const auto& t : rec.sliceTracks())
        if (t.name == "pm.throttle")
            ep = &t;
    ASSERT_NE(ep, nullptr);
    EXPECT_FALSE(ep->slices.empty());
    EXPECT_FALSE(ep->open);
}

TEST(PmTelemetry, DroopSimPublishesVoltageAndEpisodes)
{
    // A hard power step excites the underdamped grid enough to trip
    // the DDS at least once.
    std::vector<float> power(6000, 500.0f);
    for (size_t i = 1000; i < power.size(); ++i)
        power[i] = 6000.0f;
    pm::DroopParams dp;
    obs::TimeSeriesRecorder rec(64);
    auto dt = pm::simulateDroop(power, dp, &rec);
    ASSERT_GE(dt.ddsTrips, 1);

    bool haveVolt = false;
    for (const auto& t : rec.counters())
        if (t.name == "pm.dds.voltage") {
            haveVolt = true;
            EXPECT_FALSE(t.cycle.empty());
        }
    EXPECT_TRUE(haveVolt);

    const obs::TimeSeriesRecorder::SliceTrack* ep = nullptr;
    for (const auto& t : rec.sliceTracks())
        if (t.name == "pm.dds")
            ep = &t;
    ASSERT_NE(ep, nullptr);
    EXPECT_GE(static_cast<int>(ep->slices.size()), 1);
    for (const auto& s : ep->slices)
        EXPECT_EQ(s.label, "droop");
}

TEST(PmTelemetry, NullRecorderStillWorks)
{
    std::vector<float> power(200, 3.0f);
    pm::ThrottleParams tp;
    tp.budgetPj = 2.0;
    auto tr = pm::runThrottleLoop(power, tp, nullptr);
    EXPECT_EQ(tr.level.size(), power.size());
    auto dt = pm::simulateDroop(power, pm::DroopParams{}, nullptr);
    EXPECT_EQ(dt.voltage.size(), power.size());
}

// ---------------------------------------------------------------------
// Recoverable write-error path
// ---------------------------------------------------------------------

TEST(WriteErrors, UnwritablePathIsRecoverableError)
{
    auto st = obs::writeTextFile("/nonexistent-dir/x/y.json", "{}");
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.error().code, common::ErrorCode::InvalidArgument);
    EXPECT_NE(st.error().message.find("/nonexistent-dir/x/y.json"),
              std::string::npos);

    obs::JsonReport r;
    EXPECT_FALSE(r.writeTo("/nonexistent-dir/x/y.json").ok());
    EXPECT_FALSE(
        obs::writePerfettoTrace(obs::TimeSeriesRecorder(),
                                "/nonexistent-dir/x/y.json")
            .ok());
}

TEST(WriteErrors, RoundTripThroughTmp)
{
    const std::string path =
        ::testing::TempDir() + "p10ee_obs_roundtrip.json";
    obs::JsonReport r;
    r.meta().tool = "roundtrip";
    ASSERT_TRUE(r.writeTo(path).ok());
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n = std::fread(buf, 1, sizeof(buf), f);
    std::fclose(f);
    EXPECT_EQ(std::string(buf, n), r.toJson());
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Campaign progress hook + structured report
// ---------------------------------------------------------------------

TEST(CampaignTelemetry, ProgressHookSeesEveryInjectionInOrder)
{
    const auto cfg = core::power10();
    const auto& prof = workloads::profileByName("perlbench");
    fault::CampaignSpec spec;
    spec.seed = 99;
    spec.injections = 25;
    spec.warmupInstrs = 500;
    spec.measureInstrs = 1500;
    std::vector<int> ids;
    spec.onProgress = [&](const api::ProgressEvent& ev) {
        ids.push_back(static_cast<int>(ev.index));
    };
    fault::CampaignRunner runner(cfg, prof, spec);
    auto res = runner.run();
    ASSERT_TRUE(res.ok());
    ASSERT_EQ(ids.size(), 25u);
    for (int i = 0; i < 25; ++i)
        EXPECT_EQ(ids[static_cast<size_t>(i)], i);
    EXPECT_EQ(res.value().records.size(), 25u);
}

TEST(CampaignTelemetry, StructuredReportCarriesCampaign)
{
    const auto cfg = core::power10();
    const auto& prof = workloads::profileByName("perlbench");
    fault::CampaignSpec spec;
    spec.seed = 99;
    spec.injections = 25;
    spec.warmupInstrs = 500;
    spec.measureInstrs = 1500;
    fault::CampaignRunner runner(cfg, prof, spec);
    auto res = runner.run();
    ASSERT_TRUE(res.ok());

    obs::JsonReport rep;
    rep.meta().tool = "test";
    fault::addCampaignReport(res.value(), rep);
    const std::string json = rep.toJson();
    EXPECT_NE(json.find("\"campaign.injections\":25"),
              std::string::npos);
    EXPECT_NE(json.find("\"campaign.masked_frac\""), std::string::npos);
    EXPECT_NE(json.find("Outcomes by component"), std::string::npos);
    EXPECT_NE(json.find("\"campaign.outcome\""), std::string::npos);
}

// ---------------------------------------------------------------------
// TraceContext: deterministic derivation, strict wire round-trip
// ---------------------------------------------------------------------

TEST(TraceContext, DeriveIsDeterministicAndValid)
{
    const auto a = obs::TraceContext::derive(42);
    const auto b = obs::TraceContext::derive(42);
    const auto c = obs::TraceContext::derive(43);
    EXPECT_TRUE(a.valid());
    EXPECT_EQ(a.str(), b.str());
    EXPECT_NE(a.str(), c.str());
    EXPECT_FALSE(obs::TraceContext{}.valid());
}

TEST(TraceContext, WireStringRoundTrips)
{
    const auto ctx = obs::TraceContext::derive(7);
    const std::string wire = ctx.str();
    ASSERT_EQ(wire.size(), 49u);
    EXPECT_EQ(wire[32], '-');
    auto back = obs::TraceContext::parse(wire);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->traceHi, ctx.traceHi);
    EXPECT_EQ(back->traceLo, ctx.traceLo);
    EXPECT_EQ(back->span, ctx.span);
}

TEST(TraceContext, ChildKeepsTraceIdChangesSpan)
{
    const auto root = obs::TraceContext::derive(7);
    const auto c0 = root.child(0);
    const auto c1 = root.child(1);
    EXPECT_EQ(c0.traceHi, root.traceHi);
    EXPECT_EQ(c0.traceLo, root.traceLo);
    EXPECT_NE(c0.span, root.span);
    EXPECT_NE(c0.span, c1.span);
    EXPECT_TRUE(c0.valid());
    // Child derivation is deterministic: same slot -> same span.
    EXPECT_EQ(root.child(0).span, c0.span);
}

TEST(TraceContext, ParseRejectsEveryMalformedShape)
{
    const std::string good = obs::TraceContext::derive(9).str();
    // Truncated / overlong.
    EXPECT_FALSE(obs::TraceContext::parse(good.substr(0, 48)));
    EXPECT_FALSE(obs::TraceContext::parse(good + "0"));
    EXPECT_FALSE(obs::TraceContext::parse(""));
    // Separator missing or misplaced.
    std::string noDash = good;
    noDash[32] = '0';
    EXPECT_FALSE(obs::TraceContext::parse(noDash));
    std::string shifted = good;
    std::swap(shifted[31], shifted[32]);
    EXPECT_FALSE(obs::TraceContext::parse(shifted));
    // Non-hex and uppercase are both protocol violations (the wire is
    // lowercase-only, like common/hex.h).
    std::string nonHex = good;
    nonHex[0] = 'g';
    EXPECT_FALSE(obs::TraceContext::parse(nonHex));
    std::string upper = good;
    for (char& ch : upper)
        if (ch >= 'a' && ch <= 'f')
            ch = static_cast<char>(ch - 'a' + 'A');
    EXPECT_FALSE(obs::TraceContext::parse(upper));
    // All-zero means "tracing off" and must not parse as an id.
    EXPECT_FALSE(obs::TraceContext::parse(
        "00000000000000000000000000000000-0000000000000000"));
    EXPECT_TRUE(obs::TraceContext::parse(good));
}

// ---------------------------------------------------------------------
// SpanRecorder: lanes, clamping, the single-owner contract
// ---------------------------------------------------------------------

TEST(SpanRecorder, LaneRegistrationIsIdempotent)
{
    obs::SpanRecorder rec;
    auto a = rec.lane("dial");
    auto b = rec.lane("dial");
    auto c = rec.lane("lease");
    EXPECT_EQ(a.v, b.v);
    EXPECT_NE(a.v, c.v);
    ASSERT_EQ(rec.lanes().size(), 2u);
    EXPECT_EQ(rec.lanes()[0].name, "dial");
}

TEST(SpanRecorder, AddClampsBackwardsSpans)
{
    obs::SpanRecorder rec;
    auto l = rec.lane("x");
    rec.add(l, "fwd", 10, 20);
    rec.add(l, "backwards", 30, 5); // end < begin clamps to zero-length
    ASSERT_EQ(rec.spans().size(), 2u);
    EXPECT_EQ(rec.spans()[1].beginUs, 30u);
    EXPECT_EQ(rec.spans()[1].endUs, 30u);
}

TEST(SpanRecorder, MoveCarriesOwnerAndData)
{
    obs::SpanRecorder rec;
    auto l = rec.lane("x");
    rec.add(l, "a", 1, 2);
    obs::SpanRecorder moved(std::move(rec));
    ASSERT_EQ(moved.spans().size(), 1u);
    moved.add(l, "b", 3, 4); // same thread still owns it
    EXPECT_EQ(moved.spans().size(), 2u);
}

TEST(SpanRecorderDeathTest, SecondThreadPublishingPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    obs::SpanRecorder rec;
    auto l = rec.lane("x"); // binds this thread as the owner
    EXPECT_DEATH(
        {
            std::thread other([&rec, l] { rec.add(l, "y", 0, 1); });
            other.join();
        },
        "second thread");
}

// ---------------------------------------------------------------------
// mergeFleetTrace: golden bytes for the merged cross-process timeline
// ---------------------------------------------------------------------

namespace {

std::string
readTextFile(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    EXPECT_TRUE(f.good()) << path;
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

/** A fixed two-recorder fleet the golden test and shape tests share:
    a coordinator lane plus one worker with a retried shard. */
std::string
mergedFixtureTrace()
{
    obs::SpanRecorder coord;
    auto cl = coord.lane("coordinator");
    coord.add(cl, "expand 2 shards", 0, 5);
    coord.add(cl, "merge 2 shards", 90, 100);

    obs::SpanRecorder worker;
    auto lease = worker.lane("w0 127.0.0.1:1 lease");
    auto exec = worker.lane("w0 127.0.0.1:1 worker.exec");
    worker.add(lease, "s0a0 lease_expired", 10, 40);
    worker.add(lease, "s0a1 ok", 45, 80);
    worker.add(exec, "s0 cache=miss", 60, 78);

    const auto root = obs::TraceContext::derive(1234);
    return obs::mergeFleetTrace(root, {&coord, &worker});
}

} // namespace

// Regenerate with: P10EE_REGEN_GOLDEN=1 ./test_obs
//     --gtest_filter='*FleetTraceGolden*'
TEST(FleetTraceGolden, MergedTimelineExactBytes)
{
    const std::string path =
        std::string(P10EE_GOLDEN_DIR) + "/fleet_trace.json";
    const std::string got = mergedFixtureTrace();
    if (std::getenv("P10EE_REGEN_GOLDEN") != nullptr) {
        std::ofstream f(path, std::ios::binary);
        f << got;
        return;
    }
    EXPECT_EQ(got, readTextFile(path));
}

TEST(FleetTrace, MergeNamesRootAndCountsInflight)
{
    const std::string json = mergedFixtureTrace();
    const auto root = obs::TraceContext::derive(1234);
    // The root context is visible as a "trace:<id>" pseudo-thread.
    EXPECT_NE(json.find("trace:" + root.str()), std::string::npos);
    // The inflight counter exists and starts from an explicit zero.
    EXPECT_NE(json.find("fleet.inflight"), std::string::npos);
    // Every lane came through.
    EXPECT_NE(json.find("w0 127.0.0.1:1 lease"), std::string::npos);
    EXPECT_NE(json.find("s0a1 ok"), std::string::npos);
    // Merging twice is byte-stable.
    EXPECT_EQ(json, mergedFixtureTrace());
}

TEST(FleetTrace, NullAndEmptyPartsAreHandled)
{
    const auto root = obs::TraceContext::derive(5);
    obs::SpanRecorder empty;
    const std::string json =
        obs::mergeFleetTrace(root, {nullptr, &empty});
    EXPECT_NE(json.find("traceEvents"), std::string::npos);
    EXPECT_NE(json.find("fleet.inflight"), std::string::npos);
}

// ---------------------------------------------------------------------
// MetricsRegistry: typed ops, deterministic dumps, concurrency
// ---------------------------------------------------------------------

TEST(Metrics, CounterGaugeHistogramOps)
{
    obs::MetricsRegistry reg;
    auto c = reg.counter("test.count");
    auto g = reg.gauge("test.level");
    auto h = reg.histogram("test.wait");
    reg.add(c);
    reg.add(c, 4);
    reg.set(g, 7);
    reg.adjust(g, -2);
    reg.observe(h, 10);
    reg.observe(h, 30);
    reg.observe(h, 20);

    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 5u); // counter + gauge + histogram x3
    // Sorted, expanded names.
    EXPECT_EQ(snap[0].first, "test.count");
    EXPECT_DOUBLE_EQ(snap[0].second, 5.0);
    EXPECT_EQ(snap[1].first, "test.level");
    EXPECT_DOUBLE_EQ(snap[1].second, 5.0);
    EXPECT_EQ(snap[2].first, "test.wait.count");
    EXPECT_DOUBLE_EQ(snap[2].second, 3.0);
    EXPECT_EQ(snap[3].first, "test.wait.max");
    EXPECT_DOUBLE_EQ(snap[3].second, 30.0);
    EXPECT_EQ(snap[4].first, "test.wait.sum");
    EXPECT_DOUBLE_EQ(snap[4].second, 60.0);
}

TEST(Metrics, RegistrationIsIdempotentAndInvalidIdsAreIgnored)
{
    obs::MetricsRegistry reg;
    auto a = reg.counter("same");
    auto b = reg.counter("same");
    EXPECT_EQ(a.v, b.v);
    obs::MetricId invalid;
    EXPECT_FALSE(invalid.valid());
    reg.add(invalid); // disabled metric: a no-op, not a crash
    reg.set(invalid, 3);
    reg.observe(invalid, 3);
    EXPECT_EQ(reg.snapshot().size(), 1u);
}

TEST(Metrics, DumpsAreDeterministicAndResetZeroes)
{
    obs::MetricsRegistry reg;
    reg.add(reg.counter("z.last"), 2);
    reg.set(reg.gauge("a.first"), 3);
    const std::string once = reg.toJson();
    EXPECT_EQ(once, reg.toJson());
    // Sorted key order regardless of registration order.
    EXPECT_LT(once.find("a.first"), once.find("z.last"));

    const obs::JsonReport rep = reg.toReport("test-tool");
    EXPECT_NE(rep.toJson().find("\"tool\":\"test-tool\""),
              std::string::npos);
    EXPECT_NE(rep.toJson().find("\"a.first\":3"), std::string::npos);

    reg.reset();
    for (const auto& [name, value] : reg.snapshot())
        EXPECT_EQ(value, 0.0) << name;
}

TEST(Metrics, ConcurrentAddsAreLossless)
{
    obs::MetricsRegistry reg;
    auto c = reg.counter("contended");
    auto h = reg.histogram("observed");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&reg, c, h] {
            for (int i = 0; i < kPerThread; ++i) {
                reg.add(c);
                reg.observe(h, 2);
            }
        });
    for (auto& t : threads)
        t.join();
    const auto snap = reg.snapshot();
    // contended, observed.count, observed.max, observed.sum
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_DOUBLE_EQ(snap[0].second, kThreads * kPerThread);
    EXPECT_DOUBLE_EQ(snap[1].second, kThreads * kPerThread);
    EXPECT_DOUBLE_EQ(snap[2].second, 2.0);
    EXPECT_DOUBLE_EQ(snap[3].second, 2.0 * kThreads * kPerThread);
}

TEST(Metrics, GlobalRegistryIsSharedAcrossLayers)
{
    // The process-wide instance the service/fabric layers intern into.
    auto id = obs::metrics().counter("test.obs.global");
    obs::metrics().add(id, 3);
    bool found = false;
    for (const auto& [name, value] : obs::metrics().snapshot())
        if (name == "test.obs.global") {
            found = true;
            EXPECT_GE(value, 3.0);
        }
    EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------
// Structured event-log lines
// ---------------------------------------------------------------------

TEST(EventLog, LineHasDeterministicShape)
{
    EXPECT_EQ(obs::eventLogLine("warn", "fleet", "worker retired"),
              "{\"level\":\"warn\",\"component\":\"fleet\","
              "\"message\":\"worker retired\"}");
    EXPECT_EQ(
        obs::eventLogLine("info", "p10d", "wrote sidecar",
                          {{"path", "m.json"}, {"kind", "metrics"}}),
        "{\"level\":\"info\",\"component\":\"p10d\","
        "\"message\":\"wrote sidecar\",\"path\":\"m.json\","
        "\"kind\":\"metrics\"}");
    // Messages are JSON-escaped, never truncated or mangled.
    EXPECT_EQ(obs::eventLogLine("warn", "c", "a\"b"),
              "{\"level\":\"warn\",\"component\":\"c\","
              "\"message\":\"a\\\"b\"}");
}
