/**
 * @file
 * Chip-model differential suite (ISSUE: multi-core chip model).
 *
 * The load-bearing contracts pinned here:
 *  - a 1-core chip IS the bare core: measured window, telemetry and
 *    checkpoint bytes all identical to CoreModel's, and a sweep spec
 *    with an explicit "cores":[1] merges byte-identically to one
 *    without the axis;
 *  - N-core runs are deterministic: same result for any coreJobs /
 *    --jobs value, cold or warm cache, library or spawned-p10d fleet;
 *  - the contention layer's three invariants (conservation,
 *    monotonicity, starvation-freedom) hold over randomized demand
 *    vectors with logged seeds;
 *  - chip checkpoints restore to bit-identical measurements, and every
 *    hostile input (truncation, byte flips, wrong core count, mixed
 *    config hashes, corrupt payloads) fails structurally, never
 *    crashes (Fuzz/Corrupt/Truncat names run under ASan/UBSan in CI).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "chip/chip.h"
#include "chip/contention.h"
#include "ckpt/checkpoint.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "core/config.h"
#include "core/core.h"
#include "obs/timeseries.h"
#include "sweep/spec.h"
#include "trace/replay.h"
#include "workloads/registry.h"

#ifdef P10EE_P10D_BIN
#include <csignal>

#include "fabric/fleet.h"
#include "fabric/spawn.h"
#endif

using namespace p10ee;

namespace {

core::CoreConfig
configByName(const std::string& name)
{
    return name == "power9" ? core::power9() : core::power10();
}

std::string
goldenDir()
{
    return P10EE_GOLDEN_DIR;
}

workloads::WorkloadProfile
resolveProfile(const std::string& name)
{
    trace::registerTraceFrontend();
    auto profOr = workloads::resolveWorkload(name);
    EXPECT_TRUE(profOr.ok())
        << name << ": " << (profOr.ok() ? "" : profOr.error().str());
    return profOr.value();
}

/** Sources for one chip: thread t of core c draws stream c*smt + t,
    matching the sweep runner's and runOne's discipline. */
struct ChipBundle
{
    std::vector<std::unique_ptr<workloads::CheckpointableSource>> own;
    std::vector<std::vector<workloads::InstrSource*>> threads;
    std::vector<std::vector<workloads::CheckpointableSource*>> walkers;
};

ChipBundle
makeChipSources(const workloads::WorkloadProfile& profile, int cores,
                int smt)
{
    ChipBundle b;
    b.threads.resize(static_cast<size_t>(cores));
    b.walkers.resize(static_cast<size_t>(cores));
    for (int c = 0; c < cores; ++c) {
        for (int t = 0; t < smt; ++t) {
            auto src = workloads::makeSource(profile, c * smt + t);
            EXPECT_TRUE(src.ok())
                << (src.ok() ? "" : src.error().str());
            b.own.push_back(std::move(src.value()));
            b.threads[static_cast<size_t>(c)].push_back(
                b.own.back().get());
            b.walkers[static_cast<size_t>(c)].push_back(
                b.own.back().get());
        }
    }
    return b;
}

chip::ChipConfig
homogeneousChip(const core::CoreConfig& cfg, int cores)
{
    chip::ChipConfig c;
    c.cores.assign(static_cast<size_t>(cores), cfg);
    return c;
}

/** Canonical text rendering of a core window: every number that must
    match bit-for-bit (doubles rendered as hexfloat). */
std::string
runFingerprint(const core::RunResult& run)
{
    std::ostringstream os;
    os << "cycles=" << run.cycles << "\ninstrs=" << run.instrs
       << "\nops=" << run.ops << "\nflops=" << run.flops << "\n";
    for (const auto& [name, value] : run.stats)
        os << name << "=" << value << "\n";
    return os.str();
}

std::string
chipFingerprint(const chip::ChipResult& r)
{
    std::ostringstream os;
    os << std::hexfloat;
    os << "epochs=" << r.epochs << "\nchipCycles=" << r.chipCycles
       << "\ninstrs=" << r.instrs << "\nipc=" << r.ipc
       << "\npowerW=" << r.powerW << "\nfreqGhz=" << r.freqGhz
       << "\nboost=" << r.boost
       << "\nthrottled=" << r.throttledEpochs
       << "\ndroops=" << r.droopTrips
       << "\ntimedOut=" << r.timedOut << "\n";
    for (size_t i = 0; i < r.cores.size(); ++i) {
        const chip::ChipCoreOutcome& co = r.cores[i];
        os << "--- core " << i << " ---\n"
           << "stall=" << co.stallCycles << "\neff=" << co.effCycles
           << "\nipc=" << co.ipc << "\npowerW=" << co.powerW
           << "\nfreq=" << co.freqGhz << "\nfmax=" << co.fMaxGhz
           << "\n"
           << runFingerprint(co.run);
    }
    return os.str();
}

/** Every track of a recorder, rendered for equality comparison. */
std::string
recorderFingerprint(const obs::TimeSeriesRecorder& rec)
{
    std::ostringstream os;
    os << std::hexfloat;
    for (const auto& track : rec.counters()) {
        os << track.name << " [" << track.unit << "]\n";
        for (size_t i = 0; i < track.cycle.size(); ++i)
            os << track.cycle[i] << "=" << track.value[i] << "\n";
    }
    for (const auto& track : rec.sliceTracks()) {
        os << track.name << " (slices)\n";
        for (const auto& s : track.slices)
            os << s.label << ":" << s.begin << "-" << s.end << "\n";
    }
    return os.str();
}

std::string
freshDir(const std::string& stem)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() / stem).string();
    std::filesystem::remove_all(dir);
    return dir;
}

std::string
readFile(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    EXPECT_TRUE(f.good()) << path;
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

constexpr uint64_t kWarmupPerThread = 2000;
constexpr uint64_t kMeasure = 3000;

/** The bare-core reference window: split-phase, exactly what a 1-core
    chip must reproduce. */
chip::ChipResult
chipMeasure(const core::CoreConfig& cfg, ChipBundle& b, int cores,
            int smt, int coreJobs = 1,
            obs::TimeSeriesRecorder* rec = nullptr)
{
    chip::ChipModel model(homogeneousChip(cfg, cores));
    model.beginRun(b.threads);
    model.advance(kWarmupPerThread * static_cast<uint64_t>(smt));
    chip::ChipRunOptions opts;
    opts.measureInstrs = kMeasure;
    opts.coreJobs = coreJobs;
    opts.recorder = rec;
    return model.measure(opts);
}

} // namespace

// ---- 1-core chip == bare core (the differential contract) ----

TEST(ChipDifferential, OneCoreMatchesBareCoreAcrossConfigsAndWorkloads)
{
    const std::string traceWorkload =
        "trace:" + goldenDir() + "/trace_isa30.p10trace";
    for (const char* configName : {"power9", "power10"}) {
        for (int smt : {1, 4}) {
            for (const std::string& workload :
                 {std::string("xz"), std::string("mcf"),
                  traceWorkload}) {
                SCOPED_TRACE(std::string(configName) + " smt" +
                             std::to_string(smt) + " " + workload);
                const core::CoreConfig cfg = configByName(configName);
                const workloads::WorkloadProfile profile =
                    resolveProfile(workload);

                ChipBundle bare = makeChipSources(profile, 1, smt);
                core::CoreModel model(cfg);
                model.beginRun(bare.threads[0]);
                model.advance(kWarmupPerThread *
                              static_cast<uint64_t>(smt));
                core::RunOptions opts;
                opts.measureInstrs = kMeasure;
                const std::string expect =
                    runFingerprint(model.measure(opts));

                ChipBundle b = makeChipSources(profile, 1, smt);
                const chip::ChipResult chip =
                    chipMeasure(cfg, b, 1, smt);
                EXPECT_EQ(runFingerprint(chip.cores[0].run), expect);
                EXPECT_EQ(chip.instrs, chip.cores[0].run.instrs);
                EXPECT_EQ(chip.cores[0].stallCycles, 0u);
                EXPECT_EQ(chip.chipCycles, chip.cores[0].run.cycles);
            }
        }
    }
}

TEST(ChipDifferential, OneCoreTelemetryMatchesBareCore)
{
    const core::CoreConfig cfg = core::power10();
    const workloads::WorkloadProfile profile = resolveProfile("xz");

    obs::TimeSeriesRecorder bareRec(256);
    ChipBundle bare = makeChipSources(profile, 1, 2);
    core::CoreModel model(cfg);
    model.beginRun(bare.threads[0]);
    model.advance(kWarmupPerThread * 2);
    core::RunOptions opts;
    opts.measureInstrs = kMeasure;
    opts.recorder = &bareRec;
    (void)model.measure(opts);

    obs::TimeSeriesRecorder chipRec(256);
    ChipBundle b = makeChipSources(profile, 1, 2);
    (void)chipMeasure(cfg, b, 1, 2, 1, &chipRec);
    EXPECT_EQ(recorderFingerprint(chipRec),
              recorderFingerprint(bareRec));
}

TEST(ChipDifferential, OneCoreCheckpointBytesMatchBareCore)
{
    const core::CoreConfig cfg = core::power10();
    const workloads::WorkloadProfile profile = resolveProfile("xz");

    ChipBundle bare = makeChipSources(profile, 1, 2);
    core::CoreModel model(cfg);
    model.beginRun(bare.threads[0]);
    model.advance(kWarmupPerThread * 2);
    ckpt::CheckpointMeta meta;
    meta.configName = cfg.name;
    meta.workload = profile.name;
    meta.warmupInstrs = kWarmupPerThread * 2;
    meta.seed = profile.seed;
    const std::vector<uint8_t> bareBytes =
        ckpt::Checkpoint::capture(model, bare.walkers[0], meta)
            .toBytes();

    ChipBundle b = makeChipSources(profile, 1, 2);
    chip::ChipModel chip(homogeneousChip(cfg, 1));
    chip.beginRun(b.threads);
    chip.advance(kWarmupPerThread * 2);
    const std::vector<uint8_t> chipBytes =
        chip::captureChipCheckpoint(chip, b.walkers, meta).toBytes();
    EXPECT_EQ(chipBytes, bareBytes);
}

TEST(ChipDifferential, ExplicitOneCoreAxisKeepsSweepReportBytes)
{
    const char* base =
        "{\"configs\":[\"power10\"],\"workloads\":[\"xz\"],"
        "\"smt\":[1,2],\"seeds\":1,\"instrs\":2000,\"warmup\":500}";
    const char* explicitOne =
        "{\"configs\":[\"power10\"],\"workloads\":[\"xz\"],"
        "\"smt\":[1,2],\"cores\":[1],\"seeds\":1,\"instrs\":2000,"
        "\"warmup\":500}";
    auto specA = sweep::SweepSpec::fromJson(base);
    auto specB = sweep::SweepSpec::fromJson(explicitOne);
    ASSERT_TRUE(specA.ok() && specB.ok());

    // 1-core shard keys carry no "/cN" suffix — the historical cache
    // and fleet identities survive the new axis.
    auto shards = specB.value().expand();
    ASSERT_TRUE(shards.ok());
    for (const auto& s : shards.value())
        EXPECT_EQ(s.key().find("/c"), std::string::npos) << s.key();

    api::Service service;
    api::SweepOptions opts;
    opts.jobs = 2;
    auto a = service.runSweep(specA.value(), opts);
    auto b = service.runSweep(specB.value(), opts);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(
        api::Service::mergedReport(specA.value(), a.value()).toJson(),
        api::Service::mergedReport(specB.value(), b.value()).toJson());
}

// ---- N-core determinism ----

TEST(ChipDeterminism, CoreJobsDoesNotChangeResultsOrTelemetry)
{
    const core::CoreConfig cfg = core::power10();
    const workloads::WorkloadProfile profile = resolveProfile("xz");

    obs::TimeSeriesRecorder recSerial(256);
    ChipBundle a = makeChipSources(profile, 4, 2);
    const std::string serial = chipFingerprint(
        chipMeasure(cfg, a, 4, 2, 1, &recSerial));

    for (int jobs : {2, 4, 7}) {
        SCOPED_TRACE("coreJobs=" + std::to_string(jobs));
        obs::TimeSeriesRecorder rec(256);
        ChipBundle b = makeChipSources(profile, 4, 2);
        EXPECT_EQ(chipFingerprint(chipMeasure(cfg, b, 4, 2, jobs, &rec)),
                  serial);
        EXPECT_EQ(recorderFingerprint(rec),
                  recorderFingerprint(recSerial));
    }
}

namespace {

const char* kChipSpecJson =
    "{\"configs\":[\"power10\"],\"workloads\":[\"xz\",\"mcf\"],"
    "\"smt\":[1],\"cores\":[1,4],\"seeds\":1,\"instrs\":2000,"
    "\"warmup\":500}";

sweep::SweepSpec
chipSpec()
{
    auto specOr = sweep::SweepSpec::fromJson(kChipSpecJson);
    EXPECT_TRUE(specOr.ok());
    return specOr.value();
}

std::string
chipSweepReport(const std::string& cacheDir, int jobs,
                uint64_t* simulated = nullptr)
{
    api::Service::Options so;
    so.cacheDir = cacheDir;
    api::Service service(so);
    api::SweepOptions opts;
    opts.jobs = jobs;
    auto result = service.runSweep(chipSpec(), opts);
    EXPECT_TRUE(result.ok())
        << (result.ok() ? "" : result.error().str());
    if (simulated)
        *simulated = result.value().simulatedShards;
    return api::Service::mergedReport(chipSpec(), result.value())
        .toJson();
}

} // namespace

TEST(ChipDeterminism, SweepJobsColdWarmByteIdentical)
{
    const std::string dir = freshDir("p10ee_chip_sweep_cache");
    uint64_t simulated = 0;
    const std::string cold = chipSweepReport(dir, 1, &simulated);
    EXPECT_EQ(simulated, 4u);

    const std::string warm = chipSweepReport(dir, 4, &simulated);
    EXPECT_EQ(simulated, 0u); // every shard replayed from the cache
    EXPECT_EQ(warm, cold);

    // A cold run at a different job count in a fresh cache, too.
    const std::string dir2 = freshDir("p10ee_chip_sweep_cache2");
    EXPECT_EQ(chipSweepReport(dir2, 4), cold);

    std::filesystem::remove_all(dir);
    std::filesystem::remove_all(dir2);
}

TEST(ChipDeterminism, MergedReportCarriesChipTables)
{
    api::Service service;
    auto result = service.runSweep(chipSpec(), {});
    ASSERT_TRUE(result.ok());
    const std::string report =
        api::Service::mergedReport(chipSpec(), result.value())
            .toJson();
    EXPECT_NE(report.find("chip shards"), std::string::npos);
    EXPECT_NE(report.find("chip cores"), std::string::npos);
    EXPECT_NE(report.find("chip.shards"), std::string::npos);
}

#ifdef P10EE_P10D_BIN
TEST(ChipDeterminism, SpawnedFleetMatchesLibraryBytes)
{
    const std::string expected = chipSweepReport("", 2);

    std::vector<fabric::SpawnedWorker> fleet;
    for (int i = 0; i < 2; ++i) {
        auto workerOr = fabric::spawnWorker(P10EE_P10D_BIN);
        ASSERT_TRUE(workerOr.ok())
            << (workerOr.ok() ? "" : workerOr.error().str());
        fleet.push_back(workerOr.value());
    }
    fabric::FleetOptions opts;
    for (const fabric::SpawnedWorker& w : fleet)
        opts.workers.push_back({"127.0.0.1", w.port});
    opts.localJobs = 2;
    fabric::FleetRunner runner(chipSpec(), std::move(opts));
    auto resultOr = runner.run();
    ASSERT_TRUE(resultOr.ok())
        << (resultOr.ok() ? "" : resultOr.error().str());
    EXPECT_EQ(
        api::Service::mergedReport(chipSpec(), resultOr.value())
            .toJson(),
        expected);

    for (fabric::SpawnedWorker& w : fleet) {
        fabric::signalWorker(w, SIGTERM);
        fabric::reapWorker(w);
    }
}
#endif

// ---- Contention-layer properties (randomized, seeds logged) ----

namespace {

constexpr uint64_t kPropMasterSeed = 0x10EEC0DE;
constexpr int kPropIters = 120;

std::vector<uint64_t>
randomDemand(common::Xoshiro& rng, size_t n, uint64_t lo, uint64_t hi)
{
    std::vector<uint64_t> d(n);
    for (auto& v : d)
        v = lo + rng.below(hi - lo + 1);
    return d;
}

} // namespace

TEST(ContentionProps, GrantsConserveRespectDemandAndNeverStarve)
{
    for (int iter = 0; iter < kPropIters; ++iter) {
        const uint64_t seed =
            common::splitSeed(kPropMasterSeed, 1000 + iter);
        SCOPED_TRACE("seed=" + std::to_string(seed));
        common::Xoshiro rng(seed);
        const size_t n = 2 + rng.below(7);
        const auto demand = randomDemand(rng, n, 0, 5000);
        const uint64_t budget = rng.below(8000);
        const auto grant = chip::maxMinFairGrants(demand, budget);
        ASSERT_EQ(grant.size(), n);

        uint64_t total = 0;
        for (size_t i = 0; i < n; ++i) {
            EXPECT_LE(grant[i], demand[i]) << "core " << i;
            total += grant[i];
        }
        EXPECT_LE(total, budget); // conservation

        // Starvation-freedom: a budget of >= one line per core grants
        // every demanding core at least one line.
        if (budget >= n) {
            for (size_t i = 0; i < n; ++i) {
                if (demand[i] > 0) {
                    EXPECT_GE(grant[i], 1u) << "core " << i;
                }
            }
        }
    }
}

TEST(ContentionProps, GrantsMonotoneInCoRunnerDemand)
{
    for (int iter = 0; iter < kPropIters; ++iter) {
        const uint64_t seed =
            common::splitSeed(kPropMasterSeed, 2000 + iter);
        SCOPED_TRACE("seed=" + std::to_string(seed));
        common::Xoshiro rng(seed);
        const size_t n = 2 + rng.below(7);
        auto demand = randomDemand(rng, n, 0, 5000);
        const uint64_t budget = rng.below(8000);
        const auto before = chip::maxMinFairGrants(demand, budget);

        const size_t bumped = rng.below(n);
        demand[bumped] += 1 + rng.below(5000);
        const auto after = chip::maxMinFairGrants(demand, budget);
        for (size_t i = 0; i < n; ++i) {
            if (i == bumped)
                continue;
            EXPECT_LE(after[i], before[i])
                << "raising core " << bumped
                << "'s demand raised core " << i << "'s grant";
        }
    }
}

TEST(ContentionProps, StallMonotoneAndZeroDemandUnstalled)
{
    for (int iter = 0; iter < kPropIters; ++iter) {
        const uint64_t seed =
            common::splitSeed(kPropMasterSeed, 3000 + iter);
        SCOPED_TRACE("seed=" + std::to_string(seed));
        common::Xoshiro rng(seed);
        const size_t n = 2 + rng.below(7);
        chip::ContentionParams params;
        params.memLinesPer16Cycles = n + rng.below(64);
        params.memStallPerLine = 1 + rng.below(16);
        params.l3CapacityLines = 256 + rng.below(16384);
        params.l3MissPenalty = 1 + rng.below(32);
        ASSERT_TRUE(params.validate(n).ok());

        const uint64_t epochCycles = 500 + rng.below(4000);
        auto memDemand = randomDemand(rng, n, 0, 2000);
        auto l3Demand = randomDemand(rng, n, 0, 2000);
        const size_t quiet = rng.below(n);
        memDemand[quiet] = 0;
        l3Demand[quiet] = 0;

        chip::ContentionLayer layerA(params, n);
        const auto a = layerA.step(epochCycles, memDemand, l3Demand);

        // Conservation at the layer level.
        uint64_t granted = 0;
        for (uint64_t g : a.memGrant)
            granted += g;
        EXPECT_LE(granted, a.memBudget);
        // A core demanding nothing is never stalled.
        EXPECT_EQ(a.stall[quiet], 0u);

        // Raising one co-runner's demand never reduces another core's
        // stall (fresh layers: identical starting occupancy).
        auto memBumped = memDemand;
        auto l3Bumped = l3Demand;
        const size_t bumped = rng.below(n);
        memBumped[bumped] += 1 + rng.below(2000);
        l3Bumped[bumped] += 1 + rng.below(2000);
        chip::ContentionLayer layerB(params, n);
        const auto b = layerB.step(epochCycles, memBumped, l3Bumped);
        for (size_t i = 0; i < n; ++i) {
            if (i == bumped)
                continue;
            EXPECT_GE(b.stall[i], a.stall[i])
                << "raising core " << bumped
                << "'s demand lowered core " << i << "'s stall";
        }
    }
}

TEST(ContentionProps, CoRunnerNeverRaisesCoreIpc)
{
    for (const char* workload : {"xz", "mcf"}) {
        SCOPED_TRACE(workload);
        const core::CoreConfig cfg = core::power10();
        const workloads::WorkloadProfile profile =
            resolveProfile(workload);

        ChipBundle solo = makeChipSources(profile, 1, 1);
        const chip::ChipResult alone = chipMeasure(cfg, solo, 1, 1);

        ChipBundle duo = makeChipSources(profile, 2, 1);
        const chip::ChipResult shared = chipMeasure(cfg, duo, 2, 1);
        EXPECT_LE(shared.cores[0].ipc, alone.cores[0].ipc);

        ChipBundle quad = makeChipSources(profile, 4, 1);
        const chip::ChipResult crowded = chipMeasure(cfg, quad, 4, 1);
        EXPECT_LE(crowded.cores[0].ipc, shared.cores[0].ipc);
    }
}

// ---- Chip checkpoints ----

namespace {

/** Warm a chip, capture, finish the measurement; returns the
    checkpoint bytes and the finished window's fingerprint. */
std::pair<std::vector<uint8_t>, std::string>
captureChipAndFinish(const core::CoreConfig& cfg, int cores, int smt)
{
    const workloads::WorkloadProfile profile = resolveProfile("xz");
    ChipBundle b = makeChipSources(profile, cores, smt);
    chip::ChipModel chip(homogeneousChip(cfg, cores));
    chip.beginRun(b.threads);
    chip.advance(kWarmupPerThread * static_cast<uint64_t>(smt));

    ckpt::CheckpointMeta meta;
    meta.configName = cfg.name;
    meta.workload = profile.name;
    meta.warmupInstrs = kWarmupPerThread * static_cast<uint64_t>(smt);
    meta.seed = profile.seed;
    auto ck = chip::captureChipCheckpoint(chip, b.walkers, meta);

    chip::ChipRunOptions opts;
    opts.measureInstrs = kMeasure;
    return {ck.toBytes(), chipFingerprint(chip.measure(opts))};
}

/** Restore bytes into a fresh chip and measure. */
common::Expected<std::string>
restoreChipAndMeasure(const core::CoreConfig& cfg, int cores, int smt,
                      const std::vector<uint8_t>& bytes)
{
    auto ckOr = ckpt::Checkpoint::fromBytes(bytes);
    if (!ckOr.ok())
        return ckOr.error();
    const workloads::WorkloadProfile profile = resolveProfile("xz");
    ChipBundle b = makeChipSources(profile, cores, smt);
    chip::ChipModel chip(homogeneousChip(cfg, cores));
    chip.beginRun(b.threads);
    if (auto st = chip::restoreChipCheckpoint(ckOr.value(), chip,
                                              b.walkers);
        !st.ok())
        return st.error();
    chip::ChipRunOptions opts;
    opts.measureInstrs = kMeasure;
    return chipFingerprint(chip.measure(opts));
}

} // namespace

TEST(ChipCkpt, RestoreThenMeasureBitIdentical)
{
    for (int cores : {2, 4}) {
        SCOPED_TRACE("cores=" + std::to_string(cores));
        auto [bytes, cold] =
            captureChipAndFinish(core::power10(), cores, 2);
        auto warm =
            restoreChipAndMeasure(core::power10(), cores, 2, bytes);
        ASSERT_TRUE(warm.ok()) << warm.error().str();
        EXPECT_EQ(warm.value(), cold);
    }
}

TEST(ChipCkpt, CaptureIsDeterministic)
{
    const workloads::WorkloadProfile profile = resolveProfile("xz");
    ChipBundle b = makeChipSources(profile, 2, 1);
    chip::ChipModel chip(homogeneousChip(core::power10(), 2));
    chip.beginRun(b.threads);
    chip.advance(kWarmupPerThread);
    auto a = chip::captureChipCheckpoint(chip, b.walkers, {});
    auto c = chip::captureChipCheckpoint(chip, b.walkers, {});
    EXPECT_EQ(a.toBytes(), c.toBytes());
}

TEST(ChipCkpt, WrongCoreCountRejectedWithSpecificError)
{
    auto [bytes, print] =
        captureChipAndFinish(core::power10(), 2, 1);
    (void)print;
    auto r = restoreChipAndMeasure(core::power10(), 4, 1, bytes);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, common::ErrorCode::InvalidArgument);
    EXPECT_NE(r.error().message.find("core"), std::string::npos)
        << r.error().message;
}

TEST(ChipCkpt, MixedConfigHashRejectedWithSpecificError)
{
    auto [bytes, print] =
        captureChipAndFinish(core::power10(), 2, 1);
    (void)print;
    auto ckOr = ckpt::Checkpoint::fromBytes(bytes);
    ASSERT_TRUE(ckOr.ok());

    // Restore into a chip whose second core is a different machine.
    const workloads::WorkloadProfile profile = resolveProfile("xz");
    ChipBundle b = makeChipSources(profile, 2, 1);
    chip::ChipConfig mixed;
    mixed.cores = {core::power10(), core::power9()};
    chip::ChipModel chip(mixed);
    chip.beginRun(b.threads);
    auto st = chip::restoreChipCheckpoint(ckOr.value(), chip,
                                          b.walkers);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.error().message.find("config"), std::string::npos)
        << st.error().message;
}

TEST(ChipCkpt, ChipConfigHashSensitiveToEveryKnob)
{
    const chip::ChipConfig base = homogeneousChip(core::power10(), 2);
    const uint64_t h = chip::chipConfigHash(base);
    auto mutate = [&](auto fn, const char* what) {
        chip::ChipConfig c = base;
        fn(c);
        EXPECT_NE(chip::chipConfigHash(c), h) << what;
    };
    mutate([](chip::ChipConfig& c) { c.cores.push_back(c.cores[0]); },
           "core count");
    mutate([](chip::ChipConfig& c) { c.cores[1] = core::power9(); },
           "core config");
    mutate([](chip::ChipConfig& c) { ++c.contention.memLinesPer16Cycles; },
           "contention.memLinesPer16Cycles");
    mutate([](chip::ChipConfig& c) { ++c.contention.l3CapacityLines; },
           "contention.l3CapacityLines");
    mutate([](chip::ChipConfig& c) { c.governor.throttleGainPerWatt += 0.01; },
           "governor.throttleGainPerWatt");
    mutate([](chip::ChipConfig& c) { c.governor.wof.tdpWatts += 1.0; },
           "governor.wof.tdpWatts");
    mutate([](chip::ChipConfig& c) { ++c.epochInstrs; }, "epochInstrs");
    mutate([](chip::ChipConfig& c) { ++c.seed; }, "seed");
}

// ---- Hostile input (runs under ASan/UBSan in CI) ----

TEST(ChipCkptHostile, TruncationFuzzEveryPrefixRejected)
{
    auto [bytes, print] =
        captureChipAndFinish(core::power10(), 2, 1);
    (void)print;
    // Dense over the header, then ~200 samples across the body: each
    // probe checksums the whole multi-megabyte file.
    const size_t stride = std::max<size_t>(bytes.size() / 200, 97);
    for (size_t len = 0; len < bytes.size();
         len += (len < 64 ? 1 : stride)) {
        auto r = ckpt::Checkpoint::fromBytes(bytes.data(), len);
        EXPECT_FALSE(r.ok()) << "prefix of " << len << " bytes";
        if (!r.ok()) {
            EXPECT_EQ(r.error().code,
                      common::ErrorCode::InvalidArgument);
        }
    }
}

TEST(ChipCkptHostile, CorruptSingleByteFlipAlwaysRejected)
{
    auto [bytes, print] =
        captureChipAndFinish(core::power10(), 2, 1);
    (void)print;
    const size_t stride = std::max<size_t>(bytes.size() / 200, 131);
    for (size_t pos = 0; pos < bytes.size();
         pos += (pos < 64 ? 1 : stride)) {
        auto copy = bytes;
        copy[pos] ^= 0xFF;
        auto r = ckpt::Checkpoint::fromBytes(copy);
        EXPECT_FALSE(r.ok()) << "flip at byte " << pos;
    }
}

TEST(ChipCkptHostile, CorruptPayloadFuzzNeverCrashes)
{
    // Rebuild a structurally valid container around a hostile payload
    // (Checkpoint::fromParts recomputes the checksum), so the chip
    // payload parser itself faces the corruption — truncations at
    // every prefix and byte flips must all fail structurally.
    auto [bytes, print] =
        captureChipAndFinish(core::power10(), 2, 1);
    (void)print;
    auto ckOr = ckpt::Checkpoint::fromBytes(bytes);
    ASSERT_TRUE(ckOr.ok());
    const ckpt::Checkpoint& ck = ckOr.value();
    const std::vector<uint8_t>& payload = ck.payload();

    auto restoreHostile = [&](std::vector<uint8_t> corrupt) {
        auto hostile = ckpt::Checkpoint::fromParts(
            ck.meta(), ck.capturedConfigHash(), std::move(corrupt));
        const workloads::WorkloadProfile profile =
            resolveProfile("xz");
        ChipBundle b = makeChipSources(profile, 2, 1);
        chip::ChipModel chip(homogeneousChip(core::power10(), 2));
        chip.beginRun(b.threads);
        return chip::restoreChipCheckpoint(hostile, chip, b.walkers);
    };

    const size_t stride = std::max<size_t>(payload.size() / 64, 257);
    for (size_t len = 0; len < payload.size();
         len += (len < 64 ? 1 : stride)) {
        auto st = restoreHostile(std::vector<uint8_t>(
            payload.begin(),
            payload.begin() + static_cast<ptrdiff_t>(len)));
        EXPECT_FALSE(st.ok()) << "payload prefix of " << len;
    }
    common::Xoshiro rng(0xBADC0DE);
    for (int iter = 0; iter < 16; ++iter) {
        auto copy = payload;
        copy[rng.below(copy.size())] ^= 1 + rng.below(255);
        // A flip may hit redundant padding-free state and still parse;
        // the property under test is "no crash, no OOB read" (ASan).
        (void)restoreHostile(std::move(copy));
    }
}

// ---- Telemetry ownership (the N-publishers fix) ----

TEST(ChipRecorderDeathTest, CrossThreadPublishDies)
{
    obs::TimeSeriesRecorder rec(64);
    auto track = rec.counter("t", "");
    rec.sample(track, 1, 1.0); // binds this thread as the owner
    EXPECT_DEATH(
        {
            std::thread other(
                [&] { rec.sample(track, 2, 2.0); });
            other.join();
        },
        "published from a second thread");
}

TEST(ChipRecorder, FourCoreTelemetryMergesPerCoreTracks)
{
    const workloads::WorkloadProfile profile = resolveProfile("xz");
    obs::TimeSeriesRecorder rec(256);
    ChipBundle b = makeChipSources(profile, 4, 1);
    (void)chipMeasure(core::power10(), b, 4, 1, 4, &rec);

    std::vector<std::string> names;
    for (const auto& track : rec.counters())
        names.push_back(track.name);
    for (const char* expect :
         {"chip.power_w", "chip.freq_ghz", "chip.stall_frac",
          "chip.ipc", "chip.core0.ipc", "chip.core3.ipc",
          "chip.core0.stall_cycles"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expect),
                  names.end())
            << expect;
    }
}

// ---- Golden corpus ----
//
// Committed 2- and 4-core chip checkpoints plus the fingerprints of
// the measured window that follows them. Regenerate with:
//   P10EE_REGEN_GOLDEN=1 ./test_chip --gtest_filter='*Golden*'

namespace {

struct ChipGoldenCase
{
    int cores;
    int smt;
    const char* stem;
};

constexpr ChipGoldenCase kChipGolden[] = {
    {2, 1, "chip2_p10"},
    {4, 2, "chip4_p10"},
};

} // namespace

TEST(ChipGolden, CorpusRoundTripsBitIdentical)
{
    const bool regen = std::getenv("P10EE_REGEN_GOLDEN") != nullptr;
    for (const ChipGoldenCase& g : kChipGolden) {
        SCOPED_TRACE(g.stem);
        const std::string ckptPath =
            goldenDir() + "/" + g.stem + ".ckpt";
        const std::string statsPath =
            goldenDir() + "/" + g.stem + ".stats.txt";
        if (regen) {
            auto [bytes, print] =
                captureChipAndFinish(core::power10(), g.cores, g.smt);
            std::ofstream cf(ckptPath, std::ios::binary);
            cf.write(reinterpret_cast<const char*>(bytes.data()),
                     static_cast<std::streamsize>(bytes.size()));
            std::ofstream sf(statsPath, std::ios::binary);
            sf << print;
            continue;
        }
        const std::string raw = readFile(ckptPath);
        std::vector<uint8_t> bytes(raw.begin(), raw.end());
        ASSERT_FALSE(bytes.empty()) << ckptPath;
        auto warm = restoreChipAndMeasure(core::power10(), g.cores,
                                          g.smt, bytes);
        ASSERT_TRUE(warm.ok()) << warm.error().str();
        EXPECT_EQ(warm.value(), readFile(statsPath));
    }
}

TEST(ChipGolden, CorpusMetaMatchesCases)
{
    if (std::getenv("P10EE_REGEN_GOLDEN") != nullptr)
        GTEST_SKIP() << "regenerating";
    for (const ChipGoldenCase& g : kChipGolden) {
        const std::string raw =
            readFile(goldenDir() + "/" + g.stem + ".ckpt");
        std::vector<uint8_t> bytes(raw.begin(), raw.end());
        auto ckOr = ckpt::Checkpoint::fromBytes(bytes);
        ASSERT_TRUE(ckOr.ok())
            << g.stem << ": " << ckOr.error().str();
        EXPECT_EQ(ckOr.value().meta().workload, "xz");
        EXPECT_EQ(ckOr.value().meta().numThreads,
                  static_cast<uint32_t>(g.cores * g.smt));
        EXPECT_EQ(ckOr.value().capturedConfigHash(),
                  chip::chipConfigHash(
                      homogeneousChip(core::power10(), g.cores)));
    }
}

// ---- runOne chip path ----

TEST(ChipRunOne, ChipCheckpointSaveLoadRoundTrip)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / "p10ee_chip.ckpt")
            .string();
    api::Service service;

    api::RunRequest save;
    save.workload = "xz";
    save.cores = 2;
    save.instrs = kMeasure;
    save.warmup = kWarmupPerThread;
    save.ckptSave = path;
    auto cold = service.runOne(save);
    ASSERT_TRUE(cold.ok()) << cold.error().str();

    api::RunRequest load = save;
    load.ckptSave.clear();
    load.ckptLoad = path;
    auto warm = service.runOne(load);
    ASSERT_TRUE(warm.ok()) << warm.error().str();
    EXPECT_EQ(warm.value().warmupSimulated, 0u);
    EXPECT_EQ(chipFingerprint(warm.value().chip),
              chipFingerprint(cold.value().chip));
    EXPECT_EQ(api::Service::runReport(load, warm.value()).toJson(),
              api::Service::runReport(save, cold.value()).toJson());

    // Loading a 2-core checkpoint into a 4-core request must fail
    // with the structured core-count error.
    api::RunRequest wrong = load;
    wrong.cores = 4;
    auto bad = service.runOne(wrong);
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.error().message.find("core"), std::string::npos);
    std::filesystem::remove(path);
}

TEST(ChipRunOne, ReportRollupEqualsPerCoreSums)
{
    api::Service service;
    api::RunRequest req;
    req.workload = "mcf";
    req.cores = 4;
    req.smt = 2;
    req.instrs = kMeasure;
    req.warmup = kWarmupPerThread;
    auto outcomeOr = service.runOne(req);
    ASSERT_TRUE(outcomeOr.ok()) << outcomeOr.error().str();
    const api::RunOutcome& out = outcomeOr.value();
    ASSERT_EQ(out.chip.cores.size(), 4u);

    uint64_t instrs = 0;
    uint64_t maxEff = 0;
    double powerW = 0.0;
    for (const auto& co : out.chip.cores) {
        instrs += co.run.instrs;
        maxEff = std::max(maxEff, co.effCycles);
        powerW += co.powerW;
        EXPECT_EQ(co.effCycles, co.run.cycles + co.stallCycles);
    }
    EXPECT_EQ(out.chip.instrs, instrs);
    EXPECT_EQ(out.chip.chipCycles, maxEff);
    EXPECT_NEAR(out.chip.powerW, powerW, 1e-9);
    EXPECT_EQ(out.run.cycles, out.chip.chipCycles);
    EXPECT_EQ(out.run.instrs, out.chip.instrs);
    EXPECT_NEAR(out.powerW(), out.chip.powerW, 1e-6 * powerW);
}
