/**
 * @file
 * Checkpoint subsystem tests: bit-identical resume, config binding,
 * hostile-input rejection, and the committed golden corpus.
 *
 * The load-bearing guarantee is the round trip: a model restored from
 * a checkpoint must measure a window bit-identical to the uninterrupted
 * run's — every cycle count, every activity counter. The hostile-input
 * suites (names carrying Fuzz/Corrupt/Truncat run under ASan/UBSan in
 * CI) assert the deserializer's contract: corrupt bytes produce
 * structured errors, never crashes or out-of-range reads.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "core/config.h"
#include "core/core.h"
#include "workloads/spec_profiles.h"
#include "workloads/synthetic.h"

using namespace p10ee;

namespace {

core::CoreConfig
configByName(const std::string& name)
{
    return name == "power9" ? core::power9() : core::power10();
}

/** Thread sources + raw pointer views for one (profile, smt) run. */
struct Bundle
{
    std::vector<std::unique_ptr<workloads::SyntheticWorkload>> own;
    std::vector<workloads::InstrSource*> threads;
    std::vector<workloads::CheckpointableSource*> walkers;
};

Bundle
makeSources(const workloads::WorkloadProfile& profile, int smt)
{
    Bundle b;
    for (int t = 0; t < smt; ++t) {
        b.own.push_back(
            std::make_unique<workloads::SyntheticWorkload>(profile, t));
        b.threads.push_back(b.own.back().get());
        b.walkers.push_back(b.own.back().get());
    }
    return b;
}

workloads::WorkloadProfile
profileByName(const std::string& name)
{
    const workloads::WorkloadProfile* p = workloads::findProfile(name);
    EXPECT_NE(p, nullptr) << name;
    return *p;
}

/** Canonical text rendering of a run: every number that must match
    bit-for-bit across a checkpoint round trip. */
std::string
runFingerprint(const core::RunResult& run)
{
    std::ostringstream os;
    os << "cycles=" << run.cycles << "\ninstrs=" << run.instrs
       << "\nops=" << run.ops << "\nflops=" << run.flops << "\n";
    for (const auto& [name, value] : run.stats)
        os << name << "=" << value << "\n";
    return os.str();
}

constexpr uint64_t kWarmupPerThread = 2000;
constexpr uint64_t kMeasure = 3000;

/** Warm up, checkpoint, and finish the run; returns (bytes, print). */
std::pair<std::vector<uint8_t>, std::string>
captureAndFinish(const std::string& configName, int smt)
{
    auto cfg = configByName(configName);
    auto profile = profileByName("xz");
    Bundle b = makeSources(profile, smt);
    core::CoreModel model(cfg);
    model.beginRun(b.threads);
    model.advance(kWarmupPerThread * static_cast<uint64_t>(smt));

    ckpt::CheckpointMeta meta;
    meta.configName = configName;
    meta.workload = profile.name;
    meta.warmupInstrs = kWarmupPerThread * static_cast<uint64_t>(smt);
    meta.seed = profile.seed;
    auto ck = ckpt::Checkpoint::capture(model, b.walkers, meta);

    core::RunOptions opts;
    opts.measureInstrs = kMeasure;
    auto run = model.measure(opts);
    return {ck.toBytes(), runFingerprint(run)};
}

/** Restore from bytes into a fresh machine and measure. */
std::string
restoreAndMeasure(const std::string& configName, int smt,
                  const std::vector<uint8_t>& bytes)
{
    auto ckOr = ckpt::Checkpoint::fromBytes(bytes);
    EXPECT_TRUE(ckOr.ok()) << ckOr.error().str();
    auto cfg = configByName(configName);
    Bundle b = makeSources(profileByName("xz"), smt);
    core::CoreModel model(cfg);
    model.beginRun(b.threads);
    auto st = ckOr.value().restore(model, b.walkers);
    EXPECT_TRUE(st.ok()) << st.error().str();
    core::RunOptions opts;
    opts.measureInstrs = kMeasure;
    return runFingerprint(model.measure(opts));
}

void
expectRoundTrip(const std::string& configName, int smt)
{
    auto [bytes, cold] = captureAndFinish(configName, smt);
    EXPECT_EQ(restoreAndMeasure(configName, smt, bytes), cold);
}

} // namespace

// ---- Config hashing ----

TEST(ConfigHash, StableAcrossCalls)
{
    EXPECT_EQ(ckpt::configHash(core::power10()),
              ckpt::configHash(core::power10()));
    EXPECT_EQ(ckpt::configHash(core::power9()),
              ckpt::configHash(core::power9()));
}

TEST(ConfigHash, DiffersBetweenMachines)
{
    EXPECT_NE(ckpt::configHash(core::power9()),
              ckpt::configHash(core::power10()));
    for (int g = 0;
         g < static_cast<int>(core::AblationGroup::NumGroups); ++g)
        EXPECT_NE(ckpt::configHash(core::power10Without(
                      static_cast<core::AblationGroup>(g))),
                  ckpt::configHash(core::power10()))
            << core::ablationGroupName(
                   static_cast<core::AblationGroup>(g));
}

TEST(ConfigHash, SensitiveToIndividualFields)
{
    const uint64_t base = ckpt::configHash(core::power10());
    auto mutate = [&](auto fn, const char* what) {
        auto cfg = core::power10();
        fn(cfg);
        EXPECT_NE(ckpt::configHash(cfg), base) << what;
    };
    mutate([](core::CoreConfig& c) { c.name += "x"; }, "name");
    mutate([](core::CoreConfig& c) { ++c.fetchWidth; }, "fetchWidth");
    mutate([](core::CoreConfig& c) { ++c.robSize; }, "robSize");
    mutate([](core::CoreConfig& c) { c.l2.sizeBytes *= 2; },
           "l2.sizeBytes");
    mutate([](core::CoreConfig& c) { ++c.bp.gshareBits; },
           "bp.gshareBits");
    mutate([](core::CoreConfig& c) { c.bp.indirectPathHist ^= true; },
           "bp.indirectPathHist");
    mutate([](core::CoreConfig& c) { c.clockGateQuality += 0.01; },
           "clockGateQuality");
    mutate([](core::CoreConfig& c) { c.storeMerge ^= true; },
           "storeMerge");
    mutate([](core::CoreConfig& c) { ++c.memLatency; }, "memLatency");
    mutate([](core::CoreConfig& c) { ++c.mmaUnits; }, "mmaUnits");
}

// ---- Round trips ----

TEST(CkptRoundTrip, Power9Smt1BitIdentical) { expectRoundTrip("power9", 1); }
TEST(CkptRoundTrip, Power9Smt4BitIdentical) { expectRoundTrip("power9", 4); }
TEST(CkptRoundTrip, Power10Smt1BitIdentical) { expectRoundTrip("power10", 1); }
TEST(CkptRoundTrip, Power10Smt4BitIdentical) { expectRoundTrip("power10", 4); }

TEST(CkptRoundTrip, CaptureIsDeterministic)
{
    auto profile = profileByName("mcf");
    Bundle b = makeSources(profile, 2);
    core::CoreModel model(core::power10());
    model.beginRun(b.threads);
    model.advance(4000);
    ckpt::CheckpointMeta meta;
    meta.workload = profile.name;
    auto a = ckpt::Checkpoint::capture(model, b.walkers, meta);
    auto c = ckpt::Checkpoint::capture(model, b.walkers, meta);
    EXPECT_EQ(a.toBytes(), c.toBytes());
}

TEST(CkptRoundTrip, ZeroWarmupCaptureMatchesFreshRun)
{
    auto profile = profileByName("gcc");
    core::RunOptions opts;
    opts.measureInstrs = kMeasure;

    // Uninterrupted zero-warmup run.
    Bundle cold = makeSources(profile, 1);
    core::CoreModel coldModel(core::power10());
    coldModel.beginRun(cold.threads);
    const std::string expect = runFingerprint(coldModel.measure(opts));

    // Capture immediately after beginRun, restore, measure.
    Bundle warm = makeSources(profile, 1);
    core::CoreModel warmModel(core::power10());
    warmModel.beginRun(warm.threads);
    auto ck = ckpt::Checkpoint::capture(warmModel, warm.walkers, {});

    Bundle fresh = makeSources(profile, 1);
    core::CoreModel freshModel(core::power10());
    freshModel.beginRun(fresh.threads);
    auto st = ck.restore(freshModel, fresh.walkers);
    ASSERT_TRUE(st.ok()) << st.error().str();
    EXPECT_EQ(runFingerprint(freshModel.measure(opts)), expect);
}

TEST(CkptRoundTrip, FileSaveLoadPreservesEverything)
{
    auto profile = profileByName("xz");
    Bundle b = makeSources(profile, 1);
    core::CoreModel model(core::power10());
    model.beginRun(b.threads);
    model.advance(2000);
    ckpt::CheckpointMeta meta;
    meta.configName = "power10";
    meta.workload = profile.name;
    meta.warmupInstrs = 2000;
    meta.seed = profile.seed;
    auto ck = ckpt::Checkpoint::capture(model, b.walkers, meta);

    const std::string path =
        (std::filesystem::temp_directory_path() / "p10ee_test.ckpt")
            .string();
    auto st = ck.save(path);
    ASSERT_TRUE(st.ok()) << st.error().str();
    auto loaded = ckpt::Checkpoint::load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().str();
    EXPECT_EQ(loaded.value().toBytes(), ck.toBytes());
    EXPECT_EQ(loaded.value().meta().configName, "power10");
    EXPECT_EQ(loaded.value().meta().workload, "xz");
    EXPECT_EQ(loaded.value().meta().numThreads, 1u);
    EXPECT_EQ(loaded.value().meta().warmupInstrs, 2000u);
    EXPECT_EQ(loaded.value().capturedConfigHash(),
              ckpt::configHash(core::power10()));
    std::filesystem::remove(path);
}

TEST(CkptRoundTrip, LoadMissingFileIsNotFound)
{
    auto r = ckpt::Checkpoint::load("/nonexistent/p10ee.ckpt");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, common::ErrorCode::NotFound);
}

// ---- Restore validation ----

TEST(CkptRestore, ConfigMismatchRejected)
{
    auto [bytes, print] = captureAndFinish("power10", 1);
    (void)print;
    auto ckOr = ckpt::Checkpoint::fromBytes(bytes);
    ASSERT_TRUE(ckOr.ok());
    Bundle b = makeSources(profileByName("xz"), 1);
    core::CoreModel model(core::power9());
    model.beginRun(b.threads);
    auto st = ckOr.value().restore(model, b.walkers);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.error().code, common::ErrorCode::InvalidConfig);
}

TEST(CkptRestore, ThreadCountMismatchRejected)
{
    auto [bytes, print] = captureAndFinish("power10", 2);
    (void)print;
    auto ckOr = ckpt::Checkpoint::fromBytes(bytes);
    ASSERT_TRUE(ckOr.ok());
    Bundle b = makeSources(profileByName("xz"), 1);
    core::CoreModel model(core::power10());
    model.beginRun(b.threads);
    auto st = ckOr.value().restore(model, b.walkers);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.error().code, common::ErrorCode::InvalidArgument);
}

// ---- Hostile input (runs under ASan/UBSan in CI) ----

TEST(CkptHostile, TruncationFuzzEveryPrefixRejected)
{
    auto [bytes, print] = captureAndFinish("power10", 1);
    (void)print;
    // Every proper prefix must be rejected with a structured error.
    for (size_t len = 0; len < bytes.size();
         len += (len < 64 ? 1 : 97)) {
        auto r = ckpt::Checkpoint::fromBytes(bytes.data(), len);
        EXPECT_FALSE(r.ok()) << "prefix of " << len << " bytes";
        if (!r.ok()) {
            EXPECT_EQ(r.error().code,
                      common::ErrorCode::InvalidArgument);
        }
    }
}

TEST(CkptHostile, CorruptSingleByteFlipAlwaysRejected)
{
    auto [bytes, print] = captureAndFinish("power9", 1);
    (void)print;
    // The trailing checksum covers every preceding byte, so any
    // single-byte corruption anywhere in the file must be caught.
    for (size_t pos = 0; pos < bytes.size();
         pos += (pos < 64 ? 1 : 131)) {
        auto copy = bytes;
        copy[pos] ^= 0xFF;
        auto r = ckpt::Checkpoint::fromBytes(copy);
        EXPECT_FALSE(r.ok()) << "flip at byte " << pos;
    }
}

TEST(CkptHostile, CorruptMagicRejected)
{
    auto [bytes, print] = captureAndFinish("power10", 1);
    (void)print;
    bytes[0] = 'X';
    auto r = ckpt::Checkpoint::fromBytes(bytes);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("magic"), std::string::npos);
}

TEST(CkptHostile, WrongFormatVersionRejected)
{
    auto [bytes, print] = captureAndFinish("power10", 1);
    (void)print;
    bytes[8] = 99; // u32 format version little-endian low byte
    auto r = ckpt::Checkpoint::fromBytes(bytes);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("format version"),
              std::string::npos);
}

TEST(CkptHostile, StaleSchemaVersionRejected)
{
    auto [bytes, print] = captureAndFinish("power10", 1);
    (void)print;
    bytes[12] = 99; // u32 state-schema version little-endian low byte
    auto r = ckpt::Checkpoint::fromBytes(bytes);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("schema version"),
              std::string::npos);
}

TEST(CkptHostile, TrailingGarbageRejected)
{
    auto [bytes, print] = captureAndFinish("power10", 1);
    (void)print;
    bytes.push_back(0xAB);
    EXPECT_FALSE(ckpt::Checkpoint::fromBytes(bytes).ok());
}

TEST(CkptHostile, RandomGarbageFuzzNeverCrashes)
{
    common::Xoshiro rng(0xC0FFEE);
    for (int iter = 0; iter < 200; ++iter) {
        std::vector<uint8_t> junk(rng.below(4096));
        for (auto& byte : junk)
            byte = static_cast<uint8_t>(rng.next());
        // Keep the magic sometimes so parsing reaches deeper layers.
        if (iter % 3 == 0 && junk.size() >= 8)
            std::memcpy(junk.data(), "P10CKPT\0", 8);
        auto r = ckpt::Checkpoint::fromBytes(junk);
        EXPECT_FALSE(r.ok());
    }
}

TEST(CkptHostile, EmptyBufferTruncatedRejected)
{
    auto r = ckpt::Checkpoint::fromBytes(nullptr, 0);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, common::ErrorCode::InvalidArgument);
}

// ---- Split-phase API invariants ----

TEST(CkptApiDeathTest, AdvanceWithoutBeginRunDies)
{
    core::CoreModel model(core::power10());
    EXPECT_DEATH(model.advance(1), "advance before beginRun");
}

// ---- Golden corpus ----
//
// Committed checkpoints plus the expected fingerprints of the measured
// window that follows them. Any change to the serialized format, the
// simulator's behaviour, or the restore path that is not accompanied by
// a deliberate schema bump + corpus regeneration fails here.
// Regenerate with: P10EE_REGEN_GOLDEN=1 ./test_ckpt
//     --gtest_filter='*Golden*'

namespace {

struct GoldenCase
{
    const char* config;
    int smt;
    const char* stem;
};

constexpr GoldenCase kGolden[] = {
    {"power9", 1, "p9_smt1"},
    {"power9", 4, "p9_smt4"},
    {"power10", 1, "p10_smt1"},
    {"power10", 4, "p10_smt4"},
};

std::string
goldenDir()
{
    return P10EE_GOLDEN_DIR;
}

std::string
readFile(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    EXPECT_TRUE(f.good()) << path;
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

} // namespace

TEST(CkptGolden, CorpusRoundTripsBitIdentical)
{
    const bool regen = std::getenv("P10EE_REGEN_GOLDEN") != nullptr;
    for (const GoldenCase& g : kGolden) {
        const std::string ckptPath =
            goldenDir() + "/" + g.stem + ".ckpt";
        const std::string statsPath =
            goldenDir() + "/" + g.stem + ".stats.txt";
        if (regen) {
            auto [bytes, print] = captureAndFinish(g.config, g.smt);
            std::ofstream cf(ckptPath, std::ios::binary);
            cf.write(reinterpret_cast<const char*>(bytes.data()),
                     static_cast<std::streamsize>(bytes.size()));
            std::ofstream sf(statsPath, std::ios::binary);
            sf << print;
            continue;
        }
        const std::string raw = readFile(ckptPath);
        std::vector<uint8_t> bytes(raw.begin(), raw.end());
        ASSERT_FALSE(bytes.empty()) << ckptPath;
        EXPECT_EQ(restoreAndMeasure(g.config, g.smt, bytes),
                  readFile(statsPath))
            << g.stem;
    }
}

TEST(CkptGolden, CorpusMetaMatchesCases)
{
    if (std::getenv("P10EE_REGEN_GOLDEN") != nullptr)
        GTEST_SKIP() << "regenerating";
    for (const GoldenCase& g : kGolden) {
        const std::string raw =
            readFile(goldenDir() + "/" + g.stem + ".ckpt");
        std::vector<uint8_t> bytes(raw.begin(), raw.end());
        auto ckOr = ckpt::Checkpoint::fromBytes(bytes);
        ASSERT_TRUE(ckOr.ok()) << g.stem << ": "
                               << ckOr.error().str();
        EXPECT_EQ(ckOr.value().meta().configName, g.config);
        EXPECT_EQ(ckOr.value().meta().workload, "xz");
        EXPECT_EQ(ckOr.value().meta().numThreads,
                  static_cast<uint32_t>(g.smt));
        EXPECT_EQ(ckOr.value().capturedConfigHash(),
                  ckpt::configHash(configByName(g.config)));
    }
}
