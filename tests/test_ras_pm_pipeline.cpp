/**
 * @file
 * Tests for SERMiner derating, the power-management stack (WOF,
 * throttling, DDS, MMA gating) and the pipeline-depth model.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/core.h"
#include "pipeline/depth.h"
#include "pm/gating.h"
#include "pm/throttle.h"
#include "pm/wof.h"
#include "power/energy.h"
#include "ras/serminer.h"
#include "workloads/kernels.h"
#include "workloads/microprobe.h"
#include "workloads/spec_profiles.h"

using namespace p10ee;

namespace {

core::RunResult
runCase(const core::CoreConfig& cfg, const workloads::MicroprobeCase& tc)
{
    std::vector<std::unique_ptr<workloads::InstrSource>> srcs;
    std::vector<workloads::InstrSource*> ptrs;
    for (int t = 0; t < tc.smt; ++t) {
        srcs.push_back(workloads::makeCaseSource(tc, t));
        ptrs.push_back(srcs.back().get());
    }
    core::CoreModel m(cfg);
    core::RunOptions o;
    o.warmupInstrs = 15000u * static_cast<unsigned>(tc.smt);
    o.measureInstrs = 30000;
    return m.run(ptrs, o);
}

workloads::MicroprobeCase
caseNamed(const std::string& name)
{
    for (const auto& tc : workloads::fig13Suite())
        if (tc.name == name)
            return tc;
    ADD_FAILURE() << "missing case " << name;
    return {};
}

} // namespace

// ---------------- SERMiner ----------------

TEST(SerMiner, GroupStructure)
{
    auto cfg = core::power10();
    ras::SerMiner miner(cfg);
    std::vector<core::RunResult> suite;
    suite.push_back(runCase(cfg, caseNamed("st_dd0_zero")));
    auto groups = miner.analyze(suite);
    EXPECT_EQ(groups.size(), 39u * 16u);
    for (const auto& g : groups) {
        ASSERT_GE(g.utilization, 0.0);
        ASSERT_LE(g.utilization, 1.0);
        ASSERT_GT(g.kLatches, 0.0);
    }
}

TEST(SerMiner, DeratingMonotonicInVt)
{
    auto cfg = core::power10();
    ras::SerMiner miner(cfg);
    std::vector<core::RunResult> suite;
    suite.push_back(runCase(cfg, caseNamed("st_spec")));
    auto groups = miner.analyze(suite);
    double prev = 1.1;
    for (double vt : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        double d = ras::SerMiner::deratedFrac(groups, vt);
        EXPECT_LE(d, prev);
        prev = d;
    }
}

TEST(SerMiner, StaticSubsetOfDerated)
{
    auto cfg = core::power9();
    ras::SerMiner miner(cfg);
    std::vector<core::RunResult> suite;
    suite.push_back(runCase(cfg, caseNamed("smt2_dd1_random")));
    auto groups = miner.analyze(suite);
    auto s = ras::SerMiner::summarize(groups);
    EXPECT_LE(s.staticDerated, s.runtime90 + 1e-9);
    EXPECT_GT(s.staticDerated, 0.05);
    EXPECT_LT(s.staticDerated, 0.7);
}

TEST(SerMiner, ZeroDataDeratesMoreThanRandom)
{
    auto cfg = core::power10();
    ras::SerMiner miner(cfg);
    std::vector<core::RunResult> zeroSuite, randomSuite;
    zeroSuite.push_back(runCase(cfg, caseNamed("st_dd0_zero")));
    randomSuite.push_back(runCase(cfg, caseNamed("st_dd0_random")));
    auto gz = miner.analyze(zeroSuite);
    auto gr = miner.analyze(randomSuite);
    EXPECT_GT(ras::SerMiner::deratedFrac(gz, 0.5),
              ras::SerMiner::deratedFrac(gr, 0.5));
}

TEST(SerMiner, Power10RuntimeDeratingHigher)
{
    // The Fig. 14 headline: despite more latches, the fine-gated design
    // leaves more of them below any switching threshold.
    ras::SerMiner m9(core::power9()), m10(core::power10());
    std::vector<core::RunResult> s9, s10;
    s9.push_back(runCase(core::power9(), caseNamed("st_spec")));
    s10.push_back(runCase(core::power10(), caseNamed("st_spec")));
    auto g9 = m9.analyze(s9);
    auto g10 = m10.analyze(s10);
    EXPECT_GT(ras::SerMiner::deratedFrac(g10, 0.9),
              ras::SerMiner::deratedFrac(g9, 0.9));
    EXPECT_GT(m10.totalKlatches(), m9.totalKlatches());
}

TEST(SerMiner, Power10StaticDeratingLower)
{
    ras::SerMiner m9(core::power9()), m10(core::power10());
    std::vector<core::RunResult> s9, s10;
    s9.push_back(runCase(core::power9(), caseNamed("st_dd0_zero")));
    s10.push_back(runCase(core::power10(), caseNamed("st_dd0_zero")));
    EXPECT_LT(ras::SerMiner::staticDeratedFrac(m10.analyze(s10)),
              ras::SerMiner::staticDeratedFrac(m9.analyze(s9)));
}

// ---------------- WOF ----------------

TEST(Wof, DeterministicSolves)
{
    pm::Wof wof{pm::WofParams{}};
    for (double ceff : {0.4, 0.7, 1.0}) {
        auto a = wof.optimize(ceff);
        auto b = wof.optimize(ceff);
        EXPECT_EQ(a.freqGhz, b.freqGhz);
        EXPECT_EQ(a.voltage, b.voltage);
    }
}

TEST(Wof, LighterWorkloadsBoostHigher)
{
    pm::Wof wof{pm::WofParams{}};
    double prev = 0.0;
    for (double ceff : {1.0, 0.8, 0.6, 0.4}) {
        double f = wof.optimize(ceff).freqGhz;
        EXPECT_GE(f, prev);
        prev = f;
    }
}

TEST(Wof, StaysWithinFrequencyAndPowerLimits)
{
    pm::WofParams p;
    pm::Wof wof(p);
    for (double ceff = 0.2; ceff <= 1.4; ceff += 0.1) {
        auto pt = wof.optimize(ceff);
        EXPECT_GE(pt.freqGhz, p.fMinGhz - 1e-9);
        EXPECT_LE(pt.freqGhz, p.fMaxGhz + 1e-9);
        if (pt.freqGhz > p.fMinGhz + 1e-9)
            EXPECT_LE(pt.powerWatts, p.tdpWatts + 1e-9);
    }
}

TEST(Wof, MmaGatingBuysFrequency)
{
    pm::Wof wof{pm::WofParams{}};
    // At a Ceff where the budget binds, reclaiming MMA leakage helps.
    auto off = wof.optimize(0.95, /*mmaGated=*/false);
    auto on = wof.optimize(0.95, /*mmaGated=*/true);
    EXPECT_GE(on.freqGhz, off.freqGhz);
}

TEST(Wof, VoltageTracksFrequency)
{
    pm::WofParams p;
    pm::Wof wof(p);
    EXPECT_NEAR(wof.voltageAt(p.fNomGhz), p.vNom, 1e-12);
    EXPECT_GT(wof.voltageAt(p.fNomGhz + 0.4), p.vNom);
}

// ---------------- Throttling / DDS ----------------

TEST(Throttle, CapsPowerNearBudget)
{
    std::vector<float> raw(2000, 100.0f);
    for (size_t i = 500; i < 1500; ++i)
        raw[i] = 160.0f; // a hot phase
    pm::ThrottleParams p;
    p.budgetPj = 120.0;
    auto trace = pm::runThrottleLoop(raw, p);
    EXPECT_LT(trace.meanPowerPj, 125.0);
    EXPECT_LT(trace.overBudgetFrac, 0.1);
    EXPECT_GT(trace.meanPerf, 0.5);
    for (int level : trace.level) {
        ASSERT_GE(level, 0);
        ASSERT_LT(level, p.levels);
    }
}

TEST(Throttle, NoThrottleUnderBudget)
{
    std::vector<float> raw(500, 50.0f);
    pm::ThrottleParams p;
    p.budgetPj = 100.0;
    auto trace = pm::runThrottleLoop(raw, p);
    EXPECT_DOUBLE_EQ(trace.meanPerf, 1.0);
    EXPECT_DOUBLE_EQ(trace.overBudgetFrac, 0.0);
}

TEST(Droop, StepCausesDroopAndRecovery)
{
    // Idle then a current step.
    std::vector<float> power(4000, 500.0f);
    for (size_t i = 1000; i < 4000; ++i)
        power[i] = 4000.0f;
    pm::DroopParams p;
    p.ddsEnabled = false;
    auto trace = pm::simulateDroop(power, p);
    EXPECT_LT(trace.minVoltage, p.supplyVolts);
    EXPECT_GT(trace.minVoltage, 0.7); // sane physical range
    // Voltage recovers toward the new steady state by the end.
    EXPECT_GT(trace.voltage.back(), trace.minVoltage);
}

TEST(Droop, DdsArrestsTheDroop)
{
    std::vector<float> power(4000, 500.0f);
    for (size_t i = 1000; i < 4000; ++i)
        power[i] = 5000.0f;
    pm::DroopParams on;
    pm::DroopParams off = on;
    off.ddsEnabled = false;
    auto withDds = pm::simulateDroop(power, on);
    auto noDds = pm::simulateDroop(power, off);
    EXPECT_GE(withDds.minVoltage, noDds.minVoltage);
    EXPECT_GT(withDds.ddsTrips, 0);
    EXPECT_GT(withDds.throttledCycles, 0u);
}

// ---------------- MMA gating ----------------

TEST(Gating, IdleUnitFullyGated)
{
    std::vector<core::InstrTiming> timings(100); // no MMA ops
    pm::GatingParams p;
    auto r = pm::simulateGating(timings, 100000, p);
    EXPECT_DOUBLE_EQ(r.gatedFrac, 1.0);
    EXPECT_EQ(r.wakeStalls, 0u);
}

TEST(Gating, BurstyUseGatesBetweenBursts)
{
    std::vector<core::InstrTiming> timings;
    for (uint32_t burst : {10000u, 60000u}) {
        for (uint32_t i = 0; i < 100; ++i) {
            core::InstrTiming t;
            t.op = isa::OpClass::MmaGer;
            t.issue = burst + i;
            timings.push_back(t);
        }
    }
    pm::GatingParams p;
    p.idleLimit = 2000;
    auto r = pm::simulateGating(timings, 100000, p);
    EXPECT_GT(r.gatedCycles, 50000u);
    EXPECT_GE(r.powerOffEvents, 2);
}

TEST(Gating, HintsHideWakeLatency)
{
    std::vector<core::InstrTiming> timings;
    core::InstrTiming t;
    t.op = isa::OpClass::MmaGer;
    t.issue = 50000;
    timings.push_back(t);
    pm::GatingParams hints;
    hints.hintLead = hints.wakeLatency + 16;
    pm::GatingParams noHints = hints;
    noHints.hintsEnabled = false;
    auto a = pm::simulateGating(timings, 100000, hints);
    auto b = pm::simulateGating(timings, 100000, noHints);
    EXPECT_EQ(a.wakeStalls, 0u);
    EXPECT_EQ(b.wakeStalls, noHints.wakeLatency);
}

// ---------------- Pipeline depth ----------------

TEST(PipelineDepth, OptimumNear27Fo4)
{
    pipeline::DepthParams p;
    for (double target : {1.0, 0.8, 0.65, 0.5}) {
        double opt = pipeline::optimalFo4(p, target);
        EXPECT_GE(opt, 24.0) << target;
        EXPECT_LE(opt, 32.0) << target;
    }
}

TEST(PipelineDepth, BaselineNormalization)
{
    pipeline::DepthParams p;
    auto pt = pipeline::evaluateDepth(p, p.baseFo4, 1.0);
    EXPECT_NEAR(pt.freq, 1.0, 1e-9);
    EXPECT_NEAR(pt.ipc, 1.0, 1e-9);
    EXPECT_NEAR(pt.bips, 1.0, 1e-9);
}

TEST(PipelineDepth, DeeperPipesCostPower)
{
    pipeline::DepthParams p;
    auto deep = pipeline::evaluateDepth(p, 16.0, 10.0);  // no cap
    auto shallow = pipeline::evaluateDepth(p, 36.0, 10.0);
    EXPECT_GT(deep.power, shallow.power);
    EXPECT_GT(deep.freq, shallow.freq);
    EXPECT_LT(deep.ipc, shallow.ipc);
}

TEST(PipelineDepth, PowerLimitingEngagesAtLowTargets)
{
    pipeline::DepthParams p;
    auto pt = pipeline::evaluateDepth(p, 18.0, 0.5);
    EXPECT_TRUE(pt.powerLimited);
    EXPECT_LT(pt.voltage, 1.0);
    EXPECT_LE(pt.power, 0.5 + 1e-6);
}

TEST(PipelineDepth, SweepShapes)
{
    pipeline::DepthParams p;
    auto pts = pipeline::sweep(p, {20.0, 27.0, 36.0}, 0.8);
    ASSERT_EQ(pts.size(), 3u);
    EXPECT_GT(pts[0].stages, pts[2].stages);
}

TEST(PipelineDepth, LowerTargetsLowerBips)
{
    pipeline::DepthParams p;
    double prev = 1e9;
    for (double target : {1.0, 0.8, 0.6, 0.4}) {
        double b = pipeline::evaluateDepth(p, 27.0, target).bips;
        EXPECT_LT(b, prev + 1e-12);
        prev = b;
    }
}
