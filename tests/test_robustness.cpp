/**
 * @file
 * Structured-error and graceful-degradation tests: Expected/Error,
 * P10_ASSERT_FMT semantics, CoreConfig::validate(), throttle-loop and
 * droop-model edge cases, proxy counter screening, and the seeded-run
 * determinism regression the whole fault methodology rests on.
 */

#include <cmath>
#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "common/assert.h"
#include "common/error.h"
#include "core/core.h"
#include "model/proxy.h"
#include "pm/throttle.h"
#include "power/energy.h"
#include "workloads/spec_profiles.h"
#include "workloads/synthetic.h"

using namespace p10ee;

// ---------------------------------------------------------------- Error

TEST(Error, FactoriesSetCodesAndStr)
{
    auto e = common::Error::invalidConfig("bad geometry");
    EXPECT_EQ(e.code, common::ErrorCode::InvalidConfig);
    EXPECT_EQ(e.str(), "invalid_config: bad geometry");
    EXPECT_EQ(common::Error::transient("x").code,
              common::ErrorCode::Transient);
    EXPECT_EQ(common::Error::notFound("x").code,
              common::ErrorCode::NotFound);
    EXPECT_EQ(common::Error::timeout("x").code,
              common::ErrorCode::Timeout);
    EXPECT_EQ(common::Error::invalidArgument("x").code,
              common::ErrorCode::InvalidArgument);
}

TEST(Expected, HoldsValueOrError)
{
    common::Expected<int> good(7);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 7);
    EXPECT_EQ(good.valueOr(0), 7);

    common::Expected<int> bad(common::Error::notFound("nope"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, common::ErrorCode::NotFound);
    EXPECT_EQ(bad.valueOr(-1), -1);

    common::Status ok = common::okStatus();
    EXPECT_TRUE(ok.ok());
    common::Status failed = common::Error::timeout("budget blown");
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.error().code, common::ErrorCode::Timeout);
}

TEST(Expected, MoveOutValue)
{
    common::Expected<std::unique_ptr<int>> e(std::make_unique<int>(3));
    ASSERT_TRUE(e.ok());
    std::unique_ptr<int> p = std::move(e).value();
    EXPECT_EQ(*p, 3);
}

// --------------------------------------------------------------- assert

TEST(Assert, ConditionEvaluatedExactlyOnce)
{
    int calls = 0;
    auto once = [&calls]() {
        ++calls;
        return true;
    };
    P10_ASSERT(once(), "must hold");
    EXPECT_EQ(calls, 1);

    calls = 0;
    P10_ASSERT_FMT(once(), "value was %d", 42);
    EXPECT_EQ(calls, 1);

    // No-argument FMT form must also compile (__VA_OPT__ path).
    calls = 0;
    P10_ASSERT_FMT(once(), "no args");
    EXPECT_EQ(calls, 1);
}

TEST(AssertDeathTest, FmtMessageReachesStderr)
{
    EXPECT_DEATH(P10_ASSERT_FMT(1 == 2, "got %d instead of %d", 7, 9),
                 "p10ee panic.*got 7 instead of 9");
}

// ------------------------------------------------- CoreConfig::validate

TEST(ConfigValidate, ShippedConfigsPass)
{
    EXPECT_TRUE(core::power9().validate().ok());
    EXPECT_TRUE(core::power10().validate().ok());
    for (int g = 0; g < static_cast<int>(core::AblationGroup::NumGroups);
         ++g) {
        auto cfg =
            core::power10Without(static_cast<core::AblationGroup>(g));
        EXPECT_TRUE(cfg.validate().ok()) << cfg.name;
    }
}

TEST(ConfigValidate, CollectsEveryViolation)
{
    core::CoreConfig cfg = core::power10();
    cfg.fetchWidth = 0;
    cfg.l1d.lineSize = 48;      // not a power of two
    cfg.bp.gshareBits = 40;     // table too large
    cfg.clockGateQuality = 1.5; // quality outside [0,1]
    cfg.robSize = 0;

    auto s = cfg.validate();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.error().code, common::ErrorCode::InvalidConfig);
    const std::string& msg = s.error().message;
    EXPECT_NE(msg.find("fetchWidth"), std::string::npos) << msg;
    EXPECT_NE(msg.find("lineSize"), std::string::npos) << msg;
    EXPECT_NE(msg.find("gshareBits"), std::string::npos) << msg;
    EXPECT_NE(msg.find("clockGateQuality"), std::string::npos) << msg;
    EXPECT_NE(msg.find("robSize"), std::string::npos) << msg;
    // The offending design is named.
    EXPECT_NE(msg.find(cfg.name), std::string::npos) << msg;
}

// ------------------------------------------------------- throttle edges

TEST(ThrottleLoop, EmptySeriesYieldsEmptyTrace)
{
    pm::ThrottleParams params;
    params.budgetPj = 50.0;
    auto trace = pm::runThrottleLoop({}, params);
    EXPECT_TRUE(trace.level.empty());
    EXPECT_TRUE(trace.powerPj.empty());
    EXPECT_EQ(trace.meanPowerPj, 0.0);
    EXPECT_EQ(trace.overBudgetFrac, 0.0);
    EXPECT_EQ(trace.staleIntervals, 0u);
}

TEST(ThrottleLoop, NonPositiveBudgetPinsConservativeFallback)
{
    pm::ThrottleParams params;
    params.levels = 8;
    for (double budget : {0.0, -10.0}) {
        params.budgetPj = budget;
        std::vector<float> series(32, 100.0f);
        auto trace = pm::runThrottleLoop(series, params);
        ASSERT_EQ(trace.level.size(), series.size());
        for (int lvl : trace.level)
            EXPECT_EQ(lvl, params.levels - 1);
        EXPECT_EQ(trace.overBudgetFrac, 1.0);
        for (double p : trace.powerPj)
            EXPECT_TRUE(std::isfinite(p));
    }
}

TEST(ThrottleLoop, ZeroLevelsClampsToPassThrough)
{
    pm::ThrottleParams params;
    params.budgetPj = 50.0;
    params.levels = 0;
    std::vector<float> series(16, 100.0f);
    auto trace = pm::runThrottleLoop(series, params);
    ASSERT_EQ(trace.level.size(), series.size());
    for (int lvl : trace.level)
        EXPECT_EQ(lvl, 0); // one step only: no throttling possible
    EXPECT_DOUBLE_EQ(trace.meanPowerPj, 100.0);
    EXPECT_EQ(trace.overBudgetFrac, 1.0);
}

TEST(ThrottleLoop, StaleReadingsEngageFallbackAndRecover)
{
    pm::ThrottleParams params;
    params.budgetPj = 120.0; // generous: valid intervals unthrottled
    params.levels = 8;
    params.staleFallbackLevel = 5;

    std::vector<float> series(64, 80.0f);
    series[10] = std::nanf("");
    series[11] = -1.0f;
    series[12] = std::numeric_limits<float>::infinity();

    auto trace = pm::runThrottleLoop(series, params);
    EXPECT_EQ(trace.staleIntervals, 3u);
    EXPECT_EQ(trace.level[10], 5);
    EXPECT_EQ(trace.level[11], 5);
    EXPECT_EQ(trace.level[12], 5);
    // Before and well after the corruption the loop runs unthrottled.
    EXPECT_EQ(trace.level[9], 0);
    EXPECT_EQ(trace.level.back(), 0);
    for (double p : trace.powerPj)
        EXPECT_TRUE(std::isfinite(p));
}

TEST(ThrottleLoop, AllStaleSeriesStaysWellFormed)
{
    pm::ThrottleParams params;
    params.budgetPj = 50.0;
    std::vector<float> series(16, std::nanf(""));
    auto trace = pm::runThrottleLoop(series, params);
    EXPECT_EQ(trace.staleIntervals, series.size());
    for (double p : trace.powerPj) {
        EXPECT_TRUE(std::isfinite(p));
        EXPECT_EQ(p, 0.0); // no good reading ever arrived
    }
    EXPECT_TRUE(std::isfinite(trace.meanPowerPj));
    EXPECT_TRUE(std::isfinite(trace.meanPerf));
}

// ----------------------------------------------------------- DDS droop

namespace {

/** A load step that sags past the DDS threshold and never lets up. */
std::vector<float>
relentlessDroopSeries()
{
    std::vector<float> series;
    series.assign(128, 100.0f); // calm lead: sets the baseline
    series.insert(series.end(), 4000, 9000.0f);
    return series;
}

} // namespace

TEST(Droop, EmptySeriesIsGraceful)
{
    pm::DroopParams params;
    auto trace = pm::simulateDroop({}, params);
    EXPECT_TRUE(trace.voltage.empty());
    EXPECT_EQ(trace.ddsTrips, 0);
    EXPECT_DOUBLE_EQ(trace.minVoltage, params.supplyVolts);
}

TEST(Droop, GrowthOneKeepsLegacyBehaviour)
{
    pm::DroopParams params;
    params.backoffGrowth = 1.0;
    auto trace = pm::simulateDroop(relentlessDroopSeries(), params);
    EXPECT_GT(trace.ddsTrips, 1);
    EXPECT_EQ(trace.backoffEscalations, 0);
    for (float v : trace.voltage)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(Droop, NeverRecoveringDroopEscalatesHolds)
{
    pm::DroopParams params;
    params.backoffGrowth = 2.0;
    params.retripWindowCycles = 32;
    params.maxThrottleCycles = 512;

    auto series = relentlessDroopSeries();
    auto legacy = [&] {
        pm::DroopParams l = params;
        l.backoffGrowth = 1.0;
        return pm::simulateDroop(series, l);
    }();
    auto trace = pm::simulateDroop(series, params);

    // The hysteresis escalated at least once, trips became fewer and
    // longer, and the trace stayed well-formed throughout.
    EXPECT_GT(trace.backoffEscalations, 0);
    EXPECT_LT(trace.ddsTrips, legacy.ddsTrips);
    EXPECT_GT(trace.throttledCycles, 0u);
    ASSERT_EQ(trace.voltage.size(), series.size());
    for (float v : trace.voltage)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(Droop, DisabledDdsNeverTrips)
{
    pm::DroopParams params;
    params.ddsEnabled = false;
    auto trace = pm::simulateDroop(relentlessDroopSeries(), params);
    EXPECT_EQ(trace.ddsTrips, 0);
    EXPECT_EQ(trace.throttledCycles, 0u);
    for (float v : trace.voltage)
        EXPECT_TRUE(std::isfinite(v));
}

// ------------------------------------------------------ counter screen

TEST(CounterScreen, ClampsImplausibleReads)
{
    common::StatSnapshot stats;
    stats["cycles"] = 1000;
    stats["alu.issue"] = 4000;
    stats["l1d.miss"] = 0xffffffffffffull; // torn/corrupted read-out
    auto screen = model::screenCounters(stats, 1000);
    EXPECT_EQ(screen.flagged, 1);
    EXPECT_LE(screen.cleaned.at("l1d.miss"), 64u * 1000u);
    EXPECT_EQ(screen.cleaned.at("alu.issue"), 4000u);
    EXPECT_EQ(screen.cleaned.at("cycles"), 1000u); // exempt
}

TEST(CounterScreen, CleanSnapshotUntouched)
{
    common::StatSnapshot stats;
    stats["cycles"] = 1000;
    stats["decode.instr"] = 6000;
    auto screen = model::screenCounters(stats, 1000);
    EXPECT_EQ(screen.flagged, 0);
    EXPECT_EQ(screen.cleaned, stats);
}

// ------------------------------------------------ determinism regression

TEST(Determinism, SeededRunIsBitIdenticalIncludingEnergy)
{
    const auto cfg = core::power10();
    const auto& profile = workloads::profileByName("omnetpp");

    auto runOnce = [&]() {
        std::vector<std::unique_ptr<workloads::SyntheticWorkload>> owned;
        std::vector<workloads::InstrSource*> threads;
        for (int t = 0; t < 2; ++t) {
            owned.push_back(
                std::make_unique<workloads::SyntheticWorkload>(profile,
                                                               t));
            threads.push_back(owned.back().get());
        }
        core::CoreModel model(cfg);
        core::RunOptions opts;
        opts.warmupInstrs = 5000;
        opts.measureInstrs = 20000;
        return model.run(threads, opts);
    };

    const core::RunResult a = runOnce();
    const core::RunResult b = runOnce();

    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_EQ(a.flops, b.flops);
    // Bit-identical StatRegistry snapshots: every counter, exactly.
    EXPECT_EQ(a.stats, b.stats);

    power::EnergyModel energy(cfg);
    const auto pa = energy.evalCounters(a);
    const auto pb = energy.evalCounters(b);
    EXPECT_EQ(pa.totalPj, pb.totalPj); // exact equality, not tolerance
    EXPECT_EQ(pa.clockPj, pb.clockPj);
    EXPECT_EQ(pa.switchPj, pb.switchPj);
    EXPECT_EQ(pa.leakPj, pb.leakPj);
    ASSERT_EQ(pa.perComponent.size(), pb.perComponent.size());
    for (const auto& [name, pj] : pa.perComponent)
        EXPECT_EQ(pj, pb.perComponent.at(name)) << name;
}
