/**
 * @file
 * Shard-cache tests: key stability, robustness of the entry
 * deserializer, and the warm-vs-cold byte-identity contract.
 *
 * The cache must only ever save work: any corrupt, truncated, stale or
 * colliding entry is a miss (the shard re-simulates), and a warm run's
 * merged report is byte-identical to a cold run's. The hostile-input
 * suites (names carrying Fuzz/Corrupt/Stale run under ASan/UBSan in
 * CI) drive the deserializers with mutated bytes. Spec JSON parsing is
 * fuzzed here too — it feeds the cache key, so it shares the
 * never-crash bar.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "sweep/cache.h"
#include "sweep/runner.h"
#include "sweep/spec.h"

using namespace p10ee;
using sweep::ShardCache;
using sweep::ShardResult;
using sweep::ShardSpec;
using sweep::SweepSpec;

namespace {

/** Tiny two-shard spec: fast enough to simulate in every test. */
SweepSpec
tinySpec()
{
    SweepSpec spec;
    spec.configs = {"power10"};
    spec.workloads = {"mcf"};
    spec.smt = {1, 2};
    spec.seeds = 1;
    spec.instrs = 2000;
    spec.warmup = 500;
    spec.seed = 11;
    return spec;
}

std::vector<ShardSpec>
expandOrDie(const SweepSpec& spec)
{
    auto shards = spec.expand();
    EXPECT_TRUE(shards.ok()) << shards.error().str();
    return shards.value();
}

/** Fresh per-test cache directory under the system temp dir. */
struct TempCacheDir
{
    std::string path;
    explicit TempCacheDir(const std::string& stem)
    {
        path = (std::filesystem::temp_directory_path() /
                ("p10ee_" + stem))
                   .string();
        std::filesystem::remove_all(path);
    }
    ~TempCacheDir() { std::filesystem::remove_all(path); }
};

std::vector<uint8_t>
readEntry(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    EXPECT_TRUE(f.good()) << path;
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(f)),
        std::istreambuf_iterator<char>());
    return bytes;
}

void
writeEntry(const std::string& path, const std::vector<uint8_t>& bytes)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/** A representative ok result for insert/lookup round trips. */
ShardResult
okResult(const ShardSpec& shard)
{
    ShardResult r;
    r.index = shard.index;
    r.key = shard.key();
    r.ok = true;
    r.retries = 1;
    r.cycles = 123456;
    r.instrs = 2000;
    r.ipc = 1.625;
    r.powerW = 0.75;
    r.ipcPerW = r.ipc / r.powerW;
    r.wallSeconds = 9.9; // diagnostic only; must NOT survive the cache
    r.ipcX = {512.0, 1024.0};
    r.ipcY = {1.5, 1.75};
    return r;
}

/** Everything lookup() must reproduce (wallSeconds excluded by design:
    host timing is not part of a shard's deterministic identity). */
void
expectSameResult(const ShardResult& got, const ShardResult& want)
{
    EXPECT_EQ(got.index, want.index);
    EXPECT_EQ(got.key, want.key);
    EXPECT_EQ(got.ok, want.ok);
    EXPECT_EQ(got.error.code, want.error.code);
    EXPECT_EQ(got.error.message, want.error.message);
    EXPECT_EQ(got.retries, want.retries);
    EXPECT_EQ(got.cycles, want.cycles);
    EXPECT_EQ(got.instrs, want.instrs);
    EXPECT_EQ(got.ipc, want.ipc);
    EXPECT_EQ(got.powerW, want.powerW);
    EXPECT_EQ(got.ipcPerW, want.ipcPerW);
    EXPECT_EQ(got.wallSeconds, 0.0);
    EXPECT_EQ(got.ipcX, want.ipcX);
    EXPECT_EQ(got.ipcY, want.ipcY);
    EXPECT_EQ(got.mode, want.mode);
}

} // namespace

// ---- Cache-key definition ----

TEST(CacheKey, CanonicalJsonIsStableAndSelfContained)
{
    auto spec = tinySpec();
    auto shards = expandOrDie(spec);
    const std::string a = ShardCache::canonicalKeyJson(spec, shards[0]);
    const std::string b = ShardCache::canonicalKeyJson(spec, shards[0]);
    EXPECT_EQ(a, b);
    // The canonical identity must carry content hashes, not just
    // names: a renamed-but-identical config would otherwise alias.
    EXPECT_NE(a.find("config_hash"), std::string::npos);
    EXPECT_NE(a.find("profile_hash"), std::string::npos);
    EXPECT_NE(a.find("shard_index"), std::string::npos);
    // Fidelity mode is part of cache identity: a FastM1 result has no
    // power fields to replay into a Full request.
    EXPECT_NE(a.find("\"mode\""), std::string::npos);
}

TEST(CacheKey, ReorderedSpecJsonSameKey)
{
    // The same sweep spelled with reordered JSON keys must produce the
    // same cache keys — the canonical rendering, not the user's file
    // text, is what gets hashed.
    const char* textA = R"({
        "configs": ["power10"], "workloads": ["mcf"],
        "smt": [1, 2], "seeds": 1, "instrs": 2000, "warmup": 500,
        "seed": 11
    })";
    const char* textB = R"({
        "seed": 11, "warmup": 500, "instrs": 2000, "seeds": 1,
        "smt": [1, 2], "workloads": ["mcf"], "configs": ["power10"]
    })";
    auto specA = SweepSpec::fromJson(textA);
    auto specB = SweepSpec::fromJson(textB);
    ASSERT_TRUE(specA.ok()) << specA.error().str();
    ASSERT_TRUE(specB.ok()) << specB.error().str();
    auto shardsA = expandOrDie(specA.value());
    auto shardsB = expandOrDie(specB.value());
    ASSERT_EQ(shardsA.size(), shardsB.size());
    for (size_t i = 0; i < shardsA.size(); ++i)
        EXPECT_EQ(
            ShardCache::shardKey(specA.value(), shardsA[i]),
            ShardCache::shardKey(specB.value(), shardsB[i]))
            << "shard " << i;
}

TEST(CacheKey, SemanticFieldChangesChangeKey)
{
    auto base = tinySpec();
    auto shard = expandOrDie(base)[0];
    const uint64_t baseKey = ShardCache::shardKey(base, shard);

    auto mutated = [&](auto fn, const char* what) {
        auto spec = tinySpec();
        fn(spec);
        // Re-expand when the mutation could touch shard contents;
        // shard 0 stays the same grid position throughout.
        auto shards = expandOrDie(spec);
        EXPECT_NE(ShardCache::shardKey(spec, shards[0]), baseKey)
            << what;
    };
    mutated([](SweepSpec& s) { s.instrs = 2001; }, "instrs");
    mutated([](SweepSpec& s) { s.warmup = 501; }, "warmup");
    mutated([](SweepSpec& s) { s.seed = 12; }, "sweep seed");
    mutated([](SweepSpec& s) { s.maxCycles = 1000000; }, "maxCycles");
    mutated([](SweepSpec& s) { s.maxRetries = 3; }, "maxRetries");
    mutated([](SweepSpec& s) { s.infraFailProb = 0.5; },
            "infraFailProb");
    mutated([](SweepSpec& s) { s.sampleInterval = 256; },
            "sampleInterval");
    mutated([](SweepSpec& s) { s.configs = {"power9"}; }, "config");
    mutated([](SweepSpec& s) { s.workloads = {"xz"}; }, "workload");
    mutated([](SweepSpec& s) { s.modes = {api::SimMode::FastM1}; },
            "mode");
}

TEST(CacheKey, DistinctShardsDistinctKeys)
{
    auto spec = tinySpec();
    spec.configs = {"power9", "power10"};
    spec.workloads = {"mcf", "xz"};
    spec.seeds = 2;
    auto shards = expandOrDie(spec);
    std::set<uint64_t> keys;
    for (const auto& shard : shards)
        keys.insert(ShardCache::shardKey(spec, shard));
    EXPECT_EQ(keys.size(), shards.size());
}

// ---- Entry round trips ----

TEST(CacheEntry, InsertLookupRoundTrip)
{
    TempCacheDir dir("cache_roundtrip");
    ShardCache cache(dir.path);
    ASSERT_TRUE(cache.prepare().ok());
    auto spec = tinySpec();
    auto shard = expandOrDie(spec)[0];
    auto want = okResult(shard);
    ASSERT_TRUE(cache.insert(spec, shard, want).ok());
    auto got = cache.lookup(spec, shard);
    ASSERT_TRUE(got.has_value());
    expectSameResult(*got, want);
}

TEST(CacheEntry, FailedShardCachedToo)
{
    TempCacheDir dir("cache_failed");
    ShardCache cache(dir.path);
    ASSERT_TRUE(cache.prepare().ok());
    auto spec = tinySpec();
    auto shard = expandOrDie(spec)[0];
    ShardResult fail;
    fail.index = shard.index;
    fail.key = shard.key();
    fail.ok = false;
    fail.error = common::Error::timeout(
        "shard exceeded cycle budget (deterministic)");
    fail.retries = 2;
    ASSERT_TRUE(cache.insert(spec, shard, fail).ok());
    auto got = cache.lookup(spec, shard);
    ASSERT_TRUE(got.has_value());
    expectSameResult(*got, fail);
}

TEST(CacheEntry, FastM1ProvenanceSurvivesTheCache)
{
    // A cached FastM1 result must replay as FastM1 (no power fields)
    // so a warm merged report renders its power column absent — mode
    // provenance is the trailing byte of the v5 entry body.
    TempCacheDir dir("cache_mode");
    ShardCache cache(dir.path);
    ASSERT_TRUE(cache.prepare().ok());
    auto spec = tinySpec();
    spec.modes = {api::SimMode::FastM1};
    auto shard = expandOrDie(spec)[0];
    auto want = okResult(shard);
    want.mode = api::SimMode::FastM1;
    want.powerW = 0.0;
    want.ipcPerW = 0.0;
    ASSERT_TRUE(cache.insert(spec, shard, want).ok());
    auto got = cache.lookup(spec, shard);
    ASSERT_TRUE(got.has_value());
    expectSameResult(*got, want);
    EXPECT_EQ(got->mode, api::SimMode::FastM1);
}

TEST(CacheHostile, OutOfRangeModeByteIsMiss)
{
    // An entry whose mode byte names no known fidelity (container
    // checksum intact, so only the mode validation can catch it) must
    // be a miss, never a bogus SimMode escaping into the runner.
    auto spec = tinySpec();
    auto shard = expandOrDie(spec)[0];
    auto result = okResult(shard);
    result.mode = static_cast<api::SimMode>(7);
    auto bytes = ShardCache::encodeEntry(spec, shard, result);
    EXPECT_FALSE(
        ShardCache::decodeEntry(bytes, spec, shard).has_value());
}

TEST(CacheEntry, MissWhenAbsent)
{
    TempCacheDir dir("cache_absent");
    ShardCache cache(dir.path);
    ASSERT_TRUE(cache.prepare().ok());
    auto spec = tinySpec();
    auto shard = expandOrDie(spec)[0];
    EXPECT_FALSE(cache.lookup(spec, shard).has_value());
}

// ---- Hostile entries (runs under ASan/UBSan in CI) ----

namespace {

/** Insert a valid entry and return (cache, entry path, bytes). */
struct SeededCache
{
    TempCacheDir dir;
    ShardCache cache;
    SweepSpec spec;
    ShardSpec shard;
    std::string path;
    std::vector<uint8_t> bytes;

    explicit SeededCache(const std::string& stem)
        : dir("cache_" + stem), cache(dir.path), spec(tinySpec())
    {
        EXPECT_TRUE(cache.prepare().ok());
        shard = expandOrDie(spec)[0];
        EXPECT_TRUE(cache.insert(spec, shard, okResult(shard)).ok());
        path = cache.entryPath(ShardCache::shardKey(spec, shard));
        bytes = readEntry(path);
    }
};

} // namespace

TEST(CacheHostile, CorruptByteFlipIsMissNeverError)
{
    SeededCache s("corrupt");
    for (size_t pos = 0; pos < s.bytes.size();
         pos += (pos < 48 ? 1 : 37)) {
        auto mutated = s.bytes;
        mutated[pos] ^= 0xFF;
        writeEntry(s.path, mutated);
        EXPECT_FALSE(s.cache.lookup(s.spec, s.shard).has_value())
            << "flip at byte " << pos;
    }
    // Restoring the original bytes must hit again.
    writeEntry(s.path, s.bytes);
    EXPECT_TRUE(s.cache.lookup(s.spec, s.shard).has_value());
}

TEST(CacheHostile, TruncatedEntryIsMiss)
{
    SeededCache s("truncated");
    for (size_t len = 0; len < s.bytes.size();
         len += (len < 48 ? 1 : 53)) {
        writeEntry(s.path, std::vector<uint8_t>(
                               s.bytes.begin(),
                               s.bytes.begin() +
                                   static_cast<ptrdiff_t>(len)));
        EXPECT_FALSE(s.cache.lookup(s.spec, s.shard).has_value())
            << "prefix of " << len << " bytes";
    }
}

TEST(CacheHostile, TrailingGarbageIsMiss)
{
    SeededCache s("trailing");
    auto mutated = s.bytes;
    mutated.push_back(0x5A);
    writeEntry(s.path, mutated);
    EXPECT_FALSE(s.cache.lookup(s.spec, s.shard).has_value());
}

TEST(CacheHostile, StaleSchemaVersionIsMissNotCorruptLoad)
{
    // Patch the embedded state-schema version (u32 at offset 12) and
    // recompute the trailing checksum so only the version check can
    // reject it: a simulator whose serialized behaviour changed must
    // refuse entries written by the old one.
    SeededCache s("stale");
    auto mutated = s.bytes;
    ASSERT_GT(mutated.size(), 24u);
    mutated[12] = 0x7F;
    common::Fnv1a h;
    h.bytes(mutated.data(), mutated.size() - 8);
    const uint64_t sum = h.digest();
    for (int i = 0; i < 8; ++i)
        mutated[mutated.size() - 8 + static_cast<size_t>(i)] =
            static_cast<uint8_t>(sum >> (8 * i));
    writeEntry(s.path, mutated);
    EXPECT_FALSE(s.cache.lookup(s.spec, s.shard).has_value());
}

TEST(CacheHostile, StaleCacheFormatVersionIsMiss)
{
    // Same surgery on the container version (u32 at offset 8).
    SeededCache s("staleformat");
    auto mutated = s.bytes;
    mutated[8] = 0x7E;
    common::Fnv1a h;
    h.bytes(mutated.data(), mutated.size() - 8);
    const uint64_t sum = h.digest();
    for (int i = 0; i < 8; ++i)
        mutated[mutated.size() - 8 + static_cast<size_t>(i)] =
            static_cast<uint8_t>(sum >> (8 * i));
    writeEntry(s.path, mutated);
    EXPECT_FALSE(s.cache.lookup(s.spec, s.shard).has_value());
}

TEST(CacheHostile, CollidingEntryIdentityIsMiss)
{
    // Copy shard 0's (valid) entry into shard 1's slot: the container
    // parses, the checksum passes, but the embedded key/identity names
    // the wrong shard — must be a miss, never the wrong result.
    TempCacheDir dir("cache_collide");
    ShardCache cache(dir.path);
    ASSERT_TRUE(cache.prepare().ok());
    auto spec = tinySpec();
    auto shards = expandOrDie(spec);
    ASSERT_GE(shards.size(), 2u);
    ASSERT_TRUE(cache.insert(spec, shards[0],
                             okResult(shards[0])).ok());
    const auto bytes = readEntry(
        cache.entryPath(ShardCache::shardKey(spec, shards[0])));
    writeEntry(cache.entryPath(ShardCache::shardKey(spec, shards[1])),
               bytes);
    EXPECT_FALSE(cache.lookup(spec, shards[1]).has_value());
}

TEST(CacheHostile, RandomGarbageFuzzNeverCrashes)
{
    TempCacheDir dir("cache_garbage");
    ShardCache cache(dir.path);
    ASSERT_TRUE(cache.prepare().ok());
    auto spec = tinySpec();
    auto shard = expandOrDie(spec)[0];
    const std::string path =
        cache.entryPath(ShardCache::shardKey(spec, shard));
    common::Xoshiro rng(0xDECAF);
    for (int iter = 0; iter < 200; ++iter) {
        std::vector<uint8_t> junk(rng.below(2048));
        for (auto& byte : junk)
            byte = static_cast<uint8_t>(rng.next());
        if (iter % 3 == 0 && junk.size() >= 8)
            std::memcpy(junk.data(), "P10SHRD\0", 8);
        writeEntry(path, junk);
        EXPECT_FALSE(cache.lookup(spec, shard).has_value());
    }
}

TEST(CacheDeathTest, EmptyDirectoryAsserts)
{
    EXPECT_DEATH(ShardCache(""), "directory");
}

TEST(CacheEntry, UnwritableDirPreflightError)
{
    // A cache path whose parent is a regular file cannot be created;
    // prepare() must surface that as a structured input error.
    TempCacheDir dir("cache_unwritable");
    std::filesystem::create_directories(dir.path);
    const std::string file = dir.path + "/occupied";
    writeEntry(file, {0x00});
    ShardCache cache(file + "/sub");
    auto st = cache.prepare();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.error().code, common::ErrorCode::InvalidArgument);
}

// ---- SweepRunner integration ----

TEST(CacheSweep, WarmRunSimulatesZeroShardsByteIdentical)
{
    TempCacheDir dir("cache_warm");
    auto spec = tinySpec();

    sweep::SweepRunner cold(spec);
    cold.cacheDir = dir.path;
    auto coldRes = cold.run(2);
    ASSERT_TRUE(coldRes.ok()) << coldRes.error().str();
    EXPECT_EQ(coldRes.value().cachedShards, 0u);
    EXPECT_EQ(coldRes.value().simulatedShards,
              coldRes.value().shards.size());

    sweep::SweepRunner warm(spec);
    warm.cacheDir = dir.path;
    auto warmRes = warm.run(2);
    ASSERT_TRUE(warmRes.ok()) << warmRes.error().str();
    EXPECT_EQ(warmRes.value().simulatedShards, 0u);
    EXPECT_EQ(warmRes.value().cachedShards,
              warmRes.value().shards.size());
    for (const auto& shard : warmRes.value().shards)
        EXPECT_TRUE(shard.fromCache);

    EXPECT_EQ(
        sweep::SweepRunner::merge(spec, coldRes.value(), "t").toJson(),
        sweep::SweepRunner::merge(spec, warmRes.value(), "t").toJson());
}

TEST(CacheSweep, CacheVsNoCacheByteIdentical)
{
    TempCacheDir dir("cache_vs_none");
    auto spec = tinySpec();

    sweep::SweepRunner plain(spec);
    auto plainRes = plain.run(1);
    ASSERT_TRUE(plainRes.ok()) << plainRes.error().str();

    sweep::SweepRunner cached(spec);
    cached.cacheDir = dir.path;
    auto cachedRes = cached.run(4);
    ASSERT_TRUE(cachedRes.ok()) << cachedRes.error().str();

    sweep::SweepRunner warm(spec);
    warm.cacheDir = dir.path;
    auto warmRes = warm.run(4);
    ASSERT_TRUE(warmRes.ok()) << warmRes.error().str();

    const auto merged = sweep::SweepRunner::merge(
        spec, plainRes.value(), "t").toJson();
    EXPECT_EQ(sweep::SweepRunner::merge(spec, cachedRes.value(), "t")
                  .toJson(),
              merged);
    EXPECT_EQ(sweep::SweepRunner::merge(spec, warmRes.value(), "t")
                  .toJson(),
              merged);
}

TEST(CacheSweep, RetriedShardsReplayIdentically)
{
    // Shards that consumed deterministic transient-failure retries
    // (and shards that failed outright) must replay from cache with
    // identical retry counts and error records.
    TempCacheDir dir("cache_retries");
    auto spec = tinySpec();
    spec.configs = {"power9", "power10"};
    spec.seeds = 2;
    spec.infraFailProb = 0.4;
    spec.maxRetries = 1;
    spec.seed = 23;

    sweep::SweepRunner cold(spec);
    cold.cacheDir = dir.path;
    auto coldRes = cold.run(4);
    ASSERT_TRUE(coldRes.ok()) << coldRes.error().str();
    // The point of the test is mixed outcomes; with p=0.4 over 8
    // shards both kinds exist for this seed.
    EXPECT_GT(coldRes.value().retriesTotal, 0u);

    sweep::SweepRunner warm(spec);
    warm.cacheDir = dir.path;
    auto warmRes = warm.run(4);
    ASSERT_TRUE(warmRes.ok()) << warmRes.error().str();
    EXPECT_EQ(warmRes.value().simulatedShards, 0u);
    EXPECT_EQ(warmRes.value().retriesTotal,
              coldRes.value().retriesTotal);
    EXPECT_EQ(warmRes.value().failed, coldRes.value().failed);
    EXPECT_EQ(
        sweep::SweepRunner::merge(spec, coldRes.value(), "t").toJson(),
        sweep::SweepRunner::merge(spec, warmRes.value(), "t").toJson());
}

TEST(CacheSweep, CacheWithShardReportsDirRejected)
{
    TempCacheDir dir("cache_conflict");
    auto spec = tinySpec();
    spec.shardReportsDir = dir.path + "/shards";
    sweep::SweepRunner runner(spec);
    runner.cacheDir = dir.path + "/cache";
    auto res = runner.run(1);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, common::ErrorCode::InvalidArgument);
}

TEST(CacheSweep, CacheStatsConservation)
{
    TempCacheDir dir("cache_stats");
    auto spec = tinySpec();
    sweep::SweepRunner runner(spec);
    runner.cacheDir = dir.path;
    auto res = runner.run(2);
    ASSERT_TRUE(res.ok()) << res.error().str();
    EXPECT_EQ(res.value().cachedShards + res.value().simulatedShards,
              res.value().shards.size());
    const std::string stats =
        sweep::SweepRunner::cacheStats(res.value(), "t").toJson();
    EXPECT_NE(stats.find("sweep.cached"), std::string::npos);
    EXPECT_NE(stats.find("sweep.simulated"), std::string::npos);
    EXPECT_NE(stats.find("sweep.shards"), std::string::npos);
}

// ---- Spec JSON hostile input (feeds the cache key) ----

TEST(SpecHostile, TruncationFuzzNeverCrashes)
{
    const std::string text = R"({
        "configs": ["power10"], "workloads": ["mcf"],
        "smt": [1, 2], "seeds": 2, "instrs": 2000, "warmup": 500,
        "max_cycles": 100, "max_retries": 1, "infra_fail_prob": 0.25,
        "seed": 11, "sample_interval": 64
    })";
    for (size_t len = 0; len < text.size(); ++len) {
        auto r = SweepSpec::fromJson(text.substr(0, len));
        EXPECT_FALSE(r.ok()) << "prefix of " << len << " bytes";
    }
}

TEST(SpecHostile, ByteFlipFuzzNeverCrashes)
{
    const std::string text = R"({"configs":["power10"],)"
                             R"("workloads":["mcf"],"smt":[1],)"
                             R"("seeds":1,"instrs":2000,)"
                             R"("warmup":500,"seed":11})";
    for (size_t pos = 0; pos < text.size(); ++pos) {
        for (char c : {'\0', '{', '"', '-', '9'}) {
            std::string mutated = text;
            mutated[pos] = c;
            // Either outcome is fine — some flips still parse (e.g. a
            // digit swap); the bar is no crash and no UB, including in
            // the validation and key paths a parsed spec then feeds.
            auto r = SweepSpec::fromJson(mutated);
            if (r.ok() && r.value().validate().ok()) {
                auto shards = r.value().expand();
                if (shards.ok() && !shards.value().empty())
                    (void)ShardCache::shardKey(r.value(),
                                               shards.value()[0]);
            }
        }
    }
}

TEST(SpecHostile, NaNAndHugeValuesRejected)
{
    // JSON NaN/Infinity literals are invalid JSON; numeric fields far
    // outside their domain must fail validation, not wrap or crash.
    EXPECT_FALSE(SweepSpec::fromJson(
                     R"({"configs":["power10"],"workloads":["mcf"],)"
                     R"("infra_fail_prob":NaN})")
                     .ok());
    EXPECT_FALSE(SweepSpec::fromJson(
                     R"({"configs":["power10"],"workloads":["mcf"],)"
                     R"("infra_fail_prob":Infinity})")
                     .ok());
    auto huge = SweepSpec::fromJson(
        R"({"configs":["power10"],"workloads":["mcf"],)"
        R"("infra_fail_prob":1e308})");
    if (huge.ok())
        EXPECT_FALSE(huge.value().validate().ok());
    auto negative = SweepSpec::fromJson(
        R"({"configs":["power10"],"workloads":["mcf"],)"
        R"("infra_fail_prob":-0.5})");
    if (negative.ok())
        EXPECT_FALSE(negative.value().validate().ok());
}

TEST(SpecHostile, UnknownKeysRejected)
{
    auto r = SweepSpec::fromJson(
        R"({"configs":["power10"],"workloads":["mcf"],)"
        R"("workload":["typo-must-not-shrink-sweep"]})");
    EXPECT_FALSE(r.ok());
}
