/**
 * @file
 * Tests for the component energy model and the APEX extraction paths.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/core.h"
#include "mma/gemm.h"
#include "power/apex.h"
#include "power/components.h"
#include "power/cycle_stats.h"
#include "power/energy.h"
#include "workloads/spec_profiles.h"
#include "workloads/synthetic.h"

using namespace p10ee;
using power::EnergyModel;

namespace {

core::RunResult
runProfile(const core::CoreConfig& cfg, const std::string& name,
           uint64_t instrs, bool timings)
{
    const auto& prof = workloads::profileByName(name);
    workloads::SyntheticWorkload src(prof);
    core::CoreModel m(cfg);
    core::RunOptions o;
    o.warmupInstrs = 20000;
    o.measureInstrs = instrs;
    o.collectTimings = timings;
    return m.run({&src}, o);
}

} // namespace

TEST(Components, CoreHas39Components)
{
    EXPECT_EQ(power::coreComponents(core::power9()).size(), 39u);
    EXPECT_EQ(power::coreComponents(core::power10()).size(), 39u);
    EXPECT_EQ(power::chipComponents(core::power10()).size(), 4u);
}

TEST(Components, MmaGatedOnlyOnPower10)
{
    int gated = 0;
    double gatedLatches = 0.0;
    for (const auto& c : power::coreComponents(core::power10())) {
        if (c.powerGated) {
            ++gated;
            gatedLatches += c.kLatches;
        }
    }
    EXPECT_EQ(gated, 2); // mma_grid + mma_acc
    EXPECT_GT(gatedLatches, 0.0);
    for (const auto& c : power::coreComponents(core::power9())) {
        if (c.powerGated) {
            EXPECT_EQ(c.kLatches, 0.0);
        }
    }
}

TEST(Components, Power10GatesBetter)
{
    auto c9 = power::coreComponents(core::power9());
    auto c10 = power::coreComponents(core::power10());
    double base9 = 0.0, base10 = 0.0;
    for (size_t i = 0; i < c9.size(); ++i) {
        base9 += c9[i].baseClockFrac;
        base10 += c10[i].baseClockFrac;
    }
    // "Latch clocks off by default": far smaller ungated fraction.
    EXPECT_LT(base10, base9 * 0.4);
}

TEST(Energy, BreakdownSumsToTotal)
{
    auto cfg = core::power10();
    EnergyModel em(cfg);
    auto r = runProfile(cfg, "perlbench", 30000, false);
    auto b = em.evalCounters(r);
    EXPECT_NEAR(b.totalPj, b.clockPj + b.switchPj + b.leakPj, 1e-6);
    double perComp = 0.0;
    for (const auto& [name, pj] : b.perComponent)
        perComp += pj;
    EXPECT_NEAR(perComp, b.totalPj, 1e-6);
    EXPECT_GT(b.totalPj, 0.0);
}

TEST(Energy, StaticBelowTotal)
{
    auto cfg = core::power10();
    EnergyModel em(cfg);
    auto r = runProfile(cfg, "x264", 30000, false);
    EXPECT_LT(em.staticPj(), em.evalCounters(r).totalPj);
}

TEST(Energy, MoreActivityMorePower)
{
    auto cfg = core::power10();
    EnergyModel em(cfg);
    auto fast = runProfile(cfg, "exchange2", 30000, false); // high IPC
    auto slow = runProfile(cfg, "mcf", 30000, false);       // stalls
    EXPECT_GT(em.evalCounters(fast).totalPj,
              em.evalCounters(slow).totalPj);
}

TEST(Energy, Power10CheaperThanPower9AtIsoWork)
{
    EnergyModel e9(core::power9());
    EnergyModel e10(core::power10());
    auto r9 = runProfile(core::power9(), "perlbench", 30000, false);
    auto r10 = runProfile(core::power10(), "perlbench", 30000, false);
    EXPECT_LT(e10.evalCounters(r10).totalPj,
              e9.evalCounters(r9).totalPj * 0.85);
}

TEST(Energy, MmaPowerGatedWhenIdle)
{
    auto cfg = core::power10();
    EnergyModel em(cfg);
    auto r = runProfile(cfg, "perlbench", 30000, false); // no MMA work
    auto b = em.evalCounters(r);
    EXPECT_DOUBLE_EQ(b.perComponent.at("mma_grid"), 0.0);
    EXPECT_DOUBLE_EQ(b.perComponent.at("mma_acc"), 0.0);
}

TEST(Energy, MmaPoweredWhenActive)
{
    auto cfg = core::power10();
    EnergyModel em(cfg);
    constexpr int kD = 16;
    std::vector<double> a(kD * kD, 1.0), b(kD * kD, 1.0), c(kD * kD, 0.0);
    mma::VectorSink sink;
    mma::dgemmMma(a.data(), b.data(), c.data(), {kD, kD, kD}, &sink);
    workloads::ReplaySource src("g", sink.instrs());
    core::CoreModel m(cfg);
    core::RunOptions o;
    o.warmupInstrs = 5000;
    o.measureInstrs = 20000;
    auto r = m.run({&src}, o);
    auto pb = em.evalCounters(r);
    EXPECT_GT(pb.perComponent.at("mma_grid"), 0.0);
}

TEST(Energy, WattsConversion)
{
    power::PowerBreakdown b;
    b.totalPj = 2500.0;
    EXPECT_NEAR(b.watts(4.0), 10.0, 1e-9);
}

TEST(Energy, DetailedMatchesCounters)
{
    auto cfg = core::power10();
    EnergyModel em(cfg);
    auto r = runProfile(cfg, "xz", 40000, true);
    auto agg = em.evalCounters(r);
    auto det = em.evalPerCycle(r);
    EXPECT_NEAR(det.totalPj / agg.totalPj, 1.0, 0.06);
}

TEST(Energy, PerCycleSeriesLengthAndPositivity)
{
    auto cfg = core::power10();
    EnergyModel em(cfg);
    auto r = runProfile(cfg, "x264", 30000, true);
    auto series = em.perCyclePower(r);
    EXPECT_EQ(series.size(), r.cycles);
    for (size_t i = 0; i < series.size(); i += 211)
        ASSERT_GT(series[i], 0.0f);
}

TEST(Energy, WindowPowerMatchesFullWindow)
{
    auto cfg = core::power10();
    EnergyModel em(cfg);
    auto r = runProfile(cfg, "leela", 30000, true);
    // One window covering the whole run, fed with the full event sums.
    std::array<double, power::cyc::kNumCycleStats> sums{};
    for (const auto& t : r.timings)
        power::cyc::addInstrEvents(t, sums.data());
    double window = em.windowPowerPj(r, sums.data(), r.cycles);
    double agg = em.evalCounters(r).totalPj;
    EXPECT_NEAR(window / agg, 1.0, 0.03);
}

TEST(Apex, IntervalCountAndValues)
{
    auto cfg = core::power10();
    EnergyModel em(cfg);
    auto r = runProfile(cfg, "perlbench", 30000, true);
    power::ApexExtractor apex(em, 500);
    auto intervals = apex.intervalPower(r);
    EXPECT_EQ(intervals.size(), (r.cycles + 499) / 500);
    for (float v : intervals)
        ASSERT_GT(v, 0.0f);
}

TEST(Apex, MatchesDetailedWithinTolerance)
{
    auto cfg = core::power10();
    EnergyModel em(cfg);
    auto r = runProfile(cfg, "deepsjeng", 50000, true);
    auto cmp = power::compareApexVsDetailed(em, r, 1000);
    EXPECT_LT(cmp.meanAbsErrorFrac, 0.06);
    EXPECT_GT(cmp.speedup, 3.0);
}

TEST(Apex, SpeedupGrowsWithRunLength)
{
    auto cfg = core::power10();
    EnergyModel em(cfg);
    auto r = runProfile(cfg, "mcf", 60000, true);
    auto cmp = power::compareApexVsDetailed(em, r, 1000);
    // Memory-bound runs have many cycles per instruction: the per-cycle
    // reference pays for every cycle while APEX pays per instruction.
    EXPECT_GT(cmp.speedup, 20.0);
}

TEST(CycleStats, IdMappingRoundTrips)
{
    EXPECT_EQ(power::cyc::idOf("issue.alu"), power::cyc::kIssueAlu);
    EXPECT_EQ(power::cyc::idOf("sw.mma"), power::cyc::kSwMma);
    EXPECT_EQ(power::cyc::idOf("bp.mispredict"), -1); // flat stat
}

TEST(CycleStats, InstrEventAccumulation)
{
    core::InstrTiming t;
    t.op = isa::OpClass::Load;
    t.toggle = 0.5f;
    double ev[power::cyc::kNumCycleStats] = {};
    power::cyc::addInstrEvents(t, ev);
    EXPECT_EQ(ev[power::cyc::kIssueLd], 1.0);
    EXPECT_EQ(ev[power::cyc::kLsuLd], 1.0);
    EXPECT_EQ(ev[power::cyc::kL1dRead], 1.0);
    EXPECT_EQ(ev[power::cyc::kRfWrite], 1.0);
    EXPECT_NEAR(ev[power::cyc::kSwLs], 512.0, 1.0);
}
