#!/usr/bin/env python3
"""Validate p10ee machine-readable artifacts.

Default mode checks "p10ee-report/1" reports (the BENCH_*.json /
--stats-json format documented in src/obs/report.h): exact top-level
shape, the meta block, and the scalar/table/series sections. With
--trace, files are checked as Chrome/Perfetto JSON traces instead
(loadable JSON, a traceEvents array, counter and slice events well
formed). With --sweep, files get the default report checks plus the
merged-sweep invariants from src/sweep/runner.h: a "sweep shards"
table whose row count matches the sweep.shards scalar, unique shard
ids, valid status values, and the zeroed wall-clock meta fields that
make merged reports a pure function of the spec. Reports carrying
cache provenance (the sweep.cached / sweep.simulated scalars emitted
by p10sweep_cli --cache-stats) additionally get the conservation
check: cached + simulated shards must sum to the total. With --fleet,
files are checked as fleet provenance sidecars (p10fleet
--fleet-stats): the default report checks plus the full fleet.*
counter set from src/fabric/fleet.h and its internal accounting
(dead workers never exceed workers, locally-run and skipped shards
never exceed the shard total, nothing dispatched to an empty fleet).

With --metrics, files are checked as metrics-registry sidecars
(p10fleet/p10sweep_cli/p10d --metrics-out): the default report checks
plus every scalar being numeric and non-negative — counters, gauges
and histogram expansions (name.count/.max/.sum) can never go below
zero. Fleet traces (those with a "trace:<id>" pseudo-thread naming the
root TraceContext) additionally get distributed-trace checks: the
trace id must have the exact 32-hex + "-" + 16-hex wire shape, slice
timestamps must be monotonic within each lane, and counter samples
must be non-negative.

With --chip, files get the full --sweep checks plus the chip-shard
invariants from src/sweep/runner.h: a "chip shards" table (one row per
multi-core shard, cores >= 2, row count matching the chip.shards
scalar) and a "chip cores" table whose per-core rows must roll up
exactly to their shard — instrs sum to the shard's instrs, effective
cycles equal commit cycles plus non-negative stall cycles, the shard's
chip_cycles is the slowest core's effective cycles, and the per-core
power sums to the shard's power within rounding tolerance.

With --trace-workload, files get the full --sweep checks plus the
trace-workload provenance invariants from src/sweep/runner.h: a
"trace workloads" table (workload, trace, content_hash) whose hashes
are exactly 16 lowercase hex digits, one row per distinct trace:*
workload, and every trace:* workload appearing in the "sweep shards"
table present in it — so a merged report over trace containers always
records which trace content produced it.

With --mode, files get the default report checks plus fidelity-mode
(api::SimMode) provenance coherence: an optional meta.mode key must
name a valid mode, a fast_m1 single-run report must carry NO power
scalars (absent, not zeroed), and a merged sweep report's "mode"
column must hold valid cells with the power_w cell "-" on exactly the
fast_m1 rows.

Usage:
  validate_report.py report.json [more.json ...]
  validate_report.py --trace trace.json [more.json ...]
  validate_report.py --sweep merged.json [more.json ...]
  validate_report.py --chip merged.json [more.json ...]
  validate_report.py --trace-workload merged.json [more.json ...]
  validate_report.py --fleet stats.json [more.json ...]
  validate_report.py --metrics metrics.json [more.json ...]
  validate_report.py --mode report.json [more.json ...]

Exits non-zero naming every failing file; CI runs it over every
artifact the bench smoke stage emits. Stdlib only.
"""

import json
import re
import sys

NUM = (int, float)

# Fidelity modes (api::SimMode wire names).
MODE_VALUES = {"full", "fast_m1"}

# The wire shape of a TraceContext (src/obs/trace.h): 32 lowercase hex
# chars, '-', 16 lowercase hex chars.
TRACE_THREAD_RE = re.compile(r"^trace:[0-9a-f]{32}-[0-9a-f]{16}$")


def _fail(errors, path, msg):
    errors.append(f"{path}: {msg}")


def validate_report(path, doc, errors):
    if not isinstance(doc, dict):
        return _fail(errors, path, "top level is not an object")
    expected_keys = {"schema", "meta", "scalars", "tables", "series"}
    if set(doc) != expected_keys:
        return _fail(
            errors, path,
            f"top-level keys {sorted(doc)} != {sorted(expected_keys)}")
    if doc["schema"] != "p10ee-report/1":
        return _fail(errors, path,
                     f"schema '{doc['schema']}' != 'p10ee-report/1'")

    meta = doc["meta"]
    meta_types = {
        "tool": str, "config": str, "workload": str, "seed": int,
        "git": str, "wall_s": NUM, "sim_instrs": int, "host_mips": NUM,
    }
    # "mode" is the one optional meta key: full-fidelity reports omit
    # it entirely (historical byte-compatibility), fast_m1 reports
    # carry it as provenance for the absent power scalars.
    required = set(meta_types)
    if (not isinstance(meta, dict)
            or not required <= set(meta) <= required | {"mode"}):
        return _fail(errors, path, f"meta keys {sorted(meta)} wrong")
    for key, typ in meta_types.items():
        if not isinstance(meta[key], typ) or isinstance(meta[key], bool):
            _fail(errors, path, f"meta.{key} has wrong type")
    if "mode" in meta and meta["mode"] not in MODE_VALUES:
        _fail(errors, path,
              f"meta.mode '{meta['mode']}' not in {sorted(MODE_VALUES)}")
    if not meta.get("tool"):
        _fail(errors, path, "meta.tool is empty")
    if isinstance(meta.get("wall_s"), NUM) and meta["wall_s"] < 0:
        _fail(errors, path, "meta.wall_s is negative")

    scalars = doc["scalars"]
    if not isinstance(scalars, dict):
        _fail(errors, path, "scalars is not an object")
    else:
        for name, value in scalars.items():
            if value is not None and not isinstance(value, NUM):
                _fail(errors, path, f"scalar '{name}' is not numeric")

    tables = doc["tables"]
    if not isinstance(tables, list):
        _fail(errors, path, "tables is not an array")
    else:
        for i, t in enumerate(tables):
            if (not isinstance(t, dict)
                    or set(t) != {"title", "columns", "rows"}):
                _fail(errors, path, f"tables[{i}] malformed")
                continue
            ncol = len(t["columns"])
            if not all(isinstance(c, str) for c in t["columns"]):
                _fail(errors, path, f"tables[{i}] non-string column")
            for j, row in enumerate(t["rows"]):
                if len(row) != ncol:
                    _fail(errors, path,
                          f"tables[{i}].rows[{j}] has {len(row)} cells, "
                          f"expected {ncol}")
                if not all(isinstance(c, str) for c in row):
                    _fail(errors, path,
                          f"tables[{i}].rows[{j}] non-string cell")

    # Cache-provenance conservation: whenever a report carries the
    # sweep.cached / sweep.simulated split (the --cache-stats sidecar,
    # or any future report embedding it), every shard must be accounted
    # exactly once.
    if isinstance(scalars, dict) and "sweep.cached" in scalars:
        cached = scalars.get("sweep.cached")
        simulated = scalars.get("sweep.simulated")
        total = scalars.get("sweep.shards")
        if not isinstance(simulated, NUM):
            _fail(errors, path,
                  "sweep.cached present without numeric sweep.simulated")
        elif not isinstance(total, NUM) or not isinstance(cached, NUM):
            _fail(errors, path,
                  "sweep.cached present without numeric sweep.shards")
        elif cached + simulated != total:
            _fail(errors, path,
                  f"sweep.cached ({cached}) + sweep.simulated "
                  f"({simulated}) != sweep.shards ({total})")

    series = doc["series"]
    if not isinstance(series, list):
        _fail(errors, path, "series is not an array")
    else:
        for i, s in enumerate(series):
            if (not isinstance(s, dict)
                    or set(s) != {"name", "unit", "x", "y"}):
                _fail(errors, path, f"series[{i}] malformed")
                continue
            if len(s["x"]) != len(s["y"]):
                _fail(errors, path,
                      f"series[{i}] ('{s['name']}') x/y length mismatch")
            for axis in ("x", "y"):
                if not all(v is None or isinstance(v, NUM)
                           for v in s[axis]):
                    _fail(errors, path,
                          f"series[{i}].{axis} non-numeric entry")


SWEEP_COLUMNS = ["shard", "config", "workload", "smt", "seed",
                 "status", "retries", "cycles", "ipc", "power_w"]
# Sweeps that ran any FastM1 shard carry a "mode" column between seed
# and status; Full-only sweeps keep the historical column set exactly.
SWEEP_COLUMNS_MODE = SWEEP_COLUMNS[:5] + ["mode"] + SWEEP_COLUMNS[5:]
SWEEP_STATUSES = {"ok", "invalid_argument", "invalid_config",
                  "not_found", "timeout", "transient", "overloaded",
                  "cancelled", "internal"}


def validate_sweep(path, doc, errors):
    """Merged sweep report: the default checks plus sweep invariants."""
    before = len(errors)
    validate_report(path, doc, errors)
    if len(errors) != before:
        return

    scalars = doc["scalars"]
    for name in ("sweep.shards", "sweep.ok", "sweep.failed",
                 "sweep.retries"):
        if not isinstance(scalars.get(name), NUM):
            _fail(errors, path, f"missing numeric scalar '{name}'")

    table = next((t for t in doc["tables"]
                  if t["title"] == "sweep shards"), None)
    if table is None:
        return _fail(errors, path, "no 'sweep shards' table")
    if table["columns"] not in (SWEEP_COLUMNS, SWEEP_COLUMNS_MODE):
        return _fail(errors, path,
                     f"'sweep shards' columns {table['columns']} != "
                     f"{SWEEP_COLUMNS} (optionally with 'mode' after "
                     f"'seed')")
    columns = table["columns"]

    rows = table["rows"]
    if scalars.get("sweep.shards") != len(rows):
        _fail(errors, path,
              f"sweep.shards={scalars.get('sweep.shards')} but the "
              f"'sweep shards' table has {len(rows)} rows")
    shard_ids = [row[0] for row in rows]
    if len(set(shard_ids)) != len(shard_ids):
        _fail(errors, path, "duplicate shard ids in 'sweep shards'")
    ok_rows = 0
    for j, row in enumerate(rows):
        status = row[columns.index("status")]
        if status not in SWEEP_STATUSES:
            _fail(errors, path,
                  f"'sweep shards' rows[{j}] bad status '{status}'")
        ok_rows += status == "ok"
    if scalars.get("sweep.ok") != ok_rows:
        _fail(errors, path,
              f"sweep.ok={scalars.get('sweep.ok')} but {ok_rows} rows "
              f"have status ok")

    # Merged reports must be a pure function of the spec: real timing
    # goes to stderr, never into the artifact.
    meta = doc["meta"]
    if meta.get("wall_s") != 0:
        _fail(errors, path, "merged report meta.wall_s is not 0")
    if meta.get("host_mips") != 0:
        _fail(errors, path, "merged report meta.host_mips is not 0")


TRACE_WORKLOAD_COLUMNS = ["workload", "trace", "content_hash"]
CONTENT_HASH_RE = re.compile(r"^[0-9a-f]{16}$")


def validate_trace_workload(path, doc, errors):
    """Merged sweep report over trace:* workloads: the full --sweep
    checks plus the trace provenance table (workload name + content
    hash for every replayed container)."""
    before = len(errors)
    validate_sweep(path, doc, errors)
    if len(errors) != before:
        return

    table = next((t for t in doc["tables"]
                  if t["title"] == "trace workloads"), None)
    if table is None:
        return _fail(errors, path, "no 'trace workloads' table")
    if table["columns"] != TRACE_WORKLOAD_COLUMNS:
        return _fail(errors, path,
                     f"'trace workloads' columns {table['columns']} "
                     f"!= {TRACE_WORKLOAD_COLUMNS}")

    covered = set()
    for j, row in enumerate(table["rows"]):
        workload, trace, content_hash = row
        if not workload.startswith("trace:"):
            _fail(errors, path,
                  f"'trace workloads' rows[{j}] workload '{workload}' "
                  f"lacks the trace: scheme")
        if workload != "trace:" + trace:
            _fail(errors, path,
                  f"'trace workloads' rows[{j}] trace '{trace}' does "
                  f"not match workload '{workload}'")
        if not CONTENT_HASH_RE.match(content_hash):
            _fail(errors, path,
                  f"'trace workloads' rows[{j}] content_hash "
                  f"'{content_hash}' is not 16 lowercase hex digits")
        if workload in covered:
            _fail(errors, path,
                  f"duplicate 'trace workloads' row for '{workload}'")
        covered.add(workload)

    shards = next(t for t in doc["tables"]
                  if t["title"] == "sweep shards")
    wl_col = shards["columns"].index("workload")
    for j, row in enumerate(shards["rows"]):
        workload = row[wl_col]
        if workload.startswith("trace:") and workload not in covered:
            _fail(errors, path,
                  f"shard workload '{workload}' missing from the "
                  f"'trace workloads' table")


CHIP_SHARD_COLUMNS = ["shard", "cores", "status", "chip_cycles",
                      "instrs", "ipc", "power_w", "freq_ghz", "boost",
                      "throttled_epochs", "droop_trips"]
CHIP_CORE_COLUMNS = ["shard", "core", "cycles", "stall_cycles",
                     "eff_cycles", "instrs", "ipc", "power_w",
                     "freq_ghz"]


def validate_chip(path, doc, errors):
    """Merged sweep report over chip shards (cores >= 2): the full
    --sweep checks plus the chip rollup invariants — every per-core
    row must account exactly for its shard's instrs and cycles, stall
    counters can never go negative, and the chip power is the sum of
    its cores' power (within table-rounding tolerance: the cells hold
    values rounded to 3 decimals, so sum-of-rounded and
    rounded-of-sum legitimately differ by a few milliwatts)."""
    before = len(errors)
    validate_sweep(path, doc, errors)
    if len(errors) != before:
        return

    scalars = doc["scalars"]
    if not isinstance(scalars.get("chip.shards"), NUM):
        return _fail(errors, path,
                     "missing numeric scalar 'chip.shards'")

    shards_t = next((t for t in doc["tables"]
                     if t["title"] == "chip shards"), None)
    if shards_t is None:
        return _fail(errors, path, "no 'chip shards' table")
    if shards_t["columns"] != CHIP_SHARD_COLUMNS:
        return _fail(errors, path,
                     f"'chip shards' columns {shards_t['columns']} "
                     f"!= {CHIP_SHARD_COLUMNS}")
    cores_t = next((t for t in doc["tables"]
                    if t["title"] == "chip cores"), None)
    if cores_t is None:
        return _fail(errors, path, "no 'chip cores' table")
    if cores_t["columns"] != CHIP_CORE_COLUMNS:
        return _fail(errors, path,
                     f"'chip cores' columns {cores_t['columns']} "
                     f"!= {CHIP_CORE_COLUMNS}")

    if scalars["chip.shards"] != len(shards_t["rows"]):
        _fail(errors, path,
              f"chip.shards={scalars['chip.shards']} but the "
              f"'chip shards' table has {len(shards_t['rows'])} rows")

    sweep_ids = {row[0] for row in
                 next(t for t in doc["tables"]
                      if t["title"] == "sweep shards")["rows"]}

    # Group the per-core rows by owning shard id for the rollup checks.
    core_rows = {}
    for j, row in enumerate(cores_t["rows"]):
        try:
            cells = [row[0]] + [float(c) for c in row[1:]]
        except ValueError:
            _fail(errors, path,
                  f"'chip cores' rows[{j}] non-numeric cell")
            continue
        if cells[CHIP_CORE_COLUMNS.index("stall_cycles")] < 0:
            _fail(errors, path,
                  f"'chip cores' rows[{j}] negative stall_cycles")
        cycles = cells[CHIP_CORE_COLUMNS.index("cycles")]
        stall = cells[CHIP_CORE_COLUMNS.index("stall_cycles")]
        eff = cells[CHIP_CORE_COLUMNS.index("eff_cycles")]
        if eff != cycles + stall:
            _fail(errors, path,
                  f"'chip cores' rows[{j}] eff_cycles {eff:g} != "
                  f"cycles {cycles:g} + stall_cycles {stall:g}")
        core_rows.setdefault(row[0], []).append(cells)

    for j, row in enumerate(shards_t["rows"]):
        shard_id = row[0]
        if shard_id not in sweep_ids:
            _fail(errors, path,
                  f"'chip shards' rows[{j}] id '{shard_id}' missing "
                  f"from the 'sweep shards' table")
        try:
            cores = int(row[CHIP_SHARD_COLUMNS.index("cores")])
        except ValueError:
            _fail(errors, path,
                  f"'chip shards' rows[{j}] non-integer cores")
            continue
        if cores < 2:
            _fail(errors, path,
                  f"'chip shards' rows[{j}] cores={cores} < 2 — "
                  f"1-core shards must stay out of the chip tables")
        status = row[CHIP_SHARD_COLUMNS.index("status")]
        mine = core_rows.pop(shard_id, [])
        if status != "ok":
            if mine:
                _fail(errors, path,
                      f"failed chip shard '{shard_id}' has "
                      f"'chip cores' rows")
            continue
        if len(mine) != cores:
            _fail(errors, path,
                  f"chip shard '{shard_id}' has {len(mine)} "
                  f"'chip cores' rows, expected {cores}")
            continue
        instrs = float(row[CHIP_SHARD_COLUMNS.index("instrs")])
        chip_cycles = float(
            row[CHIP_SHARD_COLUMNS.index("chip_cycles")])
        power = float(row[CHIP_SHARD_COLUMNS.index("power_w")])
        i_instrs = CHIP_CORE_COLUMNS.index("instrs")
        i_eff = CHIP_CORE_COLUMNS.index("eff_cycles")
        i_power = CHIP_CORE_COLUMNS.index("power_w")
        if sum(c[i_instrs] for c in mine) != instrs:
            _fail(errors, path,
                  f"chip shard '{shard_id}' instrs {instrs:g} != sum "
                  f"of its per-core instrs")
        if max(c[i_eff] for c in mine) != chip_cycles:
            _fail(errors, path,
                  f"chip shard '{shard_id}' chip_cycles "
                  f"{chip_cycles:g} != max per-core eff_cycles — the "
                  f"chip finishes with its slowest core")
        power_sum = sum(c[i_power] for c in mine)
        if abs(power_sum - power) > 1e-3 * (cores + 1):
            _fail(errors, path,
                  f"chip shard '{shard_id}' power_w {power:g} != "
                  f"per-core sum {power_sum:g} beyond rounding "
                  f"tolerance")

    for shard_id in sorted(core_rows):
        _fail(errors, path,
              f"'chip cores' rows for '{shard_id}' with no matching "
              f"'chip shards' row")


FLEET_SCALARS = ["fleet.workers", "fleet.workers_dead",
                 "fleet.dispatched", "fleet.reassigned",
                 "fleet.skipped", "fleet.remote_cache_hits",
                 "fleet.remote_cache_puts", "fleet.local_shards",
                 "fleet.connect_failures", "fleet.protocol_errors"]


def validate_fleet(path, doc, errors):
    """Fleet provenance sidecar (p10fleet --fleet-stats): the default
    report checks — which include cache-provenance conservation —
    plus the fleet.* scalar set and its internal accounting."""
    before = len(errors)
    validate_report(path, doc, errors)
    if len(errors) != before:
        return

    scalars = doc["scalars"]
    for name in FLEET_SCALARS + ["sweep.shards", "sweep.cached",
                                 "sweep.simulated"]:
        value = scalars.get(name)
        if not isinstance(value, NUM) or isinstance(value, bool):
            _fail(errors, path, f"missing numeric scalar '{name}'")
        elif value < 0:
            _fail(errors, path, f"scalar '{name}' is negative")
    if len(errors) != before:
        return

    if scalars["fleet.workers_dead"] > scalars["fleet.workers"]:
        _fail(errors, path,
              "fleet.workers_dead exceeds fleet.workers")
    # Every shard was finished by a worker, run locally, or skipped —
    # and nothing was dispatched to a zero-worker fleet.
    if scalars["fleet.local_shards"] > scalars["sweep.shards"]:
        _fail(errors, path, "fleet.local_shards exceeds sweep.shards")
    if scalars["fleet.skipped"] > scalars["sweep.shards"]:
        _fail(errors, path, "fleet.skipped exceeds sweep.shards")
    if scalars["fleet.workers"] == 0 and scalars["fleet.dispatched"] > 0:
        _fail(errors, path,
              "fleet.dispatched > 0 with fleet.workers == 0")


def validate_trace(path, doc, errors):
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return _fail(errors, path, "no traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        return _fail(errors, path, "traceEvents empty")
    counters = 0
    thread_names = {}
    last_ts = {}
    counter_negative = False
    monotonic_bad = set()
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in ("M", "C", "X"):
            _fail(errors, path, f"traceEvents[{i}] unknown ph '{ph}'")
            continue
        if "name" not in e:
            _fail(errors, path, f"traceEvents[{i}] has no name")
        if ph == "M" and e.get("name") == "thread_name":
            args = e.get("args")
            if isinstance(args, dict):
                thread_names[e.get("tid")] = args.get("name", "")
        if ph == "C":
            counters += 1
            if not isinstance(e.get("ts"), NUM):
                _fail(errors, path, f"traceEvents[{i}] bad ts")
            args = e.get("args")
            if not isinstance(args, dict):
                _fail(errors, path, f"traceEvents[{i}] bad args")
            elif any(isinstance(v, NUM) and v < 0
                     for v in args.values()):
                counter_negative = True
        elif ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, NUM) or dur <= 0:
                _fail(errors, path, f"traceEvents[{i}] bad dur")
            ts = e.get("ts")
            if isinstance(ts, NUM):
                tid = e.get("tid")
                # Lanes are emitted begin-sorted, so within one tid the
                # slice timestamps must never step backwards.
                if ts < last_ts.get(tid, float("-inf")):
                    monotonic_bad.add(tid)
                last_ts[tid] = ts
    if counters == 0:
        _fail(errors, path, "trace has no counter events")

    # Distributed fleet traces name their root context in a
    # "trace:<id>" pseudo-thread; those traces additionally guarantee
    # hex-shaped ids, per-lane monotonic spans and non-negative
    # counters. Plain p10sim traces have no such thread and are exempt.
    trace_threads = [n for n in thread_names.values()
                     if isinstance(n, str) and n.startswith("trace:")]
    if trace_threads:
        for name in trace_threads:
            if not TRACE_THREAD_RE.match(name):
                _fail(errors, path,
                      f"trace thread '{name}' is not "
                      f"trace:<32 hex>-<16 hex>")
        for tid in sorted(monotonic_bad, key=str):
            _fail(errors, path,
                  f"slice timestamps not monotonic on lane "
                  f"'{thread_names.get(tid, tid)}'")
        if counter_negative:
            _fail(errors, path, "negative counter sample")


def validate_metrics(path, doc, errors):
    """Metrics-registry sidecar (--metrics-out): the default report
    checks plus non-negativity — every registry value (counter, gauge,
    histogram count/max/sum) is a tally that can never go below zero."""
    before = len(errors)
    validate_report(path, doc, errors)
    if len(errors) != before:
        return
    scalars = doc["scalars"]
    if not scalars:
        _fail(errors, path, "metrics sidecar has no scalars")
    for name, value in scalars.items():
        if not isinstance(value, NUM) or isinstance(value, bool):
            _fail(errors, path, f"metric '{name}' is not numeric")
        elif value < 0:
            _fail(errors, path, f"metric '{name}' is negative")


def validate_mode(path, doc, errors):
    """Fidelity-mode provenance (--mode): the default report checks
    plus SimMode coherence. A single-run report either omits meta.mode
    (full fidelity — power scalars allowed) or carries
    meta.mode == "fast_m1" with every power scalar absent, not zeroed.
    A merged sweep report with a "mode" column must hold valid mode
    cells, with the power_w cell "-" on exactly the fast_m1 rows."""
    before = len(errors)
    validate_report(path, doc, errors)
    if len(errors) != before:
        return

    meta = doc["meta"]
    scalars = doc["scalars"]
    power_scalars = sorted(
        n for n in scalars
        if n in ("power_w", "clock_w", "switch_w", "leak_w",
                 "ipc_per_w") or n.startswith("power."))
    if meta.get("mode") == "fast_m1" and power_scalars:
        _fail(errors, path,
              f"meta.mode is fast_m1 but power scalars "
              f"{power_scalars} are present — fast-mode power must be "
              f"absent, not zeroed")

    table = next((t for t in doc["tables"]
                  if t["title"] == "sweep shards"), None)
    if table is None or "mode" not in table["columns"]:
        return
    columns = table["columns"]
    i_mode = columns.index("mode")
    i_power = columns.index("power_w")
    i_status = columns.index("status")
    for j, row in enumerate(table["rows"]):
        cell = row[i_mode]
        if cell not in MODE_VALUES:
            _fail(errors, path,
                  f"'sweep shards' rows[{j}] mode '{cell}' not in "
                  f"{sorted(MODE_VALUES)}")
        elif row[i_status] == "ok":
            is_dash = row[i_power] == "-"
            if (cell == "fast_m1") != is_dash:
                _fail(errors, path,
                      f"'sweep shards' rows[{j}] mode '{cell}' with "
                      f"power_w '{row[i_power]}' — fast_m1 rows must "
                      f"render power as '-', full rows as a number")


def main(argv):
    args = argv[1:]
    mode = "report"
    if args and args[0] in ("--trace", "--sweep", "--chip",
                            "--trace-workload", "--fleet",
                            "--metrics", "--mode"):
        mode = args[0][2:]
        args = args[1:]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    validators = {
        "report": validate_report,
        "trace": validate_trace,
        "sweep": validate_sweep,
        "chip": validate_chip,
        "trace-workload": validate_trace_workload,
        "fleet": validate_fleet,
        "metrics": validate_metrics,
        "mode": validate_mode,
    }
    errors = []
    for path in args:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError) as exc:
            _fail(errors, path, f"unreadable: {exc}")
            continue
        validators[mode](path, doc, errors)

    if errors:
        for e in errors:
            print(f"validate_report: {e}", file=sys.stderr)
        print(f"validate_report: {len(errors)} problem(s) in "
              f"{len(args)} file(s)", file=sys.stderr)
        return 1
    print(f"validate_report: {len(args)} {mode} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
