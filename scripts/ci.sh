#!/usr/bin/env bash
# Local CI: build and test the tree twice — a plain Release build and
# an ASan+UBSan build — mirroring what a hosted pipeline would run.
# Any test failure or sanitizer report fails the script.
set -euo pipefail

cd "$(dirname "$0")/.."

run_flavour() {
    local name="$1"
    local tier="$2"
    shift 2
    echo "=== ${name}: configure ==="
    cmake -B "build-${name}" -S . "$@"
    echo "=== ${name}: build ==="
    cmake --build "build-${name}" -j "$(nproc)"
    if [ "${tier}" = "tier1" ]; then
        # Fast tier only (see tests/CMakeLists.txt labels): sanitizer
        # flavours re-check correctness, not the slow golden/property
        # sweeps, which run once in the release flavour below.
        echo "=== ${name}: ctest -L tier1 ==="
        ctest --test-dir "build-${name}" --output-on-failure \
            -j "$(nproc)" -L tier1
    else
        echo "=== ${name}: ctest (full) ==="
        ctest --test-dir "build-${name}" --output-on-failure \
            -j "$(nproc)"
    fi
}

# Daemon smoke: start p10d on an ephemeral port, submit the shared
# sweep spec through scripts/p10_client.py, schema-validate the report
# the daemon streams back, byte-compare it against the same flavour's
# offline p10sweep_cli output (never across flavours — FP contraction
# differs), query live stats, then SIGTERM and require a graceful
# drain with exit status 0.
daemon_smoke() {
    local build="$1"
    local tag="$2"
    local dir="${smoke_dir}/daemon-${tag}"
    rm -rf "${dir}"
    mkdir -p "${dir}"
    echo "=== daemon smoke (${tag}): p10d round-trip + graceful drain ==="
    "${build}/examples/p10d" --port 0 --executors 2 --jobs 2 \
        --cache-dir "${dir}/cache" \
        > "${dir}/p10d.out" 2> "${dir}/p10d.err" &
    local pid=$!
    local port=""
    for _ in $(seq 1 200); do
        port="$(sed -n \
            's/^p10d: listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
            "${dir}/p10d.out")"
        [ -n "${port}" ] && break
        kill -0 "${pid}" 2>/dev/null || break
        sleep 0.1
    done
    if [ -z "${port}" ]; then
        echo "daemon smoke (${tag}): p10d never announced its port" >&2
        cat "${dir}/p10d.err" >&2 || true
        kill "${pid}" 2>/dev/null || true
        return 1
    fi
    "${build}/examples/p10sweep_cli" \
        --spec "${smoke_dir}/sweep_smoke.json" --jobs 2 \
        --out "${dir}/CLI_sweep.json" >/dev/null
    python3 scripts/p10_client.py --port "${port}" --id ci-cold \
        --spec "${smoke_dir}/sweep_smoke.json" \
        --out "${dir}/DAEMON_cold.json" 2>/dev/null
    # Same cache dir, so the repeat must replay entirely from cache and
    # still produce the same bytes.
    python3 scripts/p10_client.py --port "${port}" --id ci-warm \
        --spec "${smoke_dir}/sweep_smoke.json" \
        --out "${dir}/DAEMON_warm.json" 2> "${dir}/warm.log"
    grep -q "done (cached 16, simulated 0)" "${dir}/warm.log"
    python3 scripts/validate_report.py --sweep \
        "${dir}/DAEMON_cold.json" "${dir}/DAEMON_warm.json"
    cmp "${dir}/CLI_sweep.json" "${dir}/DAEMON_cold.json"
    cmp "${dir}/CLI_sweep.json" "${dir}/DAEMON_warm.json"
    python3 scripts/p10_client.py --port "${port}" --stats \
        > "${dir}/stats.json"
    python3 - "${dir}/stats.json" <<'EOF'
import json, sys
stats = json.load(open(sys.argv[1]))
assert stats["event"] == "stats", stats
assert stats["completed"] == 2, stats
assert stats["simulated_shards"] == 16, stats
assert stats["cached_shards"] == 16, stats
print("daemon stats: 2 completed, 16 simulated + 16 cached shards")
EOF
    kill -TERM "${pid}"
    local status=0
    wait "${pid}" || status=$?
    if [ "${status}" -ne 0 ]; then
        echo "daemon smoke (${tag}): p10d exited ${status} on SIGTERM" >&2
        return 1
    fi
    echo "daemon smoke (${tag}): byte-identical reports, clean drain"
}

# Fleet smoke: spawn a 2-worker p10d fleet through p10fleet, SIGKILL
# one worker mid-sweep via the built-in chaos harness, and require a
# zero exit with a merged report byte-identical to the same flavour's
# offline p10sweep_cli output. Then the same chaos run with the flight
# recorder on (--trace-out/--metrics-out): the merged bytes must not
# move, the Perfetto sidecar and the metrics sidecar must validate,
# and the metrics counters must agree exactly with the fleet-stats
# sidecar from the same run. Then the degradation ladder's far end:
# zero workers must complete in-process, exit 0, same bytes again.
fleet_smoke() {
    local build="$1"
    local tag="$2"
    local dir="${smoke_dir}/fleet-${tag}"
    rm -rf "${dir}"
    mkdir -p "${dir}"
    echo "=== fleet smoke (${tag}): chaos kill + degraded byte identity ==="
    "${build}/examples/p10sweep_cli" \
        --spec "${smoke_dir}/sweep_smoke.json" --jobs 2 \
        --out "${dir}/CLI_sweep.json" >/dev/null
    "${build}/examples/p10fleet" \
        --spec "${smoke_dir}/sweep_smoke.json" --spawn 2 \
        --chaos-kill "0@150" --heartbeat-ms 50 \
        --out "${dir}/FLEET_chaos.json" \
        --fleet-stats "${dir}/FLEET_stats.json" \
        > "${dir}/fleet.out" 2> "${dir}/fleet.err"
    cmp "${dir}/CLI_sweep.json" "${dir}/FLEET_chaos.json"
    python3 scripts/validate_report.py --fleet "${dir}/FLEET_stats.json"
    "${build}/examples/p10fleet" \
        --spec "${smoke_dir}/sweep_smoke.json" --spawn 2 \
        --chaos-kill "0@150" --heartbeat-ms 50 \
        --out "${dir}/FLEET_traced.json" \
        --fleet-stats "${dir}/FLEET_traced_stats.json" \
        --trace-out "${dir}/FLEET_trace.json" \
        --metrics-out "${dir}/FLEET_metrics.json" \
        > /dev/null 2> "${dir}/traced.err"
    # Tracing is a pure observer: same bytes as the untraced CLI run.
    cmp "${dir}/CLI_sweep.json" "${dir}/FLEET_traced.json"
    python3 scripts/validate_report.py --trace "${dir}/FLEET_trace.json"
    python3 scripts/validate_report.py --metrics "${dir}/FLEET_metrics.json"
    python3 - "${dir}/FLEET_metrics.json" \
        "${dir}/FLEET_traced_stats.json" <<'EOF'
import json, sys
metrics = json.load(open(sys.argv[1]))["scalars"]
stats = json.load(open(sys.argv[2]))["scalars"]
# The registry counters and the runner's own stats are two independent
# recorders of the same run — they must agree exactly (absent metric
# keys mean the counter never fired, i.e. zero).
for metric, stat in [("fleet.requeues", "fleet.reassigned"),
                     ("fleet.skips", "fleet.skipped"),
                     ("fleet.retirements", "fleet.workers_dead")]:
    assert metrics.get(metric, 0) == stats[stat], (metric, metrics, stats)
print("fleet metrics: counters agree with fleet stats "
      f"(requeues {metrics.get('fleet.requeues', 0)}, "
      f"lease expiries {metrics.get('fleet.lease_expiries', 0)})")
EOF
    "${build}/examples/p10fleet" \
        --spec "${smoke_dir}/sweep_smoke.json" --local-jobs 2 \
        --out "${dir}/FLEET_degraded.json" \
        > /dev/null 2> "${dir}/degraded.err"
    grep -q "no workers configured" "${dir}/degraded.err"
    cmp "${dir}/CLI_sweep.json" "${dir}/FLEET_degraded.json"
    echo "fleet smoke (${tag}): chaos and degraded runs byte-identical"
}

# Chip smoke: the multi-core chip path end to end on one flavour's
# binaries. An explicit "cores": [1] axis must leave the merged report
# byte-identical to the same spec without the axis (the chip(1) ==
# bare-core identity contract keeps 1-core sweeps on the exact
# historical bytes); a 4-core chip sweep must be byte-identical at any
# --jobs and cold vs warm shard cache, and must pass the --chip rollup
# validation; and the same chip spec through a spawned 2-worker p10d
# fleet must reproduce the CLI bytes. Own spec files throughout — the
# daemon smoke's cache assertions count shards on the shared spec.
chip_smoke() {
    local build="$1"
    local tag="$2"
    local dir="${smoke_dir}/chip-${tag}"
    rm -rf "${dir}"
    mkdir -p "${dir}"
    echo "=== chip smoke (${tag}): 1-core identity + 4-core byte stability ==="
    cat > "${dir}/core_spec.json" <<'EOF'
{
  "configs": ["power10"],
  "workloads": ["xz", "mcf"],
  "smt": [1, 2],
  "seeds": 1,
  "instrs": 3000,
  "warmup": 500,
  "seed": 7
}
EOF
    sed 's/"smt": \[1, 2\],/"smt": [1, 2],\n  "cores": [1],/' \
        "${dir}/core_spec.json" > "${dir}/core1_spec.json"
    sed 's/"smt": \[1, 2\],/"smt": [1, 2],\n  "cores": [4],/' \
        "${dir}/core_spec.json" > "${dir}/chip_spec.json"
    "${build}/examples/p10sweep_cli" --spec "${dir}/core_spec.json" \
        --jobs 2 --out "${dir}/CORE.json" >/dev/null
    "${build}/examples/p10sweep_cli" --spec "${dir}/core1_spec.json" \
        --jobs 2 --out "${dir}/CORE_c1.json" >/dev/null
    cmp "${dir}/CORE.json" "${dir}/CORE_c1.json"
    "${build}/examples/p10sweep_cli" --spec "${dir}/chip_spec.json" \
        --jobs 1 --out "${dir}/CHIP_j1.json" >/dev/null
    rm -rf "${dir}/cache"
    "${build}/examples/p10sweep_cli" --spec "${dir}/chip_spec.json" \
        --jobs 4 --cache-dir "${dir}/cache" \
        --out "${dir}/CHIP_cold.json" >/dev/null
    "${build}/examples/p10sweep_cli" --spec "${dir}/chip_spec.json" \
        --jobs 4 --cache-dir "${dir}/cache" \
        --out "${dir}/CHIP_warm.json" >/dev/null
    cmp "${dir}/CHIP_j1.json" "${dir}/CHIP_cold.json"
    cmp "${dir}/CHIP_cold.json" "${dir}/CHIP_warm.json"
    python3 scripts/validate_report.py --chip "${dir}/CHIP_cold.json"
    "${build}/examples/p10fleet" --spec "${dir}/chip_spec.json" \
        --spawn 2 --out "${dir}/CHIP_fleet.json" \
        > /dev/null 2> "${dir}/fleet.err"
    cmp "${dir}/CHIP_j1.json" "${dir}/CHIP_fleet.json"
    echo "chip smoke (${tag}): 1-core identical to bare core, 4-core stable"
}

# Trace smoke: the full ingestion loop on one flavour's binaries.
# Record a synthetic workload into a p10trace/1 container, sweep it as
# a trace:<path> workload (byte-identical at any --jobs, cold vs warm
# cache, and through a 2-worker fleet), schema-validate the trace
# provenance in the merged report, round-trip a warmup checkpoint over
# the replay, then re-extract a snippet and sweep that as its own
# trace workload. Finally cross-check the wire format against the
# stdlib-only Python tooling: a container hand-built by p10_trace.py
# must verify and replay in C++.
trace_smoke() {
    local build="$1"
    local tag="$2"
    local dir="${smoke_dir}/trace-${tag}"
    rm -rf "${dir}"
    mkdir -p "${dir}"
    echo "=== trace smoke (${tag}): record/replay/extract round trip ==="
    "${build}/examples/p10trace_cli" record --workload xz \
        --instrs 20000 --out "${dir}/xz.p10trace" 2>/dev/null
    "${build}/examples/p10trace_cli" info --in "${dir}/xz.p10trace" \
        >/dev/null
    "${build}/examples/p10trace_cli" verify --in "${dir}/xz.p10trace" \
        >/dev/null
    cat > "${dir}/trace_sweep.json" <<EOF
{
  "configs": ["power10"],
  "workloads": ["trace:${dir}/xz.p10trace"],
  "smt": [1, 2],
  "seeds": 2,
  "instrs": 3000,
  "warmup": 500,
  "seed": 7
}
EOF
    "${build}/examples/p10sweep_cli" --spec "${dir}/trace_sweep.json" \
        --jobs 1 --out "${dir}/TRACE_j1.json" >/dev/null
    "${build}/examples/p10sweep_cli" --spec "${dir}/trace_sweep.json" \
        --jobs 4 --out "${dir}/TRACE_j4.json" >/dev/null
    cmp "${dir}/TRACE_j1.json" "${dir}/TRACE_j4.json"
    rm -rf "${dir}/cache"
    "${build}/examples/p10sweep_cli" --spec "${dir}/trace_sweep.json" \
        --jobs 4 --cache-dir "${dir}/cache" \
        --out "${dir}/TRACE_cold.json" >/dev/null
    "${build}/examples/p10sweep_cli" --spec "${dir}/trace_sweep.json" \
        --jobs 4 --cache-dir "${dir}/cache" \
        --out "${dir}/TRACE_warm.json" >/dev/null
    cmp "${dir}/TRACE_cold.json" "${dir}/TRACE_warm.json"
    cmp "${dir}/TRACE_j1.json" "${dir}/TRACE_warm.json"
    python3 scripts/validate_report.py --trace-workload \
        "${dir}/TRACE_j1.json"
    "${build}/examples/p10fleet" --spec "${dir}/trace_sweep.json" \
        --spawn 2 --out "${dir}/TRACE_fleet.json" \
        > /dev/null 2> "${dir}/fleet.err"
    cmp "${dir}/TRACE_j1.json" "${dir}/TRACE_fleet.json"
    # Checkpoint the replay after warmup; the restored measured window
    # must be bit-identical to the saving run's.
    "${build}/examples/p10sim_cli" \
        --workload "trace:${dir}/xz.p10trace" --instrs 3000 \
        --warmup 2000 --csv --ckpt-save "${dir}/warm.ckpt" \
        > "${dir}/CKPT_save.csv" 2>/dev/null
    "${build}/examples/p10sim_cli" \
        --workload "trace:${dir}/xz.p10trace" --instrs 3000 \
        --warmup 2000 --csv --ckpt-load "${dir}/warm.ckpt" \
        > "${dir}/CKPT_load.csv" 2>/dev/null
    cmp "${dir}/CKPT_save.csv" "${dir}/CKPT_load.csv"
    # Snippet re-extraction: mine the hot loop, then sweep the snippet
    # as its own trace workload.
    "${build}/examples/p10trace_cli" extract --in "${dir}/xz.p10trace" \
        --out-dir "${dir}/snips" --report "${dir}/EXTRACT.json" \
        >/dev/null 2>&1
    python3 scripts/validate_report.py "${dir}/EXTRACT.json"
    local snippet
    snippet="$(ls "${dir}/snips/"*.p10trace | head -n 1)"
    "${build}/examples/p10trace_cli" verify --in "${snippet}" >/dev/null
    cat > "${dir}/snip_sweep.json" <<EOF
{
  "configs": ["power10"],
  "workloads": ["trace:${snippet}"],
  "smt": [1],
  "seeds": 1,
  "instrs": 2000,
  "warmup": 500,
  "seed": 7
}
EOF
    "${build}/examples/p10sweep_cli" --spec "${dir}/snip_sweep.json" \
        --jobs 2 --out "${dir}/SNIP_sweep.json" >/dev/null
    python3 scripts/validate_report.py --trace-workload \
        "${dir}/SNIP_sweep.json"
    # Cross-language wire-format pin: a container hand-built by the
    # stdlib-only Python tool must verify and replay in C++.
    python3 scripts/p10_trace.py synth --out "${dir}/py.p10trace" \
        --iters 40 >/dev/null
    "${build}/examples/p10trace_cli" verify --in "${dir}/py.p10trace" \
        >/dev/null
    python3 scripts/p10_trace.py info "${dir}/xz.p10trace" \
        "${dir}/py.p10trace" >/dev/null
    "${build}/examples/p10sim_cli" \
        --workload "trace:${dir}/py.p10trace" --instrs 2000 \
        --warmup 500 --csv >/dev/null 2>&1
    echo "trace smoke (${tag}): record/sweep/ckpt/extract byte-stable"
}

# Mode smoke: the FastM1 raw-speed path (api::SimMode::FastM1) must be
# architecturally byte-identical to Full fidelity — same instruction
# stream, same cycles, same IPC — with the power/telemetry results
# absent, not zeroed. Checked per flavour: single-run CSV identity
# (full output minus its power rows IS the fast output), cross-mode
# checkpoint restore in both directions, sweep byte-stability at any
# --jobs and cold-vs-warm cache, per-shard architectural agreement
# with the full-mode sweep, a live fleet round-trip, and structured
# "mode" field errors for hostile values at the CLI and spec layers.
mode_smoke() {
    local build="$1"
    local tag="$2"
    local dir="${smoke_dir}/mode-${tag}"
    rm -rf "${dir}"
    mkdir -p "${dir}"
    echo "=== mode smoke (${tag}): fast_m1 vs full architectural identity ==="
    "${build}/examples/p10sim_cli" --workload xz --smt 2 \
        --instrs 5000 --warmup 1000 --csv --mode full \
        > "${dir}/FULL.csv" 2>/dev/null
    "${build}/examples/p10sim_cli" --workload xz --smt 2 \
        --instrs 5000 --warmup 1000 --csv --mode fast_m1 \
        > "${dir}/FAST.csv" 2>/dev/null
    grep -vE '^(power_w|clock_w|switch_w|leak_w|ipc_per_w),' \
        "${dir}/FULL.csv" > "${dir}/FULL_arch.csv"
    cmp "${dir}/FULL_arch.csv" "${dir}/FAST.csv"
    # Cross-mode checkpoints: the state schema carries no power
    # counters, so a warmup snapshot saved in one mode must restore in
    # the other with a bit-identical measured window.
    "${build}/examples/p10sim_cli" --workload xz --instrs 3000 \
        --warmup 2000 --csv --mode fast_m1 \
        --ckpt-save "${dir}/fast.ckpt" \
        > "${dir}/SAVE_fast.csv" 2>/dev/null
    "${build}/examples/p10sim_cli" --workload xz --instrs 3000 \
        --warmup 2000 --csv --mode full \
        --ckpt-load "${dir}/fast.ckpt" \
        > "${dir}/LOAD_full.csv" 2>/dev/null
    grep -vE '^(power_w|clock_w|switch_w|leak_w|ipc_per_w),' \
        "${dir}/LOAD_full.csv" > "${dir}/LOAD_full_arch.csv"
    cmp "${dir}/SAVE_fast.csv" "${dir}/LOAD_full_arch.csv"
    "${build}/examples/p10sim_cli" --workload xz --instrs 3000 \
        --warmup 2000 --csv --mode full \
        --ckpt-save "${dir}/full.ckpt" \
        > "${dir}/SAVE_full.csv" 2>/dev/null
    "${build}/examples/p10sim_cli" --workload xz --instrs 3000 \
        --warmup 2000 --csv --mode fast_m1 \
        --ckpt-load "${dir}/full.ckpt" \
        > "${dir}/LOAD_fast.csv" 2>/dev/null
    grep -vE '^(power_w|clock_w|switch_w|leak_w|ipc_per_w),' \
        "${dir}/SAVE_full.csv" > "${dir}/SAVE_full_arch.csv"
    cmp "${dir}/SAVE_full_arch.csv" "${dir}/LOAD_fast.csv"
    # Sweep: fast_m1 byte-stable at any --jobs, cold vs warm cache,
    # and through a live fleet; architecturally identical per shard to
    # the full-mode sweep of the same spec.
    sed 's/"seed": 7/"mode": ["fast_m1"],\n  "seed": 7/' \
        "${smoke_dir}/sweep_smoke.json" > "${dir}/fast_sweep.json"
    "${build}/examples/p10sweep_cli" \
        --spec "${smoke_dir}/sweep_smoke.json" --jobs 2 \
        --out "${dir}/SWEEP_full.json" >/dev/null
    "${build}/examples/p10sweep_cli" --spec "${dir}/fast_sweep.json" \
        --jobs 1 --out "${dir}/SWEEP_fast_j1.json" >/dev/null
    rm -rf "${dir}/cache"
    "${build}/examples/p10sweep_cli" --spec "${dir}/fast_sweep.json" \
        --jobs 4 --cache-dir "${dir}/cache" \
        --out "${dir}/SWEEP_fast_cold.json" >/dev/null
    "${build}/examples/p10sweep_cli" --spec "${dir}/fast_sweep.json" \
        --jobs 4 --cache-dir "${dir}/cache" \
        --out "${dir}/SWEEP_fast_warm.json" >/dev/null
    cmp "${dir}/SWEEP_fast_j1.json" "${dir}/SWEEP_fast_cold.json"
    cmp "${dir}/SWEEP_fast_cold.json" "${dir}/SWEEP_fast_warm.json"
    python3 scripts/validate_report.py --sweep \
        "${dir}/SWEEP_fast_j1.json"
    python3 scripts/validate_report.py --mode \
        "${dir}/SWEEP_fast_j1.json" "${dir}/SWEEP_full.json"
    python3 - "${dir}/SWEEP_full.json" "${dir}/SWEEP_fast_j1.json" <<'EOF'
import json, sys
full = json.load(open(sys.argv[1]))
fast = json.load(open(sys.argv[2]))
ft = next(t for t in full["tables"] if t["title"] == "sweep shards")
st = next(t for t in fast["tables"] if t["title"] == "sweep shards")
fc, sc = ft["columns"], st["columns"]
assert "mode" not in fc and "mode" in sc, (fc, sc)
arch = ["config", "workload", "smt", "seed", "status", "retries",
        "cycles", "ipc"]
f_rows = [[r[fc.index(a)] for a in arch] for r in ft["rows"]]
s_rows = [[r[sc.index(a)] for a in arch] for r in st["rows"]]
assert f_rows == s_rows, "fast_m1 diverged architecturally from full"
assert all(r[sc.index("power_w")] == "-" for r in st["rows"])
print(f"mode smoke: {len(s_rows)} fast_m1 shards architecturally "
      "identical to full")
EOF
    "${build}/examples/p10fleet" --spec "${dir}/fast_sweep.json" \
        --spawn 2 --out "${dir}/SWEEP_fast_fleet.json" \
        > /dev/null 2> "${dir}/fleet.err"
    cmp "${dir}/SWEEP_fast_j1.json" "${dir}/SWEEP_fast_fleet.json"
    # Hostile mode values: rejected with a structured "mode" field
    # error at the CLI flag and spec JSON layers (the wire protocol's
    # rejection is pinned by test_service).
    if "${build}/examples/p10sim_cli" --workload xz --instrs 1000 \
        --mode turbo > /dev/null 2> "${dir}/bad_cli.err"; then
        echo "mode smoke (${tag}): hostile --mode accepted" >&2
        return 1
    fi
    grep -q 'field: mode' "${dir}/bad_cli.err"
    sed 's/"fast_m1"/"warp9"/' "${dir}/fast_sweep.json" \
        > "${dir}/bad_sweep.json"
    if "${build}/examples/p10sweep_cli" \
        --spec "${dir}/bad_sweep.json" --jobs 1 \
        > /dev/null 2> "${dir}/bad_spec.err"; then
        echo "mode smoke (${tag}): hostile spec mode accepted" >&2
        return 1
    fi
    grep -q 'field: mode' "${dir}/bad_spec.err"
    echo "mode smoke (${tag}): fast_m1 architecturally byte-identical"
}

run_flavour release full -DCMAKE_BUILD_TYPE=Release

# Bench smoke: every bench binary must run on a tiny budget and emit a
# schema-valid machine-readable report; the CLI must emit a loadable
# Perfetto trace. Validation failures fail CI — schema drift breaks
# here instead of in downstream consumers.
echo "=== bench smoke: JSON reports + trace validation ==="
smoke_dir="build-release/bench-smoke"
mkdir -p "${smoke_dir}"
for bench in build-release/bench/bench_*; do
    { [ -f "${bench}" ] && [ -x "${bench}" ]; } || continue
    name="$(basename "${bench}")"
    json="${smoke_dir}/BENCH_${name#bench_}.json"
    case "${name}" in
    bench_micro_kernels)
        args=(--out "${json}" --benchmark_min_time=0.01)
        ;;
    bench_fault_campaign)
        # --instrs scales the injection count for this bench.
        args=(--out "${json}" --instrs 30 --warmup 500)
        ;;
    *)
        args=(--out "${json}" --instrs 3000 --warmup 500)
        ;;
    esac
    echo "--- smoke: ${name}"
    "${bench}" "${args[@]}" >/dev/null
done
echo "--- smoke: p10sim_cli --trace-out/--out"
build-release/examples/p10sim_cli --workload perlbench \
    --instrs 20000 --warmup 5000 --sample-interval 512 \
    --trace-out "${smoke_dir}/trace.json" \
    --out "${smoke_dir}/CLI_p10sim.json" >/dev/null
echo "--- smoke: p10sim_cli --mode fast_m1 --out"
build-release/examples/p10sim_cli --workload perlbench \
    --instrs 20000 --warmup 5000 --mode fast_m1 \
    --out "${smoke_dir}/CLI_fast.json" >/dev/null
python3 scripts/validate_report.py \
    "${smoke_dir}"/BENCH_*.json "${smoke_dir}"/CLI_*.json
python3 scripts/validate_report.py --trace "${smoke_dir}/trace.json"
# Fidelity-mode provenance: the fast report must carry meta.mode with
# its power scalars absent; the full report must stay mode-free.
python3 scripts/validate_report.py --mode \
    "${smoke_dir}/CLI_fast.json" "${smoke_dir}/CLI_p10sim.json"

# Sweep smoke: the merged report must be byte-identical at any --jobs
# value (same build flavour — never compare across flavours, FP
# contraction differs) and pass the sweep-specific schema checks.
echo "=== sweep smoke: --jobs determinism + merged-report validation ==="
cat > "${smoke_dir}/sweep_smoke.json" <<'EOF'
{
  "configs": ["power9", "power10"],
  "workloads": ["perlbench", "mcf"],
  "smt": [1, 2],
  "seeds": 2,
  "instrs": 3000,
  "warmup": 500,
  "seed": 7
}
EOF
build-release/examples/p10sweep_cli --spec "${smoke_dir}/sweep_smoke.json" \
    --jobs 1 --out "${smoke_dir}/SWEEP_j1.json" >/dev/null
build-release/examples/p10sweep_cli --spec "${smoke_dir}/sweep_smoke.json" \
    --jobs 8 --out "${smoke_dir}/SWEEP_j8.json" >/dev/null
cmp "${smoke_dir}/SWEEP_j1.json" "${smoke_dir}/SWEEP_j8.json"
python3 scripts/validate_report.py --sweep "${smoke_dir}/SWEEP_j1.json"

# Cache smoke: a cold run populates the shard cache, a warm re-run must
# simulate zero shards, and both merged reports must be byte-identical
# to each other and to the cache-less runs above. The --cache-stats
# sidecars carry the provenance split, checked for conservation by the
# validator.
echo "=== cache smoke: warm-vs-cold byte identity ==="
rm -rf "${smoke_dir}/shard-cache"
build-release/examples/p10sweep_cli --spec "${smoke_dir}/sweep_smoke.json" \
    --jobs 8 --out "${smoke_dir}/SWEEP_cold.json" \
    --cache-dir "${smoke_dir}/shard-cache" \
    --cache-stats "${smoke_dir}/CACHE_cold.json" >/dev/null
build-release/examples/p10sweep_cli --spec "${smoke_dir}/sweep_smoke.json" \
    --jobs 8 --out "${smoke_dir}/SWEEP_warm.json" \
    --cache-dir "${smoke_dir}/shard-cache" \
    --cache-stats "${smoke_dir}/CACHE_warm.json" >/dev/null
cmp "${smoke_dir}/SWEEP_cold.json" "${smoke_dir}/SWEEP_warm.json"
cmp "${smoke_dir}/SWEEP_j1.json" "${smoke_dir}/SWEEP_warm.json"
python3 scripts/validate_report.py \
    "${smoke_dir}/CACHE_cold.json" "${smoke_dir}/CACHE_warm.json"
python3 - "${smoke_dir}/CACHE_cold.json" "${smoke_dir}/CACHE_warm.json" \
    <<'EOF'
import json, sys
cold = json.load(open(sys.argv[1]))["scalars"]
warm = json.load(open(sys.argv[2]))["scalars"]
assert cold["sweep.cached"] == 0, cold
assert cold["sweep.simulated"] == cold["sweep.shards"], cold
assert warm["sweep.simulated"] == 0, warm
assert warm["sweep.cached"] == warm["sweep.shards"], warm
print("cache smoke: cold simulated all, warm simulated none")
EOF

daemon_smoke build-release release
fleet_smoke build-release release
trace_smoke build-release release
chip_smoke build-release release
mode_smoke build-release release

# Bench baseline diff: the committed baseline is the bench_merge of
# the fleet-throughput and core-MIPS reports, so CI merges the same
# two smoke artifacts and tolerance-diffs the union — catches a bench
# that silently stops measuring, emits zeros, or regresses by an
# order of magnitude, while tolerating host-to-host variance.
echo "=== bench baseline diff: fleet + core MIPS vs committed baseline ==="
python3 scripts/bench_merge.py --out "${smoke_dir}/BENCH_merged.json" \
    "${smoke_dir}/BENCH_fleet.json" "${smoke_dir}/BENCH_core_mips.json"
python3 scripts/bench_diff.py BENCH_2026-08-07.json \
    "${smoke_dir}/BENCH_merged.json"

# halt_on_error makes any UBSan finding fail ctest instead of printing
# and continuing; detect_leaks stays on by default under ASan.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
run_flavour asan-ubsan tier1 -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DP10EE_SANITIZE=address,undefined

daemon_smoke build-asan-ubsan asan-ubsan
fleet_smoke build-asan-ubsan asan-ubsan
trace_smoke build-asan-ubsan asan-ubsan
chip_smoke build-asan-ubsan asan-ubsan
mode_smoke build-asan-ubsan asan-ubsan

# The hostile-input surfaces (checkpoint/cache/trace deserializers,
# spec parsing) must also hold under the sanitizers, and their fuzz
# tests are tier1-labelled — but be explicit here so a label change
# cannot silently drop them from sanitizer coverage.
echo "=== asan-ubsan: hostile-input fuzz suites ==="
build-asan-ubsan/tests/test_ckpt \
    --gtest_filter='*Fuzz*:*Corrupt*:*Truncat*' >/dev/null
build-asan-ubsan/tests/test_sweep_cache \
    --gtest_filter='*Fuzz*:*Corrupt*:*Stale*' >/dev/null
build-asan-ubsan/tests/test_trace \
    --gtest_filter='TraceHostile.*' >/dev/null
build-asan-ubsan/tests/test_chip \
    --gtest_filter='ChipCkptHostile.*' >/dev/null

# TSan flavour: only the parallel paths (thread pool, sweep runner,
# parallel fault campaign) need race coverage, so build just those
# targets instead of the whole tree. gtest_discover_tests does not
# cooperate with partial builds, so the test binary runs directly.
echo "=== tsan: configure + build parallel targets ==="
export TSAN_OPTIONS="halt_on_error=1"
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DP10EE_SANITIZE=thread
cmake --build build-tsan -j "$(nproc)" \
    --target test_sweep test_service test_fabric test_obs test_chip \
    bench_fault_campaign p10sweep_cli p10d p10fleet \
    p10trace_cli p10sim_cli
echo "=== tsan: test_sweep ==="
build-tsan/tests/test_sweep
echo "=== tsan: test_service (daemon thread model) ==="
build-tsan/tests/test_service
echo "=== tsan: test_fabric (coordinator/worker thread model) ==="
build-tsan/tests/test_fabric
echo "=== tsan: test_obs (metrics registry + span recorder) ==="
build-tsan/tests/test_obs
echo "=== tsan: test_chip (epoch barriers + per-core recorders) ==="
build-tsan/tests/test_chip
echo "=== tsan: parallel campaign + sweep smoke ==="
build-tsan/bench/bench_fault_campaign --instrs 20 --warmup 500 \
    --jobs 4 >/dev/null
build-tsan/examples/p10sweep_cli --spec "${smoke_dir}/sweep_smoke.json" \
    --jobs 4 >/dev/null

daemon_smoke build-tsan tsan
fleet_smoke build-tsan tsan
trace_smoke build-tsan tsan
chip_smoke build-tsan tsan
mode_smoke build-tsan tsan

echo "=== CI green: release + asan-ubsan + tsan ==="
