#!/usr/bin/env bash
# Local CI: build and test the tree twice — a plain Release build and
# an ASan+UBSan build — mirroring what a hosted pipeline would run.
# Any test failure or sanitizer report fails the script.
set -euo pipefail

cd "$(dirname "$0")/.."

run_flavour() {
    local name="$1"
    shift
    echo "=== ${name}: configure ==="
    cmake -B "build-${name}" -S . "$@"
    echo "=== ${name}: build ==="
    cmake --build "build-${name}" -j "$(nproc)"
    echo "=== ${name}: ctest ==="
    ctest --test-dir "build-${name}" --output-on-failure -j "$(nproc)"
}

run_flavour release -DCMAKE_BUILD_TYPE=Release

# halt_on_error makes any UBSan finding fail ctest instead of printing
# and continuing; detect_leaks stays on by default under ASan.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
run_flavour asan-ubsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DP10EE_SANITIZE=address,undefined

echo "=== CI green: release + asan-ubsan ==="
