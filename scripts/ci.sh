#!/usr/bin/env bash
# Local CI: build and test the tree twice — a plain Release build and
# an ASan+UBSan build — mirroring what a hosted pipeline would run.
# Any test failure or sanitizer report fails the script.
set -euo pipefail

cd "$(dirname "$0")/.."

run_flavour() {
    local name="$1"
    shift
    echo "=== ${name}: configure ==="
    cmake -B "build-${name}" -S . "$@"
    echo "=== ${name}: build ==="
    cmake --build "build-${name}" -j "$(nproc)"
    echo "=== ${name}: ctest ==="
    ctest --test-dir "build-${name}" --output-on-failure -j "$(nproc)"
}

run_flavour release -DCMAKE_BUILD_TYPE=Release

# Bench smoke: every bench binary must run on a tiny budget and emit a
# schema-valid machine-readable report; the CLI must emit a loadable
# Perfetto trace. Validation failures fail CI — schema drift breaks
# here instead of in downstream consumers.
echo "=== bench smoke: JSON reports + trace validation ==="
smoke_dir="build-release/bench-smoke"
mkdir -p "${smoke_dir}"
for bench in build-release/bench/bench_*; do
    { [ -f "${bench}" ] && [ -x "${bench}" ]; } || continue
    name="$(basename "${bench}")"
    json="${smoke_dir}/BENCH_${name#bench_}.json"
    case "${name}" in
    bench_micro_kernels)
        args=(--json "${json}" --benchmark_min_time=0.01)
        ;;
    bench_fault_campaign)
        # --instrs scales the injection count for this bench.
        args=(--json "${json}" --instrs 30 --warmup 500)
        ;;
    *)
        args=(--json "${json}" --instrs 3000 --warmup 500)
        ;;
    esac
    echo "--- smoke: ${name}"
    "${bench}" "${args[@]}" >/dev/null
done
echo "--- smoke: p10sim_cli --trace-out/--stats-json"
build-release/examples/p10sim_cli --workload perlbench \
    --instrs 20000 --warmup 5000 --sample-interval 512 \
    --trace-out "${smoke_dir}/trace.json" \
    --stats-json "${smoke_dir}/CLI_p10sim.json" >/dev/null
python3 scripts/validate_report.py \
    "${smoke_dir}"/BENCH_*.json "${smoke_dir}"/CLI_*.json
python3 scripts/validate_report.py --trace "${smoke_dir}/trace.json"

# halt_on_error makes any UBSan finding fail ctest instead of printing
# and continuing; detect_leaks stays on by default under ASan.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
run_flavour asan-ubsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DP10EE_SANITIZE=address,undefined

echo "=== CI green: release + asan-ubsan ==="
