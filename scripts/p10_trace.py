#!/usr/bin/env python3
"""Inspect and synthesize p10trace/1 containers without the C++ tree.

A p10trace/1 file (src/trace/container.h) is:

  magic "P10TRACE" | u32 format version
  | str name | str dialect | str source        (str = u32 length + bytes)
  | u64 instr count | u64 content hash | u8 encoding | u32 chunks
  | per chunk: u32 instr count | u64 byte length | encoded bytes
  | u64 FNV-1a/64 checksum over everything before it

all little-endian. The content hash is the FNV-1a/64 digest of every
instruction's canonical 43-byte record in stream order, independent of
the chunk encoding.

Subcommands:

  info FILE [...]         parse + checksum-verify the envelope and print
                          its fields; for raw-encoded files the content
                          hash is recomputed record by record and
                          cross-checked against the stored value.
  records FILE [--limit N]
                          dump decoded canonical records of a
                          raw-encoded file, one per line.
  synth --out FILE [--iters N] [--name NAME]
                          hand-build a tiny raw-encoded loop trace (an
                          8-instruction L1-contained loop body iterated
                          N times) that p10trace_cli verify accepts and
                          trace:<FILE> replays — the cross-language
                          fixture CI uses to pin the wire format.

Exits non-zero on any malformed file. Stdlib only.
"""

import argparse
import struct
import sys

MAGIC = b"P10TRACE"
FORMAT_VERSION = 1
ENCODING_RAW = 0
ENCODING_DELTA = 1
CANONICAL_BYTES = 43

FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3
MASK64 = (1 << 64) - 1

# isa::OpClass (src/isa/op.h) — declaration order is the wire value.
OP_CLASSES = [
    "IntAlu", "IntMul", "IntDiv", "Load", "Store", "Load32B",
    "Store32B", "Branch", "BranchIndirect", "FpScalar", "VsuFp",
    "VsuInt", "MmaGer", "MmaMove", "CryptoDfu", "System", "Nop",
]
REG_NONE = 0xFFFF


def fnv1a(data, h=FNV_OFFSET):
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK64
    return h


class Reader:
    """Bounds-checked little-endian cursor (common/serialize.h's
    BinReader, minus the poison niceties: here a short read raises)."""

    def __init__(self, data):
        self.data = data
        self.pos = 0

    def take(self, n):
        if self.pos + n > len(self.data):
            raise ValueError("truncated")
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def u8(self):
        return self.take(1)[0]

    def u16(self):
        return struct.unpack("<H", self.take(2))[0]

    def u32(self):
        return struct.unpack("<I", self.take(4))[0]

    def u64(self):
        return struct.unpack("<Q", self.take(8))[0]

    def f32(self):
        return struct.unpack("<f", self.take(4))[0]

    def str_(self):
        n = self.u32()
        return self.take(n).decode("utf-8")


def decode_canonical(r):
    """One 43-byte canonical record (container.cpp decodeCanonical)."""
    rec = {
        "op": r.u8(),
        "src": [r.u16() for _ in range(3)],
        "dest": r.u16(),
        "pc": r.u64(),
        "addr": r.u64(),
        "size": r.u16(),
        "mem_tier": r.u8(),
        "taken": r.u8(),
        "target": r.u64(),
        "prefixed": r.u8(),
        "gemm": r.u8(),
        "toggle": r.f32(),
    }
    if rec["op"] >= len(OP_CLASSES):
        raise ValueError(f"op class {rec['op']} out of range")
    return rec


def parse(data):
    """Parse + verify one container; returns (header dict, chunks)."""
    if len(data) < len(MAGIC) + 4 + 8:
        raise ValueError("truncated")
    if data[:len(MAGIC)] != MAGIC:
        raise ValueError("bad magic")
    stored_checksum = struct.unpack("<Q", data[-8:])[0]
    if fnv1a(data[:-8]) != stored_checksum:
        raise ValueError("checksum mismatch")

    r = Reader(data)
    r.take(len(MAGIC))
    fmt = r.u32()
    if fmt != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {fmt}")
    head = {
        "name": r.str_(),
        "dialect": r.str_(),
        "source": r.str_(),
        "instr_count": r.u64(),
        "content_hash": r.u64(),
        "encoding": r.u8(),
    }
    if head["encoding"] not in (ENCODING_RAW, ENCODING_DELTA):
        raise ValueError(f"unknown encoding {head['encoding']}")
    chunks = []
    total = 0
    for _ in range(r.u32()):
        count = r.u32()
        nbytes = r.u64()
        chunks.append((count, r.take(nbytes)))
        total += count
    if total != head["instr_count"]:
        raise ValueError("instruction count does not match its chunks")
    if len(data) - r.pos != 8:
        raise ValueError("trailing bytes after the last chunk")
    return head, chunks


def raw_records(head, chunks):
    """Decoded records of a raw-encoded container, in stream order."""
    if head["encoding"] != ENCODING_RAW:
        raise ValueError("records requires a raw-encoded trace "
                         "(delta decoding lives in the C++ reader)")
    for count, payload in chunks:
        if len(payload) != count * CANONICAL_BYTES:
            raise ValueError("chunk payload size mismatch")
        r = Reader(payload)
        for _ in range(count):
            yield decode_canonical(r)


def cmd_info(args):
    status = 0
    for path in args.files:
        try:
            with open(path, "rb") as f:
                data = f.read()
            head, chunks = parse(data)
        except (OSError, ValueError) as exc:
            print(f"{path}: INVALID: {exc}", file=sys.stderr)
            status = 1
            continue
        verified = "envelope"
        if head["encoding"] == ENCODING_RAW:
            h = FNV_OFFSET
            for count, payload in chunks:
                h = fnv1a(payload, h)
            if h != head["content_hash"]:
                print(f"{path}: INVALID: content hash mismatch",
                      file=sys.stderr)
                status = 1
                continue
            verified = "envelope+content"
        print(f"{path}:")
        for key in ("name", "dialect", "source"):
            print(f"  {key:13} {head[key]}")
        print(f"  {'instrs':13} {head['instr_count']}")
        print(f"  {'chunks':13} {len(chunks)}")
        enc = "raw" if head["encoding"] == ENCODING_RAW else "delta"
        print(f"  {'encoding':13} {enc}")
        print(f"  {'payload_bytes':13} "
              f"{sum(len(p) for _, p in chunks)}")
        print(f"  {'content_hash':13} {head['content_hash']:016x}")
        print(f"  {'verified':13} {verified}")
    return status


def cmd_records(args):
    try:
        with open(args.file, "rb") as f:
            head, chunks = parse(f.read())
        for i, rec in enumerate(raw_records(head, chunks)):
            if args.limit is not None and i >= args.limit:
                break
            fields = [f"pc={rec['pc']:#x}", OP_CLASSES[rec["op"]]]
            srcs = [s for s in rec["src"] if s != REG_NONE]
            if srcs:
                fields.append("src=" + ",".join(map(str, srcs)))
            if rec["dest"] != REG_NONE:
                fields.append(f"dest={rec['dest']}")
            if rec["mem_tier"] != 0xFF or rec["addr"]:
                fields.append(f"addr={rec['addr']:#x} "
                              f"size={rec['size']}")
            if rec["taken"]:
                fields.append(f"taken->{rec['target']:#x}")
            if rec["prefixed"]:
                fields.append("prefixed")
            print(f"{i:8} " + "  ".join(fields))
    except (OSError, ValueError) as exc:
        print(f"{args.file}: INVALID: {exc}", file=sys.stderr)
        return 1
    return 0


def encode_canonical(rec):
    return struct.pack(
        "<B3HHQQHBBQBBf", rec["op"], *rec["src"], rec["dest"],
        rec["pc"], rec["addr"], rec["size"], rec["mem_tier"],
        rec["taken"], rec["target"], rec["prefixed"], rec["gemm"],
        rec["toggle"])


def synth_loop(iters):
    """N traversals of an 8-instruction loop at 0x1000: some ALU work,
    a load, a store, a taken backward branch — small enough to stay
    L1-contained, varied enough to exercise every decoder field."""
    base = 0x1000
    default = {
        "src": [REG_NONE] * 3, "dest": REG_NONE, "addr": 0, "size": 0,
        "mem_tier": 0xFF, "taken": 0, "target": 0, "prefixed": 0,
        "gemm": 0, "toggle": struct.unpack("<f",
                                           struct.pack("<f", 0.3))[0],
    }
    out = []
    for it in range(iters):
        for i in range(8):
            rec = dict(default, pc=base + i * 4, op=0,
                       src=list(default["src"]))
            if i == 2:
                rec["op"] = OP_CLASSES.index("Load")
                rec["src"][0] = 1
                rec["dest"] = 2
                rec["addr"] = 0x8000 + it * 8
                rec["size"] = 8
                rec["mem_tier"] = 0
            elif i == 5:
                rec["op"] = OP_CLASSES.index("Store")
                rec["src"][0] = 2
                rec["src"][1] = 3
                rec["addr"] = 0x9000 + it * 8
                rec["size"] = 8
            elif i == 7:
                rec["op"] = OP_CLASSES.index("Branch")
                rec["taken"] = 1
                rec["target"] = base
            else:
                rec["src"][0] = 3 + i
                rec["dest"] = 4 + i
            out.append(rec)
    return out


def cmd_synth(args):
    records = synth_loop(args.iters)
    payload = b"".join(encode_canonical(r) for r in records)
    content_hash = fnv1a(payload)

    def s(text):
        raw = text.encode("utf-8")
        return struct.pack("<I", len(raw)) + raw

    body = (MAGIC + struct.pack("<I", FORMAT_VERSION) + s(args.name) +
            s("power-isa-3.0") + s("synth:p10_trace.py") +
            struct.pack("<QQB", len(records), content_hash,
                        ENCODING_RAW) +
            struct.pack("<I", 1) +  # one chunk holds everything
            struct.pack("<IQ", len(records), len(payload)) + payload)
    data = body + struct.pack("<Q", fnv1a(body))
    parse(data)  # self-check before anything touches the file
    with open(args.out, "wb") as f:
        f.write(data)
    print(f"wrote {args.out}: {len(records)} instrs, "
          f"content hash {content_hash:016x}")
    return 0


def main(argv):
    top = argparse.ArgumentParser(
        prog="p10_trace.py",
        description="inspect and synthesize p10trace/1 containers")
    sub = top.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("info", help="print + verify container headers")
    p.add_argument("files", nargs="+")
    p.set_defaults(run=cmd_info)

    p = sub.add_parser("records",
                       help="dump canonical records (raw encoding)")
    p.add_argument("file")
    p.add_argument("--limit", type=int, default=32,
                   help="records to print (default 32)")
    p.set_defaults(run=cmd_records)

    p = sub.add_parser("synth",
                       help="hand-build a tiny raw-encoded loop trace")
    p.add_argument("--out", required=True)
    p.add_argument("--iters", type=int, default=50,
                   help="loop iterations (default 50)")
    p.add_argument("--name", default="pysynth",
                   help="trace name (default pysynth)")
    p.set_defaults(run=cmd_synth)

    args = top.parse_args(argv[1:])
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
