#!/usr/bin/env python3
"""One-shot client for the p10d simulation service.

Connects to a running p10d daemon (scripts/../examples/p10d), submits a
single request over the newline-delimited JSON protocol documented in
src/service/protocol.h and DESIGN.md section 11, streams progress events
to stderr, and writes the final report to --out (or stdout).

The embedded report is recovered from the `done` event by string
slicing, never by parse-and-reserialize: the daemon guarantees the
report is the last key of the done line, so the bytes written here are
byte-identical to what `p10sweep_cli --out` writes for the same spec.

Usage:
  p10_client.py --port P --spec sweep_spec.json [--id ID] [--out R.json]
  p10_client.py --port P --run '{"workload":"xz","instrs":10000}'
  p10_client.py --port P --stats
  p10_client.py --port P --metrics [--watch 2]
  p10_client.py --port P --shutdown

--metrics queries the daemon's live metrics registry (typed counters,
gauges and histograms in deterministic key order). --watch N re-polls
a --stats or --metrics query every N seconds until interrupted — a
poor man's dashboard over the introspection surface.

Transient failures — connection refused/reset and the daemon's
structured `overloaded` backpressure — are retried up to --retries
times with exponential backoff (1s, 2s, 4s, ... capped at 30s; the
daemon's overload message itself promises "retry after >= 1s with
exponential backoff"). Everything else fails fast: a malformed spec
will not get better by resubmitting it.

Exit status: 0 on success, 1 on a daemon-reported error or connection
failure, 2 on usage errors. Stdlib only.
"""

import argparse
import json
import socket
import sys
import time

BACKOFF_BASE_S = 1.0
BACKOFF_CAP_S = 30.0

# Outcome of one attempt: retryable failures trigger backoff, the rest
# are final.
RETRY = object()

REPORT_MARKER = '"report":'


def extract_report(done_line):
    """Slice the verbatim report out of a done event line.

    Mirrors service::extractReport: the report object is the final key
    of the done line, so it spans from after the marker to the last
    byte before the envelope's closing brace.
    """
    idx = done_line.find(REPORT_MARKER)
    if idx < 0 or not done_line.rstrip().endswith("}"):
        raise ValueError("done event carries no report")
    start = idx + len(REPORT_MARKER)
    end = done_line.rstrip().rfind("}")
    return done_line[start:end]


def read_lines(sock):
    """Yield newline-terminated response lines from the daemon."""
    buf = b""
    while True:
        nl = buf.find(b"\n")
        if nl >= 0:
            line = buf[:nl].decode("utf-8", errors="replace")
            buf = buf[nl + 1:]
            if line:
                yield line
            continue
        chunk = sock.recv(65536)
        if not chunk:
            return
        buf += chunk


def build_request(args):
    if args.spec:
        with open(args.spec, encoding="utf-8") as f:
            spec = json.load(f)
        req = {"type": "sweep", "id": args.id, "spec": spec}
    elif args.run is not None:
        fields = json.loads(args.run)
        if not isinstance(fields, dict):
            raise ValueError("--run payload must be a JSON object")
        req = {"type": "run", "id": args.id}
        req.update(fields)
    elif args.stats:
        req = {"type": "stats", "id": args.id}
    elif args.metrics:
        req = {"type": "metrics", "id": args.id}
    elif args.cancel is not None:
        req = {"type": "cancel", "id": args.id, "target": args.cancel}
    else:
        req = {"type": "shutdown", "id": args.id}
    if args.priority is not None:
        req["priority"] = args.priority
    if args.timeout_cycles is not None:
        req["timeout_cycles"] = args.timeout_cycles
    return req


def attempt(args, request):
    """Run one submit/stream round-trip.

    Returns an exit code, or the RETRY sentinel for transient failures
    (connection errors, daemon overload backpressure).
    """
    try:
        sock = socket.create_connection((args.host, args.port),
                                        timeout=args.timeout)
    except OSError as exc:
        print(f"p10_client: connect {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return RETRY

    with sock:
        sock.sendall(json.dumps(request).encode("utf-8") + b"\n")
        # shutdown(WR) is deliberately not called: the daemon serves
        # responses on the same connection.
        try:
            lines = read_lines(sock)
            for line in lines:
                code = handle_event(args, request, line)
                if code is not None:
                    return code
        except socket.timeout:
            print(f"p10_client: no response within {args.timeout}s",
                  file=sys.stderr)
            return RETRY
    print("p10_client: connection closed before a final event",
          file=sys.stderr)
    return RETRY


def handle_event(args, request, line):
    """Process one response line; None means keep streaming."""
    try:
        event = json.loads(line)
    except ValueError:
        print(f"p10_client: unparseable response: {line}",
              file=sys.stderr)
        return 1
    kind = event.get("event")
    if kind == "accepted":
        print(f"p10_client: accepted "
              f"(queue depth {event.get('queue_depth')})",
              file=sys.stderr)
        if request["type"] in ("cancel", "shutdown"):
            return 0
        return None
    if kind == "progress":
        print(f"p10_client: [{event.get('index')}/"
              f"{event.get('total')}] {event.get('key')} "
              f"{event.get('status')}", file=sys.stderr)
        return None
    if kind in ("stats", "metrics"):
        print(line)
        return 0
    if kind == "error":
        print(f"p10_client: error ({event.get('code')}): "
              f"{event.get('message')}", file=sys.stderr)
        # Overload is the daemon's structured backpressure, the one
        # error class that resubmitting verbatim is designed to fix.
        return RETRY if event.get("code") == "overloaded" else 1
    if kind == "done":
        report = extract_report(line)
        print(f"p10_client: done (cached "
              f"{event.get('cached_shards')}, simulated "
              f"{event.get('simulated_shards')})",
              file=sys.stderr)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as f:
                f.write(report)
        else:
            print(report)
        return 0
    print(f"p10_client: unknown event: {line}", file=sys.stderr)
    return 1


def main(argv):
    parser = argparse.ArgumentParser(
        prog="p10_client.py",
        description="one-shot client for the p10d simulation service")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--id", default="cli",
                        help="request id (default: cli)")
    parser.add_argument("--timeout", type=float, default=600,
                        help="socket timeout in seconds (default: 600)")
    parser.add_argument("--retries", type=int, default=0,
                        help="retry transient failures (connect errors,"
                             " daemon overload) this many times with"
                             " exponential backoff (default: 0)")
    parser.add_argument("--priority", type=int, default=None)
    parser.add_argument("--timeout-cycles", type=int, default=None)
    parser.add_argument("--out", default=None,
                        help="write the report here (default: stdout)")
    what = parser.add_mutually_exclusive_group(required=True)
    what.add_argument("--spec", default=None,
                      help="sweep spec JSON file to submit")
    what.add_argument("--run", default=None, metavar="JSON",
                      help="single-run request fields as a JSON object")
    what.add_argument("--stats", action="store_true",
                      help="query live daemon counters (stats event)")
    what.add_argument("--metrics", action="store_true",
                      help="query the daemon's live metrics registry")
    what.add_argument("--cancel", default=None, metavar="TARGET",
                      help="cancel the request with this id")
    what.add_argument("--shutdown", action="store_true",
                      help="ask the daemon to drain and exit")
    parser.add_argument("--watch", type=float, default=None,
                        metavar="SECONDS",
                        help="with --stats/--metrics: re-poll every N "
                             "seconds until interrupted")
    args = parser.parse_args(argv[1:])

    if args.timeout <= 0 or args.retries < 0:
        print("p10_client: --timeout must be > 0 and --retries >= 0",
              file=sys.stderr)
        return 2
    if args.watch is not None:
        if not (args.stats or args.metrics):
            print("p10_client: --watch requires --stats or --metrics",
                  file=sys.stderr)
            return 2
        if args.watch <= 0:
            print("p10_client: --watch must be > 0", file=sys.stderr)
            return 2
    try:
        request = build_request(args)
    except (OSError, ValueError) as exc:
        print(f"p10_client: {exc}", file=sys.stderr)
        return 2

    def submit():
        for tries in range(args.retries + 1):
            code = attempt(args, request)
            if code is not RETRY:
                return code
            if tries == args.retries:
                break
            delay = min(BACKOFF_BASE_S * (2 ** tries), BACKOFF_CAP_S)
            print(f"p10_client: retrying in {delay:.0f}s "
                  f"({args.retries - tries} left)", file=sys.stderr)
            time.sleep(delay)
        return 1

    if args.watch is None:
        return submit()
    # Polling dashboard: one line per round; a failing poll ends the
    # loop with its exit code, Ctrl-C ends it cleanly.
    try:
        while True:
            code = submit()
            if code != 0:
                return code
            sys.stdout.flush()
            time.sleep(args.watch)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
