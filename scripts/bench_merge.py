#!/usr/bin/env python3
"""Merge several p10ee-report/1 documents into one.

The committed BENCH_<date>.json baseline is the union of more than one
bench binary's output (fleet throughput + core advance-loop MIPS), so
both CI and the baseline-refresh workflow need a deterministic merge:

  - scalars are unioned; a key appearing in two inputs is an error
    (two benches measuring the same name means one of them is lying),
  - tables and series are concatenated in input order,
  - the meta block is rebuilt: tool "bench_merge", git taken from the
    first input (refusing to merge reports from different gits),
    wall_s and sim_instrs summed, host_mips recomputed from the sums.

Usage:
  bench_merge.py --out MERGED.json INPUT.json [more.json ...]

Exit status: 0 on success, 2 on usage/content errors. Stdlib only.
"""

import argparse
import json
import sys


def main(argv):
    parser = argparse.ArgumentParser(
        prog="bench_merge.py",
        description="merge p10ee-report/1 documents into one")
    parser.add_argument("--out", required=True)
    parser.add_argument("inputs", nargs="+")
    args = parser.parse_args(argv[1:])

    scalars = {}
    tables = []
    series = []
    git = None
    wall_s = 0.0
    sim_instrs = 0
    for path in args.inputs:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError) as exc:
            print(f"bench_merge: {path}: {exc}", file=sys.stderr)
            return 2
        if doc.get("schema") != "p10ee-report/1":
            print(f"bench_merge: {path}: not a p10ee-report/1 document",
                  file=sys.stderr)
            return 2
        meta = doc.get("meta", {})
        if git is None:
            git = meta.get("git", "")
        elif meta.get("git", "") != git:
            print(f"bench_merge: {path}: git '{meta.get('git')}' "
                  f"differs from '{git}' — refusing to merge reports "
                  f"from different builds", file=sys.stderr)
            return 2
        wall_s += meta.get("wall_s", 0.0)
        sim_instrs += meta.get("sim_instrs", 0)
        for key, value in doc.get("scalars", {}).items():
            if key in scalars:
                print(f"bench_merge: {path}: scalar '{key}' already "
                      f"present in an earlier input", file=sys.stderr)
                return 2
            scalars[key] = value
        tables.extend(doc.get("tables", []))
        series.extend(doc.get("series", []))

    merged = {
        "schema": "p10ee-report/1",
        "meta": {
            "tool": "bench_merge",
            "config": "",
            "workload": "",
            "seed": 0,
            "git": git or "",
            "wall_s": wall_s,
            "sim_instrs": sim_instrs,
            "host_mips": (sim_instrs / wall_s / 1e6
                          if wall_s > 0 else 0.0),
        },
        "scalars": scalars,
        "tables": tables,
        "series": series,
    }
    try:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(merged, f, indent=1)
            f.write("\n")
    except OSError as exc:
        print(f"bench_merge: {args.out}: {exc}", file=sys.stderr)
        return 2
    print(f"bench_merge: {len(args.inputs)} report(s), "
          f"{len(scalars)} scalar(s) -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
