#!/usr/bin/env python3
"""Compare a fresh bench report against a committed baseline.

Host throughput numbers (host-MIPS, jobs/sec, shards/sec) are
machine-dependent, so this guard is structural-plus-tolerance rather
than byte-identity:

  - every scalar present in the baseline must exist in the current
    report (a vanished metric means a bench silently stopped measuring
    something),
  - every compared scalar must be a positive finite number (a zero or
    NaN throughput means the bench ran nothing and called it success),
  - each current value must be within a generous relative factor of
    its baseline (default 10x either way, tunable via --rel-tol or the
    P10EE_BENCH_RTOL environment variable — wide enough for different
    hosts and CI budget settings, tight enough to catch an
    order-of-magnitude regression or a unit mix-up).

Extra scalars in the current report are reported but never fail the
diff: new metrics land before their baseline does.

Usage:
  bench_diff.py BASELINE.json CURRENT.json [--rel-tol 10]

Exit status: 0 when every check passes, 1 otherwise, 2 on usage
errors. Stdlib only.
"""

import argparse
import json
import math
import os
import sys


def load_scalars(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "p10ee-report/1":
        raise ValueError(f"{path}: not a p10ee-report/1 document")
    scalars = doc.get("scalars")
    if not isinstance(scalars, dict):
        raise ValueError(f"{path}: report carries no scalars object")
    return scalars


def main(argv):
    parser = argparse.ArgumentParser(
        prog="bench_diff.py",
        description="tolerance-compare a bench report to its baseline")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--rel-tol", type=float,
        default=float(os.environ.get("P10EE_BENCH_RTOL", "10")),
        help="allowed relative factor either way (default: 10, or "
             "P10EE_BENCH_RTOL)")
    args = parser.parse_args(argv[1:])
    if args.rel_tol < 1.0:
        print("bench_diff: --rel-tol must be >= 1", file=sys.stderr)
        return 2

    try:
        baseline = load_scalars(args.baseline)
        current = load_scalars(args.current)
    except (OSError, ValueError) as exc:
        print(f"bench_diff: {exc}", file=sys.stderr)
        return 2

    failures = []
    for key in sorted(baseline):
        base = baseline[key]
        if key not in current:
            failures.append(f"{key}: missing from {args.current}")
            continue
        cur = current[key]
        for label, value in (("baseline", base), ("current", cur)):
            if (not isinstance(value, (int, float))
                    or not math.isfinite(value) or value <= 0):
                failures.append(f"{key}: {label} value {value!r} is "
                                "not a positive finite number")
                value = None
        if base is None or cur is None or not (
                isinstance(base, (int, float))
                and isinstance(cur, (int, float))):
            continue
        if not (math.isfinite(base) and math.isfinite(cur)
                and base > 0 and cur > 0):
            continue
        ratio = cur / base
        ok = 1.0 / args.rel_tol <= ratio <= args.rel_tol
        print(f"bench_diff: {key}: {base:.4g} -> {cur:.4g} "
              f"({ratio:.2f}x){'' if ok else '  OUT OF TOLERANCE'}")
        if not ok:
            failures.append(
                f"{key}: {cur:.4g} is {ratio:.2f}x the baseline "
                f"{base:.4g} (allowed: within {args.rel_tol:g}x "
                "either way)")

    for key in sorted(set(current) - set(baseline)):
        print(f"bench_diff: note: {key} has no baseline yet "
              f"({current[key]:.4g})")

    if failures:
        print(f"bench_diff: {len(failures)} check(s) failed:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"bench_diff: {len(baseline)} scalar(s) within "
          f"{args.rel_tol:g}x of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
