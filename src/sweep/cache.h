/**
 * @file
 * Content-addressed on-disk cache of sweep shard results.
 *
 * A shard's result is a pure function of its spec (determinism
 * contract, see runner.h), so it can be memoized across processes: the
 * cache key is an FNV-1a hash over a *canonicalized* JSON rendering of
 * every semantic input of the shard — grid position, resolved config
 * (content-hashed, not just named), workload profile (ditto), SMT
 * level, seed replica, instruction/warmup/cycle budgets, retry and
 * infra-failure parameters, sweep master seed, sampling interval —
 * mixed with the cache container version and the simulator's
 * state-schema version (ckpt::kStateSchemaVersion). Canonicalization
 * fixes key order and number formatting, so two spec files that spell
 * the same sweep with reordered JSON keys hit the same entries, while
 * any semantic change (or a simulator whose serialized behaviour
 * changed) misses.
 *
 * Robustness contract: a cache can only ever save work, never change
 * results or fail a sweep. Corrupt, truncated, stale-version or
 * colliding entries are silently treated as misses (the shard is
 * simulated again and the entry rewritten); unwritable inserts degrade
 * to not caching. Entries are written to a temp file and renamed, so
 * concurrent runs sharing a cache directory never observe partial
 * entries. Failed shards are cached too — a deterministic failure
 * (timeout, exhausted retries) reproduces identically, so re-simulating
 * it would waste the same cycles to learn the same thing.
 */

#ifndef P10EE_SWEEP_CACHE_H
#define P10EE_SWEEP_CACHE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/types.h"
#include "common/error.h"
#include "sweep/runner.h"
#include "sweep/spec.h"

namespace p10ee::sweep {

/** Container-layout version of cache entry files. v2: the serialized
    common::ErrorCode enum grew Overloaded/Cancelled before Internal,
    renumbering persisted codes — v1 entries are unreachable, not
    misread. v3: ShardResult gained trace provenance (traceName,
    traceHash) between ipcPerW and the telemetry series. v4:
    ShardResult gained the chip-scope block (cores, per-core rows,
    governor rollup) after the telemetry series, and the canonical key
    gained the "cores" axis. v5: ShardResult gained fidelity-mode
    provenance (a trailing mode byte) and the canonical key gained the
    "mode" axis — a FastM1 result is a different artifact from a Full
    one (no power fields), so mode is part of cache identity. */
inline constexpr uint32_t kCacheFormatVersion = 5;

/** One cache directory; cheap to construct, stateless, thread-safe. */
class ShardCache
{
  public:
    /** @param dir cache directory (non-empty; created by prepare()). */
    explicit ShardCache(std::string dir);

    /** Create the cache directory; unwritable paths are input errors. */
    common::Status prepare() const;

    /**
     * The canonical JSON identity of @p shard under @p spec: fixed key
     * order, fixed number formatting, content hashes for the resolved
     * config and profile. This string (not the spec file's text) is
     * what gets hashed.
     */
    static std::string canonicalKeyJson(const SweepSpec& spec,
                                        const ShardSpec& shard);

    /** FNV-1a key over canonicalKeyJson + container/schema versions. */
    static uint64_t shardKey(const SweepSpec& spec,
                             const ShardSpec& shard);

    /** Entry file path for @p key: "<dir>/<16-hex-digits>.shard". */
    std::string entryPath(uint64_t key) const;

    /**
     * Serialize @p result into a complete, self-validating entry:
     * magic + container/schema versions + key + body + whole-file
     * checksum. This is both the on-disk file format and the fabric
     * wire format — a worker's shard_done payload IS a cache entry, so
     * the coordinator persists it verbatim and decodes it through the
     * same validated path as a local cache hit.
     */
    static std::vector<uint8_t> encodeEntry(const SweepSpec& spec,
                                            const ShardSpec& shard,
                                            const ShardResult& result);

    /**
     * Validate and decode one entry for @p shard under @p spec. Any
     * mismatch — bad magic, stale versions, wrong key, failed checksum,
     * truncation, identity collision — is nullopt, never an error or an
     * abort: entry bytes come from disks and sockets, both hostile.
     */
    static std::optional<ShardResult> decodeEntry(
        const std::vector<uint8_t>& bytes, const SweepSpec& spec,
        const ShardSpec& shard);

    /**
     * Raw entry bytes for @p key, container-validated (magic, versions,
     * stored key, checksum) but not identity-checked — the caller that
     * can name the shard does that via decodeEntry(). Serves the remote
     * cache tier, where the coordinator answers cache_get by key alone.
     */
    std::optional<std::vector<uint8_t>> readBytes(uint64_t key) const;

    /**
     * Persist pre-encoded entry bytes under @p key (atomic temp +
     * rename), container-validating first so a hostile or truncated
     * payload can never be installed as an entry. Best-effort, like
     * insert().
     */
    common::Status writeBytes(uint64_t key,
                              const std::vector<uint8_t>& bytes) const;

    /**
     * Look up the shard's cached result. Any mismatch — absent entry,
     * bad magic, stale versions, failed checksum, truncation, key or
     * identity collision — is a miss, never an error.
     */
    std::optional<ShardResult> lookup(const SweepSpec& spec,
                                      const ShardSpec& shard) const;

    /**
     * Persist @p result under the shard's key (atomic temp + rename).
     * Best-effort: callers may ignore the status — an unwritable cache
     * degrades to not caching, it must not fail the sweep.
     */
    common::Status insert(const SweepSpec& spec, const ShardSpec& shard,
                          const ShardResult& result) const;

    const std::string& dir() const { return dir_; }

  private:
    std::string dir_;
};

} // namespace p10ee::sweep

#endif // P10EE_SWEEP_CACHE_H
