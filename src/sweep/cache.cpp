#include "sweep/cache.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "ckpt/checkpoint.h"
#include "common/assert.h"
#include "common/hash.h"
#include "common/serialize.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace p10ee::sweep {

using common::BinReader;
using common::BinWriter;
using common::Error;
using common::ErrorCode;
using common::Fnv1a;
using common::Status;

namespace {

constexpr char kMagic[8] = {'P', '1', '0', 'S', 'H', 'R', 'D', '\0'};

void
serializeResult(BinWriter& w, const ShardResult& s)
{
    w.u64(s.index);
    w.str(s.key);
    w.b(s.ok);
    w.u8(static_cast<uint8_t>(s.error.code));
    w.str(s.error.message);
    w.u64(static_cast<uint64_t>(s.retries));
    w.u64(s.cycles);
    w.u64(s.instrs);
    w.f64(s.ipc);
    w.f64(s.powerW);
    w.f64(s.ipcPerW);
    // wallSeconds is host-clock provenance, deliberately not persisted:
    // a cached shard replays with wallSeconds == 0.
    w.str(s.traceName);
    w.u64(s.traceHash);
    w.u64(s.ipcX.size());
    for (size_t i = 0; i < s.ipcX.size(); ++i) {
        w.f64(s.ipcX[i]);
        w.f64(s.ipcY[i]);
    }
    // Chip-scope fields (format version 4): present for every shard;
    // 1-core shards persist cores == 1 and no rows.
    w.u32(static_cast<uint32_t>(s.cores));
    w.u64(s.coreRows.size());
    for (const api::ShardCoreRow& c : s.coreRows) {
        w.u64(c.cycles);
        w.u64(c.stallCycles);
        w.u64(c.effCycles);
        w.u64(c.instrs);
        w.f64(c.ipc);
        w.f64(c.powerW);
        w.f64(c.freqGhz);
    }
    w.f64(s.chipFreqGhz);
    w.f64(s.chipBoost);
    w.u64(s.throttledEpochs);
    w.u64(s.droopTrips);
    // Fidelity-mode provenance (format version 5): a cached FastM1
    // result must replay as FastM1 so merged reports render its power
    // column as absent.
    w.u8(static_cast<uint8_t>(s.mode));
}

std::optional<ShardResult>
deserializeResult(BinReader& r)
{
    ShardResult s;
    s.index = r.u64();
    s.key = r.str();
    s.ok = r.b();
    uint8_t code = r.u8();
    if (code > static_cast<uint8_t>(ErrorCode::Internal)) {
        return std::nullopt;
    }
    s.error.code = static_cast<ErrorCode>(code);
    s.error.message = r.str();
    s.retries = static_cast<int>(r.u64());
    s.cycles = r.u64();
    s.instrs = r.u64();
    s.ipc = r.f64();
    s.powerW = r.f64();
    s.ipcPerW = r.f64();
    s.wallSeconds = 0.0;
    s.traceName = r.str();
    s.traceHash = r.u64();
    uint64_t n = r.u64();
    if (!r.fits(n, 16))
        return std::nullopt;
    s.ipcX.resize(static_cast<size_t>(n));
    s.ipcY.resize(static_cast<size_t>(n));
    for (size_t i = 0; i < s.ipcX.size(); ++i) {
        s.ipcX[i] = r.f64();
        s.ipcY[i] = r.f64();
    }
    s.cores = static_cast<int>(r.u32());
    uint64_t rows = r.u64();
    if (s.cores < 1 || !r.fits(rows, 7 * 8))
        return std::nullopt;
    s.coreRows.resize(static_cast<size_t>(rows));
    for (api::ShardCoreRow& c : s.coreRows) {
        c.cycles = r.u64();
        c.stallCycles = r.u64();
        c.effCycles = r.u64();
        c.instrs = r.u64();
        c.ipc = r.f64();
        c.powerW = r.f64();
        c.freqGhz = r.f64();
    }
    s.chipFreqGhz = r.f64();
    s.chipBoost = r.f64();
    s.throttledEpochs = r.u64();
    s.droopTrips = r.u64();
    uint8_t mode = r.u8();
    if (mode > static_cast<uint8_t>(api::SimMode::FastM1))
        return std::nullopt;
    s.mode = static_cast<api::SimMode>(mode);
    if (r.failed())
        return std::nullopt;
    return s;
}

/**
 * Container validation shared by every entry consumer: magic, versions,
 * stored key, whole-file checksum. On success returns the [offset, len)
 * of the body between the header and the trailing checksum.
 */
std::optional<std::pair<size_t, size_t>>
validateContainer(const std::vector<uint8_t>& bytes, uint64_t key)
{
    BinReader r(bytes);
    for (char c : kMagic)
        if (r.u8() != static_cast<uint8_t>(c))
            return std::nullopt;
    if (r.u32() != kCacheFormatVersion)
        return std::nullopt;
    if (r.u32() != ckpt::kStateSchemaVersion)
        return std::nullopt;
    if (r.u64() != key)
        return std::nullopt;
    if (r.failed() || bytes.size() < r.position() + 8)
        return std::nullopt;
    BinReader tail(bytes.data() + bytes.size() - 8, 8);
    Fnv1a h;
    h.bytes(bytes.data(), bytes.size() - 8);
    if (h.digest() != tail.u64())
        return std::nullopt;
    return std::make_pair(r.position(), bytes.size() - r.position() - 8);
}

} // namespace

ShardCache::ShardCache(std::string dir) : dir_(std::move(dir))
{
    P10_ASSERT(!dir_.empty(), "ShardCache requires a directory path");
}

Status
ShardCache::prepare() const
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec || !std::filesystem::is_directory(dir_))
        return Error::invalidArgument(
            "cannot create cache directory: " + dir_);
    return common::okStatus();
}

std::string
ShardCache::canonicalKeyJson(const SweepSpec& spec, const ShardSpec& shard)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("shard_index").value(shard.index);
    w.key("config").value(shard.configName);
    w.key("config_hash").value(ckpt::configHash(shard.config));
    w.key("workload").value(shard.profile.name);
    w.key("profile_hash").value(workloads::profileHash(shard.profile));
    w.key("profile_seed").value(shard.profile.seed);
    w.key("smt").value(shard.smt);
    w.key("cores").value(shard.cores);
    w.key("mode").value(std::string(api::simModeName(shard.mode)));
    w.key("seed_index").value(shard.seedIndex);
    w.key("instrs").value(spec.instrs);
    w.key("warmup").value(spec.warmup);
    w.key("max_cycles").value(spec.maxCycles);
    w.key("max_retries").value(spec.maxRetries);
    w.key("infra_fail_prob").value(spec.infraFailProb);
    w.key("sweep_seed").value(spec.seed);
    w.key("sample_interval").value(spec.sampleInterval);
    w.endObject();
    return w.str();
}

uint64_t
ShardCache::shardKey(const SweepSpec& spec, const ShardSpec& shard)
{
    Fnv1a h;
    h.str(canonicalKeyJson(spec, shard));
    h.u64(kCacheFormatVersion);
    h.u64(ckpt::kStateSchemaVersion);
    return h.digest();
}

std::string
ShardCache::entryPath(uint64_t key) const
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(key));
    return dir_ + "/" + hex + ".shard";
}

std::vector<uint8_t>
ShardCache::encodeEntry(const SweepSpec& spec, const ShardSpec& shard,
                        const ShardResult& result)
{
    uint64_t key = shardKey(spec, shard);
    BinWriter w;
    for (char c : kMagic)
        w.u8(static_cast<uint8_t>(c));
    w.u32(kCacheFormatVersion);
    w.u32(ckpt::kStateSchemaVersion);
    w.u64(key);
    serializeResult(w, result);
    std::vector<uint8_t> bytes = w.takeBytes();
    Fnv1a h;
    h.bytes(bytes.data(), bytes.size());
    BinWriter tail;
    tail.u64(h.digest());
    bytes.insert(bytes.end(), tail.bytes().begin(), tail.bytes().end());
    return bytes;
}

std::optional<ShardResult>
ShardCache::decodeEntry(const std::vector<uint8_t>& bytes,
                        const SweepSpec& spec, const ShardSpec& shard)
{
    uint64_t key = shardKey(spec, shard);
    auto span = validateContainer(bytes, key);
    if (!span)
        return std::nullopt;
    BinReader body(bytes.data() + span->first, span->second);
    auto res = deserializeResult(body);
    if (!res || body.remaining() != 0)
        return std::nullopt;
    // Identity paranoia: a 64-bit key collision must not substitute one
    // shard's result for another's.
    if (res->index != shard.index || res->key != shard.key())
        return std::nullopt;
    return res;
}

std::optional<std::vector<uint8_t>>
ShardCache::readBytes(uint64_t key) const
{
    std::ifstream f(entryPath(key), std::ios::binary);
    if (!f)
        return std::nullopt;
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                               std::istreambuf_iterator<char>());
    if (!validateContainer(bytes, key))
        return std::nullopt;
    return bytes;
}

Status
ShardCache::writeBytes(uint64_t key,
                       const std::vector<uint8_t>& bytes) const
{
    if (!validateContainer(bytes, key))
        return Error::invalidArgument(
            "cache entry bytes fail container validation");

    std::string path = entryPath(key);
    // Unique temp names within the process: concurrent writers (worker
    // threads serving cache_put for the same key) must not collide on
    // one temp file; across processes the rename target is
    // byte-identical anyway.
    static std::atomic<uint64_t> tmpSerial{0};
    std::string tmp =
        path + ".tmp" + std::to_string(tmpSerial.fetch_add(1));
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f)
            return Error::transient("cannot write cache entry: " + tmp);
        f.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
        if (!f)
            return Error::transient("short write: " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return Error::transient("cache entry rename failed: " + path);
    }
    return common::okStatus();
}

std::optional<ShardResult>
ShardCache::lookup(const SweepSpec& spec, const ShardSpec& shard) const
{
    // Instrumented three ways: clean miss (no entry file), corrupt
    // miss (an entry existed but failed container validation or
    // decode — every such entry is deliberately a silent miss), hit.
    // The counters are telemetry only; behaviour is unchanged.
    static const obs::MetricId hits =
        obs::metrics().counter("cache.hits");
    static const obs::MetricId misses =
        obs::metrics().counter("cache.misses");
    static const obs::MetricId corruptMisses =
        obs::metrics().counter("cache.corrupt_misses");

    const uint64_t key = shardKey(spec, shard);
    std::error_code ec;
    const bool present = std::filesystem::exists(entryPath(key), ec);
    auto bytes = readBytes(key);
    if (!bytes) {
        obs::metrics().add(present ? corruptMisses : misses);
        return std::nullopt;
    }
    auto result = decodeEntry(*bytes, spec, shard);
    if (!result) {
        obs::metrics().add(corruptMisses);
        return std::nullopt;
    }
    obs::metrics().add(hits);
    return result;
}

Status
ShardCache::insert(const SweepSpec& spec, const ShardSpec& shard,
                   const ShardResult& result) const
{
    return writeBytes(shardKey(spec, shard),
                      encodeEntry(spec, shard, result));
}

} // namespace p10ee::sweep
