/**
 * @file
 * Work-stealing thread pool — the execution substrate of the sweep
 * engine (and of every other layer that fans simulation work out:
 * parallel fault campaigns, the fig-sweep benches' grid points).
 *
 * Scheduling follows the Chase–Lev discipline: every worker owns a
 * deque and takes work from its own end — nested submits land there
 * and run depth-first (cache-warm), external submits are appended at
 * the other end and run in submission order — while idle workers
 * steal from the end away from the victim's working front. Each deque
 * is guarded by its own small mutex rather than the lock-free
 * Chase–Lev protocol: sweep
 * tasks are whole simulations (milliseconds to seconds), so deque
 * operations are nanoseconds against milliseconds of work and the
 * mutex is never contended in practice — while staying trivially
 * TSan-clean, which the lock-free version is famously hard to get
 * right. No external dependencies; <thread> + <mutex> only.
 *
 * Error contract: a task that throws never takes the pool down. The
 * first exception is captured and rethrown from the next wait() on the
 * submitting thread; later tasks keep running (a sweep must finish its
 * other shards even when one dies).
 */

#ifndef P10EE_SWEEP_POOL_H
#define P10EE_SWEEP_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace p10ee::sweep {

class ThreadPool
{
  public:
    /**
     * Spawn @p threads workers (clamped to >= 1). Oversubscription is
     * allowed and harmless for the coarse tasks this pool runs — the
     * determinism of sweep results never depends on the thread count.
     */
    explicit ThreadPool(int threads);

    /** Drains every submitted task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Worker count (the constructor's clamped argument). */
    int threads() const { return static_cast<int>(workers_.size()); }

    /**
     * Enqueue @p task. Calls from a worker thread push onto that
     * worker's own deque (depth-first); external calls round-robin
     * across deques and run in submission order per deque (a
     * one-worker pool is a plain FIFO executor), with idle workers
     * stealing the balance.
     */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished; rethrows the
     * first exception any task raised since the last wait(). Must not
     * be called from inside a task (it would wait for itself).
     */
    void wait();

    /**
     * submit() fn(0) .. fn(n-1), then wait(). The convenience shape
     * every sweep/campaign/bench grid uses: the index is the shard
     * identity, so results keyed by it are scheduling-independent.
     */
    void parallelFor(uint64_t n, const std::function<void(uint64_t)>& fn);

    /** A sensible default worker count: the hardware concurrency. */
    static int defaultThreads();

  private:
    struct Deque
    {
        std::mutex mu;
        std::deque<std::function<void()>> q;
    };

    void workerLoop(size_t self);

    /** Pop own bottom or steal a victim's top; false when idle. */
    bool runOne(size_t self);

    void runTask(std::function<void()>& task);

    std::vector<std::unique_ptr<Deque>> deques_;
    std::vector<std::thread> workers_;

    std::mutex mu_; ///< guards the condition variables and firstError_
    std::condition_variable workCv_; ///< new work or shutdown
    std::condition_variable doneCv_; ///< pending_ reached zero
    std::exception_ptr firstError_;

    /** Tasks sitting in deques (wake-up hint; may transiently lead). */
    std::atomic<int64_t> queued_{0};
    /** Tasks submitted and not yet finished (wait() watches this). */
    std::atomic<int64_t> pending_{0};
    std::atomic<uint64_t> nextDeque_{0}; ///< external submit round-robin
    bool stopping_ = false;              ///< under mu_
};

} // namespace p10ee::sweep

#endif // P10EE_SWEEP_POOL_H
