#include "sweep/spec.h"

#include <fstream>
#include <sstream>

#include "common/rng.h"
#include "obs/json.h"
#include "trace/replay.h"
#include "workloads/registry.h"

namespace p10ee::sweep {

using common::Error;
using common::Expected;
using common::Status;

std::string
ShardSpec::key() const
{
    std::ostringstream os;
    os << configName << '/' << profile.name << "/smt" << smt << "/seed"
       << seedIndex;
    // 1-core keys stay exactly historical (bare-core identity).
    if (cores >= 2)
        os << "/c" << cores;
    // Likewise Full-mode keys: only FastM1 shards carry a mode suffix.
    if (mode == api::SimMode::FastM1)
        os << "/fast_m1";
    return os.str();
}

Status
SweepSpec::validate() const
{
    std::string problems;
    auto bad = [&problems](const std::string& p) {
        if (!problems.empty())
            problems += "; ";
        problems += p;
    };

    if (configs.empty())
        bad("configs must name at least one machine");
    if (workloads.empty())
        bad("workloads must name at least one profile");
    if (smt.empty())
        bad("smt must list at least one thread count");
    for (int t : smt)
        if (t != 1 && t != 2 && t != 4 && t != 8)
            bad("smt entries must be 1, 2, 4 or 8 (got " +
                std::to_string(t) + ")");
    if (cores.empty())
        bad("cores must list at least one chip size");
    for (int n : cores)
        if (n < 1 || n > 16)
            bad("cores entries must be in [1, 16] (got " +
                std::to_string(n) + ")");
    if (modes.empty())
        bad("mode must list at least one fidelity mode");
    bool anyFast = false;
    for (api::SimMode m : modes)
        anyFast = anyFast || m == api::SimMode::FastM1;
    if (anyFast) {
        // The grid is a full cross product, so a fast_m1 entry crossed
        // with an incompatible axis value is a spec error, never a
        // silently skipped combination.
        for (int n : cores)
            if (n >= 2)
                bad("mode fast_m1 requires cores == 1 (got cores "
                    "entry " + std::to_string(n) + ")");
        if (sampleInterval != 0)
            bad("mode fast_m1 skips telemetry (sample_interval must "
                "be 0)");
    }
    if (seeds < 1)
        bad("seeds must be >= 1");
    if (instrs == 0)
        bad("instrs must be > 0");
    if (maxRetries < 0 || maxRetries > 16)
        bad("max_retries must be in [0, 16]");
    if (!(infraFailProb >= 0.0 && infraFailProb < 1.0))
        bad("infra_fail_prob must be in [0, 1)");

    if (!problems.empty())
        return Error::invalidConfig("sweep spec: " + problems);
    return common::okStatus();
}

uint64_t
SweepSpec::shardCount() const
{
    return static_cast<uint64_t>(configs.size()) * workloads.size() *
           smt.size() * cores.size() * modes.size() * seeds;
}

Expected<core::CoreConfig>
SweepSpec::resolveConfig(const std::string& name)
{
    if (name == "power9")
        return core::power9();
    if (name == "power10")
        return core::power10();
    const std::string prefix = "ablate:";
    if (name.rfind(prefix, 0) == 0) {
        const std::string group = name.substr(prefix.size());
        for (int g = 0;
             g < static_cast<int>(core::AblationGroup::NumGroups); ++g) {
            const auto ag = static_cast<core::AblationGroup>(g);
            if (core::ablationGroupName(ag) == group)
                return core::power10Without(ag);
        }
        return Error::notFound("unknown ablation group '" + group +
                               "' in config '" + name + "'");
    }
    return Error::notFound(
        "unknown config '" + name +
        "' (expected power9, power10 or ablate:<group>)");
}

Expected<std::vector<ShardSpec>>
SweepSpec::expand() const
{
    if (Status st = validate(); !st)
        return st.error();

    // Resolve names once up front so a bad name fails the whole sweep
    // before any shard runs.
    std::vector<core::CoreConfig> cfgs;
    cfgs.reserve(configs.size());
    for (const std::string& name : configs) {
        Expected<core::CoreConfig> cfg = resolveConfig(name);
        if (!cfg)
            return cfg.error();
        if (Status st = cfg.value().validate(); !st)
            return st.error();
        cfgs.push_back(std::move(cfg.value()));
    }
    // Workload names go through the frontend registry so external
    // formats ("trace:<path>") expand exactly like built-in profiles.
    trace::registerTraceFrontend();
    std::vector<workloads::WorkloadProfile> profs;
    profs.reserve(workloads.size());
    for (const std::string& name : workloads) {
        Expected<workloads::WorkloadProfile> p =
            workloads::resolveWorkload(name);
        if (!p)
            return p.error();
        profs.push_back(std::move(p.value()));
    }

    // Nested-loop expansion order (configs > workloads > smt > cores >
    // modes > seeds) is part of the format: the shard index is the
    // identity that keys RNG streams and the merge fold.
    std::vector<ShardSpec> shards;
    shards.reserve(shardCount());
    uint64_t index = 0;
    for (size_t c = 0; c < cfgs.size(); ++c)
        for (size_t w = 0; w < profs.size(); ++w)
            for (int threads : smt)
                for (int chipCores : cores)
                    for (api::SimMode m : modes)
                        for (uint64_t s = 0; s < seeds; ++s) {
                            ShardSpec shard;
                            shard.index = index++;
                            shard.configName = configs[c];
                            shard.config = cfgs[c];
                            shard.profile = profs[w];
                            if (s != 0)
                                shard.profile.seed =
                                    common::splitSeed(profs[w].seed, s);
                            shard.smt = threads;
                            shard.cores = chipCores;
                            shard.mode = m;
                            shard.seedIndex = s;
                            shards.push_back(std::move(shard));
                        }
    return shards;
}

std::string
SweepSpec::toJson() const
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("configs").beginArray();
    for (const std::string& c : configs)
        w.value(c);
    w.endArray();
    w.key("workloads").beginArray();
    for (const std::string& wl : workloads)
        w.value(wl);
    w.endArray();
    w.key("smt").beginArray();
    for (int t : smt)
        w.value(t);
    w.endArray();
    w.key("cores").beginArray();
    for (int n : cores)
        w.value(n);
    w.endArray();
    w.key("mode").beginArray();
    for (api::SimMode m : modes)
        w.value(std::string(api::simModeName(m)));
    w.endArray();
    w.key("seeds").value(seeds);
    w.key("instrs").value(instrs);
    w.key("warmup").value(warmup);
    w.key("max_cycles").value(maxCycles);
    w.key("max_retries").value(maxRetries);
    w.key("infra_fail_prob").value(infraFailProb);
    w.key("seed").value(seed);
    w.key("sample_interval").value(sampleInterval);
    w.key("shard_reports_dir").value(shardReportsDir);
    w.endObject();
    return w.str();
}

namespace {

Status
readStringArray(const obs::JsonValue& v, const std::string& what,
                std::vector<std::string>* out)
{
    if (!v.isArray())
        return Error::invalidConfig(what + " must be an array of strings");
    out->clear();
    for (const obs::JsonValue& e : v.array) {
        if (!e.isString())
            return Error::invalidConfig(what +
                                        " must contain only strings");
        out->push_back(e.string);
    }
    return common::okStatus();
}

} // namespace

Expected<SweepSpec>
SweepSpec::fromJson(const std::string& text)
{
    Expected<obs::JsonValue> doc = obs::parseJson(text);
    if (!doc)
        return doc.error();
    return fromJsonValue(doc.value());
}

Expected<SweepSpec>
SweepSpec::fromJsonValue(const obs::JsonValue& root)
{
    if (!root.isObject())
        return Error::invalidConfig("sweep spec must be a JSON object");

    SweepSpec spec;
    for (const auto& [key, v] : root.object) {
        if (key == "configs") {
            if (Status st = readStringArray(v, "configs", &spec.configs);
                !st)
                return st.error();
        } else if (key == "workloads") {
            if (Status st =
                    readStringArray(v, "workloads", &spec.workloads);
                !st)
                return st.error();
        } else if (key == "smt") {
            if (!v.isArray())
                return Error::invalidConfig(
                    "smt must be an array of integers");
            spec.smt.clear();
            for (const obs::JsonValue& e : v.array) {
                Expected<uint64_t> n = e.asU64("smt entry");
                if (!n)
                    return n.error();
                spec.smt.push_back(static_cast<int>(n.value()));
            }
        } else if (key == "cores") {
            if (!v.isArray())
                return Error::invalidConfig(
                    "cores must be an array of integers");
            spec.cores.clear();
            for (const obs::JsonValue& e : v.array) {
                Expected<uint64_t> n = e.asU64("cores entry");
                if (!n)
                    return n.error();
                spec.cores.push_back(static_cast<int>(n.value()));
            }
        } else if (key == "mode") {
            if (!v.isArray())
                return Error::invalidConfig(
                    "mode must be an array of mode names");
            spec.modes.clear();
            for (const obs::JsonValue& e : v.array) {
                if (!e.isString())
                    return Error::invalidConfig(
                        "mode must contain only strings");
                Expected<api::SimMode> m = api::parseSimMode(e.string);
                if (!m)
                    return Error{common::ErrorCode::InvalidConfig,
                                 "sweep spec: " + m.error().message,
                                 "mode"};
                spec.modes.push_back(m.value());
            }
        } else if (key == "seeds") {
            Expected<uint64_t> n = v.asU64("seeds");
            if (!n)
                return n.error();
            spec.seeds = n.value();
        } else if (key == "instrs") {
            Expected<uint64_t> n = v.asU64("instrs");
            if (!n)
                return n.error();
            spec.instrs = n.value();
        } else if (key == "warmup") {
            Expected<uint64_t> n = v.asU64("warmup");
            if (!n)
                return n.error();
            spec.warmup = n.value();
        } else if (key == "max_cycles") {
            Expected<uint64_t> n = v.asU64("max_cycles");
            if (!n)
                return n.error();
            spec.maxCycles = n.value();
        } else if (key == "max_retries") {
            Expected<uint64_t> n = v.asU64("max_retries");
            if (!n)
                return n.error();
            spec.maxRetries = static_cast<int>(n.value());
        } else if (key == "infra_fail_prob") {
            if (!v.isNumber())
                return Error::invalidConfig(
                    "infra_fail_prob must be a number");
            spec.infraFailProb = v.number;
        } else if (key == "seed") {
            Expected<uint64_t> n = v.asU64("seed");
            if (!n)
                return n.error();
            spec.seed = n.value();
        } else if (key == "sample_interval") {
            Expected<uint64_t> n = v.asU64("sample_interval");
            if (!n)
                return n.error();
            spec.sampleInterval = n.value();
        } else if (key == "shard_reports_dir") {
            if (!v.isString())
                return Error::invalidConfig(
                    "shard_reports_dir must be a string");
            spec.shardReportsDir = v.string;
        } else {
            // A typo in an axis name must not silently shrink a sweep.
            return Error::invalidConfig("unknown sweep spec key '" +
                                        key + "'");
        }
    }

    if (Status st = spec.validate(); !st)
        return st.error();
    return spec;
}

Expected<SweepSpec>
SweepSpec::fromJsonFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Error::notFound("cannot open sweep spec '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    Expected<SweepSpec> spec = fromJson(buf.str());
    if (!spec)
        return Error(spec.error().code,
                     path + ": " + spec.error().message);
    return spec;
}

} // namespace p10ee::sweep
