/**
 * @file
 * Sweep execution and deterministic merge.
 *
 * The SweepRunner executes every shard of an expanded SweepSpec as a
 * fully isolated simulation — its own CoreModel, its own
 * TimeSeriesRecorder (created on the worker thread; the recorder's
 * single-owner contract enforces the isolation), its own RNG streams
 * derived from (spec seed, shard index) — on a work-stealing
 * ThreadPool. Shards never share mutable state, so the thread count is
 * purely a throughput knob.
 *
 * Failure semantics per shard: a run that exceeds the spec's cycle
 * budget is recorded as a timeout; a transient infrastructure failure
 * is retried up to max_retries with deterministic exponential backoff
 * (the generator-draw-burning idiom fault::CampaignRunner uses);
 * anything still failing is skipped-and-recorded. One bad shard never
 * kills a sweep.
 *
 * Determinism contract: merge() produces a p10ee-report/1 document that
 * is a pure function of the spec. Results are stored by shard index and
 * folded in index order, every number in the report derives from
 * simulation state (never from the host clock — meta wall_s and
 * host_mips are fixed at zero in merged reports; real timing goes to
 * stderr in the CLI), so the merged JSON is byte-identical across
 * --jobs values and scheduling orders. The determinism test diffs the
 * whole file.
 */

#ifndef P10EE_SWEEP_RUNNER_H
#define P10EE_SWEEP_RUNNER_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "api/types.h"
#include "common/error.h"
#include "obs/report.h"
#include "sweep/spec.h"

namespace p10ee::sweep {

/**
 * Outcome of one shard. The struct itself is public API now (the
 * daemon returns it, the cache persists it, the runner folds it), so
 * it lives in api/types.h; this alias keeps the sweep-layer spelling.
 */
using ShardResult = api::ShardResult;

/** All shard outcomes plus fold-level aggregates, in shard-index order. */
struct SweepResult
{
    std::vector<ShardResult> shards;
    uint64_t okCount = 0;
    uint64_t failed = 0;
    uint64_t retriesTotal = 0;
    /** Simulated instructions (warmup + measured) across ok shards —
        counted identically for cached and simulated shards, so the
        merged report's meta is cache-independent. */
    uint64_t simInstrs = 0;

    /** Provenance split (cached + simulated == shards.size();
        cancelled shards count as simulated — they took the simulate
        path, just doing zero work). */
    uint64_t cachedShards = 0;
    uint64_t simulatedShards = 0;

    /** Shards recorded as cancelled (subset of failed). */
    uint64_t cancelledShards = 0;

    /** Geometric-mean IPC over ok shards (0 when none). */
    double geoMeanIpc() const;

    /** Arithmetic-mean power over ok shards (0 when none). */
    double meanPowerW() const;
};

/** Executes a SweepSpec's shards in parallel and merges the results. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepSpec spec) : spec_(std::move(spec)) {}

    /**
     * Called after each shard finishes, from worker threads but
     * serialized under a mutex — the same api::ProgressEvent signature
     * the fault campaign and the daemon's streamed progress events
     * use. Completion order is scheduling-dependent — anything
     * deterministic must come from the returned SweepResult, not from
     * this stream.
     */
    api::ProgressFn onProgress;

    /**
     * Cooperative cancellation: when non-null and it flips true,
     * not-yet-started shards are recorded as `cancelled` failures
     * without simulating (already-running shards finish). A cancelled
     * sweep still returns a complete, index-ordered SweepResult, but
     * its merged report is NOT the spec's canonical one — callers must
     * treat result.cancelledShards > 0 as "do not publish".
     */
    const std::atomic<bool>* cancel = nullptr;

    /**
     * When non-empty, shard results are memoized in this directory
     * (see sweep/cache.h): already-cached shards replay instead of
     * simulating, and freshly simulated shards are inserted. The
     * merged report is byte-identical either way; only
     * SweepResult::cachedShards / simulatedShards and stderr
     * provenance differ. Incompatible with spec.shardReportsDir
     * (cached shards cannot reproduce per-shard report files) —
     * combining them is a pre-flight error.
     */
    std::string cacheDir;

    /**
     * Validate, expand, and run every shard on @p jobs pool threads.
     * Returns the results in shard-index order regardless of
     * completion order. Errors are pre-flight only (invalid spec,
     * unknown names, unwritable shard-report directory); shard
     * failures are recorded in the result instead.
     */
    common::Expected<SweepResult> run(int jobs);

    /** The spec this runner executes. */
    const SweepSpec& spec() const { return spec_; }

    /**
     * Fold @p result into one deterministic p10ee-report/1 document
     * (see the determinism contract above). @p tool names the emitting
     * binary in the report meta.
     */
    static obs::JsonReport merge(const SweepSpec& spec,
                                 const SweepResult& result,
                                 const std::string& tool);

    /**
     * Cache-provenance sidecar report (sweep.shards / sweep.cached /
     * sweep.simulated). Deliberately separate from merge(): provenance
     * depends on cache warmth, so folding it into the merged report
     * would break the byte-identity contract.
     */
    static obs::JsonReport cacheStats(const SweepResult& result,
                                      const std::string& tool);

    /**
     * Run one shard in isolation. Public because remote execution
     * (daemon shard jobs, fabric degraded-mode fallback) runs single
     * shards outside the pool; the result is a pure function of
     * (spec, shard), so where it runs cannot matter.
     */
    ShardResult runShard(const ShardSpec& shard) const;

  private:
    SweepSpec spec_;
};

} // namespace p10ee::sweep

#endif // P10EE_SWEEP_RUNNER_H
