/**
 * @file
 * Sweep execution and deterministic merge.
 *
 * The SweepRunner executes every shard of an expanded SweepSpec as a
 * fully isolated simulation — its own CoreModel, its own
 * TimeSeriesRecorder (created on the worker thread; the recorder's
 * single-owner contract enforces the isolation), its own RNG streams
 * derived from (spec seed, shard index) — on a work-stealing
 * ThreadPool. Shards never share mutable state, so the thread count is
 * purely a throughput knob.
 *
 * Failure semantics per shard: a run that exceeds the spec's cycle
 * budget is recorded as a timeout; a transient infrastructure failure
 * is retried up to max_retries with deterministic exponential backoff
 * (the generator-draw-burning idiom fault::CampaignRunner uses);
 * anything still failing is skipped-and-recorded. One bad shard never
 * kills a sweep.
 *
 * Determinism contract: merge() produces a p10ee-report/1 document that
 * is a pure function of the spec. Results are stored by shard index and
 * folded in index order, every number in the report derives from
 * simulation state (never from the host clock — meta wall_s and
 * host_mips are fixed at zero in merged reports; real timing goes to
 * stderr in the CLI), so the merged JSON is byte-identical across
 * --jobs values and scheduling orders. The determinism test diffs the
 * whole file.
 */

#ifndef P10EE_SWEEP_RUNNER_H
#define P10EE_SWEEP_RUNNER_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/error.h"
#include "obs/report.h"
#include "sweep/spec.h"

namespace p10ee::sweep {

/** Outcome of one shard (ok or recorded failure — never both halves). */
struct ShardResult
{
    uint64_t index = 0;
    std::string key;

    bool ok = false;
    /** Failure category + message when !ok (timeout, transient, ...). */
    common::Error error;
    int retries = 0; ///< transient-failure retries consumed

    // Simulation results (valid when ok).
    uint64_t cycles = 0;
    uint64_t instrs = 0;
    double ipc = 0.0;
    double powerW = 0.0;
    double ipcPerW = 0.0;

    /** Host wall-clock of this shard (diagnostic only; NEVER merged). */
    double wallSeconds = 0.0;

    /**
     * Replayed from the shard cache instead of simulated (provenance
     * only — cached and simulated results are byte-identical in the
     * merged report, so this flag never influences merge()).
     */
    bool fromCache = false;

    /** Per-shard IPC telemetry when the spec samples (x = cycle). */
    std::vector<double> ipcX;
    std::vector<double> ipcY;
};

/** All shard outcomes plus fold-level aggregates, in shard-index order. */
struct SweepResult
{
    std::vector<ShardResult> shards;
    uint64_t okCount = 0;
    uint64_t failed = 0;
    uint64_t retriesTotal = 0;
    /** Simulated instructions (warmup + measured) across ok shards —
        counted identically for cached and simulated shards, so the
        merged report's meta is cache-independent. */
    uint64_t simInstrs = 0;

    /** Provenance split (cached + simulated == shards.size()). */
    uint64_t cachedShards = 0;
    uint64_t simulatedShards = 0;

    /** Geometric-mean IPC over ok shards (0 when none). */
    double geoMeanIpc() const;

    /** Arithmetic-mean power over ok shards (0 when none). */
    double meanPowerW() const;
};

/** Executes a SweepSpec's shards in parallel and merges the results. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepSpec spec) : spec_(std::move(spec)) {}

    /**
     * Called after each shard finishes, from worker threads but
     * serialized under a mutex. Completion order is scheduling-
     * dependent — anything deterministic must come from the returned
     * SweepResult, not from this stream.
     */
    std::function<void(const ShardResult&)> onProgress;

    /**
     * When non-empty, shard results are memoized in this directory
     * (see sweep/cache.h): already-cached shards replay instead of
     * simulating, and freshly simulated shards are inserted. The
     * merged report is byte-identical either way; only
     * SweepResult::cachedShards / simulatedShards and stderr
     * provenance differ. Incompatible with spec.shardReportsDir
     * (cached shards cannot reproduce per-shard report files) —
     * combining them is a pre-flight error.
     */
    std::string cacheDir;

    /**
     * Validate, expand, and run every shard on @p jobs pool threads.
     * Returns the results in shard-index order regardless of
     * completion order. Errors are pre-flight only (invalid spec,
     * unknown names, unwritable shard-report directory); shard
     * failures are recorded in the result instead.
     */
    common::Expected<SweepResult> run(int jobs);

    /** The spec this runner executes. */
    const SweepSpec& spec() const { return spec_; }

    /**
     * Fold @p result into one deterministic p10ee-report/1 document
     * (see the determinism contract above). @p tool names the emitting
     * binary in the report meta.
     */
    static obs::JsonReport merge(const SweepSpec& spec,
                                 const SweepResult& result,
                                 const std::string& tool);

    /**
     * Cache-provenance sidecar report (sweep.shards / sweep.cached /
     * sweep.simulated). Deliberately separate from merge(): provenance
     * depends on cache warmth, so folding it into the merged report
     * would break the byte-identity contract.
     */
    static obs::JsonReport cacheStats(const SweepResult& result,
                                      const std::string& tool);

  private:
    /** Run one shard in isolation (worker-thread context). */
    ShardResult runShard(const ShardSpec& shard) const;

    SweepSpec spec_;
};

} // namespace p10ee::sweep

#endif // P10EE_SWEEP_RUNNER_H
