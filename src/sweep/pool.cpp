#include "sweep/pool.h"

#include <utility>

#include "common/assert.h"

namespace p10ee::sweep {

namespace {

/**
 * Worker identity for nested submits: which pool this thread belongs
 * to (nullptr off-pool) and its deque index in it.
 */
thread_local ThreadPool* t_pool = nullptr;
thread_local size_t t_self = 0;

} // namespace

ThreadPool::ThreadPool(int threads)
{
    const size_t n = threads < 1 ? 1 : static_cast<size_t>(threads);
    deques_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        deques_.push_back(std::make_unique<Deque>());
    workers_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        // Drain-then-stop: destruction waits for every submitted task
        // (dropping queued shards on teardown would make results
        // depend on destructor timing). Errors raised since the last
        // wait() are intentionally dropped here — call wait() to
        // observe them.
        std::unique_lock<std::mutex> lk(mu_);
        doneCv_.wait(lk, [this] {
            return pending_.load(std::memory_order_acquire) == 0;
        });
        stopping_ = true;
        workCv_.notify_all();
    }
    for (auto& w : workers_)
        w.join();
}

int
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

void
ThreadPool::submit(std::function<void()> task)
{
    P10_ASSERT(static_cast<bool>(task), "submit of an empty task");
    pending_.fetch_add(1, std::memory_order_acq_rel);
    // Count before pushing so queued_ never under-reports work (a
    // transient over-report only costs a spurious wake-up).
    queued_.fetch_add(1, std::memory_order_acq_rel);

    if (t_pool == this) {
        // Nested submit: the owner's end of its own deque, so nested
        // work runs depth-first (and cache-warm) before older tasks.
        Deque& d = *deques_[t_self];
        std::lock_guard<std::mutex> lk(d.mu);
        d.q.push_front(std::move(task));
    } else {
        // External submit: appended round-robin, so each deque runs
        // its externally submitted tasks in submission order (a
        // single-worker pool degenerates to a plain FIFO executor,
        // which progress streams rely on).
        Deque& d = *deques_[nextDeque_.fetch_add(
                                1, std::memory_order_relaxed) %
                            deques_.size()];
        std::lock_guard<std::mutex> lk(d.mu);
        d.q.push_back(std::move(task));
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        workCv_.notify_one();
    }
}

bool
ThreadPool::runOne(size_t self)
{
    std::function<void()> task;
    {
        // Own deque, owner's end: nested submits (pushed to the
        // front) run depth-first, then external tasks in submission
        // order.
        Deque& d = *deques_[self];
        std::lock_guard<std::mutex> lk(d.mu);
        if (!d.q.empty()) {
            task = std::move(d.q.front());
            d.q.pop_front();
        }
    }
    if (!task) {
        // Steal from the opposite end of a victim's deque, away from
        // the owner's working front (the Chase-Lev discipline).
        for (size_t k = 1; k < deques_.size() && !task; ++k) {
            Deque& d = *deques_[(self + k) % deques_.size()];
            std::lock_guard<std::mutex> lk(d.mu);
            if (!d.q.empty()) {
                task = std::move(d.q.back());
                d.q.pop_back();
            }
        }
    }
    if (!task)
        return false;
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    runTask(task);
    return true;
}

void
ThreadPool::runTask(std::function<void()>& task)
{
    try {
        task();
    } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!firstError_)
            firstError_ = std::current_exception();
    }
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lk(mu_);
        doneCv_.notify_all();
    }
}

void
ThreadPool::workerLoop(size_t self)
{
    t_pool = this;
    t_self = self;
    for (;;) {
        if (runOne(self))
            continue;
        std::unique_lock<std::mutex> lk(mu_);
        workCv_.wait(lk, [this] {
            return stopping_ ||
                   queued_.load(std::memory_order_acquire) > 0;
        });
        if (stopping_ && queued_.load(std::memory_order_acquire) <= 0)
            break;
    }
    t_pool = nullptr;
}

void
ThreadPool::wait()
{
    P10_ASSERT(t_pool != this,
               "ThreadPool::wait() from inside a task would deadlock");
    std::unique_lock<std::mutex> lk(mu_);
    doneCv_.wait(lk, [this] {
        return pending_.load(std::memory_order_acquire) == 0;
    });
    if (firstError_) {
        std::exception_ptr e = std::exchange(firstError_, nullptr);
        std::rethrow_exception(e);
    }
}

void
ThreadPool::parallelFor(uint64_t n,
                        const std::function<void(uint64_t)>& fn)
{
    for (uint64_t i = 0; i < n; ++i)
        submit([&fn, i] { fn(i); });
    wait();
}

} // namespace p10ee::sweep
