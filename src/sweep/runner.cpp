#include "sweep/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <memory>
#include <mutex>

#include "chip/chip.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/core.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "power/energy.h"
#include "sweep/cache.h"
#include "sweep/pool.h"
#include "workloads/registry.h"
#include "workloads/synthetic.h"

namespace p10ee::sweep {

using common::Error;
using common::Expected;
using common::Status;

double
SweepResult::geoMeanIpc() const
{
    double logSum = 0.0;
    uint64_t n = 0;
    for (const ShardResult& s : shards)
        if (s.ok && s.ipc > 0.0) {
            logSum += std::log(s.ipc);
            ++n;
        }
    return n == 0 ? 0.0 : std::exp(logSum / static_cast<double>(n));
}

double
SweepResult::meanPowerW() const
{
    double sum = 0.0;
    uint64_t n = 0;
    // FastM1 shards carry no power result at all; averaging their
    // zeros in would silently dilute the mean, so only Full shards
    // contribute.
    for (const ShardResult& s : shards)
        if (s.ok && s.mode == api::SimMode::Full) {
            sum += s.powerW;
            ++n;
        }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

namespace {

/** Shard-report filename: the key with path separators flattened. */
std::string
shardReportPath(const std::string& dir, const ShardSpec& shard)
{
    std::string flat = shard.key();
    for (char& c : flat)
        if (c == '/')
            c = '_';
    return dir + "/" + flat + ".json";
}

} // namespace

ShardResult
SweepRunner::runShard(const ShardSpec& shard) const
{
    ShardResult res;
    res.index = shard.index;
    res.key = shard.key();
    res.cores = std::max(shard.cores, 1);
    res.mode = shard.mode;
    const bool fast = shard.mode == api::SimMode::FastM1;
    if (!shard.profile.frontend.empty()) {
        // Provenance for externally ingested workloads: the recorded
        // name (scheme prefix stripped) plus the content hash that
        // keyed the cache, so a report states exactly which bytes it
        // measured.
        res.traceName =
            shard.profile.name.size() > shard.profile.frontend.size() + 1
                ? shard.profile.name.substr(
                      shard.profile.frontend.size() + 1)
                : shard.profile.name;
        res.traceHash = shard.profile.contentHash;
    }

    // Every shard owns a generator derived from (master seed, shard
    // index), so any one shard replays in isolation — the campaign
    // engine's idiom, keyed on the sweep's shard identity.
    common::Xoshiro infraRng(
        common::splitSeed(spec_.seed, shard.index));

    const auto wallStart = std::chrono::steady_clock::now();
    int attempts = 0;
    for (;;) {
        // Synthetic transient infrastructure failure (tests of the
        // retry machinery); drawn before the run like a dispatch that
        // never reached the simulator.
        if (spec_.infraFailProb > 0.0 &&
            infraRng.chance(spec_.infraFailProb)) {
            if (attempts >= spec_.maxRetries) {
                res.error = Error::transient(
                    "shard " + res.key + ": infrastructure failure "
                    "persisted through " +
                    std::to_string(attempts) + " retries");
                break;
            }
            ++attempts;
            // Exponential backoff, modeled deterministically: burn a
            // doubling number of generator draws per attempt (the
            // wall-clock harness analogue would sleep 2^attempts
            // units before re-dispatching).
            for (int b = 0; b < (1 << attempts); ++b)
                infraRng.next();
            continue;
        }

        // One source per (core, SMT thread). Thread ids are flattened
        // as core * smt + t so a 1-core shard draws ids 0..smt-1 —
        // exactly the historical bare-core streams — and every extra
        // core gets its own deterministic replicas.
        const int nCores = res.cores;
        std::vector<std::unique_ptr<workloads::CheckpointableSource>>
            sources;
        std::vector<std::vector<workloads::InstrSource*>> perCore(
            static_cast<size_t>(nCores));
        bool sourceFailed = false;
        for (int c = 0; c < nCores && !sourceFailed; ++c) {
            for (int t = 0; t < shard.smt; ++t) {
                auto src = workloads::makeSource(shard.profile,
                                                 c * shard.smt + t);
                if (!src) {
                    // A workload whose backing file vanished or changed
                    // between expansion and execution is a recorded
                    // shard failure, not a crash — the sweep stays
                    // index-complete.
                    res.error = Error(src.error().code,
                                      "shard " + res.key + ": " +
                                          src.error().message);
                    sourceFailed = true;
                    break;
                }
                sources.push_back(std::move(src.value()));
                perCore[static_cast<size_t>(c)].push_back(
                    sources.back().get());
            }
        }
        if (sourceFailed)
            break;

        chip::ChipConfig chipCfg;
        chipCfg.cores.assign(static_cast<size_t>(nCores), shard.config);
        chipCfg.seed = spec_.seed;
        chipCfg.fastM1 = fast;
        chip::ChipModel model(chipCfg);
        chip::ChipRunOptions opts;
        opts.measureInstrs = spec_.instrs;
        opts.maxCycles = spec_.maxCycles;

        // The recorder is created here, on the worker thread, so its
        // single-owner binding lands on this shard's thread.
        std::unique_ptr<obs::TimeSeriesRecorder> rec;
        if (spec_.sampleInterval > 0) {
            rec = std::make_unique<obs::TimeSeriesRecorder>(
                spec_.sampleInterval);
            opts.recorder = rec.get();
        }

        // Coarse core-loop phase timing behind a sampling gate: every
        // kPhaseSampleEvery-th simulated shard (process-wide) observes
        // how the wall time splits between the timing loop and the
        // energy evaluation. Sampled so the steady state costs two
        // clock reads per ~16 shards; the histograms are telemetry
        // only (metrics sidecars / the `metrics` request) and never
        // touch the shard result.
        static const obs::MetricId simPhaseUs =
            obs::metrics().histogram("sweep.phase.sim_us");
        static const obs::MetricId powerPhaseUs =
            obs::metrics().histogram("sweep.phase.power_us");
        static std::atomic<uint64_t> phaseTick{0};
        constexpr uint64_t kPhaseSampleEvery = 16;
        const bool phaseSampled =
            phaseTick.fetch_add(1, std::memory_order_relaxed) %
                kPhaseSampleEvery ==
            0;
        const auto simStart = std::chrono::steady_clock::now();

        model.beginRun(perCore);
        model.advance(spec_.warmup * static_cast<uint64_t>(shard.smt));
        const chip::ChipResult run = model.measure(opts);
        const auto simEnd = std::chrono::steady_clock::now();
        if (phaseSampled) {
            obs::metrics().observe(
                simPhaseUs,
                static_cast<uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::microseconds>(simEnd - simStart)
                        .count()));
            // The energy rollup now happens inside the chip's measure
            // (per-core, per-epoch); the power phase keeps its
            // histogram but records the residual fold only.
            obs::metrics().observe(
                powerPhaseUs,
                static_cast<uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - simEnd)
                        .count()));
        }
        if (run.timedOut) {
            // A cycle-budget overrun is deterministic — retrying would
            // reproduce it, so it is recorded immediately.
            res.error = Error::timeout(
                "shard " + res.key + ": exceeded cycle budget of " +
                std::to_string(spec_.maxCycles) + " cycles");
            break;
        }

        res.ok = true;
        res.cycles = run.chipCycles;
        res.instrs = run.instrs;
        res.ipc = run.ipc;
        res.powerW = run.powerW;
        res.ipcPerW = run.powerW > 0.0 ? res.ipc / run.powerW : 0.0;
        if (nCores >= 2) {
            res.chipFreqGhz = run.freqGhz;
            res.chipBoost = run.boost;
            res.throttledEpochs = run.throttledEpochs;
            res.droopTrips = run.droopTrips;
            res.coreRows.reserve(run.cores.size());
            for (const chip::ChipCoreOutcome& co : run.cores) {
                api::ShardCoreRow row;
                row.cycles = co.run.cycles;
                row.stallCycles = co.stallCycles;
                row.effCycles = co.effCycles;
                row.instrs = co.run.instrs;
                row.ipc = co.ipc;
                row.powerW = co.powerW;
                row.freqGhz = co.freqGhz;
                res.coreRows.push_back(row);
            }
        }

        if (rec) {
            // 1-core shards surface the bare core's IPC telemetry;
            // chip shards surface the chip-rollup IPC track.
            const std::string ipcTrack =
                nCores >= 2 ? "chip.ipc" : "core.ipc";
            for (const auto& track : rec->counters())
                if (track.name == ipcTrack) {
                    res.ipcX.reserve(track.cycle.size());
                    res.ipcY.reserve(track.value.size());
                    for (size_t i = 0; i < track.cycle.size(); ++i) {
                        res.ipcX.push_back(
                            static_cast<double>(track.cycle[i]));
                        res.ipcY.push_back(track.value[i]);
                    }
                }
        }

        if (!spec_.shardReportsDir.empty()) {
            obs::JsonReport report;
            report.meta().tool = "p10sweep_shard";
            report.meta().config = shard.configName;
            report.meta().workload = shard.profile.name;
            report.meta().seed = shard.profile.seed;
            report.meta().git = obs::gitDescribe();
            report.addScalar("ipc", res.ipc);
            report.addScalar("cycles",
                             static_cast<double>(res.cycles));
            report.addScalar("instrs",
                             static_cast<double>(res.instrs));
            // Power/efficiency are absent (not zeroed) for FastM1;
            // the meta mode key records why.
            if (fast) {
                report.meta().mode = api::simModeName(shard.mode);
            } else {
                report.addScalar("power_w", res.powerW);
                report.addScalar("ipc_per_w", res.ipcPerW);
            }
            if (rec)
                report.addTimeSeries(*rec);
            auto st = report.writeTo(
                shardReportPath(spec_.shardReportsDir, shard));
            if (!st.ok()) {
                // A lost side artifact degrades the shard to a
                // recorded failure; the sweep itself continues.
                res.ok = false;
                res.error = st.error();
            }
        }
        break;
    }
    res.retries = attempts;
    res.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wallStart)
                          .count();
    return res;
}

Expected<SweepResult>
SweepRunner::run(int jobs)
{
    Expected<std::vector<ShardSpec>> expanded = spec_.expand();
    if (!expanded)
        return expanded.error();
    const std::vector<ShardSpec>& shards = expanded.value();

    std::unique_ptr<ShardCache> cache;
    if (!cacheDir.empty()) {
        if (!spec_.shardReportsDir.empty())
            return Error::invalidArgument(
                "cache directory and shard_reports_dir are mutually "
                "exclusive: a cached shard replays its result without "
                "re-simulating, so it cannot reproduce per-shard "
                "report files");
        cache = std::make_unique<ShardCache>(cacheDir);
        if (Status st = cache->prepare(); !st)
            return st.error();
    }

    if (!spec_.shardReportsDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(spec_.shardReportsDir, ec);
        if (ec)
            return Error::invalidArgument(
                "cannot create shard report directory '" +
                spec_.shardReportsDir + "': " + ec.message());
        // Keys are unique by construction; this guards the flattening
        // above against ever mapping two shards onto one file.
        std::vector<std::string> paths;
        paths.reserve(shards.size());
        for (const ShardSpec& s : shards)
            paths.push_back(shardReportPath(spec_.shardReportsDir, s));
        if (Status st = obs::distinctOutputPaths(paths); !st)
            return st.error();
    }

    SweepResult result;
    result.shards.resize(shards.size());

    std::mutex progressMu;
    ThreadPool pool(jobs);
    pool.parallelFor(shards.size(), [&](uint64_t i) {
        ShardResult shard;
        bool hit = false;
        if (cancel != nullptr &&
            cancel->load(std::memory_order_relaxed)) {
            // Cooperative cancellation: record without simulating. The
            // result stays index-complete so the caller can still
            // account every shard; it is just not publishable.
            shard.index = shards[i].index;
            shard.key = shards[i].key();
            shard.error = Error::cancelled(
                "shard " + shard.key + ": sweep cancelled");
        } else {
            if (cache) {
                if (auto cached = cache->lookup(spec_, shards[i])) {
                    shard = std::move(*cached);
                    shard.fromCache = true;
                    hit = true;
                }
            }
            if (!hit) {
                shard = runShard(shards[i]);
                if (cache) {
                    // Best-effort: an unwritable cache degrades to not
                    // caching; it must never fail the sweep.
                    Status st =
                        cache->insert(spec_, shards[i], shard);
                    (void)st;
                }
            }
        }
        if (onProgress) {
            api::ProgressEvent ev;
            ev.index = shard.index;
            ev.total = shards.size();
            ev.key = shard.key;
            ev.ok = shard.ok;
            ev.status = shard.ok
                            ? "ok"
                            : common::errorCodeName(shard.error.code);
            ev.retries = shard.retries;
            ev.fromCache = shard.fromCache;
            std::lock_guard<std::mutex> lk(progressMu);
            onProgress(ev);
        }
        // Slot i is this task's alone — results land by index, which
        // is what makes the fold below scheduling-independent.
        result.shards[i] = std::move(shard);
    });

    // Index-ordered fold: aggregates come out identical no matter how
    // many threads ran the shards or in what order they finished.
    for (const ShardResult& s : result.shards) {
        result.retriesTotal += static_cast<uint64_t>(s.retries);
        if (s.fromCache)
            ++result.cachedShards;
        else
            ++result.simulatedShards;
        if (s.error.code == common::ErrorCode::Cancelled)
            ++result.cancelledShards;
        if (s.ok) {
            ++result.okCount;
            // Warmup is simulated once per (core, SMT thread); the
            // measured instrs already sum across cores.
            result.simInstrs +=
                s.instrs + spec_.warmup *
                               static_cast<uint64_t>(
                                   shards[s.index].smt) *
                               static_cast<uint64_t>(std::max(
                                   shards[s.index].cores, 1));
        } else {
            ++result.failed;
        }
    }
    return result;
}

obs::JsonReport
SweepRunner::merge(const SweepSpec& spec, const SweepResult& result,
                   const std::string& tool)
{
    obs::JsonReport report;
    report.meta().tool = tool;
    report.meta().seed = spec.seed;
    report.meta().git = obs::gitDescribe();
    // Byte-determinism: every field of the merged report must be a
    // pure function of the spec. Wall-clock and host throughput never
    // are, so they are pinned to zero here (the CLI reports real
    // timing on stderr); simulated instruction counts ARE
    // deterministic and stay.
    report.meta().wallSeconds = 0.0;
    report.meta().hostMips = 0.0;
    report.meta().simInstrs = result.simInstrs;

    report.addScalar("sweep.shards",
                     static_cast<double>(result.shards.size()));
    report.addScalar("sweep.ok", static_cast<double>(result.okCount));
    report.addScalar("sweep.failed",
                     static_cast<double>(result.failed));
    report.addScalar("sweep.retries",
                     static_cast<double>(result.retriesTotal));
    report.addScalar("sweep.geomean_ipc", result.geoMeanIpc());
    // Mean power is a Full-mode aggregate; an all-FastM1 sweep has
    // nothing to average and the scalar is absent, not zero.
    bool anyFull = false;
    bool anyFast = false;
    for (const ShardResult& s : result.shards) {
        if (s.mode == api::SimMode::FastM1)
            anyFast = true;
        else
            anyFull = true;
    }
    if (anyFull)
        report.addScalar("sweep.mean_power_w", result.meanPowerW());

    // The mode column appears only in sweeps that actually ran FastM1
    // shards, so Full-only sweeps keep their exact historical bytes.
    common::Table t("sweep shards");
    if (anyFast)
        t.header({"shard", "config", "workload", "smt", "seed", "mode",
                  "status", "retries", "cycles", "ipc", "power_w"});
    else
        t.header({"shard", "config", "workload", "smt", "seed",
                  "status", "retries", "cycles", "ipc", "power_w"});
    for (const ShardResult& s : result.shards) {
        // key = "config/workload/smtN/seedK" — split it back into the
        // table's axis columns.
        std::vector<std::string> parts;
        size_t start = 0;
        for (size_t pos = 0; pos <= s.key.size(); ++pos)
            if (pos == s.key.size() || s.key[pos] == '/') {
                parts.push_back(s.key.substr(start, pos - start));
                start = pos + 1;
            }
        const std::string config = parts.size() > 0 ? parts[0] : "";
        const std::string workload = parts.size() > 1 ? parts[1] : "";
        const std::string smt =
            parts.size() > 2 && parts[2].size() > 3
                ? parts[2].substr(3)
                : "";
        const std::string seed =
            parts.size() > 3 && parts[3].size() > 4
                ? parts[3].substr(4)
                : "";
        const bool fastRow = s.mode == api::SimMode::FastM1;
        std::vector<std::string> row = {std::to_string(s.index), config,
                                        workload, smt, seed};
        if (anyFast)
            row.push_back(api::simModeName(s.mode));
        row.push_back(s.ok ? "ok"
                           : common::errorCodeName(s.error.code));
        row.push_back(std::to_string(s.retries));
        row.push_back(std::to_string(s.cycles));
        row.push_back(common::fmt(s.ipc, 4));
        // A FastM1 shard has no power result: "-" renders absence,
        // where "0.000" would read as a measured zero.
        row.push_back(fastRow ? "-" : common::fmt(s.powerW, 3));
        t.row(std::move(row));
    }
    report.addTable(t);

    // Trace-workload provenance: which recorded bytes each trace:*
    // shard measured. Deduplicated in index order so the table is a
    // pure function of the spec; the content hash is rendered as fixed
    // 16-digit hex because report scalars are doubles and would round
    // a 64-bit value.
    bool anyTrace = false;
    for (const ShardResult& s : result.shards)
        if (!s.traceName.empty())
            anyTrace = true;
    if (anyTrace) {
        common::Table tt("trace workloads");
        tt.header({"workload", "trace", "content_hash"});
        std::vector<std::string> seenWorkloads;
        for (const ShardResult& s : result.shards) {
            if (s.traceName.empty())
                continue;
            std::vector<std::string> parts;
            size_t start = 0;
            for (size_t pos = 0; pos <= s.key.size(); ++pos)
                if (pos == s.key.size() || s.key[pos] == '/') {
                    parts.push_back(s.key.substr(start, pos - start));
                    start = pos + 1;
                }
            const std::string workload =
                parts.size() > 1 ? parts[1] : "";
            bool seen = false;
            for (const std::string& w : seenWorkloads)
                if (w == workload)
                    seen = true;
            if (seen)
                continue;
            seenWorkloads.push_back(workload);
            std::string hex;
            for (int shift = 60; shift >= 0; shift -= 4)
                hex.push_back(
                    "0123456789abcdef"[(s.traceHash >> shift) & 0xf]);
            tt.row({workload, s.traceName, hex});
        }
        report.addTable(tt);
    }

    // Chip-scope rollup: emitted only when the sweep actually ran
    // multi-core shards, so 1-core sweeps keep the exact historical
    // report bytes (the bare-core identity contract).
    bool anyChip = false;
    for (const ShardResult& s : result.shards)
        if (s.cores >= 2)
            anyChip = true;
    if (anyChip) {
        uint64_t chipShards = 0;
        common::Table ct("chip shards");
        ct.header({"shard", "cores", "status", "chip_cycles", "instrs",
                   "ipc", "power_w", "freq_ghz", "boost",
                   "throttled_epochs", "droop_trips"});
        for (const ShardResult& s : result.shards) {
            if (s.cores < 2)
                continue;
            ++chipShards;
            ct.row({std::to_string(s.index), std::to_string(s.cores),
                    s.ok ? "ok" : common::errorCodeName(s.error.code),
                    std::to_string(s.cycles), std::to_string(s.instrs),
                    common::fmt(s.ipc, 4), common::fmt(s.powerW, 3),
                    common::fmt(s.chipFreqGhz, 4),
                    common::fmt(s.chipBoost, 4),
                    std::to_string(s.throttledEpochs),
                    std::to_string(s.droopTrips)});
        }
        report.addTable(ct);

        common::Table cc("chip cores");
        cc.header({"shard", "core", "cycles", "stall_cycles",
                   "eff_cycles", "instrs", "ipc", "power_w",
                   "freq_ghz"});
        for (const ShardResult& s : result.shards) {
            if (s.cores < 2 || !s.ok)
                continue;
            for (size_t i = 0; i < s.coreRows.size(); ++i) {
                const api::ShardCoreRow& c = s.coreRows[i];
                cc.row({std::to_string(s.index), std::to_string(i),
                        std::to_string(c.cycles),
                        std::to_string(c.stallCycles),
                        std::to_string(c.effCycles),
                        std::to_string(c.instrs), common::fmt(c.ipc, 4),
                        common::fmt(c.powerW, 3),
                        common::fmt(c.freqGhz, 4)});
            }
        }
        report.addTable(cc);
        report.addScalar("chip.shards",
                         static_cast<double>(chipShards));
    }

    for (const ShardResult& s : result.shards)
        if (!s.ipcX.empty())
            report.addSeries("shard." + s.key + ".ipc", "ipc", s.ipcX,
                             s.ipcY);
    return report;
}

obs::JsonReport
SweepRunner::cacheStats(const SweepResult& result,
                        const std::string& tool)
{
    obs::JsonReport report;
    report.meta().tool = tool;
    report.meta().git = obs::gitDescribe();
    report.meta().wallSeconds = 0.0;
    report.meta().hostMips = 0.0;
    report.addScalar("sweep.shards",
                     static_cast<double>(result.shards.size()));
    report.addScalar("sweep.cached",
                     static_cast<double>(result.cachedShards));
    report.addScalar("sweep.simulated",
                     static_cast<double>(result.simulatedShards));
    return report;
}

} // namespace p10ee::sweep
