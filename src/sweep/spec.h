/**
 * @file
 * Sweep specification: the declarative grid a sweep runs.
 *
 * The paper's methodology is a sweep — APEX power extraction, M1-linked
 * counter models and SERMiner derating are all evaluated over grids of
 * (core config x workload x seed) — and this type is that grid made
 * first-class: a SweepSpec names its axes, validates like every other
 * user input in the tree (structured Error, never an abort), and
 * expands into a flat, deterministically ordered list of shard jobs.
 *
 * The expansion order is part of the format: shards are numbered in
 * nested-loop order, configs outermost, then workloads, then SMT
 * levels, then chip sizes, then fidelity modes, then seed replicas.
 * The shard index is the identity every
 * downstream guarantee hangs off — per-shard RNG streams derive from
 * it (common::splitSeed), and the merge stage folds results in index
 * order, which is what makes merged reports byte-identical no matter
 * how many threads executed the shards or in what order they finished.
 */

#ifndef P10EE_SWEEP_SPEC_H
#define P10EE_SWEEP_SPEC_H

#include <cstdint>
#include <string>
#include <vector>

#include "api/types.h"
#include "common/error.h"
#include "core/config.h"
#include "obs/json.h"
#include "workloads/spec_profiles.h"

namespace p10ee::sweep {

/** One expanded grid point: an isolated simulation job. */
struct ShardSpec
{
    uint64_t index = 0; ///< position in expansion order (the identity)
    std::string configName;
    core::CoreConfig config;
    /** Profile with the replica seed already derived (splitSeed). */
    workloads::WorkloadProfile profile;
    int smt = 1;
    /** Cores on the simulated chip; 1 = the bare-core path. */
    int cores = 1;
    /** Fidelity mode of this shard (api::SimMode semantics). */
    api::SimMode mode = api::SimMode::Full;
    uint64_t seedIndex = 0;

    /**
     * "config/workload/smtN/seedK" — stable human-readable identity.
     * Multi-core shards append "/cN", FastM1 shards "/fast_m1";
     * Full-mode 1-core shards keep the exact historical key, part of
     * the 1-core ≡ bare-core byte-identity contract.
     */
    std::string key() const;
};

/** The declarative sweep grid (what `--spec sweep.json` deserializes). */
struct SweepSpec
{
    /** Machine names: "power9", "power10", or "ablate:<group>". */
    std::vector<std::string> configs;
    /** Workload profile names (see `p10sim_cli --list`). */
    std::vector<std::string> workloads;
    std::vector<int> smt = {1};
    /** Chip sizes to sweep: cores per simulated chip. 1 runs the
        bare-core path; N >= 2 runs N cores through the shared-resource
        and chip-governor layers (src/chip). */
    std::vector<int> cores = {1};
    /**
     * Fidelity modes to sweep (JSON key "mode": ["full", "fast_m1"]).
     * FastM1 entries require every cores entry to be 1 and no
     * sample_interval (telemetry is exactly what the mode skips);
     * mixed-mode sweeps merge into one report where FastM1 rows carry
     * no power column.
     */
    std::vector<api::SimMode> modes = {api::SimMode::Full};

    /** Seed replicas per grid point; replica k runs the profile under
        splitSeed(profile.seed, k), replica 0 the profile default. */
    uint64_t seeds = 1;

    uint64_t instrs = 20000; ///< measured instructions per shard
    uint64_t warmup = 5000;  ///< warmup instructions per thread

    /** Per-shard cycle budget; 0 = unbounded. A shard exceeding it is
        recorded as a timeout failure, never retried. */
    uint64_t maxCycles = 0;

    int maxRetries = 2; ///< retries after a transient infra failure

    /** Synthetic transient-failure probability per attempt, drawn from
        the shard's own seeded stream (tests of the retry machinery;
        zero in normal use). */
    double infraFailProb = 0.0;

    /** Master seed: per-shard infrastructure streams derive from it. */
    uint64_t seed = 1;

    /** Telemetry sampling interval per shard; 0 = no telemetry. */
    uint64_t sampleInterval = 0;

    /** When non-empty, every shard also writes its own p10ee-report/1
        file under this directory (created if missing). */
    std::string shardReportsDir;

    /** Structured validation of user-supplied fields. */
    common::Status validate() const;

    /** Grid size (product of the axis lengths). */
    uint64_t shardCount() const;

    /**
     * Expand the grid into shard jobs in the documented order.
     * Resolves config and workload names; unknown names are NotFound
     * errors naming the offender.
     */
    common::Expected<std::vector<ShardSpec>> expand() const;

    /**
     * Canonical JSON rendering of the spec: every field, fixed key
     * order, fixed number formatting. `fromJson(toJson())` reproduces
     * the spec exactly, which is what lets a coordinator ship a spec to
     * remote workers and still meet the byte-identity contract — both
     * sides expand the same grid from the same text.
     */
    std::string toJson() const;

    /** Parse a spec from JSON text. Unknown keys are errors — a typo
        in an axis name must not silently shrink a sweep. */
    static common::Expected<SweepSpec> fromJson(const std::string& text);

    /** fromJson() over an already-parsed DOM node (the daemon embeds
        specs inside request objects). Same strictness. */
    static common::Expected<SweepSpec> fromJsonValue(
        const obs::JsonValue& root);

    /** fromJson() over the contents of @p path. */
    static common::Expected<SweepSpec> fromJsonFile(
        const std::string& path);

    /** Resolve "power9" / "power10" / "ablate:<group>". */
    static common::Expected<core::CoreConfig> resolveConfig(
        const std::string& name);
};

} // namespace p10ee::sweep

#endif // P10EE_SWEEP_SPEC_H
