/**
 * @file
 * Optimal pipeline depth analysis (paper §II-A, Fig. 2).
 *
 * The concept-phase study that fixed POWER10's pipeline: performance in
 * BIPS at power-limited frequency versus pipeline depth (expressed as
 * logic FO4 per stage) for a range of core power targets. The model
 * follows the methodology the paper cites (Srinivasan et al., Zyuban et
 * al.): frequency scales inversely with per-stage delay; hazard CPI
 * grows with stage count; latch-clock power grows superlinearly with
 * depth; and when a depth point exceeds the power envelope, voltage and
 * frequency scale down together until it fits.
 */

#ifndef P10EE_PIPELINE_DEPTH_H
#define P10EE_PIPELINE_DEPTH_H

#include <vector>

namespace p10ee::pipeline {

/** Workload and design constants of the depth study. */
struct DepthParams
{
    double totalLogicFo4 = 260.0; ///< logic depth of the core loop
    double latchFo4 = 3.0;        ///< latch insertion delay per stage
    double baseFo4 = 27.0;        ///< normalization point (result of
                                  ///< the study; POWER9's depth)
    double cpi0 = 0.62;           ///< CPI at zero per-stage hazard cost
    double hazardPerStage = 0.050;///< CPI added per pipeline stage

    // Power composition at the baseline depth and frequency.
    double latchClockFrac = 0.42;
    double logicFrac = 0.28;
    double arrayFrac = 0.18;
    double leakFrac = 0.12;
    double latchGrowthExp = 1.1;  ///< latches ~ stages^exp

    double vfSlope = 1.0;         ///< df/f per dV/V along the VF curve
};

/** One evaluated depth point. */
struct DepthPoint
{
    double fo4 = 0.0;      ///< logic FO4 per stage
    int stages = 0;
    double freq = 0.0;     ///< relative to the baseline depth
    double voltage = 1.0;  ///< relative, after power limiting
    double ipc = 0.0;
    double bips = 0.0;     ///< normalized to baseline at target 1.0
    double power = 0.0;    ///< relative, after power limiting
    bool powerLimited = false;
};

/**
 * Evaluate one depth at a @p powerTarget (fraction of the baseline
 * power envelope).
 */
DepthPoint evaluateDepth(const DepthParams& params, double fo4,
                         double powerTarget);

/** Sweep a list of FO4 points at one power target. */
std::vector<DepthPoint> sweep(const DepthParams& params,
                              const std::vector<double>& fo4s,
                              double powerTarget);

/** The BIPS-optimal FO4 over a fine sweep at @p powerTarget. */
double optimalFo4(const DepthParams& params, double powerTarget);

} // namespace p10ee::pipeline

#endif // P10EE_PIPELINE_DEPTH_H
