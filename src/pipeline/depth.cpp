#include "pipeline/depth.h"

#include <cmath>

#include "common/assert.h"

namespace p10ee::pipeline {

namespace {

/** Stage count implied by a per-stage logic FO4 budget. */
double
stagesAt(const DepthParams& p, double fo4)
{
    return p.totalLogicFo4 / fo4;
}

} // namespace

DepthPoint
evaluateDepth(const DepthParams& p, double fo4, double powerTarget)
{
    P10_ASSERT(fo4 > p.latchFo4, "stage shorter than the latch overhead");
    DepthPoint pt;
    pt.fo4 = fo4;
    double stages = stagesAt(p, fo4);
    pt.stages = static_cast<int>(std::lround(stages));

    double baseStages = stagesAt(p, p.baseFo4);

    // Cycle time includes the latch overhead on top of the logic FO4.
    double cycle = fo4 + p.latchFo4;
    double baseCycle = p.baseFo4 + p.latchFo4;
    pt.freq = baseCycle / cycle;

    // Hazard CPI grows with depth (flush penalties, load-use bubbles).
    double cpi = p.cpi0 + p.hazardPerStage * stages;
    double baseCpi = p.cpi0 + p.hazardPerStage * baseStages;
    pt.ipc = baseCpi / cpi; // normalized IPC

    // Power at full frequency and nominal voltage, relative to the
    // baseline depth: latch-clock power follows the latch population
    // and frequency; logic/array switching follow frequency; leakage
    // follows the latch population only.
    double latchRatio = std::pow(stages / baseStages, p.latchGrowthExp);
    double pw = p.latchClockFrac * latchRatio * pt.freq +
                p.logicFrac * pt.freq + p.arrayFrac * pt.freq +
                p.leakFrac * latchRatio;

    // Power limiting: scale voltage (and frequency with it) until the
    // point fits the envelope. Dynamic power ~ V^2 f ~ V^3 on the VF
    // curve; leakage ~ V^2.
    if (pw > powerTarget) {
        pt.powerLimited = true;
        double s = std::cbrt(powerTarget / pw);
        // One refinement step for the leakage exponent difference.
        for (int it = 0; it < 8; ++it) {
            double dyn = (pw - p.leakFrac * latchRatio) * s * s * s;
            double leak = p.leakFrac * latchRatio * s * s;
            double total = dyn + leak;
            s *= std::cbrt(powerTarget / total);
        }
        pt.voltage = s;
        pt.freq *= s;
        double dyn = (pw - p.leakFrac * latchRatio) * s * s * s;
        double leak = p.leakFrac * latchRatio * s * s;
        pt.power = dyn + leak;
    } else {
        pt.power = pw;
    }

    pt.bips = pt.freq * pt.ipc;
    return pt;
}

std::vector<DepthPoint>
sweep(const DepthParams& p, const std::vector<double>& fo4s,
      double powerTarget)
{
    std::vector<DepthPoint> out;
    out.reserve(fo4s.size());
    for (double f : fo4s)
        out.push_back(evaluateDepth(p, f, powerTarget));
    return out;
}

double
optimalFo4(const DepthParams& p, double powerTarget)
{
    double best = p.baseFo4;
    double bestBips = 0.0;
    for (double fo4 = 12.0; fo4 <= 54.0; fo4 += 0.5) {
        DepthPoint pt = evaluateDepth(p, fo4, powerTarget);
        if (pt.bips > bestBips) {
            bestBips = pt.bips;
            best = fo4;
        }
    }
    return best;
}

} // namespace p10ee::pipeline
