#include "trace/extract.h"

#include <algorithm>
#include <map>

#include "common/assert.h"
#include "isa/op.h"

namespace p10ee::trace {

using common::Expected;

namespace {

/** One candidate loop, keyed by its head pc. */
struct LoopStat
{
    uint64_t dynInstrs = 0; ///< dynamic instructions attributed
    uint64_t iterations = 0;
    std::vector<isa::TraceInstr> body; ///< first complete iteration
    uint64_t minPc = 0;
    uint64_t maxPc = 0;
};

char
hexDigit(uint64_t v)
{
    return "0123456789abcdef"[v & 0xf];
}

std::string
hexPc(uint64_t pc)
{
    std::string s;
    for (int shift = 60; shift >= 0; shift -= 4)
        if (!s.empty() || ((pc >> shift) & 0xf) != 0 || shift == 0)
            s.push_back(hexDigit(pc >> shift));
    return s;
}

} // namespace

Expected<workloads::ExtractionResult>
extractProxies(const TraceData& data, const ExtractOptions& opts)
{
    P10_ASSERT(opts.topK > 0 && opts.maxLoopInstrs > 0,
               "extraction parameters");
    Expected<std::vector<isa::TraceInstr>> decoded = data.decodeAll();
    if (!decoded)
        return decoded.error();
    const std::vector<isa::TraceInstr>& stream = decoded.value();

    // Pass: walk the stream once. lastSeen maps pc -> most recent
    // stream position, so a taken backward branch identifies the
    // dynamic window of one loop iteration in O(1).
    std::map<uint64_t, size_t> lastSeen;
    std::map<uint64_t, LoopStat> loops;
    for (size_t i = 0; i < stream.size(); ++i) {
        const isa::TraceInstr& in = stream[i];
        if (isa::isBranch(in.op) && in.taken && in.target != 0 &&
            in.target <= in.pc) {
            auto seen = lastSeen.find(in.target);
            if (seen != lastSeen.end()) {
                const size_t head = seen->second;
                const size_t bodyLen = i - head + 1;
                if (bodyLen <= opts.maxLoopInstrs) {
                    uint64_t minPc = in.pc;
                    uint64_t maxPc = in.pc;
                    for (size_t k = head; k <= i; ++k) {
                        minPc = std::min(minPc, stream[k].pc);
                        maxPc = std::max(maxPc, stream[k].pc);
                    }
                    if (maxPc - minPc <= opts.maxCodeSpanBytes) {
                        LoopStat& stat = loops[in.target];
                        stat.dynInstrs += bodyLen;
                        ++stat.iterations;
                        if (stat.body.empty()) {
                            stat.body.assign(stream.begin() +
                                                 static_cast<long>(head),
                                             stream.begin() +
                                                 static_cast<long>(i) +
                                                 1);
                            stat.minPc = minPc;
                            stat.maxPc = maxPc;
                        }
                    }
                }
            }
        }
        lastSeen[in.pc] = i;
    }

    // Rank heads by attributed dynamic instructions; ties break on the
    // head pc so the result is deterministic.
    std::vector<uint64_t> heads;
    heads.reserve(loops.size());
    for (const auto& [head, stat] : loops)
        heads.push_back(head);
    std::sort(heads.begin(), heads.end(),
              [&loops](uint64_t a, uint64_t b) {
                  const LoopStat& sa = loops[a];
                  const LoopStat& sb = loops[b];
                  if (sa.dynInstrs != sb.dynInstrs)
                      return sa.dynInstrs > sb.dynInstrs;
                  return a < b;
              });

    // Greedy top-K with overlap suppression: a loop nested inside an
    // already accepted one re-covers the same instructions, so its
    // weight must not double-count.
    workloads::ExtractionResult result;
    std::vector<std::pair<uint64_t, uint64_t>> taken;
    for (uint64_t head : heads) {
        if (static_cast<int>(result.proxies.size()) >= opts.topK)
            break;
        const LoopStat& stat = loops[head];
        bool overlaps = false;
        for (const auto& [lo, hi] : taken)
            if (stat.minPc <= hi && stat.maxPc >= lo) {
                overlaps = true;
                break;
            }
        if (overlaps || stat.body.empty())
            continue;
        workloads::SnippetProxy proxy;
        proxy.name = data.meta().name + "#pc" + hexPc(head);
        proxy.weight = static_cast<double>(stat.dynInstrs) /
                       static_cast<double>(stream.size());
        proxy.loop = stat.body;
        // The captured iteration already ends on the taken back-edge
        // to the head, so the loop closes naturally; pin it anyway in
        // case the final capture came from a conditional exit path.
        isa::TraceInstr& tail = proxy.loop.back();
        tail.taken = true;
        tail.target = proxy.loop.front().pc;
        taken.emplace_back(stat.minPc, stat.maxPc);
        result.coverage += proxy.weight;
        result.proxies.push_back(std::move(proxy));
    }
    result.coverage = std::min(result.coverage, 1.0);
    return result;
}

TraceData
proxyToTrace(const workloads::SnippetProxy& proxy,
             const TraceMeta& parent)
{
    P10_ASSERT(!proxy.loop.empty(), "empty snippet proxy");
    TraceMeta meta;
    meta.name = proxy.name;
    meta.dialect = parent.dialect;
    meta.source = "extract:" + parent.name;
    TraceWriter writer(std::move(meta));
    for (const isa::TraceInstr& in : proxy.loop)
        writer.add(in);
    return writer.finish();
}

} // namespace p10ee::trace
