/**
 * @file
 * Trace replay and capture: the bridge between `p10trace/1` containers
 * and the workload layer.
 *
 * `TraceReplaySource` walks a loaded container as an endless
 * instruction stream (wrapping at the end, the ReplaySource
 * semantics) and is checkpointable like the synthetic generators: its
 * dynamic state is one global cursor, saved with the trace's content
 * hash so a checkpoint can never silently resume over a different
 * trace that happens to live at the same path. restore() + measure()
 * is bit-identical to the uninterrupted run.
 *
 * `TraceCapture` is the producing side: a pass-through InstrSource
 * that tees every instruction it forwards into a TraceWriter, so any
 * existing source — synthetic profile, kernel window, AI phase, even
 * another trace — records into a container while driving a simulation
 * or a plain capture loop.
 *
 * `registerTraceFrontend()` plugs the "trace" scheme into the
 * workload registry (workloads/registry.h), which is what lets
 * SweepSpec JSON, p10sim_cli, p10sweep_cli, p10d and p10fleet all
 * name `trace:<path>` workloads. Containers are loaded once per
 * process (shared, content-verified) and re-validated against the
 * resolving profile's content hash at source construction, so a file
 * swapped between spec expansion and shard execution is a structured
 * error, never a silently wrong simulation.
 */

#ifndef P10EE_TRACE_REPLAY_H
#define P10EE_TRACE_REPLAY_H

#include <memory>
#include <string>

#include "common/error.h"
#include "trace/container.h"
#include "workloads/registry.h"
#include "workloads/source.h"

namespace p10ee::trace {

/** The workload-registry scheme this frontend owns. */
inline constexpr const char* kScheme = "trace";

/**
 * Endless, checkpointable replay of a loaded trace container. SMT
 * threads replaying one trace share the container (and its decoded
 * chunks are produced per source, one window at a time); unlike the
 * synthetic generators there is no per-thread address shift — the
 * recorded addresses ARE the workload.
 */
class TraceReplaySource : public workloads::CheckpointableSource
{
  public:
    /**
     * @param data a container that passed verifyContent() — the
     *        registry's loader guarantees this; direct constructors
     *        must verify first (decode failures past this point are
     *        programming errors).
     */
    explicit TraceReplaySource(std::shared_ptr<const TraceData> data);

    isa::TraceInstr next() override;

    /** "trace:<recorded name>". */
    std::string name() const override;

    /** Global index of the next instruction to replay. */
    uint64_t cursor() const { return cursor_; }

    /** The replayed container. */
    const TraceData& data() const { return *data_; }

    // Checkpoint surface: the serialized state is the content hash
    // (identity guard) plus the global cursor.
    void saveState(common::BinWriter& w) const override;
    common::Status loadState(common::BinReader& r) override;

  private:
    void decodeWindow(size_t chunk);

    std::shared_ptr<const TraceData> data_;
    std::vector<isa::TraceInstr> window_; ///< decoded current chunk
    size_t chunk_ = 0;       ///< index of the decoded chunk
    size_t posInWindow_ = 0; ///< next instruction within window_
    uint64_t cursor_ = 0;    ///< global index of the next instruction
};

/**
 * Pass-through recorder: forwards @p inner's stream unchanged while
 * teeing every instruction into @p writer. Wrap any source, run it
 * (through the core model or a plain pull loop), then finish() the
 * writer.
 */
class TraceCapture : public workloads::InstrSource
{
  public:
    /** Both referents must outlive the capture. */
    TraceCapture(workloads::InstrSource& inner, TraceWriter& writer)
        : inner_(inner), writer_(writer)
    {}

    isa::TraceInstr
    next() override
    {
        isa::TraceInstr in = inner_.next();
        writer_.add(in);
        return in;
    }

    std::string name() const override { return inner_.name(); }

  private:
    workloads::InstrSource& inner_;
    TraceWriter& writer_;
};

/**
 * Record @p n instructions of @p source into a sealed container.
 * When @p meta.dialect is empty it is auto-detected from the captured
 * stream ("power-isa-3.1" when prefixed or MMA instructions appear,
 * else "power-isa-3.0").
 */
TraceData recordTrace(workloads::InstrSource& source, uint64_t n,
                      TraceMeta meta,
                      uint8_t encoding = kEncodingDelta);

/**
 * Load the container at @p path through the process-wide shared
 * cache: the file is read, envelope-validated and content-verified
 * once, then shared by every replay source over it (a sweep runs one
 * trace in many shards x SMT threads).
 */
common::Expected<std::shared_ptr<const TraceData>>
loadShared(const std::string& path);

/**
 * Resolve "trace:<path>" (the part after the scheme) into a
 * frontend-bound WorkloadProfile: name "trace:<recorded name>",
 * sourcePath, contentHash.
 */
common::Expected<workloads::WorkloadProfile>
resolveTraceWorkload(const std::string& path);

/**
 * Idempotent registration of the "trace" scheme into the workload
 * registry. The resolving layers (sweep spec expansion, the api
 * facade, the trace CLI) call this before resolution; it is cheap and
 * thread-safe. Static self-registration is deliberately not used — a
 * static library member with no referenced symbol is droppable by the
 * linker.
 */
void registerTraceFrontend();

} // namespace p10ee::trace

#endif // P10EE_TRACE_REPLAY_H
