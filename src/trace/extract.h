/**
 * @file
 * Snippet re-extraction over ingested traces: the paper's own
 * Chopstix pipeline (§III-A), runnable on external input.
 *
 * `workloads::extractProxies` mines hot functions out of a *synthetic*
 * CFG it can instrument block by block. A recorded trace has no block
 * annotations — only the dynamic stream — so this variant recovers the
 * structure the way trace-based extractors do: taken backward branches
 * mark loop back-edges; the dynamic window from the last visit of the
 * target pc to the branch is a loop body; bodies whose static code
 * span stays L1-contained and that dominate the dynamic instruction
 * count become `SnippetProxy` workloads, with the covered fraction of
 * the stream reported exactly like the paper's ~70% SPECint coverage
 * figure.
 *
 * Extracted proxies round-trip: `proxyToTrace` re-packages a snippet
 * as its own `p10trace/1` container, so `trace:<snippet path>` replays
 * it anywhere a workload name is accepted.
 */

#ifndef P10EE_TRACE_EXTRACT_H
#define P10EE_TRACE_EXTRACT_H

#include "common/error.h"
#include "trace/container.h"
#include "workloads/chopstix.h"

namespace p10ee::trace {

/** Tunables of the trace-side extractor. */
struct ExtractOptions
{
    /** Keep at most this many proxies, hottest first. */
    int topK = 5;

    /** Longest loop body (dynamic instructions) considered a snippet. */
    uint32_t maxLoopInstrs = 2048;

    /**
     * Largest static code span (max pc - min pc, bytes) of an
     * accepted loop — the L1-contained bar of the paper's proxies.
     */
    uint64_t maxCodeSpanBytes = 32 * 1024;
};

/**
 * Mine hot L1-contained loops out of @p data. Decode failures are
 * structured errors; a trace with no qualifying loop yields an empty
 * result with zero coverage (not an error).
 */
common::Expected<workloads::ExtractionResult>
extractProxies(const TraceData& data,
               const ExtractOptions& opts = ExtractOptions{});

/**
 * Package an extracted snippet as its own replayable container. The
 * proxy's loop becomes the payload; @p parent supplies dialect and
 * names the provenance ("extract:<parent name>").
 */
TraceData proxyToTrace(const workloads::SnippetProxy& proxy,
                       const TraceMeta& parent);

} // namespace p10ee::trace

#endif // P10EE_TRACE_EXTRACT_H
