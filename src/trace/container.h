/**
 * @file
 * `p10trace/1` — compact versioned on-disk container of pre-decoded
 * instruction traces.
 *
 * The trace ingestion frontend stores captured `isa::TraceInstr`
 * streams the same way the checkpoint subsystem stores simulator
 * state: a magic tag, a format version, metadata, a payload, and a
 * trailing FNV-1a checksum over everything before it. Every truncated,
 * bit-flipped, stale or fabricated file is a structured
 * `common::Expected` error — never UB, never a crash (the fuzz suite
 * in tests/test_trace.cpp holds this bar under ASan/UBSan).
 *
 * File format (all little-endian, see common/serialize.h):
 *
 *   magic "P10TRACE" | u32 format version
 *   | str name | str dialect | str source
 *   | u64 instr count | u64 content hash | u8 encoding | u32 chunks
 *   | per chunk: u32 instr count | u64 byte length | encoded bytes
 *   | u64 FNV-1a checksum over everything before it
 *
 * Instructions are stored in fixed-capacity chunks so replay decodes
 * one window at a time and a checkpoint cursor seeks without decoding
 * the whole trace. Two chunk encodings exist: `kEncodingRaw` is the
 * canonical 43-byte record verbatim; `kEncodingDelta` zigzag/varint
 * delta-codes pc/addr/target against the previous instruction and
 * elides absent fields behind presence flags (typically 4-5x smaller
 * on real streams). Chunks reset their delta state, so each decodes
 * independently.
 *
 * The *content hash* is the FNV-1a digest of every instruction's
 * canonical serialization in stream order — independent of the chunk
 * encoding chosen and of all metadata. It is the identity that keys
 * shard caches and fleet cache tiers (via `workloads::profileHash`):
 * renaming or re-describing a trace keeps keys stable; mutating one
 * instruction changes them. Because a fabricated file can carry a
 * recomputed checksum, chunk decoding re-validates every semantic
 * range (op class, register numbers, memory tier, toggle) before an
 * instruction reaches the core model.
 */

#ifndef P10EE_TRACE_CONTAINER_H
#define P10EE_TRACE_CONTAINER_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/hash.h"
#include "common/serialize.h"
#include "isa/instr.h"

namespace p10ee::trace {

/** Container-layout version of the trace file format ("p10trace/1"). */
inline constexpr uint32_t kFormatVersion = 1;

/** Chunk encodings. */
inline constexpr uint8_t kEncodingRaw = 0;   ///< canonical records
inline constexpr uint8_t kEncodingDelta = 1; ///< zigzag/varint deltas

/** Default instructions per chunk (the replay decode window). */
inline constexpr uint32_t kDefaultChunkCapacity = 4096;

/** Provenance metadata recorded alongside the instruction payload. */
struct TraceMeta
{
    /** Display name; becomes the "trace:<name>" workload name, so it
        must be non-empty, without '/' or control characters. */
    std::string name;

    /** ISA dialect of the stream (e.g. "power-isa-3.0",
        "power-isa-3.1"). */
    std::string dialect;

    /** Free-form source provenance ("synthetic:xz seed 1",
        "extract:gcc#pc1a0", a capture host, ...). */
    std::string source;
};

/**
 * Validate @p meta against the container rules (used by writers before
 * encoding and by fromBytes() on anything read back).
 */
common::Status validateMeta(const TraceMeta& meta);

/**
 * Serialize one instruction in the canonical (raw) record layout; the
 * content hash is defined over exactly these bytes.
 */
void writeCanonicalInstr(common::BinWriter& w, const isa::TraceInstr& in);

/**
 * One loaded (or just-written) trace: metadata plus encoded chunks,
 * decoded on demand. This is the reader side of the container — it
 * validates the envelope on load and every semantic field on decode.
 */
class TraceData
{
  public:
    const TraceMeta& meta() const { return meta_; }
    uint64_t instrCount() const { return instrCount_; }
    uint64_t contentHash() const { return contentHash_; }
    uint8_t encoding() const { return encoding_; }
    size_t chunkCount() const { return chunks_.size(); }

    /** Global index of chunk @p i's first instruction. */
    uint64_t chunkFirstIndex(size_t i) const;

    /** Instructions in chunk @p i. */
    uint32_t chunkLength(size_t i) const;

    /** Encoded payload bytes across all chunks (diagnostics). */
    size_t payloadBytes() const;

    /**
     * Decode chunk @p i. Semantically invalid records (op class or
     * register out of range, bad memory tier, non-finite toggle) are
     * structured errors — a checksum-valid file can still be hostile.
     */
    common::Expected<std::vector<isa::TraceInstr>>
    decodeChunk(size_t i) const;

    /** Decode every chunk in order. */
    common::Expected<std::vector<isa::TraceInstr>> decodeAll() const;

    /**
     * Full content verification: decode everything and recompute the
     * content hash; a mismatch against the stored hash is an error.
     */
    common::Status verifyContent() const;

    /** Serialize to the documented file format. */
    std::vector<uint8_t> toBytes() const;

    /**
     * Parse the documented file format; magic/version/checksum
     * mismatches, truncation, oversize counts and malformed metadata
     * are structured errors.
     */
    static common::Expected<TraceData> fromBytes(const uint8_t* data,
                                                 size_t size);
    static common::Expected<TraceData> fromBytes(
        const std::vector<uint8_t>& bytes);

    /** toBytes() to a file, written atomically (temp + rename). */
    common::Status save(const std::string& path) const;

    /** fromBytes() over the contents of @p path. */
    static common::Expected<TraceData> load(const std::string& path);

  private:
    friend class TraceWriter;

    struct Chunk
    {
        uint32_t count = 0;       ///< instructions in this chunk
        uint64_t firstIndex = 0;  ///< global index of the first one
        std::vector<uint8_t> bytes;
    };

    TraceMeta meta_;
    uint64_t instrCount_ = 0;
    uint64_t contentHash_ = common::Fnv1a::kOffsetBasis;
    uint8_t encoding_ = kEncodingDelta;
    std::vector<Chunk> chunks_;
};

/** The ISSUE-facing name for the reader side of the container. */
using TraceReader = TraceData;

/**
 * Streaming trace producer: feed instructions with add(), close with
 * finish(). Chunking, encoding and the content hash are handled here;
 * the result saves atomically via TraceData::save().
 */
class TraceWriter
{
  public:
    /**
     * @param meta must pass validateMeta() (programming error
     *        otherwise — user-supplied names are validated by the CLI
     *        before construction).
     */
    explicit TraceWriter(TraceMeta meta,
                         uint8_t encoding = kEncodingDelta,
                         uint32_t chunkCapacity = kDefaultChunkCapacity);

    /** Append one instruction to the stream. */
    void add(const isa::TraceInstr& in);

    /** Instructions added so far. */
    uint64_t instrCount() const { return data_.instrCount_; }

    /** Running content hash over everything added so far. */
    uint64_t contentHash() const { return hash_.digest(); }

    /** Mutable metadata (e.g. auto-detected dialect) until finish(). */
    TraceMeta& meta() { return data_.meta_; }

    /**
     * Seal the container. At least one instruction must have been
     * added (an empty trace cannot drive an endless InstrSource).
     * The writer is spent afterwards.
     */
    TraceData finish();

  private:
    void sealChunk();

    TraceData data_;
    uint32_t chunkCapacity_;
    common::Fnv1a hash_;
    std::vector<isa::TraceInstr> pending_;
    bool finished_ = false;
};

} // namespace p10ee::trace

#endif // P10EE_TRACE_CONTAINER_H
