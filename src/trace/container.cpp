#include "trace/container.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/assert.h"

namespace p10ee::trace {

using common::BinReader;
using common::BinWriter;
using common::Error;
using common::Expected;
using common::Fnv1a;
using common::Status;

namespace {

constexpr char kMagic[8] = {'P', '1', '0', 'T', 'R', 'A', 'C', 'E'};

/** Canonical record size: the raw encoding is exactly this per instr. */
constexpr size_t kCanonicalBytes = 43;

/** Minimum delta-encoded record size (op + flags + regs + 1-byte pc). */
constexpr size_t kMinDeltaBytes = 4;

// Delta-record flag bits (byte 1).
constexpr uint8_t kFlagTaken = 1u << 0;
constexpr uint8_t kFlagPrefixed = 1u << 1;
constexpr uint8_t kFlagGemm = 1u << 2;
constexpr uint8_t kFlagToggle = 1u << 3; ///< non-default toggle follows
constexpr uint8_t kFlagMem = 1u << 4;    ///< addr/size follow
constexpr uint8_t kFlagTarget = 1u << 5; ///< target delta follows
constexpr uint8_t kFlagDest = 1u << 6;   ///< dest register follows
// Bit 7 reserved: must be zero, so fabricated records with unknown
// flags are rejected instead of silently half-decoded.

// Register/tier byte (byte 2): bits 0-2 src presence, 3-5 tier code.
constexpr uint8_t kTierNone = 7; ///< encodes memTier 0xff

uint32_t
toggleBits(float toggle)
{
    uint32_t bits;
    std::memcpy(&bits, &toggle, sizeof(bits));
    return bits;
}

const uint32_t kDefaultToggleBits = toggleBits(isa::TraceInstr{}.toggle);

uint64_t
zigzag(uint64_t prev, uint64_t cur)
{
    const auto d = static_cast<int64_t>(cur - prev);
    return (static_cast<uint64_t>(d) << 1) ^
           static_cast<uint64_t>(d >> 63);
}

uint64_t
unzigzag(uint64_t prev, uint64_t enc)
{
    const uint64_t d = (enc >> 1) ^ (~(enc & 1) + 1);
    return prev + d;
}

void
putVarint(std::vector<uint8_t>& out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

/** LEB128 u64; over-long or truncated encodings poison the reader. */
uint64_t
getVarint(BinReader& r)
{
    uint64_t v = 0;
    for (int i = 0; i < 10; ++i) {
        const uint8_t byte = r.u8();
        if (r.failed())
            return 0;
        v |= static_cast<uint64_t>(byte & 0x7f) << (7 * i);
        if ((byte & 0x80) == 0) {
            // The 10th byte may only carry the top bit of a u64.
            if (i == 9 && byte > 1) {
                r.poison();
                return 0;
            }
            return v;
        }
    }
    r.poison();
    return 0;
}

/**
 * Semantic validation of a decoded instruction. The envelope checksum
 * only proves the file says what its author wrote — a fabricated file
 * carries a self-consistent checksum, so everything the core model
 * indexes or multiplies with must be range-checked here.
 */
bool
validInstr(const isa::TraceInstr& in)
{
    if (static_cast<uint8_t>(in.op) >=
        static_cast<uint8_t>(isa::OpClass::NumOpClasses))
        return false;
    for (uint16_t s : in.src)
        if (s != isa::reg::kNone && s >= isa::reg::kNumArchRegs)
            return false;
    if (in.dest != isa::reg::kNone && in.dest >= isa::reg::kNumArchRegs)
        return false;
    if (in.memTier != 0xff && in.memTier >= 4)
        return false;
    if (!(in.toggle >= 0.0f && in.toggle <= 1.0f)) // also rejects NaN
        return false;
    return true;
}

void
encodeDelta(std::vector<uint8_t>& out, const isa::TraceInstr& in,
            uint64_t& prevPc, uint64_t& prevAddr)
{
    const bool hasMem =
        in.addr != 0 || in.size != 0 || in.memTier != 0xff;
    const bool hasTarget = in.target != 0;
    const bool hasDest = in.dest != isa::reg::kNone;
    const bool hasToggle = toggleBits(in.toggle) != kDefaultToggleBits;

    uint8_t flags = 0;
    if (in.taken)
        flags |= kFlagTaken;
    if (in.prefixed)
        flags |= kFlagPrefixed;
    if (in.gemm)
        flags |= kFlagGemm;
    if (hasToggle)
        flags |= kFlagToggle;
    if (hasMem)
        flags |= kFlagMem;
    if (hasTarget)
        flags |= kFlagTarget;
    if (hasDest)
        flags |= kFlagDest;

    uint8_t regs = 0;
    for (int i = 0; i < 3; ++i)
        if (in.src[i] != isa::reg::kNone)
            regs |= static_cast<uint8_t>(1u << i);
    const uint8_t tierCode =
        in.memTier == 0xff ? kTierNone : in.memTier;
    regs |= static_cast<uint8_t>(tierCode << 3);

    out.push_back(static_cast<uint8_t>(in.op));
    out.push_back(flags);
    out.push_back(regs);
    for (int i = 0; i < 3; ++i)
        if (in.src[i] != isa::reg::kNone)
            putVarint(out, in.src[i]);
    if (hasDest)
        putVarint(out, in.dest);
    putVarint(out, zigzag(prevPc, in.pc));
    prevPc = in.pc;
    if (hasMem) {
        putVarint(out, zigzag(prevAddr, in.addr));
        putVarint(out, in.size);
        prevAddr = in.addr;
    }
    if (hasTarget)
        putVarint(out, zigzag(in.pc, in.target));
    if (hasToggle) {
        const uint32_t bits = toggleBits(in.toggle);
        for (int i = 0; i < 4; ++i)
            out.push_back(static_cast<uint8_t>(bits >> (8 * i)));
    }
}

bool
decodeDelta(BinReader& r, isa::TraceInstr* out, uint64_t& prevPc,
            uint64_t& prevAddr)
{
    isa::TraceInstr in;
    const uint8_t op = r.u8();
    const uint8_t flags = r.u8();
    const uint8_t regs = r.u8();
    if (r.failed())
        return false;
    if ((flags & 0x80) != 0 || (regs & 0xc0) != 0) {
        r.poison();
        return false;
    }
    in.op = static_cast<isa::OpClass>(op);
    in.taken = (flags & kFlagTaken) != 0;
    in.prefixed = (flags & kFlagPrefixed) != 0;
    in.gemm = (flags & kFlagGemm) != 0;
    for (int i = 0; i < 3; ++i)
        if ((regs & (1u << i)) != 0)
            in.src[i] = static_cast<uint16_t>(getVarint(r));
    if ((flags & kFlagDest) != 0)
        in.dest = static_cast<uint16_t>(getVarint(r));
    in.pc = unzigzag(prevPc, getVarint(r));
    prevPc = in.pc;
    if ((flags & kFlagMem) != 0) {
        in.addr = unzigzag(prevAddr, getVarint(r));
        in.size = static_cast<uint16_t>(getVarint(r));
        prevAddr = in.addr;
        const uint8_t tierCode = (regs >> 3) & 0x7;
        in.memTier = tierCode == kTierNone ? 0xff : tierCode;
    } else {
        // A tier code on a memory-less record is a fabrication.
        if (((regs >> 3) & 0x7) != kTierNone) {
            r.poison();
            return false;
        }
    }
    if ((flags & kFlagTarget) != 0)
        in.target = unzigzag(in.pc, getVarint(r));
    if ((flags & kFlagToggle) != 0) {
        const float t = r.f32();
        in.toggle = t;
    }
    if (r.failed() || !validInstr(in)) {
        r.poison();
        return false;
    }
    *out = in;
    return true;
}

bool
decodeCanonical(BinReader& r, isa::TraceInstr* out)
{
    isa::TraceInstr in;
    in.op = static_cast<isa::OpClass>(r.u8());
    for (uint16_t& s : in.src)
        s = r.u16();
    in.dest = r.u16();
    in.pc = r.u64();
    in.addr = r.u64();
    in.size = r.u16();
    in.memTier = r.u8();
    in.taken = r.b();
    in.target = r.u64();
    in.prefixed = r.b();
    in.gemm = r.b();
    in.toggle = r.f32();
    if (r.failed() || !validInstr(in)) {
        r.poison();
        return false;
    }
    *out = in;
    return true;
}

} // namespace

Status
validateMeta(const TraceMeta& meta)
{
    auto printable = [](const std::string& s) {
        for (char c : s)
            if (static_cast<unsigned char>(c) < 0x20 || c == 0x7f)
                return false;
        return true;
    };
    if (meta.name.empty())
        return Error::invalidArgument("trace name must be non-empty");
    if (meta.name.size() > 200 || meta.dialect.size() > 200 ||
        meta.source.size() > 4096)
        return Error::invalidArgument(
            "trace metadata field too long (name/dialect <= 200, "
            "source <= 4096 bytes)");
    if (meta.name.find('/') != std::string::npos)
        return Error::invalidArgument(
            "trace name must not contain '/' (it becomes the "
            "'trace:<name>' workload name inside 'config/workload/"
            "smt/seed' shard keys)");
    if (!printable(meta.name) || !printable(meta.dialect) ||
        !printable(meta.source))
        return Error::invalidArgument(
            "trace metadata must not contain control characters");
    return common::okStatus();
}

void
writeCanonicalInstr(BinWriter& w, const isa::TraceInstr& in)
{
    w.u8(static_cast<uint8_t>(in.op));
    for (uint16_t s : in.src)
        w.u16(s);
    w.u16(in.dest);
    w.u64(in.pc);
    w.u64(in.addr);
    w.u16(in.size);
    w.u8(in.memTier);
    w.b(in.taken);
    w.u64(in.target);
    w.b(in.prefixed);
    w.b(in.gemm);
    w.f32(in.toggle);
}

uint64_t
TraceData::chunkFirstIndex(size_t i) const
{
    P10_ASSERT(i < chunks_.size(), "chunk index out of range");
    return chunks_[i].firstIndex;
}

uint32_t
TraceData::chunkLength(size_t i) const
{
    P10_ASSERT(i < chunks_.size(), "chunk index out of range");
    return chunks_[i].count;
}

size_t
TraceData::payloadBytes() const
{
    size_t n = 0;
    for (const Chunk& c : chunks_)
        n += c.bytes.size();
    return n;
}

Expected<std::vector<isa::TraceInstr>>
TraceData::decodeChunk(size_t i) const
{
    P10_ASSERT(i < chunks_.size(), "chunk index out of range");
    const Chunk& c = chunks_[i];
    std::vector<isa::TraceInstr> out;
    out.reserve(c.count);
    BinReader r(c.bytes);
    if (encoding_ == kEncodingRaw) {
        if (c.bytes.size() != c.count * kCanonicalBytes)
            return Error::invalidArgument(
                "trace chunk " + std::to_string(i) +
                ": raw payload size does not match its record count");
        for (uint32_t k = 0; k < c.count; ++k) {
            isa::TraceInstr in;
            if (!decodeCanonical(r, &in))
                return Error::invalidArgument(
                    "trace chunk " + std::to_string(i) + " record " +
                    std::to_string(k) +
                    ": corrupt or out-of-range fields");
            out.push_back(in);
        }
    } else {
        uint64_t prevPc = 0;
        uint64_t prevAddr = 0;
        for (uint32_t k = 0; k < c.count; ++k) {
            isa::TraceInstr in;
            if (!decodeDelta(r, &in, prevPc, prevAddr))
                return Error::invalidArgument(
                    "trace chunk " + std::to_string(i) + " record " +
                    std::to_string(k) +
                    ": corrupt or out-of-range fields");
            out.push_back(in);
        }
    }
    if (r.remaining() != 0)
        return Error::invalidArgument(
            "trace chunk " + std::to_string(i) +
            ": trailing bytes after the last record");
    return out;
}

Expected<std::vector<isa::TraceInstr>>
TraceData::decodeAll() const
{
    std::vector<isa::TraceInstr> out;
    out.reserve(static_cast<size_t>(instrCount_));
    for (size_t i = 0; i < chunks_.size(); ++i) {
        Expected<std::vector<isa::TraceInstr>> chunk = decodeChunk(i);
        if (!chunk)
            return chunk.error();
        out.insert(out.end(), chunk.value().begin(),
                   chunk.value().end());
    }
    return out;
}

Status
TraceData::verifyContent() const
{
    Expected<std::vector<isa::TraceInstr>> all = decodeAll();
    if (!all)
        return all.error();
    Fnv1a h;
    for (const isa::TraceInstr& in : all.value()) {
        BinWriter w;
        writeCanonicalInstr(w, in);
        h.bytes(w.bytes().data(), w.size());
    }
    if (h.digest() != contentHash_)
        return Error::invalidArgument(
            "trace content hash mismatch (payload does not match the "
            "stored identity; file edited or fabricated)");
    return common::okStatus();
}

std::vector<uint8_t>
TraceData::toBytes() const
{
    BinWriter w;
    for (char c : kMagic)
        w.u8(static_cast<uint8_t>(c));
    w.u32(kFormatVersion);
    w.str(meta_.name);
    w.str(meta_.dialect);
    w.str(meta_.source);
    w.u64(instrCount_);
    w.u64(contentHash_);
    w.u8(encoding_);
    w.u32(static_cast<uint32_t>(chunks_.size()));
    std::vector<uint8_t> out = w.takeBytes();
    for (const Chunk& c : chunks_) {
        BinWriter ch;
        ch.u32(c.count);
        ch.u64(c.bytes.size());
        out.insert(out.end(), ch.bytes().begin(), ch.bytes().end());
        out.insert(out.end(), c.bytes.begin(), c.bytes.end());
    }
    Fnv1a h;
    h.bytes(out.data(), out.size());
    BinWriter tail;
    tail.u64(h.digest());
    out.insert(out.end(), tail.bytes().begin(), tail.bytes().end());
    return out;
}

Expected<TraceData>
TraceData::fromBytes(const uint8_t* data, size_t size)
{
    BinReader r(data, size);
    for (char c : kMagic)
        if (r.u8() != static_cast<uint8_t>(c) || r.failed())
            return Error::invalidArgument(
                "not a p10ee trace (bad magic)");
    const uint32_t fmt = r.u32();
    if (r.ok() && fmt != kFormatVersion)
        return Error::invalidArgument(
            "unsupported trace format version " + std::to_string(fmt) +
            " (expected " + std::to_string(kFormatVersion) + ")");

    // Verify the trailing checksum before trusting any length field.
    if (size < 8 || r.failed())
        return Error::invalidArgument("trace truncated");
    BinReader tail(data + size - 8, 8);
    const uint64_t stored = tail.u64();
    Fnv1a file;
    file.bytes(data, size - 8);
    if (file.digest() != stored)
        return Error::invalidArgument(
            "trace corrupt (checksum mismatch)");

    TraceData t;
    t.meta_.name = r.str();
    t.meta_.dialect = r.str();
    t.meta_.source = r.str();
    if (r.failed())
        return Error::invalidArgument("trace truncated");
    if (Status st = validateMeta(t.meta_); !st)
        return st.error();
    t.instrCount_ = r.u64();
    t.contentHash_ = r.u64();
    t.encoding_ = r.u8();
    if (r.failed())
        return Error::invalidArgument("trace truncated");
    if (t.instrCount_ == 0)
        return Error::invalidArgument(
            "trace holds zero instructions (an empty trace cannot "
            "drive a replay source)");
    if (t.encoding_ != kEncodingRaw && t.encoding_ != kEncodingDelta)
        return Error::invalidArgument(
            "unknown trace chunk encoding " +
            std::to_string(t.encoding_));
    const uint32_t chunkCount = r.u32();
    // Every chunk costs at least a 12-byte header: a fabricated count
    // must fail here, before any allocation sized from it.
    if (!r.fits(chunkCount, 12))
        return Error::invalidArgument(
            "trace chunk count exceeds the file size");
    if (chunkCount == 0)
        return Error::invalidArgument("trace has no chunks");
    t.chunks_.reserve(chunkCount);
    uint64_t total = 0;
    const size_t minRecord = t.encoding_ == kEncodingRaw
                                 ? kCanonicalBytes
                                 : kMinDeltaBytes;
    for (uint32_t i = 0; i < chunkCount; ++i) {
        Chunk c;
        c.count = r.u32();
        const uint64_t nbytes = r.u64();
        if (r.failed() || r.remaining() < 8 ||
            nbytes > r.remaining() - 8)
            return Error::invalidArgument(
                "trace truncated inside chunk " + std::to_string(i));
        if (c.count == 0 ||
            static_cast<uint64_t>(c.count) > nbytes / minRecord)
            return Error::invalidArgument(
                "trace chunk " + std::to_string(i) +
                ": record count inconsistent with its payload size");
        c.firstIndex = total;
        total += c.count;
        const size_t at = r.position();
        r.skip(static_cast<size_t>(nbytes));
        c.bytes.assign(data + at, data + at + nbytes);
        t.chunks_.push_back(std::move(c));
    }
    if (total != t.instrCount_)
        return Error::invalidArgument(
            "trace instruction count does not match its chunks");
    if (r.failed() || r.remaining() != 8)
        return Error::invalidArgument(
            "trace has trailing bytes after the last chunk");
    return t;
}

Expected<TraceData>
TraceData::fromBytes(const std::vector<uint8_t>& bytes)
{
    return fromBytes(bytes.data(), bytes.size());
}

Status
TraceData::save(const std::string& path) const
{
    const std::vector<uint8_t> bytes = toBytes();
    // Unique temp names within the process: concurrent writers to one
    // path must not collide on a temp file (the rename target is
    // byte-identical for identical traces anyway).
    static std::atomic<uint64_t> tmpSerial{0};
    const std::string tmp =
        path + ".tmp" + std::to_string(tmpSerial.fetch_add(1));
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f)
            return Error::notFound("cannot open for write: " + tmp);
        f.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
        if (!f)
            return Error::transient("short write: " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return Error::transient("rename failed: " + path);
    }
    return common::okStatus();
}

Expected<TraceData>
TraceData::load(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return Error::notFound("cannot open trace: " + path);
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                               std::istreambuf_iterator<char>());
    Expected<TraceData> t = fromBytes(bytes.data(), bytes.size());
    if (!t)
        return Error(t.error().code, path + ": " + t.error().message);
    return t;
}

TraceWriter::TraceWriter(TraceMeta meta, uint8_t encoding,
                         uint32_t chunkCapacity)
    : chunkCapacity_(chunkCapacity)
{
    P10_ASSERT(validateMeta(meta).ok(),
               "TraceWriter metadata fails validateMeta() — CLI "
               "callers must validate user input first");
    P10_ASSERT(encoding == kEncodingRaw || encoding == kEncodingDelta,
               "unknown trace encoding");
    P10_ASSERT(chunkCapacity_ >= 1, "chunk capacity must be >= 1");
    data_.meta_ = std::move(meta);
    data_.encoding_ = encoding;
}

void
TraceWriter::add(const isa::TraceInstr& in)
{
    P10_ASSERT(!finished_, "TraceWriter::add after finish()");
    P10_ASSERT(validInstr(in),
               "instruction fails trace range validation");
    BinWriter w;
    writeCanonicalInstr(w, in);
    hash_.bytes(w.bytes().data(), w.size());
    pending_.push_back(in);
    ++data_.instrCount_;
    if (pending_.size() >= chunkCapacity_)
        sealChunk();
}

void
TraceWriter::sealChunk()
{
    if (pending_.empty())
        return;
    TraceData::Chunk c;
    c.count = static_cast<uint32_t>(pending_.size());
    c.firstIndex = data_.instrCount_ - pending_.size();
    if (data_.encoding_ == kEncodingRaw) {
        BinWriter w;
        for (const isa::TraceInstr& in : pending_)
            writeCanonicalInstr(w, in);
        c.bytes = w.takeBytes();
    } else {
        uint64_t prevPc = 0;
        uint64_t prevAddr = 0;
        for (const isa::TraceInstr& in : pending_)
            encodeDelta(c.bytes, in, prevPc, prevAddr);
    }
    data_.chunks_.push_back(std::move(c));
    pending_.clear();
}

TraceData
TraceWriter::finish()
{
    P10_ASSERT(!finished_, "TraceWriter::finish called twice");
    P10_ASSERT(data_.instrCount_ >= 1,
               "an empty trace cannot drive a replay source");
    finished_ = true;
    sealChunk();
    data_.contentHash_ = hash_.digest();
    return std::move(data_);
}

} // namespace p10ee::trace
