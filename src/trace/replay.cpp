#include "trace/replay.h"

#include <map>
#include <mutex>

#include "common/assert.h"
#include "isa/op.h"

namespace p10ee::trace {

using common::Error;
using common::Expected;
using common::Status;

TraceReplaySource::TraceReplaySource(
    std::shared_ptr<const TraceData> data)
    : data_(std::move(data))
{
    P10_ASSERT(data_ != nullptr && data_->instrCount() > 0,
               "replay requires a non-empty trace");
    decodeWindow(0);
}

void
TraceReplaySource::decodeWindow(size_t chunk)
{
    Expected<std::vector<isa::TraceInstr>> decoded =
        data_->decodeChunk(chunk);
    // The shared loader content-verified the container (every chunk
    // decoded once); a failure here means the caller skipped that
    // contract, which is a programming error, not hostile input.
    P10_ASSERT(decoded.ok(),
               "replay over an unverified trace container");
    window_ = std::move(decoded.value());
    chunk_ = chunk;
    posInWindow_ = 0;
}

isa::TraceInstr
TraceReplaySource::next()
{
    if (posInWindow_ >= window_.size()) {
        const size_t nextChunk = chunk_ + 1 < data_->chunkCount()
                                     ? chunk_ + 1
                                     : 0;
        if (nextChunk == chunk_)
            posInWindow_ = 0; // single-chunk trace: no re-decode
        else
            decodeWindow(nextChunk);
    }
    const isa::TraceInstr& in = window_[posInWindow_];
    ++posInWindow_;
    ++cursor_;
    if (cursor_ >= data_->instrCount())
        cursor_ = 0;
    return in;
}

std::string
TraceReplaySource::name() const
{
    return std::string(kScheme) + ":" + data_->meta().name;
}

void
TraceReplaySource::saveState(common::BinWriter& w) const
{
    w.u64(data_->contentHash());
    w.u64(cursor_);
}

Status
TraceReplaySource::loadState(common::BinReader& r)
{
    const uint64_t hash = r.u64();
    const uint64_t cursor = r.u64();
    if (r.ok() && hash != data_->contentHash())
        return Error::invalidArgument(
            "trace replay state was saved over a different trace "
            "(content hash mismatch for '" + data_->meta().name +
            "')");
    if (r.ok() && cursor >= data_->instrCount())
        return Error::invalidArgument(
            "trace replay cursor out of range");
    if (Status st = r.status("trace replay state"); !st)
        return st;
    // Seek: find the chunk holding the cursor, decode it, position
    // within it. Chunk first-indices ascend, so a linear scan is fine
    // at chunk granularity.
    size_t chunk = data_->chunkCount() - 1;
    for (size_t i = 0; i + 1 < data_->chunkCount(); ++i)
        if (cursor < data_->chunkFirstIndex(i + 1)) {
            chunk = i;
            break;
        }
    decodeWindow(chunk);
    posInWindow_ = static_cast<size_t>(
        cursor - data_->chunkFirstIndex(chunk));
    cursor_ = cursor;
    return common::okStatus();
}

TraceData
recordTrace(workloads::InstrSource& source, uint64_t n, TraceMeta meta,
            uint8_t encoding)
{
    P10_ASSERT(n > 0, "recordTrace requires at least one instruction");
    TraceWriter writer(std::move(meta), encoding);
    bool isa31 = false;
    for (uint64_t i = 0; i < n; ++i) {
        const isa::TraceInstr in = source.next();
        isa31 = isa31 || in.prefixed || isa::isMma(in.op) ||
                in.op == isa::OpClass::Load32B ||
                in.op == isa::OpClass::Store32B;
        writer.add(in);
    }
    if (writer.meta().dialect.empty())
        writer.meta().dialect =
            isa31 ? "power-isa-3.1" : "power-isa-3.0";
    return writer.finish();
}

Expected<std::shared_ptr<const TraceData>>
loadShared(const std::string& path)
{
    // Process-wide container cache: a sweep replays one trace across
    // many shards x SMT threads; each should share one loaded,
    // verified container instead of re-reading and re-verifying the
    // file. Entries are weak so an idle daemon does not pin every
    // trace it ever served.
    static std::mutex mu;
    static std::map<std::string, std::weak_ptr<const TraceData>> cache;

    {
        std::lock_guard<std::mutex> lk(mu);
        auto it = cache.find(path);
        if (it != cache.end())
            if (std::shared_ptr<const TraceData> hit =
                    it->second.lock())
                return hit;
    }

    Expected<TraceData> loaded = TraceData::load(path);
    if (!loaded)
        return loaded.error();
    // Content verification up front: replay decodes chunks on a path
    // that cannot return errors (InstrSource::next()), so every chunk
    // must be proven decodable — and match the stored content
    // identity — before any source is built over it.
    if (Status st = loaded.value().verifyContent(); !st)
        return Error(st.error().code,
                     path + ": " + st.error().message);
    auto shared = std::make_shared<const TraceData>(
        std::move(loaded.value()));

    std::lock_guard<std::mutex> lk(mu);
    cache[path] = shared;
    return std::shared_ptr<const TraceData>(shared);
}

Expected<workloads::WorkloadProfile>
resolveTraceWorkload(const std::string& path)
{
    Expected<std::shared_ptr<const TraceData>> data = loadShared(path);
    if (!data)
        return data.error();
    workloads::WorkloadProfile profile;
    profile.name =
        std::string(kScheme) + ":" + data.value()->meta().name;
    profile.frontend = kScheme;
    profile.sourcePath = path;
    profile.contentHash = data.value()->contentHash();
    return profile;
}

void
registerTraceFrontend()
{
    static std::once_flag once;
    std::call_once(once, [] {
        workloads::WorkloadFrontend fe;
        fe.scheme = kScheme;
        fe.resolve = [](const std::string& rest) {
            return resolveTraceWorkload(rest);
        };
        fe.makeSource =
            [](const workloads::WorkloadProfile& profile, int threadId)
            -> Expected<
                std::unique_ptr<workloads::CheckpointableSource>> {
            (void)threadId; // the recorded addresses ARE the workload
            Expected<std::shared_ptr<const TraceData>> data =
                loadShared(profile.sourcePath);
            if (!data)
                return data.error();
            if (data.value()->contentHash() != profile.contentHash)
                return Error::invalidConfig(
                    "trace '" + profile.sourcePath +
                    "' changed since the workload was resolved "
                    "(content hash mismatch); re-expand the sweep");
            return std::unique_ptr<workloads::CheckpointableSource>(
                std::make_unique<TraceReplaySource>(
                    std::move(data.value())));
        };
        workloads::registerFrontend(std::move(fe));
    });
}

} // namespace p10ee::trace
