/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the library draws from an explicitly seeded
 * Xoshiro256** generator so that all benches and tests are reproducible
 * bit-for-bit across runs and machines. std::mt19937 is avoided because
 * its distributions are not guaranteed identical across standard library
 * implementations.
 */

#ifndef P10EE_COMMON_RNG_H
#define P10EE_COMMON_RNG_H

#include <cstdint>

#include "common/serialize.h"

namespace p10ee::common {

/**
 * Derive the seed of sub-stream @p streamId from @p master.
 *
 * SplitMix64-style: the master seed is advanced by streamId + 1 golden
 * ratio increments and pushed through the SplitMix64 finalizer twice,
 * so neighbouring stream ids land on statistically independent seeds.
 * This is THE way to fan one seed out into per-shard / per-injection /
 * per-replica generators: additive schemes (`seed + i`, `seed + i * K`)
 * put sibling streams a constant apart in seed space, and any
 * structure the seeding function fails to break shows up as
 * correlated replicas — exactly what a sweep's confidence intervals
 * must not contain.
 */
inline uint64_t
splitSeed(uint64_t master, uint64_t streamId)
{
    uint64_t z = master + 0x9e3779b97f4a7c15ull * (streamId + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    // Second finalizer round decorrelates masters that differ only in
    // low bits (workload seeds are small consecutive integers).
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * Xoshiro256** PRNG (Blackman & Vigna). Small, fast, and with exactly
 * specified output for a given seed, unlike the standard distributions.
 */
class Xoshiro
{
  public:
    /** Construct from a 64-bit seed via SplitMix64 state expansion. */
    explicit Xoshiro(uint64_t seed) : seed_(seed)
    {
        // SplitMix64 to fill the four state words; avoids the all-zero
        // state that Xoshiro cannot escape.
        uint64_t x = seed + 0x9e3779b97f4a7c15ull;
        for (auto& word : state_) {
            uint64_t z = (x += 0x9e3779b97f4a7c15ull);
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /**
     * Independent generator for sub-stream @p streamId, derived from
     * this generator's construction seed (not its current state, so a
     * split is reproducible no matter how many draws preceded it).
     */
    Xoshiro
    split(uint64_t streamId) const
    {
        return Xoshiro(splitSeed(seed_, streamId));
    }

    /** The seed this generator was constructed from. */
    uint64_t seed() const { return seed_; }

    /** Next raw 64-bit output. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    uint64_t
    below(uint64_t bound)
    {
        // Modulo bias is irrelevant at our bound sizes (<< 2^64) and the
        // simple form keeps the generator's output sequence transparent.
        return next() % bound;
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Approximately normal deviate (mean 0, stddev 1) via the sum of four
     * uniforms; adequate for workload jitter, cheap, and bounded.
     */
    double
    gauss()
    {
        double s = 0.0;
        for (int i = 0; i < 4; ++i)
            s += uniform();
        return (s - 2.0) * 1.732050808; // var(sum of 4 U[0,1)) = 1/3
    }

    /**
     * Geometric-ish stride pick from a Zipf-like distribution over
     * [0, n); used for working-set locality modeling. Exponent ~1.
     */
    uint64_t
    zipf(uint64_t n)
    {
        // Inverse-CDF of 1/x on [1, n]: exp(U * ln n).
        double u = uniform();
        double v = __builtin_exp2(u * __builtin_log2(static_cast<double>(n)));
        uint64_t k = static_cast<uint64_t>(v) - 1;
        return k >= n ? n - 1 : k;
    }

    /**
     * Serialize the construction seed plus the current state words, so
     * a restored generator continues the exact output sequence AND
     * still split()s identically to the original.
     */
    void
    saveState(BinWriter& w) const
    {
        w.u64(seed_);
        for (uint64_t word : state_)
            w.u64(word);
    }

    /** Restore from saveState(); rejects the unreachable all-zero state. */
    Status
    loadState(BinReader& r)
    {
        uint64_t seed = r.u64();
        uint64_t state[4];
        for (auto& word : state)
            word = r.u64();
        if (r.failed())
            return r.status("rng state");
        if ((state[0] | state[1] | state[2] | state[3]) == 0)
            return Error::invalidArgument(
                "rng state: all-zero Xoshiro state");
        seed_ = seed;
        for (int i = 0; i < 4; ++i)
            state_[i] = state[i];
        return okStatus();
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t seed_;
    uint64_t state_[4];
};

} // namespace p10ee::common

#endif // P10EE_COMMON_RNG_H
