/**
 * @file
 * Deterministic non-cryptographic hashing (FNV-1a, 64-bit).
 *
 * Content-addressed artifacts — the sweep shard cache, checkpoint
 * config hashes — need a hash that is stable across platforms, builds
 * and standard libraries. std::hash guarantees none of that, so the
 * library pins FNV-1a/64: fully specified, byte-order independent
 * (input is consumed as bytes the caller serializes explicitly), and
 * fast enough that hashing a canonicalized spec is free next to one
 * simulated shard.
 */

#ifndef P10EE_COMMON_HASH_H
#define P10EE_COMMON_HASH_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace p10ee::common {

/** Streaming FNV-1a/64 hasher. Feed bytes, read digest() at any point. */
class Fnv1a
{
  public:
    static constexpr uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
    static constexpr uint64_t kPrime = 0x100000001b3ull;

    /** Absorb @p len raw bytes. */
    Fnv1a&
    bytes(const void* data, size_t len)
    {
        const auto* p = static_cast<const unsigned char*>(data);
        for (size_t i = 0; i < len; ++i) {
            h_ ^= p[i];
            h_ *= kPrime;
        }
        return *this;
    }

    /** Absorb a string's bytes (no terminator, no length prefix). */
    Fnv1a& str(std::string_view s) { return bytes(s.data(), s.size()); }

    /**
     * Absorb one 64-bit value as eight little-endian bytes, so the
     * digest is identical on any host byte order.
     */
    Fnv1a&
    u64(uint64_t v)
    {
        unsigned char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<unsigned char>(v >> (8 * i));
        return bytes(b, 8);
    }

    /** Current digest (the hasher stays usable). */
    uint64_t digest() const { return h_; }

  private:
    uint64_t h_ = kOffsetBasis;
};

/** One-shot FNV-1a/64 of a byte string. */
inline uint64_t
fnv1a64(std::string_view s)
{
    return Fnv1a().str(s).digest();
}

} // namespace p10ee::common

#endif // P10EE_COMMON_HASH_H
