/**
 * @file
 * Aligned-column table printing for the figure/table benches.
 *
 * Each bench binary regenerates one of the paper's tables or figures as
 * text; this printer keeps the output compact, aligned, and trivially
 * parseable (also emits CSV when asked).
 */

#ifndef P10EE_COMMON_TABLE_H
#define P10EE_COMMON_TABLE_H

#include <string>
#include <vector>

namespace p10ee::common {

/** Accumulates rows of string cells and prints them column-aligned. */
class Table
{
  public:
    /** @param title printed above the table. */
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append one data row. */
    void row(std::vector<std::string> cells);

    /** Render aligned text to stdout. */
    void print() const;

    /** Render as CSV (header first) to stdout. */
    void printCsv() const;

    // Structured access for the machine-readable report emitters.
    const std::string& title() const { return title_; }
    const std::vector<std::string>& columns() const { return header_; }
    const std::vector<std::vector<std::string>>& data() const
    {
        return rows_;
    }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p decimals places. */
std::string fmt(double value, int decimals = 2);

/** Format as a multiplier, e.g. "2.60x". */
std::string fmtX(double value, int decimals = 2);

/** Format as a percentage, e.g. "32.2%". */
std::string fmtPct(double fraction, int decimals = 1);

} // namespace p10ee::common

#endif // P10EE_COMMON_TABLE_H
