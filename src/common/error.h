/**
 * @file
 * Structured recoverable errors for the p10ee library.
 *
 * The library distinguishes two failure families:
 *  - programming errors (violated invariants) abort via P10_ASSERT —
 *    silent state corruption in a power model is worse than a crash;
 *  - *input* errors (user configs, CLI flags, campaign specs, corrupt
 *    counter readings) are recoverable and must never kill a batch
 *    sweep, so they travel as Error values through Expected<T>.
 *
 * Expected<T> is a minimal std::expected stand-in (the toolchain's
 * library support predates it): either a value or an Error, checked at
 * access time. Expected<void> (aliased Status) carries success/failure
 * only.
 */

#ifndef P10EE_COMMON_ERROR_H
#define P10EE_COMMON_ERROR_H

#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "common/assert.h"

namespace p10ee::common {

/** Machine-inspectable failure category. */
enum class ErrorCode {
    InvalidArgument, ///< malformed user input (CLI flags, spec fields)
    InvalidConfig,   ///< a CoreConfig / campaign config fails validation
    NotFound,        ///< named entity (workload, component) unknown
    Timeout,         ///< a bounded run exceeded its cycle budget
    Transient,       ///< infrastructure hiccup; retrying may succeed
    Overloaded,      ///< a bounded queue rejected the request
    Cancelled,       ///< the caller withdrew the request
    Internal,        ///< unexpected condition surfaced as a value
};

/** Stable lower-case name of @p code (log/CSV friendly). */
inline const char*
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::InvalidArgument: return "invalid_argument";
      case ErrorCode::InvalidConfig: return "invalid_config";
      case ErrorCode::NotFound: return "not_found";
      case ErrorCode::Timeout: return "timeout";
      case ErrorCode::Transient: return "transient";
      case ErrorCode::Overloaded: return "overloaded";
      case ErrorCode::Cancelled: return "cancelled";
      case ErrorCode::Internal: return "internal";
    }
    return "unknown";
}

/** One recoverable failure: a category plus a human-readable message. */
struct Error
{
    ErrorCode code = ErrorCode::Internal;
    std::string message;

    /**
     * Structured origin of a validation failure: the request/spec key
     * that failed (e.g. "smt", "mode"), empty when the error is not
     * tied to one field. Surfaced verbatim on the NDJSON `error` line
     * and in CLI exit-2 messages; diagnostic only — equality and
     * on-disk cache serialization ignore it.
     */
    std::string field;

    Error() = default;
    Error(ErrorCode c, std::string msg)
        : code(c), message(std::move(msg))
    {}
    Error(ErrorCode c, std::string msg, std::string fld)
        : code(c), message(std::move(msg)), field(std::move(fld))
    {}

    /** "invalid_config: <message>", with " (field: <f>)" when set. */
    std::string
    str() const
    {
        std::string s =
            std::string(errorCodeName(code)) + ": " + message;
        if (!field.empty())
            s += " (field: " + field + ")";
        return s;
    }

    /** This error with @p fld recorded as the failing field. */
    Error
    withField(std::string fld) &&
    {
        field = std::move(fld);
        return std::move(*this);
    }

    static Error
    invalidArgument(std::string msg)
    {
        return {ErrorCode::InvalidArgument, std::move(msg)};
    }

    static Error
    invalidConfig(std::string msg)
    {
        return {ErrorCode::InvalidConfig, std::move(msg)};
    }

    static Error
    notFound(std::string msg)
    {
        return {ErrorCode::NotFound, std::move(msg)};
    }

    static Error
    timeout(std::string msg)
    {
        return {ErrorCode::Timeout, std::move(msg)};
    }

    static Error
    transient(std::string msg)
    {
        return {ErrorCode::Transient, std::move(msg)};
    }

    static Error
    overloaded(std::string msg)
    {
        return {ErrorCode::Overloaded, std::move(msg)};
    }

    static Error
    cancelled(std::string msg)
    {
        return {ErrorCode::Cancelled, std::move(msg)};
    }
};

/**
 * A value of type T or an Error. Implicitly constructible from either
 * side so `return Error::invalidConfig(...)` and `return value` both
 * work; access is invariant-checked (reading the wrong side is a
 * programming error, not a recoverable one).
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    Expected(T value) : v_(std::move(value)) {}
    Expected(Error error) : v_(std::move(error)) {}

    /** True when a value is held. */
    bool ok() const { return std::holds_alternative<T>(v_); }
    explicit operator bool() const { return ok(); }

    /** The held value. @pre ok() */
    const T&
    value() const&
    {
        P10_ASSERT(ok(), "Expected::value() on an error");
        return std::get<T>(v_);
    }

    T&
    value() &
    {
        P10_ASSERT(ok(), "Expected::value() on an error");
        return std::get<T>(v_);
    }

    T&&
    value() &&
    {
        P10_ASSERT(ok(), "Expected::value() on an error");
        return std::get<T>(std::move(v_));
    }

    /** The held value, or @p fallback when this is an error. */
    T
    valueOr(T fallback) const
    {
        return ok() ? std::get<T>(v_) : std::move(fallback);
    }

    /** The held error. @pre !ok() */
    const Error&
    error() const
    {
        P10_ASSERT(!ok(), "Expected::error() on a value");
        return std::get<Error>(v_);
    }

  private:
    std::variant<T, Error> v_;
};

/** Success-or-Error: the T-less Expected. */
template <>
class [[nodiscard]] Expected<void>
{
  public:
    /** Default construction is success. */
    Expected() = default;
    Expected(Error error) : err_(std::move(error)) {}

    bool ok() const { return !err_.has_value(); }
    explicit operator bool() const { return ok(); }

    const Error&
    error() const
    {
        P10_ASSERT(!ok(), "Expected::error() on a value");
        return *err_;
    }

  private:
    std::optional<Error> err_;
};

/** Conventional spelling for value-less results. */
using Status = Expected<void>;

/** Success Status (reads better than `return {}` at call sites). */
inline Status
okStatus()
{
    return Status();
}

} // namespace p10ee::common

#endif // P10EE_COMMON_ERROR_H
