/**
 * @file
 * Minimal dense linear algebra for the counter-based power models.
 *
 * The M1-linked power model and the Power Proxy are trained with
 * constrained least squares over activity counters (paper §III-D, §IV-C).
 * Only the operations those solvers need are provided.
 */

#ifndef P10EE_COMMON_MATRIX_H
#define P10EE_COMMON_MATRIX_H

#include <cstddef>
#include <vector>

namespace p10ee::common {

/** Row-major dense matrix of doubles. */
class Matrix
{
  public:
    /** Zero-filled rows×cols matrix. */
    Matrix(size_t rows, size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
    {}

    /** Element accessors. */
    double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
    double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    /** this^T * other. @pre rows() == other.rows(). */
    Matrix transposeTimes(const Matrix& other) const;

    /** this^T * vec. @pre rows() == vec.size(). */
    std::vector<double> transposeTimesVec(const std::vector<double>& vec)
        const;

    /** this * vec. @pre cols() == vec.size(). */
    std::vector<double> timesVec(const std::vector<double>& vec) const;

  private:
    size_t rows_;
    size_t cols_;
    std::vector<double> data_;
};

/**
 * Solve the symmetric positive (semi-)definite system A x = b via
 * Cholesky with a small ridge term for numerical robustness.
 *
 * @param a square symmetric matrix (modified internally by copy).
 * @param b right-hand side.
 * @param ridge diagonal regularizer added to A.
 * @return solution vector x.
 */
std::vector<double> solveSpd(const Matrix& a, const std::vector<double>& b,
                             double ridge = 1e-9);

/**
 * Ordinary least squares: minimize ||X w - y||^2.
 *
 * @param x design matrix (rows = observations).
 * @param y targets, one per row of @p x.
 * @return weight vector of size x.cols().
 */
std::vector<double> leastSquares(const Matrix& x,
                                 const std::vector<double>& y);

/**
 * Non-negative least squares: minimize ||X w - y||^2 subject to w >= 0,
 * by cyclic coordinate descent on the normal equations. Used when the
 * paper's modeling constraint "all coefficients positive" is requested —
 * a physically meaningful constraint for power models (activity cannot
 * remove power).
 *
 * @param x design matrix.
 * @param y targets.
 * @param iterations coordinate-descent sweeps.
 * @return non-negative weight vector.
 */
std::vector<double> nonNegativeLeastSquares(const Matrix& x,
                                            const std::vector<double>& y,
                                            int iterations = 200);

} // namespace p10ee::common

#endif // P10EE_COMMON_MATRIX_H
