/**
 * @file
 * Versioned, deterministic binary serialization primitives.
 *
 * The checkpoint subsystem (src/ckpt) and the sweep shard cache
 * (src/sweep) persist simulator state and results as flat byte
 * buffers. Two invariants rule the format:
 *
 *  - *Determinism*: the same logical state always serializes to the
 *    same bytes. Every scalar is written little-endian at a fixed
 *    width, floating-point values as their IEEE-754 bit patterns, and
 *    containers as a length followed by the elements — no padding, no
 *    host byte order, no pointer-dependent iteration.
 *
 *  - *Hostile-input safety*: anything read back may be truncated,
 *    bit-flipped or fabricated (checkpoints live on disk; cache
 *    entries survive code changes). BinReader therefore bounds-checks
 *    every read and latches a sticky failure instead of touching
 *    out-of-range memory; deserializers check ok() and return a
 *    recoverable common::Error, never crash. Length prefixes are
 *    validated against the remaining payload before any allocation,
 *    so a corrupted length cannot trigger a multi-gigabyte resize.
 */

#ifndef P10EE_COMMON_SERIALIZE_H
#define P10EE_COMMON_SERIALIZE_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.h"

namespace p10ee::common {

/** Append-only little-endian byte-buffer writer. */
class BinWriter
{
  public:
    void
    u8(uint8_t v)
    {
        buf_.push_back(v);
    }

    void u16(uint16_t v) { writeLe(v, 2); }
    void u32(uint32_t v) { writeLe(v, 4); }
    void u64(uint64_t v) { writeLe(v, 8); }

    void b(bool v) { u8(v ? 1 : 0); }

    /** IEEE-754 bit pattern; bit-exact round trip, NaNs included. */
    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    f32(float v)
    {
        uint32_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u32(bits);
    }

    /** Length-prefixed (u32) string. */
    void
    str(const std::string& s)
    {
        u32(static_cast<uint32_t>(s.size()));
        const auto* p = reinterpret_cast<const uint8_t*>(s.data());
        buf_.insert(buf_.end(), p, p + s.size());
    }

    /** Length-prefixed (u64) vector of u64 values. */
    void
    u64Vec(const std::vector<uint64_t>& v)
    {
        u64(v.size());
        for (uint64_t x : v)
            u64(x);
    }

    const std::vector<uint8_t>& bytes() const { return buf_; }
    std::vector<uint8_t> takeBytes() { return std::move(buf_); }
    size_t size() const { return buf_.size(); }

  private:
    void
    writeLe(uint64_t v, int n)
    {
        for (int i = 0; i < n; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    std::vector<uint8_t> buf_;
};

/**
 * Bounds-checked little-endian reader over a borrowed byte buffer.
 *
 * Every accessor returns a value (zero after a failure) and latches
 * failed() on underflow; deserializers read a whole section, then
 * check ok() once and translate a failure into a recoverable Error.
 * The buffer is borrowed — the caller keeps it alive while reading.
 */
class BinReader
{
  public:
    BinReader(const uint8_t* data, size_t size)
        : data_(data), size_(size)
    {}

    explicit BinReader(const std::vector<uint8_t>& buf)
        : BinReader(buf.data(), buf.size())
    {}

    uint8_t
    u8()
    {
        return static_cast<uint8_t>(readLe(1));
    }

    uint16_t u16() { return static_cast<uint16_t>(readLe(2)); }
    uint32_t u32() { return static_cast<uint32_t>(readLe(4)); }
    uint64_t u64() { return readLe(8); }

    bool b() { return u8() != 0; }

    double
    f64()
    {
        uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    float
    f32()
    {
        uint32_t bits = u32();
        float v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    /** Length-prefixed string; a length past the payload end fails. */
    std::string
    str()
    {
        uint32_t n = u32();
        if (fail_ || n > size_ - pos_) {
            fail_ = true;
            return {};
        }
        std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
        pos_ += n;
        return s;
    }

    /** Length-prefixed u64 vector; length validated before resize. */
    std::vector<uint64_t>
    u64Vec()
    {
        uint64_t n = u64();
        if (fail_ || n > (size_ - pos_) / 8) {
            fail_ = true;
            return {};
        }
        std::vector<uint64_t> v(static_cast<size_t>(n));
        for (auto& x : v)
            x = u64();
        return v;
    }

    /**
     * Validate an element count read from the payload: it fails the
     * reader (and returns false) unless n elements of @p elemBytes
     * each could still fit in the remaining buffer. Call before any
     * count-driven resize so hostile lengths cannot force huge
     * allocations.
     */
    bool
    fits(uint64_t n, size_t elemBytes)
    {
        if (fail_ || elemBytes == 0 ||
            n > (size_ - pos_) / elemBytes) {
            fail_ = true;
            return false;
        }
        return true;
    }

    /** Advance past @p n bytes the caller consumes out-of-band (e.g.
        an embedded blob copied wholesale); underflow latches fail. */
    bool
    skip(size_t n)
    {
        if (fail_ || n > size_ - pos_) {
            fail_ = true;
            return false;
        }
        pos_ += n;
        return true;
    }

    size_t remaining() const { return size_ - pos_; }
    size_t position() const { return pos_; }
    bool failed() const { return fail_; }
    bool ok() const { return !fail_; }

    /** Mark the stream failed (semantic validation by a caller). */
    void poison() { fail_ = true; }

    /**
     * ok() as a Status: InvalidArgument naming @p what on failure.
     * The standard epilogue of every loadState() implementation.
     */
    Status
    status(const std::string& what) const
    {
        if (fail_)
            return Error::invalidArgument(
                what + ": truncated or corrupt serialized data");
        return okStatus();
    }

  private:
    uint64_t
    readLe(int n)
    {
        if (fail_ || static_cast<size_t>(n) > size_ - pos_) {
            fail_ = true;
            return 0;
        }
        uint64_t v = 0;
        for (int i = 0; i < n; ++i)
            v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
                 << (8 * i);
        pos_ += static_cast<size_t>(n);
        return v;
    }

    const uint8_t* data_;
    size_t size_;
    size_t pos_ = 0;
    bool fail_ = false;
};

} // namespace p10ee::common

#endif // P10EE_COMMON_SERIALIZE_H
