#include "common/table.h"

#include <cstdio>

namespace p10ee::common {

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
Table::print() const
{
    // Column widths across header + all rows.
    std::vector<size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& cells) {
        if (cells.size() > width.size())
            width.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            if (cells[i].size() > width[i])
                width[i] = cells[i].size();
    };
    widen(header_);
    for (const auto& r : rows_)
        widen(r);

    std::printf("\n== %s ==\n", title_.c_str());
    auto emit = [&](const std::vector<std::string>& cells) {
        for (size_t i = 0; i < cells.size(); ++i)
            std::printf("%-*s  ", static_cast<int>(width[i]),
                        cells[i].c_str());
        std::printf("\n");
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t w : width)
            total += w + 2;
        std::string rule(total, '-');
        std::printf("%s\n", rule.c_str());
    }
    for (const auto& r : rows_)
        emit(r);
}

void
Table::printCsv() const
{
    auto emit = [](const std::vector<std::string>& cells) {
        for (size_t i = 0; i < cells.size(); ++i)
            std::printf("%s%s", cells[i].c_str(),
                        i + 1 == cells.size() ? "\n" : ",");
    };
    emit(header_);
    for (const auto& r : rows_)
        emit(r);
}

std::string
fmt(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
fmtX(double value, int decimals)
{
    return fmt(value, decimals) + "x";
}

std::string
fmtPct(double fraction, int decimals)
{
    return fmt(fraction * 100.0, decimals) + "%";
}

} // namespace p10ee::common
