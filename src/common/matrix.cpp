#include "common/matrix.h"

#include <cmath>

#include "common/assert.h"

namespace p10ee::common {

Matrix
Matrix::transposeTimes(const Matrix& other) const
{
    P10_ASSERT(rows_ == other.rows(), "dimension mismatch");
    Matrix out(cols_, other.cols());
    for (size_t r = 0; r < rows_; ++r) {
        for (size_t i = 0; i < cols_; ++i) {
            double v = at(r, i);
            if (v == 0.0)
                continue;
            for (size_t j = 0; j < other.cols(); ++j)
                out.at(i, j) += v * other.at(r, j);
        }
    }
    return out;
}

std::vector<double>
Matrix::transposeTimesVec(const std::vector<double>& vec) const
{
    P10_ASSERT(rows_ == vec.size(), "dimension mismatch");
    std::vector<double> out(cols_, 0.0);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out[c] += at(r, c) * vec[r];
    return out;
}

std::vector<double>
Matrix::timesVec(const std::vector<double>& vec) const
{
    P10_ASSERT(cols_ == vec.size(), "dimension mismatch");
    std::vector<double> out(rows_, 0.0);
    for (size_t r = 0; r < rows_; ++r) {
        double s = 0.0;
        for (size_t c = 0; c < cols_; ++c)
            s += at(r, c) * vec[c];
        out[r] = s;
    }
    return out;
}

std::vector<double>
solveSpd(const Matrix& a, const std::vector<double>& b, double ridge)
{
    const size_t n = a.rows();
    P10_ASSERT(a.cols() == n && b.size() == n, "solveSpd shape");

    // Cholesky factorization A = L L^T with ridge on the diagonal.
    Matrix l(n, n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j <= i; ++j) {
            double s = a.at(i, j) + (i == j ? ridge : 0.0);
            for (size_t k = 0; k < j; ++k)
                s -= l.at(i, k) * l.at(j, k);
            if (i == j) {
                // Semi-definite inputs are expected (duplicate counters);
                // clamp to keep the factorization proceeding.
                l.at(i, i) = std::sqrt(s > ridge ? s : ridge);
            } else {
                l.at(i, j) = s / l.at(j, j);
            }
        }
    }

    // Forward solve L z = b.
    std::vector<double> z(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
        double s = b[i];
        for (size_t k = 0; k < i; ++k)
            s -= l.at(i, k) * z[k];
        z[i] = s / l.at(i, i);
    }

    // Back solve L^T x = z.
    std::vector<double> x(n, 0.0);
    for (size_t ii = n; ii-- > 0;) {
        double s = z[ii];
        for (size_t k = ii + 1; k < n; ++k)
            s -= l.at(k, ii) * x[k];
        x[ii] = s / l.at(ii, ii);
    }
    return x;
}

std::vector<double>
leastSquares(const Matrix& x, const std::vector<double>& y)
{
    Matrix xtx = x.transposeTimes(x);
    std::vector<double> xty = x.transposeTimesVec(y);
    return solveSpd(xtx, xty, 1e-6);
}

std::vector<double>
nonNegativeLeastSquares(const Matrix& x, const std::vector<double>& y,
                        int iterations)
{
    const size_t n = x.cols();
    Matrix xtx = x.transposeTimes(x);
    std::vector<double> xty = x.transposeTimesVec(y);

    std::vector<double> w(n, 0.0);
    for (int it = 0; it < iterations; ++it) {
        for (size_t j = 0; j < n; ++j) {
            double denom = xtx.at(j, j);
            if (denom <= 0.0)
                continue;
            double grad = xty[j];
            for (size_t k = 0; k < n; ++k)
                grad -= xtx.at(j, k) * w[k];
            double next = w[j] + grad / denom;
            w[j] = next > 0.0 ? next : 0.0;
        }
    }
    return w;
}

} // namespace p10ee::common
