/**
 * @file
 * Hex encoding for binary payloads embedded in NDJSON messages.
 *
 * The fabric protocol ships ShardCache entry bytes inside JSON strings
 * (cache_put / cache_result / shard_done). Base64 would be denser, but
 * hex keeps the codec trivially auditable and the decoder total: every
 * input either round-trips or is rejected, there is no padding state.
 * Payloads are small (a shard result is a few hundred bytes), so the 2x
 * expansion is noise next to the simulation cost being shipped around.
 */

#ifndef P10EE_COMMON_HEX_H
#define P10EE_COMMON_HEX_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace p10ee::common {

inline std::string
hexEncode(const std::vector<uint8_t>& bytes)
{
    static const char* digits = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (uint8_t b : bytes) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

/** Strict decode: even length, lowercase-or-uppercase hex digits only.
    Anything else is nullopt — wire payloads are hostile input. */
inline std::optional<std::vector<uint8_t>>
hexDecode(const std::string& text)
{
    if (text.size() % 2 != 0)
        return std::nullopt;
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        return -1;
    };
    std::vector<uint8_t> out;
    out.reserve(text.size() / 2);
    for (size_t i = 0; i < text.size(); i += 2) {
        int hi = nibble(text[i]);
        int lo = nibble(text[i + 1]);
        if (hi < 0 || lo < 0)
            return std::nullopt;
        out.push_back(static_cast<uint8_t>((hi << 4) | lo));
    }
    return out;
}

} // namespace p10ee::common

#endif // P10EE_COMMON_HEX_H
