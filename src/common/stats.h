/**
 * @file
 * Named statistic counters and histograms.
 *
 * The core timing model exposes its activity through a StatRegistry: a
 * set of named 64-bit counters. The power model, the M1-linked
 * counter-model trainer, SERMiner and the Power Proxy all consume the
 * same registry, mirroring how the paper's tools all consume RTLSim
 * activity stats.
 *
 * Two access paths share one counter store:
 *  - the string-keyed path (add/get by name) for cold call sites and
 *    consumers written against the union of P9/P10 counter sets;
 *  - the interned fast path: id() interns a name once into a StatId,
 *    and add(StatId)/get(StatId) are a bare array index — what the
 *    core model's per-instruction call sites use, so per-cycle
 *    accounting costs no string hashing or map lookups.
 */

#ifndef P10EE_COMMON_STATS_H
#define P10EE_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/error.h"

namespace p10ee::common {

/** A snapshot of every counter at a point in simulated time. */
using StatSnapshot = std::map<std::string, uint64_t>;

/** Interned handle to one StatRegistry counter (registry-specific). */
struct StatId
{
    uint32_t v = UINT32_MAX;

    bool valid() const { return v != UINT32_MAX; }
};

/**
 * Registry of named monotonically increasing event counters.
 *
 * Counters are created on first touch; reads of unknown names return 0
 * so that consumers can be written against the union of P9/P10 counter
 * sets.
 */
class StatRegistry
{
  public:
    /**
     * Intern @p name, creating its counter at 0 if needed. The returned
     * handle stays valid for the registry's lifetime; interning the
     * same name again returns the same handle.
     */
    StatId id(const std::string& name);

    /** Add @p delta to the interned counter (the hot path). */
    void
    add(StatId id, uint64_t delta = 1)
    {
        values_[id.v] += delta;
    }

    /** Current value of the interned counter. */
    uint64_t get(StatId id) const { return values_[id.v]; }

    /** Add @p delta to counter @p name (creating it at 0 if needed). */
    void add(const std::string& name, uint64_t delta = 1);

    /** Current value of @p name, or 0 if never touched. */
    uint64_t get(const std::string& name) const;

    /** Copy of the full counter map. */
    StatSnapshot snapshot() const;

    /**
     * Per-counter difference @p later minus @p earlier. Counters absent
     * from @p earlier are treated as starting at zero.
     */
    static StatSnapshot delta(const StatSnapshot& earlier,
                              const StatSnapshot& later);

    /** Reset all counters to zero (keeps the names and handles). */
    void clear();

    /**
     * Overwrite all counters with @p snap: existing counters not in the
     * snapshot go to zero, snapshot entries are set to their saved
     * values (interning new names as needed). Handles already interned
     * stay valid — this is how checkpoint restore rewinds a registry
     * without invalidating the core model's cached StatIds.
     */
    void restore(const StatSnapshot& snap);

    /** Sorted list of all counter names seen so far. */
    std::vector<std::string> names() const;

  private:
    std::map<std::string, StatId> index_;
    std::vector<uint64_t> values_;
};

/**
 * Fixed-bin histogram over [lo, hi); used by the Tracepoints epoch
 * binning and by SERMiner's latch-utilization distribution analysis.
 */
class Histogram
{
  public:
    /** @param bins number of equal-width bins over [lo, hi). */
    Histogram(double lo, double hi, int bins);

    /** Record one sample (clamped into the outermost bins). */
    void record(double value);

    /** Samples in bin @p i. */
    uint64_t count(int i) const { return counts_[i]; }

    /** Number of bins. */
    int bins() const { return static_cast<int>(counts_.size()); }

    /** Total samples recorded. */
    uint64_t total() const { return total_; }

    /** Center value of bin @p i. */
    double binCenter(int i) const;

    /** Index of the bin a value falls into (clamped). */
    int binIndex(double value) const;

    /**
     * Value below which @p fraction of the samples fall (linear within
     * the bin). An empty histogram is an input condition, not a
     * programming error — report generation over an empty series must
     * degrade gracefully — so it returns a recoverable Error instead
     * of aborting.
     */
    Expected<double> percentile(double fraction) const;

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

/** Streaming mean/variance accumulator (Welford). */
class RunningStat
{
  public:
    /** Record one sample. */
    void record(double x);

    /** Number of samples. */
    uint64_t count() const { return n_; }

    /** Sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population standard deviation (0 for <2 samples). */
    double stddev() const;

    /** Smallest sample seen. */
    double min() const { return min_; }

    /** Largest sample seen. */
    double max() const { return max_; }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace p10ee::common

#endif // P10EE_COMMON_STATS_H
