#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace p10ee::common {

StatId
StatRegistry::id(const std::string& name)
{
    auto it = index_.find(name);
    if (it != index_.end())
        return it->second;
    StatId sid{static_cast<uint32_t>(values_.size())};
    values_.push_back(0);
    index_.emplace(name, sid);
    return sid;
}

void
StatRegistry::add(const std::string& name, uint64_t delta)
{
    add(id(name), delta);
}

uint64_t
StatRegistry::get(const std::string& name) const
{
    auto it = index_.find(name);
    return it == index_.end() ? 0 : values_[it->second.v];
}

StatSnapshot
StatRegistry::snapshot() const
{
    // Interned-but-never-incremented counters stay out of snapshots:
    // consumers test feature activity by key presence (a POWER9 run
    // must not grow "decode.prefix_fused" just because the model
    // interned it up front).
    StatSnapshot out;
    for (const auto& [name, sid] : index_)
        if (values_[sid.v] != 0)
            out.emplace_hint(out.end(), name, values_[sid.v]);
    return out;
}

StatSnapshot
StatRegistry::delta(const StatSnapshot& earlier, const StatSnapshot& later)
{
    StatSnapshot d;
    for (const auto& [name, value] : later) {
        auto it = earlier.find(name);
        uint64_t before = it == earlier.end() ? 0 : it->second;
        P10_ASSERT(value >= before, "counter went backwards");
        d[name] = value - before;
    }
    return d;
}

void
StatRegistry::clear()
{
    for (auto& value : values_)
        value = 0;
}

void
StatRegistry::restore(const StatSnapshot& snap)
{
    clear();
    for (const auto& [name, value] : snap)
        values_[id(name).v] = value;
}

std::vector<std::string>
StatRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(index_.size());
    for (const auto& [name, sid] : index_)
        out.push_back(name);
    return out;
}

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), counts_(static_cast<size_t>(bins), 0)
{
    P10_ASSERT(bins > 0 && hi > lo, "degenerate histogram");
}

int
Histogram::binIndex(double value) const
{
    double f = (value - lo_) / (hi_ - lo_);
    int i = static_cast<int>(f * bins());
    return std::clamp(i, 0, bins() - 1);
}

void
Histogram::record(double value)
{
    ++counts_[binIndex(value)];
    ++total_;
}

double
Histogram::binCenter(int i) const
{
    double width = (hi_ - lo_) / bins();
    return lo_ + (i + 0.5) * width;
}

Expected<double>
Histogram::percentile(double fraction) const
{
    if (total_ == 0)
        return Error::invalidArgument(
            "percentile of an empty histogram");
    double target = fraction * static_cast<double>(total_);
    double seen = 0.0;
    double width = (hi_ - lo_) / bins();
    for (int i = 0; i < bins(); ++i) {
        double next = seen + static_cast<double>(counts_[i]);
        if (next >= target) {
            double within = counts_[i] == 0
                ? 0.0
                : (target - seen) / static_cast<double>(counts_[i]);
            return lo_ + (i + within) * width;
        }
        seen = next;
    }
    return hi_;
}

void
RunningStat::record(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::stddev() const
{
    if (n_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(n_));
}

} // namespace p10ee::common
