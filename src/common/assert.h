/**
 * @file
 * Invariant checking for the p10ee library.
 *
 * Simulator invariants are programming errors, never user errors, so a
 * violated invariant aborts (gem5's panic() semantics). Kept enabled in
 * release builds: the cost is negligible relative to simulation work and
 * silent state corruption in a power model is worse than an abort.
 */

#ifndef P10EE_COMMON_ASSERT_H
#define P10EE_COMMON_ASSERT_H

#include <cstdio>
#include <cstdlib>

/** Abort with a message when a simulator invariant does not hold. */
#define P10_ASSERT(cond, msg)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            std::fprintf(stderr, "p10ee panic: %s:%d: %s: %s\n",           \
                         __FILE__, __LINE__, #cond, msg);                  \
            std::abort();                                                  \
        }                                                                  \
    } while (0)

#endif // P10EE_COMMON_ASSERT_H
