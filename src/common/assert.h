/**
 * @file
 * Invariant checking for the p10ee library.
 *
 * Simulator invariants are programming errors, never user errors, so a
 * violated invariant aborts (gem5's panic() semantics). Kept enabled in
 * release builds: the cost is negligible relative to simulation work and
 * silent state corruption in a power model is worse than an abort.
 *
 * Recoverable *input* errors (user configs, CLI flags, campaign specs)
 * must NOT use these macros — they return common::Expected / Error
 * (see common/error.h) so batch sweeps can skip-and-record instead of
 * dying.
 *
 * Both macros evaluate the condition exactly once (it is captured into
 * a local bool before testing), so conditions with side effects — none
 * exist in-tree today, and new ones are discouraged — cannot fire
 * twice. The message / format arguments are evaluated only on failure.
 */

#ifndef P10EE_COMMON_ASSERT_H
#define P10EE_COMMON_ASSERT_H

#include <cstdio>
#include <cstdlib>

/** Abort with a fixed message when a simulator invariant does not hold. */
#define P10_ASSERT(cond, msg)                                              \
    do {                                                                   \
        const bool p10_assert_ok_ = static_cast<bool>(cond);               \
        if (!p10_assert_ok_) {                                             \
            std::fprintf(stderr, "p10ee panic: %s:%d: %s: %s\n",           \
                         __FILE__, __LINE__, #cond, msg);                  \
            std::abort();                                                  \
        }                                                                  \
    } while (0)

/**
 * Abort with a printf-style message when an invariant does not hold.
 * @p fmt must be a string literal; the stringized condition is passed
 * through a "%s" conversion so `%` characters inside the condition
 * text (e.g. `x % 8 == 0`) cannot be misread as conversions.
 */
#define P10_ASSERT_FMT(cond, fmt, ...)                                     \
    do {                                                                   \
        const bool p10_assert_ok_ = static_cast<bool>(cond);               \
        if (!p10_assert_ok_) {                                             \
            std::fprintf(stderr, "p10ee panic: %s:%d: %s: " fmt "\n",      \
                         __FILE__, __LINE__,                               \
                         #cond __VA_OPT__(, ) __VA_ARGS__);                \
            std::abort();                                                  \
        }                                                                  \
    } while (0)

#endif // P10EE_COMMON_ASSERT_H
