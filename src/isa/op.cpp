#include "isa/op.h"

namespace p10ee::isa {

std::string
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu: return "int_alu";
      case OpClass::IntMul: return "int_mul";
      case OpClass::IntDiv: return "int_div";
      case OpClass::Load: return "load";
      case OpClass::Store: return "store";
      case OpClass::Load32B: return "load32b";
      case OpClass::Store32B: return "store32b";
      case OpClass::Branch: return "branch";
      case OpClass::BranchIndirect: return "branch_ind";
      case OpClass::FpScalar: return "fp_scalar";
      case OpClass::VsuFp: return "vsu_fp";
      case OpClass::VsuInt: return "vsu_int";
      case OpClass::MmaGer: return "mma_ger";
      case OpClass::MmaMove: return "mma_move";
      case OpClass::CryptoDfu: return "crypto_dfu";
      case OpClass::System: return "system";
      case OpClass::Nop: return "nop";
      default: return "invalid";
    }
}

bool
isLoad(OpClass op)
{
    return op == OpClass::Load || op == OpClass::Load32B;
}

bool
isStore(OpClass op)
{
    return op == OpClass::Store || op == OpClass::Store32B;
}

bool
isBranch(OpClass op)
{
    return op == OpClass::Branch || op == OpClass::BranchIndirect;
}

bool
isVsu(OpClass op)
{
    return op == OpClass::VsuFp || op == OpClass::VsuInt;
}

bool
isMma(OpClass op)
{
    return op == OpClass::MmaGer || op == OpClass::MmaMove;
}

int
flopsPerInstr(OpClass op)
{
    switch (op) {
      case OpClass::FpScalar:
        return 2;   // scalar FMA
      case OpClass::VsuFp:
        return 4;   // 2 lanes x FMA
      case OpClass::MmaGer:
        return 16;  // 4x2 accumulator halves x rank-2 FMA
      default:
        return 0;
    }
}

} // namespace p10ee::isa
