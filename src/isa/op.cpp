#include "isa/op.h"

namespace p10ee::isa {

std::string
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu: return "int_alu";
      case OpClass::IntMul: return "int_mul";
      case OpClass::IntDiv: return "int_div";
      case OpClass::Load: return "load";
      case OpClass::Store: return "store";
      case OpClass::Load32B: return "load32b";
      case OpClass::Store32B: return "store32b";
      case OpClass::Branch: return "branch";
      case OpClass::BranchIndirect: return "branch_ind";
      case OpClass::FpScalar: return "fp_scalar";
      case OpClass::VsuFp: return "vsu_fp";
      case OpClass::VsuInt: return "vsu_int";
      case OpClass::MmaGer: return "mma_ger";
      case OpClass::MmaMove: return "mma_move";
      case OpClass::CryptoDfu: return "crypto_dfu";
      case OpClass::System: return "system";
      case OpClass::Nop: return "nop";
      default: return "invalid";
    }
}

} // namespace p10ee::isa
