/**
 * @file
 * Pre-decoded instruction record consumed by the core timing model.
 */

#ifndef P10EE_ISA_INSTR_H
#define P10EE_ISA_INSTR_H

#include <cstdint>

#include "isa/op.h"

namespace p10ee::isa {

/**
 * Register-number conventions of the abstract machine.
 *
 * POWER10 holds GPRs and VSRs in one unified physical file (paper §II-B);
 * a flat architectural register space keeps dependence tracking uniform
 * across both designs while the rename stage decides which physical
 * resource backs it.
 */
namespace reg {
constexpr uint16_t kNumGpr = 32;       ///< r0..r31
constexpr uint16_t kNumVsr = 64;       ///< vs0..vs63
constexpr uint16_t kGprBase = 0;
constexpr uint16_t kVsrBase = kNumGpr;
constexpr uint16_t kCtr = kGprBase + kNumGpr + kNumVsr;     ///< count reg
constexpr uint16_t kLr = kCtr + 1;                          ///< link reg
constexpr uint16_t kCrBase = kLr + 1;                       ///< cr0..cr7
constexpr uint16_t kNumCr = 8;
constexpr uint16_t kAccBase = kCrBase + kNumCr;             ///< acc0..acc7
constexpr uint16_t kNumAcc = 8;
constexpr uint16_t kNumArchRegs = kAccBase + kNumAcc;
constexpr uint16_t kNone = 0xffff;     ///< "no register" sentinel
} // namespace reg

/**
 * One pre-decoded instruction of the trace-driven machine.
 *
 * Carries everything the pipeline model needs: operation class, register
 * dependences (up to three sources, one destination), effective address
 * and access size for memory ops, and control-flow metadata for branches.
 * Flags mark instructions of interest to specific experiments (GEMM ops
 * for Fig. 6, prefixed 8-byte instructions, fusion hints).
 */
struct TraceInstr
{
    OpClass op = OpClass::Nop;

    /** Source architectural registers; reg::kNone when unused. */
    uint16_t src[3] = {reg::kNone, reg::kNone, reg::kNone};

    /** Destination architectural register; reg::kNone when none. */
    uint16_t dest = reg::kNone;

    /** Instruction address (for I-cache and branch predictor indexing). */
    uint64_t pc = 0;

    /** Effective address for loads/stores; 0 otherwise. */
    uint64_t addr = 0;

    /** Access size in bytes for loads/stores; 0 otherwise. */
    uint16_t size = 0;

    /** Working-set tier of a memory access (diagnostics; 0xff none). */
    uint8_t memTier = 0xff;

    /** Branch resolution: taken/not-taken. */
    bool taken = false;

    /** Branch target address (valid when isBranch(op)). */
    uint64_t target = 0;

    /** 8-byte prefixed instruction (Power ISA 3.1 prefix word). */
    bool prefixed = false;

    /** Part of a GEMM kernel (drives Fig. 6 instruction-ratio series). */
    bool gemm = false;

    /**
     * Operand data-switching activity in [0,1]: the expected fraction of
     * operand bits toggling versus the previous value on the same wires.
     * Zero-initialized data gives ~0, random data ~0.5 (the Microprobe
     * zero/random axis of Fig. 13); typical integer code sits near 0.3.
     */
    float toggle = 0.3f;

    /** Number of source registers in use. */
    int
    numSrcs() const
    {
        int n = 0;
        for (uint16_t s : src)
            if (s != reg::kNone)
                ++n;
        return n;
    }
};

} // namespace p10ee::isa

#endif // P10EE_ISA_INSTR_H
