/**
 * @file
 * Operation classes of the POWER-like ISA abstraction.
 *
 * The timing model does not interpret binary Power ISA encodings; it
 * consumes pre-decoded instruction records whose operation class carries
 * everything the pipeline needs (issue port, latency class, register
 * traffic). This is the abstraction level of the paper's workload proxies,
 * which were themselves pre-decoded L1-contained instruction loops.
 */

#ifndef P10EE_ISA_OP_H
#define P10EE_ISA_OP_H

#include <cstdint>
#include <string>

namespace p10ee::isa {

/**
 * Instruction operation classes. The grouping follows the POWER10 core's
 * issue-port structure (Fig. 3 of the paper): fixed point, load/store,
 * branch, 128-bit VSU SIMD, scalar FP, and the MMA accelerator ops, plus
 * the new 32-byte loads/stores introduced alongside the MMA facility.
 */
enum class OpClass : uint8_t {
    IntAlu,        ///< add/sub/logical/compare/rotate, 1-cycle class
    IntMul,        ///< fixed-point multiply
    IntDiv,        ///< fixed-point divide (long latency, unpipelined)
    Load,          ///< scalar or 16B vector load
    Store,         ///< scalar or 16B vector store
    Load32B,       ///< POWER10 32-byte load (lxvp)
    Store32B,      ///< POWER10 32-byte store (stxvp)
    Branch,        ///< direct conditional/unconditional branch
    BranchIndirect,///< bclr/bcctr-style indirect branch
    FpScalar,      ///< scalar floating-point arithmetic
    VsuFp,         ///< 128-bit vector-scalar FP (xvmaddadp etc.)
    VsuInt,        ///< 128-bit vector integer / permute
    MmaGer,        ///< MMA rank-k update (xvf64ger2pp, xvf32gerpp, ...)
    MmaMove,       ///< accumulator prime/deprime (xxmtacc/xxmfacc)
    CryptoDfu,     ///< crypto / decimal unit ops
    System,        ///< sync/isync/mtspr-style serializing ops
    Nop,           ///< no-op / padding
    NumOpClasses
};

/** Human-readable name of an operation class. */
std::string opClassName(OpClass op);

// The class predicates below are defined in the header: the advance loop
// asks them several times per simulated instruction, and as out-of-line
// calls they dominated the flat profile. constexpr keeps them usable in
// static contexts as well.

/** True for any memory-reading class. */
constexpr bool
isLoad(OpClass op)
{
    return op == OpClass::Load || op == OpClass::Load32B;
}

/** True for any memory-writing class. */
constexpr bool
isStore(OpClass op)
{
    return op == OpClass::Store || op == OpClass::Store32B;
}

/** True for either branch class. */
constexpr bool
isBranch(OpClass op)
{
    return op == OpClass::Branch || op == OpClass::BranchIndirect;
}

/** True for the 128-bit VSU classes. */
constexpr bool
isVsu(OpClass op)
{
    return op == OpClass::VsuFp || op == OpClass::VsuInt;
}

/** True for the MMA classes. */
constexpr bool
isMma(OpClass op)
{
    return op == OpClass::MmaGer || op == OpClass::MmaMove;
}

/**
 * Double-precision-equivalent floating point operations performed by one
 * instruction of class @p op, used for FLOPs/cycle accounting (Fig. 5).
 *
 * A 128-bit VSU FMA does 2 doubles x 2 ops = 4 flops. An MMA
 * xvf64ger2pp rank-2 update of a 4x2 accumulator does 4x2x2 madds =
 * 16 flops (32 double-precision flops/cycle across the paper's quoted
 * peak with two MMA-feeding pipes).
 */
constexpr int
flopsPerInstr(OpClass op)
{
    switch (op) {
      case OpClass::FpScalar:
        return 2;  // scalar FMA
      case OpClass::VsuFp:
        return 4;  // 2 lanes x FMA
      case OpClass::MmaGer:
        return 16; // 4x2 accumulator halves x rank-2 FMA
      default:
        return 0;
    }
}

} // namespace p10ee::isa

#endif // P10EE_ISA_OP_H
