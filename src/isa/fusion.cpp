#include "isa/fusion.h"

namespace p10ee::isa {

std::string
fusionKindName(FusionKind kind)
{
    switch (kind) {
      case FusionKind::None: return "none";
      case FusionKind::AluAlu: return "alu_alu";
      case FusionKind::AluBranch: return "alu_branch";
      case FusionKind::LoadLoad: return "load_load";
      case FusionKind::StoreStore: return "store_store";
      case FusionKind::AluLoadAddr: return "alu_load_addr";
      case FusionKind::SharedIssue: return "shared_issue";
      default: return "invalid";
    }
}

} // namespace p10ee::isa
