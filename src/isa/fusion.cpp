#include "isa/fusion.h"

namespace p10ee::isa {

namespace {

/** Does @p second read the register @p first writes? */
bool
dependsOn(const TraceInstr& first, const TraceInstr& second)
{
    if (first.dest == reg::kNone)
        return false;
    for (uint16_t s : second.src)
        if (s == first.dest)
            return true;
    return false;
}

/** Are two memory ops to consecutive, same-size addresses? */
bool
consecutiveAddresses(const TraceInstr& first, const TraceInstr& second)
{
    return first.size > 0 && first.size == second.size &&
           second.addr == first.addr + first.size;
}

} // namespace

std::string
fusionKindName(FusionKind kind)
{
    switch (kind) {
      case FusionKind::None: return "none";
      case FusionKind::AluAlu: return "alu_alu";
      case FusionKind::AluBranch: return "alu_branch";
      case FusionKind::LoadLoad: return "load_load";
      case FusionKind::StoreStore: return "store_store";
      case FusionKind::AluLoadAddr: return "alu_load_addr";
      case FusionKind::SharedIssue: return "shared_issue";
      default: return "invalid";
    }
}

FusionKind
classifyFusion(const TraceInstr& first, const TraceInstr& second)
{
    // Fusion is a pre-decode feature on the sequential stream; a taken
    // branch as the first op means the pair is not dynamically adjacent.
    if (isBranch(first.op) && first.taken)
        return FusionKind::None;

    // Compare/record-form ALU + dependent conditional branch.
    if (first.op == OpClass::IntAlu && second.op == OpClass::Branch &&
        dependsOn(first, second)) {
        return FusionKind::AluBranch;
    }

    // Consecutive-address store pairing: one AGEN for both (paper:
    // "store instructions to consecutive addresses are fused, resulting
    // in a single address generation pipeline operation").
    if (first.op == OpClass::Store && second.op == OpClass::Store &&
        consecutiveAddresses(first, second) && first.size <= 16) {
        return FusionKind::StoreStore;
    }

    if (first.op == OpClass::Load && second.op == OpClass::Load &&
        consecutiveAddresses(first, second) && first.size <= 16) {
        return FusionKind::LoadLoad;
    }

    // Address-forming ALU op feeding a load's base register (addis+load
    // style D-form pairs).
    if (first.op == OpClass::IntAlu && isLoad(second.op) &&
        dependsOn(first, second)) {
        return FusionKind::AluLoadAddr;
    }

    // Dependent ALU pairs: simple destructive chains collapse fully;
    // other dependent ALU pairs share an issue entry with optimized
    // wakeup latency.
    if (first.op == OpClass::IntAlu && second.op == OpClass::IntAlu &&
        dependsOn(first, second)) {
        // Collapse when the pair is a 2-source chain overall (the fused
        // op still has at most 3 sources).
        int sources = first.numSrcs() + second.numSrcs() - 1;
        return sources <= 3 ? FusionKind::AluAlu : FusionKind::SharedIssue;
    }

    return FusionKind::None;
}

bool
fusesToSingleOp(FusionKind kind)
{
    switch (kind) {
      case FusionKind::AluAlu:
      case FusionKind::AluBranch:
      case FusionKind::StoreStore:
      case FusionKind::LoadLoad:
      case FusionKind::AluLoadAddr:
        return true;
      default:
        return false;
    }
}

} // namespace p10ee::isa
