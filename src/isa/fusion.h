/**
 * @file
 * Instruction-fusion pair detection (paper §II-B).
 *
 * POWER10's pre-decode detects over 200 fusible instruction-type pairs in
 * the instruction cache; fused pairs decode to one internal operation (or
 * share one issue-queue entry), reducing work and dependent-op latency.
 * This module abstracts those 200+ encodings into the fusion *categories*
 * the paper describes and decides, mechanistically from two adjacent
 * pre-decoded records, whether they fuse.
 */

#ifndef P10EE_ISA_FUSION_H
#define P10EE_ISA_FUSION_H

#include <string>

#include "isa/instr.h"

namespace p10ee::isa {

/** Category of a fused instruction pair. */
enum class FusionKind : uint8_t {
    None,           ///< pair does not fuse
    AluAlu,         ///< dependent ALU pair collapsed to one op
    AluBranch,      ///< compare + conditional branch
    LoadLoad,       ///< two consecutive-address loads
    StoreStore,     ///< two consecutive-address stores, one AGEN
    AluLoadAddr,    ///< address-forming ALU op + dependent load (D-form)
    SharedIssue,    ///< dependent pair sharing one issue entry (zero-cycle)
    NumFusionKinds
};

/** Human-readable fusion category name. */
std::string fusionKindName(FusionKind kind);

namespace detail {

/** Does @p second read the register @p first writes? */
constexpr bool
dependsOn(const TraceInstr& first, const TraceInstr& second)
{
    if (first.dest == reg::kNone)
        return false;
    for (uint16_t s : second.src)
        if (s == first.dest)
            return true;
    return false;
}

/** Are two memory ops to consecutive, same-size addresses? */
constexpr bool
consecutiveAddresses(const TraceInstr& first, const TraceInstr& second)
{
    return first.size > 0 && first.size == second.size &&
           second.addr == first.addr + first.size;
}

} // namespace detail

/**
 * Decide whether the adjacent pre-decoded pair (@p first, @p second)
 * fuses, and into which category.
 *
 * Rules follow the paper's examples: dependent ALU pairs; compare+branch;
 * stores to consecutive addresses (<= 16B each, one address-generation
 * operation); loads from consecutive addresses; and dependent pairs that
 * share an issue entry. A pair never fuses across a taken branch.
 *
 * Header-defined: pre-decode asks this once per fetched instruction, and
 * as an out-of-line call it was visible in the advance-loop flat profile.
 */
inline FusionKind
classifyFusion(const TraceInstr& first, const TraceInstr& second)
{
    // Fusion is a pre-decode feature on the sequential stream; a taken
    // branch as the first op means the pair is not dynamically adjacent.
    if (isBranch(first.op) && first.taken)
        return FusionKind::None;

    // Compare/record-form ALU + dependent conditional branch.
    if (first.op == OpClass::IntAlu && second.op == OpClass::Branch &&
        detail::dependsOn(first, second)) {
        return FusionKind::AluBranch;
    }

    // Consecutive-address store pairing: one AGEN for both (paper:
    // "store instructions to consecutive addresses are fused, resulting
    // in a single address generation pipeline operation").
    if (first.op == OpClass::Store && second.op == OpClass::Store &&
        detail::consecutiveAddresses(first, second) && first.size <= 16) {
        return FusionKind::StoreStore;
    }

    if (first.op == OpClass::Load && second.op == OpClass::Load &&
        detail::consecutiveAddresses(first, second) && first.size <= 16) {
        return FusionKind::LoadLoad;
    }

    // Address-forming ALU op feeding a load's base register (addis+load
    // style D-form pairs).
    if (first.op == OpClass::IntAlu && isLoad(second.op) &&
        detail::dependsOn(first, second)) {
        return FusionKind::AluLoadAddr;
    }

    // Dependent ALU pairs: simple destructive chains collapse fully;
    // other dependent ALU pairs share an issue entry with optimized
    // wakeup latency.
    if (first.op == OpClass::IntAlu && second.op == OpClass::IntAlu &&
        detail::dependsOn(first, second)) {
        // Collapse when the pair is a 2-source chain overall (the fused
        // op still has at most 3 sources).
        int sources = first.numSrcs() + second.numSrcs() - 1;
        return sources <= 3 ? FusionKind::AluAlu : FusionKind::SharedIssue;
    }

    return FusionKind::None;
}

/**
 * True when the fused pair decodes into a *single* internal op (removing
 * one unit of work); SharedIssue pairs still occupy two ops but share an
 * issue entry with zero-cycle dependent wakeup. Header-defined: the
 * decode stage asks this once per fetched instruction.
 */
constexpr bool
fusesToSingleOp(FusionKind kind)
{
    switch (kind) {
      case FusionKind::AluAlu:
      case FusionKind::AluBranch:
      case FusionKind::StoreStore:
      case FusionKind::LoadLoad:
      case FusionKind::AluLoadAddr:
        return true;
      default:
        return false;
    }
}

} // namespace p10ee::isa

#endif // P10EE_ISA_FUSION_H
