/**
 * @file
 * Instruction-fusion pair detection (paper §II-B).
 *
 * POWER10's pre-decode detects over 200 fusible instruction-type pairs in
 * the instruction cache; fused pairs decode to one internal operation (or
 * share one issue-queue entry), reducing work and dependent-op latency.
 * This module abstracts those 200+ encodings into the fusion *categories*
 * the paper describes and decides, mechanistically from two adjacent
 * pre-decoded records, whether they fuse.
 */

#ifndef P10EE_ISA_FUSION_H
#define P10EE_ISA_FUSION_H

#include <string>

#include "isa/instr.h"

namespace p10ee::isa {

/** Category of a fused instruction pair. */
enum class FusionKind : uint8_t {
    None,           ///< pair does not fuse
    AluAlu,         ///< dependent ALU pair collapsed to one op
    AluBranch,      ///< compare + conditional branch
    LoadLoad,       ///< two consecutive-address loads
    StoreStore,     ///< two consecutive-address stores, one AGEN
    AluLoadAddr,    ///< address-forming ALU op + dependent load (D-form)
    SharedIssue,    ///< dependent pair sharing one issue entry (zero-cycle)
    NumFusionKinds
};

/** Human-readable fusion category name. */
std::string fusionKindName(FusionKind kind);

/**
 * Decide whether the adjacent pre-decoded pair (@p first, @p second)
 * fuses, and into which category.
 *
 * Rules follow the paper's examples: dependent ALU pairs; compare+branch;
 * stores to consecutive addresses (<= 16B each, one address-generation
 * operation); loads from consecutive addresses; and dependent pairs that
 * share an issue entry. A pair never fuses across a taken branch.
 */
FusionKind classifyFusion(const TraceInstr& first, const TraceInstr& second);

/**
 * True when the fused pair decodes into a *single* internal op (removing
 * one unit of work); SharedIssue pairs still occupy two ops but share an
 * issue entry with zero-cycle dependent wakeup.
 */
bool fusesToSingleOp(FusionKind kind);

} // namespace p10ee::isa

#endif // P10EE_ISA_FUSION_H
