/**
 * @file
 * Versioned binary checkpoints of resumable simulation state.
 *
 * A checkpoint captures everything that determines a simulation's
 * future — the CoreModel's architectural and microarchitectural state
 * (predictor tables, cache tags, queues, throttle rings, stat
 * counters) plus each SMT thread's workload-walker state (RNG, CFG
 * cursor, region cursors) — so a measured region can fork from a
 * warmed-up machine without re-simulating the warmup. restore() +
 * measure() is bit-identical to advance(warmup) + measure(): the
 * round-trip tests diff the stats JSON byte for byte.
 *
 * File format (all little-endian, see common/serialize.h):
 *
 *   magic "P10CKPT\0" | u32 format version | u32 state-schema version
 *   | u64 config hash | meta strings/ints | u64 payload size | payload
 *   | u64 FNV-1a checksum over everything before it
 *
 * Two versions gate compatibility: kFormatVersion covers this
 * container layout, kStateSchemaVersion covers the serialized layout
 * of the model state inside the payload (bump it whenever any
 * saveState() implementation changes). The config hash binds a
 * checkpoint to the exact CoreConfig that produced it — restoring
 * into a differently parameterized model is an input error, reported
 * as a structured Error, never UB. Corrupt, truncated or bit-flipped
 * files fail the checksum or the bounds-checked deserializers and are
 * likewise rejected with Expected<> errors.
 */

#ifndef P10EE_CKPT_CHECKPOINT_H
#define P10EE_CKPT_CHECKPOINT_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/core.h"
#include "workloads/synthetic.h"

namespace p10ee::ckpt {

/** Container-layout version of the checkpoint file format. */
inline constexpr uint32_t kFormatVersion = 1;

/**
 * Version of the serialized simulator state inside the payload. Bump
 * whenever any saveState() layout changes; it also keys the sweep
 * shard cache (src/sweep/cache.h), so stale cache entries from an
 * older simulator become misses instead of corrupt loads.
 *
 * v2: pipeline queues serialize via FifoRing (occupancy validated
 * against config-derived capacity on load), the vestigial per-thread
 * LMQ copy is gone, and sw.* switching counters are filtered from the
 * stat snapshot so checkpoints are mode-independent — a FastM1 warmup
 * checkpoint is byte-identical to a Full-mode one.
 */
inline constexpr uint32_t kStateSchemaVersion = 2;

/**
 * Deterministic hash over every CoreConfig field (including the
 * display name), stable across platforms and builds. Two configs
 * hash equal iff the machines they describe are identical.
 */
uint64_t configHash(const core::CoreConfig& cfg);

/** Provenance recorded alongside the state payload. */
struct CheckpointMeta
{
    std::string configName;   ///< "power9", "power10", "ablate:..."
    std::string workload;     ///< profile name driving the threads
    uint32_t numThreads = 1;  ///< SMT sources bound at capture
    uint64_t warmupInstrs = 0;///< instructions advanced before capture
    uint64_t seed = 0;        ///< workload profile seed
};

/** One captured simulation state, save/load-able as a file. */
class Checkpoint
{
  public:
    /**
     * Snapshot @p model (which must be between beginRun/advance and
     * measure) and the walker state of @p sources (the same sources,
     * in the same order, that beginRun bound). Any checkpointable
     * source qualifies — synthetic generators and trace replay
     * cursors alike.
     */
    static Checkpoint capture(
        const core::CoreModel& model,
        const std::vector<workloads::CheckpointableSource*>& sources,
        CheckpointMeta meta);

    /**
     * Restore into @p model — constructed with the same config
     * (verified via the config hash) and beginRun() over @p sources
     * rebuilt identically (same profiles/threadIds, or the same trace
     * content). On failure the model is partially mutated and must be
     * discarded.
     */
    common::Status restore(
        core::CoreModel& model,
        const std::vector<workloads::CheckpointableSource*>& sources)
        const;

    /**
     * Assemble a checkpoint from an externally serialized payload —
     * the extension point for wrappers that checkpoint more than one
     * core (src/chip). @p stateHash plays the config-hash role: it
     * must bind the payload to the full configuration that produced
     * it, in whatever hash space the wrapper defines.
     */
    static Checkpoint fromParts(CheckpointMeta meta, uint64_t stateHash,
                                std::vector<uint8_t> payload);

    const CheckpointMeta& meta() const { return meta_; }

    /** Hash of the config this checkpoint was captured under. */
    uint64_t capturedConfigHash() const { return cfgHash_; }

    /** The raw state payload (for fromParts-style wrappers). */
    const std::vector<uint8_t>& payload() const { return payload_; }

    /** Serialized state payload size in bytes (diagnostics). */
    size_t payloadBytes() const { return payload_.size(); }

    /** Serialize to the documented file format. */
    std::vector<uint8_t> toBytes() const;

    /**
     * Parse the documented file format; magic/version/checksum
     * mismatches and truncation are structured errors.
     */
    static common::Expected<Checkpoint> fromBytes(const uint8_t* data,
                                                  size_t size);
    static common::Expected<Checkpoint> fromBytes(
        const std::vector<uint8_t>& bytes);

    /** toBytes() to a file, written atomically (temp + rename). */
    common::Status save(const std::string& path) const;

    /** fromBytes() over the contents of @p path. */
    static common::Expected<Checkpoint> load(const std::string& path);

  private:
    CheckpointMeta meta_;
    uint64_t cfgHash_ = 0;
    std::vector<uint8_t> payload_;
};

} // namespace p10ee::ckpt

#endif // P10EE_CKPT_CHECKPOINT_H
