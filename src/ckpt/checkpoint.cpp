#include "ckpt/checkpoint.h"

#include <cstdio>
#include <fstream>

#include "common/hash.h"
#include "common/serialize.h"

namespace p10ee::ckpt {

using common::BinReader;
using common::BinWriter;
using common::Error;
using common::Expected;
using common::Fnv1a;
using common::Status;

namespace {

constexpr char kMagic[8] = {'P', '1', '0', 'C', 'K', 'P', 'T', '\0'};

void
serializeCacheParams(BinWriter& w, const core::CacheParams& p)
{
    w.u32(p.sizeBytes);
    w.u32(p.ways);
    w.u32(p.lineSize);
    w.u32(p.latency);
    w.u32(p.occupancy);
}

void
serializeBranchParams(BinWriter& w, const core::BranchParams& p)
{
    w.u64(static_cast<uint64_t>(p.bimodalBits));
    w.u64(static_cast<uint64_t>(p.gshareBits));
    w.u64(static_cast<uint64_t>(p.gshareHist));
    w.b(p.secondGshare);
    w.u64(static_cast<uint64_t>(p.gshare2Bits));
    w.u64(static_cast<uint64_t>(p.gshare2Hist));
    w.b(p.localPattern);
    w.u64(static_cast<uint64_t>(p.localHistBits));
    w.u64(static_cast<uint64_t>(p.localBits));
    w.u64(static_cast<uint64_t>(p.choiceBits));
    w.u64(static_cast<uint64_t>(p.indirectBits));
    w.u64(static_cast<uint64_t>(p.indirectWays));
    w.b(p.indirectPathHist);
}

/**
 * Serialize every CoreConfig field, in declaration order, into the
 * deterministic wire format. Exhaustive on purpose: the config hash is
 * computed over these bytes, so a field missing here would let two
 * different machines alias one checkpoint.
 */
void
serializeConfig(BinWriter& w, const core::CoreConfig& c)
{
    w.str(c.name);

    w.u64(static_cast<uint64_t>(c.fetchWidth));
    w.u64(static_cast<uint64_t>(c.decodeWidth));
    w.u64(static_cast<uint64_t>(c.frontendStages));
    w.u64(static_cast<uint64_t>(c.ibufferEntries));
    w.u64(static_cast<uint64_t>(c.redirectPenalty));
    w.u64(static_cast<uint64_t>(c.takenBranchBubble));
    w.b(c.fusion);
    w.b(c.prefixSupport);
    w.f64(c.fusionCoverage);
    serializeBranchParams(w, c.bp);

    w.b(c.eaTaggedL1);
    serializeCacheParams(w, c.l1i);
    serializeCacheParams(w, c.l1d);
    serializeCacheParams(w, c.l2);
    serializeCacheParams(w, c.l3);
    w.u32(c.memLatency);
    w.u32(c.memOccupancy);
    w.u64(static_cast<uint64_t>(c.eratEntries));
    w.u64(static_cast<uint64_t>(c.tlbEntries));
    w.u32(c.eratMissPenalty);
    w.u32(c.tlbMissPenalty);
    w.u32(c.pageBytes);

    w.u64(static_cast<uint64_t>(c.robSize));
    w.u64(static_cast<uint64_t>(c.ldqSize));
    w.u64(static_cast<uint64_t>(c.ldqSizeSmt));
    w.u64(static_cast<uint64_t>(c.stqSize));
    w.u64(static_cast<uint64_t>(c.stqSizeSmt));
    w.u64(static_cast<uint64_t>(c.lmqSize));
    w.u64(static_cast<uint64_t>(c.dispatchWidth));
    w.u64(static_cast<uint64_t>(c.commitWidth));
    w.u64(static_cast<uint64_t>(c.issueWidth));

    w.u64(static_cast<uint64_t>(c.aluPorts));
    w.u64(static_cast<uint64_t>(c.fpPorts));
    w.u64(static_cast<uint64_t>(c.vsuIntPorts));
    w.u64(static_cast<uint64_t>(c.ldPorts));
    w.u64(static_cast<uint64_t>(c.stPorts));
    w.u64(static_cast<uint64_t>(c.lsCombined));
    w.u64(static_cast<uint64_t>(c.brPorts));
    w.u64(static_cast<uint64_t>(c.mmaUnits));

    w.u64(static_cast<uint64_t>(c.aluLat));
    w.u64(static_cast<uint64_t>(c.mulLat));
    w.u64(static_cast<uint64_t>(c.divLat));
    w.u64(static_cast<uint64_t>(c.fpLat));
    w.u64(static_cast<uint64_t>(c.vsuLat));
    w.u64(static_cast<uint64_t>(c.mmaLat));
    w.u64(static_cast<uint64_t>(c.mmaAccLat));
    w.u64(static_cast<uint64_t>(c.loadToVsuPenalty));

    w.f64(c.clockGateQuality);
    w.f64(c.dataGateQuality);
    w.b(c.unifiedRf);
    w.f64(c.switchEnergyScale);
    w.f64(c.latchClockScale);

    w.u64(static_cast<uint64_t>(c.prefetchStreams));
    w.u64(static_cast<uint64_t>(c.prefetchDepth));
    w.b(c.storeMerge);
    w.b(c.store32B);
}

uint64_t
checksumOf(const std::vector<uint8_t>& bytes, size_t n)
{
    Fnv1a h;
    h.bytes(bytes.data(), n);
    return h.digest();
}

} // namespace

uint64_t
configHash(const core::CoreConfig& cfg)
{
    BinWriter w;
    serializeConfig(w, cfg);
    Fnv1a h;
    h.bytes(w.bytes().data(), w.size());
    return h.digest();
}

Checkpoint
Checkpoint::capture(
    const core::CoreModel& model,
    const std::vector<workloads::CheckpointableSource*>& sources,
    CheckpointMeta meta)
{
    Checkpoint ck;
    ck.meta_ = std::move(meta);
    ck.meta_.numThreads = static_cast<uint32_t>(sources.size());
    ck.cfgHash_ = configHash(model.config());

    BinWriter w;
    model.saveState(w);
    w.u32(static_cast<uint32_t>(sources.size()));
    for (const auto* src : sources)
        src->saveState(w);
    ck.payload_ = w.takeBytes();
    return ck;
}

Checkpoint
Checkpoint::fromParts(CheckpointMeta meta, uint64_t stateHash,
                      std::vector<uint8_t> payload)
{
    Checkpoint ck;
    ck.meta_ = std::move(meta);
    ck.cfgHash_ = stateHash;
    ck.payload_ = std::move(payload);
    return ck;
}

Status
Checkpoint::restore(
    core::CoreModel& model,
    const std::vector<workloads::CheckpointableSource*>& sources) const
{
    if (configHash(model.config()) != cfgHash_)
        return Error::invalidConfig(
            "checkpoint was captured under a different core config "
            "(config hash mismatch; checkpoint has '" +
            meta_.configName + "')");
    if (sources.size() != meta_.numThreads)
        return Error::invalidArgument(
            "checkpoint has " + std::to_string(meta_.numThreads) +
            " thread(s) but " + std::to_string(sources.size()) +
            " source(s) were supplied");

    BinReader r(payload_);
    if (auto st = model.loadState(r); !st.ok())
        return st;
    uint32_t n = r.u32();
    if (!r.ok() || n != sources.size())
        return Error::invalidArgument(
            "checkpoint payload: workload source count mismatch");
    for (auto* src : sources)
        if (auto st = src->loadState(r); !st.ok())
            return st;
    if (r.remaining() != 0)
        return Error::invalidArgument(
            "checkpoint payload: trailing bytes after state");
    return common::okStatus();
}

std::vector<uint8_t>
Checkpoint::toBytes() const
{
    BinWriter w;
    for (char c : kMagic)
        w.u8(static_cast<uint8_t>(c));
    w.u32(kFormatVersion);
    w.u32(kStateSchemaVersion);
    w.u64(cfgHash_);
    w.str(meta_.configName);
    w.str(meta_.workload);
    w.u32(meta_.numThreads);
    w.u64(meta_.warmupInstrs);
    w.u64(meta_.seed);
    w.u64(payload_.size());
    std::vector<uint8_t> out = w.takeBytes();
    out.insert(out.end(), payload_.begin(), payload_.end());
    uint64_t sum = checksumOf(out, out.size());
    BinWriter tail;
    tail.u64(sum);
    out.insert(out.end(), tail.bytes().begin(), tail.bytes().end());
    return out;
}

Expected<Checkpoint>
Checkpoint::fromBytes(const uint8_t* data, size_t size)
{
    BinReader r(data, size);
    for (char c : kMagic)
        if (r.u8() != static_cast<uint8_t>(c) || r.failed())
            return Error::invalidArgument(
                "not a p10ee checkpoint (bad magic)");
    uint32_t fmt = r.u32();
    if (r.ok() && fmt != kFormatVersion)
        return Error::invalidArgument(
            "unsupported checkpoint format version " +
            std::to_string(fmt) + " (expected " +
            std::to_string(kFormatVersion) + ")");
    uint32_t schema = r.u32();
    if (r.ok() && schema != kStateSchemaVersion)
        return Error::invalidArgument(
            "checkpoint state-schema version " + std::to_string(schema) +
            " does not match this simulator (expected " +
            std::to_string(kStateSchemaVersion) + ")");

    // Verify the trailing checksum before trusting any length field.
    if (size < 8 || r.failed())
        return Error::invalidArgument("checkpoint truncated");
    BinReader tail(data + size - 8, 8);
    uint64_t stored = tail.u64();
    Fnv1a h;
    h.bytes(data, size - 8);
    if (h.digest() != stored)
        return Error::invalidArgument(
            "checkpoint corrupt (checksum mismatch)");

    Checkpoint ck;
    ck.cfgHash_ = r.u64();
    ck.meta_.configName = r.str();
    ck.meta_.workload = r.str();
    ck.meta_.numThreads = r.u32();
    ck.meta_.warmupInstrs = r.u64();
    ck.meta_.seed = r.u64();
    uint64_t payloadSize = r.u64();
    // The payload must account for exactly the bytes between the header
    // and the checksum.
    if (r.failed() || r.remaining() < 8 ||
        payloadSize != r.remaining() - 8) {
        return Error::invalidArgument(
            "checkpoint truncated or payload size mismatch");
    }
    ck.payload_.assign(data + r.position(),
                       data + r.position() + payloadSize);
    return ck;
}

Expected<Checkpoint>
Checkpoint::fromBytes(const std::vector<uint8_t>& bytes)
{
    return fromBytes(bytes.data(), bytes.size());
}

Status
Checkpoint::save(const std::string& path) const
{
    std::vector<uint8_t> bytes = toBytes();
    std::string tmp = path + ".tmp";
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f)
            return Error::notFound("cannot open for write: " + tmp);
        f.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
        if (!f)
            return Error::transient("short write: " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return Error::transient("rename failed: " + path);
    }
    return common::okStatus();
}

Expected<Checkpoint>
Checkpoint::load(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return Error::notFound("cannot open checkpoint: " + path);
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(f)),
        std::istreambuf_iterator<char>());
    return fromBytes(bytes.data(), bytes.size());
}

} // namespace p10ee::ckpt
