#include "chip/governor.h"

#include <algorithm>

#include "common/rng.h"

namespace p10ee::chip {

using common::BinReader;
using common::BinWriter;
using common::Error;
using common::Status;

Status
GovernorParams::validate() const
{
    std::string problems;
    auto bad = [&problems](const std::string& p) {
        if (!problems.empty())
            problems += "; ";
        problems += p;
    };
    if (wof.tdpWatts <= 0.0)
        bad("wof tdp must be > 0");
    if (!(throttleGainPerWatt >= 0.0))
        bad("throttle gain must be >= 0");
    if (!(throttleMaxFrac >= 0.0 && throttleMaxFrac < 1.0))
        bad("throttle max fraction must be in [0, 1)");
    if (!(droopStepWatts > 0.0))
        bad("droop step must be > 0 watts");
    if (droopHoldEpochs < 0)
        bad("droop hold must be >= 0 epochs");
    if (!(droopStallFrac >= 0.0 && droopStallFrac < 1.0))
        bad("droop stall fraction must be in [0, 1)");
    if (!(yieldSpreadGhz >= 0.0))
        bad("yield spread must be >= 0");
    if (!problems.empty())
        return Error::invalidConfig("chip governor: " + problems);
    return common::okStatus();
}

ChipGovernor::ChipGovernor(const GovernorParams& params,
                           size_t numCores, uint64_t seed)
    : params_(params), numCores_(numCores)
{
    // Per-core silicon: each core's fmax sits somewhere in the yield
    // spread below the WOF ceiling, drawn from its own split stream so
    // the caps are a pure function of (seed, core index) — identical
    // no matter which entry path or thread built the chip.
    fmax_.reserve(numCores_);
    for (size_t i = 0; i < numCores_; ++i) {
        common::Xoshiro rng(common::splitSeed(seed, i));
        fmax_.push_back(params_.wof.fMaxGhz -
                        params_.yieldSpreadGhz * rng.uniform());
    }
}

GovernorDecision
ChipGovernor::step(double chipPowerW)
{
    GovernorDecision dec;
    const double chipTdpW =
        params_.wof.tdpWatts * static_cast<double>(numCores_);

    // WOF: express the chip's proxy power as an effective-capacitance
    // ratio against the design point and solve for the highest
    // frequency the budget admits. The per-core WOF domain sees the
    // chip-mean ratio — the broadcast decision of §IV-A.
    double ceff = chipTdpW > 0.0 ? chipPowerW / chipTdpW : 1.0;
    ceff = std::min(std::max(ceff, 0.05), 2.0);
    const pm::Wof wof(params_.wof);
    const pm::WofPoint pt = wof.optimize(ceff);
    dec.freqGhz = pt.freqGhz;
    dec.boost = pt.boost;

    // Throttle: proportional dispatch-limit response to power over
    // budget, expressed as the stall fraction the chip charges.
    if (chipPowerW > chipTdpW) {
        dec.throttled = true;
        dec.stallFrac =
            std::min(params_.throttleMaxFrac,
                     (chipPowerW - chipTdpW) *
                         params_.throttleGainPerWatt);
    }

    // Droop: a fast power ramp (epoch grain) trips the sensor; the
    // response holds a dispatch brake for a fixed number of epochs,
    // like the DDS pulse-skip window of §IV-B.
    if (prevPowerW_ >= 0.0 &&
        chipPowerW - prevPowerW_ > params_.droopStepWatts) {
        dec.droopTripped = true;
        droopHoldLeft_ = params_.droopHoldEpochs;
    }
    if (droopHoldLeft_ > 0) {
        dec.droopHold = true;
        dec.stallFrac = std::max(dec.stallFrac, params_.droopStallFrac);
        --droopHoldLeft_;
    }
    prevPowerW_ = chipPowerW;
    return dec;
}

double
ChipGovernor::coreFreqGhz(const GovernorDecision& decision,
                          size_t i) const
{
    return std::min(decision.freqGhz, fmax_[i]);
}

void
ChipGovernor::saveState(BinWriter& w) const
{
    w.f64(prevPowerW_);
    w.u64(static_cast<uint64_t>(droopHoldLeft_));
}

Status
ChipGovernor::loadState(BinReader& r)
{
    prevPowerW_ = r.f64();
    uint64_t hold = r.u64();
    if (r.failed() ||
        hold > static_cast<uint64_t>(
                   std::max(params_.droopHoldEpochs, 0)))
        return Error::invalidArgument(
            "chip governor state: droop hold out of range");
    droopHoldLeft_ = static_cast<int>(hold);
    return common::okStatus();
}

} // namespace p10ee::chip
