/**
 * @file
 * Shared-resource contention between the cores of one chip.
 *
 * The paper separates core-level from chip-level efficiency (Fig. 10)
 * because the shared fabric — the L3 region a core does not own and
 * the memory interface every core competes for — is where multi-core
 * scaling loses cycles. This layer models that loss as deterministic
 * stall-cycle backpressure computed once per lockstep epoch from the
 * cores' aggregate demand, never by perturbing the cores themselves:
 * each core simulates its own raw timing, and the chip accounts the
 * contention on top, which keeps per-core results reproducible and the
 * whole layer independently property-testable.
 *
 * Three invariants are load-bearing (tests/test_chip.cpp drives each
 * over randomized demand vectors):
 *  - conservation: the bandwidth granted in an epoch never exceeds the
 *    arbiter's budget for that epoch;
 *  - monotonicity: raising one core's demand never *increases* any
 *    other core's grant (equivalently, never raises its IPC);
 *  - starvation-freedom: with a budget of at least one line per core,
 *    every demanding core is granted at least one line per epoch.
 *
 * The arbiter realizes them by construction with integer max-min
 * fairness ("water-filling"): the highest water level L such that
 * sum_i min(demand_i, L) fits the budget is found by binary search and
 * every core is granted min(demand_i, L). Raising a co-runner's demand
 * can only lower the feasible level, so grants are monotone; the level
 * never admits more than the budget, so grants conserve; and L is at
 * least floor(budget / cores), so nobody starves.
 */

#ifndef P10EE_CHIP_CONTENTION_H
#define P10EE_CHIP_CONTENTION_H

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/serialize.h"

namespace p10ee::chip {

/** Shared-fabric parameters of one chip. */
struct ContentionParams
{
    /** Chip-wide memory-interface budget: cache lines the fabric can
        transfer per 16 cycles (16ths give sub-line-per-cycle grain
        without floating point). */
    uint64_t memLinesPer16Cycles = 16;

    /** Backpressure charged per demanded-but-denied line (cycles). */
    uint64_t memStallPerLine = 8;

    /** Shared L3 working-set capacity in lines; co-runner occupancy
        beyond it converts hits into extra-latency accesses. */
    uint64_t l3CapacityLines = 8192;

    /** Extra latency charged per L3 access displaced by co-runner
        pressure (cycles). */
    uint64_t l3MissPenalty = 16;

    common::Status validate(size_t numCores) const;
};

/**
 * Integer max-min fair ("water-filling") allocation: grant_i =
 * min(demand_i, L) for the largest water level L whose total fits
 * @p budget. See the header comment for the invariants this shape
 * guarantees. Deterministic and index-independent: permuting the
 * demands permutes the grants identically.
 */
std::vector<uint64_t> maxMinFairGrants(
    const std::vector<uint64_t>& demand, uint64_t budget);

/**
 * The shared L3 viewed as per-core occupancy slices. Occupancy tracks
 * demand through an integer EWMA (so phases decay, single-epoch spikes
 * do not thrash), and the stall charged to a core grows with its
 * co-runners' occupancy, saturating at one miss penalty per access:
 *
 *   stall_i = demand_i * penalty * pressure_i / (pressure_i + capacity)
 *
 * with pressure_i the summed occupancy of every other core — monotone
 * in co-runner demand by construction.
 */
class L3SliceModel
{
  public:
    L3SliceModel(const ContentionParams& params, size_t numCores);

    /** Advance one epoch: update occupancies from @p l3Demand (L3
        accesses per core this epoch) and return per-core extra stall
        cycles. */
    std::vector<uint64_t> step(const std::vector<uint64_t>& l3Demand);

    /** Current per-core occupancy estimate (lines, EWMA). */
    const std::vector<uint64_t>& occupancy() const { return occ_; }

    void saveState(common::BinWriter& w) const;
    common::Status loadState(common::BinReader& r);

  private:
    ContentionParams params_;
    std::vector<uint64_t> occ_;
};

/** Per-epoch outcome of the contention layer. */
struct ContentionOutcome
{
    uint64_t memBudget = 0;          ///< lines the epoch could transfer
    std::vector<uint64_t> memGrant;  ///< lines granted per core
    std::vector<uint64_t> memStall;  ///< backpressure cycles per core
    std::vector<uint64_t> l3Stall;   ///< displacement cycles per core
    std::vector<uint64_t> stall;     ///< memStall + l3Stall
};

/**
 * The composed shared-resource layer one ChipModel owns: a
 * memory-bandwidth arbiter over max-min fair grants plus the L3 slice
 * model. Stateful only through the L3 occupancy EWMA; fully
 * checkpointable.
 */
class ContentionLayer
{
  public:
    ContentionLayer(const ContentionParams& params, size_t numCores);

    /**
     * Account one lockstep epoch of @p epochCycles raw cycles, given
     * each core's memory-line demand and L3 access count, and return
     * the per-core stall charges.
     */
    ContentionOutcome step(uint64_t epochCycles,
                           const std::vector<uint64_t>& memDemand,
                           const std::vector<uint64_t>& l3Demand);

    const ContentionParams& params() const { return params_; }
    const L3SliceModel& l3() const { return l3_; }

    void saveState(common::BinWriter& w) const;
    common::Status loadState(common::BinReader& r);

  private:
    ContentionParams params_;
    size_t numCores_;
    L3SliceModel l3_;
};

} // namespace p10ee::chip

#endif // P10EE_CHIP_CONTENTION_H
