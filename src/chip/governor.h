/**
 * @file
 * The chip-scope power governor: one control loop over N cores.
 *
 * On the real machine WOF, the digital droop sensors and the dispatch
 * throttle are chip/quad-scope firmware loops fed by per-core activity
 * proxies (paper §IV). The repo's pm/ building blocks model each loop
 * for a single core; this class scopes them to the chip: the summed
 * per-core power proxies drive one WOF frequency solve, one droop
 * detector and one throttle decision per lockstep epoch, and the
 * resulting operating point is broadcast to every core — capped per
 * core by its own process-variation fmax (the PFLY-style yield spread
 * of pm/yield.h, drawn deterministically from the chip seed via
 * splitSeed so every entry path sees the same silicon).
 *
 * The governor never retimes the cores. Throttle and droop responses
 * feed back as a stall fraction the ChipModel charges on top of each
 * core's raw cycles — the same backpressure currency the contention
 * layer uses — so governor effects stay deterministic and separable
 * in the results.
 */

#ifndef P10EE_CHIP_GOVERNOR_H
#define P10EE_CHIP_GOVERNOR_H

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/serialize.h"
#include "pm/wof.h"

namespace p10ee::chip {

/** Chip-scope control-loop parameters. */
struct GovernorParams
{
    /** Per-core WOF domain; the chip budget is tdpWatts x cores. */
    pm::WofParams wof;

    /** Stall fraction charged per watt of chip power over budget. */
    double throttleGainPerWatt = 0.02;

    /** Throttling never stalls more than this fraction of an epoch. */
    double throttleMaxFrac = 0.5;

    /** Epoch-over-epoch chip power step (watts) that trips the
        droop-detection response (the DDS analogue at epoch grain). */
    double droopStepWatts = 6.0;

    /** Epochs the droop response holds after a trip. */
    int droopHoldEpochs = 4;

    /** Stall fraction charged while the droop response holds. */
    double droopStallFrac = 0.25;

    /** Process-variation spread of per-core fmax below the WOF
        ceiling (GHz); 0 = perfectly uniform silicon. */
    double yieldSpreadGhz = 0.2;

    common::Status validate() const;
};

/** One epoch's broadcast decision. */
struct GovernorDecision
{
    double freqGhz = 0.0;     ///< chip-broadcast WOF frequency
    double boost = 0.0;       ///< freqGhz / nominal
    bool throttled = false;   ///< chip power exceeded the budget
    bool droopTripped = false;///< power step tripped the droop sensor
    bool droopHold = false;   ///< droop response active this epoch
    double stallFrac = 0.0;   ///< epoch fraction charged as stalls
};

/** The chip governor; one instance per ChipModel, checkpointable. */
class ChipGovernor
{
  public:
    ChipGovernor(const GovernorParams& params, size_t numCores,
                 uint64_t seed);

    /** Per-core fmax yield caps (GHz), fixed at construction from the
        chip seed — the silicon this chip "is". */
    const std::vector<double>& coreFMaxGhz() const { return fmax_; }

    /** Advance one epoch on the summed per-core power proxies. */
    GovernorDecision step(double chipPowerW);

    /** The frequency core @p i actually runs given @p decision. */
    double coreFreqGhz(const GovernorDecision& decision, size_t i) const;

    const GovernorParams& params() const { return params_; }

    void saveState(common::BinWriter& w) const;
    common::Status loadState(common::BinReader& r);

  private:
    GovernorParams params_;
    size_t numCores_;
    std::vector<double> fmax_;

    // Control-loop state (checkpointed).
    double prevPowerW_ = -1.0; ///< last epoch's chip power (<0 = none)
    int droopHoldLeft_ = 0;    ///< epochs of droop response remaining
};

} // namespace p10ee::chip

#endif // P10EE_CHIP_GOVERNOR_H
