/**
 * @file
 * The multi-core chip model: N CoreModels behind one shared-resource
 * layer and one chip-scope governor.
 *
 * The paper draws its core-vs-chip efficiency distinction (Fig. 10)
 * because the chip adds exactly two things to N independent cores: the
 * shared fabric they contend on, and the firmware control loops that
 * see their summed power. ChipModel composes both over the existing
 * CoreModel without touching it: cores advance in lockstep epochs
 * (cfg.epochInstrs instructions each), and at every epoch barrier the
 * contention layer converts aggregate L3/memory demand into per-core
 * stall-cycle backpressure while the governor turns summed per-core
 * power proxies into one broadcast WOF/throttle/droop decision
 * (chip/contention.h, chip/governor.h).
 *
 * Contracts, mirrored from CoreModel and pinned by tests/test_chip.cpp:
 *  - split phase: beginRun binds per-core sources, advance() warms up
 *    (untimed — contention applies only to measured epochs), measure()
 *    runs the window; saveState/loadState make the whole chip
 *    checkpointable (captureChipCheckpoint/restoreChipCheckpoint wrap
 *    the versioned ckpt container);
 *  - a 1-core chip IS the bare core: measure() passes straight through
 *    to CoreModel::measure with no epoch slicing, no contention, no
 *    governor, and its checkpoint file is byte-identical to the bare
 *    ckpt::Checkpoint's;
 *  - determinism: results are a pure function of (configs, sources,
 *    seed) regardless of ChipRunOptions::coreJobs — cores simulate
 *    independently between barriers and every cross-core interaction
 *    happens on the coordinating thread in core-index order.
 */

#ifndef P10EE_CHIP_CHIP_H
#define P10EE_CHIP_CHIP_H

#include <cstdint>
#include <memory>
#include <vector>

#include "chip/contention.h"
#include "chip/governor.h"
#include "ckpt/checkpoint.h"
#include "common/error.h"
#include "core/core.h"
#include "obs/timeseries.h"
#include "power/energy.h"
#include "workloads/source.h"

namespace p10ee::chip {

/** The machine one ChipModel realizes. */
struct ChipConfig
{
    /** One CoreConfig per core; heterogeneous mixes are allowed. */
    std::vector<core::CoreConfig> cores;

    ContentionParams contention;
    GovernorParams governor;

    /** Lockstep epoch length: instructions each core simulates between
        contention/governor barriers. */
    uint64_t epochInstrs = 2048;

    /** Chip seed: keys the governor's per-core yield streams. */
    uint64_t seed = 1;

    /**
     * M1 fast mode (api::SimMode::FastM1): skip the power-proxy
     * instrumentation. Valid only for 1-core chips — the multi-core
     * governor consumes per-epoch power evaluations as timing input,
     * so a fast multi-core chip could not be byte-identical.
     * Deliberately NOT part of chipConfigHash: architectural state is
     * mode-independent, so checkpoints restore across modes.
     */
    bool fastM1 = false;

    common::Status validate() const;
};

/**
 * Deterministic hash over everything that parameterizes a chip: core
 * count, every per-core config hash, the contention and governor
 * parameters, the epoch length and the chip seed. Binds chip
 * checkpoints and keys the sweep shard cache, exactly as
 * ckpt::configHash does for one core.
 */
uint64_t chipConfigHash(const ChipConfig& cfg);

/** Per-core outcome of one chip measurement window. */
struct ChipCoreOutcome
{
    /** The core's own measured window (raw timing, pre-backpressure). */
    core::RunResult run;

    /** Contention + governor backpressure charged to this core. */
    uint64_t stallCycles = 0;

    /** run.cycles + stallCycles: the cycles this core's window costs
        at chip scope. */
    uint64_t effCycles = 0;

    double ipc = 0.0;    ///< instrs / effCycles
    double powerW = 0.0; ///< energy-model watts over the raw window
    double freqGhz = 0.0;///< broadcast frequency capped by this core
    double fMaxGhz = 0.0;///< this core's yield cap
};

/** Outcome of one chip measurement window. */
struct ChipResult
{
    std::vector<ChipCoreOutcome> cores;

    uint64_t epochs = 0;     ///< lockstep barriers executed
    uint64_t chipCycles = 0; ///< max over cores of effCycles
    uint64_t instrs = 0;     ///< summed committed instructions
    double ipc = 0.0;        ///< instrs / chipCycles (chip throughput)
    double powerW = 0.0;     ///< summed per-core watts
    double freqGhz = 0.0;    ///< final broadcast WOF frequency
    double boost = 0.0;      ///< final WOF boost (freq / nominal)
    uint64_t throttledEpochs = 0;
    uint64_t droopTrips = 0;
    bool timedOut = false;   ///< chip cycles passed the budget
};

/** Options for one chip measurement window. */
struct ChipRunOptions
{
    uint64_t measureInstrs = 100000; ///< per core

    /** Chip effective-cycle budget; 0 = unbounded. Checked at epoch
        barriers; an overrun sets ChipResult::timedOut. */
    uint64_t maxCycles = 0;

    /** Worker threads for the per-epoch core simulations; results are
        identical for any value (see the determinism contract). */
    int coreJobs = 1;

    /**
     * Optional telemetry sink, owned by the calling thread. For 1-core
     * chips it is handed to the core unchanged (bare byte-identity).
     * For N cores the chip samples its own tracks (chip.power_w,
     * chip.freq_ghz, chip.stall_frac, chip.ipc) at epoch barriers and
     * merges one internal per-core recorder per core into it, in
     * core-index order, as chip.core<i>.* tracks — worker threads
     * never publish (obs/timeseries.h single-owner contract).
     */
    obs::TimeSeriesRecorder* recorder = nullptr;

    /** Honoured only by 1-core chips (per-instruction timings are a
        single-core diagnostic). */
    bool collectTimings = false;
};

/** One chip instance; construct per run (state is not reusable). */
class ChipModel
{
  public:
    explicit ChipModel(ChipConfig cfg);

    ChipModel(const ChipModel&) = delete;
    ChipModel& operator=(const ChipModel&) = delete;

    int numCores() const { return static_cast<int>(cores_.size()); }
    const ChipConfig& config() const { return cfg_; }

    core::CoreModel& coreAt(int i) { return *cores_[static_cast<size_t>(i)]; }
    const core::CoreModel& coreAt(int i) const
    {
        return *cores_[static_cast<size_t>(i)];
    }

    /** Bind instruction sources, one vector (SMT threads) per core. */
    void beginRun(
        const std::vector<std::vector<workloads::InstrSource*>>&
            perCoreThreads);

    /** Warm every core by @p instrsPerCore instructions, untimed. */
    void advance(uint64_t instrsPerCore);

    /** Run the measurement window (see the class comment). */
    ChipResult measure(const ChipRunOptions& opts);

    /**
     * Serialize every core's state plus the contention and governor
     * state. Must be called between beginRun/advance and measure;
     * instruction sources are serialized separately by the owner
     * (captureChipCheckpoint does both).
     */
    void saveState(common::BinWriter& w) const;

    /** Restore state saved by saveState() into a chip constructed with
        the same config and beginRun() with the same source shape. */
    common::Status loadState(common::BinReader& r);

  private:
    ChipConfig cfg_;
    std::vector<std::unique_ptr<core::CoreModel>> cores_;
    std::vector<power::EnergyModel> energy_;
    ContentionLayer contention_;
    ChipGovernor governor_;
};

/**
 * Snapshot a warmed-up chip (between advance and measure) and every
 * core's workload-walker state into a versioned checkpoint. For 1-core
 * chips this delegates to ckpt::Checkpoint::capture over the bare core
 * — the file is byte-identical to the single-core path's. For N cores
 * the payload leads with the core count and every per-core config
 * hash, so restoring with the wrong core count or a mixed config set
 * fails with a structured error naming the mismatch before any state
 * is touched.
 */
ckpt::Checkpoint captureChipCheckpoint(
    const ChipModel& chip,
    const std::vector<std::vector<workloads::CheckpointableSource*>>&
        walkers,
    ckpt::CheckpointMeta meta);

/** Restore a captureChipCheckpoint snapshot into @p chip (same config,
    beginRun already called over equivalently rebuilt sources). On
    failure the chip may be partially mutated and must be discarded. */
common::Status restoreChipCheckpoint(
    const ckpt::Checkpoint& ck, ChipModel& chip,
    const std::vector<std::vector<workloads::CheckpointableSource*>>&
        walkers);

} // namespace p10ee::chip

#endif // P10EE_CHIP_CHIP_H
