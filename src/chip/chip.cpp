#include "chip/chip.h"

#include <algorithm>
#include <thread>

#include "common/assert.h"
#include "common/hash.h"

namespace p10ee::chip {

using common::BinReader;
using common::BinWriter;
using common::Error;
using common::Fnv1a;
using common::Status;

namespace {

/** Stats the contention layer reads from each core's epoch window. */
constexpr const char* kMemAccessStat = "mem.access";
constexpr const char* kL3AccessStat = "l3.access";

void
serializeContentionParams(BinWriter& w, const ContentionParams& p)
{
    w.u64(p.memLinesPer16Cycles);
    w.u64(p.memStallPerLine);
    w.u64(p.l3CapacityLines);
    w.u64(p.l3MissPenalty);
}

void
serializeGovernorParams(BinWriter& w, const GovernorParams& p)
{
    w.f64(p.wof.tdpWatts);
    w.f64(p.wof.fNomGhz);
    w.f64(p.wof.fMinGhz);
    w.f64(p.wof.fMaxGhz);
    w.f64(p.wof.vNom);
    w.f64(p.wof.vSlope);
    w.f64(p.wof.leakNomWatts);
    w.f64(p.wof.leakVExp);
    w.f64(p.wof.mmaLeakWatts);
    w.f64(p.wof.fStepGhz);
    w.f64(p.throttleGainPerWatt);
    w.f64(p.throttleMaxFrac);
    w.f64(p.droopStepWatts);
    w.u64(static_cast<uint64_t>(p.droopHoldEpochs));
    w.f64(p.droopStallFrac);
    w.f64(p.yieldSpreadGhz);
}

/**
 * Run @p fn(i) for every core index, fanned out over @p jobs threads
 * by static partition (thread j owns indices j, j+jobs, ...). Each
 * index touches only its own slots, so the result is identical for
 * any jobs value — the chip determinism contract.
 */
template <typename Fn>
void
forEachCore(size_t n, int jobs, Fn&& fn)
{
    const size_t workers = std::min<size_t>(
        n, static_cast<size_t>(std::max(jobs, 1)));
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t j = 0; j < workers; ++j) {
        pool.emplace_back([&fn, j, n, workers] {
            for (size_t i = j; i < n; i += workers)
                fn(i);
        });
    }
    for (auto& t : pool)
        t.join();
}

} // namespace

Status
ChipConfig::validate() const
{
    if (cores.empty())
        return Error::invalidConfig("chip: must have at least 1 core");
    if (epochInstrs == 0)
        return Error::invalidConfig(
            "chip: epoch length must be > 0 instructions");
    if (fastM1 && cores.size() >= 2)
        return Error{common::ErrorCode::InvalidConfig,
                     "chip: fast_m1 mode requires 1 core (the chip "
                     "governor consumes power evaluations)",
                     "mode"};
    if (auto st = contention.validate(cores.size()); !st.ok())
        return st;
    return governor.validate();
}

uint64_t
chipConfigHash(const ChipConfig& cfg)
{
    BinWriter w;
    w.u64(cfg.cores.size());
    for (const auto& c : cfg.cores)
        w.u64(ckpt::configHash(c));
    serializeContentionParams(w, cfg.contention);
    serializeGovernorParams(w, cfg.governor);
    w.u64(cfg.epochInstrs);
    w.u64(cfg.seed);
    Fnv1a h;
    h.bytes(w.bytes().data(), w.size());
    return h.digest();
}

ChipModel::ChipModel(ChipConfig cfg)
    : cfg_(std::move(cfg)),
      contention_(cfg_.contention, cfg_.cores.size()),
      governor_(cfg_.governor, cfg_.cores.size(), cfg_.seed)
{
    P10_ASSERT(!cfg_.cores.empty(), "chip with zero cores");
    cores_.reserve(cfg_.cores.size());
    energy_.reserve(cfg_.cores.size());
    for (const auto& c : cfg_.cores) {
        cores_.push_back(std::make_unique<core::CoreModel>(c));
        energy_.emplace_back(c, /*includeChip=*/true);
    }
}

void
ChipModel::beginRun(
    const std::vector<std::vector<workloads::InstrSource*>>&
        perCoreThreads)
{
    P10_ASSERT(perCoreThreads.size() == cores_.size(),
               "beginRun: one source vector per core required");
    for (size_t i = 0; i < cores_.size(); ++i)
        cores_[i]->beginRun(perCoreThreads[i], /*infiniteL2=*/false,
                            cfg_.fastM1);
    // Fresh run: the shared layer and governor restart from their
    // constructed state, like every per-core structure does.
    contention_ = ContentionLayer(cfg_.contention, cores_.size());
    governor_ = ChipGovernor(cfg_.governor, cores_.size(), cfg_.seed);
}

void
ChipModel::advance(uint64_t instrsPerCore)
{
    // Warmup is untimed and cores do not interact outside measured
    // epochs, so each core just advances independently.
    for (auto& c : cores_)
        c->advance(instrsPerCore);
}

ChipResult
ChipModel::measure(const ChipRunOptions& opts)
{
    const size_t n = cores_.size();
    ChipResult out;
    out.cores.resize(n);

    if (n == 1) {
        // A 1-core chip IS the bare core: same RunOptions, same
        // recorder, same timings — the differential tests pin the
        // resulting report bytes against the bare CoreModel path.
        core::RunOptions ro;
        ro.measureInstrs = opts.measureInstrs;
        ro.maxCycles = opts.maxCycles;
        ro.collectTimings = opts.collectTimings;
        ro.recorder = opts.recorder;
        core::RunResult run = cores_[0]->measure(ro);
        ChipCoreOutcome& co = out.cores[0];
        co.stallCycles = 0;
        co.effCycles = run.cycles;
        co.ipc = run.ipc();
        // FastM1 has no switching counters: power stays 0 and is
        // rendered absent by every downstream report.
        co.powerW =
            cfg_.fastM1 ? 0.0 : energy_[0].evalCounters(run).watts();
        co.freqGhz = co.fMaxGhz = governor_.coreFMaxGhz()[0];
        out.chipCycles = run.cycles;
        out.instrs = run.instrs;
        out.ipc = co.ipc;
        out.powerW = co.powerW;
        out.freqGhz = co.freqGhz;
        out.boost = 0.0;
        out.timedOut = run.timedOut;
        co.run = std::move(run);
        return out;
    }

    // Epoch-lockstep loop. Each core runs cfg_.epochInstrs of its own
    // window per barrier; the barrier then converts aggregate demand
    // into stall backpressure and steps the governor on summed power.
    std::vector<uint64_t> remaining(n, opts.measureInstrs);
    std::vector<uint64_t> take(n, 0);
    std::vector<core::RunResult> epochRun(n);
    std::vector<uint64_t> epochCycles(n, 0);
    std::vector<uint64_t> prevFront(n, 0);
    std::vector<uint64_t> cycAcc(n, 0), stallAcc(n, 0);
    std::vector<uint64_t> instrAcc(n, 0), opsAcc(n, 0), flopsAcc(n, 0);
    std::vector<common::StatSnapshot> statAcc(n);
    std::vector<uint64_t> memDemand(n, 0), l3Demand(n, 0);
    std::vector<double> epochPowerW(n, 0.0);
    for (size_t i = 0; i < n; ++i)
        prevFront[i] = cores_[i]->commitFrontCycle();

    // Telemetry: the chip samples its own tracks and one internal
    // recorder per core, all from this (coordinating) thread at epoch
    // barriers — worker threads never publish, honouring the
    // single-owner contract of obs/timeseries.h.
    obs::TimeSeriesRecorder* rec = opts.recorder;
    std::vector<obs::TimeSeriesRecorder> coreRecs;
    std::vector<obs::TrackId> coreIpcTrack(n), coreStallTrack(n);
    obs::TrackId chipPowerTrack, chipFreqTrack, chipStallTrack,
        chipIpcTrack;
    if (rec != nullptr) {
        chipPowerTrack = rec->counter("chip.power_w", "W");
        chipFreqTrack = rec->counter("chip.freq_ghz", "GHz");
        chipStallTrack = rec->counter("chip.stall_frac", "frac");
        chipIpcTrack = rec->counter("chip.ipc", "ipc");
        coreRecs.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            coreRecs.emplace_back(rec->interval());
            coreIpcTrack[i] = coreRecs[i].counter("ipc", "ipc");
            coreStallTrack[i] =
                coreRecs[i].counter("stall_cycles", "cycles");
        }
    }

    GovernorDecision lastDec;
    lastDec.freqGhz = cfg_.governor.wof.fNomGhz;
    lastDec.boost = 1.0;

    const int jobs = std::max(1, opts.coreJobs);
    for (;;) {
        bool anyLeft = false;
        for (size_t i = 0; i < n; ++i) {
            take[i] = std::min(cfg_.epochInstrs, remaining[i]);
            anyLeft = anyLeft || take[i] > 0;
        }
        if (!anyLeft)
            break;

        forEachCore(n, jobs, [&](size_t i) {
            if (take[i] == 0) {
                epochRun[i] = core::RunResult();
                epochCycles[i] = 0;
                return;
            }
            core::RunOptions ro;
            ro.measureInstrs = take[i];
            epochRun[i] = cores_[i]->measure(ro);
            const uint64_t front = cores_[i]->commitFrontCycle();
            // Unclamped epoch length (RunResult::cycles floors at 1).
            epochCycles[i] = front - prevFront[i];
            prevFront[i] = front;
            epochPowerW[i] =
                energy_[i].evalCounters(epochRun[i]).watts();
        });

        // ---- Barrier: every cross-core interaction happens here, on
        // this thread, in core-index order. ----
        uint64_t epochRawCycles = 0;
        uint64_t epochInstrs = 0;
        double chipPowerW = 0.0;
        for (size_t i = 0; i < n; ++i) {
            epochRawCycles = std::max(epochRawCycles, epochCycles[i]);
            epochInstrs += epochRun[i].instrs;
            const auto& stats = epochRun[i].stats;
            auto statOf = [&stats](const char* name) -> uint64_t {
                auto it = stats.find(name);
                return it == stats.end() ? 0 : it->second;
            };
            memDemand[i] = take[i] ? statOf(kMemAccessStat) : 0;
            l3Demand[i] = take[i] ? statOf(kL3AccessStat) : 0;
            chipPowerW += take[i] ? epochPowerW[i] : 0.0;
        }

        ContentionOutcome cont =
            contention_.step(epochRawCycles, memDemand, l3Demand);
        lastDec = governor_.step(chipPowerW);
        if (lastDec.throttled)
            ++out.throttledEpochs;
        if (lastDec.droopTripped)
            ++out.droopTrips;

        uint64_t chipEffCycles = 0;
        for (size_t i = 0; i < n; ++i) {
            const uint64_t govStall = static_cast<uint64_t>(
                static_cast<double>(epochCycles[i]) *
                lastDec.stallFrac);
            stallAcc[i] += cont.stall[i] + govStall;
            cycAcc[i] += epochCycles[i];
            instrAcc[i] += epochRun[i].instrs;
            opsAcc[i] += epochRun[i].ops;
            flopsAcc[i] += epochRun[i].flops;
            for (const auto& [k, v] : epochRun[i].stats)
                if (k != "cycles")
                    statAcc[i][k] += v;
            remaining[i] -= take[i];
            chipEffCycles =
                std::max(chipEffCycles, cycAcc[i] + stallAcc[i]);
        }
        ++out.epochs;

        if (rec != nullptr) {
            const uint64_t stamp = chipEffCycles;
            rec->sample(chipPowerTrack, stamp, chipPowerW);
            rec->sample(chipFreqTrack, stamp, lastDec.freqGhz);
            rec->sample(chipStallTrack, stamp, lastDec.stallFrac);
            rec->sample(chipIpcTrack, stamp,
                        epochRawCycles
                            ? static_cast<double>(epochInstrs) /
                                  static_cast<double>(epochRawCycles)
                            : 0.0);
            for (size_t i = 0; i < n; ++i) {
                const double coreIpc =
                    epochCycles[i]
                        ? static_cast<double>(epochRun[i].instrs) /
                              static_cast<double>(epochCycles[i])
                        : 0.0;
                coreRecs[i].sample(coreIpcTrack[i], stamp, coreIpc);
                coreRecs[i].sample(
                    coreStallTrack[i], stamp,
                    static_cast<double>(stallAcc[i]));
            }
        }

        if (opts.maxCycles != 0 && chipEffCycles > opts.maxCycles) {
            out.timedOut = true;
            break;
        }
    }

    // Deterministic merge of the per-core recorders, in index order.
    if (rec != nullptr) {
        for (size_t i = 0; i < n; ++i) {
            const std::string prefix =
                "chip.core" + std::to_string(i) + ".";
            for (const auto& track : coreRecs[i].counters()) {
                obs::TrackId id =
                    rec->counter(prefix + track.name, track.unit);
                for (size_t s = 0; s < track.cycle.size(); ++s)
                    rec->sample(id, track.cycle[s], track.value[s]);
            }
        }
    }

    for (size_t i = 0; i < n; ++i) {
        ChipCoreOutcome& co = out.cores[i];
        co.run.cycles = std::max<uint64_t>(cycAcc[i], 1);
        co.run.instrs = instrAcc[i];
        co.run.ops = opsAcc[i];
        co.run.flops = flopsAcc[i];
        co.run.timedOut = out.timedOut;
        co.run.stats = std::move(statAcc[i]);
        co.run.stats["cycles"] = co.run.cycles;
        co.stallCycles = stallAcc[i];
        co.effCycles = cycAcc[i] + stallAcc[i];
        co.ipc = static_cast<double>(co.run.instrs) /
                 static_cast<double>(std::max<uint64_t>(co.effCycles, 1));
        co.powerW = energy_[i].evalCounters(co.run).watts();
        co.freqGhz = governor_.coreFreqGhz(lastDec, i);
        co.fMaxGhz = governor_.coreFMaxGhz()[i];
        out.instrs += co.run.instrs;
        out.chipCycles = std::max(out.chipCycles, co.effCycles);
        out.powerW += co.powerW;
    }
    out.chipCycles = std::max<uint64_t>(out.chipCycles, 1);
    out.ipc = static_cast<double>(out.instrs) /
              static_cast<double>(out.chipCycles);
    out.freqGhz = lastDec.freqGhz;
    out.boost = lastDec.boost;
    return out;
}

void
ChipModel::saveState(BinWriter& w) const
{
    for (const auto& c : cores_)
        c->saveState(w);
    contention_.saveState(w);
    governor_.saveState(w);
}

Status
ChipModel::loadState(BinReader& r)
{
    for (auto& c : cores_)
        if (auto st = c->loadState(r); !st.ok())
            return st;
    if (auto st = contention_.loadState(r); !st.ok())
        return st;
    return governor_.loadState(r);
}

ckpt::Checkpoint
captureChipCheckpoint(
    const ChipModel& chip,
    const std::vector<std::vector<workloads::CheckpointableSource*>>&
        walkers,
    ckpt::CheckpointMeta meta)
{
    P10_ASSERT(walkers.size() ==
                   static_cast<size_t>(chip.numCores()),
               "captureChipCheckpoint: one walker vector per core");
    if (chip.numCores() == 1)
        return ckpt::Checkpoint::capture(chip.coreAt(0), walkers[0],
                                         std::move(meta));

    uint32_t totalWalkers = 0;
    for (const auto& ws : walkers)
        totalWalkers += static_cast<uint32_t>(ws.size());
    meta.numThreads = totalWalkers;

    // Payload: core count and per-core config hashes lead, so restore
    // can reject a wrong-core-count or mixed-config file with a
    // specific error before touching any state.
    BinWriter w;
    w.u32(static_cast<uint32_t>(chip.numCores()));
    for (int i = 0; i < chip.numCores(); ++i)
        w.u64(ckpt::configHash(chip.coreAt(i).config()));
    chip.saveState(w);
    for (const auto& ws : walkers) {
        w.u32(static_cast<uint32_t>(ws.size()));
        for (const auto* src : ws)
            src->saveState(w);
    }
    return ckpt::Checkpoint::fromParts(std::move(meta),
                                       chipConfigHash(chip.config()),
                                       w.takeBytes());
}

Status
restoreChipCheckpoint(
    const ckpt::Checkpoint& ck, ChipModel& chip,
    const std::vector<std::vector<workloads::CheckpointableSource*>>&
        walkers)
{
    if (walkers.size() != static_cast<size_t>(chip.numCores()))
        return Error::invalidArgument(
            "chip checkpoint restore: " +
            std::to_string(chip.numCores()) + " core(s) but " +
            std::to_string(walkers.size()) +
            " walker vector(s) were supplied");
    if (chip.numCores() == 1)
        return ck.restore(chip.coreAt(0), walkers[0]);

    BinReader r(ck.payload());
    const uint32_t nCores = r.u32();
    if (r.failed())
        return Error::invalidArgument(
            "chip checkpoint payload truncated (core count)");
    if (nCores != static_cast<uint32_t>(chip.numCores()))
        return Error::invalidArgument(
            "chip checkpoint has " + std::to_string(nCores) +
            " core(s) but the model has " +
            std::to_string(chip.numCores()));
    for (uint32_t i = 0; i < nCores; ++i) {
        const uint64_t hash = r.u64();
        if (r.failed())
            return Error::invalidArgument(
                "chip checkpoint payload truncated (config hashes)");
        if (hash !=
            ckpt::configHash(chip.coreAt(static_cast<int>(i)).config()))
            return Error::invalidConfig(
                "chip checkpoint core " + std::to_string(i) +
                " was captured under a different core config "
                "(config hash mismatch)");
    }
    if (ck.capturedConfigHash() != chipConfigHash(chip.config()))
        return Error::invalidConfig(
            "chip checkpoint was captured under a different chip "
            "config (chip hash mismatch; checkpoint has '" +
            ck.meta().configName + "')");

    if (auto st = chip.loadState(r); !st.ok())
        return st;
    for (size_t c = 0; c < walkers.size(); ++c) {
        const uint32_t nw = r.u32();
        if (r.failed() || nw != walkers[c].size())
            return Error::invalidArgument(
                "chip checkpoint payload: walker count mismatch on "
                "core " + std::to_string(c));
        for (auto* src : walkers[c])
            if (auto st = src->loadState(r); !st.ok())
                return st;
    }
    if (r.remaining() != 0)
        return Error::invalidArgument(
            "chip checkpoint payload: trailing bytes after state");
    return common::okStatus();
}

} // namespace p10ee::chip
