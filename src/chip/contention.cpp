#include "chip/contention.h"

#include <algorithm>

#include "common/assert.h"

namespace p10ee::chip {

using common::BinReader;
using common::BinWriter;
using common::Error;
using common::Status;

Status
ContentionParams::validate(size_t numCores) const
{
    std::string problems;
    auto bad = [&problems](const std::string& p) {
        if (!problems.empty())
            problems += "; ";
        problems += p;
    };
    if (memLinesPer16Cycles == 0)
        bad("mem bandwidth must be > 0 lines per 16 cycles");
    if (l3CapacityLines == 0)
        bad("l3 capacity must be > 0 lines");
    // Starvation-freedom needs a fair share of at least one line per
    // demanding core in every epoch; one line per 16 cycles per core
    // is the floor because epochs are never shorter than 16 cycles in
    // practice (an epoch is thousands of instructions).
    if (numCores > 0 && memLinesPer16Cycles < numCores)
        bad("mem bandwidth must be at least 1 line per 16 cycles per "
            "core (got " + std::to_string(memLinesPer16Cycles) +
            " for " + std::to_string(numCores) + " cores)");
    if (!problems.empty())
        return Error::invalidConfig("chip contention: " + problems);
    return common::okStatus();
}

std::vector<uint64_t>
maxMinFairGrants(const std::vector<uint64_t>& demand, uint64_t budget)
{
    std::vector<uint64_t> grant(demand.size(), 0);
    if (demand.empty())
        return grant;

    auto totalAt = [&demand](uint64_t level) {
        unsigned __int128 sum = 0;
        for (uint64_t d : demand)
            sum += std::min(d, level);
        return sum;
    };

    // Binary-search the highest feasible water level. The sum is
    // monotone in the level, so the largest L with totalAt(L) <=
    // budget is well defined.
    uint64_t lo = 0;
    uint64_t hi = 0;
    for (uint64_t d : demand)
        hi = std::max(hi, d);
    while (lo < hi) {
        uint64_t mid = lo + (hi - lo + 1) / 2;
        if (totalAt(mid) <= budget)
            lo = mid;
        else
            hi = mid - 1;
    }
    for (size_t i = 0; i < demand.size(); ++i)
        grant[i] = std::min(demand[i], lo);
    return grant;
}

L3SliceModel::L3SliceModel(const ContentionParams& params,
                           size_t numCores)
    : params_(params), occ_(numCores, 0)
{
}

std::vector<uint64_t>
L3SliceModel::step(const std::vector<uint64_t>& l3Demand)
{
    P10_ASSERT(l3Demand.size() == occ_.size(),
               "L3 demand vector does not match core count");
    // Integer EWMA (alpha = 1/4): occupancy follows demand with a
    // few-epoch memory, so a phase change re-partitions the slices
    // without single-epoch thrash.
    for (size_t i = 0; i < occ_.size(); ++i)
        occ_[i] = occ_[i] - occ_[i] / 4 + l3Demand[i] / 4;

    uint64_t total = 0;
    for (uint64_t o : occ_)
        total += o;

    std::vector<uint64_t> stall(occ_.size(), 0);
    for (size_t i = 0; i < occ_.size(); ++i) {
        const uint64_t pressure = total - occ_[i];
        if (pressure == 0 || l3Demand[i] == 0)
            continue;
        // Saturating displacement charge: approaches one full miss
        // penalty per access as co-runner pressure dwarfs capacity.
        const unsigned __int128 num =
            static_cast<unsigned __int128>(l3Demand[i]) *
            params_.l3MissPenalty * pressure;
        stall[i] = static_cast<uint64_t>(
            num / (pressure + params_.l3CapacityLines));
    }
    return stall;
}

void
L3SliceModel::saveState(BinWriter& w) const
{
    w.u64(occ_.size());
    for (uint64_t o : occ_)
        w.u64(o);
}

Status
L3SliceModel::loadState(BinReader& r)
{
    uint64_t n = r.u64();
    if (r.failed() || n != occ_.size())
        return Error::invalidArgument(
            "chip contention state: occupancy count mismatch");
    for (auto& o : occ_)
        o = r.u64();
    return r.status("chip contention state");
}

ContentionLayer::ContentionLayer(const ContentionParams& params,
                                 size_t numCores)
    : params_(params), numCores_(numCores), l3_(params, numCores)
{
}

ContentionOutcome
ContentionLayer::step(uint64_t epochCycles,
                      const std::vector<uint64_t>& memDemand,
                      const std::vector<uint64_t>& l3Demand)
{
    P10_ASSERT(memDemand.size() == numCores_ &&
                   l3Demand.size() == numCores_,
               "contention demand vectors must match core count");
    ContentionOutcome out;
    out.memBudget = epochCycles * params_.memLinesPer16Cycles / 16;
    out.memGrant = maxMinFairGrants(memDemand, out.memBudget);
    out.memStall.resize(numCores_, 0);
    for (size_t i = 0; i < numCores_; ++i)
        out.memStall[i] =
            (memDemand[i] - out.memGrant[i]) * params_.memStallPerLine;
    out.l3Stall = l3_.step(l3Demand);
    out.stall.resize(numCores_, 0);
    for (size_t i = 0; i < numCores_; ++i)
        out.stall[i] = out.memStall[i] + out.l3Stall[i];
    return out;
}

void
ContentionLayer::saveState(BinWriter& w) const
{
    l3_.saveState(w);
}

Status
ContentionLayer::loadState(BinReader& r)
{
    return l3_.loadState(r);
}

} // namespace p10ee::chip
