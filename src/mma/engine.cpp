#include "mma/engine.h"

#include <cstring>

#include "common/assert.h"

namespace p10ee::mma {

uint16_t
toBf16(float v)
{
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    // Round-to-nearest-even on the truncated 16 bits.
    uint32_t lsb = (bits >> 16) & 1u;
    bits += 0x7fffu + lsb;
    return static_cast<uint16_t>(bits >> 16);
}

float
fromBf16(uint16_t bits)
{
    uint32_t wide = static_cast<uint32_t>(bits) << 16;
    float v;
    std::memcpy(&v, &wide, sizeof(v));
    return v;
}

void
MmaEngine::reset()
{
    std::memset(accs_.data(), 0, sizeof(Acc) * accs_.size());
}

void
MmaEngine::xxsetaccz(int a)
{
    P10_ASSERT(a >= 0 && a < kNumAcc, "accumulator index");
    std::memset(&accs_[a], 0, sizeof(Acc));
}

const Acc&
MmaEngine::acc(int a) const
{
    P10_ASSERT(a >= 0 && a < kNumAcc, "accumulator index");
    return accs_[a];
}

void
MmaEngine::injectBitFlip(int a, int bit)
{
    P10_ASSERT(a >= 0 && a < kNumAcc, "accumulator index");
    P10_ASSERT_FMT(bit >= 0 && bit < 512,
                   "accumulator bit %d outside the 512-bit state", bit);
    accs_[a].raw[bit / 8] ^=
        static_cast<uint8_t>(1u << (bit % 8));
}

void
MmaEngine::xvf32gerpp(int a, const float x[4], const float y[4])
{
    P10_ASSERT(a >= 0 && a < kNumAcc, "accumulator index");
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            accs_[a].f32[i][j] += x[i] * y[j];
}

void
MmaEngine::xvf32ger(int a, const float x[4], const float y[4])
{
    xxsetaccz(a);
    xvf32gerpp(a, x, y);
}

void
MmaEngine::xvf64gerpp(int a, const double x[4], const double y[2])
{
    P10_ASSERT(a >= 0 && a < kNumAcc, "accumulator index");
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 2; ++j)
            accs_[a].f64[i][j] += x[i] * y[j];
}

void
MmaEngine::xvf64ger(int a, const double x[4], const double y[2])
{
    xxsetaccz(a);
    xvf64gerpp(a, x, y);
}

void
MmaEngine::xvi16ger2pp(int a, const int16_t x[8], const int16_t y[8])
{
    P10_ASSERT(a >= 0 && a < kNumAcc, "accumulator index");
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            int32_t s = 0;
            for (int k = 0; k < 2; ++k) {
                s += static_cast<int32_t>(x[2 * i + k]) *
                     static_cast<int32_t>(y[2 * j + k]);
            }
            accs_[a].i32[i][j] += s;
        }
    }
}

void
MmaEngine::xvbf16ger2pp(int a, const uint16_t x[8], const uint16_t y[8])
{
    P10_ASSERT(a >= 0 && a < kNumAcc, "accumulator index");
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            float s = 0.0f;
            for (int k = 0; k < 2; ++k)
                s += fromBf16(x[2 * i + k]) * fromBf16(y[2 * j + k]);
            accs_[a].f32[i][j] += s;
        }
    }
}

void
MmaEngine::xvi8ger4pp(int a, const int8_t x[16], const int8_t y[16])
{
    P10_ASSERT(a >= 0 && a < kNumAcc, "accumulator index");
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            int32_t s = 0;
            for (int k = 0; k < 4; ++k) {
                s += static_cast<int32_t>(x[4 * i + k]) *
                     static_cast<int32_t>(y[4 * j + k]);
            }
            accs_[a].i32[i][j] += s;
        }
    }
}

void
MmaEngine::xxmfacc(int a, float out[4][4]) const
{
    const Acc& acc = this->acc(a);
    std::memcpy(out, acc.f32, sizeof(acc.f32));
}

void
MmaEngine::xxmfacc(int a, double out[4][2]) const
{
    const Acc& acc = this->acc(a);
    std::memcpy(out, acc.f64, sizeof(acc.f64));
}

void
MmaEngine::xxmfacc(int a, int32_t out[4][4]) const
{
    const Acc& acc = this->acc(a);
    std::memcpy(out, acc.i32, sizeof(acc.i32));
}

} // namespace p10ee::mma
