#include "mma/gemm.h"

#include "common/assert.h"
#include "isa/op.h"
#include "mma/engine.h"

namespace p10ee::mma {

using isa::OpClass;
using isa::TraceInstr;
namespace reg = isa::reg;

namespace {

/**
 * Emission helper: builds pre-decoded records with stable per-iteration
 * PCs so the replayed stream trains the I-cache and branch predictor the
 * way a real inner loop would. All emission is skipped when sink==null.
 */
class Emit
{
  public:
    Emit(TraceSink* sink, uint64_t pc) : sink_(sink), pc_(pc) {}

    /** Restart PC at the top of the loop body. */
    void loopTop(uint64_t pc) { pc_ = pc; }

    uint64_t pc() const { return pc_; }

    void
    load(uint16_t dest, uint64_t addr, uint16_t size)
    {
        if (!sink_)
            return;
        TraceInstr in;
        in.op = size > 16 ? OpClass::Load32B : OpClass::Load;
        in.dest = dest;
        in.pc = step();
        in.addr = addr;
        in.size = size;
        in.gemm = true;
        sink_->emit(in);
    }

    void
    store(uint16_t src, uint64_t addr, uint16_t size)
    {
        if (!sink_)
            return;
        TraceInstr in;
        in.op = size > 16 ? OpClass::Store32B : OpClass::Store;
        in.src[0] = src;
        in.pc = step();
        in.addr = addr;
        in.size = size;
        in.gemm = true;
        sink_->emit(in);
    }

    /** xvf*ger*pp-style accumulate: acc is both source and dest. */
    void
    ger(int acc, uint16_t srcA, uint16_t srcB)
    {
        if (!sink_)
            return;
        TraceInstr in;
        in.op = OpClass::MmaGer;
        in.dest = static_cast<uint16_t>(reg::kAccBase + acc);
        in.src[0] = in.dest;
        in.src[1] = srcA;
        in.src[2] = srcB;
        in.pc = step();
        in.gemm = true;
        sink_->emit(in);
    }

    /** xxsetaccz / xxmtacc / xxmfacc housekeeping. */
    void
    accMove(int acc, uint16_t vsr, bool toAcc)
    {
        if (!sink_)
            return;
        TraceInstr in;
        in.op = OpClass::MmaMove;
        uint16_t accReg = static_cast<uint16_t>(reg::kAccBase + acc);
        if (toAcc) {
            in.dest = accReg;
            in.src[0] = vsr;
        } else {
            in.dest = vsr;
            in.src[0] = accReg;
        }
        in.pc = step();
        in.gemm = true;
        sink_->emit(in);
    }

    /** Vector FMA: dest also sourced (accumulate). */
    void
    vfma(uint16_t destAcc, uint16_t srcA, uint16_t srcB)
    {
        if (!sink_)
            return;
        TraceInstr in;
        in.op = OpClass::VsuFp;
        in.dest = destAcc;
        in.src[0] = destAcc;
        in.src[1] = srcA;
        in.src[2] = srcB;
        in.pc = step();
        in.gemm = true;
        sink_->emit(in);
    }

    /** Loop-control integer op (pointer bump / counter decrement). */
    void
    alu(uint16_t dest)
    {
        if (!sink_)
            return;
        TraceInstr in;
        in.op = OpClass::IntAlu;
        in.dest = dest;
        in.src[0] = dest;
        in.pc = step();
        in.gemm = true;
        sink_->emit(in);
    }

    /** Backward loop branch. */
    void
    branch(uint64_t target, bool taken)
    {
        if (!sink_)
            return;
        TraceInstr in;
        in.op = OpClass::Branch;
        in.src[0] = reg::kCtr;
        in.pc = step();
        in.taken = taken;
        in.target = target;
        in.gemm = true;
        sink_->emit(in);
    }

  private:
    uint64_t
    step()
    {
        uint64_t at = pc_;
        pc_ += 4;
        return at;
    }

    TraceSink* sink_;
    uint64_t pc_;
};

// Architectural register conventions used by the kernels below.
constexpr uint16_t kVsrA0 = reg::kVsrBase + 0; // operand A staging
constexpr uint16_t kVsrA1 = reg::kVsrBase + 1;
constexpr uint16_t kVsrB0 = reg::kVsrBase + 2; // operand B staging
constexpr uint16_t kVsrB1 = reg::kVsrBase + 3;
constexpr uint16_t kVsrSplat = reg::kVsrBase + 8;  // 8 splat regs
constexpr uint16_t kVsrCTile = reg::kVsrBase + 16; // 16 C-tile regs
constexpr uint16_t kGprPtr = reg::kGprBase + 4;    // loop pointer

} // namespace

void
dgemmRef(const double* a, const double* b, double* c, const GemmDims& dims)
{
    for (int i = 0; i < dims.m; ++i)
        for (int l = 0; l < dims.k; ++l) {
            double av = a[i * dims.k + l];
            for (int j = 0; j < dims.n; ++j)
                c[i * dims.n + j] += av * b[l * dims.n + j];
        }
}

void
sgemmRef(const float* a, const float* b, float* c, const GemmDims& dims)
{
    for (int i = 0; i < dims.m; ++i)
        for (int l = 0; l < dims.k; ++l) {
            float av = a[i * dims.k + l];
            for (int j = 0; j < dims.n; ++j)
                c[i * dims.n + j] += av * b[l * dims.n + j];
        }
}

void
igemmRef(const int8_t* a, const int8_t* b, int32_t* c, const GemmDims& dims)
{
    for (int i = 0; i < dims.m; ++i)
        for (int l = 0; l < dims.k; ++l) {
            int32_t av = a[i * dims.k + l];
            for (int j = 0; j < dims.n; ++j)
                c[i * dims.n + j] += av * b[l * dims.n + j];
        }
}

void
bgemmMma(const uint16_t* a, const uint16_t* b, float* c,
         const GemmDims& dims, TraceSink* sink, const GemmLayout& layout)
{
    P10_ASSERT(dims.m % 8 == 0 && dims.n % 16 == 0 && dims.k % 2 == 0,
               "bgemmMma tile shape");
    MmaEngine eng;
    Emit em(sink, layout.loopPc);

    for (int i0 = 0; i0 < dims.m; i0 += 8) {
        for (int j0 = 0; j0 < dims.n; j0 += 16) {
            for (int t = 0; t < 8; ++t) {
                eng.xxsetaccz(t);
                em.accMove(t, kVsrA0, true);
            }

            uint64_t apack = layout.aBase +
                static_cast<uint64_t>(i0 / 8) * dims.k * 16;
            uint64_t bpack = layout.bBase +
                static_cast<uint64_t>(j0 / 16) * dims.k * 32;
            uint64_t body = layout.loopPc + 0xa00;
            // Rank-2 updates: the k loop advances two at a time.
            for (int l = 0; l < dims.k; l += 2) {
                em.loopTop(body);
                em.load(kVsrA0, apack + static_cast<uint64_t>(l) * 16,
                        32);
                uint64_t boff = bpack + static_cast<uint64_t>(l) * 32;
                em.load(kVsrB0, boff, 32);
                em.load(kVsrB1, boff + 32, 32);

                uint16_t x[2][8];
                for (int r = 0; r < 8; ++r)
                    for (int kk = 0; kk < 2; ++kk)
                        x[r / 4][(r % 4) * 2 + kk] =
                            a[(i0 + r) * dims.k + l + kk];
                uint16_t y[4][8];
                for (int q = 0; q < 16; ++q)
                    for (int kk = 0; kk < 2; ++kk)
                        y[q / 4][(q % 4) * 2 + kk] =
                            b[(l + kk) * dims.n + j0 + q];

                for (int rg = 0; rg < 2; ++rg) {
                    for (int cq = 0; cq < 4; ++cq) {
                        int acc = rg * 4 + cq;
                        eng.xvbf16ger2pp(acc, x[rg], y[cq]);
                        em.ger(acc, kVsrA0, cq < 2 ? kVsrB0 : kVsrB1);
                    }
                }
                em.alu(kGprPtr);
                em.branch(body, l + 2 < dims.k);
            }

            for (int rg = 0; rg < 2; ++rg) {
                for (int cq = 0; cq < 4; ++cq) {
                    int acc = rg * 4 + cq;
                    float out[4][4];
                    eng.xxmfacc(acc, out);
                    em.accMove(acc, kVsrCTile + acc, false);
                    for (int r = 0; r < 4; ++r)
                        for (int q = 0; q < 4; ++q)
                            c[(i0 + rg * 4 + r) * dims.n + j0 + cq * 4 + q]
                                += out[r][q];
                }
            }
            for (int r = 0; r < 8; ++r) {
                uint64_t rowAddr = layout.cBase +
                    (static_cast<uint64_t>(i0 + r) * dims.n + j0) * 4;
                em.store(kVsrCTile + r, rowAddr, 32);
                em.store(kVsrCTile + r, rowAddr + 32, 32);
            }
        }
    }
}

uint64_t
gemmFlops(const GemmDims& dims)
{
    return 2ull * dims.m * dims.n * dims.k;
}

void
dgemmMma(const double* a, const double* b, double* c, const GemmDims& dims,
         TraceSink* sink, const GemmLayout& layout)
{
    P10_ASSERT(dims.m % 8 == 0 && dims.n % 8 == 0, "dgemmMma tile shape");
    MmaEngine eng;
    Emit em(sink, layout.loopPc);

    for (int i0 = 0; i0 < dims.m; i0 += 8) {
        for (int j0 = 0; j0 < dims.n; j0 += 8) {
            // Tile prologue: zero all eight 4x2 accumulators.
            for (int t = 0; t < 8; ++t) {
                eng.xxsetaccz(t);
                em.accMove(t, kVsrA0, true);
            }

            // Emitted addresses reference packed panels (unit stride in
            // k), the layout a BLAS packing pass produces; numerics read
            // the plain row-major arrays.
            uint64_t apack = layout.aBase +
                static_cast<uint64_t>(i0 / 8) * dims.k * 64;
            uint64_t bpack = layout.bBase +
                static_cast<uint64_t>(j0 / 8) * dims.k * 64;

            uint64_t body = layout.loopPc;
            for (int l = 0; l < dims.k; ++l) {
                em.loopTop(body);
                uint64_t koff = static_cast<uint64_t>(l) * 64;
                em.load(kVsrA0, apack + koff, 32);      // A rows 0..3
                em.load(kVsrA1, apack + koff + 32, 32); // A rows 4..7
                em.load(kVsrB0, bpack + koff, 32);      // B cols 0..3
                em.load(kVsrB1, bpack + koff + 32, 32); // B cols 4..7

                double x[2][4];
                for (int r = 0; r < 8; ++r)
                    x[r / 4][r % 4] = a[(i0 + r) * dims.k + l];
                double y[4][2];
                for (int q = 0; q < 8; ++q)
                    y[q / 2][q % 2] = b[l * dims.n + j0 + q];

                // acc index = row-group * 4 + column-pair.
                for (int rg = 0; rg < 2; ++rg) {
                    for (int cp = 0; cp < 4; ++cp) {
                        int acc = rg * 4 + cp;
                        eng.xvf64gerpp(acc, x[rg], y[cp]);
                        em.ger(acc, rg == 0 ? kVsrA0 : kVsrA1,
                               cp < 2 ? kVsrB0 : kVsrB1);
                    }
                }
                em.alu(kGprPtr);
                em.branch(body, l + 1 < dims.k);
            }

            // Tile epilogue: pull accumulators out and store C.
            for (int rg = 0; rg < 2; ++rg) {
                for (int cp = 0; cp < 4; ++cp) {
                    int acc = rg * 4 + cp;
                    double out[4][2];
                    eng.xxmfacc(acc, out);
                    em.accMove(acc, kVsrCTile + acc, false);
                    for (int r = 0; r < 4; ++r)
                        for (int q = 0; q < 2; ++q)
                            c[(i0 + rg * 4 + r) * dims.n + j0 + cp * 2 + q]
                                += out[r][q];
                }
            }
            for (int r = 0; r < 8; ++r) {
                uint64_t rowAddr = layout.cBase +
                    (static_cast<uint64_t>(i0 + r) * dims.n + j0) * 8;
                em.store(kVsrCTile + r, rowAddr, 32);
                em.store(kVsrCTile + r, rowAddr + 32, 32);
            }
        }
    }
}

void
dgemmVsu(const double* a, const double* b, double* c, const GemmDims& dims,
         TraceSink* sink, const GemmLayout& layout)
{
    P10_ASSERT(dims.m % 8 == 0 && dims.n % 4 == 0, "dgemmVsu tile shape");
    Emit em(sink, layout.loopPc);

    for (int i0 = 0; i0 < dims.m; i0 += 8) {
        for (int j0 = 0; j0 < dims.n; j0 += 4) {
            // C tile: 8 rows x 2 column-pair VSRs = 16 accumulators.
            double acc[8][4] = {};
            for (int r = 0; r < 8; ++r) {
                uint64_t rowAddr = layout.cBase +
                    (static_cast<uint64_t>(i0 + r) * dims.n + j0) * 8;
                em.load(kVsrCTile + r * 2, rowAddr, 16);
                em.load(kVsrCTile + r * 2 + 1, rowAddr + 16, 16);
            }

            uint64_t bpack = layout.bBase +
                static_cast<uint64_t>(j0 / 4) * dims.k * 32;
            uint64_t body = layout.loopPc + 0x200;
            for (int l = 0; l < dims.k; ++l) {
                em.loopTop(body);
                uint64_t koff = static_cast<uint64_t>(l) * 32;
                em.load(kVsrB0, bpack + koff, 16);      // B cols 0..1
                em.load(kVsrB1, bpack + koff + 16, 16); // B cols 2..3

                for (int r = 0; r < 8; ++r) {
                    // lxvdsx load-and-splat of A[i0+r][l].
                    uint64_t aAddr = layout.aBase +
                        (static_cast<uint64_t>(i0 + r) * dims.k + l) * 8;
                    em.load(kVsrSplat + r % 8, aAddr, 8);
                    double av = a[(i0 + r) * dims.k + l];
                    for (int q = 0; q < 4; ++q)
                        acc[r][q] += av * b[l * dims.n + j0 + q];
                    em.vfma(kVsrCTile + r * 2, kVsrSplat + r % 8, kVsrB0);
                    em.vfma(kVsrCTile + r * 2 + 1, kVsrSplat + r % 8,
                            kVsrB1);
                }
                em.alu(kGprPtr);
                em.branch(body, l + 1 < dims.k);
            }

            for (int r = 0; r < 8; ++r) {
                uint64_t rowAddr = layout.cBase +
                    (static_cast<uint64_t>(i0 + r) * dims.n + j0) * 8;
                em.store(kVsrCTile + r * 2, rowAddr, 16);
                em.store(kVsrCTile + r * 2 + 1, rowAddr + 16, 16);
                for (int q = 0; q < 4; ++q)
                    c[(i0 + r) * dims.n + j0 + q] += acc[r][q];
            }
        }
    }
}

void
sgemmMma(const float* a, const float* b, float* c, const GemmDims& dims,
         TraceSink* sink, const GemmLayout& layout)
{
    P10_ASSERT(dims.m % 8 == 0 && dims.n % 16 == 0, "sgemmMma tile shape");
    MmaEngine eng;
    Emit em(sink, layout.loopPc);

    for (int i0 = 0; i0 < dims.m; i0 += 8) {
        for (int j0 = 0; j0 < dims.n; j0 += 16) {
            for (int t = 0; t < 8; ++t) {
                eng.xxsetaccz(t);
                em.accMove(t, kVsrA0, true);
            }

            uint64_t apack = layout.aBase +
                static_cast<uint64_t>(i0 / 8) * dims.k * 32;
            uint64_t bpack = layout.bBase +
                static_cast<uint64_t>(j0 / 16) * dims.k * 64;
            uint64_t body = layout.loopPc + 0x400;
            for (int l = 0; l < dims.k; ++l) {
                em.loopTop(body);
                em.load(kVsrA0, apack + static_cast<uint64_t>(l) * 32, 32);
                uint64_t boff = bpack + static_cast<uint64_t>(l) * 64;
                em.load(kVsrB0, boff, 32);
                em.load(kVsrB1, boff + 32, 32);

                float x[2][4];
                for (int r = 0; r < 8; ++r)
                    x[r / 4][r % 4] = a[(i0 + r) * dims.k + l];
                float y[4][4];
                for (int q = 0; q < 16; ++q)
                    y[q / 4][q % 4] = b[l * dims.n + j0 + q];

                for (int rg = 0; rg < 2; ++rg) {
                    for (int cq = 0; cq < 4; ++cq) {
                        int acc = rg * 4 + cq;
                        eng.xvf32gerpp(acc, x[rg], y[cq]);
                        em.ger(acc, kVsrA0, cq < 2 ? kVsrB0 : kVsrB1);
                    }
                }
                em.alu(kGprPtr);
                em.branch(body, l + 1 < dims.k);
            }

            for (int rg = 0; rg < 2; ++rg) {
                for (int cq = 0; cq < 4; ++cq) {
                    int acc = rg * 4 + cq;
                    float out[4][4];
                    eng.xxmfacc(acc, out);
                    em.accMove(acc, kVsrCTile + acc, false);
                    for (int r = 0; r < 4; ++r)
                        for (int q = 0; q < 4; ++q)
                            c[(i0 + rg * 4 + r) * dims.n + j0 + cq * 4 + q]
                                += out[r][q];
                }
            }
            for (int r = 0; r < 8; ++r) {
                uint64_t rowAddr = layout.cBase +
                    (static_cast<uint64_t>(i0 + r) * dims.n + j0) * 4;
                em.store(kVsrCTile + r, rowAddr, 32);
                em.store(kVsrCTile + r, rowAddr + 32, 32);
            }
        }
    }
}

void
sgemmVsu(const float* a, const float* b, float* c, const GemmDims& dims,
         TraceSink* sink, const GemmLayout& layout)
{
    P10_ASSERT(dims.m % 8 == 0 && dims.n % 8 == 0, "sgemmVsu tile shape");
    Emit em(sink, layout.loopPc);

    for (int i0 = 0; i0 < dims.m; i0 += 8) {
        for (int j0 = 0; j0 < dims.n; j0 += 8) {
            float acc[8][8] = {};
            for (int r = 0; r < 8; ++r) {
                uint64_t rowAddr = layout.cBase +
                    (static_cast<uint64_t>(i0 + r) * dims.n + j0) * 4;
                em.load(kVsrCTile + r * 2, rowAddr, 16);
                em.load(kVsrCTile + r * 2 + 1, rowAddr + 16, 16);
            }

            uint64_t bpack = layout.bBase +
                static_cast<uint64_t>(j0 / 8) * dims.k * 32;
            uint64_t body = layout.loopPc + 0x600;
            for (int l = 0; l < dims.k; ++l) {
                em.loopTop(body);
                uint64_t koff = static_cast<uint64_t>(l) * 32;
                em.load(kVsrB0, bpack + koff, 16);
                em.load(kVsrB1, bpack + koff + 16, 16);

                for (int r = 0; r < 8; ++r) {
                    uint64_t aAddr = layout.aBase +
                        (static_cast<uint64_t>(i0 + r) * dims.k + l) * 4;
                    em.load(kVsrSplat + r % 8, aAddr, 4); // lxvwsx splat
                    float av = a[(i0 + r) * dims.k + l];
                    for (int q = 0; q < 8; ++q)
                        acc[r][q] += av * b[l * dims.n + j0 + q];
                    em.vfma(kVsrCTile + r * 2, kVsrSplat + r % 8, kVsrB0);
                    em.vfma(kVsrCTile + r * 2 + 1, kVsrSplat + r % 8,
                            kVsrB1);
                }
                em.alu(kGprPtr);
                em.branch(body, l + 1 < dims.k);
            }

            for (int r = 0; r < 8; ++r) {
                uint64_t rowAddr = layout.cBase +
                    (static_cast<uint64_t>(i0 + r) * dims.n + j0) * 4;
                em.store(kVsrCTile + r * 2, rowAddr, 16);
                em.store(kVsrCTile + r * 2 + 1, rowAddr + 16, 16);
                for (int q = 0; q < 8; ++q)
                    c[(i0 + r) * dims.n + j0 + q] += acc[r][q];
            }
        }
    }
}

void
igemmMma(const int8_t* a, const int8_t* b, int32_t* c, const GemmDims& dims,
         TraceSink* sink, const GemmLayout& layout)
{
    P10_ASSERT(dims.m % 8 == 0 && dims.n % 16 == 0 && dims.k % 4 == 0,
               "igemmMma tile shape");
    MmaEngine eng;
    Emit em(sink, layout.loopPc);

    for (int i0 = 0; i0 < dims.m; i0 += 8) {
        for (int j0 = 0; j0 < dims.n; j0 += 16) {
            for (int t = 0; t < 8; ++t) {
                eng.xxsetaccz(t);
                em.accMove(t, kVsrA0, true);
            }

            uint64_t apack = layout.aBase +
                static_cast<uint64_t>(i0 / 8) * dims.k * 8;
            uint64_t bpack = layout.bBase +
                static_cast<uint64_t>(j0 / 16) * dims.k * 16;
            uint64_t body = layout.loopPc + 0x800;
            // Rank-4 updates: the k loop advances four at a time.
            for (int l = 0; l < dims.k; l += 4) {
                em.loopTop(body);
                em.load(kVsrA0, apack + static_cast<uint64_t>(l) * 8, 32);
                uint64_t boff = bpack + static_cast<uint64_t>(l) * 16;
                em.load(kVsrB0, boff, 32);
                em.load(kVsrB1, boff + 32, 32);

                int8_t x[2][16];
                for (int r = 0; r < 8; ++r)
                    for (int kk = 0; kk < 4; ++kk)
                        x[r / 4][(r % 4) * 4 + kk] =
                            a[(i0 + r) * dims.k + l + kk];
                int8_t y[4][16];
                for (int q = 0; q < 16; ++q)
                    for (int kk = 0; kk < 4; ++kk)
                        y[q / 4][(q % 4) * 4 + kk] =
                            b[(l + kk) * dims.n + j0 + q];

                for (int rg = 0; rg < 2; ++rg) {
                    for (int cq = 0; cq < 4; ++cq) {
                        int acc = rg * 4 + cq;
                        eng.xvi8ger4pp(acc, x[rg], y[cq]);
                        em.ger(acc, kVsrA0, cq < 2 ? kVsrB0 : kVsrB1);
                    }
                }
                em.alu(kGprPtr);
                em.branch(body, l + 4 < dims.k);
            }

            for (int rg = 0; rg < 2; ++rg) {
                for (int cq = 0; cq < 4; ++cq) {
                    int acc = rg * 4 + cq;
                    int32_t out[4][4];
                    eng.xxmfacc(acc, out);
                    em.accMove(acc, kVsrCTile + acc, false);
                    for (int r = 0; r < 4; ++r)
                        for (int q = 0; q < 4; ++q)
                            c[(i0 + rg * 4 + r) * dims.n + j0 + cq * 4 + q]
                                += out[r][q];
                }
            }
            for (int r = 0; r < 8; ++r) {
                uint64_t rowAddr = layout.cBase +
                    (static_cast<uint64_t>(i0 + r) * dims.n + j0) * 4;
                em.store(kVsrCTile + r, rowAddr, 32);
                em.store(kVsrCTile + r, rowAddr + 32, 32);
            }
        }
    }
}

} // namespace p10ee::mma
