/**
 * @file
 * Functional model of the Power ISA 3.1 Matrix-Multiply Assist facility.
 *
 * The MMA facility (paper §II-C) adds eight architected 512-bit
 * accumulators and rank-k outer-product update instructions executed by a
 * 4x4 grid of processing elements. Each `ger` instruction consumes two
 * 128-bit vector inputs and updates a full accumulator, producing 512
 * bits of result from 256 bits of input — the data-movement reduction
 * that drives the unit's energy efficiency.
 *
 * This model implements the numerical semantics of the FP64, FP32, INT16
 * and INT8 ger ops plus accumulator housekeeping, sufficient to build
 * real GEMM kernels whose results are verified against naive references.
 */

#ifndef P10EE_MMA_ENGINE_H
#define P10EE_MMA_ENGINE_H

#include <array>
#include <cstdint>

namespace p10ee::mma {

/** Number of architected accumulators. */
constexpr int kNumAcc = 8;

/** Convert a float to its nearest bfloat16 bit pattern. */
uint16_t toBf16(float v);

/** Expand a bfloat16 bit pattern to float. */
float fromBf16(uint16_t bits);

/**
 * One 512-bit accumulator, viewable as the shapes the ger ops use:
 * 4x4 float, 4x2 double, or 4x4 int32.
 */
union Acc
{
    float f32[4][4];
    double f64[4][2];
    int32_t i32[4][4];
    uint8_t raw[64];
};

/**
 * Architected MMA state and instruction semantics.
 *
 * Naming follows the ISA mnemonics; only the positive-accumulate (`pp`)
 * and zero-and-write (plain) variants are modeled, which is what GEMM
 * kernels use.
 */
class MmaEngine
{
  public:
    MmaEngine() { reset(); }

    /** Zero every accumulator. */
    void reset();

    /** xxsetaccz: zero accumulator @p a. */
    void xxsetaccz(int a);

    /** Read-only view of accumulator @p a. */
    const Acc& acc(int a) const;

    /**
     * xvf32gerpp: rank-1 FP32 outer-product update,
     * ACC[a][i][j] += x[i] * y[j] for a 4x4 single-precision tile.
     */
    void xvf32gerpp(int a, const float x[4], const float y[4]);

    /** xvf32ger: same as xvf32gerpp but overwrites (implicit zero). */
    void xvf32ger(int a, const float x[4], const float y[4]);

    /**
     * xvf64gerpp: rank-1 FP64 outer-product update of a 4x2 tile,
     * ACC[a][i][j] += x[i] * y[j]. @p x is an even-odd VSR pair
     * (4 doubles); @p y is a single VSR (2 doubles).
     */
    void xvf64gerpp(int a, const double x[4], const double y[2]);

    /** xvf64ger: overwrite variant. */
    void xvf64ger(int a, const double x[4], const double y[2]);

    /**
     * xvi16ger2pp: rank-2 INT16 update; ACC[a][i][j] +=
     * x[2i]*y[2j] + x[2i+1]*y[2j+1] with 32-bit accumulation.
     */
    void xvi16ger2pp(int a, const int16_t x[8], const int16_t y[8]);

    /**
     * xvbf16ger2pp: rank-2 BF16 update with FP32 accumulation;
     * ACC[a][i][j] += sum_k bf16(x[2i+k]) * bf16(y[2j+k]). BF16 inputs
     * are passed as their 16-bit patterns.
     */
    void xvbf16ger2pp(int a, const uint16_t x[8], const uint16_t y[8]);

    /**
     * xvi8ger4pp: rank-4 INT8 update; ACC[a][i][j] +=
     * sum_{k<4} x[4i+k]*y[4j+k] with 32-bit accumulation. This is the
     * op behind the paper's 21x INT8 projection: 128 MACs per
     * instruction versus 16 for FP32.
     */
    void xvi8ger4pp(int a, const int8_t x[16], const int8_t y[16]);

    /**
     * xxmfacc: move accumulator @p a out to four 128-bit VSR images
     * (the @p out rows). In hardware this deprimes the accumulator;
     * functionally it is a copy.
     */
    void xxmfacc(int a, float out[4][4]) const;

    /** xxmfacc for the FP64 view. */
    void xxmfacc(int a, double out[4][2]) const;

    /** xxmfacc for the INT32 view. */
    void xxmfacc(int a, int32_t out[4][4]) const;

    /**
     * Fault-injection surface: flip one bit of accumulator @p a's
     * 512-bit state. @p bit in [0, 512). A flipped accumulator bit is
     * architecturally silent until the accumulator is read back
     * (xxmfacc) without an intervening zero/overwrite — exactly the
     * masking window the campaign engine measures.
     */
    void injectBitFlip(int a, int bit);

  private:
    std::array<Acc, kNumAcc> accs_;
};

} // namespace p10ee::mma

#endif // P10EE_MMA_ENGINE_H
