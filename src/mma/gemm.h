/**
 * @file
 * GEMM kernels over the MMA facility and the VSU baseline.
 *
 * Each kernel plays two roles:
 *  1. It computes the numerical result (verified in tests against a
 *     naive reference), using MmaEngine semantics for the MMA variants.
 *  2. It optionally emits the pre-decoded instruction stream of its inner
 *     loop into a TraceSink, which the core timing model replays to
 *     measure FLOPs/cycle and drive the power model (Fig. 5, Fig. 6).
 *
 * Kernel shapes follow the paper: the MMA SGEMM kernel computes 8x16
 * panels ("which computes 8x16 SGEMM panels on the MMA"); the DGEMM MMA
 * kernel computes 8x8 tiles with all eight 4x2 FP64 accumulators live.
 */

#ifndef P10EE_MMA_GEMM_H
#define P10EE_MMA_GEMM_H

#include <cstdint>
#include <vector>

#include "isa/instr.h"

namespace p10ee::mma {

/** Destination for instruction streams emitted by kernels. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Receive one emitted instruction. */
    virtual void emit(const isa::TraceInstr& instr) = 0;
};

/** TraceSink that stores the stream in a vector. */
class VectorSink : public TraceSink
{
  public:
    void emit(const isa::TraceInstr& instr) override
    {
        instrs_.push_back(instr);
    }

    /** The collected stream. */
    const std::vector<isa::TraceInstr>& instrs() const { return instrs_; }

    /** Drop everything collected so far. */
    void clear() { instrs_.clear(); }

  private:
    std::vector<isa::TraceInstr> instrs_;
};

/** Problem size for C[m x n] += A[m x k] * B[k x n] (row-major). */
struct GemmDims
{
    int m = 0;
    int n = 0;
    int k = 0;
};

/**
 * Synthetic memory layout for emitted streams: base effective addresses
 * of the three operand matrices. Fixed defaults keep cache behaviour
 * reproducible across runs.
 */
struct GemmLayout
{
    uint64_t aBase = 0x1000000;
    uint64_t bBase = 0x2000000;
    uint64_t cBase = 0x3000000;
    uint64_t loopPc = 0x10000; ///< PC of the first inner-loop instruction
};

/** Naive reference DGEMM: C += A * B. */
void dgemmRef(const double* a, const double* b, double* c,
              const GemmDims& dims);

/** Naive reference SGEMM: C += A * B. */
void sgemmRef(const float* a, const float* b, float* c,
              const GemmDims& dims);

/** Naive reference INT8 GEMM with INT32 accumulation: C += A * B. */
void igemmRef(const int8_t* a, const int8_t* b, int32_t* c,
              const GemmDims& dims);

/**
 * DGEMM on the MMA: 8x8 C tiles, eight 4x2 FP64 accumulators, rank-1
 * xvf64gerpp updates; 32-byte paired loads feed the unit.
 *
 * @pre m % 8 == 0, n % 8 == 0 (use gemmPad helpers for general sizes).
 * @param sink when non-null, receives the inner-loop instruction stream.
 */
void dgemmMma(const double* a, const double* b, double* c,
              const GemmDims& dims, TraceSink* sink = nullptr,
              const GemmLayout& layout = {});

/**
 * DGEMM on the 128-bit VSU: 8x4 C tiles held in 16 VSRs, xvmaddadp FMAs,
 * load-and-splat for B. This is the "VSU code" of Fig. 5 and runs on
 * both the POWER9 and POWER10 configurations.
 */
void dgemmVsu(const double* a, const double* b, double* c,
              const GemmDims& dims, TraceSink* sink = nullptr,
              const GemmLayout& layout = {});

/**
 * SGEMM on the MMA: 8x16 panels, eight 4x4 FP32 accumulators
 * (the OpenBLAS POWER10 kernel shape quoted in the paper).
 *
 * @pre m % 8 == 0, n % 16 == 0.
 */
void sgemmMma(const float* a, const float* b, float* c,
              const GemmDims& dims, TraceSink* sink = nullptr,
              const GemmLayout& layout = {});

/** SGEMM on the 128-bit VSU: 4x8 C tiles in 8 VSRs. */
void sgemmVsu(const float* a, const float* b, float* c,
              const GemmDims& dims, TraceSink* sink = nullptr,
              const GemmLayout& layout = {});

/**
 * INT8 GEMM with INT32 accumulation on the MMA: 8x16 panels of rank-4
 * xvi8ger4pp updates — 128 MACs per instruction, the source of the
 * paper's 21x INT8 socket projection.
 *
 * @pre m % 8 == 0, n % 16 == 0, k % 4 == 0.
 */
void igemmMma(const int8_t* a, const int8_t* b, int32_t* c,
              const GemmDims& dims, TraceSink* sink = nullptr,
              const GemmLayout& layout = {});

/**
 * BF16 GEMM with FP32 accumulation on the MMA: 8x16 panels of rank-2
 * xvbf16ger2pp updates (the reduced-precision path the MMA facility
 * provides alongside INT8). Inputs are bfloat16 bit patterns.
 *
 * @pre m % 8 == 0, n % 16 == 0, k % 2 == 0.
 */
void bgemmMma(const uint16_t* a, const uint16_t* b, float* c,
              const GemmDims& dims, TraceSink* sink = nullptr,
              const GemmLayout& layout = {});

/** Floating-point operations in one C += A*B call (2*m*n*k). */
uint64_t gemmFlops(const GemmDims& dims);

} // namespace p10ee::mma

#endif // P10EE_MMA_GEMM_H
