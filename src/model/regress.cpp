#include "model/regress.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"
#include "common/matrix.h"

namespace p10ee::model {

namespace {

/** Fit weights for the chosen inputs; returns (weights, intercept). */
std::pair<std::vector<double>, double>
fitSubset(const Dataset& ds, const std::vector<int>& inputs,
          const ModelOptions& opts)
{
    size_t n = ds.samples.size();
    size_t k = inputs.size() + (opts.intercept ? 1 : 0);
    common::Matrix x(n, k);
    std::vector<double> y(n);
    for (size_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < inputs.size(); ++c)
            x.at(r, c) =
                ds.samples[r].features[static_cast<size_t>(inputs[c])];
        if (opts.intercept)
            x.at(r, inputs.size()) = 1.0;
        y[r] = ds.samples[r].target;
    }
    std::vector<double> w = opts.nonNegative
        ? common::nonNegativeLeastSquares(x, y)
        : common::leastSquares(x, y);
    double intercept = opts.intercept ? w.back() : 0.0;
    if (opts.intercept)
        w.pop_back();
    return {w, intercept};
}

double
subsetRmse(const Dataset& ds, const std::vector<int>& inputs,
           const std::vector<double>& w, double intercept)
{
    double se = 0.0;
    for (const auto& s : ds.samples) {
        double p = intercept;
        for (size_t c = 0; c < inputs.size(); ++c)
            p += w[c] * s.features[static_cast<size_t>(inputs[c])];
        double d = p - s.target;
        se += d * d;
    }
    return std::sqrt(se / static_cast<double>(ds.samples.size()));
}

} // namespace

double
CounterModel::predict(const std::vector<double>& features) const
{
    double p = intercept_;
    for (size_t c = 0; c < inputs_.size(); ++c)
        p += weights_[c] * features[static_cast<size_t>(inputs_[c])];
    return p;
}

std::vector<std::string>
CounterModel::inputNames(const Dataset& ds) const
{
    std::vector<std::string> names;
    for (int i : inputs_)
        names.push_back(ds.featureNames[static_cast<size_t>(i)]);
    return names;
}

void
CounterModel::quantize(double step)
{
    P10_ASSERT(step > 0, "quantization step");
    for (double& w : weights_)
        w = std::round(w / step) * step;
    intercept_ = std::round(intercept_ / step) * step;
}

CounterModel
trainModel(const Dataset& ds, const ModelOptions& opts)
{
    P10_ASSERT(!ds.samples.empty(), "empty dataset");
    size_t nFeatures = ds.featureNames.size();

    CounterModel model;
    std::vector<bool> used(nFeatures, false);
    std::vector<double> bestW;
    double bestIntercept = 0.0;

    for (int step = 0; step < opts.maxInputs &&
                       step < static_cast<int>(nFeatures); ++step) {
        int bestFeature = -1;
        double bestRmse = std::numeric_limits<double>::max();
        std::vector<double> stepW;
        double stepIntercept = 0.0;

        for (size_t f = 0; f < nFeatures; ++f) {
            if (used[f])
                continue;
            std::vector<int> candidate = model.inputs_;
            candidate.push_back(static_cast<int>(f));
            auto [w, inter] = fitSubset(ds, candidate, opts);
            double rmse = subsetRmse(ds, candidate, w, inter);
            if (rmse + 1e-12 < bestRmse) {
                bestRmse = rmse;
                bestFeature = static_cast<int>(f);
                stepW = std::move(w);
                stepIntercept = inter;
            }
        }
        if (bestFeature < 0)
            break;
        used[static_cast<size_t>(bestFeature)] = true;
        model.inputs_.push_back(bestFeature);
        bestW = std::move(stepW);
        bestIntercept = stepIntercept;
    }
    model.weights_ = std::move(bestW);
    model.intercept_ = bestIntercept;
    return model;
}

double
meanAbsErrorFrac(const CounterModel& model, const Dataset& ds)
{
    double sumErr = 0.0;
    double sumRef = 0.0;
    for (const auto& s : ds.samples) {
        sumErr += std::abs(model.predict(s.features) - s.target);
        sumRef += std::abs(s.target);
    }
    return sumRef > 0.0 ? sumErr / sumRef : 0.0;
}

double
meanModelDisagreement(const CounterModel& a, const CounterModel& b,
                      const Dataset& ds)
{
    double sumDiff = 0.0;
    double sumRef = 0.0;
    for (const auto& s : ds.samples) {
        sumDiff += std::abs(a.predict(s.features) - b.predict(s.features));
        sumRef += std::abs(s.target);
    }
    return sumRef > 0.0 ? sumDiff / sumRef : 0.0;
}

} // namespace p10ee::model
