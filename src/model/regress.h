/**
 * @file
 * Counter-based power-model training (paper §III-D, Fig. 11).
 *
 * The M1-linked models are linear in a selected subset of performance
 * counters, trained with the modeling constraints the paper explores:
 * number of inputs, all-positive coefficients (activity cannot remove
 * power), and with/without an intercept. Feature subsets come from
 * greedy forward selection, the standard counter-model construction in
 * the cited methodology papers.
 */

#ifndef P10EE_MODEL_REGRESS_H
#define P10EE_MODEL_REGRESS_H

#include <string>
#include <vector>

#include "model/dataset.h"

namespace p10ee::model {

/** Training constraints. */
struct ModelOptions
{
    int maxInputs = 8;       ///< number of counters to select
    bool nonNegative = true; ///< all-positive coefficients
    bool intercept = true;   ///< allow a constant term
};

/** A trained linear counter model over a feature subset. */
class CounterModel
{
  public:
    /** Predict the target for one feature vector (full-width). */
    double predict(const std::vector<double>& features) const;

    /** Indexes (into the dataset's feature list) of selected inputs. */
    const std::vector<int>& inputs() const { return inputs_; }

    /** Coefficients aligned with inputs(). */
    const std::vector<double>& weights() const { return weights_; }

    double intercept() const { return intercept_; }

    /** Selected input names resolved against @p ds. */
    std::vector<std::string> inputNames(const Dataset& ds) const;

    /**
     * Quantize coefficients to multiples of @p step — the
     * hardware-implementable form used by the Power Proxy (§IV-C).
     */
    void quantize(double step);

  private:
    friend CounterModel trainModel(const Dataset&, const ModelOptions&);

    std::vector<int> inputs_;
    std::vector<double> weights_;
    double intercept_ = 0.0;
};

/**
 * Greedy forward selection + (non-negative) least squares.
 * Deterministic: ties resolve to the lowest feature index.
 */
CounterModel trainModel(const Dataset& ds, const ModelOptions& opts);

/** Mean |prediction-target| / mean(target) over @p ds. */
double meanAbsErrorFrac(const CounterModel& model, const Dataset& ds);

/** Mean of |a.predict - b.predict| / reference over @p ds. */
double meanModelDisagreement(const CounterModel& a, const CounterModel& b,
                             const Dataset& ds);

} // namespace p10ee::model

#endif // P10EE_MODEL_REGRESS_H
