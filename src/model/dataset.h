/**
 * @file
 * Training datasets for counter-based power models (paper §III-D).
 *
 * The M1-linked power model is trained on (performance counters, power)
 * pairs where the counters come from the fast performance model and the
 * power reference from the detailed (Einspower-substitute) evaluation.
 * Samples are built either per run (aggregate counters) or per window
 * within a run (windowed counters against windowed detailed power),
 * which is how the >25K-workload corpora of Fig. 11 are emulated at
 * tractable simulation cost.
 */

#ifndef P10EE_MODEL_DATASET_H
#define P10EE_MODEL_DATASET_H

#include <string>
#include <vector>

#include "core/result.h"
#include "power/energy.h"

namespace p10ee::model {

/** One observation: per-cycle-normalized counters and a power target. */
struct Sample
{
    std::vector<double> features;
    double target = 0.0; ///< pJ/cycle
};

/** A named-feature dataset. */
struct Dataset
{
    std::vector<std::string> featureNames;
    std::vector<Sample> samples;

    /** Index of a feature name, or -1 if absent. */
    int featureIndex(const std::string& name) const;
};

/**
 * Canonical feature ordering: union of all stat names across @p runs,
 * normalized per cycle.
 */
std::vector<std::string> collectFeatureNames(
    const std::vector<core::RunResult>& runs);

/**
 * Aggregate dataset: one sample per run; the target is the active power
 * (total minus static) of the reference model.
 */
Dataset buildAggregateDataset(const std::vector<core::RunResult>& runs,
                              const power::EnergyModel& energy);

/**
 * Aggregate dataset with per-component targets: sample k of component c
 * is the component's power on run k (for the bottom-up models of
 * Fig. 12).
 *
 * @return one Dataset per component, in component order.
 */
std::vector<Dataset> buildComponentDatasets(
    const std::vector<core::RunResult>& runs,
    const power::EnergyModel& energy);

/**
 * Windowed dataset: each run with an event trace is split into windows
 * of @p windowCycles; features are the per-window cycle stats (plus
 * flat-spread stats) and the target is the detailed per-cycle power
 * averaged over the window.
 */
Dataset buildWindowDataset(const std::vector<core::RunResult>& runs,
                           const power::EnergyModel& energy,
                           uint64_t windowCycles);

} // namespace p10ee::model

#endif // P10EE_MODEL_DATASET_H
