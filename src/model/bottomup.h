/**
 * @file
 * Bottom-up per-component power models (paper §III-D, Fig. 12).
 *
 * As the project matured, the top-down core model was superseded by 39
 * per-component counter models, each deliberately small (few key events
 * per component) for interpretability; their sum reproduces core power
 * within a few percent of the top-down model while using fewer distinct
 * events (the paper: 39 components, 72 events total, 3.42% average
 * difference).
 */

#ifndef P10EE_MODEL_BOTTOMUP_H
#define P10EE_MODEL_BOTTOMUP_H

#include <set>
#include <vector>

#include "model/regress.h"

namespace p10ee::model {

/** A sum of per-component counter models. */
class BottomUpModel
{
  public:
    /**
     * Train one model per component dataset with at most
     * @p inputsPerComponent counters each.
     */
    static BottomUpModel train(const std::vector<Dataset>& perComponent,
                               int inputsPerComponent);

    /** Total-power prediction: sum of component predictions. */
    double predictTotal(const std::vector<double>& features) const;

    /** The per-component models. */
    const std::vector<CounterModel>& models() const { return models_; }

    /** Number of distinct counters used across all component models. */
    int distinctInputs() const;

  private:
    std::vector<CounterModel> models_;
};

/**
 * Mean |bottomUp - topDown| / reference over @p ds, where topDown
 * predicts active power and bottom-up totals include per-component
 * static contributions offset by @p staticPj.
 */
double bottomUpVsTopDown(const BottomUpModel& bottomUp,
                         const CounterModel& topDown, const Dataset& ds,
                         double staticPj);

} // namespace p10ee::model

#endif // P10EE_MODEL_BOTTOMUP_H
