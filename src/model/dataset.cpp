#include "model/dataset.h"

#include <algorithm>
#include <array>
#include <set>

#include "common/assert.h"
#include "power/cycle_stats.h"

namespace p10ee::model {

int
Dataset::featureIndex(const std::string& name) const
{
    for (size_t i = 0; i < featureNames.size(); ++i)
        if (featureNames[i] == name)
            return static_cast<int>(i);
    return -1;
}

std::vector<std::string>
collectFeatureNames(const std::vector<core::RunResult>& runs)
{
    std::set<std::string> names;
    for (const auto& r : runs)
        for (const auto& [name, value] : r.stats)
            if (name != "cycles")
                names.insert(name);
    return {names.begin(), names.end()};
}

namespace {

std::vector<double>
featuresOf(const core::RunResult& run,
           const std::vector<std::string>& names)
{
    double cyc = static_cast<double>(run.cycles ? run.cycles : 1);
    std::vector<double> f;
    f.reserve(names.size());
    for (const auto& n : names) {
        auto it = run.stats.find(n);
        f.push_back(it == run.stats.end()
                        ? 0.0
                        : static_cast<double>(it->second) / cyc);
    }
    return f;
}

} // namespace

Dataset
buildAggregateDataset(const std::vector<core::RunResult>& runs,
                      const power::EnergyModel& energy)
{
    Dataset ds;
    ds.featureNames = collectFeatureNames(runs);
    double staticPj = energy.staticPj();
    for (const auto& r : runs) {
        Sample s;
        s.features = featuresOf(r, ds.featureNames);
        s.target = energy.evalCounters(r).totalPj - staticPj;
        ds.samples.push_back(std::move(s));
    }
    return ds;
}

std::vector<Dataset>
buildComponentDatasets(const std::vector<core::RunResult>& runs,
                       const power::EnergyModel& energy)
{
    std::vector<std::string> names = collectFeatureNames(runs);
    const auto& comps = energy.components();
    std::vector<Dataset> out(comps.size());
    for (auto& ds : out)
        ds.featureNames = names;

    for (const auto& r : runs) {
        std::vector<double> f = featuresOf(r, names);
        for (size_t c = 0; c < comps.size(); ++c) {
            Sample s;
            s.features = f;
            s.target = energy.componentPower(comps[c], r.stats,
                                             r.cycles ? r.cycles : 1);
            out[c].samples.push_back(std::move(s));
        }
    }
    return out;
}

Dataset
buildWindowDataset(const std::vector<core::RunResult>& runs,
                   const power::EnergyModel& energy,
                   uint64_t windowCycles)
{
    P10_ASSERT(windowCycles > 0, "window size");
    Dataset ds;
    ds.featureNames = collectFeatureNames(runs);
    double staticPj = energy.staticPj();

    // Pre-resolve which features are per-cycle-reconstructible.
    std::vector<int> cycId(ds.featureNames.size());
    for (size_t i = 0; i < ds.featureNames.size(); ++i)
        cycId[i] = power::cyc::idOf(ds.featureNames[i]);

    for (const auto& r : runs) {
        if (r.timings.empty())
            continue;
        uint64_t cycles = r.cycles ? r.cycles : 1;
        size_t nWin = static_cast<size_t>(cycles / windowCycles);
        if (nWin == 0)
            continue;

        std::vector<float> detailed = energy.perCyclePower(r);
        std::vector<std::array<double, power::cyc::kNumCycleStats>> sums(
            nWin, std::array<double, power::cyc::kNumCycleStats>{});
        for (const auto& t : r.timings) {
            size_t w = std::min<size_t>(t.issue / windowCycles,
                                        nWin - 1);
            power::cyc::addInstrEvents(t, sums[w].data());
        }

        std::vector<double> flat = featuresOf(r, ds.featureNames);
        for (size_t w = 0; w < nWin; ++w) {
            Sample s;
            s.features.resize(ds.featureNames.size());
            for (size_t i = 0; i < ds.featureNames.size(); ++i) {
                s.features[i] = cycId[i] >= 0
                    ? sums[w][static_cast<size_t>(cycId[i])] /
                          static_cast<double>(windowCycles)
                    : flat[i];
            }
            double mean = 0.0;
            for (uint64_t c = 0; c < windowCycles; ++c)
                mean += detailed[w * windowCycles + c];
            s.target = mean / static_cast<double>(windowCycles) -
                       staticPj;
            ds.samples.push_back(std::move(s));
        }
    }
    return ds;
}

} // namespace p10ee::model
