#include "model/bottomup.h"

#include <cmath>

#include "common/assert.h"

namespace p10ee::model {

BottomUpModel
BottomUpModel::train(const std::vector<Dataset>& perComponent,
                     int inputsPerComponent)
{
    P10_ASSERT(!perComponent.empty(), "no component datasets");
    BottomUpModel bu;
    ModelOptions opts;
    opts.maxInputs = inputsPerComponent;
    opts.nonNegative = true;
    opts.intercept = true; // absorbs the component's static share
    for (const auto& ds : perComponent)
        bu.models_.push_back(trainModel(ds, opts));
    return bu;
}

double
BottomUpModel::predictTotal(const std::vector<double>& features) const
{
    double total = 0.0;
    for (const auto& m : models_)
        total += m.predict(features);
    return total;
}

int
BottomUpModel::distinctInputs() const
{
    std::set<int> used;
    for (const auto& m : models_)
        for (int i : m.inputs())
            used.insert(i);
    return static_cast<int>(used.size());
}

double
bottomUpVsTopDown(const BottomUpModel& bottomUp,
                  const CounterModel& topDown, const Dataset& ds,
                  double staticPj)
{
    double sumDiff = 0.0;
    double sumRef = 0.0;
    for (const auto& s : ds.samples) {
        // Bottom-up predicts full power (its intercepts absorb static);
        // top-down predicts active power over the same samples.
        double bu = bottomUp.predictTotal(s.features) - staticPj;
        double td = topDown.predict(s.features);
        sumDiff += std::abs(bu - td);
        sumRef += std::abs(s.target) + staticPj;
    }
    return sumRef > 0.0 ? sumDiff / sumRef : 0.0;
}

} // namespace p10ee::model
