/**
 * @file
 * The core Power Proxy (paper §IV-C, Fig. 15).
 *
 * A hardware-implementable counter model: a small set of activity
 * counters (POWER10 shipped 16) with quantized, non-negative weights,
 * selected automatically from the full signal set rather than by
 * designer intuition. The proxy feeds Workload Optimized Frequency and
 * the fine-grained throttling loop, so its accuracy is characterized
 * both per workload (Fig. 15a) and versus prediction time-granularity
 * (Fig. 15b).
 */

#ifndef P10EE_MODEL_PROXY_H
#define P10EE_MODEL_PROXY_H

#include "common/stats.h"
#include "model/regress.h"

namespace p10ee::model {

/** A designed proxy and its headline accuracies. */
struct ProxyDesign
{
    CounterModel model;
    double activeErrorFrac = 0.0; ///< error on active power
    double totalErrorFrac = 0.0;  ///< error with static included
};

/**
 * Select and fit a @p numCounters proxy on @p ds (active-power targets),
 * quantizing weights to @p quantStep (hardware shift/add coefficients).
 *
 * @param staticPj static power added back when scoring total error.
 */
ProxyDesign designProxy(const Dataset& ds, int numCounters,
                        double staticPj, double quantStep = 0.5);

/**
 * Error of @p model on @p windowDs including static power — the Fig. 15b
 * granularity metric (windowDs built at the granularity under study).
 */
double totalPowerError(const CounterModel& model, const Dataset& windowDs,
                       double staticPj);

/** Outcome of screening one counter snapshot for implausible reads. */
struct CounterScreen
{
    common::StatSnapshot cleaned; ///< snapshot with flagged reads clamped
    int flagged = 0;              ///< counters caught by the range check
};

/**
 * Range-check a counter snapshot before it reaches the proxy / WOF /
 * throttle consumers. Every proxy input is an event count bounded by
 * the machine's issue structure: nothing can bank more than
 * @p maxPerCycle events per cycle, so a read-out above
 * cycles x maxPerCycle is a corrupted or torn read (the failure mode
 * the fault campaign's counter-upset experiments exercise). Flagged
 * counters are clamped to that bound — the conservative fallback a
 * hardware governor applies rather than trusting a wild estimate.
 * The "cycles" entry itself is exempt (it defines the window).
 */
CounterScreen screenCounters(const common::StatSnapshot& stats,
                             uint64_t cycles, double maxPerCycle = 64.0);

} // namespace p10ee::model

#endif // P10EE_MODEL_PROXY_H
