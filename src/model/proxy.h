/**
 * @file
 * The core Power Proxy (paper §IV-C, Fig. 15).
 *
 * A hardware-implementable counter model: a small set of activity
 * counters (POWER10 shipped 16) with quantized, non-negative weights,
 * selected automatically from the full signal set rather than by
 * designer intuition. The proxy feeds Workload Optimized Frequency and
 * the fine-grained throttling loop, so its accuracy is characterized
 * both per workload (Fig. 15a) and versus prediction time-granularity
 * (Fig. 15b).
 */

#ifndef P10EE_MODEL_PROXY_H
#define P10EE_MODEL_PROXY_H

#include "model/regress.h"

namespace p10ee::model {

/** A designed proxy and its headline accuracies. */
struct ProxyDesign
{
    CounterModel model;
    double activeErrorFrac = 0.0; ///< error on active power
    double totalErrorFrac = 0.0;  ///< error with static included
};

/**
 * Select and fit a @p numCounters proxy on @p ds (active-power targets),
 * quantizing weights to @p quantStep (hardware shift/add coefficients).
 *
 * @param staticPj static power added back when scoring total error.
 */
ProxyDesign designProxy(const Dataset& ds, int numCounters,
                        double staticPj, double quantStep = 0.5);

/**
 * Error of @p model on @p windowDs including static power — the Fig. 15b
 * granularity metric (windowDs built at the granularity under study).
 */
double totalPowerError(const CounterModel& model, const Dataset& windowDs,
                       double staticPj);

} // namespace p10ee::model

#endif // P10EE_MODEL_PROXY_H
