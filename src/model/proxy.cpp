#include "model/proxy.h"

#include <cmath>

namespace p10ee::model {

ProxyDesign
designProxy(const Dataset& ds, int numCounters, double staticPj,
            double quantStep)
{
    ModelOptions opts;
    opts.maxInputs = numCounters;
    opts.nonNegative = true; // hardware accumulates, never subtracts
    opts.intercept = true;
    ProxyDesign design;
    design.model = trainModel(ds, opts);
    design.model.quantize(quantStep);
    design.activeErrorFrac = meanAbsErrorFrac(design.model, ds);
    design.totalErrorFrac = totalPowerError(design.model, ds, staticPj);
    return design;
}

double
totalPowerError(const CounterModel& model, const Dataset& windowDs,
                double staticPj)
{
    double sumErr = 0.0;
    double sumRef = 0.0;
    for (const auto& s : windowDs.samples) {
        sumErr += std::abs(model.predict(s.features) - s.target);
        sumRef += std::abs(s.target) + staticPj;
    }
    return sumRef > 0.0 ? sumErr / sumRef : 0.0;
}

} // namespace p10ee::model
