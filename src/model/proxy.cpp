#include "model/proxy.h"

#include <cmath>

namespace p10ee::model {

ProxyDesign
designProxy(const Dataset& ds, int numCounters, double staticPj,
            double quantStep)
{
    ModelOptions opts;
    opts.maxInputs = numCounters;
    opts.nonNegative = true; // hardware accumulates, never subtracts
    opts.intercept = true;
    ProxyDesign design;
    design.model = trainModel(ds, opts);
    design.model.quantize(quantStep);
    design.activeErrorFrac = meanAbsErrorFrac(design.model, ds);
    design.totalErrorFrac = totalPowerError(design.model, ds, staticPj);
    return design;
}

double
totalPowerError(const CounterModel& model, const Dataset& windowDs,
                double staticPj)
{
    double sumErr = 0.0;
    double sumRef = 0.0;
    for (const auto& s : windowDs.samples) {
        sumErr += std::abs(model.predict(s.features) - s.target);
        sumRef += std::abs(s.target) + staticPj;
    }
    return sumRef > 0.0 ? sumErr / sumRef : 0.0;
}

CounterScreen
screenCounters(const common::StatSnapshot& stats, uint64_t cycles,
               double maxPerCycle)
{
    CounterScreen screen;
    screen.cleaned = stats;
    if (cycles == 0 || maxPerCycle <= 0.0)
        return screen;
    const double cap = static_cast<double>(cycles) * maxPerCycle;
    const uint64_t capU = cap >= 1.8e19
        ? ~0ull
        : static_cast<uint64_t>(cap);
    for (auto& [name, value] : screen.cleaned) {
        if (name == "cycles")
            continue;
        if (value > capU) {
            value = capU;
            ++screen.flagged;
        }
    }
    return screen;
}

} // namespace p10ee::model
