#include "service/queue.h"

#include "obs/metrics.h"

namespace p10ee::service {

using common::Error;
using common::Status;

namespace {

/** Queue instrumentation, interned once per process. */
struct QueueMetrics
{
    obs::MetricId depth = obs::metrics().gauge("service.queue.depth");
    obs::MetricId rejected =
        obs::metrics().counter("service.queue.rejected");
    obs::MetricId waitUs =
        obs::metrics().histogram("service.queue.wait_us");
};

QueueMetrics&
queueMetrics()
{
    static QueueMetrics m;
    return m;
}

} // namespace

Status
JobQueue::push(Job job)
{
    job.enqueued = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> lock(mu_);
        // Overload rejections carry the observed depth and a concrete
        // retry hint so a one-shot client can back off intelligently
        // instead of guessing (scripts/p10_client.py keys off the
        // "overloaded" code and these hints).
        if (draining_) {
            obs::metrics().add(queueMetrics().rejected);
            return Error::overloaded(
                "p10d is draining (" + std::to_string(jobs_.size()) +
                " of " + std::to_string(capacity_) +
                " queued); this instance will not accept work again — "
                "submit elsewhere");
        }
        if (jobs_.size() >= capacity_) {
            obs::metrics().add(queueMetrics().rejected);
            return Error::overloaded(
                "queue full (" + std::to_string(jobs_.size()) + " of " +
                std::to_string(capacity_) +
                " pending requests); retry after >= 1s with "
                "exponential backoff");
        }
        // Negated priority: std::map iterates ascending, so the
        // highest priority lands first; seq breaks ties FIFO.
        jobs_.emplace(Key{-job.req.priority, nextSeq_++},
                      std::move(job));
        obs::metrics().set(queueMetrics().depth,
                           static_cast<int64_t>(jobs_.size()));
    }
    cv_.notify_one();
    return common::okStatus();
}

bool
JobQueue::pop(Job* out)
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return draining_ || !jobs_.empty(); });
    if (jobs_.empty())
        return false; // draining and drained
    auto it = jobs_.begin();
    *out = std::move(it->second);
    jobs_.erase(it);
    obs::metrics().set(queueMetrics().depth,
                       static_cast<int64_t>(jobs_.size()));
    obs::metrics().observe(
        queueMetrics().waitUs,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - out->enqueued)
                .count()));
    return true;
}

std::optional<Job>
JobQueue::remove(const std::string& id)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
        if (it->second.req.id == id) {
            Job job = std::move(it->second);
            jobs_.erase(it);
            obs::metrics().set(queueMetrics().depth,
                               static_cast<int64_t>(jobs_.size()));
            return job;
        }
    }
    return std::nullopt;
}

void
JobQueue::drain()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        draining_ = true;
    }
    cv_.notify_all();
}

size_t
JobQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return jobs_.size();
}

} // namespace p10ee::service
