#include "service/queue.h"

namespace p10ee::service {

using common::Error;
using common::Status;

Status
JobQueue::push(Job job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        // Overload rejections carry the observed depth and a concrete
        // retry hint so a one-shot client can back off intelligently
        // instead of guessing (scripts/p10_client.py keys off the
        // "overloaded" code and these hints).
        if (draining_)
            return Error::overloaded(
                "p10d is draining (" + std::to_string(jobs_.size()) +
                " of " + std::to_string(capacity_) +
                " queued); this instance will not accept work again — "
                "submit elsewhere");
        if (jobs_.size() >= capacity_)
            return Error::overloaded(
                "queue full (" + std::to_string(jobs_.size()) + " of " +
                std::to_string(capacity_) +
                " pending requests); retry after >= 1s with "
                "exponential backoff");
        // Negated priority: std::map iterates ascending, so the
        // highest priority lands first; seq breaks ties FIFO.
        jobs_.emplace(Key{-job.req.priority, nextSeq_++},
                      std::move(job));
    }
    cv_.notify_one();
    return common::okStatus();
}

bool
JobQueue::pop(Job* out)
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return draining_ || !jobs_.empty(); });
    if (jobs_.empty())
        return false; // draining and drained
    auto it = jobs_.begin();
    *out = std::move(it->second);
    jobs_.erase(it);
    return true;
}

std::optional<Job>
JobQueue::remove(const std::string& id)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
        if (it->second.req.id == id) {
            Job job = std::move(it->second);
            jobs_.erase(it);
            return job;
        }
    }
    return std::nullopt;
}

void
JobQueue::drain()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        draining_ = true;
    }
    cv_.notify_all();
}

size_t
JobQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return jobs_.size();
}

} // namespace p10ee::service
