/**
 * @file
 * Bounded priority queue of daemon jobs.
 *
 * The queue is the daemon's backpressure valve: it holds at most
 * `capacity` accepted-but-not-started requests, ordered by priority
 * (higher first) with FIFO arrival order inside each priority band. A
 * push against a full queue — or after drain began — fails with a
 * structured `overloaded` Error the reader thread turns into an
 * `error` event, so a flood of requests degrades into polite
 * rejections instead of unbounded memory growth or an aborted daemon.
 *
 * Drain semantics ("graceful"): after drain() no new job is accepted,
 * but everything already queued still executes — pop() keeps serving
 * until the queue is empty and only then returns false, which is the
 * executor threads' exit signal. Cancellation of a *queued* job
 * removes it before it ever runs; cancelling a *running* job is the
 * daemon's business (it owns the per-job cancel flags).
 */

#ifndef P10EE_SERVICE_QUEUE_H
#define P10EE_SERVICE_QUEUE_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "common/error.h"
#include "service/protocol.h"

namespace p10ee::service {

/** One accepted request plus the plumbing to answer it. */
struct Job
{
    Request req;
    /** Writes one response line back to the submitting client. */
    std::function<void(const std::string&)> send;
    /** Cooperative cancellation flag shared with the executor. */
    std::shared_ptr<std::atomic<bool>> cancel;
    /** Stamped by push(); pop() observes the queue-wait histogram and
        traced shards report the wait on the wire. */
    std::chrono::steady_clock::time_point enqueued;
};

class JobQueue
{
  public:
    explicit JobQueue(size_t capacity) : capacity_(capacity) {}

    /**
     * Enqueue @p job. Fails with Overloaded when the queue is full or
     * the daemon is draining — never blocks the reader thread.
     */
    common::Status push(Job job);

    /**
     * Dequeue the best job (highest priority, oldest within it),
     * blocking while the queue is empty. Returns false only when the
     * queue is draining *and* empty: the executor's signal to exit.
     */
    bool pop(Job* out);

    /**
     * Remove the queued job whose request id is @p id, returning it so
     * the caller can answer its client. Empty when @p id is not
     * queued (it may be running or unknown — the daemon decides).
     */
    std::optional<Job> remove(const std::string& id);

    /** Stop accepting; wake poppers so they drain the backlog. */
    void drain();

    size_t depth() const;

  private:
    /** Key orders by descending priority, then arrival. */
    using Key = std::pair<int, uint64_t>;

    const size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::map<Key, Job> jobs_;
    uint64_t nextSeq_ = 0;
    bool draining_ = false;
};

} // namespace p10ee::service

#endif // P10EE_SERVICE_QUEUE_H
