/**
 * @file
 * The `p10d` wire protocol: newline-delimited JSON over a local TCP
 * socket (dependency-free, same spirit as the sweep ThreadPool).
 *
 * Requests — one JSON object per line, at most kMaxRequestBytes:
 *
 *   {"type":"sweep","id":"r1","spec":{...sweep spec...},
 *    "priority":0,"timeout_cycles":0}
 *   {"type":"run","id":"r2","config":"power10","workload":"xz",
 *    "smt":4,"instrs":20000,"warmup":5000,"seed":0,"mode":"full"}
 *   {"type":"stats","id":"r3"}
 *   {"type":"metrics","id":"r3"}
 *   {"type":"cancel","id":"r4","target":"r1"}
 *   {"type":"shutdown"}
 *
 * `run`, `sweep` and `shard` requests additionally accept an optional
 * "trace" key: a TraceContext wire string ("<32 hex>-<16 hex>", see
 * obs/trace.h). Its absence means tracing is off; anything that is not
 * exactly that shape is rejected like any other malformed field.
 *
 * The fabric layer (src/fabric) adds two request types a coordinator
 * sends to worker daemons:
 *
 *   {"type":"shard","id":"s5a0","spec":{...},"index":5,
 *    "heartbeat_ms":200,"remote_cache":true}
 *   {"type":"cache_result","id":"s5a0","hit":true,"data":"<hex>"}
 *
 * `shard` runs ONE shard of the embedded spec (the worker re-expands
 * the spec and picks the index, so both sides agree on identity by
 * construction); `cache_result` answers a worker's cache_get probe
 * ("data" is a hex-encoded ShardCache entry, required exactly when
 * "hit" is true).
 *
 * Responses — one JSON object per line, interleaved per request id:
 *
 *   {"id":"r1","event":"accepted","queue_depth":3}
 *   {"id":"r1","event":"progress","index":0,"total":8,"key":"...",
 *    "status":"ok","retries":0,"cached":false}
 *   {"id":"r1","event":"done","cached_shards":0,"simulated_shards":8,
 *    "report":{...p10ee-report/1...}}
 *   {"id":"r1","event":"error","code":"overloaded","message":"..."}
 *
 * Fabric events a worker emits while executing a `shard` request:
 *
 *   {"id":"s5a0","event":"heartbeat"}
 *   {"id":"s5a0","event":"cache_get","key":"<16-hex>"}
 *   {"id":"s5a0","event":"cache_put","key":"<16-hex>","data":"<hex>"}
 *   {"id":"s5a0","event":"shard_done","index":5,"cached":false,
 *    "data":"<hex ShardCache entry>"}
 *
 * When the shard request carried a "trace" key, the worker echoes it on
 * heartbeat and shard_done, and shard_done additionally reports the
 * worker-side queue wait and execution time as "queue_us"/"exec_us"
 * durations — durations, not timestamps, so the coordinator can anchor
 * them at the arrival time without any cross-process clock agreement.
 * Those three keys are valid only together (see fabric/wire.h).
 *
 * The `metrics` request returns the live process-wide registry
 * (obs/metrics.h) in one line, keys sorted deterministically:
 *
 *   {"id":"r3","event":"metrics","metrics":{"service.connections":2,...}}
 *
 * A shard_done payload IS a ShardCache entry (magic, versions, key,
 * checksum — see sweep/cache.h), so the coordinator validates and
 * decodes it through the exact code path a local cache hit takes, and
 * can persist it verbatim into the fleet-wide cache directory.
 *
 * The `report` member of a `done` line is always the LAST key and its
 * value is the exact byte sequence the offline tool would write for
 * the same spec — clients recover it by slicing the line between
 * `"report":` and the final `}`, never by re-serializing, which is
 * what keeps the socket path byte-identical to `p10sweep_cli --out`.
 *
 * Parsing is hostile-input safe: malformed JSON, wrong-typed fields,
 * unknown request types, oversized or truncated lines all come back as
 * structured `common::Error`s (→ `error` events), never aborts — the
 * facade contract that a bad request must not take the daemon down.
 */

#ifndef P10EE_SERVICE_PROTOCOL_H
#define P10EE_SERVICE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/service.h"
#include "api/types.h"
#include "common/error.h"
#include "obs/report.h"
#include "sweep/spec.h"

namespace p10ee::service {

/** Upper bound on one request line (backpressure against hostile or
    runaway clients; a spec is config-sized, never telemetry-sized). */
inline constexpr size_t kMaxRequestBytes = 1u << 20;

/** Priority bounds (higher runs first; FIFO within a priority). */
inline constexpr int kMinPriority = -100;
inline constexpr int kMaxPriority = 100;

enum class RequestType
{
    Run,
    Sweep,
    Stats,
    Metrics,    ///< live metrics registry dump (obs/metrics.h)
    Cancel,
    Shutdown,
    Shard,      ///< fabric: run one shard of the embedded spec
    CacheResult ///< fabric: answer to an in-flight cache_get probe
};

/** One parsed request. */
struct Request
{
    RequestType type = RequestType::Stats;
    std::string id; ///< required for run/sweep/cancel/shard/cache_result
    int priority = 0;
    /** Per-shard cycle budget; tightens the spec's own max_cycles. */
    uint64_t timeoutCycles = 0;
    std::string target;    ///< cancel: the request id to withdraw
    sweep::SweepSpec spec; ///< sweep + shard payload
    api::RunRequest run;   ///< run payload

    uint64_t shardIndex = 0;  ///< shard: expansion-order index to run
    uint64_t heartbeatMs = 0; ///< shard: liveness interval (0 = none)
    bool remoteCache = false; ///< shard: probe the coordinator's cache
    bool cacheHit = false;    ///< cache_result: probe outcome
    /** cache_result: decoded entry bytes (present exactly when hit). */
    std::vector<uint8_t> cacheData;
    /** run/sweep/shard: validated TraceContext wire string ("" = off). */
    std::string trace;

    /**
     * Parse one request line. Enforces kMaxRequestBytes, strict field
     * types, unknown-key rejection inside `spec`, and id presence
     * where the response stream needs one.
     */
    static common::Expected<Request> parse(std::string_view line);
};

// --- Response line builders (no trailing newline) ---

std::string acceptedLine(const std::string& id, size_t queueDepth);

std::string progressLine(const std::string& id,
                         const api::ProgressEvent& ev);

/** @p reportJson is embedded verbatim as the final `report` member. */
std::string doneLine(const std::string& id, uint64_t cachedShards,
                     uint64_t simulatedShards,
                     const std::string& reportJson);

std::string errorLine(const std::string& id, const common::Error& e);

/** @p metricsJson (one flat object, MetricsRegistry::toJson) is
    embedded verbatim as the final `metrics` member. */
std::string metricsLine(const std::string& id,
                        const std::string& metricsJson);

// --- Fabric event builders (worker -> coordinator, no newline) ---

/** Non-empty @p trace (the request's wire string) is echoed back. */
std::string heartbeatLine(const std::string& id,
                          const std::string& trace = "");

std::string cacheGetLine(const std::string& id, uint64_t key);

std::string cachePutLine(const std::string& id, uint64_t key,
                         const std::vector<uint8_t>& entry);

/** Non-empty @p trace adds trace/queue_us/exec_us (worker-side queue
    wait and execution durations in microseconds). */
std::string shardDoneLine(const std::string& id, uint64_t index,
                          bool cached,
                          const std::vector<uint8_t>& entry,
                          const std::string& trace = "",
                          uint64_t queueUs = 0, uint64_t execUs = 0);

/** Cache keys cross the wire as fixed-width 16-hex-digit strings — a
    JSON number would round through a double and corrupt keys above
    2^53. */
std::string cacheKeyHex(uint64_t key);

/** Strict inverse of cacheKeyHex: exactly 16 lowercase hex digits. */
common::Expected<uint64_t> parseCacheKeyHex(const std::string& text);

/**
 * Slice the verbatim report bytes out of a `done` line (everything
 * between `"report":` and the line's final `}`). Returns an error when
 * the line is not a done line. The inverse of doneLine() — the only
 * sanctioned way to recover a byte-identical report from the wire.
 */
common::Expected<std::string> extractReport(std::string_view doneLine);

} // namespace p10ee::service

#endif // P10EE_SERVICE_PROTOCOL_H
