#include "service/protocol.h"

#include <cstdio>

#include "common/hex.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace p10ee::service {

using common::Error;
using common::Expected;
using common::Status;

namespace {

/** Strict string member; empty @p required -> optional with default. */
Expected<std::string>
readString(const obs::JsonValue& root, const std::string& key,
           bool required, std::string def = "")
{
    const obs::JsonValue* v = root.find(key);
    if (v == nullptr) {
        if (required)
            return Error::invalidArgument("request is missing '" + key +
                                          "'");
        return def;
    }
    if (!v->isString())
        return Error::invalidArgument("request field '" + key +
                                      "' must be a string");
    return v->string;
}

Expected<uint64_t>
readU64(const obs::JsonValue& root, const std::string& key, uint64_t def)
{
    const obs::JsonValue* v = root.find(key);
    if (v == nullptr)
        return def;
    return v->asU64("request field '" + key + "'");
}

Status
parseRunPayload(const obs::JsonValue& root, api::RunRequest* out)
{
    for (const auto& [key, v] : root.object) {
        if (key == "type" || key == "id" || key == "priority" ||
            key == "timeout_cycles" || key == "trace")
            continue; // envelope fields, handled by the caller
        if (key == "config" || key == "workload") {
            if (!v.isString())
                return Error::invalidArgument("run field '" + key +
                                              "' must be a string");
            (key == "config" ? out->config : out->workload) = v.string;
        } else if (key == "mode") {
            // Strict: only the canonical mode names cross the wire; a
            // hostile or typo'd value is rejected here, before any
            // simulation state exists.
            if (!v.isString())
                return Error{common::ErrorCode::InvalidArgument,
                             "run field 'mode' must be a string",
                             "mode"};
            Expected<api::SimMode> m = api::parseSimMode(v.string);
            if (!m)
                return m.error();
            out->mode = m.value();
        } else if (key == "smt" || key == "cores" || key == "instrs" ||
                   key == "warmup" || key == "seed" ||
                   key == "sample_interval") {
            Expected<uint64_t> n = v.asU64("run field '" + key + "'");
            if (!n)
                return n.error();
            if (key == "smt")
                out->smt = static_cast<int>(n.value());
            else if (key == "cores")
                out->cores = static_cast<int>(n.value());
            else if (key == "instrs")
                out->instrs = n.value();
            else if (key == "warmup")
                out->warmup = n.value();
            else if (key == "seed")
                out->seed = n.value();
            else
                out->sampleInterval = n.value();
        } else {
            // Same strictness as sweep specs: a typo must not silently
            // change what gets simulated.
            return Error::invalidArgument("unknown run request key '" +
                                          key + "'");
        }
    }
    return out->validate();
}

} // namespace

Expected<Request>
Request::parse(std::string_view line)
{
    if (line.size() > kMaxRequestBytes)
        return Error::invalidArgument(
            "request exceeds " + std::to_string(kMaxRequestBytes) +
            " bytes (" + std::to_string(line.size()) + ")");
    Expected<obs::JsonValue> docOr = obs::parseJson(line);
    if (!docOr)
        return Error::invalidArgument("malformed request JSON: " +
                                      docOr.error().message);
    const obs::JsonValue& root = docOr.value();
    if (!root.isObject())
        return Error::invalidArgument("request must be a JSON object");

    Expected<std::string> typeOr = readString(root, "type", true);
    if (!typeOr)
        return typeOr.error();
    const std::string& type = typeOr.value();

    Request req;
    if (type == "run")
        req.type = RequestType::Run;
    else if (type == "sweep")
        req.type = RequestType::Sweep;
    else if (type == "stats")
        req.type = RequestType::Stats;
    else if (type == "metrics")
        req.type = RequestType::Metrics;
    else if (type == "cancel")
        req.type = RequestType::Cancel;
    else if (type == "shutdown")
        req.type = RequestType::Shutdown;
    else if (type == "shard")
        req.type = RequestType::Shard;
    else if (type == "cache_result")
        req.type = RequestType::CacheResult;
    else
        return Error::invalidArgument("unknown request type '" + type +
                                      "'");

    const bool needsId = req.type == RequestType::Run ||
                         req.type == RequestType::Sweep ||
                         req.type == RequestType::Cancel ||
                         req.type == RequestType::Shard ||
                         req.type == RequestType::CacheResult;
    Expected<std::string> idOr = readString(root, "id", needsId);
    if (!idOr)
        return idOr.error();
    req.id = idOr.value();
    if (needsId && req.id.empty())
        return Error::invalidArgument("request 'id' must be non-empty");

    if (const obs::JsonValue* p = root.find("priority")) {
        if (!p->isNumber() ||
            p->number != static_cast<double>(
                             static_cast<int64_t>(p->number)) ||
            p->number < kMinPriority || p->number > kMaxPriority)
            return Error::invalidArgument(
                "request 'priority' must be an integer in [" +
                std::to_string(kMinPriority) + "," +
                std::to_string(kMaxPriority) + "]");
        req.priority = static_cast<int>(p->number);
    }
    Expected<uint64_t> timeoutOr = readU64(root, "timeout_cycles", 0);
    if (!timeoutOr)
        return timeoutOr.error();
    req.timeoutCycles = timeoutOr.value();

    // Optional tracing context. Absent = tracing off; present, it must
    // be exactly the TraceContext wire shape on a traceable request —
    // a truncated or corrupted id is a protocol violation, never a
    // silently different trace.
    if (const obs::JsonValue* tr = root.find("trace")) {
        const bool traceable = req.type == RequestType::Run ||
                               req.type == RequestType::Sweep ||
                               req.type == RequestType::Shard;
        if (!traceable)
            return Error::invalidArgument("request type '" + type +
                                          "' does not accept 'trace'");
        if (!tr->isString() || !obs::TraceContext::parse(tr->string))
            return Error::invalidArgument(
                "request 'trace' must be 32 lowercase hex chars, '-', "
                "16 lowercase hex chars");
        req.trace = tr->string;
    }

    switch (req.type) {
      case RequestType::Sweep: {
        const obs::JsonValue* spec = root.find("spec");
        if (spec == nullptr)
            return Error::invalidArgument(
                "sweep request is missing 'spec'");
        Expected<sweep::SweepSpec> specOr =
            sweep::SweepSpec::fromJsonValue(*spec);
        if (!specOr)
            return specOr.error();
        req.spec = std::move(specOr.value());
        for (const auto& [key, v] : root.object) {
            (void)v;
            if (key != "type" && key != "id" && key != "priority" &&
                key != "timeout_cycles" && key != "spec" &&
                key != "trace")
                return Error::invalidArgument(
                    "unknown sweep request key '" + key + "'");
        }
        break;
      }
      case RequestType::Run:
        if (Status st = parseRunPayload(root, &req.run); !st)
            return st.error();
        break;
      case RequestType::Cancel: {
        Expected<std::string> targetOr =
            readString(root, "target", true);
        if (!targetOr)
            return targetOr.error();
        req.target = targetOr.value();
        if (req.target.empty())
            return Error::invalidArgument(
                "cancel 'target' must be non-empty");
        break;
      }
      case RequestType::Shard: {
        const obs::JsonValue* spec = root.find("spec");
        if (spec == nullptr)
            return Error::invalidArgument(
                "shard request is missing 'spec'");
        Expected<sweep::SweepSpec> specOr =
            sweep::SweepSpec::fromJsonValue(*spec);
        if (!specOr)
            return specOr.error();
        req.spec = std::move(specOr.value());
        const obs::JsonValue* idx = root.find("index");
        if (idx == nullptr)
            return Error::invalidArgument(
                "shard request is missing 'index'");
        Expected<uint64_t> idxOr = idx->asU64("shard request 'index'");
        if (!idxOr)
            return idxOr.error();
        req.shardIndex = idxOr.value();
        Expected<uint64_t> hbOr = readU64(root, "heartbeat_ms", 0);
        if (!hbOr)
            return hbOr.error();
        req.heartbeatMs = hbOr.value();
        if (const obs::JsonValue* rc = root.find("remote_cache")) {
            if (!rc->isBool())
                return Error::invalidArgument(
                    "shard request 'remote_cache' must be a boolean");
            req.remoteCache = rc->boolean;
        }
        for (const auto& [key, v] : root.object) {
            (void)v;
            if (key != "type" && key != "id" && key != "priority" &&
                key != "timeout_cycles" && key != "spec" &&
                key != "index" && key != "heartbeat_ms" &&
                key != "remote_cache" && key != "trace")
                return Error::invalidArgument(
                    "unknown shard request key '" + key + "'");
        }
        break;
      }
      case RequestType::CacheResult: {
        const obs::JsonValue* hit = root.find("hit");
        if (hit == nullptr || !hit->isBool())
            return Error::invalidArgument(
                "cache_result 'hit' must be a boolean");
        req.cacheHit = hit->boolean;
        const obs::JsonValue* data = root.find("data");
        if (req.cacheHit) {
            if (data == nullptr || !data->isString())
                return Error::invalidArgument(
                    "cache_result hit requires a 'data' hex string");
            auto bytes = common::hexDecode(data->string);
            if (!bytes)
                return Error::invalidArgument(
                    "cache_result 'data' is not valid hex");
            req.cacheData = std::move(*bytes);
        } else if (data != nullptr) {
            return Error::invalidArgument(
                "cache_result miss must not carry 'data'");
        }
        for (const auto& [key, v] : root.object) {
            (void)v;
            if (key != "type" && key != "id" && key != "hit" &&
                key != "data")
                return Error::invalidArgument(
                    "unknown cache_result key '" + key + "'");
        }
        break;
      }
      case RequestType::Stats:
      case RequestType::Metrics:
      case RequestType::Shutdown:
        break;
    }
    return req;
}

std::string
acceptedLine(const std::string& id, size_t queueDepth)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("id").value(id);
    w.key("event").value("accepted");
    w.key("queue_depth").value(static_cast<uint64_t>(queueDepth));
    w.endObject();
    return w.str();
}

std::string
progressLine(const std::string& id, const api::ProgressEvent& ev)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("id").value(id);
    w.key("event").value("progress");
    w.key("index").value(ev.index);
    w.key("total").value(ev.total);
    w.key("key").value(ev.key);
    w.key("status").value(ev.status);
    w.key("retries").value(static_cast<int64_t>(ev.retries));
    w.key("cached").value(ev.fromCache);
    w.endObject();
    return w.str();
}

std::string
doneLine(const std::string& id, uint64_t cachedShards,
         uint64_t simulatedShards, const std::string& reportJson)
{
    // `report` must stay the FINAL member and be embedded verbatim:
    // clients slice it out by position to recover the byte-identical
    // offline artifact (see extractReport).
    obs::JsonWriter w;
    w.beginObject();
    w.key("id").value(id);
    w.key("event").value("done");
    w.key("cached_shards").value(cachedShards);
    w.key("simulated_shards").value(simulatedShards);
    w.endObject();
    std::string line = w.str();
    line.pop_back(); // drop the closing '}'
    line += ",\"report\":";
    line += reportJson;
    line += "}";
    return line;
}

std::string
errorLine(const std::string& id, const common::Error& e)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("id").value(id);
    w.key("event").value("error");
    w.key("code").value(common::errorCodeName(e.code));
    w.key("message").value(e.message);
    // Structured origin of a validation failure, surfaced verbatim so
    // a client can point at the offending request key. Absent (not
    // empty) when the error is not tied to one field — historical
    // error lines keep their exact bytes.
    if (!e.field.empty())
        w.key("field").value(e.field);
    w.endObject();
    return w.str();
}

std::string
metricsLine(const std::string& id, const std::string& metricsJson)
{
    // Like doneLine: the registry dump is already deterministic JSON
    // from the same writer, so it is embedded verbatim as the final
    // member instead of being re-parsed.
    obs::JsonWriter w;
    w.beginObject();
    w.key("id").value(id);
    w.key("event").value("metrics");
    w.endObject();
    std::string line = w.str();
    line.pop_back(); // drop the closing '}'
    line += ",\"metrics\":";
    line += metricsJson;
    line += "}";
    return line;
}

std::string
heartbeatLine(const std::string& id, const std::string& trace)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("id").value(id);
    w.key("event").value("heartbeat");
    if (!trace.empty())
        w.key("trace").value(trace);
    w.endObject();
    return w.str();
}

std::string
cacheGetLine(const std::string& id, uint64_t key)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("id").value(id);
    w.key("event").value("cache_get");
    w.key("key").value(cacheKeyHex(key));
    w.endObject();
    return w.str();
}

std::string
cachePutLine(const std::string& id, uint64_t key,
             const std::vector<uint8_t>& entry)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("id").value(id);
    w.key("event").value("cache_put");
    w.key("key").value(cacheKeyHex(key));
    w.key("data").value(common::hexEncode(entry));
    w.endObject();
    return w.str();
}

std::string
shardDoneLine(const std::string& id, uint64_t index, bool cached,
              const std::vector<uint8_t>& entry,
              const std::string& trace, uint64_t queueUs,
              uint64_t execUs)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("id").value(id);
    w.key("event").value("shard_done");
    w.key("index").value(index);
    w.key("cached").value(cached);
    if (!trace.empty()) {
        w.key("trace").value(trace);
        w.key("queue_us").value(queueUs);
        w.key("exec_us").value(execUs);
    }
    w.key("data").value(common::hexEncode(entry));
    w.endObject();
    return w.str();
}

std::string
cacheKeyHex(uint64_t key)
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(key));
    return std::string(hex, 16);
}

Expected<uint64_t>
parseCacheKeyHex(const std::string& text)
{
    if (text.size() != 16)
        return Error::invalidArgument(
            "cache key must be exactly 16 hex digits");
    uint64_t key = 0;
    for (char c : text) {
        int nibble;
        if (c >= '0' && c <= '9')
            nibble = c - '0';
        else if (c >= 'a' && c <= 'f')
            nibble = c - 'a' + 10;
        else
            return Error::invalidArgument(
                "cache key must be lowercase hex");
        key = (key << 4) | static_cast<uint64_t>(nibble);
    }
    return key;
}

Expected<std::string>
extractReport(std::string_view line)
{
    const std::string_view marker = "\"report\":";
    const size_t at = line.find(marker);
    if (at == std::string_view::npos || line.empty() ||
        line.back() != '}')
        return Error::invalidArgument(
            "not a done line: no report member to extract");
    return std::string(
        line.substr(at + marker.size(),
                    line.size() - (at + marker.size()) - 1));
}

} // namespace p10ee::service
