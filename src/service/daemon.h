/**
 * @file
 * The `p10d` simulation daemon: a long-running service that accepts
 * newline-delimited JSON requests over a local TCP socket (127.0.0.1
 * only, dependency-free POSIX sockets) and executes them through the
 * one `api::Service` entry path.
 *
 * Architecture:
 *  - one accept thread polls the listen socket (100 ms tick so drain
 *    is noticed promptly) and spawns a reader thread per connection;
 *  - reader threads parse request lines (hostile-input safe — any
 *    parse failure becomes an `error` event, never an abort), answer
 *    `stats`/`cancel`/`shutdown` inline, and enqueue `run`/`sweep`
 *    jobs on a bounded priority JobQueue (full queue → structured
 *    `overloaded` rejection: backpressure, not memory growth);
 *  - a small pool of executor threads pops jobs and runs them via
 *    `api::Service`, streaming `progress` events and a final `done`
 *    line whose embedded report is byte-identical to what the offline
 *    `p10sweep_cli` writes for the same spec — all requests share the
 *    Service's ShardCache, so a warm repeat simulates zero shards.
 *
 * Shutdown is a graceful drain (SIGTERM in `examples/p10d`, or a
 * `shutdown` request): stop accepting, finish every queued and
 * in-flight job, flush responses, then close connections and exit 0.
 *
 * Responses to one request always go to the connection that submitted
 * it; a client multiplexing requests demultiplexes on the `id` field.
 */

#ifndef P10EE_SERVICE_DAEMON_H
#define P10EE_SERVICE_DAEMON_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "common/error.h"
#include "service/protocol.h"
#include "service/queue.h"

namespace p10ee::service {

struct DaemonOptions
{
    /** TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()). */
    uint16_t port = 0;
    /** Shared shard-cache directory ("" = caching off). */
    std::string cacheDir;
    /** Executor threads: how many requests run concurrently. */
    int executors = 2;
    /** Sweep pool threads per request (api::SweepOptions::jobs). */
    int jobsPerRequest = 1;
    /** Bounded queue capacity (accepted-but-not-started requests). */
    size_t queueCapacity = 64;
};

class Daemon
{
  public:
    explicit Daemon(DaemonOptions opts);
    ~Daemon();

    Daemon(const Daemon&) = delete;
    Daemon& operator=(const Daemon&) = delete;

    /** Bind + listen + spawn threads. Bind failures are recoverable
        Errors (port in use, etc.), not aborts. */
    common::Status start();

    /** The bound port (the ephemeral one when options.port was 0).
        Valid after start() succeeded. */
    uint16_t port() const { return port_; }

    /**
     * Begin a graceful drain: stop accepting connections and new
     * requests, let queued and in-flight jobs finish. Idempotent and
     * safe to call from any thread, including a reader thread handling
     * a `shutdown` request (it only flips flags — joining happens in
     * waitUntilStopped()).
     */
    void requestDrain();

    bool draining() const { return draining_.load(); }

    /**
     * Drain (if not already requested) and join every thread. After
     * this returns all responses are flushed and all sockets closed.
     * Must not be called from a daemon-owned thread.
     */
    void waitUntilStopped();

  private:
    /** One client socket; writes are serialized under writeMu. */
    struct Connection
    {
        explicit Connection(int f) : fd(f) {}
        ~Connection();

        /** Write @p line + '\n' atomically w.r.t. other senders.
            A dead peer marks the connection instead of raising. */
        void sendLine(const std::string& line);

        const int fd;
        std::mutex writeMu;
        std::atomic<bool> alive{true};
    };

    /**
     * One in-flight remote-cache probe: the executor parks here after
     * sending cache_get, the reader thread delivers the coordinator's
     * cache_result by request id. A probe that times out is simply a
     * miss — the remote tier can only ever save work.
     */
    struct CacheWait
    {
        std::mutex mu;
        std::condition_variable cv;
        bool delivered = false;
        bool hit = false;
        std::vector<uint8_t> data;
    };

    void acceptLoop();
    void readerLoop(std::shared_ptr<Connection> conn);
    void executorLoop();
    void handleLine(const std::shared_ptr<Connection>& conn,
                    std::string_view line);
    void execute(Job& job);
    void executeShard(Job& job);
    std::optional<std::vector<uint8_t>> remoteCacheLookup(
        const std::function<void(const std::string&)>& send,
        const std::string& id, uint64_t key);
    void routeCacheResult(const Request& req);
    void finishJob(const std::string& id);
    std::string statsLine(const std::string& id) const;

    DaemonOptions opts_;
    api::Service service_;
    JobQueue queue_;

    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::atomic<bool> draining_{false};
    bool stopped_ = false;

    std::thread acceptThread_;
    std::vector<std::thread> executors_;
    std::vector<std::thread> readers_;
    std::mutex connsMu_; ///< guards conns_ and readers_
    std::vector<std::shared_ptr<Connection>> conns_;

    /** Queued + running request ids → their cancel flags (duplicate-id
        detection and cancel routing). */
    mutable std::mutex activeMu_;
    std::map<std::string, std::shared_ptr<std::atomic<bool>>> active_;

    /** In-flight cache_get probes by request id (fabric remote tier). */
    std::mutex cacheWaitsMu_;
    std::map<std::string, std::shared_ptr<CacheWait>> cacheWaits_;

    // Live metrics (the `stats` request; never part of reports).
    std::chrono::steady_clock::time_point startTime_;
    std::atomic<uint64_t> connections_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> failed_{0};
    std::atomic<uint64_t> cancelled_{0};
    std::atomic<uint64_t> rejected_{0};
    std::atomic<uint64_t> cachedShards_{0};
    std::atomic<uint64_t> simulatedShards_{0};
};

} // namespace p10ee::service

#endif // P10EE_SERVICE_DAEMON_H
