#include "service/daemon.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/json.h"
#include "obs/metrics.h"

namespace p10ee::service {

using common::Error;
using common::Expected;
using common::Status;

namespace {

/** How long a worker waits for the coordinator's cache_result before
    treating the probe as a miss. Generous next to a heartbeat interval
    (the pump keeps running through the wait) yet bounded — a mute
    coordinator costs one extra simulation, never a wedged executor. */
constexpr int kRemoteCacheWaitMs = 2000;

/** Daemon instrumentation, interned once per process. */
struct DaemonMetrics
{
    obs::MetricId connections =
        obs::metrics().counter("service.connections");
    obs::MetricId cancels = obs::metrics().counter("service.cancels");
};

DaemonMetrics&
daemonMetrics()
{
    static DaemonMetrics m;
    return m;
}

} // namespace

Daemon::Connection::~Connection()
{
    if (fd >= 0)
        ::close(fd);
}

void
Daemon::Connection::sendLine(const std::string& line)
{
    std::lock_guard<std::mutex> lock(writeMu);
    if (!alive.load(std::memory_order_relaxed))
        return;
    std::string framed = line;
    framed += '\n';
    size_t off = 0;
    while (off < framed.size()) {
        // MSG_NOSIGNAL: a peer that hung up must not SIGPIPE the
        // daemon; the write error just retires this connection.
        ssize_t n = ::send(fd, framed.data() + off, framed.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            alive.store(false, std::memory_order_relaxed);
            return;
        }
        off += static_cast<size_t>(n);
    }
}

Daemon::Daemon(DaemonOptions opts)
    : opts_(opts),
      service_(api::Service::Options{opts.cacheDir}),
      queue_(opts.queueCapacity),
      startTime_(std::chrono::steady_clock::now())
{
    if (opts_.executors < 1)
        opts_.executors = 1;
    if (opts_.jobsPerRequest < 1)
        opts_.jobsPerRequest = 1;
}

Daemon::~Daemon()
{
    if (!stopped_ && listenFd_ >= 0)
        waitUntilStopped();
}

Status
Daemon::start()
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0)
        return Error::transient(std::string("socket(): ") +
                                std::strerror(errno));
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK); // localhost only
    addr.sin_port = htons(opts_.port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        Error e = Error::transient(
            "bind(127.0.0.1:" + std::to_string(opts_.port) +
            "): " + std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return e;
    }
    if (::listen(listenFd_, 16) != 0) {
        Error e = Error::transient(std::string("listen(): ") +
                                   std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return e;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                      &len) != 0) {
        Error e = Error::transient(std::string("getsockname(): ") +
                                   std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return e;
    }
    port_ = ntohs(addr.sin_port);

    acceptThread_ = std::thread([this] { acceptLoop(); });
    executors_.reserve(static_cast<size_t>(opts_.executors));
    for (int i = 0; i < opts_.executors; ++i)
        executors_.emplace_back([this] { executorLoop(); });
    return common::okStatus();
}

void
Daemon::requestDrain()
{
    draining_.store(true);
    queue_.drain();
}

void
Daemon::waitUntilStopped()
{
    requestDrain();
    if (acceptThread_.joinable())
        acceptThread_.join();
    // Executors exit once the queue is drained; joining them first
    // guarantees every in-flight response was written before any
    // socket is torn down — the "graceful" in graceful drain.
    for (std::thread& t : executors_)
        if (t.joinable())
            t.join();
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        for (const auto& conn : conns_)
            ::shutdown(conn->fd, SHUT_RDWR); // wake blocked readers
    }
    std::vector<std::thread> readers;
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        readers.swap(readers_);
    }
    for (std::thread& t : readers)
        if (t.joinable())
            t.join();
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        conns_.clear();
    }
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    stopped_ = true;
}

void
Daemon::acceptLoop()
{
    while (!draining_.load()) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int rc = ::poll(&pfd, 1, 100); // tick so drain is noticed
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (rc == 0 || (pfd.revents & POLLIN) == 0)
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        connections_.fetch_add(1);
        obs::metrics().add(daemonMetrics().connections);
        auto conn = std::make_shared<Connection>(fd);
        std::lock_guard<std::mutex> lock(connsMu_);
        conns_.push_back(conn);
        readers_.emplace_back(
            [this, conn] { readerLoop(std::move(conn)); });
    }
}

void
Daemon::readerLoop(std::shared_ptr<Connection> conn)
{
    std::string pending;
    char buf[65536];
    for (;;) {
        ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        pending.append(buf, static_cast<size_t>(n));
        if (pending.size() > kMaxRequestBytes &&
            pending.find('\n') >= kMaxRequestBytes) {
            // The buffered prefix of a single line already exceeds the
            // request bound: reject and hang up before scanning —
            // waiting for a terminator would hand a hostile client
            // unbounded daemon memory, and the check must run before
            // the line scan or a terminator arriving in the same chunk
            // that crosses the bound would sneak the line through to
            // the parser (which rejects it but leaves the connection
            // up).
            conn->sendLine(errorLine(
                "", Error::invalidArgument(
                        "request line exceeds " +
                        std::to_string(kMaxRequestBytes) + " bytes")));
            ::shutdown(conn->fd, SHUT_RDWR);
            break;
        }
        size_t start = 0;
        for (;;) {
            size_t nl = pending.find('\n', start);
            if (nl == std::string::npos)
                break;
            std::string_view line(pending.data() + start, nl - start);
            if (!line.empty())
                handleLine(conn, line);
            start = nl + 1;
        }
        pending.erase(0, start);
    }
    // EOF mid-line: the peer half-closed (or died) before terminating
    // its request. Treat the fragment exactly like a malformed request
    // — a structured error, counted as rejected — and never hand it to
    // the dispatcher: an unterminated fragment can be a complete,
    // valid JSON request whose trailing newline died with the client,
    // and executing it would tie an executor to a connection nobody is
    // reading. sendLine absorbs the (likely dead) peer.
    if (!pending.empty()) {
        rejected_.fetch_add(1);
        conn->sendLine(errorLine(
            "", Error::invalidArgument(
                    "connection closed mid-request (" +
                    std::to_string(pending.size()) +
                    " bytes without newline); request discarded")));
        // Framing violations are connection-fatal (the oversize path
        // above sets the precedent): hang up so a peer still reading
        // sees EOF instead of a socket that never speaks again.
        ::shutdown(conn->fd, SHUT_RDWR);
    }
}

void
Daemon::handleLine(const std::shared_ptr<Connection>& conn,
                   std::string_view line)
{
    Expected<Request> reqOr = Request::parse(line);
    if (!reqOr) {
        rejected_.fetch_add(1);
        conn->sendLine(errorLine("", reqOr.error()));
        return;
    }
    Request& req = reqOr.value();

    switch (req.type) {
      case RequestType::Stats:
        conn->sendLine(statsLine(req.id));
        return;
      case RequestType::Metrics:
        // The registry dump is deterministic (sorted keys) and built
        // inline like stats: introspection must work even when every
        // executor is busy.
        conn->sendLine(metricsLine(req.id, obs::metrics().toJson()));
        return;
      case RequestType::Shutdown:
        conn->sendLine(acceptedLine(req.id, queue_.depth()));
        requestDrain();
        return;
      case RequestType::Cancel: {
        std::shared_ptr<std::atomic<bool>> flag;
        {
            std::lock_guard<std::mutex> lock(activeMu_);
            auto it = active_.find(req.target);
            if (it != active_.end())
                flag = it->second;
        }
        if (!flag) {
            conn->sendLine(errorLine(
                req.id, Error::notFound("no queued or running request '" +
                                        req.target + "'")));
            return;
        }
        flag->store(true);
        // If it is still queued, retire it now so it never runs; the
        // submitting client hears a `cancelled` error on its own
        // connection, the canceller an acknowledgement on this one.
        if (std::optional<Job> job = queue_.remove(req.target)) {
            job->send(errorLine(req.target,
                                Error::cancelled(
                                    "request cancelled while queued")));
            finishJob(req.target);
            cancelled_.fetch_add(1);
        }
        obs::metrics().add(daemonMetrics().cancels);
        conn->sendLine(acceptedLine(req.id, queue_.depth()));
        return;
      }
      case RequestType::CacheResult:
        // The answer to one of our own cache_get probes, not a job:
        // route it to the waiting executor, or drop it silently when
        // the probe already timed out (a probe is best-effort).
        routeCacheResult(req);
        return;
      case RequestType::Run:
      case RequestType::Sweep:
      case RequestType::Shard:
        break;
    }

    if (draining_.load()) {
        rejected_.fetch_add(1);
        conn->sendLine(errorLine(
            req.id, Error::overloaded(
                        "p10d is draining; request rejected — this "
                        "instance will not accept work again")));
        return;
    }

    Job job;
    job.cancel = std::make_shared<std::atomic<bool>>(false);
    job.send = [conn](const std::string& l) { conn->sendLine(l); };
    {
        std::lock_guard<std::mutex> lock(activeMu_);
        if (active_.count(req.id) != 0) {
            conn->sendLine(errorLine(
                req.id,
                Error::invalidArgument("request id '" + req.id +
                                       "' is already active")));
            return;
        }
        active_.emplace(req.id, job.cancel);
    }
    job.req = std::move(req);
    const std::string id = job.req.id;
    if (Status st = queue_.push(std::move(job)); !st) {
        finishJob(id);
        rejected_.fetch_add(1);
        conn->sendLine(errorLine(id, st.error()));
        return;
    }
    conn->sendLine(acceptedLine(id, queue_.depth()));
}

void
Daemon::executorLoop()
{
    Job job;
    while (queue_.pop(&job)) {
        execute(job);
        finishJob(job.req.id);
        job = Job{};
    }
}

void
Daemon::execute(Job& job)
{
    const std::string& id = job.req.id;
    if (job.cancel->load()) {
        // Cancelled between queue removal racing and pop: honour it.
        cancelled_.fetch_add(1);
        job.send(errorLine(
            id, Error::cancelled("request cancelled before execution")));
        return;
    }

    if (job.req.type == RequestType::Shard) {
        executeShard(job);
        return;
    }

    if (job.req.type == RequestType::Run) {
        api::RunRequest run = job.req.run;
        if (job.req.timeoutCycles != 0 &&
            (run.maxCycles == 0 ||
             job.req.timeoutCycles < run.maxCycles))
            run.maxCycles = job.req.timeoutCycles;
        Expected<api::RunOutcome> outcome = service_.runOne(run);
        if (!outcome) {
            failed_.fetch_add(1);
            job.send(errorLine(id, outcome.error()));
            return;
        }
        simulatedShards_.fetch_add(1);
        completed_.fetch_add(1);
        obs::JsonReport report =
            api::Service::runReport(run, outcome.value());
        job.send(doneLine(id, 0, 1, report.toJson()));
        return;
    }

    api::SweepOptions sweepOpts;
    sweepOpts.jobs = opts_.jobsPerRequest;
    sweepOpts.cancel = job.cancel.get();
    sweepOpts.maxCyclesOverride = job.req.timeoutCycles;
    auto send = job.send;
    sweepOpts.onProgress = [send, id](const api::ProgressEvent& ev) {
        send(progressLine(id, ev));
    };
    Expected<sweep::SweepResult> resultOr =
        service_.runSweep(job.req.spec, sweepOpts);
    if (!resultOr) {
        failed_.fetch_add(1);
        job.send(errorLine(id, resultOr.error()));
        return;
    }
    const sweep::SweepResult& result = resultOr.value();
    cachedShards_.fetch_add(result.cachedShards);
    simulatedShards_.fetch_add(result.simulatedShards -
                               result.cancelledShards);
    if (result.cancelledShards > 0) {
        // A partially-cancelled sweep's report is not the spec's
        // canonical artifact; report the cancellation instead.
        cancelled_.fetch_add(1);
        job.send(errorLine(
            id, Error::cancelled(
                    "request cancelled after " +
                    std::to_string(result.shards.size() -
                                   result.cancelledShards) +
                    " of " + std::to_string(result.shards.size()) +
                    " shards")));
        return;
    }
    completed_.fetch_add(1);
    obs::JsonReport report =
        api::Service::mergedReport(job.req.spec, result);
    job.send(doneLine(id, result.cachedShards, result.simulatedShards,
                      report.toJson()));
}

void
Daemon::executeShard(Job& job)
{
    const std::string id = job.req.id;

    // Tracing: the queue wait ended the moment the executor picked the
    // job up; the coordinator gets both phases as durations on
    // shard_done and anchors them at arrival, so no clock crosses the
    // process boundary.
    const std::string trace = job.req.trace;
    const auto execStart = std::chrono::steady_clock::now();
    const uint64_t queueUs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            execStart - job.enqueued)
            .count());

    // Heartbeats bracket the WHOLE execution — remote cache waits
    // included — so the coordinator's liveness window never depends on
    // which phase the shard is in. The pump is joined before the
    // terminal line goes out: a coordinator never sees a heartbeat
    // after shard_done.
    std::atomic<bool> done{false};
    std::thread heartbeat;
    if (job.req.heartbeatMs > 0) {
        auto send = job.send;
        const uint64_t intervalMs = job.req.heartbeatMs;
        heartbeat = std::thread([send, id, trace, intervalMs, &done] {
            auto last = std::chrono::steady_clock::now();
            while (!done.load()) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
                auto now = std::chrono::steady_clock::now();
                if (now - last >=
                    std::chrono::milliseconds(intervalMs)) {
                    send(heartbeatLine(id, trace));
                    last = now;
                }
            }
        });
    }

    api::ShardOptions shardOpts;
    shardOpts.maxCyclesOverride = job.req.timeoutCycles;
    if (job.req.remoteCache) {
        auto send = job.send;
        shardOpts.remoteLookup = [this, send, id](uint64_t key) {
            return remoteCacheLookup(send, id, key);
        };
        shardOpts.remoteStore =
            [send, id](uint64_t key,
                       const std::vector<uint8_t>& entry) {
                send(cachePutLine(id, key, entry));
            };
    }
    Expected<api::ShardOutcome> outcomeOr =
        service_.runShard(job.req.spec, job.req.shardIndex, shardOpts);

    done.store(true);
    if (heartbeat.joinable())
        heartbeat.join();

    if (!outcomeOr) {
        failed_.fetch_add(1);
        job.send(errorLine(id, outcomeOr.error()));
        return;
    }
    const api::ShardOutcome& outcome = outcomeOr.value();
    if (outcome.result.fromCache)
        cachedShards_.fetch_add(1);
    else
        simulatedShards_.fetch_add(1);
    completed_.fetch_add(1);
    const uint64_t execUs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - execStart)
            .count());
    job.send(shardDoneLine(id, job.req.shardIndex,
                           outcome.result.fromCache, outcome.entry,
                           trace, queueUs, execUs));
}

std::optional<std::vector<uint8_t>>
Daemon::remoteCacheLookup(
    const std::function<void(const std::string&)>& send,
    const std::string& id, uint64_t key)
{
    auto wait = std::make_shared<CacheWait>();
    {
        std::lock_guard<std::mutex> lock(cacheWaitsMu_);
        cacheWaits_[id] = wait;
    }
    send(cacheGetLine(id, key));
    std::optional<std::vector<uint8_t>> out;
    {
        std::unique_lock<std::mutex> lock(wait->mu);
        wait->cv.wait_for(
            lock, std::chrono::milliseconds(kRemoteCacheWaitMs),
            [&wait] { return wait->delivered; });
        if (wait->delivered && wait->hit)
            out = std::move(wait->data);
    }
    {
        std::lock_guard<std::mutex> lock(cacheWaitsMu_);
        cacheWaits_.erase(id);
    }
    return out;
}

void
Daemon::routeCacheResult(const Request& req)
{
    std::shared_ptr<CacheWait> wait;
    {
        std::lock_guard<std::mutex> lock(cacheWaitsMu_);
        auto it = cacheWaits_.find(req.id);
        if (it != cacheWaits_.end())
            wait = it->second;
    }
    if (!wait)
        return; // probe already timed out (or unsolicited): drop
    std::lock_guard<std::mutex> lock(wait->mu);
    if (wait->delivered)
        return; // duplicate answer: first one wins
    wait->delivered = true;
    wait->hit = req.cacheHit;
    wait->data = req.cacheData;
    wait->cv.notify_all();
}

void
Daemon::finishJob(const std::string& id)
{
    std::lock_guard<std::mutex> lock(activeMu_);
    active_.erase(id);
}

std::string
Daemon::statsLine(const std::string& id) const
{
    const uint64_t cached = cachedShards_.load();
    const uint64_t simulated = simulatedShards_.load();
    const uint64_t shards = cached + simulated;
    const double uptime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      startTime_)
            .count();
    size_t active = 0;
    {
        std::lock_guard<std::mutex> lock(activeMu_);
        active = active_.size();
    }

    obs::JsonWriter w;
    w.beginObject();
    w.key("id").value(id);
    w.key("event").value("stats");
    w.key("queue_depth").value(static_cast<uint64_t>(queue_.depth()));
    w.key("active_requests").value(static_cast<uint64_t>(active));
    w.key("completed").value(completed_.load());
    w.key("failed").value(failed_.load());
    w.key("cancelled").value(cancelled_.load());
    w.key("rejected").value(rejected_.load());
    w.key("connections").value(connections_.load());
    w.key("cached_shards").value(cached);
    w.key("simulated_shards").value(simulated);
    w.key("cache_hit_rate")
        .value(shards > 0 ? static_cast<double>(cached) /
                                static_cast<double>(shards)
                          : 0.0);
    w.key("shards_per_sec")
        .value(uptime > 0.0 ? static_cast<double>(shards) / uptime
                            : 0.0);
    w.key("uptime_s").value(uptime);
    w.key("draining").value(draining_.load());
    w.endObject();
    return w.str();
}

} // namespace p10ee::service
