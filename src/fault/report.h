/**
 * @file
 * Structured (machine-readable) campaign reporting.
 *
 * Folds a fault::CampaignReport into the shared obs::JsonReport shape:
 * outcome tallies become scalars and tables, the SERMiner-predicted
 * deratings become a per-component table, and the per-injection ledger
 * becomes an outcome-over-injection series so campaign convergence is
 * visible in downstream tooling.
 */

#ifndef P10EE_FAULT_REPORT_H
#define P10EE_FAULT_REPORT_H

#include "fault/campaign.h"
#include "obs/report.h"

namespace p10ee::fault {

/**
 * Append @p rep's content (scalars, per-component / per-class tables,
 * predicted deratings, injection-outcome series) to @p out. The
 * caller keeps ownership of meta and any other content in @p out.
 */
void addCampaignReport(const CampaignReport& rep, obs::JsonReport& out);

} // namespace p10ee::fault

#endif // P10EE_FAULT_REPORT_H
