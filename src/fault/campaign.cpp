#include "fault/campaign.h"

#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <utility>

#include "sweep/pool.h"

#include "common/assert.h"
#include "isa/instr.h"
#include "mma/engine.h"
#include "model/proxy.h"
#include "workloads/synthetic.h"

namespace p10ee::fault {

namespace {

/**
 * Fate split of an upset that lands in *live* control state. A live
 * control upset either hangs/machine-checks the core (the paper-era
 * designs detect most control parity errors), is caught by the
 * flush-and-refetch recovery paths, or silently alters an in-flight
 * decision. The split is a modeling assumption, held fixed so campaign
 * results are comparable across designs.
 */
constexpr double kControlCrashFrac = 0.35;
constexpr double kControlCorrectedFrac = 0.35;

/** Counter bits eligible for upset (counts stay far below 2^48). */
constexpr uint64_t kCounterBits = 48;

/** Grace instructions scanned past the window in dead-value analysis. */
constexpr uint64_t kRfGrace = 512;

} // namespace

void
OutcomeTally::count(Outcome o)
{
    ++injections;
    switch (o) {
    case Outcome::Masked: ++masked; break;
    case Outcome::Corrected: ++corrected; break;
    case Outcome::Sdc: ++sdc; break;
    case Outcome::CrashTimeout: ++crash; break;
    }
}

common::Status
CampaignSpec::validate() const
{
    std::string err;
    auto add = [&err](const char* m) {
        if (!err.empty())
            err += "; ";
        err += m;
    };

    if (smt < 1 || smt > 8)
        add("smt must be in [1,8]");
    if (injections < 1)
        add("injections must be >= 1");
    if (measureInstrs == 0)
        add("measureInstrs must be > 0");
    if (!std::isfinite(cycleBudgetFactor) || cycleBudgetFactor < 1.0)
        add("cycleBudgetFactor must be finite and >= 1");
    if (maxRetries < 0)
        add("maxRetries must be >= 0");
    if (jobs < 1 || jobs > 256)
        add("jobs must be in [1,256]");
    if (!(infraFailProb >= 0.0 && infraFailProb < 1.0))
        add("infraFailProb must be in [0,1)");
    if (!(sdcPowerTolFrac > 0.0))
        add("sdcPowerTolFrac must be > 0");

    if (!err.empty())
        return common::Error::invalidArgument("CampaignSpec: " + err);
    return common::okStatus();
}

CampaignRunner::CampaignRunner(const core::CoreConfig& cfg,
                               const workloads::WorkloadProfile& profile,
                               const CampaignSpec& spec)
    : cfg_(cfg), profile_(profile), spec_(spec)
{
    // Fold the campaign seed into the workload so distinct campaign
    // seeds exercise distinct (but internally reproducible) streams.
    profile_.seed = common::splitSeed(profile.seed, spec.seed);
}

core::RunResult
CampaignRunner::runCore(
    uint64_t maxCycles, uint64_t injectAt,
    const std::function<void(core::CoreModel&)>& onInject,
    const std::function<void(core::CoreModel&)>& afterRun) const
{
    std::vector<std::unique_ptr<workloads::SyntheticWorkload>> streams;
    std::vector<workloads::InstrSource*> ptrs;
    streams.reserve(static_cast<size_t>(spec_.smt));
    for (int t = 0; t < spec_.smt; ++t) {
        streams.push_back(
            std::make_unique<workloads::SyntheticWorkload>(profile_, t));
        ptrs.push_back(streams.back().get());
    }

    core::CoreModel model(cfg_);
    core::RunOptions opts;
    opts.warmupInstrs = spec_.warmupInstrs;
    opts.measureInstrs = spec_.measureInstrs;
    opts.maxCycles = maxCycles;
    opts.injectAtInstr = injectAt;
    opts.onInject = onInject;

    core::RunResult r = model.run(ptrs, opts);
    if (afterRun)
        afterRun(model);
    return r;
}

Outcome
CampaignRunner::injectCoreState(const InjectionSite& site,
                                common::Xoshiro& rng) const
{
    const uint64_t budget =
        static_cast<uint64_t>(spec_.cycleBudgetFactor *
                              static_cast<double>(golden_.cycles)) +
        1;

    const bool isArray = site.cls == SiteClass::CacheArray;
    core::CoreModel::ArrayId id = core::CoreModel::ArrayId::L1D;
    if (isArray) {
        if (site.component == "l1i_array")
            id = core::CoreModel::ArrayId::L1I;
        else if (site.component == "l1d_array")
            id = core::CoreModel::ArrayId::L1D;
        else if (site.component == "tlb")
            id = core::CoreModel::ArrayId::Tlb;
        else if (site.component == "ierat")
            id = core::CoreModel::ArrayId::Ierat;
        else
            id = core::CoreModel::ArrayId::Derat;
    }

    uint64_t poisonedHits = 0;
    auto onInject = [&](core::CoreModel& m) {
        if (isArray) {
            core::CacheModel& arr = m.arrayState(id);
            arr.flipStateBit(rng.below(arr.stateBits()));
        } else {
            core::BranchPredictor& bp = m.branchState();
            bp.flipStateBit(rng.below(bp.stateBits()));
        }
    };
    auto afterRun = [&](core::CoreModel& m) {
        if (isArray)
            poisonedHits = m.arrayState(id).poisonedHits();
    };

    core::RunResult r = runCore(budget, site.atInstr, onInject, afterRun);

    if (r.timedOut)
        return Outcome::CrashTimeout;
    if (isArray && poisonedHits > 0)
        return Outcome::Sdc; // wrong data consumed past the tag check
    const bool identical =
        r.cycles == golden_.cycles && r.stats == golden_.stats;
    return identical ? Outcome::Masked : Outcome::Corrected;
}

Outcome
CampaignRunner::injectRegisterFile(const InjectionSite& site,
                                   common::Xoshiro& rng) const
{
    using namespace isa;

    // Architectural register span the component's latches back.
    uint16_t base = reg::kGprBase;
    uint16_t count = reg::kNumGpr;
    if (site.component == "rf_vsr") {
        base = reg::kVsrBase;
        count = reg::kNumVsr;
    } else if (site.component == "rf_spr") {
        base = reg::kCtr;
        count = reg::kNumArchRegs - reg::kCtr;
    } else if (site.component == "rename_map") {
        // A mapper upset redirects one architectural name; its fate is
        // that of the value the name should have held.
        base = reg::kGprBase;
        count = reg::kVsrBase + reg::kNumVsr;
    }
    const uint16_t target =
        static_cast<uint16_t>(base + rng.below(count));
    const int thread = static_cast<int>(rng.below(
        static_cast<uint64_t>(spec_.smt)));

    // Dead-value analysis over the exact committed stream: the upset
    // corrupts the value register `target` holds at the injection
    // instant. If the stream reads it before overwriting it, the wrong
    // value is architecturally consumed (SDC); if it is overwritten
    // first, or never referenced again, the fault is masked.
    workloads::SyntheticWorkload stream(profile_, thread);
    const uint64_t skip = spec_.warmupInstrs + site.atInstr;
    for (uint64_t i = 0; i < skip; ++i)
        stream.next();

    const uint64_t horizon =
        spec_.measureInstrs - site.atInstr + kRfGrace;
    for (uint64_t i = 0; i < horizon; ++i) {
        const TraceInstr in = stream.next();
        for (uint16_t s : in.src)
            if (s == target)
                return Outcome::Sdc;
        if (in.dest == target)
            return Outcome::Masked;
    }
    return Outcome::Masked; // value dead beyond the window
}

Outcome
CampaignRunner::injectMma(const InjectionSite& site,
                          common::Xoshiro& rng) const
{
    // An accumulator group is live only as often as the workload clocks
    // it (perlbench never primes an accumulator; ml_analytics nearly
    // always holds one); an idle accumulator holds no architected data
    // and its upsets are masked by definition.
    if (!rng.chance(site.utilization))
        return Outcome::Masked;

    // Fixed FP32 GEMM-like schedule over accumulators 0..5 (6 and 7
    // stay idle): rank-1 accumulation with one mid-kernel re-zero and
    // one overwrite, so the kernel has real masking windows. The upset
    // lands after a deterministic step; the architected outputs (the
    // xxmfacc read-back of the live accumulators) are compared
    // bit-for-bit against a clean pass.
    constexpr int kSteps = 48;
    constexpr int kLiveAccs = 6;

    const int flipStep = static_cast<int>(rng.below(kSteps));
    const int flipAcc = static_cast<int>(rng.below(mma::kNumAcc));
    const int flipBit = static_cast<int>(rng.below(512));

    auto kernel = [&](mma::MmaEngine& eng, bool faulty) {
        for (int s = 0; s < kSteps; ++s) {
            float x[4], y[4];
            for (int i = 0; i < 4; ++i) {
                x[i] = static_cast<float>((s * 5 + i * 3) % 17 - 8);
                y[i] = static_cast<float>((s * 7 + i * 11) % 13 - 6);
            }
            const int a = s % kLiveAccs;
            if (s == kSteps / 2)
                eng.xxsetaccz(1); // re-zero: masks earlier acc1 upsets
            if (s == 30)
                eng.xvf32ger(2, x, y); // overwrite: masks acc2 upsets
            else
                eng.xvf32gerpp(a, x, y);
            if (faulty && s == flipStep)
                eng.injectBitFlip(flipAcc, flipBit);
        }
    };

    mma::MmaEngine gold;
    mma::MmaEngine faulty;
    kernel(gold, false);
    kernel(faulty, true);

    for (int a = 0; a < kLiveAccs; ++a) {
        float outG[4][4], outF[4][4];
        gold.xxmfacc(a, outG);
        faulty.xxmfacc(a, outF);
        if (std::memcmp(outG, outF, sizeof(outG)) != 0)
            return Outcome::Sdc;
    }
    return Outcome::Masked;
}

Outcome
CampaignRunner::injectProxyCounter(common::Xoshiro& rng) const
{
    P10_ASSERT(!counterKeys_.empty(), "no corruptible counters");

    const std::string& key =
        counterKeys_[rng.below(counterKeys_.size())];
    const int bit = static_cast<int>(rng.below(kCounterBits));

    core::RunResult corrupt = golden_;
    corrupt.stats[key] ^= 1ull << bit;

    // The governor's range guard sees the corrupted read-out first.
    model::CounterScreen screen =
        model::screenCounters(corrupt.stats, corrupt.cycles);
    corrupt.stats = screen.cleaned;

    const double pj = energy_->evalCounters(corrupt).totalPj;
    const double err = goldenPowerPj_ > 0.0
                           ? std::fabs(pj - goldenPowerPj_) /
                                 goldenPowerPj_
                           : 0.0;

    if (err > spec_.sdcPowerTolFrac)
        return Outcome::Sdc; // a wild power estimate reached consumers
    if (screen.flagged > 0)
        return Outcome::Corrected; // guard caught and clamped the read
    return Outcome::Masked; // estimate moved within tolerance
}

Outcome
CampaignRunner::injectControl(const InjectionSite& site,
                              common::Xoshiro& rng) const
{
    // A control latch clocked a fraction `utilization` of cycles holds
    // live state with that probability at a uniformly-drawn upset
    // instant; a dead latch's upset is overwritten at its next clock
    // before anything samples it — SERMiner's derating argument.
    if (!rng.chance(site.utilization))
        return Outcome::Masked;

    const double u = rng.uniform();
    if (u < kControlCrashFrac)
        return Outcome::CrashTimeout;
    if (u < kControlCrashFrac + kControlCorrectedFrac)
        return Outcome::Corrected;
    return Outcome::Sdc;
}

common::Expected<Outcome>
CampaignRunner::executeOnce(const InjectionSite& site,
                            common::Xoshiro& rng) const
{
    if (spec_.infraFailProb > 0.0 && rng.chance(spec_.infraFailProb))
        return common::Error::transient(
            "synthetic injection-harness failure");

    switch (site.cls) {
    case SiteClass::BranchPredictor:
    case SiteClass::CacheArray:
        return injectCoreState(site, rng);
    case SiteClass::RegisterFile:
        return injectRegisterFile(site, rng);
    case SiteClass::MmaAccumulator:
        return injectMma(site, rng);
    case SiteClass::ProxyCounter:
        return injectProxyCounter(rng);
    case SiteClass::Control:
        return injectControl(site, rng);
    }
    return common::Error{common::ErrorCode::Internal,
                         "unknown site class"};
}

common::Expected<CampaignReport>
CampaignRunner::run()
{
    if (auto s = spec_.validate(); !s.ok())
        return s.error();
    if (auto s = cfg_.validate(); !s.ok())
        return s.error();

    golden_ = runCore(/*maxCycles=*/0, /*injectAt=*/0, nullptr);
    energy_.emplace(cfg_);
    goldenPowerPj_ = energy_->evalCounters(golden_).totalPj;

    counterKeys_.clear();
    for (const auto& [key, value] : golden_.stats) {
        (void)value;
        if (key != "cycles")
            counterKeys_.push_back(key);
    }
    if (counterKeys_.empty())
        return common::Error{common::ErrorCode::Internal,
                             "golden run produced no counters"};

    auto sm = SiteModel::build(cfg_, {golden_});
    if (!sm.ok())
        return sm.error();
    sites_.emplace(std::move(sm).value());

    CampaignReport rep;
    rep.goldenCycles = golden_.cycles;
    rep.goldenPowerPj = goldenPowerPj_;
    rep.predictedSummary = sites_->predictedSummary();

    // Injections are independent by construction — each owns a
    // generator derived from the master seed, so any single injection
    // replays in isolation and the loop parallelizes with no
    // coordination beyond where the record lands. Records are produced
    // by index and folded in index order below, so the report is
    // bit-for-bit identical at any jobs value.
    rep.records.resize(static_cast<size_t>(spec_.injections));
    std::mutex progressMu;
    sweep::ThreadPool pool(spec_.jobs);
    pool.parallelFor(
        static_cast<uint64_t>(spec_.injections), [&](uint64_t idx) {
            const int i = static_cast<int>(idx);
            common::Xoshiro rng(common::splitSeed(
                spec_.seed, static_cast<uint64_t>(i)));

            const InjectionSite site =
                sites_->sample(rng, spec_.measureInstrs);

            InjectionRecord rec;
            rec.id = i;
            rec.component = site.component;
            rec.cls = site.cls;
            rec.atInstr = site.atInstr;

            int attempts = 0;
            for (;;) {
                auto out = executeOnce(site, rng);
                if (out.ok()) {
                    rec.outcome = out.value();
                    break;
                }
                if (out.error().code != common::ErrorCode::Transient ||
                    attempts >= spec_.maxRetries) {
                    rec.skipped = true; // graceful skip-and-record
                    break;
                }
                ++attempts;
                // Exponential backoff, modeled deterministically: burn
                // a doubling number of generator draws per attempt
                // (the wall-clock harness analogue would sleep
                // 2^attempts units before re-dispatching).
                for (int b = 0; b < (1 << attempts); ++b)
                    rng.next();
            }
            rec.retries = attempts;

            if (spec_.onProgress) {
                api::ProgressEvent ev;
                ev.index = static_cast<uint64_t>(rec.id);
                ev.total = static_cast<uint64_t>(spec_.injections);
                ev.key = rec.component;
                ev.ok = !rec.skipped;
                ev.status = rec.skipped ? "skipped"
                                        : outcomeName(rec.outcome);
                ev.retries = rec.retries;
                std::lock_guard<std::mutex> lk(progressMu);
                spec_.onProgress(ev);
            }
            rep.records[idx] = std::move(rec);
        });

    // Index-ordered fold of the tallies: identical at any jobs value.
    for (const InjectionRecord& rec : rep.records) {
        rep.retriesTotal += rec.retries;
        if (rec.skipped) {
            ++rep.skipped;
        } else {
            rep.total.count(rec.outcome);
            rep.perComponent[rec.component].count(rec.outcome);
            rep.perClass[siteClassName(rec.cls)].count(rec.outcome);
            if (rep.predicted.find(rec.component) ==
                rep.predicted.end()) {
                PredictedDerating p;
                p.vt10 = sites_->predictedDerating(rec.component, 0.10);
                p.vt50 = sites_->predictedDerating(rec.component, 0.50);
                p.vt90 = sites_->predictedDerating(rec.component, 0.90);
                rep.predicted.emplace(rec.component, p);
            }
        }
    }
    return rep;
}

} // namespace p10ee::fault
