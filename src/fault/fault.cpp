#include "fault/fault.h"

#include <algorithm>

#include "common/assert.h"

namespace p10ee::fault {

const char*
siteClassName(SiteClass c)
{
    switch (c) {
    case SiteClass::BranchPredictor: return "branch-predictor";
    case SiteClass::CacheArray: return "cache-array";
    case SiteClass::RegisterFile: return "register-file";
    case SiteClass::MmaAccumulator: return "mma-accumulator";
    case SiteClass::ProxyCounter: return "proxy-counter";
    case SiteClass::Control: return "control";
    }
    return "?";
}

const char*
outcomeName(Outcome o)
{
    switch (o) {
    case Outcome::Masked: return "masked";
    case Outcome::Corrected: return "corrected";
    case Outcome::Sdc: return "sdc";
    case Outcome::CrashTimeout: return "crash-timeout";
    }
    return "?";
}

SiteClass
SiteModel::classify(const std::string& c)
{
    if (c == "bp_bimodal" || c == "bp_gshare" || c == "bp_indirect")
        return SiteClass::BranchPredictor;
    if (c == "l1i_array" || c == "l1d_array" || c == "tlb" ||
        c == "ierat" || c == "derat")
        return SiteClass::CacheArray;
    if (c == "rf_gpr" || c == "rf_vsr" || c == "rf_spr" ||
        c == "rename_map")
        return SiteClass::RegisterFile;
    if (c == "mma_grid" || c == "mma_acc")
        return SiteClass::MmaAccumulator;
    if (c == kProxyCounterComponent)
        return SiteClass::ProxyCounter;
    return SiteClass::Control;
}

SiteModel::SiteModel(core::CoreConfig cfg,
                     std::vector<ras::LatchGroup> groups)
    : cfg_(std::move(cfg)), groups_(std::move(groups))
{
    cumK_.reserve(groups_.size());
    for (const auto& g : groups_) {
        totalK_ += g.kLatches;
        cumK_.push_back(totalK_);
    }
}

common::Expected<SiteModel>
SiteModel::build(const core::CoreConfig& cfg,
                 const std::vector<core::RunResult>& suite)
{
    if (auto s = cfg.validate(); !s.ok())
        return s.error();
    if (suite.empty())
        return common::Error::invalidArgument(
            "SiteModel: empty testcase suite");
    for (const auto& r : suite) {
        if (r.cycles == 0)
            return common::Error::invalidArgument(
                "SiteModel: suite contains a zero-cycle run");
    }

    ras::SerMiner miner(cfg);
    std::vector<ras::LatchGroup> groups = miner.analyze(suite);

    // The power-proxy counter bank is injectable state too, but it is
    // infrastructure rather than microarchitecture, so SERMiner does
    // not model it; append it as one always-clocking group (the
    // counters accumulate nearly every cycle).
    ras::LatchGroup proxy;
    proxy.component = kProxyCounterComponent;
    proxy.kLatches = 2.0; // ~32 counters x 64 bits
    proxy.utilization = 0.95;
    groups.push_back(proxy);

    return SiteModel(cfg, std::move(groups));
}

InjectionSite
SiteModel::sample(common::Xoshiro& rng, uint64_t windowInstrs) const
{
    P10_ASSERT(totalK_ > 0.0, "site population is empty");
    P10_ASSERT(windowInstrs > 0, "injection window is empty");

    const double r = rng.uniform() * totalK_;
    const auto it = std::upper_bound(cumK_.begin(), cumK_.end(), r);
    const size_t idx = std::min<size_t>(
        static_cast<size_t>(it - cumK_.begin()), groups_.size() - 1);
    const ras::LatchGroup& g = groups_[idx];

    InjectionSite site;
    site.component = g.component;
    site.cls = classify(g.component);
    site.utilization = g.utilization;
    site.atInstr = rng.below(windowInstrs);
    return site;
}

double
SiteModel::predictedDerating(const std::string& component,
                             double vt) const
{
    std::vector<ras::LatchGroup> own;
    for (const auto& g : groups_)
        if (g.component == component)
            own.push_back(g);
    if (own.empty())
        return 0.0;
    return ras::SerMiner::deratedFrac(own, vt);
}

ras::DeratingSummary
SiteModel::predictedSummary() const
{
    return ras::SerMiner::summarize(groups_);
}

} // namespace p10ee::fault
