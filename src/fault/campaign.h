/**
 * @file
 * Deterministic fault-injection campaign runner.
 *
 * A campaign compares N independently seeded single-bit upsets against
 * one golden (fault-free) run of the same seeded workload. Each
 * injection draws a site from the SERMiner-weighted latch population
 * (fault.h) and executes the class-specific experiment:
 *
 *  - branch-predictor / cache-array: re-run the core with a
 *    RunOptions::onInject hook that flips a real bit in the live
 *    structure, under a cycle budget; classify by golden-comparison
 *    (and, for arrays, by whether a poisoned way was ever consumed);
 *  - register-file: dead-value analysis over the exact committed
 *    register stream (read-before-overwrite = SDC);
 *  - mma-accumulator: a real MmaEngine GEMM schedule with the flip
 *    planted mid-kernel, final accumulators compared bit-for-bit;
 *  - proxy-counter: corrupt one counter read-out, pass it through the
 *    screenCounters() range guard, and score the resulting power
 *    estimate against the clean one;
 *  - control: utilization-weighted liveness model (a latch holding no
 *    live state masks by definition; a live control upset splits
 *    between recovery, SDC, and hang).
 *
 * Everything derives from CampaignSpec::seed: per-injection generators
 * are seeded via common::splitSeed(seed, index), so a campaign is
 * bit-for-bit reproducible (at any CampaignSpec::jobs value) and any
 * single injection can be replayed in isolation. Individual
 * injections never abort the campaign — transient infrastructure
 * failures are retried with exponential backoff and, when the retry
 * budget is exhausted, recorded as skipped.
 */

#ifndef P10EE_FAULT_CAMPAIGN_H
#define P10EE_FAULT_CAMPAIGN_H

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "api/types.h"
#include "common/error.h"
#include "core/config.h"
#include "core/core.h"
#include "core/result.h"
#include "fault/fault.h"
#include "power/energy.h"
#include "workloads/spec_profiles.h"

namespace p10ee::fault {

struct InjectionRecord;

/** Parameters of one campaign. */
struct CampaignSpec
{
    int smt = 1;              ///< SMT threads in the modeled run
    uint64_t seed = 1;        ///< master seed; everything derives from it
    int injections = 1000;
    uint64_t warmupInstrs = 2000;
    uint64_t measureInstrs = 4000;

    /**
     * Per-injection cycle budget as a multiple of the golden run's
     * cycles; a faulty re-run exceeding it is classified crash-timeout.
     */
    double cycleBudgetFactor = 8.0;

    int maxRetries = 2; ///< retries after a transient infra failure

    /**
     * Worker threads for the injection loop (sweep::ThreadPool).
     * Injections are independent by construction — each owns a
     * generator derived from (seed, index) and records land by index —
     * so the report is bit-for-bit identical at any jobs value; the
     * thread count is purely a throughput knob.
     */
    int jobs = 1;

    /**
     * Probability that one injection attempt hits a synthetic transient
     * infrastructure failure (drawn from the injection's own seeded
     * stream). Zero in normal use; tests raise it to exercise the
     * retry/backoff/skip machinery deterministically.
     */
    double infraFailProb = 0.0;

    /** Proxy power-estimate error fraction above which a corrupted
        counter read counts as SDC. */
    double sdcPowerTolFrac = 0.02;

    /**
     * Progress hook: called once per completed injection (after
     * retry/skip resolution) with the shared api::ProgressEvent shape
     * — index = injection id, key = injected component, status = the
     * outcome name (or "skipped"). The same signature the sweep runner
     * and the daemon's streamed progress events use, so one consumer
     * serves every producer. Calls are serialized under a mutex; with
     * jobs > 1 they arrive in completion order, not campaign order
     * (the report's records are always in campaign order regardless).
     * It must not throw. Empty disables.
     */
    api::ProgressFn onProgress;

    /** Structured validation of user-supplied campaign parameters. */
    common::Status validate() const;
};

/** Ledger of one injection. */
struct InjectionRecord
{
    int id = 0;
    std::string component;
    SiteClass cls = SiteClass::Control;
    uint64_t atInstr = 0;
    Outcome outcome = Outcome::Masked;
    int retries = 0;     ///< transient failures retried before success
    bool skipped = false; ///< retry budget exhausted; outcome invalid
};

/** Outcome histogram. */
struct OutcomeTally
{
    int injections = 0;
    int masked = 0;
    int corrected = 0;
    int sdc = 0;
    int crash = 0;

    void count(Outcome o);

    /** Observed masking rate (the SERMiner-comparable number). */
    double
    maskedFrac() const
    {
        return injections ? static_cast<double>(masked) / injections
                          : 0.0;
    }
};

/** SERMiner-predicted derating for one component at VT=10/50/90%. */
struct PredictedDerating
{
    double vt10 = 0.0;
    double vt50 = 0.0;
    double vt90 = 0.0;
};

/** Aggregate result of a campaign. */
struct CampaignReport
{
    uint64_t goldenCycles = 0;
    double goldenPowerPj = 0.0; ///< clean proxy power, pJ/cycle

    OutcomeTally total;
    std::map<std::string, OutcomeTally> perComponent;
    std::map<std::string, OutcomeTally> perClass;

    /** SERMiner predictions per injected component. */
    std::map<std::string, PredictedDerating> predicted;

    /** Population-wide SERMiner summary. */
    ras::DeratingSummary predictedSummary;

    std::vector<InjectionRecord> records;
    int skipped = 0;      ///< injections abandoned after retries
    int retriesTotal = 0; ///< transient failures absorbed by retry
};

/**
 * Executes campaigns. Construction is cheap; run() performs the golden
 * run, builds the site population, and executes every injection.
 */
class CampaignRunner
{
  public:
    CampaignRunner(const core::CoreConfig& cfg,
                   const workloads::WorkloadProfile& profile,
                   const CampaignSpec& spec);

    /**
     * Run the campaign. Invalid configuration or spec yields a
     * structured error; individual injection failures never do.
     */
    common::Expected<CampaignReport> run();

  private:
    /**
     * One seeded core run; @p afterRun (optional) reads model state
     * (e.g. poisoned-hit counts) before the model is destroyed.
     */
    core::RunResult runCore(
        uint64_t maxCycles, uint64_t injectAt,
        const std::function<void(core::CoreModel&)>& onInject,
        const std::function<void(core::CoreModel&)>& afterRun = {}) const;

    common::Expected<Outcome> executeOnce(const InjectionSite& site,
                                          common::Xoshiro& rng) const;

    Outcome injectCoreState(const InjectionSite& site,
                            common::Xoshiro& rng) const;
    Outcome injectRegisterFile(const InjectionSite& site,
                               common::Xoshiro& rng) const;
    Outcome injectMma(const InjectionSite& site,
                      common::Xoshiro& rng) const;
    Outcome injectProxyCounter(common::Xoshiro& rng) const;
    Outcome injectControl(const InjectionSite& site,
                          common::Xoshiro& rng) const;

    core::CoreConfig cfg_;
    workloads::WorkloadProfile profile_;
    CampaignSpec spec_;

    // Populated by run().
    core::RunResult golden_;
    double goldenPowerPj_ = 0.0;
    std::vector<std::string> counterKeys_; ///< corruptible counter names
    std::optional<SiteModel> sites_;
    std::optional<power::EnergyModel> energy_;
};

} // namespace p10ee::fault

#endif // P10EE_FAULT_CAMPAIGN_H
