/**
 * @file
 * Fault-injection model: sites, outcome taxonomy, and the SERMiner-
 * weighted site population.
 *
 * SERMiner (§III-E) *predicts* which latches can take a soft-error
 * harmlessly from clock utilization alone; this module closes the loop
 * by actually injecting transient single-bit upsets into the modeled
 * architectural state and observing what happens. Injection sites are
 * drawn from the same latch population SERMiner scores — each power
 * component's LatchGroups, weighted by latch count — so a campaign's
 * observed masking rate per component is directly comparable to the
 * derating SERMiner predicts for it (the Fig. 13/14 cross-validation).
 *
 * Outcome taxonomy (standard fault-injection classes):
 *  - masked:    the fault had no observable effect — golden and faulty
 *               runs are bit-identical;
 *  - corrected: observable divergence but no architected-state damage
 *               (predictor retrains, a lost cache line refetches, a
 *               recovery path catches the upset);
 *  - sdc:       silent data corruption — architected results or
 *               consumed readings differ without any error signal;
 *  - crash-timeout: the run died or blew its cycle budget.
 */

#ifndef P10EE_FAULT_FAULT_H
#define P10EE_FAULT_FAULT_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/config.h"
#include "core/result.h"
#include "ras/serminer.h"

namespace p10ee::fault {

/** How an injection into a component is physically executed. */
enum class SiteClass {
    BranchPredictor, ///< real bit flip in the live predictor tables
    CacheArray,      ///< real bit flip in a tag/translation array
    RegisterFile,    ///< dead-value analysis over the register stream
    MmaAccumulator,  ///< real bit flip in an MmaEngine accumulator
    ProxyCounter,    ///< corrupted power-proxy counter read-out
    Control,         ///< sequencer/issue control state (liveness model)
};

/** Stable lower-case name of @p c. */
const char* siteClassName(SiteClass c);

/** Outcome class of one injection. */
enum class Outcome { Masked, Corrected, Sdc, CrashTimeout };

/** Stable lower-case name of @p o. */
const char* outcomeName(Outcome o);

/** One sampled injection site. */
struct InjectionSite
{
    std::string component;  ///< power-component / SERMiner group name
    SiteClass cls = SiteClass::Control;
    double utilization = 0.0; ///< SERMiner latch-group utilization
    uint64_t atInstr = 0;     ///< measure-window instruction of upset
};

/**
 * The injectable latch population of one core design: SERMiner's latch
 * groups (from a golden-run analysis) plus the power-proxy counter
 * bank, sampled with probability proportional to latch population —
 * the uniform-over-latches upset model.
 */
class SiteModel
{
  public:
    /**
     * Analyze @p suite with SERMiner under @p cfg and build the site
     * population. Returns structured errors for an invalid config or
     * an empty suite (user/campaign input, never an abort).
     */
    static common::Expected<SiteModel> build(
        const core::CoreConfig& cfg,
        const std::vector<core::RunResult>& suite);

    /** Execution class a component's upsets belong to. */
    static SiteClass classify(const std::string& component);

    /**
     * Draw one site: a latch group weighted by population, and an
     * injection instant uniform over @p windowInstrs.
     */
    InjectionSite sample(common::Xoshiro& rng,
                         uint64_t windowInstrs) const;

    /** The latch groups backing the population. */
    const std::vector<ras::LatchGroup>& groups() const
    {
        return groups_;
    }

    /** Total kilolatches in the population. */
    double totalKlatches() const { return totalK_; }

    /**
     * SERMiner-predicted derated (soft-error-safe) fraction at
     * vulnerability threshold @p vt, over @p component's groups only —
     * the prediction a campaign's observed masking rate is validated
     * against. Returns 0 for an unknown component.
     */
    double predictedDerating(const std::string& component,
                             double vt) const;

    /** Summary over the whole population (VT = 10/50/90%). */
    ras::DeratingSummary predictedSummary() const;

  private:
    SiteModel(core::CoreConfig cfg, std::vector<ras::LatchGroup> groups);

    core::CoreConfig cfg_;
    std::vector<ras::LatchGroup> groups_;
    std::vector<double> cumK_; ///< cumulative kLatches over groups_
    double totalK_ = 0.0;
};

/** Name of the synthetic proxy-counter-bank component in a SiteModel. */
inline constexpr const char* kProxyCounterComponent = "proxy_counters";

} // namespace p10ee::fault

#endif // P10EE_FAULT_FAULT_H
