#include "fault/report.h"

#include "common/table.h"

namespace p10ee::fault {

namespace {

void
tallyRow(common::Table& t, const std::string& name,
         const OutcomeTally& o)
{
    t.row({name, std::to_string(o.injections),
           std::to_string(o.masked), std::to_string(o.corrected),
           std::to_string(o.sdc), std::to_string(o.crash),
           common::fmtPct(o.maskedFrac())});
}

} // namespace

void
addCampaignReport(const CampaignReport& rep, obs::JsonReport& out)
{
    out.addScalar("campaign.golden_cycles",
                  static_cast<double>(rep.goldenCycles));
    out.addScalar("campaign.golden_power_pj", rep.goldenPowerPj);
    out.addScalar("campaign.injections",
                  static_cast<double>(rep.total.injections));
    out.addScalar("campaign.masked_frac", rep.total.maskedFrac());
    out.addScalar("campaign.sdc", static_cast<double>(rep.total.sdc));
    out.addScalar("campaign.crash",
                  static_cast<double>(rep.total.crash));
    out.addScalar("campaign.corrected",
                  static_cast<double>(rep.total.corrected));
    out.addScalar("campaign.skipped",
                  static_cast<double>(rep.skipped));
    out.addScalar("campaign.retries",
                  static_cast<double>(rep.retriesTotal));
    out.addScalar("campaign.predicted.static",
                  rep.predictedSummary.staticDerated);
    out.addScalar("campaign.predicted.vt50",
                  rep.predictedSummary.runtime50);

    common::Table byComp("Outcomes by component");
    byComp.header({"component", "inj", "masked", "corrected", "sdc",
                   "crash", "masked%"});
    tallyRow(byComp, "TOTAL", rep.total);
    for (const auto& [name, tally] : rep.perComponent)
        tallyRow(byComp, name, tally);
    out.addTable(byComp);

    common::Table byClass("Outcomes by site class");
    byClass.header({"class", "inj", "masked", "corrected", "sdc",
                    "crash", "masked%"});
    for (const auto& [name, tally] : rep.perClass)
        tallyRow(byClass, name, tally);
    out.addTable(byClass);

    common::Table pred("SERMiner predicted derating");
    pred.header({"component", "vt10", "vt50", "vt90", "observed"});
    for (const auto& [name, p] : rep.predicted) {
        auto it = rep.perComponent.find(name);
        double obs =
            it != rep.perComponent.end() ? it->second.maskedFrac() : 0.0;
        pred.row({name, common::fmtPct(p.vt10), common::fmtPct(p.vt50),
                  common::fmtPct(p.vt90), common::fmtPct(obs)});
    }
    out.addTable(pred);

    // Outcome ledger as a series: x = injection id, y = outcome code
    // (0 masked, 1 corrected, 2 sdc, 3 crash, -1 skipped). Downstream
    // tooling can re-derive running masking-rate convergence from it.
    std::vector<double> x, y;
    x.reserve(rep.records.size());
    y.reserve(rep.records.size());
    for (const InjectionRecord& r : rep.records) {
        x.push_back(static_cast<double>(r.id));
        y.push_back(r.skipped ? -1.0
                              : static_cast<double>(
                                    static_cast<int>(r.outcome)));
    }
    out.addSeries("campaign.outcome", "code", std::move(x),
                  std::move(y));
}

} // namespace p10ee::fault
