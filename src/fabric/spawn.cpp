#include "fabric/spawn.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

namespace p10ee::fabric {

using common::Error;
using common::Expected;

namespace {

/** Parse "p10d: listening on 127.0.0.1:<port>" out of @p text. */
bool
parseAnnouncement(const std::string& text, uint16_t* port)
{
    const std::string marker = "p10d: listening on 127.0.0.1:";
    size_t at = text.find(marker);
    if (at == std::string::npos)
        return false;
    size_t p = at + marker.size();
    uint64_t value = 0;
    bool any = false;
    while (p < text.size() && text[p] >= '0' && text[p] <= '9') {
        value = value * 10 + static_cast<uint64_t>(text[p] - '0');
        if (value > 65535)
            return false;
        ++p;
        any = true;
    }
    // Require the line to be complete — a chunk boundary could split
    // the port digits, and parsing "8" out of "8080" would dial the
    // wrong daemon.
    if (!any || p >= text.size() || text[p] != '\n')
        return false;
    *port = static_cast<uint16_t>(value);
    return true;
}

} // namespace

Expected<SpawnedWorker>
spawnWorker(const std::string& p10dBinary,
            const std::vector<std::string>& extraArgs,
            int announceTimeoutMs)
{
    if (::access(p10dBinary.c_str(), X_OK) != 0)
        return Error::notFound("p10d binary not executable: " +
                               p10dBinary);

    int pipefd[2];
    if (::pipe(pipefd) != 0)
        return Error::transient(std::string("pipe(): ") +
                                std::strerror(errno));

    pid_t pid = ::fork();
    if (pid < 0) {
        ::close(pipefd[0]);
        ::close(pipefd[1]);
        return Error::transient(std::string("fork(): ") +
                                std::strerror(errno));
    }
    if (pid == 0) {
        // Child: stdout -> pipe, stderr inherited, exec the daemon.
        ::close(pipefd[0]);
        ::dup2(pipefd[1], STDOUT_FILENO);
        ::close(pipefd[1]);
        std::vector<std::string> args = {p10dBinary, "--port", "0"};
        args.insert(args.end(), extraArgs.begin(), extraArgs.end());
        std::vector<char*> argv;
        argv.reserve(args.size() + 1);
        for (std::string& a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(p10dBinary.c_str(), argv.data());
        // exec failed: exit hard without running parent atexit state.
        std::_Exit(127);
    }

    ::close(pipefd[1]);
    SpawnedWorker worker;
    worker.pid = pid;
    worker.stdoutFd = pipefd[0];

    std::string seen;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(announceTimeoutMs);
    for (;;) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) {
            reapWorker(worker, /*kill=*/true);
            return Error::timeout(
                "worker did not announce a listening port within " +
                std::to_string(announceTimeoutMs) + "ms");
        }
        const int waitMs = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - now)
                .count());
        pollfd pfd{worker.stdoutFd, POLLIN, 0};
        int rc = ::poll(&pfd, 1, waitMs > 100 ? 100 : waitMs);
        if (rc < 0 && errno != EINTR) {
            reapWorker(worker, /*kill=*/true);
            return Error::transient(std::string("poll(): ") +
                                    std::strerror(errno));
        }
        if (rc <= 0 || (pfd.revents & (POLLIN | POLLHUP)) == 0)
            continue;
        char buf[512];
        ssize_t n = ::read(worker.stdoutFd, buf, sizeof(buf));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            // Child died (or exec failed) before announcing.
            int status = reapWorker(worker);
            return Error::transient(
                "worker exited before announcing (wait status " +
                std::to_string(status) + ")");
        }
        seen.append(buf, static_cast<size_t>(n));
        if (parseAnnouncement(seen, &worker.port))
            return worker;
        if (seen.size() > 4096) {
            reapWorker(worker, /*kill=*/true);
            return Error::invalidArgument(
                "worker stdout is not a p10d announcement");
        }
    }
}

void
signalWorker(const SpawnedWorker& worker, int sig)
{
    if (worker.pid > 0)
        ::kill(worker.pid, sig);
}

int
reapWorker(SpawnedWorker& worker, bool kill)
{
    if (worker.pid <= 0)
        return -1;
    if (kill)
        ::kill(worker.pid, SIGKILL);
    // A SIGSTOPped child never exits; make reaping unconditional so a
    // chaos run that suspended a worker still cleans up.
    ::kill(worker.pid, SIGCONT);
    int status = -1;
    for (;;) {
        pid_t r = ::waitpid(worker.pid, &status, 0);
        if (r < 0 && errno == EINTR)
            continue;
        break;
    }
    worker.pid = -1;
    if (worker.stdoutFd >= 0) {
        ::close(worker.stdoutFd);
        worker.stdoutFd = -1;
    }
    return status;
}

} // namespace p10ee::fabric
