#include "fabric/fleet.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include <fcntl.h>
#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/rng.h"
#include "fabric/wire.h"
#include "obs/eventlog.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "service/protocol.h"
#include "sweep/pool.h"

namespace p10ee::fabric {

using common::Error;
using common::Expected;
using common::Status;

namespace {

Expected<WorkerAddress>
parseAddress(const std::string& text)
{
    const size_t colon = text.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= text.size())
        return Error::invalidArgument("worker address '" + text +
                                      "' must be host:port");
    WorkerAddress addr;
    addr.host = text.substr(0, colon);
    uint64_t port = 0;
    for (size_t i = colon + 1; i < text.size(); ++i) {
        const char c = text[i];
        if (c < '0' || c > '9')
            return Error::invalidArgument(
                "worker address '" + text + "' has a non-numeric port");
        port = port * 10 + static_cast<uint64_t>(c - '0');
        if (port > 65535)
            return Error::invalidArgument("worker address '" + text +
                                          "' port exceeds 65535");
    }
    if (port == 0)
        return Error::invalidArgument("worker address '" + text +
                                      "' port must be non-zero");
    addr.port = static_cast<uint16_t>(port);
    return addr;
}

/** Dial host:port with a connect timeout; -1 on any failure. */
int
tcpConnect(const std::string& host, uint16_t port, int timeoutMs)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                      &hints, &res) != 0)
        return -1;
    int fd = -1;
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        const int flags = ::fcntl(fd, F_GETFL, 0);
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
        int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
        if (rc != 0 && errno == EINPROGRESS) {
            pollfd pfd{fd, POLLOUT, 0};
            rc = ::poll(&pfd, 1, timeoutMs);
            if (rc == 1 && (pfd.revents & POLLOUT) != 0) {
                int err = 0;
                socklen_t len = sizeof(err);
                ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
                rc = err == 0 ? 0 : -1;
            } else {
                rc = -1;
            }
        }
        if (rc == 0) {
            ::fcntl(fd, F_SETFL, flags); // back to blocking
            break;
        }
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    return fd;
}

/** Outcome of one leased shard attempt. */
enum class Attempt
{
    Pending,
    Success,  ///< shard_done decoded and recorded
    SoftFail, ///< worker answered with an error event (stays healthy)
    HardFail  ///< lease/heartbeat/connection/protocol failure
};

/** Fleet fault-machinery instrumentation, interned once per process.
    Scheduling-dependent by construction — the registry feeds sidecars
    and the daemon's `metrics` reply, never the merged report. */
struct FleetMetrics
{
    obs::MetricId leaseExpiries =
        obs::metrics().counter("fleet.lease_expiries");
    obs::MetricId heartbeatSilences =
        obs::metrics().counter("fleet.heartbeat_silences");
    obs::MetricId redials = obs::metrics().counter("fleet.redials");
    obs::MetricId requeues = obs::metrics().counter("fleet.requeues");
    obs::MetricId retirements =
        obs::metrics().counter("fleet.retirements");
    obs::MetricId skips = obs::metrics().counter("fleet.skips");
};

FleetMetrics&
fleetMetrics()
{
    static FleetMetrics m;
    return m;
}

} // namespace

Expected<std::vector<WorkerAddress>>
parseWorkerList(const std::string& csv)
{
    std::vector<WorkerAddress> out;
    size_t start = 0;
    for (size_t pos = 0; pos <= csv.size(); ++pos) {
        if (pos == csv.size() || csv[pos] == ',') {
            const std::string entry = csv.substr(start, pos - start);
            start = pos + 1;
            if (entry.empty())
                continue;
            Expected<WorkerAddress> addr = parseAddress(entry);
            if (!addr)
                return addr.error();
            out.push_back(std::move(addr.value()));
        }
    }
    return out;
}

Expected<std::vector<WorkerAddress>>
parseFleetFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Error::notFound("cannot open fleet file '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    Expected<obs::JsonValue> docOr = obs::parseJson(buf.str());
    if (!docOr)
        return Error(docOr.error().code,
                     path + ": " + docOr.error().message);
    const obs::JsonValue& root = docOr.value();
    if (!root.isObject())
        return Error::invalidConfig(path +
                                    ": fleet file must be a JSON object");
    std::vector<WorkerAddress> out;
    for (const auto& [key, v] : root.object) {
        if (key == "workers") {
            if (!v.isArray())
                return Error::invalidConfig(
                    path + ": 'workers' must be an array of "
                           "\"host:port\" strings");
            for (const obs::JsonValue& e : v.array) {
                if (!e.isString())
                    return Error::invalidConfig(
                        path + ": 'workers' entries must be strings");
                Expected<WorkerAddress> addr = parseAddress(e.string);
                if (!addr)
                    return Error(addr.error().code,
                                 path + ": " + addr.error().message);
                out.push_back(std::move(addr.value()));
            }
        } else {
            // Same strictness as sweep specs: a typo must not silently
            // shrink a fleet.
            return Error::invalidConfig(path +
                                        ": unknown fleet file key '" +
                                        key + "'");
        }
    }
    return out;
}

/** One live worker socket plus its NDJSON line buffer. */
struct FleetRunner::WorkerConn
{
    int fd = -1;
    std::string pending;

    ~WorkerConn() { closeFd(); }

    bool open() const { return fd >= 0; }

    void
    closeFd()
    {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
        pending.clear();
    }

    bool
    sendLine(const std::string& line)
    {
        std::string framed = line;
        framed += '\n';
        size_t off = 0;
        while (off < framed.size()) {
            const ssize_t n = ::send(fd, framed.data() + off,
                                     framed.size() - off, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            off += static_cast<size_t>(n);
        }
        return true;
    }

    /** Read one line, waiting at most @p waitMs for more bytes.
        1 = line ready, 0 = timeout slice, -1 = EOF/error/oversize. */
    int
    readLine(std::string* out, int waitMs)
    {
        for (;;) {
            const size_t nl = pending.find('\n');
            if (nl != std::string::npos) {
                out->assign(pending, 0, nl);
                pending.erase(0, nl + 1);
                return 1;
            }
            if (pending.size() > service::kMaxRequestBytes)
                return -1; // unbounded line: protocol violation
            pollfd pfd{fd, POLLIN, 0};
            const int rc = ::poll(&pfd, 1, waitMs);
            if (rc == 0)
                return 0;
            if (rc < 0)
                return errno == EINTR ? 0 : -1;
            char buf[65536];
            const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return -1;
            }
            if (n == 0)
                return -1;
            pending.append(buf, static_cast<size_t>(n));
        }
    }
};

FleetRunner::FleetRunner(sweep::SweepSpec spec, FleetOptions opts)
    : spec_(std::move(spec)), opts_(std::move(opts))
{
}

uint64_t
FleetRunner::leaseDeadlineMs() const
{
    if (opts_.leaseMs > 0)
        return opts_.leaseMs;
    if (spec_.maxCycles > 0) {
        // ~1k simulated cycles per host microsecond is far below any
        // observed throughput, so the derived lease is generous; the
        // clamp keeps pathological specs from starving or stalling
        // the retry machinery.
        uint64_t ms = spec_.maxCycles / 1000;
        return std::min<uint64_t>(std::max<uint64_t>(ms, 5000), 120000);
    }
    return 120000;
}

void
FleetRunner::warn(const std::string& message)
{
    // Warnings leave the fleet as structured event-log lines (one JSON
    // object with deterministic key order), so a consumer tailing the
    // CLI's stderr can parse degradation events instead of scraping
    // prose. The callback signature stays a plain string — the CLI
    // keeps printing whatever arrives.
    if (opts_.onWarning)
        opts_.onWarning(obs::eventLogLine("warn", "fleet", message));
}

uint64_t
FleetRunner::traceNowUs() const
{
    if (!opts_.trace)
        return 0;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - traceEpoch_)
            .count());
}

void
FleetRunner::recordLocked(uint64_t idx, api::ShardResult result)
{
    if (done_[idx])
        return; // single-claim invariant should prevent this; be safe
    done_[idx] = true;
    results_[idx] = std::move(result);
    ++completed_;
}

void
FleetRunner::emitProgress(const api::ShardResult& s)
{
    if (!opts_.onProgress)
        return;
    api::ProgressEvent ev;
    ev.index = s.index;
    ev.total = shards_.size();
    ev.key = s.key;
    ev.ok = s.ok;
    ev.status = s.ok ? "ok" : common::errorCodeName(s.error.code);
    ev.retries = s.retries;
    ev.fromCache = s.fromCache;
    std::lock_guard<std::mutex> lock(progressMu_);
    opts_.onProgress(ev);
}

void
FleetRunner::runLocally(const std::vector<uint64_t>& indices)
{
    // The degraded path IS the single-process path: the same
    // SweepRunner::runShard, the same cache discipline, so results are
    // indistinguishable from fleet-executed ones in the merge.
    sweep::SweepRunner runner(spec_);
    sweep::ThreadPool pool(opts_.localJobs);
    pool.parallelFor(indices.size(), [&](uint64_t i) {
        const uint64_t idx = indices[i];
        const sweep::ShardSpec& shard = shards_[idx];
        api::ShardResult res;
        bool hit = false;
        if (cache_) {
            if (auto cached = cache_->lookup(spec_, shard)) {
                res = std::move(*cached);
                res.fromCache = true;
                hit = true;
            }
        }
        if (!hit) {
            res = runner.runShard(shard);
            if (cache_)
                (void)cache_->insert(spec_, shard, res);
        }
        const api::ShardResult copy = res;
        {
            std::lock_guard<std::mutex> lock(mu_);
            recordLocked(idx, std::move(res));
            ++stats_.localShards;
        }
        emitProgress(copy);
    });
}

void
FleetRunner::workerLoop(size_t workerIdx)
{
    const WorkerAddress& addr = opts_.workers[workerIdx];
    const std::string label =
        addr.host + ":" + std::to_string(addr.port);
    WorkerConn conn;
    // Flight recorder: this thread owns spans_[1 + workerIdx] alone
    // (the single-owner contract), with one lane per lifecycle stage.
    // worker.queue / worker.exec are reconstructed from the durations
    // the worker reports on shard_done, anchored at the arrival time —
    // no cross-process clock sync.
    const bool tracing = opts_.trace;
    obs::SpanRecorder* rec = tracing ? &spans_[1 + workerIdx] : nullptr;
    obs::TrackId dialLane, leaseLane, queueLane, execLane;
    if (tracing) {
        const std::string prefix =
            "w" + std::to_string(workerIdx) + " " + label + " ";
        dialLane = rec->lane(prefix + "dial");
        leaseLane = rec->lane(prefix + "lease");
        queueLane = rec->lane(prefix + "worker.queue");
        execLane = rec->lane(prefix + "worker.exec");
    }
    bool dialedBefore = false;
    // Jitter stream per worker — deterministic seeding (the fabric
    // idiom everywhere), but jitter only shapes timing, never results.
    common::Xoshiro jitterRng(
        common::splitSeed(spec_.seed ^ 0xF1EE7C0DEULL, workerIdx));
    const uint64_t leaseMs = leaseDeadlineMs();
    const uint64_t silenceMs =
        opts_.heartbeatMs > 0
            ? std::max<uint64_t>(
                  opts_.heartbeatMs *
                      static_cast<uint64_t>(
                          std::max(1, opts_.heartbeatMisses)),
                  1000)
            : leaseMs;

    int consecutiveConnectFailures = 0;
    int consecutiveStreamFailures = 0;
    bool retire = false;

    while (!retire) {
        uint64_t idx = 0;
        int attempt = 0;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] {
                return completed_ == results_.size() || !ready_.empty();
            });
            if (completed_ == results_.size())
                break;
            // Prefer a shard this worker has not yet failed on; when
            // only struck ones remain, retry anyway — the attempt
            // budget bounds the waste.
            size_t pick = 0;
            for (size_t i = 0; i < ready_.size(); ++i)
                if (struckBy_[ready_[i]].count(workerIdx) == 0) {
                    pick = i;
                    break;
                }
            idx = ready_[pick];
            ready_.erase(ready_.begin() +
                         static_cast<std::ptrdiff_t>(pick));
            attempt = attempts_[idx]++;
            ++stats_.dispatched;
        }

        // Ensure a connection (bounded exponential backoff + jitter).
        while (!conn.open() && !retire) {
            if (dialedBefore)
                obs::metrics().add(fleetMetrics().redials);
            const uint64_t dialBegin = tracing ? traceNowUs() : 0;
            const int fd = tcpConnect(addr.host, addr.port, 2000);
            dialedBefore = true;
            if (tracing)
                rec->add(dialLane, fd >= 0 ? "dial ok" : "dial fail",
                         dialBegin, traceNowUs());
            if (fd >= 0) {
                conn.fd = fd;
                consecutiveConnectFailures = 0;
                break;
            }
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++stats_.connectFailures;
            }
            if (++consecutiveConnectFailures >= opts_.connectAttempts) {
                retire = true;
                break;
            }
            const uint64_t shift = static_cast<uint64_t>(
                std::min(consecutiveConnectFailures - 1, 5));
            const uint64_t base = opts_.backoffBaseMs << shift;
            const uint64_t jitter = jitterRng.next() % (base + 1);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(base + jitter));
        }
        if (retire) {
            std::lock_guard<std::mutex> lock(mu_);
            --attempts_[idx]; // the attempt never left the coordinator
            --stats_.dispatched;
            ready_.push_front(idx);
            break;
        }

        const std::string reqId = "s" + std::to_string(idx) + "a" +
                                  std::to_string(attempt);
        Attempt outcome = Attempt::Pending;
        api::ShardResult shardResult;
        // Each attempt gets its own child span id, derived from the
        // (shard, attempt) slot so retries are distinguishable in the
        // merged timeline and ids never depend on scheduling.
        std::string traceWire;
        if (tracing)
            traceWire =
                traceRoot_
                    .child(idx * static_cast<uint64_t>(
                                     opts_.maxShardAttempts) +
                           static_cast<uint64_t>(attempt))
                    .str();
        const uint64_t leaseBegin = tracing ? traceNowUs() : 0;
        const char* failKind = "hard_fail";

        if (!conn.sendLine(shardRequestLine(reqId, spec_, idx,
                                            opts_.heartbeatMs,
                                            cache_ != nullptr,
                                            traceWire)))
            outcome = Attempt::HardFail;

        const auto leaseDeadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(leaseMs);
        auto lastActivity = std::chrono::steady_clock::now();
        while (outcome == Attempt::Pending) {
            const auto now = std::chrono::steady_clock::now();
            if (now >= leaseDeadline) {
                outcome = Attempt::HardFail; // lease expired
                failKind = "lease_expired";
                obs::metrics().add(fleetMetrics().leaseExpiries);
                break;
            }
            if (now - lastActivity >=
                std::chrono::milliseconds(silenceMs)) {
                outcome = Attempt::HardFail; // heartbeat silence
                failKind = "silence";
                obs::metrics().add(fleetMetrics().heartbeatSilences);
                break;
            }
            std::string line;
            const int rc = conn.readLine(&line, 100);
            if (rc == 0)
                continue;
            if (rc < 0) {
                outcome = Attempt::HardFail; // EOF / reset / oversize
                break;
            }
            Expected<WorkerEvent> evOr = WorkerEvent::parse(line);
            if (!evOr) {
                std::lock_guard<std::mutex> lock(mu_);
                ++stats_.protocolErrors;
                outcome = Attempt::HardFail;
                break;
            }
            const WorkerEvent& ev = evOr.value();
            lastActivity = std::chrono::steady_clock::now();
            if (ev.id != reqId)
                continue; // stale id: bytes flowed, liveness refreshed
            switch (ev.kind) {
              case WorkerEvent::Kind::Accepted:
              case WorkerEvent::Kind::Heartbeat:
                break;
              case WorkerEvent::Kind::CacheGet: {
                std::optional<std::vector<uint8_t>> bytes;
                if (cache_)
                    bytes = cache_->readBytes(ev.key);
                if (bytes) {
                    std::lock_guard<std::mutex> lock(mu_);
                    ++stats_.remoteCacheHits;
                }
                if (!conn.sendLine(cacheResultLine(
                        reqId, bytes.has_value(),
                        bytes ? *bytes : std::vector<uint8_t>{})))
                    outcome = Attempt::HardFail;
                break;
              }
              case WorkerEvent::Kind::CachePut: {
                // Validated temp+rename persistence; a bad payload is
                // rejected by writeBytes, not installed.
                if (cache_)
                    (void)cache_->writeBytes(ev.key, ev.data);
                std::lock_guard<std::mutex> lock(mu_);
                ++stats_.remoteCachePuts;
                break;
              }
              case WorkerEvent::Kind::Error:
                // The worker is healthy enough to answer; the shard
                // attempt failed. Strike without closing the socket.
                outcome = Attempt::SoftFail;
                break;
              case WorkerEvent::Kind::ShardDone: {
                if (ev.index != idx) {
                    std::lock_guard<std::mutex> lock(mu_);
                    ++stats_.protocolErrors;
                    outcome = Attempt::HardFail;
                    break;
                }
                auto decoded = sweep::ShardCache::decodeEntry(
                    ev.data, spec_, shards_[idx]);
                if (!decoded) {
                    std::lock_guard<std::mutex> lock(mu_);
                    ++stats_.protocolErrors;
                    outcome = Attempt::HardFail;
                    break;
                }
                shardResult = std::move(*decoded);
                shardResult.fromCache = ev.cached;
                if (cache_)
                    (void)cache_->writeBytes(
                        sweep::ShardCache::shardKey(spec_,
                                                    shards_[idx]),
                        ev.data);
                if (tracing && !ev.trace.empty()) {
                    // Anchor the worker-side episodes at the payload's
                    // arrival: [arrival - exec - queue, arrival - exec)
                    // waited in the worker's queue, [arrival - exec,
                    // arrival) executed. Clamped at the epoch so a
                    // skewed duration can never underflow.
                    const uint64_t arrival = traceNowUs();
                    const uint64_t execBegin =
                        arrival >= ev.execUs ? arrival - ev.execUs : 0;
                    const uint64_t queueBegin =
                        execBegin >= ev.queueUs ? execBegin - ev.queueUs
                                                : 0;
                    const std::string tag =
                        "s" + std::to_string(idx) +
                        (ev.cached ? " cache=hit" : " cache=miss");
                    rec->add(queueLane, tag, queueBegin, execBegin);
                    rec->add(execLane, tag, execBegin, arrival);
                }
                outcome = Attempt::Success;
                break;
              }
            }
        }

        if (tracing) {
            const char* outcomeName =
                outcome == Attempt::Success    ? "ok"
                : outcome == Attempt::SoftFail ? "soft_fail"
                                               : failKind;
            rec->add(leaseLane,
                     reqId + " " + outcomeName, leaseBegin,
                     traceNowUs());
        }

        if (outcome == Attempt::Success) {
            consecutiveStreamFailures = 0;
            const api::ShardResult copy = shardResult;
            {
                std::lock_guard<std::mutex> lock(mu_);
                recordLocked(idx, std::move(shardResult));
            }
            cv_.notify_all();
            emitProgress(copy);
            continue;
        }

        // Failed attempt: maybe close the socket, strike the worker on
        // this shard, and requeue or skip.
        if (outcome == Attempt::HardFail) {
            conn.closeFd();
            ++consecutiveStreamFailures;
        }
        api::ShardResult skipCopy;
        bool skipped = false;
        {
            std::lock_guard<std::mutex> lock(mu_);
            struckBy_[idx].insert(workerIdx);
            const bool skip =
                static_cast<int>(struckBy_[idx].size()) >=
                    opts_.maxShardWorkers ||
                attempts_[idx] >= opts_.maxShardAttempts;
            if (skip) {
                // Deterministic skip-and-record: the recorded result
                // is a function of the shard identity only — no
                // worker addresses, no attempt counts — so even a
                // degraded report's content never depends on
                // scheduling.
                ++stats_.skipped;
                obs::metrics().add(fleetMetrics().skips);
                api::ShardResult skipRes;
                skipRes.index = shards_[idx].index;
                skipRes.key = shards_[idx].key();
                skipRes.error = Error::transient(
                    "shard " + skipRes.key +
                    ": abandoned by the fleet after repeated worker "
                    "failures");
                skipCopy = skipRes;
                skipped = true;
                recordLocked(idx, std::move(skipRes));
            } else {
                ++stats_.reassigned;
                obs::metrics().add(fleetMetrics().requeues);
                ready_.push_back(idx);
            }
        }
        cv_.notify_all();
        if (skipped)
            emitProgress(skipCopy);
        if (consecutiveStreamFailures >= opts_.connectAttempts)
            retire = true;
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        --activeWorkers_;
        if (retire) {
            ++stats_.workersDead;
            obs::metrics().add(fleetMetrics().retirements);
        }
    }
    cv_.notify_all();
    if (retire)
        warn("fleet: worker " + label +
             " retired after repeated failures; redistributing its "
             "work");
}

Expected<sweep::SweepResult>
FleetRunner::run()
{
    if (!spec_.shardReportsDir.empty())
        return Error::invalidArgument(
            "fleet execution cannot honour shard_reports_dir: remote "
            "and cached shards cannot reproduce per-shard report "
            "files");
    const bool tracing = opts_.trace;
    traceJson_.clear();
    spans_.clear();
    obs::TrackId coordLane;
    if (tracing) {
        traceRoot_ = obs::TraceContext::derive(spec_.seed);
        traceEpoch_ = std::chrono::steady_clock::now();
        spans_ =
            std::vector<obs::SpanRecorder>(1 + opts_.workers.size());
        coordLane = spans_[0].lane("coordinator");
    }

    const uint64_t expandBegin = traceNowUs();
    Expected<std::vector<sweep::ShardSpec>> shardsOr = spec_.expand();
    if (!shardsOr)
        return shardsOr.error();
    shards_ = std::move(shardsOr.value());
    if (tracing)
        spans_[0].add(coordLane,
                      "expand " + std::to_string(shards_.size()) +
                          " shards",
                      expandBegin, traceNowUs());
    if (!opts_.cacheDir.empty()) {
        cache_ = std::make_unique<sweep::ShardCache>(opts_.cacheDir);
        if (Status st = cache_->prepare(); !st)
            return st.error();
    }

    const size_t total = shards_.size();
    results_.assign(total, api::ShardResult{});
    done_.assign(total, false);
    struckBy_.assign(total, {});
    attempts_.assign(total, 0);
    completed_ = 0;
    ready_.clear();
    stats_ = FleetStats{};
    stats_.workers = opts_.workers.size();

    if (opts_.workers.empty()) {
        warn("fleet: no workers configured; degrading to in-process "
             "execution of all " +
             std::to_string(total) + " shards");
        std::vector<uint64_t> all(total);
        for (uint64_t i = 0; i < total; ++i)
            all[i] = i;
        const uint64_t localBegin = traceNowUs();
        runLocally(all);
        if (tracing)
            spans_[0].add(coordLane,
                          "local " + std::to_string(total) + " shards",
                          localBegin, traceNowUs());
    } else {
        const uint64_t enqueueBegin = traceNowUs();
        for (uint64_t i = 0; i < total; ++i)
            ready_.push_back(i);
        if (tracing)
            spans_[0].add(coordLane,
                          "enqueue " + std::to_string(total) +
                              " shards",
                          enqueueBegin, traceNowUs());
        activeWorkers_ = static_cast<int>(opts_.workers.size());
        std::vector<std::thread> threads;
        threads.reserve(opts_.workers.size());
        for (size_t w = 0; w < opts_.workers.size(); ++w)
            threads.emplace_back([this, w] { workerLoop(w); });
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this, total] {
                return completed_ == total || activeWorkers_ == 0;
            });
        }
        for (std::thread& t : threads)
            t.join();
        std::vector<uint64_t> remaining;
        for (uint64_t i = 0; i < total; ++i)
            if (!done_[i])
                remaining.push_back(i);
        if (!remaining.empty()) {
            warn("fleet: all " +
                 std::to_string(opts_.workers.size()) +
                 " workers retired with " +
                 std::to_string(remaining.size()) +
                 " shards unfinished; degrading to in-process "
                 "execution");
            const uint64_t localBegin = traceNowUs();
            runLocally(remaining);
            if (tracing)
                spans_[0].add(coordLane,
                              "local " +
                                  std::to_string(remaining.size()) +
                                  " shards",
                              localBegin, traceNowUs());
        }
    }

    // Index-ordered fold, identical to SweepRunner::run()'s: the
    // aggregates come out the same no matter which worker (or the
    // local fallback) produced each shard.
    const uint64_t mergeBegin = traceNowUs();
    sweep::SweepResult result;
    result.shards = std::move(results_);
    for (const api::ShardResult& s : result.shards) {
        result.retriesTotal += static_cast<uint64_t>(s.retries);
        if (s.fromCache)
            ++result.cachedShards;
        else
            ++result.simulatedShards;
        if (s.error.code == common::ErrorCode::Cancelled)
            ++result.cancelledShards;
        if (s.ok) {
            ++result.okCount;
            // Same accounting as SweepRunner::run's fold: warmup is
            // simulated once per (core, SMT thread).
            result.simInstrs +=
                s.instrs +
                spec_.warmup *
                    static_cast<uint64_t>(shards_[s.index].smt) *
                    static_cast<uint64_t>(
                        std::max(shards_[s.index].cores, 1));
        } else {
            ++result.failed;
        }
    }
    if (tracing) {
        // Every worker thread has joined by now, so reading their
        // recorders is race-free; the merge itself is the last
        // coordinator span.
        spans_[0].add(coordLane,
                      "merge " +
                          std::to_string(result.shards.size()) +
                          " shards",
                      mergeBegin, traceNowUs());
        std::vector<const obs::SpanRecorder*> parts;
        parts.reserve(spans_.size());
        for (const obs::SpanRecorder& r : spans_)
            parts.push_back(&r);
        traceJson_ = obs::mergeFleetTrace(traceRoot_, parts);
    }
    return result;
}

obs::JsonReport
FleetRunner::fleetStatsReport(const sweep::SweepResult& result,
                              const FleetStats& stats,
                              const std::string& tool)
{
    obs::JsonReport report;
    report.meta().tool = tool;
    report.meta().git = obs::gitDescribe();
    report.meta().wallSeconds = 0.0;
    report.meta().hostMips = 0.0;
    // The cache-stats conservation triple first (validate_report.py
    // checks cached + simulated == shards on every report), then the
    // fleet's own provenance.
    report.addScalar("sweep.shards",
                     static_cast<double>(result.shards.size()));
    report.addScalar("sweep.cached",
                     static_cast<double>(result.cachedShards));
    report.addScalar("sweep.simulated",
                     static_cast<double>(result.simulatedShards));
    report.addScalar("fleet.workers",
                     static_cast<double>(stats.workers));
    report.addScalar("fleet.workers_dead",
                     static_cast<double>(stats.workersDead));
    report.addScalar("fleet.dispatched",
                     static_cast<double>(stats.dispatched));
    report.addScalar("fleet.reassigned",
                     static_cast<double>(stats.reassigned));
    report.addScalar("fleet.skipped",
                     static_cast<double>(stats.skipped));
    report.addScalar("fleet.remote_cache_hits",
                     static_cast<double>(stats.remoteCacheHits));
    report.addScalar("fleet.remote_cache_puts",
                     static_cast<double>(stats.remoteCachePuts));
    report.addScalar("fleet.local_shards",
                     static_cast<double>(stats.localShards));
    report.addScalar("fleet.connect_failures",
                     static_cast<double>(stats.connectFailures));
    report.addScalar("fleet.protocol_errors",
                     static_cast<double>(stats.protocolErrors));
    return report;
}

} // namespace p10ee::fabric
