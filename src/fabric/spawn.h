/**
 * @file
 * Spawn-local worker fleets: fork/exec `p10d` children on ephemeral
 * ports and manage their lifecycle.
 *
 * This is the fabric's test and single-host substrate. `p10fleet
 * --spawn N`, the chaos suite, and `bench_fleet` all need real worker
 * *processes* (a killed thread proves nothing about a killed worker),
 * so this module forks the actual daemon binary, parses the
 * "p10d: listening on 127.0.0.1:<port>" announcement from its piped
 * stdout, and hands back (pid, port) pairs the chaos harness can
 * SIGKILL / SIGSTOP mid-sweep.
 *
 * All failures are structured Errors (binary missing, exec failure,
 * announcement timeout); a failed spawn reaps its child.
 */

#ifndef P10EE_FABRIC_SPAWN_H
#define P10EE_FABRIC_SPAWN_H

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace p10ee::fabric {

/** One forked p10d child. */
struct SpawnedWorker
{
    pid_t pid = -1;
    uint16_t port = 0;
    /** Read end of the child's stdout pipe; kept open for the child's
        lifetime (closing it would SIGPIPE later writes) and closed by
        reapWorker(). */
    int stdoutFd = -1;
};

/**
 * Fork/exec @p p10dBinary with `--port 0` plus @p extraArgs, wait (up
 * to @p announceTimeoutMs) for the listening announcement, and return
 * the child. The child's stderr is inherited, so daemon diagnostics
 * land in the parent's stream.
 */
common::Expected<SpawnedWorker> spawnWorker(
    const std::string& p10dBinary,
    const std::vector<std::string>& extraArgs = {},
    int announceTimeoutMs = 15000);

/** Deliver @p sig to the worker (SIGKILL/SIGSTOP/SIGCONT/SIGTERM —
    the chaos harness's verbs). No-op for an already-reaped worker. */
void signalWorker(const SpawnedWorker& worker, int sig);

/**
 * Wait for the child to exit (delivering SIGKILL first when @p kill),
 * close its pipe, and return its wait status (-1 when already reaped).
 */
int reapWorker(SpawnedWorker& worker, bool kill = false);

} // namespace p10ee::fabric

#endif // P10EE_FABRIC_SPAWN_H
