/**
 * @file
 * The fleet coordinator: fault-tolerant distributed sweep execution
 * over N `p10d` workers.
 *
 * A FleetRunner shards a SweepSpec exactly as SweepRunner does — the
 * same expansion order, the same splitSeed streams, the same
 * index-ordered fold — and dispatches shards to workers as *leased*
 * jobs over the NDJSON protocol. The robustness layer:
 *
 *  - every lease carries a deadline (derived from the spec's
 *    max_cycles unless overridden) and a heartbeat expectation; a
 *    missed heartbeat window, an expired lease, a broken connection or
 *    a protocol violation marks the attempt failed, closes the
 *    connection, and returns the shard to the ready queue;
 *  - reconnects use bounded exponential backoff with jitter; a worker
 *    that stays unreachable (or keeps corrupting the stream) is
 *    retired from the fleet;
 *  - a shard that fails on maxShardWorkers distinct workers — or
 *    exhausts its total attempt budget — is recorded as skipped with
 *    the fault campaign's deterministic skip-and-record discipline:
 *    the recorded result is a function of the shard identity only,
 *    never of scheduling (no addresses, no attempt counts);
 *  - the coordinator serves its ShardCache directory as a remote tier:
 *    workers probe by key (cache_get) before simulating and publish
 *    fresh entries back (cache_put), so one warm cache feeds the whole
 *    fleet; entries are persisted with the cache's own validated
 *    temp+rename path;
 *  - degradation ladder: shards a dying fleet leaves behind are run
 *    in-process through the identical SweepRunner::runShard path, and
 *    a fleet with zero (configured or reachable) workers degrades to a
 *    plain local sweep with a structured warning — never a failed
 *    sweep.
 *
 * Determinism contract unchanged from PR 3: every recorded result is a
 * pure function of (spec, shard index) no matter which worker produced
 * it or how many times it was reassigned, so the merged report is
 * byte-identical to the single-process run whenever no shard was
 * skipped. Everything scheduling-dependent lands in FleetStats and the
 * fleet sidecar report, never in the merge.
 */

#ifndef P10EE_FABRIC_FLEET_H
#define P10EE_FABRIC_FLEET_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "api/types.h"
#include "common/error.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sweep/cache.h"
#include "sweep/runner.h"
#include "sweep/spec.h"

namespace p10ee::fabric {

/** One worker endpoint (p10d on a loopback or LAN address). */
struct WorkerAddress
{
    std::string host;
    uint16_t port = 0;
};

/** Parse "host:port,host:port,..." (the --workers flag). */
common::Expected<std::vector<WorkerAddress>> parseWorkerList(
    const std::string& csv);

/** Parse a fleet file: {"workers":["host:port",...]} — strict keys. */
common::Expected<std::vector<WorkerAddress>> parseFleetFile(
    const std::string& path);

struct FleetOptions
{
    std::vector<WorkerAddress> workers;

    /** Coordinator-side ShardCache directory, served to workers as
        the remote tier ("" = no fleet cache). */
    std::string cacheDir;

    /** Heartbeat interval asked of workers (0 disables liveness
        tracking — only the lease deadline then bounds an attempt). */
    uint64_t heartbeatMs = 200;
    /** Consecutive missed heartbeat intervals before a worker is
        suspect (the silence window, floored at 1s). */
    int heartbeatMisses = 10;

    /** Lease deadline per shard attempt in ms; 0 derives one from the
        spec's max_cycles (clamped to [5s, 120s]; unbounded specs get
        the full 120s). */
    uint64_t leaseMs = 0;

    /** Distinct workers a shard may fail on before it is skipped. */
    int maxShardWorkers = 3;
    /** Total attempt budget per shard (reassignments included). */
    int maxShardAttempts = 8;

    /** Consecutive connection failures before a worker is retired. */
    int connectAttempts = 3;
    /** Base of the reconnect backoff (doubles per failure, jittered,
        bounded at 32x). */
    uint64_t backoffBaseMs = 50;

    /** Pool threads for degraded in-process execution. */
    int localJobs = 1;

    /** Record a distributed flight trace: a TraceContext is derived
        from the spec seed, child contexts ride every shard request on
        the wire, and after run() the merged Perfetto timeline is
        available via traceJson(). Off by default — tracing must never
        change results (the determinism test pins this), only observe
        them. */
    bool trace = false;

    /** Progress stream (serialized; scheduling-dependent — see
        api::ProgressEvent). */
    api::ProgressFn onProgress;
    /** Structured warnings (degradation, worker retirement). Default
        is silent; the CLI wires stderr. */
    std::function<void(const std::string&)> onWarning;
};

/** Scheduling-dependent fleet telemetry (sidecar-only — never part of
    the merged report). */
struct FleetStats
{
    uint64_t workers = 0;         ///< configured fleet size
    uint64_t workersDead = 0;     ///< retired (unreachable/corrupt)
    uint64_t dispatched = 0;      ///< shard attempts sent to workers
    uint64_t reassigned = 0;      ///< attempts that failed and requeued
    uint64_t skipped = 0;         ///< shards recorded as skipped
    uint64_t remoteCacheHits = 0; ///< cache_get probes answered hit
    uint64_t remoteCachePuts = 0; ///< entries published by workers
    uint64_t localShards = 0;     ///< shards run in-process (degraded)
    uint64_t connectFailures = 0; ///< failed dial attempts
    uint64_t protocolErrors = 0;  ///< malformed worker lines / entries
};

class FleetRunner
{
  public:
    FleetRunner(sweep::SweepSpec spec, FleetOptions opts);
    ~FleetRunner() = default;

    FleetRunner(const FleetRunner&) = delete;
    FleetRunner& operator=(const FleetRunner&) = delete;

    /**
     * Execute the sweep across the fleet. Errors are pre-flight only
     * (invalid spec, unusable cache directory); worker loss, stragglers
     * and even a fully dead fleet degrade — the result always comes
     * back index-complete.
     */
    common::Expected<sweep::SweepResult> run();

    /** Telemetry of the last run() (valid after it returns). */
    const FleetStats& stats() const { return stats_; }

    const sweep::SweepSpec& spec() const { return spec_; }

    /**
     * Fleet provenance sidecar: the cache-stats conservation triple
     * (sweep.shards / sweep.cached / sweep.simulated) plus fleet.*
     * scalars. Separate from the merged report for the same reason
     * cacheStats() is — none of it is a function of the spec.
     */
    static obs::JsonReport fleetStatsReport(
        const sweep::SweepResult& result, const FleetStats& stats,
        const std::string& tool);

    /** Merged Perfetto trace JSON of the last run() — "" unless
        options.trace was set. One timeline reconciling every span the
        coordinator and all workers recorded for this run. */
    const std::string& traceJson() const { return traceJson_; }

    /** The root trace context of the last run() (invalid unless
        options.trace was set). */
    const obs::TraceContext& traceRoot() const { return traceRoot_; }

  private:
    struct WorkerConn; // one live socket + line buffer (fleet.cpp)

    void workerLoop(size_t workerIdx);
    /** Record a finished shard (success, failure or skip) exactly
        once; requeue duplicates are dropped. Under mu_. */
    void recordLocked(uint64_t idx, api::ShardResult result);
    void emitProgress(const api::ShardResult& result);
    void warn(const std::string& message);
    void runLocally(const std::vector<uint64_t>& indices);
    uint64_t leaseDeadlineMs() const;
    /** Microseconds since the run's trace epoch (0 when not tracing —
        callers only stamp spans behind opts_.trace). */
    uint64_t traceNowUs() const;

    sweep::SweepSpec spec_;
    FleetOptions opts_;
    FleetStats stats_;

    std::vector<sweep::ShardSpec> shards_;
    std::unique_ptr<sweep::ShardCache> cache_;

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<uint64_t> ready_;
    std::vector<bool> done_;
    std::vector<api::ShardResult> results_;
    /** Distinct worker indices each shard has failed on. */
    std::vector<std::set<size_t>> struckBy_;
    std::vector<int> attempts_;
    uint64_t completed_ = 0;
    int activeWorkers_ = 0;

    std::mutex progressMu_;

    // Flight-recorder state (all unused when opts_.trace is false).
    // spans_[0] is the coordinator's recorder; spans_[1 + w] belongs to
    // worker thread w — one SpanRecorder per thread honours the
    // single-owner contract, and the merge after join() reads them all.
    obs::TraceContext traceRoot_;
    std::chrono::steady_clock::time_point traceEpoch_;
    std::vector<obs::SpanRecorder> spans_;
    std::string traceJson_;
};

} // namespace p10ee::fabric

#endif // P10EE_FABRIC_FLEET_H
