/**
 * @file
 * Coordinator side of the fabric wire protocol.
 *
 * The worker side lives in `src/service/protocol.{h,cpp}`: the daemon
 * parses `shard` / `cache_result` requests and builds `heartbeat` /
 * `cache_get` / `cache_put` / `shard_done` events. This header is the
 * mirror image — the line builders a coordinator sends and the strict
 * parser for the event stream a worker produces.
 *
 * Parsing discipline matches the daemon's: a worker's output is
 * treated as hostile input (a worker can be killed mid-line, replaced
 * by a confused process on a recycled port, or simply buggy), so every
 * event kind has a closed key set, every field is type-checked, hex
 * payloads must decode, and anything else is a structured
 * `common::Error` the coordinator turns into a worker strike — never
 * an exception across the wire, never an abort.
 */

#ifndef P10EE_FABRIC_WIRE_H
#define P10EE_FABRIC_WIRE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "sweep/spec.h"

namespace p10ee::fabric {

// --- Request line builders (coordinator -> worker, no newline) ---

/**
 * A leased shard dispatch: run expansion index @p index of @p spec.
 * The spec travels as its canonical JSON (SweepSpec::toJson), so the
 * worker re-expands the identical grid and both sides agree on shard
 * identity by construction. @p heartbeatMs asks the worker to emit
 * liveness events while executing (0 = none); @p remoteCache tells it
 * the coordinator will answer cache_get probes. A non-empty @p trace
 * (a TraceContext wire string, obs/trace.h) turns on distributed
 * tracing for this shard: the worker echoes it on heartbeat and
 * shard_done and reports queue/exec durations on the latter.
 */
std::string shardRequestLine(const std::string& id,
                             const sweep::SweepSpec& spec,
                             uint64_t index, uint64_t heartbeatMs,
                             bool remoteCache,
                             const std::string& trace = "");

/** Answer to a worker's cache_get: @p entry is ignored on a miss. */
std::string cacheResultLine(const std::string& id, bool hit,
                            const std::vector<uint8_t>& entry);

// --- Worker event stream ---

/** One parsed worker event (see protocol.h for the line shapes). */
struct WorkerEvent
{
    enum class Kind
    {
        Accepted,  ///< request entered the worker's queue
        Heartbeat, ///< liveness while a shard executes
        CacheGet,  ///< worker probes the coordinator's cache tier
        CachePut,  ///< worker publishes a freshly simulated entry
        ShardDone, ///< terminal: data is the encoded ShardCache entry
        Error      ///< terminal: structured failure for this request
    };

    Kind kind = Kind::Heartbeat;
    std::string id;

    uint64_t key = 0;          ///< cache_get / cache_put
    std::vector<uint8_t> data; ///< cache_put / shard_done payload
    uint64_t index = 0;        ///< shard_done: shard index
    bool cached = false;       ///< shard_done: served from a cache tier
    common::Error error;       ///< error: code + message

    /** heartbeat / shard_done: echoed trace wire string ("" = off).
        On shard_done a trace comes with worker-side queue-wait and
        execution durations; the three keys are valid only together. */
    std::string trace;
    uint64_t queueUs = 0; ///< shard_done: worker queue wait (us)
    uint64_t execUs = 0;  ///< shard_done: worker execution time (us)

    /**
     * Parse one worker line. Strict: closed key set per event kind,
     * typed fields, bounded length, decodable hex. Any violation is an
     * Error — the caller's cue to mark the worker suspect.
     */
    static common::Expected<WorkerEvent> parse(std::string_view line);
};

} // namespace p10ee::fabric

#endif // P10EE_FABRIC_WIRE_H
