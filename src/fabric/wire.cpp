#include "fabric/wire.h"

#include "common/hex.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "service/protocol.h"

namespace p10ee::fabric {

using common::Error;
using common::Expected;

std::string
shardRequestLine(const std::string& id, const sweep::SweepSpec& spec,
                 uint64_t index, uint64_t heartbeatMs, bool remoteCache,
                 const std::string& trace)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("type").value("shard");
    w.key("id").value(id);
    w.key("index").value(index);
    w.key("heartbeat_ms").value(heartbeatMs);
    w.key("remote_cache").value(remoteCache);
    if (!trace.empty())
        w.key("trace").value(trace);
    w.endObject();
    // The spec is embedded as its canonical toJson() rendering — the
    // same splice idiom doneLine() uses for reports.
    std::string line = w.str();
    line.pop_back(); // drop the closing '}'
    line += ",\"spec\":";
    line += spec.toJson();
    line += "}";
    return line;
}

std::string
cacheResultLine(const std::string& id, bool hit,
                const std::vector<uint8_t>& entry)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("type").value("cache_result");
    w.key("id").value(id);
    w.key("hit").value(hit);
    if (hit)
        w.key("data").value(common::hexEncode(entry));
    w.endObject();
    return w.str();
}

namespace {

/** Closed-key-set check: every member of @p root must be listed. */
common::Status
onlyKeys(const obs::JsonValue& root,
         std::initializer_list<std::string_view> allowed)
{
    for (const auto& [key, v] : root.object) {
        (void)v;
        bool ok = false;
        for (std::string_view a : allowed)
            if (key == a)
                ok = true;
        if (!ok)
            return Error::invalidArgument("unknown worker event key '" +
                                          key + "'");
    }
    return common::okStatus();
}

Expected<uint64_t>
readKeyField(const obs::JsonValue& root)
{
    const obs::JsonValue* k = root.find("key");
    if (k == nullptr || !k->isString())
        return Error::invalidArgument(
            "worker event 'key' must be a hex string");
    return service::parseCacheKeyHex(k->string);
}

/** Optional "trace" member: absent -> "", present -> must be exactly
    the TraceContext wire shape. Anything else is a protocol
    violation, same as a malformed cache key. */
Expected<std::string>
readTraceField(const obs::JsonValue& root)
{
    const obs::JsonValue* tr = root.find("trace");
    if (tr == nullptr)
        return std::string();
    if (!tr->isString() || !obs::TraceContext::parse(tr->string))
        return Error::invalidArgument(
            "worker event 'trace' must be 32 lowercase hex chars, "
            "'-', 16 lowercase hex chars");
    return tr->string;
}

Expected<std::vector<uint8_t>>
readDataField(const obs::JsonValue& root)
{
    const obs::JsonValue* d = root.find("data");
    if (d == nullptr || !d->isString())
        return Error::invalidArgument(
            "worker event 'data' must be a hex string");
    auto bytes = common::hexDecode(d->string);
    if (!bytes)
        return Error::invalidArgument(
            "worker event 'data' is not valid hex");
    return std::move(*bytes);
}

} // namespace

Expected<WorkerEvent>
WorkerEvent::parse(std::string_view line)
{
    if (line.size() > service::kMaxRequestBytes)
        return Error::invalidArgument(
            "worker event exceeds " +
            std::to_string(service::kMaxRequestBytes) + " bytes (" +
            std::to_string(line.size()) + ")");
    Expected<obs::JsonValue> docOr = obs::parseJson(line);
    if (!docOr)
        return Error::invalidArgument("malformed worker event JSON: " +
                                      docOr.error().message);
    const obs::JsonValue& root = docOr.value();
    if (!root.isObject())
        return Error::invalidArgument(
            "worker event must be a JSON object");

    const obs::JsonValue* ev = root.find("event");
    if (ev == nullptr || !ev->isString())
        return Error::invalidArgument(
            "worker event is missing 'event'");
    const obs::JsonValue* id = root.find("id");
    if (id == nullptr || !id->isString())
        return Error::invalidArgument("worker event is missing 'id'");

    WorkerEvent out;
    out.id = id->string;

    if (ev->string == "accepted") {
        out.kind = Kind::Accepted;
        const obs::JsonValue* qd = root.find("queue_depth");
        if (qd == nullptr || !qd->isNumber())
            return Error::invalidArgument(
                "accepted event 'queue_depth' must be a number");
        if (auto st = onlyKeys(root, {"id", "event", "queue_depth"});
            !st)
            return st.error();
        return out;
    }
    if (ev->string == "heartbeat") {
        out.kind = Kind::Heartbeat;
        Expected<std::string> traceOr = readTraceField(root);
        if (!traceOr)
            return traceOr.error();
        out.trace = std::move(traceOr.value());
        if (auto st = onlyKeys(root, {"id", "event", "trace"}); !st)
            return st.error();
        return out;
    }
    if (ev->string == "cache_get") {
        out.kind = Kind::CacheGet;
        Expected<uint64_t> keyOr = readKeyField(root);
        if (!keyOr)
            return keyOr.error();
        out.key = keyOr.value();
        if (auto st = onlyKeys(root, {"id", "event", "key"}); !st)
            return st.error();
        return out;
    }
    if (ev->string == "cache_put") {
        out.kind = Kind::CachePut;
        Expected<uint64_t> keyOr = readKeyField(root);
        if (!keyOr)
            return keyOr.error();
        out.key = keyOr.value();
        Expected<std::vector<uint8_t>> dataOr = readDataField(root);
        if (!dataOr)
            return dataOr.error();
        out.data = std::move(dataOr.value());
        if (auto st = onlyKeys(root, {"id", "event", "key", "data"});
            !st)
            return st.error();
        return out;
    }
    if (ev->string == "shard_done") {
        out.kind = Kind::ShardDone;
        const obs::JsonValue* idx = root.find("index");
        if (idx == nullptr)
            return Error::invalidArgument(
                "shard_done event is missing 'index'");
        Expected<uint64_t> idxOr = idx->asU64("shard_done 'index'");
        if (!idxOr)
            return idxOr.error();
        out.index = idxOr.value();
        const obs::JsonValue* cached = root.find("cached");
        if (cached == nullptr || !cached->isBool())
            return Error::invalidArgument(
                "shard_done event 'cached' must be a boolean");
        out.cached = cached->boolean;
        Expected<std::vector<uint8_t>> dataOr = readDataField(root);
        if (!dataOr)
            return dataOr.error();
        out.data = std::move(dataOr.value());
        Expected<std::string> traceOr = readTraceField(root);
        if (!traceOr)
            return traceOr.error();
        out.trace = std::move(traceOr.value());
        // queue_us / exec_us travel only alongside a trace: an untraced
        // shard_done carrying timings (or a traced one missing them) is
        // a protocol violation.
        const obs::JsonValue* qu = root.find("queue_us");
        const obs::JsonValue* xu = root.find("exec_us");
        if (out.trace.empty()) {
            if (qu != nullptr || xu != nullptr)
                return Error::invalidArgument(
                    "shard_done queue_us/exec_us require 'trace'");
        } else {
            if (qu == nullptr || xu == nullptr)
                return Error::invalidArgument(
                    "traced shard_done must carry queue_us and "
                    "exec_us");
            Expected<uint64_t> quOr = qu->asU64("shard_done 'queue_us'");
            if (!quOr)
                return quOr.error();
            out.queueUs = quOr.value();
            Expected<uint64_t> xuOr = xu->asU64("shard_done 'exec_us'");
            if (!xuOr)
                return xuOr.error();
            out.execUs = xuOr.value();
        }
        if (auto st = onlyKeys(root,
                               {"id", "event", "index", "cached",
                                "data", "trace", "queue_us",
                                "exec_us"});
            !st)
            return st.error();
        return out;
    }
    if (ev->string == "error") {
        out.kind = Kind::Error;
        const obs::JsonValue* code = root.find("code");
        const obs::JsonValue* msg = root.find("message");
        if (code == nullptr || !code->isString() || msg == nullptr ||
            !msg->isString())
            return Error::invalidArgument(
                "error event must carry string 'code' and 'message'");
        if (auto st =
                onlyKeys(root, {"id", "event", "code", "message"});
            !st)
            return st.error();
        // The remote code collapses into Transient for retry purposes:
        // the coordinator's decision is the same for every remote
        // failure kind (strike + redistribute), and the original code
        // name survives in the message.
        out.error = Error::transient("worker error [" + code->string +
                                     "]: " + msg->string);
        return out;
    }
    return Error::invalidArgument("unknown worker event '" +
                                  ev->string + "'");
}

} // namespace p10ee::fabric
