/**
 * @file
 * SERMiner: power-aware latch reliability modeling (paper §III-E).
 *
 * SERMiner estimates soft-error vulnerability from latch-level switching
 * observed in simulation, using clock utilization as the vulnerability
 * proxy (fine clock gating means a latch is refreshed every clocked
 * cycle). Latches are classified as:
 *  - static-derated: never clocked across the evaluated workloads
 *    (configuration latches and fully function-gated units);
 *  - runtime-derated at a Vulnerability Threshold VT: switching below
 *    the minimum value 1-VT, so higher VT classifies more latches as
 *    vulnerable.
 *
 * The latch population mirrors the power model's component
 * decomposition: each component contributes sub-groups whose clock
 * multipliers follow the design's gating granularity — coarse on
 * POWER9 (latches mostly follow their unit), fine on POWER10 (many
 * groups clock rarely). That is the mechanism behind Fig. 14: higher
 * runtime derating on POWER10 despite a higher latch count, and ~10%
 * lower static derating (fine-grained designs leave fewer latches that
 * never clock at all).
 */

#ifndef P10EE_RAS_SERMINER_H
#define P10EE_RAS_SERMINER_H

#include <string>
#include <vector>

#include "core/config.h"
#include "core/result.h"

namespace p10ee::ras {

/** One latch sub-group with its observed switching utilization. */
struct LatchGroup
{
    std::string component;
    double kLatches = 0.0;
    double utilization = 0.0; ///< max switching across the suite, [0,1]
};

/**
 * Cost of a protection policy at one vulnerability threshold: harden
 * every latch classified vulnerable (utilization >= 1-VT).
 */
struct ProtectionReport
{
    double protectedFrac = 0.0;  ///< latch weight hardened
    double powerOverheadFrac = 0.0; ///< vs unprotected clock power
    double residualRisk = 0.0;   ///< utilization-weighted unprotected
};

/** Derating summary for one testcase suite. */
struct DeratingSummary
{
    double staticDerated = 0.0; ///< weight fraction never switching
    double runtime10 = 0.0;     ///< derated fraction at VT=10%
    double runtime50 = 0.0;
    double runtime90 = 0.0;
};

/** SERMiner analysis over one core design. */
class SerMiner
{
  public:
    explicit SerMiner(const core::CoreConfig& cfg);

    /**
     * Latch-group switching over a testcase suite (utilization is the
     * max across runs, per the vulnerable-in-any-workload rule).
     */
    std::vector<LatchGroup> analyze(
        const std::vector<core::RunResult>& suite) const;

    /** Fraction of latch weight with zero switching. */
    static double staticDeratedFrac(const std::vector<LatchGroup>& groups);

    /**
     * Fraction of latch weight derated at @p vt: switching below the
     * 1-vt vulnerability cutoff (static-derated latches included).
     */
    static double deratedFrac(const std::vector<LatchGroup>& groups,
                              double vt);

    /** Static + VT=10/50/90 summary. */
    static DeratingSummary summarize(const std::vector<LatchGroup>& g);

    /** Total kilolatches in the design. */
    double totalKlatches() const;

    /**
     * Cost of protecting all latches vulnerable at @p vt: hardened
     * latches pay @p hardeningCost extra clock/area power (paper
     * §III-E: SERMiner exists to minimize exactly this overhead).
     */
    static ProtectionReport protectionCost(
        const std::vector<LatchGroup>& groups, double vt,
        double hardeningCost = 0.25);

    /**
     * Components ranked by their contribution to unprotected risk
     * (utilization-weighted latch population) — the "key components of
     * interest ... that would most benefit from protection".
     */
    static std::vector<std::pair<std::string, double>> rankComponents(
        const std::vector<LatchGroup>& groups);

  private:
    core::CoreConfig cfg_;
    /** Sub-groups per component. */
    static constexpr int kGroups = 16;
};

} // namespace p10ee::ras

#endif // P10EE_RAS_SERMINER_H
