#include "ras/serminer.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/assert.h"
#include "power/components.h"

namespace p10ee::ras {

namespace {

double
statOf(const common::StatSnapshot& stats, const std::string& name)
{
    auto it = stats.find(name);
    return it == stats.end() ? 0.0 : static_cast<double>(it->second);
}

/**
 * Average operand-toggle factor of a run: the zero/random data axis of
 * the Microprobe testcases scales observed latch switching.
 */
double
toggleFactor(const core::RunResult& run)
{
    double sw = statOf(run.stats, "sw.alu") + statOf(run.stats, "sw.fp") +
                statOf(run.stats, "sw.vsu") + statOf(run.stats, "sw.ls") +
                statOf(run.stats, "sw.mma");
    double ops = statOf(run.stats, "commit.op");
    if (ops <= 0.0)
        return 0.7;
    double toggle = sw / (1024.0 * ops); // mean per-op toggle in [0,1]
    return std::clamp(0.3 + 1.4 * toggle, 0.2, 1.0);
}

} // namespace

SerMiner::SerMiner(const core::CoreConfig& cfg) : cfg_(cfg) {}

double
SerMiner::totalKlatches() const
{
    double total = 0.0;
    for (const auto& c : power::coreComponents(cfg_))
        total += c.kLatches;
    return total;
}

std::vector<LatchGroup>
SerMiner::analyze(const std::vector<core::RunResult>& suite) const
{
    P10_ASSERT(!suite.empty(), "empty testcase suite");
    auto comps = power::coreComponents(cfg_);

    // Gating-granularity shape: with fine gating (high quality) most
    // sub-groups clock only when their specific function runs, so the
    // multiplier distribution is bottom-heavy; with coarse gating the
    // whole unit's latches follow the unit clock.
    double q = cfg_.clockGateQuality;
    double shape = 0.6 + 2.0 * q;
    // Fraction of an unused unit's groups that are fully function-gated
    // (never clock). Fine-grained designs keep more shared glue that
    // occasionally clocks, leaving fewer never-clocking latches — the
    // mechanism behind POWER10's ~10% lower static derating (Fig. 14).
    int funcOffGroups = static_cast<int>(
        std::lround((1.0 - 0.35 * q) * (kGroups - 1)));
    // Coarse-gated designs also carry more pure-configuration latches
    // (mode registers replicated through the unit).
    int configGroups = q < 0.6 ? 2 : 1;

    std::vector<LatchGroup> groups;
    for (const auto& comp : comps) {
        if (comp.kLatches <= 0.0)
            continue;
        // Max activity (per-cycle clock-driver events) across the suite.
        double act = 0.0;
        double tgl = 0.0;
        for (const auto& run : suite) {
            double cyc =
                static_cast<double>(run.cycles ? run.cycles : 1);
            double a = 0.0;
            for (const auto& d : comp.clockDrivers)
                a += d.weight * statOf(run.stats, d.stat) / cyc;
            if (a > act) {
                act = a;
                tgl = toggleFactor(run);
            }
        }
        bool unitUsed = act > 1e-6;

        for (int g = 0; g < kGroups; ++g) {
            LatchGroup lg;
            lg.component = comp.name;
            lg.kLatches = comp.kLatches / kGroups;
            if (g < configGroups) {
                // Configuration latches: set at initialization, never
                // switch during execution.
                lg.utilization = 0.0;
            } else if (!unitUsed) {
                // Unused unit: function-gated groups never clock; the
                // remainder is residual glue at the base clock fraction.
                lg.utilization = g <= funcOffGroups
                    ? 0.0
                    : std::min(1.0, comp.baseClockFrac + 0.02);
            } else {
                double m = 4.0 * std::pow(
                    (static_cast<double>(g)) / (kGroups - 1), shape);
                lg.utilization = std::min(
                    1.0, (comp.baseClockFrac + act * m) * tgl);
            }
            groups.push_back(lg);
        }
    }
    return groups;
}

double
SerMiner::staticDeratedFrac(const std::vector<LatchGroup>& groups)
{
    double off = 0.0;
    double total = 0.0;
    for (const auto& g : groups) {
        total += g.kLatches;
        if (g.utilization <= 0.0)
            off += g.kLatches;
    }
    return total > 0.0 ? off / total : 0.0;
}

double
SerMiner::deratedFrac(const std::vector<LatchGroup>& groups, double vt)
{
    P10_ASSERT(vt > 0.0 && vt <= 1.0, "vulnerability threshold");
    double cutoff = 1.0 - vt; // minimum switching to count as vulnerable
    double derated = 0.0;
    double total = 0.0;
    for (const auto& g : groups) {
        total += g.kLatches;
        if (g.utilization < cutoff)
            derated += g.kLatches;
    }
    return total > 0.0 ? derated / total : 0.0;
}

ProtectionReport
SerMiner::protectionCost(const std::vector<LatchGroup>& groups, double vt,
                         double hardeningCost)
{
    P10_ASSERT(vt > 0.0 && vt <= 1.0, "vulnerability threshold");
    double cutoff = 1.0 - vt;
    double total = 0.0;
    double hardened = 0.0;
    double clockWeighted = 0.0;
    double hardenedClock = 0.0;
    double residual = 0.0;
    for (const auto& g : groups) {
        total += g.kLatches;
        clockWeighted += g.kLatches * g.utilization;
        if (g.utilization >= cutoff) {
            hardened += g.kLatches;
            hardenedClock += g.kLatches * g.utilization;
        } else {
            residual += g.kLatches * g.utilization;
        }
    }
    ProtectionReport r;
    if (total > 0.0) {
        r.protectedFrac = hardened / total;
        // Hardened latches cost extra power in proportion to their
        // clocked activity.
        r.powerOverheadFrac = clockWeighted > 0.0
            ? hardeningCost * hardenedClock / clockWeighted
            : 0.0;
        r.residualRisk = clockWeighted > 0.0
            ? residual / clockWeighted
            : 0.0;
    }
    return r;
}

std::vector<std::pair<std::string, double>>
SerMiner::rankComponents(const std::vector<LatchGroup>& groups)
{
    std::map<std::string, double> risk;
    for (const auto& g : groups)
        risk[g.component] += g.kLatches * g.utilization;
    std::vector<std::pair<std::string, double>> ranked(risk.begin(),
                                                       risk.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                  return a.second > b.second;
              });
    return ranked;
}

DeratingSummary
SerMiner::summarize(const std::vector<LatchGroup>& g)
{
    DeratingSummary s;
    s.staticDerated = staticDeratedFrac(g);
    s.runtime10 = deratedFrac(g, 0.10);
    s.runtime50 = deratedFrac(g, 0.50);
    s.runtime90 = deratedFrac(g, 0.90);
    return s;
}

} // namespace p10ee::ras
