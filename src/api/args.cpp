#include "api/args.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace p10ee::api {

using common::Error;
using common::Status;

namespace {

/** Strict base-10 u64 parse: the whole string or nothing. */
bool
parseU64(const char* s, uint64_t& out)
{
    if (s == nullptr || *s == '\0' || *s == '-' || *s == '+')
        return false;
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (errno != 0 || end == s || *end != '\0')
        return false;
    out = v;
    return true;
}

} // namespace

ArgParser::ArgParser(std::string tool, std::string summary)
    : tool_(std::move(tool)), summary_(std::move(summary))
{}

ArgParser&
ArgParser::str(const std::string& name, std::string* out,
               const std::string& metavar, const std::string& help)
{
    Flag f;
    f.name = name;
    f.kind = Kind::Str;
    f.metavar = metavar;
    f.help = help;
    f.strOut = out;
    flags_.push_back(std::move(f));
    return *this;
}

ArgParser&
ArgParser::u64(const std::string& name, uint64_t* out,
               const std::string& help, uint64_t min, uint64_t max,
               bool* wasSet)
{
    Flag f;
    f.name = name;
    f.kind = Kind::U64;
    f.metavar = "n";
    f.help = help;
    f.u64Out = out;
    f.u64Min = min;
    f.u64Max = max;
    f.wasSet = wasSet;
    flags_.push_back(std::move(f));
    return *this;
}

ArgParser&
ArgParser::intRange(const std::string& name, int* out, int min, int max,
                    const std::string& help)
{
    Flag f;
    f.name = name;
    f.kind = Kind::Int;
    f.metavar = "n";
    f.help = help;
    f.intOut = out;
    f.intMin = min;
    f.intMax = max;
    flags_.push_back(std::move(f));
    return *this;
}

ArgParser&
ArgParser::boolean(const std::string& name, bool* out,
                   const std::string& help)
{
    Flag f;
    f.name = name;
    f.kind = Kind::Bool;
    f.help = help;
    f.boolOut = out;
    flags_.push_back(std::move(f));
    return *this;
}

ArgParser&
ArgParser::alias(const std::string& alias, const std::string& canonical)
{
    Flag* f = find(canonical);
    P10_ASSERT(f != nullptr,
               "ArgParser::alias on an unregistered canonical flag");
    f->aliases.push_back(alias);
    return *this;
}

ArgParser&
ArgParser::deprecatedAlias(const std::string& alias,
                           const std::string& canonical)
{
    Flag* f = find(canonical);
    P10_ASSERT(f != nullptr,
               "ArgParser::deprecatedAlias on an unregistered "
               "canonical flag");
    f->deprecatedAliases.push_back(alias);
    return *this;
}

ArgParser::Flag*
ArgParser::find(const std::string& name, bool* deprecated)
{
    if (deprecated != nullptr)
        *deprecated = false;
    for (Flag& f : flags_) {
        if (f.name == name)
            return &f;
        for (const std::string& a : f.aliases)
            if (a == name)
                return &f;
        for (const std::string& a : f.deprecatedAliases) {
            if (a == name) {
                if (deprecated != nullptr)
                    *deprecated = true;
                return &f;
            }
        }
    }
    return nullptr;
}

Status
ArgParser::parse(int argc, char** argv)
{
    helpRequested_ = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            helpRequested_ = true;
            return common::okStatus();
        }
        if (arg.rfind("--", 0) != 0)
            return Error::invalidArgument(
                "unexpected positional argument '" + arg + "'");
        bool deprecated = false;
        Flag* f = find(arg, &deprecated);
        if (f == nullptr)
            return Error::invalidArgument("unknown option '" + arg +
                                          "' (see --help)");
        if (deprecated)
            std::fprintf(stderr,
                         "%s: warning: '%s' is deprecated, use '%s'\n",
                         tool_.c_str(), arg.c_str(), f->name.c_str());
        if (f->kind == Kind::Bool) {
            *f->boolOut = true;
            continue;
        }
        if (i + 1 >= argc)
            return Error::invalidArgument(arg + " needs a value");
        const char* value = argv[++i];
        switch (f->kind) {
          case Kind::Str:
            *f->strOut = value;
            break;
          case Kind::U64: {
            uint64_t v = 0;
            if (!parseU64(value, v) || v < f->u64Min || v > f->u64Max) {
                std::ostringstream os;
                os << arg << " must be an integer in [" << f->u64Min
                   << ",";
                if (f->u64Max == UINT64_MAX)
                    os << "inf";
                else
                    os << f->u64Max;
                os << "], got '" << value << "'";
                return Error::invalidArgument(os.str());
            }
            *f->u64Out = v;
            if (f->wasSet != nullptr)
                *f->wasSet = true;
            break;
          }
          case Kind::Int: {
            uint64_t v = 0;
            if (!parseU64(value, v) ||
                v < static_cast<uint64_t>(f->intMin) ||
                v > static_cast<uint64_t>(f->intMax))
                return Error::invalidArgument(
                    arg + " must be an integer in [" +
                    std::to_string(f->intMin) + "," +
                    std::to_string(f->intMax) + "], got '" + value +
                    "'");
            *f->intOut = static_cast<int>(v);
            break;
          }
          case Kind::Bool:
            break; // handled above
        }
    }
    return common::okStatus();
}

std::string
ArgParser::help() const
{
    std::ostringstream os;
    os << "usage: " << tool_ << " [options]\n";
    if (!summary_.empty())
        os << summary_ << "\n";
    os << "options:\n";
    for (const Flag& f : flags_) {
        std::string left = "  " + f.name;
        if (f.kind != Kind::Bool)
            left += " <" + f.metavar + ">";
        if (left.size() < 26)
            left.resize(26, ' ');
        else
            left += " ";
        os << left << f.help;
        if (!f.aliases.empty()) {
            os << " (alias:";
            for (const std::string& a : f.aliases)
                os << " " << a;
            os << ")";
        }
        if (!f.deprecatedAliases.empty()) {
            os << " (deprecated:";
            for (const std::string& a : f.deprecatedAliases)
                os << " " << a;
            os << ")";
        }
        os << "\n";
    }
    os << "  --help                  show this help and exit\n";
    return os.str();
}

namespace stdflags {

void
out(ArgParser& p, std::string* v)
{
    p.str("--out", v, "path",
          "write the machine-readable p10ee-report/1 JSON");
    p.deprecatedAlias("--stats-json", "--out");
}

void
mode(ArgParser& p, std::string* v)
{
    p.str("--mode", v, "mode",
          "simulation fidelity: full (default) or fast_m1");
}

void
jobs(ArgParser& p, int* v)
{
    p.intRange("--jobs", v, 1, 256, "worker threads in [1,256]");
}

void
seed(ArgParser& p, uint64_t* v)
{
    p.u64("--seed", v,
          "perturb the workload seed (0: profile default)");
}

void
cacheDir(ArgParser& p, std::string* v)
{
    p.str("--cache-dir", v, "dir",
          "memoize shard results on disk; warm runs skip "
          "already-simulated shards");
}

void
instrs(ArgParser& p, uint64_t* v)
{
    p.u64("--instrs", v, "measured instructions (> 0)", 1);
}

void
warmup(ArgParser& p, uint64_t* v, bool* wasSet)
{
    p.u64("--warmup", v, "warmup instructions per thread", 0,
          UINT64_MAX, wasSet);
}

} // namespace stdflags

} // namespace p10ee::api
