/**
 * @file
 * Public value types of the `p10ee::api` facade.
 *
 * These are the types every entry path — the CLIs, the bench harness,
 * the `p10d` daemon and direct library callers — exchanges with the
 * engine, factored into a header with no dependency beyond
 * `common/error.h` so the lower layers (sweep, fault) can speak them
 * without depending on the facade library itself.
 *
 * ShardResult used to live in `src/sweep/runner.h` with the on-disk
 * serialization in `src/sweep/cache.cpp` mirroring its layout; it is
 * now public API (`sweep::ShardResult` remains as an alias), because a
 * service returning per-shard provenance needs the same shape the
 * cache persists and the runner folds.
 *
 * ProgressEvent is the one progress-callback currency: the sweep
 * runner, the fault campaign and the daemon's streamed `progress`
 * events all emit it, so any consumer (CLI stderr ticker, socket
 * stream, test harness) can subscribe to any producer.
 */

#ifndef P10EE_API_TYPES_H
#define P10EE_API_TYPES_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/error.h"

namespace p10ee::api {

/**
 * Simulation fidelity mode — the paper's own M1-vs-RTL layering as a
 * first-class API axis.
 *
 *  - Full: every instrumentation path active; reports carry power,
 *    efficiency and telemetry alongside the architectural results.
 *  - FastM1: the per-cycle power-proxy instrumentation (sw.* switching
 *    counters) and telemetry are skipped, so no power/efficiency can
 *    be evaluated — but every architectural result (cycles, IPC,
 *    commit counts, branch/cache stats, checkpoints) is byte-identical
 *    to Full mode. Skipped metrics are absent from reports, not
 *    zeroed. Restricted to 1-core shards: the multi-core chip
 *    governor consumes per-epoch power evaluations as timing input.
 *
 * Mode is part of shard-cache identity (a FastM1 result has no power
 * fields to replay into a Full request) but NOT of checkpoint
 * identity: warmup checkpoints are mode-independent and restore
 * interchangeably across modes (see ckpt::kStateSchemaVersion v2).
 */
enum class SimMode : uint8_t {
    Full = 0,
    FastM1 = 1,
};

/** Stable wire/CLI spelling of @p mode ("full" / "fast_m1"). */
inline const char*
simModeName(SimMode mode)
{
    return mode == SimMode::FastM1 ? "fast_m1" : "full";
}

/**
 * Parse the wire/CLI spelling of a mode. Strict: anything but the two
 * canonical names (including case variants) is InvalidArgument, so
 * hostile or typo'd mode strings are rejected at every boundary layer
 * with the same message shape.
 */
inline common::Expected<SimMode>
parseSimMode(const std::string& s)
{
    if (s == "full")
        return SimMode::Full;
    if (s == "fast_m1")
        return SimMode::FastM1;
    return common::Error{common::ErrorCode::InvalidArgument,
                         "unknown simulation mode \"" + s +
                             "\" (expected \"full\" or \"fast_m1\")",
                         "mode"};
}

/**
 * One core's slice of a multi-core chip shard (src/chip). Rows exist
 * only for shards with cores >= 2; 1-core shards keep the exact
 * historical ShardResult shape (the bare-core identity contract).
 */
struct ShardCoreRow
{
    uint64_t cycles = 0;      ///< raw simulated cycles
    uint64_t stallCycles = 0; ///< contention + governor backpressure
    uint64_t effCycles = 0;   ///< cycles + stallCycles
    uint64_t instrs = 0;
    double ipc = 0.0;         ///< instrs / effCycles
    double powerW = 0.0;
    double freqGhz = 0.0;     ///< broadcast frequency after yield cap
};

/** Outcome of one sweep shard (ok or recorded failure — never both
    halves). The unit of caching, merging and progress reporting. */
struct ShardResult
{
    uint64_t index = 0;
    std::string key;

    bool ok = false;
    /** Failure category + message when !ok (timeout, transient, ...). */
    common::Error error;
    int retries = 0; ///< transient-failure retries consumed

    // Simulation results (valid when ok).
    uint64_t cycles = 0;
    uint64_t instrs = 0;
    double ipc = 0.0;
    double powerW = 0.0;
    double ipcPerW = 0.0;

    /** Host wall-clock of this shard (diagnostic only; NEVER merged). */
    double wallSeconds = 0.0;

    /**
     * Provenance of externally ingested workloads: the recorded trace
     * name (scheme prefix stripped) and the content hash over its
     * canonical instruction bytes. Empty/zero for synthetic profiles.
     * Persisted by the shard cache and surfaced in the merged report's
     * "trace workloads" table, so a result always states which bytes
     * it measured.
     */
    std::string traceName;
    uint64_t traceHash = 0;

    /**
     * Replayed from the shard cache instead of simulated (provenance
     * only — cached and simulated results are byte-identical in the
     * merged report, so this flag never influences the merge).
     */
    bool fromCache = false;

    /** Per-shard IPC telemetry when the spec samples (x = cycle). */
    std::vector<double> ipcX;
    std::vector<double> ipcY;

    // ---- Chip-scope results (cores >= 2 only; see src/chip) ----
    // For multi-core shards, cycles/instrs/ipc/powerW above hold the
    // chip rollup (chip cycles = max per-core effective cycles, summed
    // instructions/power) and the fields below add the per-core
    // breakdown plus governor outcomes.

    int cores = 1;
    std::vector<ShardCoreRow> coreRows; ///< empty when cores == 1
    double chipFreqGhz = 0.0; ///< final broadcast WOF frequency
    double chipBoost = 0.0;   ///< final WOF boost
    uint64_t throttledEpochs = 0;
    uint64_t droopTrips = 0;

    /**
     * The fidelity mode this shard was simulated under. FastM1 shards
     * carry no power/efficiency results (powerW/ipcPerW stay 0 and are
     * rendered absent); persisted by the shard cache so a cached
     * result replays with its provenance intact.
     */
    SimMode mode = SimMode::Full;
};

/**
 * One unit of work finished: the progress currency shared by every
 * long-running engine (sweep shards, campaign injections) and by the
 * daemon's streamed `progress` events. Producers serialize calls under
 * a mutex; completion order is scheduling-dependent, so anything
 * deterministic must come from the final result, never this stream.
 */
struct ProgressEvent
{
    uint64_t index = 0; ///< shard index / injection id (the identity)
    uint64_t total = 0; ///< units in the whole job (0 = unknown)
    std::string key;    ///< shard key / injected component
    bool ok = true;     ///< finished clean (not failed, not skipped)
    /** "ok", an error-code name, or a campaign outcome name. */
    std::string status;
    int retries = 0;        ///< transient retries consumed
    bool fromCache = false; ///< replayed from the shard cache
};

/** The one progress-callback signature (empty = no progress). */
using ProgressFn = std::function<void(const ProgressEvent&)>;

} // namespace p10ee::api

#endif // P10EE_API_TYPES_H
