/**
 * @file
 * `p10ee::api::Service` — the one entry path into the engine.
 *
 * Every consumer used to re-implement its own wiring of config
 * resolution + workload construction + core model + energy evaluation
 * + report assembly: `p10sim_cli`, `p10sweep_cli`, the bench harness
 * and now the `p10d` daemon. This facade is the only place that
 * composes core + workloads + obs + ckpt + sweep, so the offline CLIs,
 * the library and a live service cannot drift apart — a request
 * produces the same bytes no matter which door it came in through.
 *
 * Contracts inherited from below and re-exported here:
 *  - determinism: mergedReport() is a pure function of the spec (tool
 *    name pinned to kSweepReportTool, wall-clock zeroed), so the same
 *    spec yields byte-identical reports from a library call, a
 *    `p10sweep_cli` process, or a `p10d` socket round-trip;
 *  - cache reuse: a Service constructed with a cache directory shares
 *    one ShardCache across every request it serves — a warm request
 *    simulates zero shards;
 *  - recoverability: all failures travel as `common::Expected`; the
 *    facade never exits, throws past its boundary, or aborts a serving
 *    process on a bad request.
 */

#ifndef P10EE_API_SERVICE_H
#define P10EE_API_SERVICE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "api/types.h"
#include "chip/chip.h"
#include "common/error.h"
#include "core/core.h"
#include "obs/report.h"
#include "obs/timeseries.h"
#include "power/energy.h"
#include "sweep/runner.h"
#include "sweep/spec.h"
#include "workloads/spec_profiles.h"

namespace p10ee::api {

/**
 * Merged sweep reports carry this tool name regardless of entry path:
 * the report is a pure function of the spec, and stamping the emitting
 * binary into it would break byte-identity between the offline CLI and
 * the daemon serving the same spec.
 */
inline constexpr const char* kSweepReportTool = "p10sweep";

/** One single-run request (the `p10sim_cli` shape, service-ready). */
struct RunRequest
{
    /** "power9", "power10", or "ablate:<group>". */
    std::string config = "power10";
    std::string workload = "perlbench";
    int smt = 1;
    /** Chip width: 1 = the bare CoreModel path (byte-identical to every
        pre-chip release); >= 2 routes through chip::ChipModel with
        shared-resource contention and the chip-scope governor. Every
        core runs this config/workload/smt; thread t of core c draws
        workload stream c*smt + t. */
    int cores = 1;
    uint64_t instrs = 200000;
    uint64_t warmup = 50000; ///< per thread
    /** 0 = profile default; else splitSeed replica (sweep semantics). */
    uint64_t seed = 0;
    uint64_t maxCycles = 0; ///< cycle budget; 0 = unbounded
    uint64_t sampleInterval = 0;

    /**
     * Fidelity mode (see SimMode). FastM1 requires cores == 1 and is
     * incompatible with telemetry (recorder / collectTimings /
     * sampleInterval) — those are exactly the paths it skips; asking
     * for both is a validation error, never a silent no-op.
     */
    SimMode mode = SimMode::Full;

    // Library-only extras (never on the wire).
    obs::TimeSeriesRecorder* recorder = nullptr; ///< optional telemetry
    bool collectTimings = false;
    std::string ckptSave; ///< snapshot after warmup, then measure
    std::string ckptLoad; ///< restore a warmup snapshot, skip warmup

    /** Structured validation (field ranges, mutually exclusive ckpt
        paths); name resolution happens in runOne(). The returned
        Error's `field` names the first failing request key. */
    common::Status validate() const;
};

/** Outcome of one single run, with the resolved inputs attached. */
struct RunOutcome
{
    /** The measured window. For cores >= 2 this holds the chip rollup
        (cycles = chip effective cycles, instrs/stats summed over
        cores), so scalar consumers see chip-scope numbers without
        caring about width. */
    core::RunResult run;
    /** Energy breakdown; summed across cores when cores >= 2. */
    power::PowerBreakdown power;
    core::CoreConfig config;               ///< resolved machine
    workloads::WorkloadProfile profile;    ///< resolved (seed derived)
    uint64_t warmupSimulated = 0; ///< 0 when restored from checkpoint

    int cores = 1;         ///< mirrors RunRequest::cores
    /** Per-core outcomes + governor rollup; valid when cores >= 2. */
    chip::ChipResult chip;

    double ipc() const { return run.ipc(); }
    double powerW() const { return power.watts(); }
    double
    ipcPerW() const
    {
        return power.watts() > 0.0 ? run.ipc() / power.watts() : 0.0;
    }
};

/** Per-call options of a sweep submission. */
struct SweepOptions
{
    int jobs = 1;
    ProgressFn onProgress;
    /** Cooperative cancellation: when set and it flips true, remaining
        shards are recorded as `cancelled` without simulating. */
    const std::atomic<bool>* cancel = nullptr;
    /** Request-level cycle budget per shard; tightens (never loosens)
        the spec's own max_cycles. 0 = no override. */
    uint64_t maxCyclesOverride = 0;
};

/**
 * Per-call options of a single-shard execution (the fabric worker
 * path: a `shard` request runs exactly one index of a sweep).
 */
struct ShardOptions
{
    /** Request-level cycle budget; tightens (never loosens) the
        spec's own max_cycles. 0 = no override. */
    uint64_t maxCyclesOverride = 0;
    /**
     * Remote cache tier: given the shard's cache key, return the
     * encoded ShardCache entry bytes or nullopt on miss. Consulted
     * after the local cache; a probe that times out is just a miss —
     * the remote tier can only ever save work, never fail a shard.
     */
    std::function<std::optional<std::vector<uint8_t>>(uint64_t key)>
        remoteLookup;
    /** Best-effort publication of a freshly simulated entry to the
        remote tier (fire-and-forget). */
    std::function<void(uint64_t key, const std::vector<uint8_t>& entry)>
        remoteStore;
};

/** Outcome of one single-shard execution. */
struct ShardOutcome
{
    ShardResult result; ///< fromCache set when any cache tier hit
    /** The encoded ShardCache entry for this result — the exact bytes
        a worker ships in shard_done and a coordinator persists. */
    std::vector<uint8_t> entry;
};

/**
 * The facade. Cheap to construct; holds only the shared-cache
 * configuration. Thread-safe: concurrent runOne()/runSweep() calls
 * share the on-disk ShardCache (whose own contract makes concurrent
 * use safe) and nothing else.
 */
class Service
{
  public:
    struct Options
    {
        /** Shared shard-cache directory ("" = caching off). */
        std::string cacheDir;
    };

    Service() = default;
    explicit Service(Options opts) : opts_(std::move(opts)) {}

    /** Resolve + validate + run one simulation. */
    common::Expected<RunOutcome> runOne(const RunRequest& req) const;

    /** Expand + execute a sweep (shared cache, progress events). */
    common::Expected<sweep::SweepResult> runSweep(
        const sweep::SweepSpec& spec, const SweepOptions& opts) const;

    /**
     * Run ONE shard of @p spec by expansion index: local cache, then
     * the remote tier (when wired), then simulation. The result is a
     * pure function of (spec, index) — identical to what the same
     * shard produces inside runSweep() — which is what lets a fleet
     * scatter shards across workers and still merge a byte-identical
     * report. Errors are pre-flight only (bad spec, index out of
     * range); a shard that deterministically fails (timeout, exhausted
     * retries) is an ok ShardOutcome carrying the failure.
     */
    common::Expected<ShardOutcome> runShard(
        const sweep::SweepSpec& spec, uint64_t index,
        const ShardOptions& opts) const;

    /**
     * The canonical merged sweep report: byte-identical across every
     * entry path for the same spec (tool pinned, host timing zeroed).
     */
    static obs::JsonReport mergedReport(const sweep::SweepSpec& spec,
                                        const sweep::SweepResult& result);

    /** Cache-provenance sidecar (cached + simulated == shards). */
    static obs::JsonReport cacheStatsReport(
        const sweep::SweepResult& result);

    /**
     * Deterministic single-run report (scalars only, zeroed host
     * timing): what the daemon returns for a `run` request and the
     * base the CLI builds its richer report on.
     */
    static obs::JsonReport runReport(const RunRequest& req,
                                     const RunOutcome& outcome);

    const Options& options() const { return opts_; }

  private:
    Options opts_;
};

} // namespace p10ee::api

#endif // P10EE_API_SERVICE_H
